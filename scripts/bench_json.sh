#!/usr/bin/env bash
# Benchmark runner with machine-readable output: runs the named benchmark
# binaries and writes BENCH_<name>[<suffix>].json at the repo root, so the
# perf trajectory accumulates in version control.
#
# Usage: scripts/bench_json.sh [name ...]
#   name       benchmark binary without the bench_ prefix (default:
#              "epoch sssp" — the quiescence-hot-path pair tracked by
#              ISSUE 3's acceptance criteria)
# Environment:
#   BUILD_DIR       build tree holding bench/ binaries   (default: build)
#   BENCH_SUFFIX    filename suffix, e.g. ".baseline"    (default: empty)
#   BENCH_FILTER    --benchmark_filter regex             (default: all)
#   BENCH_ARGS      extra flags passed to every binary   (default: empty)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BENCH_SUFFIX="${BENCH_SUFFIX:-}"
BENCH_FILTER="${BENCH_FILTER:-}"
BENCH_ARGS="${BENCH_ARGS:-}"

names=("$@")
if [ ${#names[@]} -eq 0 ]; then names=(epoch sssp); fi

for name in "${names[@]}"; do
  bin="$BUILD_DIR/bench/bench_$name"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
  out="BENCH_${name}${BENCH_SUFFIX}.json"
  echo "=== bench_$name -> $out ==="
  # shellcheck disable=SC2086  # BENCH_FILTER/BENCH_ARGS are intentionally word-split
  "$bin" \
    --benchmark_out="$out" --benchmark_out_format=json \
    ${BENCH_FILTER:+--benchmark_filter="$BENCH_FILTER"} \
    $BENCH_ARGS
done
