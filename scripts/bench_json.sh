#!/usr/bin/env bash
# Benchmark runner with machine-readable output: runs the named benchmark
# binaries and writes BENCH_<name>[<suffix>].json at the repo root, so the
# perf trajectory accumulates in version control.
#
# Usage: scripts/bench_json.sh [name ...]
#   name       benchmark binary without the bench_ prefix (default:
#              "epoch sssp" — the quiescence-hot-path pair tracked by
#              ISSUE 3's acceptance criteria)
# Environment:
#   BUILD_DIR       build tree holding bench/ binaries   (default: build)
#   BENCH_SUFFIX    filename suffix, e.g. ".baseline"    (default: empty)
#   BENCH_FILTER    --benchmark_filter regex             (default: all)
#   BENCH_ARGS      extra flags passed to every binary   (default: empty)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BENCH_SUFFIX="${BENCH_SUFFIX:-}"
BENCH_FILTER="${BENCH_FILTER:-}"
BENCH_ARGS="${BENCH_ARGS:-}"

names=("$@")
if [ ${#names[@]} -eq 0 ]; then names=(epoch sssp); fi

# SIMD provenance for the metadata block: the tier the batch kernels will
# pick on this CPU (mirrors dpg::simd::detect()), any forced override, and
# the raw vector-ISA CPU flags — so a committed BENCH_*.json records which
# kernels produced its numbers.
detect_simd() {
  local flags
  flags="$(grep -m1 '^flags' /proc/cpuinfo 2>/dev/null || true)"
  if grep -qw avx512f <<<"$flags"; then echo avx512
  elif grep -qw avx2 <<<"$flags"; then echo avx2
  elif grep -qw sse4_2 <<<"$flags"; then echo sse4
  else echo scalar; fi
}
simd_flags() {
  grep -m1 '^flags' /proc/cpuinfo 2>/dev/null | tr ' ' '\n' |
    grep -E '^(sse4_1|sse4_2|avx|avx2|avx512[a-z0-9]*)$' | paste -sd' ' - || true
}
SIMD_DETECTED="$(detect_simd)"
SIMD_FORCED="${DPG_SIMD_LEVEL:-auto}"
SIMD_CPU_FLAGS="$(simd_flags)"
# Wire-backend provenance: the benchmark binaries run the in-process
# machine unless a runner says otherwise (bench_backend hosts both ends of
# the shm/tcp pipes in one process — still "inproc" process topology; the
# backend under test is in each benchmark's name).
BENCH_BACKEND="${DPG_BENCH_BACKEND:-inproc}"

for name in "${names[@]}"; do
  bin="$BUILD_DIR/bench/bench_$name"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
  out="BENCH_${name}${BENCH_SUFFIX}.json"
  echo "=== bench_$name -> $out ==="
  # shellcheck disable=SC2086  # BENCH_FILTER/BENCH_ARGS are intentionally word-split
  "$bin" \
    --benchmark_out="$out" --benchmark_out_format=json \
    ${BENCH_FILTER:+--benchmark_filter="$BENCH_FILTER"} \
    $BENCH_ARGS
  # Stamp the SIMD provenance into the file's metadata block.
  SIMD_DETECTED="$SIMD_DETECTED" SIMD_FORCED="$SIMD_FORCED" \
    SIMD_CPU_FLAGS="$SIMD_CPU_FLAGS" BENCH_BACKEND="$BENCH_BACKEND" \
    OUT="$out" python3 - <<'EOF'
import json, os
path = os.environ["OUT"]
with open(path) as f:
    doc = json.load(f)
# Streaming-overlay occupancy: the peak delta-overlay / tombstone counters
# any benchmark in this file reported, so a committed BENCH_*.json records
# how much un-compacted mutation state its numbers were measured under
# (0 for benchmarks that never mutate).
def peak(counter):
    return max((b.get(counter, 0) for b in doc.get("benchmarks", [])
                if isinstance(b, dict)), default=0)
doc["dpg_metadata"] = {
    "simd_detected": os.environ["SIMD_DETECTED"],
    "simd_forced": os.environ["SIMD_FORCED"],
    "cpu_simd_flags": os.environ["SIMD_CPU_FLAGS"].split(),
    "backend": os.environ["BENCH_BACKEND"],
    # Multi-pattern fusion provenance: "on"/"off" when the run measured the
    # fused vs separate triple (bench_fusion), "n/a" for everything else.
    "fusion": os.environ.get("DPG_BENCH_FUSION", "n/a"),
    "occupancy": {
        "delta_edges": peak("delta_edges"),
        "tombstoned_edges": peak("tombstoned_edges"),
        "overlay_bytes": peak("overlay_bytes"),
        "tombstone_bytes": peak("tombstone_bytes"),
    },
}
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
EOF
done
