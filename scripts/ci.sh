#!/usr/bin/env bash
# CI entry point: a -Werror build + full test suite, then a ThreadSanitizer
# build running the tier-1 suite. Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== werror build ==="
cmake --preset werror >/dev/null
cmake --build --preset werror -j "$JOBS"
ctest --test-dir build-werror --output-on-failure -j "$JOBS"

echo "=== sim seed sweep (8 seeds) ==="
# The deterministic fault-injection simulator: every algorithm under every
# fault plan, eight seeds. A failure prints the reproducing seed; replay a
# single grid point with DPG_SIM_SEEDS=<seed>.
DPG_SIM_SEEDS=1,2,3,4,5,6,7,8 \
  ctest --test-dir build-werror -L sim --output-on-failure --timeout 240 -j "$JOBS"

echo "=== simd forced-ISA sweep ==="
# The batch-kernel differential matrix: every kernel tier this host can
# execute, compared bit-for-bit against the scalar reference — at the
# kernel level, across the algorithm sweep under every fault plan, and
# across mixed-tier concurrent serving sessions. Tiers above the host CPU
# are reported and skipped inside the tests.
DPG_SIM_SEEDS=1,2 \
  ctest --test-dir build-werror -L simd --output-on-failure --timeout 240 -j "$JOBS"

echo "=== tsan build ==="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$JOBS"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS"

echo "=== tsan sim sweep ==="
ctest --test-dir build-tsan -L sim --output-on-failure --timeout 240 -j "$JOBS"

echo "=== wire backend smoke (shm + tcp, one process per rank) ==="
# Real cross-process machines through the launcher: 4 rankproc processes
# over the shm ring and over TCP loopback. The bit-for-bit hash matrix is
# backend_sweep_test (already in the sim stages above); this stage proves
# the launcher path users actually run.
scripts/run_ranks.sh --backend shm --ranks 4 --algo sssp --seed 1 \
  --rankproc build-werror/tools/dpg_rankproc
scripts/run_ranks.sh --backend tcp --ranks 4 --algo cc --seed 1 \
  --rankproc build-werror/tools/dpg_rankproc

echo "=== wire backend smoke under tsan ==="
# The same two wires with every rank process tsan-instrumented: races in
# the ring's acquire/release protocol or the TCP reassembly path surface
# here rather than in production.
scripts/run_ranks.sh --backend shm --ranks 2 --algo bfs --seed 2 \
  --rankproc build-tsan/tools/dpg_rankproc
scripts/run_ranks.sh --backend tcp --ranks 2 --algo sssp --seed 2 \
  --rankproc build-tsan/tools/dpg_rankproc

echo "=== bench smoke (1 repetition, JSON out) ==="
# One repetition of the quiescence-hot-path and plan-compilation
# benchmarks: catches bench-code rot and emits BENCH_*.ci.json for
# inspection. The werror tree already built the bench binaries.
BUILD_DIR=build-werror BENCH_SUFFIX=.ci \
  BENCH_ARGS="--benchmark_min_time=0.01 --benchmark_repetitions=1" \
  scripts/bench_json.sh epoch sssp message_plan mutation

echo "=== bench ratio guard (pattern vs hand-rolled SSSP) ==="
# With the whole-envelope batch kernels the declarative relax pattern has
# to stay within striking distance of the hand-written AM++-style SSSP at
# the same rank count — the acceptance bound is 1.1x on a quiet machine;
# CI allows 1.3x so single-repetition smoke jitter cannot flake the gate.
python3 - <<'EOF'
import json
with open("BENCH_sssp.ci.json") as f:
    rows = json.load(f)["benchmarks"]

def real_time(name):
    for r in rows:
        if r["name"] == name and r.get("run_type", "iteration") == "iteration":
            return r["real_time"]
    raise SystemExit(f"ratio guard: benchmark '{name}' missing from BENCH_sssp.ci.json")

pattern = real_time("BM_SsspFixedPoint/2/real_time")
hand = real_time("BM_SsspHandRolledReduction/10/real_time")
ratio = pattern / hand
print(f"pattern fixed-point / hand-rolled @2 ranks: {ratio:.2f}x (limit 1.3x)")
if ratio >= 1.3:
    raise SystemExit("ratio guard FAILED: compiled pattern SSSP regressed vs hand-rolled")
EOF

echo "=== bench ratio guard (warm repair vs cold re-solve) ==="
# The in-place warm repair after apply_edges() must stay decisively
# cheaper than a cold re-solve on the mutated graph. The real experiment
# (EXPERIMENTS.md FW2) demands >=5x; this smoke run uses a looser 3x so
# single-repetition jitter cannot flake CI while still catching any
# rebuild creeping back into the warm path.
python3 - <<'EOF'
import json
with open("BENCH_mutation.ci.json") as f:
    rows = json.load(f)["benchmarks"]

def real_time(name):
    for r in rows:
        if r["name"] == name and r.get("run_type", "iteration") == "iteration":
            return r["real_time"]
    raise SystemExit(f"ratio guard: benchmark '{name}' missing from BENCH_mutation.ci.json")

for edges in (8, 64):
    cold = real_time(f"BM_MutationColdResolve/{edges}/real_time")
    warm = real_time(f"BM_MutationWarmRepair/{edges}/real_time")
    ratio = cold / warm
    print(f"cold re-solve / warm repair @{edges} edges: {ratio:.1f}x (limit >=3.0x)")
    if ratio < 3.0:
        raise SystemExit("ratio guard FAILED: warm mutation repair lost its edge over a cold re-solve")
EOF

echo "=== streaming stage (mixed add/delete sweep + repair-vs-cold guard) ==="
# Tombstone deletions end to end. The streaming sweep replays mixed
# add/delete mutation batches with warm repair under all four fault plans
# (it is also part of -L sim above; re-pinned to two seeds here so the
# stage stands alone), then the stream-replay benchmark must show warm
# repair >= 5x faster than cold re-solving the three continuous queries
# (sssp / cc / k-core) after every batch.
DPG_SIM_SEEDS=1,2 \
  ctest --test-dir build-werror -L streaming --output-on-failure --timeout 240 -j "$JOBS"
BUILD_DIR=build-werror BENCH_SUFFIX=.ci \
  BENCH_ARGS="--benchmark_repetitions=1" \
  scripts/bench_json.sh streaming
python3 - <<'EOF'
import json
with open("BENCH_streaming.ci.json") as f:
    rows = json.load(f)["benchmarks"]

def real_time(prefix):
    for r in rows:
        if r["name"].startswith(prefix) and r.get("run_type", "iteration") == "iteration":
            return r["real_time"]
    raise SystemExit(f"streaming guard: benchmark '{prefix}' missing from BENCH_streaming.ci.json")

cold = real_time("BM_StreamingColdReplay")
warm = real_time("BM_StreamingWarmReplay")
ratio = cold / warm
print(f"cold re-solve / warm repair per streamed batch: {ratio:.1f}x (limit >=5.0x)")
if ratio < 5.0:
    raise SystemExit("streaming guard FAILED: warm streaming repair lost its edge over cold re-solves")
EOF

echo "=== fusion smoke (fused triple vs sum-of-separate guard) ==="
# Multi-pattern fusion must actually pay for itself: the fused
# sssp+widest+bfs-tree triple has to beat three separate solves on BOTH
# wall time and wire bytes (ratio < 1.0) at 2 ranks. Bit-identity of the
# fused results is covered by fusion_sweep_test in the sim stages above;
# this stage guards the perf claim.
DPG_BENCH_FUSION=on BUILD_DIR=build-werror BENCH_SUFFIX=.ci \
  BENCH_ARGS="--benchmark_min_time=0.05 --benchmark_repetitions=1" \
  scripts/bench_json.sh fusion
python3 - <<'EOF'
import json
with open("BENCH_fusion.ci.json") as f:
    rows = json.load(f)["benchmarks"]

def row(name):
    for r in rows:
        if r["name"] == name and r.get("run_type", "iteration") == "iteration":
            return r
    raise SystemExit(f"fusion guard: benchmark '{name}' missing from BENCH_fusion.ci.json")

fused = row("BM_FusedTriple/2/real_time")
separate = row("BM_SeparateTriple/2/real_time")
wall = fused["real_time"] / separate["real_time"]
wire = fused["wire_bytes"] / separate["wire_bytes_total"]
print(f"fused / sum-of-separate @2 ranks: wall {wall:.2f}x, wire bytes {wire:.2f}x (limit < 1.0)")
if wall >= 1.0:
    raise SystemExit("fusion guard FAILED: fused triple is not faster than three separate solves")
if wire >= 1.0:
    raise SystemExit("fusion guard FAILED: fused wire format moves more bytes than separate records")
EOF

echo "=== serving smoke (multi-tenant throughput guard) ==="
# The serving layer's admission merging + shared result cache must make
# concurrent sessions pay for each unique query once: 8 clients replaying
# the same stream have to clear >= 4x the single-client throughput (the
# solver work is identical; only the serving layer can deliver the
# multiple). Generous vs the ~8x expectation so smoke jitter cannot flake.
BUILD_DIR=build-werror BENCH_SUFFIX=.ci \
  BENCH_ARGS="--benchmark_min_time=0.01 --benchmark_repetitions=1" \
  scripts/bench_json.sh serving
python3 - <<'EOF'
import json
with open("BENCH_serving.ci.json") as f:
    rows = json.load(f)["benchmarks"]

def qps(name):
    for r in rows:
        if r["name"] == name and r.get("run_type", "iteration") == "iteration":
            return r["items_per_second"]
    raise SystemExit(f"serving guard: benchmark '{name}' missing from BENCH_serving.ci.json")

solo = qps("BM_ServingThroughput/1/real_time")
eight = qps("BM_ServingThroughput/8/real_time")
ratio = eight / solo
print(f"8-client / 1-client serving throughput: {ratio:.1f}x (limit >=4.0x)")
if ratio < 4.0:
    raise SystemExit("serving guard FAILED: concurrent sessions lost their throughput multiple")
EOF

echo "CI OK"
