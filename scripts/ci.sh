#!/usr/bin/env bash
# CI entry point: a -Werror build + full test suite, then a ThreadSanitizer
# build running the tier-1 suite. Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== werror build ==="
cmake --preset werror >/dev/null
cmake --build --preset werror -j "$JOBS"
ctest --test-dir build-werror --output-on-failure -j "$JOBS"

echo "=== sim seed sweep (8 seeds) ==="
# The deterministic fault-injection simulator: every algorithm under every
# fault plan, eight seeds. A failure prints the reproducing seed; replay a
# single grid point with DPG_SIM_SEEDS=<seed>.
DPG_SIM_SEEDS=1,2,3,4,5,6,7,8 \
  ctest --test-dir build-werror -L sim --output-on-failure --timeout 240 -j "$JOBS"

echo "=== tsan build ==="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$JOBS"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS"

echo "=== tsan sim sweep ==="
ctest --test-dir build-tsan -L sim --output-on-failure --timeout 240 -j "$JOBS"

echo "=== bench smoke (1 repetition, JSON out) ==="
# One repetition of the quiescence-hot-path benchmarks: catches bench-code
# rot and emits BENCH_epoch.ci.json / BENCH_sssp.ci.json for inspection.
# The werror tree already built the bench binaries.
BUILD_DIR=build-werror BENCH_SUFFIX=.ci \
  BENCH_ARGS="--benchmark_min_time=0.01 --benchmark_repetitions=1" \
  scripts/bench_json.sh epoch sssp

echo "CI OK"
