#!/usr/bin/env bash
# CI entry point: a -Werror build + full test suite, then a ThreadSanitizer
# build running the tier-1 suite. Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== werror build ==="
cmake --preset werror >/dev/null
cmake --build --preset werror -j "$JOBS"
ctest --test-dir build-werror --output-on-failure -j "$JOBS"

echo "=== tsan build ==="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$JOBS"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS"

echo "CI OK"
