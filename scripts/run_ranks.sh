#!/usr/bin/env bash
# Launch one cross-process machine: N dpg_rankproc processes, one per rank,
# over a shm-ring or TCP wire backend (ISSUE 8).
#
#   scripts/run_ranks.sh [--backend shm|tcp] [--ranks N] [--algo sssp|bfs|cc]
#                        [--seed X] [--session S] [--base-port P]
#                        [--rankproc PATH]
#
# Rank 0 prints the canonical RESULT line; the script exits nonzero if any
# rank process fails. The default session id embeds this script's PID so
# concurrent launches never collide on the shm segment / port block.
set -euo pipefail

backend=shm
ranks=4
algo=sssp
seed=1
session="run$$"
base_port=29700
rankproc=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --backend)   backend="$2"; shift 2 ;;
    --ranks)     ranks="$2"; shift 2 ;;
    --algo)      algo="$2"; shift 2 ;;
    --seed)      seed="$2"; shift 2 ;;
    --session)   session="$2"; shift 2 ;;
    --base-port) base_port="$2"; shift 2 ;;
    --rankproc)  rankproc="$2"; shift 2 ;;
    *) echo "run_ranks.sh: unknown flag '$1'" >&2; exit 2 ;;
  esac
done

if [[ -z "$rankproc" ]]; then
  for cand in build/tools/dpg_rankproc build-werror/tools/dpg_rankproc; do
    [[ -x "$cand" ]] && rankproc="$cand" && break
  done
fi
if [[ -z "$rankproc" || ! -x "$rankproc" ]]; then
  echo "run_ranks.sh: dpg_rankproc not found — build it or pass --rankproc PATH" >&2
  exit 2
fi

pids=()
for ((r = 0; r < ranks; ++r)); do
  "$rankproc" --backend "$backend" --ranks "$ranks" --rank "$r" \
      --session "$session" --base-port "$base_port" \
      --algo "$algo" --seed "$seed" &
  pids+=($!)
done

status=0
for pid in "${pids[@]}"; do
  wait "$pid" || status=1
done
if [[ $status -ne 0 ]]; then
  echo "run_ranks.sh: a rank process failed (backend=$backend ranks=$ranks algo=$algo seed=$seed)" >&2
fi
exit $status
