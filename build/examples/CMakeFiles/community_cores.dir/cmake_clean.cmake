file(REMOVE_RECURSE
  "CMakeFiles/community_cores.dir/community_cores.cpp.o"
  "CMakeFiles/community_cores.dir/community_cores.cpp.o.d"
  "community_cores"
  "community_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
