# Empty compiler generated dependencies file for community_cores.
# This may be replaced when dependencies are built.
