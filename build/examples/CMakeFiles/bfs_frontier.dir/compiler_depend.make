# Empty compiler generated dependencies file for bfs_frontier.
# This may be replaced when dependencies are built.
