file(REMOVE_RECURSE
  "CMakeFiles/bfs_frontier.dir/bfs_frontier.cpp.o"
  "CMakeFiles/bfs_frontier.dir/bfs_frontier.cpp.o.d"
  "bfs_frontier"
  "bfs_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfs_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
