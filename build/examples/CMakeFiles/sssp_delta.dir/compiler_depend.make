# Empty compiler generated dependencies file for sssp_delta.
# This may be replaced when dependencies are built.
