file(REMOVE_RECURSE
  "CMakeFiles/sssp_delta.dir/sssp_delta.cpp.o"
  "CMakeFiles/sssp_delta.dir/sssp_delta.cpp.o.d"
  "sssp_delta"
  "sssp_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
