# Empty compiler generated dependencies file for graph500_kernels.
# This may be replaced when dependencies are built.
