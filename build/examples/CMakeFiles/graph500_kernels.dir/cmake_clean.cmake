file(REMOVE_RECURSE
  "CMakeFiles/graph500_kernels.dir/graph500_kernels.cpp.o"
  "CMakeFiles/graph500_kernels.dir/graph500_kernels.cpp.o.d"
  "graph500_kernels"
  "graph500_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph500_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
