file(REMOVE_RECURSE
  "CMakeFiles/pattern_explain.dir/pattern_explain.cpp.o"
  "CMakeFiles/pattern_explain.dir/pattern_explain.cpp.o.d"
  "pattern_explain"
  "pattern_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
