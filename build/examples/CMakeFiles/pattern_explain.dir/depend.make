# Empty dependencies file for pattern_explain.
# This may be replaced when dependencies are built.
