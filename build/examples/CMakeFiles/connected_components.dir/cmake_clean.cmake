file(REMOVE_RECURSE
  "CMakeFiles/connected_components.dir/connected_components.cpp.o"
  "CMakeFiles/connected_components.dir/connected_components.cpp.o.d"
  "connected_components"
  "connected_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connected_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
