# Empty dependencies file for connected_components.
# This may be replaced when dependencies are built.
