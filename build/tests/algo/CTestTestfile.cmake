# CMake generated Testfile for 
# Source directory: /root/repo/tests/algo
# Build directory: /root/repo/build/tests/algo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(sssp_test "/root/repo/build/tests/algo/sssp_test")
set_tests_properties(sssp_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/algo/CMakeLists.txt;1;dpg_add_test;/root/repo/tests/algo/CMakeLists.txt;0;")
add_test(cc_test "/root/repo/build/tests/algo/cc_test")
set_tests_properties(cc_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/algo/CMakeLists.txt;2;dpg_add_test;/root/repo/tests/algo/CMakeLists.txt;0;")
add_test(bfs_pagerank_test "/root/repo/build/tests/algo/bfs_pagerank_test")
set_tests_properties(bfs_pagerank_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/algo/CMakeLists.txt;3;dpg_add_test;/root/repo/tests/algo/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/algo/baselines_test")
set_tests_properties(baselines_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/algo/CMakeLists.txt;4;dpg_add_test;/root/repo/tests/algo/CMakeLists.txt;0;")
add_test(extras_test "/root/repo/build/tests/algo/extras_test")
set_tests_properties(extras_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/algo/CMakeLists.txt;5;dpg_add_test;/root/repo/tests/algo/CMakeLists.txt;0;")
add_test(bfs_dir_opt_test "/root/repo/build/tests/algo/bfs_dir_opt_test")
set_tests_properties(bfs_dir_opt_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/algo/CMakeLists.txt;6;dpg_add_test;/root/repo/tests/algo/CMakeLists.txt;0;")
add_test(kcore_test "/root/repo/build/tests/algo/kcore_test")
set_tests_properties(kcore_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/algo/CMakeLists.txt;7;dpg_add_test;/root/repo/tests/algo/CMakeLists.txt;0;")
add_test(betweenness_test "/root/repo/build/tests/algo/betweenness_test")
set_tests_properties(betweenness_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/algo/CMakeLists.txt;8;dpg_add_test;/root/repo/tests/algo/CMakeLists.txt;0;")
add_test(incremental_sssp_test "/root/repo/build/tests/algo/incremental_sssp_test")
set_tests_properties(incremental_sssp_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/algo/CMakeLists.txt;9;dpg_add_test;/root/repo/tests/algo/CMakeLists.txt;0;")
add_test(coloring_test "/root/repo/build/tests/algo/coloring_test")
set_tests_properties(coloring_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/algo/CMakeLists.txt;10;dpg_add_test;/root/repo/tests/algo/CMakeLists.txt;0;")
