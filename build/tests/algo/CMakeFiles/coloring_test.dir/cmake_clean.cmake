file(REMOVE_RECURSE
  "CMakeFiles/coloring_test.dir/coloring_test.cpp.o"
  "CMakeFiles/coloring_test.dir/coloring_test.cpp.o.d"
  "coloring_test"
  "coloring_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coloring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
