file(REMOVE_RECURSE
  "CMakeFiles/bfs_dir_opt_test.dir/bfs_dir_opt_test.cpp.o"
  "CMakeFiles/bfs_dir_opt_test.dir/bfs_dir_opt_test.cpp.o.d"
  "bfs_dir_opt_test"
  "bfs_dir_opt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfs_dir_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
