# Empty compiler generated dependencies file for bfs_dir_opt_test.
# This may be replaced when dependencies are built.
