file(REMOVE_RECURSE
  "CMakeFiles/extras_test.dir/extras_test.cpp.o"
  "CMakeFiles/extras_test.dir/extras_test.cpp.o.d"
  "extras_test"
  "extras_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
