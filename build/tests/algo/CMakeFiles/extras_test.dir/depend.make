# Empty dependencies file for extras_test.
# This may be replaced when dependencies are built.
