# Empty compiler generated dependencies file for sssp_test.
# This may be replaced when dependencies are built.
