file(REMOVE_RECURSE
  "CMakeFiles/sssp_test.dir/sssp_test.cpp.o"
  "CMakeFiles/sssp_test.dir/sssp_test.cpp.o.d"
  "sssp_test"
  "sssp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
