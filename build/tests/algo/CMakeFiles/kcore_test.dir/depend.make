# Empty dependencies file for kcore_test.
# This may be replaced when dependencies are built.
