file(REMOVE_RECURSE
  "CMakeFiles/kcore_test.dir/kcore_test.cpp.o"
  "CMakeFiles/kcore_test.dir/kcore_test.cpp.o.d"
  "kcore_test"
  "kcore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
