file(REMOVE_RECURSE
  "CMakeFiles/incremental_sssp_test.dir/incremental_sssp_test.cpp.o"
  "CMakeFiles/incremental_sssp_test.dir/incremental_sssp_test.cpp.o.d"
  "incremental_sssp_test"
  "incremental_sssp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_sssp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
