# Empty dependencies file for incremental_sssp_test.
# This may be replaced when dependencies are built.
