file(REMOVE_RECURSE
  "CMakeFiles/bfs_pagerank_test.dir/bfs_pagerank_test.cpp.o"
  "CMakeFiles/bfs_pagerank_test.dir/bfs_pagerank_test.cpp.o.d"
  "bfs_pagerank_test"
  "bfs_pagerank_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfs_pagerank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
