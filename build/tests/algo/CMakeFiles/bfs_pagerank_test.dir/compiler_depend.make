# Empty compiler generated dependencies file for bfs_pagerank_test.
# This may be replaced when dependencies are built.
