# Empty compiler generated dependencies file for betweenness_test.
# This may be replaced when dependencies are built.
