file(REMOVE_RECURSE
  "CMakeFiles/betweenness_test.dir/betweenness_test.cpp.o"
  "CMakeFiles/betweenness_test.dir/betweenness_test.cpp.o.d"
  "betweenness_test"
  "betweenness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/betweenness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
