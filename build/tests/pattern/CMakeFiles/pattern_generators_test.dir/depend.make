# Empty dependencies file for pattern_generators_test.
# This may be replaced when dependencies are built.
