file(REMOVE_RECURSE
  "CMakeFiles/pattern_generators_test.dir/generators_test.cpp.o"
  "CMakeFiles/pattern_generators_test.dir/generators_test.cpp.o.d"
  "pattern_generators_test"
  "pattern_generators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
