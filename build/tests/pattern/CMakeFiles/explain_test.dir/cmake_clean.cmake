file(REMOVE_RECURSE
  "CMakeFiles/explain_test.dir/explain_test.cpp.o"
  "CMakeFiles/explain_test.dir/explain_test.cpp.o.d"
  "explain_test"
  "explain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
