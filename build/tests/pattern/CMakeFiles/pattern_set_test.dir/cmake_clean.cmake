file(REMOVE_RECURSE
  "CMakeFiles/pattern_set_test.dir/pattern_set_test.cpp.o"
  "CMakeFiles/pattern_set_test.dir/pattern_set_test.cpp.o.d"
  "pattern_set_test"
  "pattern_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
