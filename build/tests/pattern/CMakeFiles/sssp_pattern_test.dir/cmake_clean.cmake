file(REMOVE_RECURSE
  "CMakeFiles/sssp_pattern_test.dir/sssp_pattern_test.cpp.o"
  "CMakeFiles/sssp_pattern_test.dir/sssp_pattern_test.cpp.o.d"
  "sssp_pattern_test"
  "sssp_pattern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
