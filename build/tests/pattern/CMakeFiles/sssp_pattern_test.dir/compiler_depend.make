# Empty compiler generated dependencies file for sssp_pattern_test.
# This may be replaced when dependencies are built.
