# Empty compiler generated dependencies file for parse_fuzz_test.
# This may be replaced when dependencies are built.
