file(REMOVE_RECURSE
  "CMakeFiles/parse_fuzz_test.dir/parse_fuzz_test.cpp.o"
  "CMakeFiles/parse_fuzz_test.dir/parse_fuzz_test.cpp.o.d"
  "parse_fuzz_test"
  "parse_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parse_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
