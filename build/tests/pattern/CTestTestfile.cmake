# CMake generated Testfile for 
# Source directory: /root/repo/tests/pattern
# Build directory: /root/repo/build/tests/pattern
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(sssp_pattern_test "/root/repo/build/tests/pattern/sssp_pattern_test")
set_tests_properties(sssp_pattern_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/pattern/CMakeLists.txt;1;dpg_add_test;/root/repo/tests/pattern/CMakeLists.txt;0;")
add_test(planner_test "/root/repo/build/tests/pattern/planner_test")
set_tests_properties(planner_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/pattern/CMakeLists.txt;2;dpg_add_test;/root/repo/tests/pattern/CMakeLists.txt;0;")
add_test(expr_test "/root/repo/build/tests/pattern/expr_test")
set_tests_properties(expr_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/pattern/CMakeLists.txt;3;dpg_add_test;/root/repo/tests/pattern/CMakeLists.txt;0;")
add_test(explain_test "/root/repo/build/tests/pattern/explain_test")
set_tests_properties(explain_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/pattern/CMakeLists.txt;4;dpg_add_test;/root/repo/tests/pattern/CMakeLists.txt;0;")
add_test(pattern_set_test "/root/repo/build/tests/pattern/pattern_set_test")
set_tests_properties(pattern_set_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/pattern/CMakeLists.txt;5;dpg_add_test;/root/repo/tests/pattern/CMakeLists.txt;0;")
add_test(parse_test "/root/repo/build/tests/pattern/parse_test")
set_tests_properties(parse_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/pattern/CMakeLists.txt;6;dpg_add_test;/root/repo/tests/pattern/CMakeLists.txt;0;")
add_test(parse_fuzz_test "/root/repo/build/tests/pattern/parse_fuzz_test")
set_tests_properties(parse_fuzz_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/pattern/CMakeLists.txt;7;dpg_add_test;/root/repo/tests/pattern/CMakeLists.txt;0;")
add_test(pattern_generators_test "/root/repo/build/tests/pattern/pattern_generators_test")
set_tests_properties(pattern_generators_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/pattern/CMakeLists.txt;8;dpg_add_test;/root/repo/tests/pattern/CMakeLists.txt;0;")
