file(REMOVE_RECURSE
  "CMakeFiles/delta_stepping_test.dir/delta_stepping_test.cpp.o"
  "CMakeFiles/delta_stepping_test.dir/delta_stepping_test.cpp.o.d"
  "delta_stepping_test"
  "delta_stepping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_stepping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
