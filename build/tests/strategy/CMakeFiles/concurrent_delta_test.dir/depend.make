# Empty dependencies file for concurrent_delta_test.
# This may be replaced when dependencies are built.
