file(REMOVE_RECURSE
  "CMakeFiles/concurrent_delta_test.dir/concurrent_delta_test.cpp.o"
  "CMakeFiles/concurrent_delta_test.dir/concurrent_delta_test.cpp.o.d"
  "concurrent_delta_test"
  "concurrent_delta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_delta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
