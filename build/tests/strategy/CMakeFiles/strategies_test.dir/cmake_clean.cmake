file(REMOVE_RECURSE
  "CMakeFiles/strategies_test.dir/strategies_test.cpp.o"
  "CMakeFiles/strategies_test.dir/strategies_test.cpp.o.d"
  "strategies_test"
  "strategies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
