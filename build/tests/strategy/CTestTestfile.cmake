# CMake generated Testfile for 
# Source directory: /root/repo/tests/strategy
# Build directory: /root/repo/build/tests/strategy
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(strategies_test "/root/repo/build/tests/strategy/strategies_test")
set_tests_properties(strategies_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/strategy/CMakeLists.txt;1;dpg_add_test;/root/repo/tests/strategy/CMakeLists.txt;0;")
add_test(delta_stepping_test "/root/repo/build/tests/strategy/delta_stepping_test")
set_tests_properties(delta_stepping_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/strategy/CMakeLists.txt;2;dpg_add_test;/root/repo/tests/strategy/CMakeLists.txt;0;")
add_test(concurrent_delta_test "/root/repo/build/tests/strategy/concurrent_delta_test")
set_tests_properties(concurrent_delta_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/strategy/CMakeLists.txt;3;dpg_add_test;/root/repo/tests/strategy/CMakeLists.txt;0;")
