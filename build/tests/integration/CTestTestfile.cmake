# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(full_stack_test "/root/repo/build/tests/integration/full_stack_test")
set_tests_properties(full_stack_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/integration/CMakeLists.txt;1;dpg_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(stress_test "/root/repo/build/tests/integration/stress_test")
set_tests_properties(stress_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/integration/CMakeLists.txt;2;dpg_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
