# Empty dependencies file for full_stack_test.
# This may be replaced when dependencies are built.
