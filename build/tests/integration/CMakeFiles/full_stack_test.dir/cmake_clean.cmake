file(REMOVE_RECURSE
  "CMakeFiles/full_stack_test.dir/full_stack_test.cpp.o"
  "CMakeFiles/full_stack_test.dir/full_stack_test.cpp.o.d"
  "full_stack_test"
  "full_stack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
