# CMake generated Testfile for 
# Source directory: /root/repo/tests/util
# Build directory: /root/repo/build/tests/util
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(rng_test "/root/repo/build/tests/util/rng_test")
set_tests_properties(rng_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/util/CMakeLists.txt;1;dpg_add_test;/root/repo/tests/util/CMakeLists.txt;0;")
