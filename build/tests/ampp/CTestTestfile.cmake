# CMake generated Testfile for 
# Source directory: /root/repo/tests/ampp
# Build directory: /root/repo/build/tests/ampp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(transport_test "/root/repo/build/tests/ampp/transport_test")
set_tests_properties(transport_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/ampp/CMakeLists.txt;1;dpg_add_test;/root/repo/tests/ampp/CMakeLists.txt;0;")
add_test(epoch_test "/root/repo/build/tests/ampp/epoch_test")
set_tests_properties(epoch_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/ampp/CMakeLists.txt;2;dpg_add_test;/root/repo/tests/ampp/CMakeLists.txt;0;")
add_test(collectives_test "/root/repo/build/tests/ampp/collectives_test")
set_tests_properties(collectives_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/ampp/CMakeLists.txt;3;dpg_add_test;/root/repo/tests/ampp/CMakeLists.txt;0;")
add_test(reduction_cache_test "/root/repo/build/tests/ampp/reduction_cache_test")
set_tests_properties(reduction_cache_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/ampp/CMakeLists.txt;4;dpg_add_test;/root/repo/tests/ampp/CMakeLists.txt;0;")
add_test(scramble_test "/root/repo/build/tests/ampp/scramble_test")
set_tests_properties(scramble_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/ampp/CMakeLists.txt;5;dpg_add_test;/root/repo/tests/ampp/CMakeLists.txt;0;")
add_test(handler_threads_test "/root/repo/build/tests/ampp/handler_threads_test")
set_tests_properties(handler_threads_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/ampp/CMakeLists.txt;6;dpg_add_test;/root/repo/tests/ampp/CMakeLists.txt;0;")
add_test(contract_test "/root/repo/build/tests/ampp/contract_test")
set_tests_properties(contract_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/ampp/CMakeLists.txt;7;dpg_add_test;/root/repo/tests/ampp/CMakeLists.txt;0;")
