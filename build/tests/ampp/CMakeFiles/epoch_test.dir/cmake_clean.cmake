file(REMOVE_RECURSE
  "CMakeFiles/epoch_test.dir/epoch_test.cpp.o"
  "CMakeFiles/epoch_test.dir/epoch_test.cpp.o.d"
  "epoch_test"
  "epoch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
