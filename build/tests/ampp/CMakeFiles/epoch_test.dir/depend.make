# Empty dependencies file for epoch_test.
# This may be replaced when dependencies are built.
