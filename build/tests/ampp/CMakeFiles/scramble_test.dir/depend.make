# Empty dependencies file for scramble_test.
# This may be replaced when dependencies are built.
