file(REMOVE_RECURSE
  "CMakeFiles/scramble_test.dir/scramble_test.cpp.o"
  "CMakeFiles/scramble_test.dir/scramble_test.cpp.o.d"
  "scramble_test"
  "scramble_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scramble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
