file(REMOVE_RECURSE
  "CMakeFiles/handler_threads_test.dir/handler_threads_test.cpp.o"
  "CMakeFiles/handler_threads_test.dir/handler_threads_test.cpp.o.d"
  "handler_threads_test"
  "handler_threads_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handler_threads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
