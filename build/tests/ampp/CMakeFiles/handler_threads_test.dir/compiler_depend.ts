# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for handler_threads_test.
