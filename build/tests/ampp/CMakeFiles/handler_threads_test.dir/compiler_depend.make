# Empty compiler generated dependencies file for handler_threads_test.
# This may be replaced when dependencies are built.
