# Empty dependencies file for reduction_cache_test.
# This may be replaced when dependencies are built.
