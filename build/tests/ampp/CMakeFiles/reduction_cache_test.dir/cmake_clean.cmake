file(REMOVE_RECURSE
  "CMakeFiles/reduction_cache_test.dir/reduction_cache_test.cpp.o"
  "CMakeFiles/reduction_cache_test.dir/reduction_cache_test.cpp.o.d"
  "reduction_cache_test"
  "reduction_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
