# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(umbrella_test "/root/repo/build/tests/umbrella_test")
set_tests_properties(umbrella_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;dpg_add_test;/root/repo/tests/CMakeLists.txt;0;")
subdirs("util")
subdirs("ampp")
subdirs("graph")
subdirs("pmap")
subdirs("pattern")
subdirs("strategy")
subdirs("algo")
subdirs("integration")
