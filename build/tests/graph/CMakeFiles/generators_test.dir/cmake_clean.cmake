file(REMOVE_RECURSE
  "CMakeFiles/generators_test.dir/generators_test.cpp.o"
  "CMakeFiles/generators_test.dir/generators_test.cpp.o.d"
  "generators_test"
  "generators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
