# Empty dependencies file for distribution_test.
# This may be replaced when dependencies are built.
