file(REMOVE_RECURSE
  "CMakeFiles/distribution_test.dir/distribution_test.cpp.o"
  "CMakeFiles/distribution_test.dir/distribution_test.cpp.o.d"
  "distribution_test"
  "distribution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
