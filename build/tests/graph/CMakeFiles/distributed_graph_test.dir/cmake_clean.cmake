file(REMOVE_RECURSE
  "CMakeFiles/distributed_graph_test.dir/distributed_graph_test.cpp.o"
  "CMakeFiles/distributed_graph_test.dir/distributed_graph_test.cpp.o.d"
  "distributed_graph_test"
  "distributed_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
