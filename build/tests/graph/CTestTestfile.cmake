# CMake generated Testfile for 
# Source directory: /root/repo/tests/graph
# Build directory: /root/repo/build/tests/graph
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(distribution_test "/root/repo/build/tests/graph/distribution_test")
set_tests_properties(distribution_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/graph/CMakeLists.txt;1;dpg_add_test;/root/repo/tests/graph/CMakeLists.txt;0;")
add_test(distributed_graph_test "/root/repo/build/tests/graph/distributed_graph_test")
set_tests_properties(distributed_graph_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/graph/CMakeLists.txt;2;dpg_add_test;/root/repo/tests/graph/CMakeLists.txt;0;")
add_test(generators_test "/root/repo/build/tests/graph/generators_test")
set_tests_properties(generators_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/graph/CMakeLists.txt;3;dpg_add_test;/root/repo/tests/graph/CMakeLists.txt;0;")
add_test(io_test "/root/repo/build/tests/graph/io_test")
set_tests_properties(io_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/graph/CMakeLists.txt;4;dpg_add_test;/root/repo/tests/graph/CMakeLists.txt;0;")
