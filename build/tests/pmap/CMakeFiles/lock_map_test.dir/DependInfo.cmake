
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pmap/lock_map_test.cpp" "tests/pmap/CMakeFiles/lock_map_test.dir/lock_map_test.cpp.o" "gcc" "tests/pmap/CMakeFiles/lock_map_test.dir/lock_map_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dpg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ampp/CMakeFiles/dpg_ampp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
