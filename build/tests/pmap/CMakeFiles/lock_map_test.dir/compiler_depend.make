# Empty compiler generated dependencies file for lock_map_test.
# This may be replaced when dependencies are built.
