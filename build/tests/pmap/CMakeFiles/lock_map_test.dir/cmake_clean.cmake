file(REMOVE_RECURSE
  "CMakeFiles/lock_map_test.dir/lock_map_test.cpp.o"
  "CMakeFiles/lock_map_test.dir/lock_map_test.cpp.o.d"
  "lock_map_test"
  "lock_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
