# Empty compiler generated dependencies file for edge_map_test.
# This may be replaced when dependencies are built.
