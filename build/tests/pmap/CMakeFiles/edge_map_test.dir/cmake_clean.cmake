file(REMOVE_RECURSE
  "CMakeFiles/edge_map_test.dir/edge_map_test.cpp.o"
  "CMakeFiles/edge_map_test.dir/edge_map_test.cpp.o.d"
  "edge_map_test"
  "edge_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
