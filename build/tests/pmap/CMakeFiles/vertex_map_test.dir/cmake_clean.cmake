file(REMOVE_RECURSE
  "CMakeFiles/vertex_map_test.dir/vertex_map_test.cpp.o"
  "CMakeFiles/vertex_map_test.dir/vertex_map_test.cpp.o.d"
  "vertex_map_test"
  "vertex_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertex_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
