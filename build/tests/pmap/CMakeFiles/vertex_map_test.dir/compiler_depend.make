# Empty compiler generated dependencies file for vertex_map_test.
# This may be replaced when dependencies are built.
