# CMake generated Testfile for 
# Source directory: /root/repo/tests/pmap
# Build directory: /root/repo/build/tests/pmap
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(vertex_map_test "/root/repo/build/tests/pmap/vertex_map_test")
set_tests_properties(vertex_map_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/pmap/CMakeLists.txt;1;dpg_add_test;/root/repo/tests/pmap/CMakeLists.txt;0;")
add_test(edge_map_test "/root/repo/build/tests/pmap/edge_map_test")
set_tests_properties(edge_map_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/pmap/CMakeLists.txt;2;dpg_add_test;/root/repo/tests/pmap/CMakeLists.txt;0;")
add_test(lock_map_test "/root/repo/build/tests/pmap/lock_map_test")
set_tests_properties(lock_map_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/pmap/CMakeLists.txt;3;dpg_add_test;/root/repo/tests/pmap/CMakeLists.txt;0;")
