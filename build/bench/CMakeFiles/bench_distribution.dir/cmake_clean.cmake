file(REMOVE_RECURSE
  "CMakeFiles/bench_distribution.dir/bench_distribution.cpp.o"
  "CMakeFiles/bench_distribution.dir/bench_distribution.cpp.o.d"
  "bench_distribution"
  "bench_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
