# Empty compiler generated dependencies file for bench_distribution.
# This may be replaced when dependencies are built.
