file(REMOVE_RECURSE
  "CMakeFiles/bench_lock_map.dir/bench_lock_map.cpp.o"
  "CMakeFiles/bench_lock_map.dir/bench_lock_map.cpp.o.d"
  "bench_lock_map"
  "bench_lock_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lock_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
