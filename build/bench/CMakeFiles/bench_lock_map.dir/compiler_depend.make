# Empty compiler generated dependencies file for bench_lock_map.
# This may be replaced when dependencies are built.
