# Empty dependencies file for bench_reductions.
# This may be replaced when dependencies are built.
