file(REMOVE_RECURSE
  "CMakeFiles/bench_pagerank.dir/bench_pagerank.cpp.o"
  "CMakeFiles/bench_pagerank.dir/bench_pagerank.cpp.o.d"
  "bench_pagerank"
  "bench_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
