# Empty dependencies file for bench_pagerank.
# This may be replaced when dependencies are built.
