# Empty compiler generated dependencies file for bench_message_plan.
# This may be replaced when dependencies are built.
