file(REMOVE_RECURSE
  "CMakeFiles/bench_message_plan.dir/bench_message_plan.cpp.o"
  "CMakeFiles/bench_message_plan.dir/bench_message_plan.cpp.o.d"
  "bench_message_plan"
  "bench_message_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_message_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
