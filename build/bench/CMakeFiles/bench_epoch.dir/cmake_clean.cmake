file(REMOVE_RECURSE
  "CMakeFiles/bench_epoch.dir/bench_epoch.cpp.o"
  "CMakeFiles/bench_epoch.dir/bench_epoch.cpp.o.d"
  "bench_epoch"
  "bench_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
