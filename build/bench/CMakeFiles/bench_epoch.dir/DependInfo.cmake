
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_epoch.cpp" "bench/CMakeFiles/bench_epoch.dir/bench_epoch.cpp.o" "gcc" "bench/CMakeFiles/bench_epoch.dir/bench_epoch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algo/CMakeFiles/dpg_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/dpg_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dpg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ampp/CMakeFiles/dpg_ampp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
