# Empty compiler generated dependencies file for bench_epoch.
# This may be replaced when dependencies are built.
