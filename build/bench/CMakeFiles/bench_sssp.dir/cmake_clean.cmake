file(REMOVE_RECURSE
  "CMakeFiles/bench_sssp.dir/bench_sssp.cpp.o"
  "CMakeFiles/bench_sssp.dir/bench_sssp.cpp.o.d"
  "bench_sssp"
  "bench_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
