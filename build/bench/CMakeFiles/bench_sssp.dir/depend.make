# Empty dependencies file for bench_sssp.
# This may be replaced when dependencies are built.
