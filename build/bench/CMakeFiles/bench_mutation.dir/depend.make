# Empty dependencies file for bench_mutation.
# This may be replaced when dependencies are built.
