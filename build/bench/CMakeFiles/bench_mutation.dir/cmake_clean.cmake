file(REMOVE_RECURSE
  "CMakeFiles/bench_mutation.dir/bench_mutation.cpp.o"
  "CMakeFiles/bench_mutation.dir/bench_mutation.cpp.o.d"
  "bench_mutation"
  "bench_mutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
