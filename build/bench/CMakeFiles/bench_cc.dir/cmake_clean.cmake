file(REMOVE_RECURSE
  "CMakeFiles/bench_cc.dir/bench_cc.cpp.o"
  "CMakeFiles/bench_cc.dir/bench_cc.cpp.o.d"
  "bench_cc"
  "bench_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
