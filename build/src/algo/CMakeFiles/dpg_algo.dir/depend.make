# Empty dependencies file for dpg_algo.
# This may be replaced when dependencies are built.
