file(REMOVE_RECURSE
  "CMakeFiles/dpg_algo.dir/baselines.cpp.o"
  "CMakeFiles/dpg_algo.dir/baselines.cpp.o.d"
  "libdpg_algo.a"
  "libdpg_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
