file(REMOVE_RECURSE
  "libdpg_algo.a"
)
