file(REMOVE_RECURSE
  "CMakeFiles/dpg_graph.dir/distributed_graph.cpp.o"
  "CMakeFiles/dpg_graph.dir/distributed_graph.cpp.o.d"
  "CMakeFiles/dpg_graph.dir/generators.cpp.o"
  "CMakeFiles/dpg_graph.dir/generators.cpp.o.d"
  "CMakeFiles/dpg_graph.dir/io.cpp.o"
  "CMakeFiles/dpg_graph.dir/io.cpp.o.d"
  "libdpg_graph.a"
  "libdpg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
