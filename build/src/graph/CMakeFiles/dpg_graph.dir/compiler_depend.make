# Empty compiler generated dependencies file for dpg_graph.
# This may be replaced when dependencies are built.
