file(REMOVE_RECURSE
  "libdpg_graph.a"
)
