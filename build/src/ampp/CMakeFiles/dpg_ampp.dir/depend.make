# Empty dependencies file for dpg_ampp.
# This may be replaced when dependencies are built.
