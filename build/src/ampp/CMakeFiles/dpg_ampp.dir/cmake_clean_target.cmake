file(REMOVE_RECURSE
  "libdpg_ampp.a"
)
