file(REMOVE_RECURSE
  "CMakeFiles/dpg_ampp.dir/transport.cpp.o"
  "CMakeFiles/dpg_ampp.dir/transport.cpp.o.d"
  "libdpg_ampp.a"
  "libdpg_ampp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_ampp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
