# CMake generated Testfile for 
# Source directory: /root/repo/src/ampp
# Build directory: /root/repo/build/src/ampp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
