file(REMOVE_RECURSE
  "libdpg_pattern.a"
)
