# Empty compiler generated dependencies file for dpg_pattern.
# This may be replaced when dependencies are built.
