file(REMOVE_RECURSE
  "CMakeFiles/dpg_pattern.dir/parse.cpp.o"
  "CMakeFiles/dpg_pattern.dir/parse.cpp.o.d"
  "libdpg_pattern.a"
  "libdpg_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
