# Empty compiler generated dependencies file for dpg_util.
# This may be replaced when dependencies are built.
