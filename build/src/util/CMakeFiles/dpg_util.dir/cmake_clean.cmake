file(REMOVE_RECURSE
  "CMakeFiles/dpg_util.dir/log.cpp.o"
  "CMakeFiles/dpg_util.dir/log.cpp.o.d"
  "libdpg_util.a"
  "libdpg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
