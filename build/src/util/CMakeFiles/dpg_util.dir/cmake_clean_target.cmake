file(REMOVE_RECURSE
  "libdpg_util.a"
)
