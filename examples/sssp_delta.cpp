// Road-network-style SSSP: the workload Δ-stepping was designed for — a
// large-diameter grid with non-uniform weights. Runs the SAME declarative
// relax pattern under the chaotic fixed point and under Δ-stepping with a
// sweep of Δ values, printing times, relaxation counts, and epoch counts
// (the paper's reuse claim made concrete: only the strategy changes).
//
// Usage: sssp_delta [grid_side=128] [n_ranks=4]
#include <cstdio>
#include <cstdlib>

#include "algo/baselines.hpp"
#include "algo/sssp.hpp"
#include "graph/generators.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dpg;
  const graph::vertex_id side = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 128;
  const ampp::rank_t ranks = argc > 2 ? static_cast<ampp::rank_t>(std::atoi(argv[2])) : 4;

  const auto edges = graph::grid_graph(side, side);
  const graph::vertex_id n = side * side;
  graph::distributed_graph g(n, edges, graph::distribution::cyclic(n, ranks));
  pmap::edge_property_map<double> weight(g, [](const graph::edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 1234, 10.0);
  });

  std::printf("grid %llu x %llu (%llu vertices, %llu edges), %u ranks\n",
              (unsigned long long)side, (unsigned long long)side,
              (unsigned long long)n, (unsigned long long)g.num_edges(), ranks);

  // Sequential baseline for reference and verification.
  timer t0;
  const auto oracle = algo::dijkstra(g, weight, 0);
  std::printf("%-28s %8.1f ms\n", "dijkstra (sequential)", t0.milliseconds());

  ampp::transport tp(ampp::transport_config{.n_ranks = ranks});
  algo::sssp_solver solver(tp, g, weight);

  auto verify = [&] {
    for (graph::vertex_id v = 0; v < n; ++v)
      if (solver.dist()[v] != oracle[v]) {
        std::fprintf(stderr, "MISMATCH at %llu\n", (unsigned long long)v);
        std::exit(1);
      }
  };

  strategy::result res;
  auto on_rank0 = [&](ampp::transport_context& ctx, const strategy::result& r) {
    if (ctx.rank() == 0) res = r;
  };

  {
    timer t;
    tp.run([&](ampp::transport_context& ctx) {
      on_rank0(ctx, solver.run_fixed_point(ctx, 0));
    });
    std::printf("%-28s %8.1f ms   relaxations=%llu\n", "fixed_point (chaotic)",
                t.milliseconds(), (unsigned long long)res.modifications);
    verify();
  }

  for (double delta : {1.0, 5.0, 20.0, 100.0, 1000.0, 1e9}) {
    timer t;
    tp.run([&](ampp::transport_context& ctx) {
      on_rank0(ctx, solver.run_delta(ctx, 0, delta));
    });
    std::printf("delta-stepping  Δ=%-9.0f %8.1f ms   relaxations=%llu epochs=%llu\n",
                delta, t.milliseconds(), (unsigned long long)res.modifications,
                (unsigned long long)res.rounds);
    verify();
  }

  {
    timer t;
    tp.run([&](ampp::transport_context& ctx) {
      solver.run_delta_uncoordinated(ctx, 0, 20.0);
    });
    std::printf("%-28s %8.1f ms   (single epoch, try_finish)\n",
                "delta uncoordinated Δ=20", t.milliseconds());
    verify();
  }
  std::printf("all runs match dijkstra.\n");
  return 0;
}
