// Web-graph-style PageRank: the scatter pattern on an R-MAT graph (the
// paper's "declarative patterns inside imperative algorithms" — the
// per-iteration damping/teleport epilogue is plain imperative code).
// Prints the top pages and checks them against sequential power iteration.
//
// Usage: pagerank_top [scale=12] [n_ranks=4] [iterations=20]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "algo/baselines.hpp"
#include "algo/pagerank.hpp"
#include "graph/generators.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dpg;
  const unsigned scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 12;
  const ampp::rank_t ranks = argc > 2 ? static_cast<ampp::rank_t>(std::atoi(argv[2])) : 4;
  const int iters = argc > 3 ? std::atoi(argv[3]) : 20;

  graph::rmat_params p;
  p.scale = scale;
  p.edge_factor = 8;
  const auto n = graph::vertex_id{1} << scale;
  const auto edges = graph::rmat(p, 7);
  graph::distributed_graph g(n, edges, graph::distribution::cyclic(n, ranks));

  std::printf("R-MAT scale %u (%llu vertices, %llu edges), %u ranks, %d iterations\n",
              scale, (unsigned long long)n, (unsigned long long)g.num_edges(), ranks,
              iters);

  ampp::transport tp(ampp::transport_config{.n_ranks = ranks});
  algo::pagerank_solver pr(tp, g);
  timer t;
  tp.run([&](ampp::transport_context& ctx) { pr.run(ctx, 0.85, iters); });
  std::printf("pattern PageRank: %.1f ms\n", t.milliseconds());

  timer t2;
  const auto baseline = algo::pagerank(g, 0.85, iters);
  std::printf("sequential baseline: %.1f ms\n", t2.milliseconds());

  std::vector<graph::vertex_id> order(n);
  for (graph::vertex_id v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](graph::vertex_id a, graph::vertex_id b) {
    return pr.ranks()[a] > pr.ranks()[b];
  });

  std::printf("top 10 pages (rank, out-degree, in-degree):\n");
  for (int i = 0; i < 10; ++i) {
    const auto v = order[i];
    std::printf("  #%-2d v=%-8llu rank=%.6f outdeg=%llu\n", i + 1,
                (unsigned long long)v, pr.ranks()[v],
                (unsigned long long)g.out_degree(v));
  }

  double max_err = 0;
  for (graph::vertex_id v = 0; v < n; ++v)
    max_err = std::max(max_err, std::abs(pr.ranks()[v] - baseline[v]));
  std::printf("max |pattern - baseline| = %.3e\n", max_err);
  return max_err < 1e-9 ? 0 : 1;
}
