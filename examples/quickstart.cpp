// Quickstart: the complete path from nothing to a solved problem, in the
// shape the paper's §II-A presents it.
//
//   1. build a distributed graph (simulated ranks inside this process),
//   2. declare property maps,
//   3. write the SSSP pattern declaratively (Fig. 2),
//   4. run it imperatively with the fixed_point strategy,
//   5. read the results back.
//
// Usage: quickstart [n_ranks]
#include <cstdio>
#include <cstdlib>

#include "ampp/transport.hpp"
#include "graph/generators.hpp"
#include "pattern/action.hpp"
#include "strategy/strategies.hpp"

int main(int argc, char** argv) {
  using namespace dpg;
  const ampp::rank_t ranks = argc > 1 ? static_cast<ampp::rank_t>(std::atoi(argv[1])) : 4;

  // --- 1. a small weighted digraph, distributed over `ranks` ranks -------
  //
  //        (0) --2--> (1) --2--> (2)
  //          \                   ^
  //           5-----> (3) --1---/
  const graph::vertex_id n = 4;
  const std::vector<graph::edge> edges{{0, 1}, {1, 2}, {0, 3}, {3, 2}};
  graph::distributed_graph g(n, edges, graph::distribution::cyclic(n, ranks));

  // --- 2. property maps (§III-B): data lives with the owning rank --------
  pmap::vertex_property_map<double> dist_map(g, 1e100);
  pmap::edge_property_map<double> weight_map(g, [](const graph::edge_handle& e) {
    if (e.src == 0 && e.dst == 3) return 5.0;
    if (e.src == 3 && e.dst == 2) return 1.0;
    return 2.0;
  });
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);

  // --- 3. the declarative SSSP pattern (paper Fig. 2) --------------------
  // The framework analyzes which values the condition touches, computes
  // their localities, and synthesizes the messages (one per edge, §IV-A).
  ampp::transport tp(ampp::transport_config{.n_ranks = ranks});
  pattern::property dist(dist_map);
  pattern::property weight(weight_map);
  using namespace pattern;  // v_, e_, trg, when, assign
  auto relax = instantiate(tp, g, locks,
                           make_action("relax", out_edges_gen{},
                                       when(dist(trg(e_)) > dist(v_) + weight(e_),
                                            assign(dist(trg(e_)), dist(v_) + weight(e_)))));

  // --- 4. imperative part: the fixed_point strategy (§II-A) --------------
  // Every strategy returns a strategy::result: rounds run, modifications
  // made, and (by default) the message-level stats delta of the run.
  dist_map[0] = 0.0;
  strategy::result res;
  tp.run([&](ampp::transport_context& ctx) {
    std::vector<graph::vertex_id> seeds;
    if (g.owner(0) == ctx.rank()) seeds.push_back(0);
    const strategy::result r = strategy::fixed_point(ctx, *relax, seeds);
    if (ctx.rank() == 0) res = r;
  });

  // --- 5. results ----------------------------------------------------------
  std::printf("SSSP from vertex 0 over %u simulated ranks:\n", ranks);
  for (graph::vertex_id v = 0; v < n; ++v)
    std::printf("  dist[%llu] = %.1f   (owner: rank %u)\n",
                static_cast<unsigned long long>(v), dist_map[v], g.owner(v));
  std::printf("relax applications: %llu, successful relaxations: %llu\n",
              static_cast<unsigned long long>(relax->invocations()),
              static_cast<unsigned long long>(res.modifications));
  std::printf("messages sent during the run: %llu (%llu bytes)\n",
              static_cast<unsigned long long>(res.stats_delta.core.messages_sent),
              static_cast<unsigned long long>(res.stats_delta.core.bytes_sent));
  std::printf("plan: %d gather hop(s), %d message(s) per edge, atomic=%s\n",
              relax->plan().gather_hops, relax->plan().messages_per_application(),
              relax->plan().atomic_path ? "yes" : "no");
  return 0;
}
