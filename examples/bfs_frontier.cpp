// Graph500-style BFS: the hop-count pattern on an R-MAT graph from random
// sources, reporting level populations and traversal rate — and showing
// the same declarative action under two schedules (chaotic fixed point vs
// the Δ=1 bucket schedule, which expands frontier by frontier).
//
// Usage: bfs_frontier [scale=13] [n_ranks=4] [sources=3]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "algo/bfs.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dpg;
  const unsigned scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 13;
  const ampp::rank_t ranks = argc > 2 ? static_cast<ampp::rank_t>(std::atoi(argv[2])) : 4;
  const int n_sources = argc > 3 ? std::atoi(argv[3]) : 3;

  graph::rmat_params p;
  p.scale = scale;
  p.edge_factor = 16;  // Graph500 default
  const auto n = graph::vertex_id{1} << scale;
  const auto edges = graph::symmetrize(graph::rmat(p, 2));
  graph::distributed_graph g(n, edges, graph::distribution::cyclic(n, ranks));
  std::printf("R-MAT scale %u, edge factor 16, symmetrized: %llu edges, %u ranks\n",
              scale, (unsigned long long)g.num_edges(), ranks);

  ampp::transport tp(ampp::transport_config{.n_ranks = ranks});
  algo::bfs_solver bfs(tp, g);

  xoshiro256ss rng(99);
  for (int s = 0; s < n_sources; ++s) {
    const graph::vertex_id source = rng.below(n);
    timer t;
    tp.run([&](ampp::transport_context& ctx) { bfs.run_fixed_point(ctx, source); });
    const double ms = t.milliseconds();

    std::map<std::uint64_t, std::uint64_t> levels;
    std::uint64_t reached = 0;
    for (graph::vertex_id v = 0; v < n; ++v) {
      const auto d = bfs.depth()[v];
      if (d != bfs.unreachable_depth()) {
        ++levels[d];
        ++reached;
      }
    }
    std::printf("source %llu: reached %llu vertices in %.1f ms (%.2f M edges/s)\n",
                (unsigned long long)source, (unsigned long long)reached, ms,
                static_cast<double>(g.num_edges()) / (ms * 1e3));
    std::printf("  frontier sizes:");
    for (const auto& [lvl, cnt] : levels) {
      std::printf(" L%llu=%llu", (unsigned long long)lvl, (unsigned long long)cnt);
      if (lvl > 9) break;
    }
    std::printf("\n");

    // Cross-check the Δ=1 bucket schedule.
    std::vector<std::uint64_t> chaotic(n);
    for (graph::vertex_id v = 0; v < n; ++v) chaotic[v] = bfs.depth()[v];
    tp.run([&](ampp::transport_context& ctx) { bfs.run_level_sync(ctx, source); });
    for (graph::vertex_id v = 0; v < n; ++v) {
      if (bfs.depth()[v] != chaotic[v]) {
        std::fprintf(stderr, "SCHEDULE MISMATCH at v=%llu\n", (unsigned long long)v);
        return 1;
      }
    }
  }
  std::printf("both schedules agree on all sources.\n");
  return 0;
}
