// The CC pattern of the paper's §II-B / Fig. 4: parallel search with
// conflict recording, plus the pointer-jumping rewrite action.
pattern CC {
  vertex_property<vertex> pnt;
  vertex_property<vertex> chg;
  vertex_property<vertex_list> conf;

  action cc_search(v) {
    generator e : out_edges;
    when (pnt[trg(e)] == null_vertex) {
      pnt[trg(e)] = pnt[v];
    }
    when (pnt[trg(e)] != pnt[v]) {
      conf[trg(e)].insert(pnt[v]);
    }
  }

  action cc_jump(v) {
    when (chg[pnt[v]] < chg[v]) {
      chg[v] = chg[pnt[v]];
    }
  }
}
