// Two more shapes: a pull-style relax (gather at the generator end,
// modify back at v) and an unconditional scatter-accumulate.
pattern Extras {
  vertex_property<double> dist;
  edge_property<double> weight;
  vertex_property<double> next;
  vertex_property<double> share;

  action pull_relax(v) {
    generator e : out_edges;
    when (dist[v] > dist[trg(e)] + weight[e]) {
      dist[v] = dist[trg(e)] + weight[e];
    }
  }

  action scatter(v) {
    generator e : out_edges;
    when (true) {
      next[trg(e)].accumulate(share[v]);
    }
  }
}
