// The SSSP pattern of the paper's Fig. 2, in the textual grammar.
// Run:  pattern_explain examples/patterns/sssp.pat
pattern SSSP {
  vertex_property<double> dist;
  edge_property<double> weight;

  action relax(v) {
    generator e : out_edges;
    alias d = dist[v] + weight[e];
    when (dist[trg(e)] > d) {
      dist[trg(e)] = d;
    }
  }
}
