// Graph500-style benchmark driver: the workload the paper's introduction
// sizes the problem by. Generates a Kronecker graph at the given scale,
// runs the BFS kernel from multiple sampled roots and the SSSP kernel
// (Δ-stepping) from the same roots, validates each against sequential
// oracles, and reports per-root and harmonic-mean TEPS.
//
// Usage: graph500_kernels [scale=12] [n_ranks=4] [roots=8]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "algo/baselines.hpp"
#include "algo/bfs.hpp"
#include "algo/sssp.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dpg;
  const unsigned scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 12;
  const ampp::rank_t ranks = argc > 2 ? static_cast<ampp::rank_t>(std::atoi(argv[2])) : 4;
  const int n_roots = argc > 3 ? std::atoi(argv[3]) : 8;

  graph::rmat_params p;
  p.scale = scale;
  p.edge_factor = 16;  // Graph500 default
  const auto n = graph::vertex_id{1} << scale;

  timer tgen;
  const auto raw = graph::rmat(p, 20260706);
  const auto edges = graph::symmetrize(raw);
  graph::distributed_graph g(n, edges, graph::distribution::cyclic(n, ranks));
  pmap::edge_property_map<double> weight(g, [](const graph::edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 42, 255.0);  // uniform [1,255]
  });
  std::printf("kronecker scale=%u edgefactor=%u: %llu vertices, %llu directed edges "
              "(construction %.1f s), %u ranks\n",
              scale, p.edge_factor, (unsigned long long)n,
              (unsigned long long)g.num_edges(), tgen.seconds(), ranks);

  // Sample roots with non-zero degree, as the spec prescribes.
  std::vector<graph::vertex_id> roots;
  xoshiro256ss rng(1);
  while (roots.size() < static_cast<std::size_t>(n_roots)) {
    const graph::vertex_id r = rng.below(n);
    if (g.out_degree(r) > 0) roots.push_back(r);
  }

  ampp::transport tp(ampp::transport_config{.n_ranks = ranks});
  algo::bfs_solver bfs(tp, g);
  algo::sssp_solver sssp(tp, g, weight);

  auto harmonic_mean = [](const std::vector<double>& xs) {
    double s = 0;
    for (double x : xs) s += 1.0 / x;
    return xs.size() / s;
  };

  std::vector<double> bfs_teps, sssp_teps;
  for (const auto root : roots) {
    // --- BFS kernel ---------------------------------------------------------
    timer t1;
    tp.run([&](ampp::transport_context& ctx) { bfs.run_fixed_point(ctx, root); });
    const double bfs_s = t1.seconds();
    // Traversed edges: sum of degrees of reached vertices.
    std::uint64_t traversed = 0, reached = 0;
    for (graph::vertex_id v = 0; v < n; ++v) {
      if (bfs.depth()[v] != bfs.unreachable_depth()) {
        traversed += g.out_degree(v);
        ++reached;
      }
    }
    // Validate against the sequential oracle.
    const auto oracle = algo::bfs_levels(g, root);
    for (graph::vertex_id v = 0; v < n; ++v) {
      const auto want = oracle[v] < 0 ? bfs.unreachable_depth()
                                      : static_cast<std::uint64_t>(oracle[v]);
      if (bfs.depth()[v] != want) {
        std::fprintf(stderr, "BFS VALIDATION FAILED at %llu\n", (unsigned long long)v);
        return 1;
      }
    }
    bfs_teps.push_back(static_cast<double>(traversed) / bfs_s);

    // --- SSSP kernel --------------------------------------------------------
    timer t2;
    tp.run([&](ampp::transport_context& ctx) { sssp.run_delta(ctx, root, 64.0); });
    const double sssp_s = t2.seconds();
    const auto doracle = algo::dijkstra(g, weight, root);
    for (graph::vertex_id v = 0; v < n; ++v) {
      if (sssp.dist()[v] != doracle[v]) {
        std::fprintf(stderr, "SSSP VALIDATION FAILED at %llu\n", (unsigned long long)v);
        return 1;
      }
    }
    sssp_teps.push_back(static_cast<double>(traversed) / sssp_s);

    std::printf("root %-8llu reached %-7llu  bfs %6.1f ms (%6.2f MTEPS)   "
                "sssp %6.1f ms (%6.2f MTEPS)\n",
                (unsigned long long)root, (unsigned long long)reached, bfs_s * 1e3,
                bfs_teps.back() / 1e6, sssp_s * 1e3, sssp_teps.back() / 1e6);
  }

  std::printf("harmonic-mean BFS:  %.2f MTEPS over %d roots (validated)\n",
              harmonic_mean(bfs_teps) / 1e6, n_roots);
  std::printf("harmonic-mean SSSP: %.2f MTEPS over %d roots (validated)\n",
              harmonic_mean(sssp_teps) / 1e6, n_roots);
  return 0;
}
