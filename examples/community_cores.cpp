// Community-analysis pipeline on a social-network-style graph: connected
// components → k-core decomposition → maximal independent set, all through
// the pattern framework, on one shared graph. Demonstrates composing
// several pattern-based solvers in a single program.
//
// Usage: community_cores [scale=11] [n_ranks=4]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "algo/cc.hpp"
#include "algo/kcore.hpp"
#include "algo/mis.hpp"
#include "graph/generators.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dpg;
  const unsigned scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 11;
  const ampp::rank_t ranks = argc > 2 ? static_cast<ampp::rank_t>(std::atoi(argv[2])) : 4;

  graph::rmat_params p;
  p.scale = scale;
  p.edge_factor = 6;
  const auto n = graph::vertex_id{1} << scale;
  const auto edges = graph::symmetrize(graph::simplify(graph::rmat(p, 123)));
  graph::distributed_graph g(n, edges, graph::distribution::cyclic(n, ranks));
  std::printf("social graph: %llu vertices, %llu directed edges, %u ranks\n\n",
              (unsigned long long)n, (unsigned long long)g.num_edges(), ranks);

  // 1. Communities = connected components (paper Fig. 3 parallel search).
  timer t1;
  algo::cc_solver cc(g, ampp::transport_config{.n_ranks = ranks});
  cc.solve();
  std::map<graph::vertex_id, std::uint64_t> comp_sizes;
  for (graph::vertex_id v = 0; v < n; ++v) ++comp_sizes[cc.components()[v]];
  std::uint64_t giant = 0;
  for (const auto& [root, size] : comp_sizes) giant = std::max(giant, size);
  std::printf("[1] components: %zu (giant: %llu vertices) in %.1f ms\n",
              comp_sizes.size(), (unsigned long long)giant, t1.milliseconds());

  // 2. Cohesion = k-core decomposition (peeling pattern).
  timer t2;
  ampp::transport tp2(ampp::transport_config{.n_ranks = ranks});
  algo::kcore_solver kcore(tp2, g);
  std::uint64_t degeneracy = 0;
  tp2.run([&](ampp::transport_context& ctx) {
    const auto d = kcore.run(ctx);
    if (ctx.rank() == 0) degeneracy = d;
  });
  std::map<std::uint64_t, std::uint64_t> core_hist;
  for (graph::vertex_id v = 0; v < n; ++v) ++core_hist[kcore.coreness()[v]];
  std::printf("[2] degeneracy %llu in %.1f ms; coreness histogram (top):\n",
              (unsigned long long)degeneracy, t2.milliseconds());
  int shown = 0;
  for (auto it = core_hist.rbegin(); it != core_hist.rend() && shown < 5; ++it, ++shown)
    std::printf("      core %-4llu: %llu vertices\n", (unsigned long long)it->first,
                (unsigned long long)it->second);

  // 3. Influencer seed set = maximal independent set (Luby rounds).
  timer t3;
  ampp::transport tp3(ampp::transport_config{.n_ranks = ranks});
  algo::mis_solver mis(tp3, g);
  int rounds = 0;
  tp3.run([&](ampp::transport_context& ctx) {
    const int r = mis.run(ctx);
    if (ctx.rank() == 0) rounds = r;
  });
  std::uint64_t members = 0;
  for (graph::vertex_id v = 0; v < n; ++v) members += mis.in_set(v) ? 1 : 0;
  std::printf("[3] MIS: %llu members in %d Luby rounds, %.1f ms\n",
              (unsigned long long)members, rounds, t3.milliseconds());

  return 0;
}
