// The pattern translator front-end as a command-line tool: reads a pattern
// source file (the §III grammar), checks it, and prints the communication
// the framework would synthesize for each action (localities, gather hops,
// merging, synchronization, dependencies) — the paper's planned
// "translator for patterns", analysis half.
//
// Usage: pattern_explain <file.pat>
//        pattern_explain --demo      (runs on the built-in SSSP + CC text)
//        pattern_explain --measure   (instantiates the demo patterns, runs
//                                     them, and prints each plan's MEASURED
//                                     message chain from the obs registry)
//        pattern_explain --fuse      (fuses sssp+widest+bfs-tree into one
//                                     message family, prints the fused wire
//                                     layout — shared addressing bytes,
//                                     per-member live slots, per-hop fused
//                                     payload — then runs the fused fixed
//                                     point and prints the measured chain)
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "algo/fused.hpp"
#include "graph/generators.hpp"
#include "pattern/action.hpp"
#include "pattern/parse.hpp"
#include "strategy/strategies.hpp"

namespace {

constexpr const char* kDemo = R"(
// SSSP (paper Fig. 2) and CC (paper Fig. 4) patterns.
pattern Demo {
  vertex_property<double> dist;
  edge_property<double> weight;
  vertex_property<vertex> pnt;
  vertex_property<vertex> chg;
  vertex_property<vertex_list> conf;

  action relax(v) {
    generator e : out_edges;
    alias d = dist[v] + weight[e];
    when (dist[trg(e)] > d) {
      dist[trg(e)] = d;
    }
  }

  action cc_search(v) {
    generator e : out_edges;
    when (pnt[trg(e)] == null_vertex) {
      pnt[trg(e)] = pnt[v];
    }
    when (pnt[trg(e)] != pnt[v]) {
      conf[trg(e)].insert(pnt[v]);
    }
  }

  action cc_jump(v) {
    when (chg[pnt[v]] < chg[v]) {
      chg[v] = chg[pnt[v]];
    }
  }
}
)";

// Instantiates the demo relax (Fig. 2) and cc_jump (Fig. 4) actions on a
// small graph, runs one strategy round of each, and prints the message
// chain each plan *actually* produced: the per-type sent/handled/bytes
// counters the obs registry attributed to the synthesized gather/evaluate
// message types.
int run_measure() {
  using namespace dpg;
  using namespace dpg::pattern;
  using graph::vertex_id;

  const vertex_id n = 64;
  const auto edges = graph::symmetrize(graph::path_graph(n));
  graph::distributed_graph g(n, edges, graph::distribution::cyclic(n, 4));
  pmap::vertex_property_map<double> dist_map(g, 1e100);
  pmap::edge_property_map<double> weight_map(g, 1.0);
  pmap::vertex_property_map<vertex_id> pnt_map(g, 0);
  pmap::vertex_property_map<vertex_id> chg_map(g, 0);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = 4});

  property dist(dist_map);
  property weight(weight_map);
  property P(pnt_map);
  property C(chg_map);
  auto relax = instantiate(tp, g, locks,
                           make_action("relax", out_edges_gen{},
                                       when(dist(trg(e_)) > dist(v_) + weight(e_),
                                            assign(dist(trg(e_)), dist(v_) + weight(e_)))));
  auto jump = instantiate(tp, g, locks,
                          make_action("cc_jump", no_generator{},
                                      when(C(P(v_)) < C(v_), assign(C(v_), C(P(v_))))));

  dist_map[0] = 0.0;
  for (vertex_id v = 0; v < n; ++v) {
    pnt_map[v] = v == 0 ? 0 : v - 1;
    chg_map[v] = v;
  }
  tp.run([&](ampp::transport_context& ctx) {
    std::vector<vertex_id> seeds;
    if (g.owner(0) == ctx.rank()) seeds.push_back(0);
    strategy::fixed_point(ctx, *relax, seeds);
    std::vector<vertex_id> mine;
    for (vertex_id v = 0; v < n; ++v)
      if (g.owner(v) == ctx.rank()) mine.push_back(v);
    strategy::once(ctx, *jump, mine);
  });

  std::fputs(explain("relax", relax->plan()).c_str(), stdout);
  std::fputs(explain("cc_jump", jump->plan()).c_str(), stdout);
  std::printf("\nmeasured message chain (per synthesized message type):\n");
  std::printf("  %-20s %10s %10s %12s %12s\n", "type", "sent", "handled", "bytes",
              "wire_bytes");
  const obs::registry& reg = tp.obs();
  for (std::size_t i = 0; i < reg.num_types(); ++i) {
    if (reg.type_internal(i)) continue;  // control plane (TD, collectives)
    std::printf("  %-20s %10llu %10llu %12llu %12llu\n", reg.type_name(i).c_str(),
                static_cast<unsigned long long>(reg.type_sent(i)),
                static_cast<unsigned long long>(reg.type_handled(i)),
                static_cast<unsigned long long>(reg.type_bytes(i)),
                static_cast<unsigned long long>(reg.type_wire_bytes(i)));
  }
  return 0;
}

// Fuses the sssp+widest+bfs-tree triple (the bench_fusion workload) on a
// small graph, prints the fused plan — the packed wire layout plus the
// group-dispatch/fixed-point summary — runs it, and prints the measured
// per-type chain so the fused lane and the per-member solo lanes are
// visible side by side.
int run_fuse() {
  using namespace dpg;
  using graph::vertex_id;

  const vertex_id n = 64;
  const auto edges = graph::symmetrize(graph::path_graph(n));
  graph::distributed_graph g(n, edges, graph::distribution::cyclic(n, 4));
  pmap::edge_property_map<double> weight_map(g, 1.0);
  pmap::edge_property_map<double> cap_map(g, 2.0);
  ampp::transport tp(ampp::transport_config{.n_ranks = 4});
  algo::fused_triple_solver fused(tp, g, weight_map, cap_map);

  std::fputs(pattern::explain_fused(fused.action()).c_str(), stdout);

  tp.run([&](ampp::transport_context& ctx) {
    fused.run(ctx, {.sssp = 0, .widest = 0, .bfs = 0});
  });

  std::printf("\nmeasured message chain (per synthesized message type):\n");
  std::printf("  %-34s %10s %10s %12s %12s\n", "type", "sent", "handled", "bytes",
              "wire_bytes");
  const obs::registry& reg = tp.obs();
  for (std::size_t i = 0; i < reg.num_types(); ++i) {
    if (reg.type_internal(i)) continue;  // control plane (TD, collectives)
    std::printf("  %-34s %10llu %10llu %12llu %12llu\n", reg.type_name(i).c_str(),
                static_cast<unsigned long long>(reg.type_sent(i)),
                static_cast<unsigned long long>(reg.type_handled(i)),
                static_cast<unsigned long long>(reg.type_bytes(i)),
                static_cast<unsigned long long>(reg.type_wire_bytes(i)));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string source;
  if (argc == 2 && std::string(argv[1]) == "--measure") {
    return run_measure();
  } else if (argc == 2 && std::string(argv[1]) == "--fuse") {
    return run_fuse();
  } else if (argc == 2 && std::string(argv[1]) == "--demo") {
    source = kDemo;
  } else if (argc == 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  } else {
    std::fprintf(stderr, "usage: %s <file.pat> | --demo | --measure | --fuse\n", argv[0]);
    return 1;
  }

  try {
    std::fputs(dpg::pattern::text::explain_source(source).c_str(), stdout);
  } catch (const dpg::pattern::text::parse_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
