// The pattern translator front-end as a command-line tool: reads a pattern
// source file (the §III grammar), checks it, and prints the communication
// the framework would synthesize for each action (localities, gather hops,
// merging, synchronization, dependencies) — the paper's planned
// "translator for patterns", analysis half.
//
// Usage: pattern_explain <file.pat>
//        pattern_explain --demo      (runs on the built-in SSSP + CC text)
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "pattern/parse.hpp"

namespace {

constexpr const char* kDemo = R"(
// SSSP (paper Fig. 2) and CC (paper Fig. 4) patterns.
pattern Demo {
  vertex_property<double> dist;
  edge_property<double> weight;
  vertex_property<vertex> pnt;
  vertex_property<vertex> chg;
  vertex_property<vertex_list> conf;

  action relax(v) {
    generator e : out_edges;
    alias d = dist[v] + weight[e];
    when (dist[trg(e)] > d) {
      dist[trg(e)] = d;
    }
  }

  action cc_search(v) {
    generator e : out_edges;
    when (pnt[trg(e)] == null_vertex) {
      pnt[trg(e)] = pnt[v];
    }
    when (pnt[trg(e)] != pnt[v]) {
      conf[trg(e)].insert(pnt[v]);
    }
  }

  action cc_jump(v) {
    when (chg[pnt[v]] < chg[v]) {
      chg[v] = chg[pnt[v]];
    }
  }
}
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source;
  if (argc == 2 && std::string(argv[1]) == "--demo") {
    source = kDemo;
  } else if (argc == 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  } else {
    std::fprintf(stderr, "usage: %s <file.pat> | --demo\n", argv[0]);
    return 1;
  }

  try {
    std::fputs(dpg::pattern::text::explain_source(source).c_str(), stdout);
  } catch (const dpg::pattern::text::parse_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
