// Social-network-style connected components: the paper's Fig. 3 parallel
// search on a power-law (R-MAT) graph — one giant component plus many
// fragments. Prints the component-size histogram and the algorithm's
// diagnostics (searches seeded, collisions recorded, pointer-jump rounds),
// and validates against union-find.
//
// Usage: connected_components [scale=12] [n_ranks=4] [--no-flush]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "algo/baselines.hpp"
#include "algo/cc.hpp"
#include "graph/generators.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dpg;
  const unsigned scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 12;
  const ampp::rank_t ranks = argc > 2 ? static_cast<ampp::rank_t>(std::atoi(argv[2])) : 4;
  bool flush = true;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--no-flush") == 0) flush = false;

  graph::rmat_params p;
  p.scale = scale;
  p.edge_factor = 2;  // sparse: interesting component structure
  const auto n = graph::vertex_id{1} << scale;
  const auto edges = graph::symmetrize(graph::rmat(p, 31));
  graph::distributed_graph g(n, edges, graph::distribution::cyclic(n, ranks));

  std::printf("R-MAT scale %u (%llu vertices, %llu directed edges), %u ranks, flush=%s\n",
              scale, (unsigned long long)n, (unsigned long long)g.num_edges(), ranks,
              flush ? "yes" : "no");

  timer t;
  algo::cc_solver cc(g, ampp::transport_config{.n_ranks = ranks});
  cc.solve(flush);
  const double ms = t.milliseconds();

  // Histogram of component sizes.
  std::map<graph::vertex_id, std::uint64_t> size_of;
  for (graph::vertex_id v = 0; v < n; ++v) ++size_of[cc.components()[v]];
  std::map<std::uint64_t, std::uint64_t> histogram;  // size -> how many
  for (const auto& [root, size] : size_of) ++histogram[size];

  std::printf("solved in %.1f ms: %zu components\n", ms, size_of.size());
  std::printf("  searches seeded:    %llu\n", (unsigned long long)cc.searches_seeded());
  std::printf("  collisions (pairs): %llu\n", (unsigned long long)cc.conflict_pairs());
  std::printf("  jump rounds:        %d\n", cc.jump_rounds());
  std::printf("component size histogram (size x count):\n");
  int shown = 0;
  for (auto it = histogram.rbegin(); it != histogram.rend() && shown < 8; ++it, ++shown)
    std::printf("  %8llu x %llu\n", (unsigned long long)it->first,
                (unsigned long long)it->second);

  // Validate against the union-find oracle.
  const auto oracle = algo::cc_union_find(g);
  std::map<graph::vertex_id, graph::vertex_id> fwd;
  for (graph::vertex_id v = 0; v < n; ++v) {
    auto [it, fresh] = fwd.emplace(oracle[v], cc.components()[v]);
    if (!fresh && it->second != cc.components()[v]) {
      std::fprintf(stderr, "PARTITION MISMATCH at v=%llu\n", (unsigned long long)v);
      return 1;
    }
  }
  std::printf("partition matches union-find oracle.\n");
  return 0;
}
