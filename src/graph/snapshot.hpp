// Immutable snapshot views over a versioned distributed graph.
//
// PR 5 made topology mutable in place behind a monotonic version counter;
// the serving layer needs the complementary read-side primitive: a cheap,
// copyable view *pinned* to the version that was live when the view was
// taken. A solver session holds a snapshot_view for the duration of one
// query, so the result it produces is attributable to exactly one topology
// version — the property the result cache keys on.
//
// A snapshot_view does not freeze the graph (mutation is already confined
// to the non-morphing boundary between transport runs); it freezes the
// *claim*: `current()` says whether the pinned version is still the live
// topology, and `graph()` asserts the pin still holds, so a stale session
// cannot silently read post-mutation structure while advertising an old
// version. Re-pinning after a mutation is one `refresh()` — property maps
// already grow lazily on version change, so sessions stay warm across
// mutations.
#pragma once

#include <cstdint>

#include "graph/distributed_graph.hpp"
#include "util/assert.hpp"

namespace dpg::graph {

class snapshot_view {
 public:
  /// An unbound view (no graph); bound() is false.
  snapshot_view() = default;

  /// Pins `g` at its current topology version.
  explicit snapshot_view(const distributed_graph& g)
      : g_(&g), version_(g.version()), structure_version_(g.structure_version()) {}

  bool bound() const noexcept { return g_ != nullptr; }

  /// The pinned topology version (what results computed through this view
  /// must be attributed to).
  std::uint64_t version() const noexcept { return version_; }
  /// The pinned structure version (edge-id numbering; bumped by compact()).
  std::uint64_t structure_version() const noexcept { return structure_version_; }

  /// True while the pinned version is still the live topology. Any
  /// apply_edges()/compact() since the pin makes the view stale.
  bool current() const noexcept { return g_ != nullptr && g_->version() == version_; }

  /// The underlying graph. Asserts the pin still holds: a stale view must
  /// be refresh()ed (or re-taken) before topology is read through it.
  const distributed_graph& graph() const {
    DPG_ASSERT_MSG(g_ != nullptr, "snapshot_view is unbound");
    DPG_ASSERT_MSG(g_->version() == version_,
                   "snapshot_view is stale: the graph mutated since the pin");
    return *g_;
  }

  /// The underlying graph without the staleness check — for code that has
  /// already branched on current() and wants the live topology (e.g. a
  /// session about to re-pin).
  const distributed_graph& graph_unchecked() const {
    DPG_ASSERT_MSG(g_ != nullptr, "snapshot_view is unbound");
    return *g_;
  }

  /// Re-pins the view at the graph's current version. Returns true when the
  /// pin moved (the caller was stale).
  ///
  /// Visibility caveat: `g_->version()` is this *process's* view of the
  /// topology. In-process that is the whole machine; over a cross-process
  /// backend each rank process holds its own graph object, so refresh()
  /// observes only local mutations. Cross-process runs therefore require
  /// single-writer topology — every process applies the same mutations in
  /// the same program order and re-stamps its transport
  /// (transport::set_topology_stamp); a process that skipped a mutation
  /// produces stale-stamp envelopes, which the receive path rejects with
  /// wire_error instead of scattering into a resized pmap.
  bool refresh() {
    DPG_ASSERT_MSG(g_ != nullptr, "snapshot_view is unbound");
    const bool moved = g_->version() != version_;
    version_ = g_->version();
    structure_version_ = g_->structure_version();
    return moved;
  }

  // Convenience forwards that are safe on a stale view (vertex count and
  // distribution never change under apply_edges/compact).
  vertex_id num_vertices() const { return graph_unchecked().num_vertices(); }
  rank_t owner(vertex_id v) const { return graph_unchecked().owner(v); }
  const distribution& dist() const { return graph_unchecked().dist(); }

 private:
  const distributed_graph* g_ = nullptr;
  std::uint64_t version_ = 0;
  std::uint64_t structure_version_ = 0;
};

}  // namespace dpg::graph
