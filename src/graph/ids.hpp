// Identifiers for vertices and edges of the distributed graph.
//
// The paper's model (§III): a directed graph G(V, E) with type Vertex and
// type Edge; every rank stores a subset of the vertices together with their
// outgoing edges (and, for "bidirectional" storage, their incoming edges).
#pragma once

#include <cstdint>

namespace dpg::graph {

/// Global vertex identifier: dense in [0, n).
using vertex_id = std::uint64_t;

inline constexpr vertex_id invalid_vertex = static_cast<vertex_id>(-1);

/// A trivially copyable descriptor of one directed edge, suitable for
/// travelling inside active-message payloads (this is the `Edge` type the
/// pattern language manipulates).
///
/// `eid` is the edge's global id in the out-edge numbering: edge property
/// maps are sharded by it and its values live on owner(src), exactly as the
/// paper prescribes (§IV: "all the outgoing and incoming edges are located
/// on the same node as are the corresponding vertex and edge property
/// values").
///
/// `mirror_slot` is only meaningful for handles produced by the `in_edges`
/// generator of a bidirectional graph: it indexes the read-only mirror copy
/// of edge property values kept at owner(dst), so that `weight(e)` has
/// locality `v` (the action's input vertex) for in-edge generators too,
/// matching Definition 1 of the paper.
struct edge_handle {
  vertex_id src = invalid_vertex;
  vertex_id dst = invalid_vertex;
  std::uint64_t eid = static_cast<std::uint64_t>(-1);
  std::uint64_t mirror_slot = static_cast<std::uint64_t>(-1);

  friend bool operator==(const edge_handle&, const edge_handle&) = default;
};

/// Source / target accessors with the paper's names (§II-A uses trg(e)).
constexpr vertex_id src(const edge_handle& e) noexcept { return e.src; }
constexpr vertex_id trg(const edge_handle& e) noexcept { return e.dst; }

/// An edge of an input edge list (pre-distribution).
struct edge {
  vertex_id src;
  vertex_id dst;

  friend bool operator==(const edge&, const edge&) = default;
};

}  // namespace dpg::graph
