// Identifiers for vertices and edges of the distributed graph.
//
// The paper's model (§III): a directed graph G(V, E) with type Vertex and
// type Edge; every rank stores a subset of the vertices together with their
// outgoing edges (and, for "bidirectional" storage, their incoming edges).
#pragma once

#include <cstdint>

namespace dpg::graph {

/// Global vertex identifier: dense in [0, n).
using vertex_id = std::uint64_t;

inline constexpr vertex_id invalid_vertex = static_cast<vertex_id>(-1);

/// A trivially copyable descriptor of one directed edge, suitable for
/// travelling inside active-message payloads (this is the `Edge` type the
/// pattern language manipulates).
///
/// `eid` is the edge's global id in the out-edge numbering: edge property
/// maps are sharded by it and its values live on owner(src), exactly as the
/// paper prescribes (§IV: "all the outgoing and incoming edges are located
/// on the same node as are the corresponding vertex and edge property
/// values").
///
/// `mirror_slot` is only meaningful for handles produced by the `in_edges`
/// generator of a bidirectional graph: it indexes the read-only mirror copy
/// of edge property values kept at owner(dst), so that `weight(e)` has
/// locality `v` (the action's input vertex) for in-edge generators too,
/// matching Definition 1 of the paper.
struct edge_handle {
  vertex_id src = invalid_vertex;
  vertex_id dst = invalid_vertex;
  std::uint64_t eid = static_cast<std::uint64_t>(-1);
  std::uint64_t mirror_slot = static_cast<std::uint64_t>(-1);

  friend bool operator==(const edge_handle&, const edge_handle&) = default;
};

/// Source / target accessors with the paper's names (§II-A uses trg(e)).
constexpr vertex_id src(const edge_handle& e) noexcept { return e.src; }
constexpr vertex_id trg(const edge_handle& e) noexcept { return e.dst; }

/// An edge of an input edge list (pre-distribution).
struct edge {
  vertex_id src;
  vertex_id dst;

  friend bool operator==(const edge&, const edge&) = default;
};

// ---------------------------------------------------------------------------
// Delta edge ids (the mutable-topology overlay)
// ---------------------------------------------------------------------------
//
// Edges appended at the non-morphing boundary (distributed_graph::apply_edges)
// receive *stable* ids from a per-rank delta base so property maps can index
// them in O(1) without renumbering the base CSR: bit 63 tags the id as a
// delta edge, bits [40, 63) carry the owning rank, bits [0, 40) the rank's
// append index. compact() folds the overlay into the base CSR and retires
// these ids (the rebuilt numbering is contiguous again).
//
// The same tag bit marks delta mirror slots of bidirectional graphs, so an
// edge_handle's mirror_slot distinguishes base in-CSR slots from overlay
// slots without widening the handle.

inline constexpr std::uint64_t delta_edge_flag = std::uint64_t{1} << 63;
inline constexpr unsigned delta_rank_shift = 40;
inline constexpr std::uint64_t delta_index_mask =
    (std::uint64_t{1} << delta_rank_shift) - 1;

/// First delta edge id of rank r: the per-rank delta base.
constexpr std::uint64_t delta_edge_base(std::uint32_t rank) noexcept {
  return delta_edge_flag | (static_cast<std::uint64_t>(rank) << delta_rank_shift);
}

constexpr bool is_delta_edge(std::uint64_t eid) noexcept {
  return (eid & delta_edge_flag) != 0 && eid != static_cast<std::uint64_t>(-1);
}

constexpr std::uint64_t make_delta_eid(std::uint32_t rank, std::uint64_t index) noexcept {
  return delta_edge_base(rank) | index;
}

constexpr std::uint32_t delta_edge_rank(std::uint64_t eid) noexcept {
  return static_cast<std::uint32_t>((eid & ~delta_edge_flag) >> delta_rank_shift);
}

constexpr std::uint64_t delta_edge_index(std::uint64_t eid) noexcept {
  return eid & delta_index_mask;
}

}  // namespace dpg::graph
