// Synthetic graph generators. All are deterministic in (parameters, seed).
//
// The paper motivates the system with Graph500-class inputs (§I); the
// Kronecker (R-MAT) generator below follows the Graph500 reference
// recipe (scale + edge factor + (A,B,C) skew), at scales sized for a
// single machine — the abstractions under test are size-independent.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/ids.hpp"

namespace dpg::graph {

/// G(n, m) Erdős–Rényi multigraph: m directed edges sampled uniformly.
std::vector<edge> erdos_renyi(vertex_id n, std::uint64_t m, std::uint64_t seed);

/// Parameters of the Kronecker / R-MAT recursive generator.
struct rmat_params {
  unsigned scale = 10;        ///< n = 2^scale vertices
  unsigned edge_factor = 16;  ///< m = edge_factor * n directed edges
  double a = 0.57, b = 0.19, c = 0.19;  ///< Graph500 defaults (d = 1-a-b-c)
  bool scramble_ids = true;   ///< permute vertex ids to break degree locality
};

std::vector<edge> rmat(const rmat_params& p, std::uint64_t seed);

/// Simple deterministic topologies, useful for tests with known answers.
std::vector<edge> path_graph(vertex_id n);                 ///< 0→1→…→n-1
std::vector<edge> cycle_graph(vertex_id n);                ///< path + (n-1)→0
std::vector<edge> star_graph(vertex_id n);                 ///< 0→{1..n-1}
std::vector<edge> complete_graph(vertex_id n);             ///< all ordered pairs, no loops
std::vector<edge> grid_graph(vertex_id rows, vertex_id cols);  ///< 4-neighbour, both directions

/// Deterministic per-edge weight in [1, max_weight], a pure function of the
/// *unordered* endpoint pair — so the two directions of a symmetrized edge
/// carry equal weight, and primary/mirror property fills agree by
/// construction.
double edge_weight(vertex_id u, vertex_id v, std::uint64_t seed, double max_weight);

/// Integer variant (Graph500 SSSP uses uniform integer weights).
std::uint32_t edge_weight_int(vertex_id u, vertex_id v, std::uint64_t seed,
                              std::uint32_t max_weight);

}  // namespace dpg::graph
