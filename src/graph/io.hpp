// Plain-text edge-list I/O.
//
// Format: '#'-prefixed comment lines, then one edge per line as
// "src dst [weight]". Vertex count is 1 + the largest id seen, unless a
// header comment "# vertices N" pins it explicitly.
#pragma once

#include <string>
#include <vector>

#include "graph/ids.hpp"

namespace dpg::graph {

struct edge_list_file {
  vertex_id num_vertices = 0;
  std::vector<edge> edges;
  /// Parallel to `edges`; empty when the file carries no weights.
  std::vector<double> weights;
};

/// Parses an edge-list file. Throws std::runtime_error on malformed input.
edge_list_file read_edge_list(const std::string& path);

/// Writes an edge-list file (with weights when `weights` is non-empty;
/// sizes must then match).
void write_edge_list(const std::string& path, vertex_id num_vertices,
                     const std::vector<edge>& edges,
                     const std::vector<double>& weights = {});

}  // namespace dpg::graph
