// Vertex-to-rank distributions.
//
// The paper's basic assumption (§I): "it is not predictable which parts of
// the graph are colocated" — the framework must work for any distribution.
// We provide the three classic ones; the pattern runtime is parameterized
// over this class only through owner()/local_index(), so algorithms are
// distribution-oblivious.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "ampp/types.hpp"
#include "graph/ids.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dpg::graph {

using ampp::rank_t;

/// Maps every vertex id in [0, n) to an owning rank and a dense local index
/// on that rank. Value type; cheap to copy for block/cyclic, shared-state
/// for hashed.
class distribution {
 public:
  enum class kind { block, cyclic, hashed };

  /// Contiguous chunks of ceil(n/ranks) vertices per rank.
  static distribution block(vertex_id n, rank_t ranks) {
    return distribution(kind::block, n, ranks, 0);
  }

  /// Round-robin: owner(v) = v mod ranks.
  static distribution cyclic(vertex_id n, rank_t ranks) {
    return distribution(kind::cyclic, n, ranks, 0);
  }

  /// Pseudo-random assignment by a mixing hash of the vertex id; the local
  /// index is the vertex's rank among the vertices its owner holds
  /// (resolved by binary search over a per-rank sorted table).
  static distribution hashed(vertex_id n, rank_t ranks, std::uint64_t seed = 0x5eed) {
    return distribution(kind::hashed, n, ranks, seed);
  }

  rank_t owner(vertex_id v) const {
    DPG_DEBUG_ASSERT(v < n_);
    switch (kind_) {
      case kind::block: return static_cast<rank_t>(v / chunk_);
      case kind::cyclic: return static_cast<rank_t>(v % ranks_);
      case kind::hashed: return static_cast<rank_t>(mix(v) % ranks_);
    }
    return 0;
  }

  /// Dense index of v within its owner's shard, in [0, count(owner(v))).
  std::uint64_t local_index(vertex_id v) const {
    DPG_DEBUG_ASSERT(v < n_);
    switch (kind_) {
      case kind::block: return v % chunk_;
      case kind::cyclic: return v / ranks_;
      case kind::hashed: {
        const auto& owned = tables_->owned[owner(v)];
        const auto it = std::lower_bound(owned.begin(), owned.end(), v);
        DPG_DEBUG_ASSERT(it != owned.end() && *it == v);
        return static_cast<std::uint64_t>(it - owned.begin());
      }
    }
    return 0;
  }

  /// Inverse of local_index: the global id of rank r's li-th vertex.
  vertex_id global(rank_t r, std::uint64_t li) const {
    DPG_DEBUG_ASSERT(r < ranks_ && li < count(r));
    switch (kind_) {
      case kind::block: return static_cast<vertex_id>(r) * chunk_ + li;
      case kind::cyclic: return li * ranks_ + r;
      case kind::hashed: return tables_->owned[r][li];
    }
    return 0;
  }

  /// Number of vertices rank r owns.
  std::uint64_t count(rank_t r) const {
    DPG_DEBUG_ASSERT(r < ranks_);
    switch (kind_) {
      case kind::block: {
        if (static_cast<vertex_id>(r) * chunk_ >= n_) return 0;
        return std::min<std::uint64_t>(chunk_, n_ - static_cast<vertex_id>(r) * chunk_);
      }
      case kind::cyclic: return n_ / ranks_ + (r < n_ % ranks_ ? 1 : 0);
      case kind::hashed: return tables_->owned[r].size();
    }
    return 0;
  }

  vertex_id num_vertices() const noexcept { return n_; }
  rank_t num_ranks() const noexcept { return ranks_; }
  kind which() const noexcept { return kind_; }

 private:
  distribution(kind k, vertex_id n, rank_t ranks, std::uint64_t seed)
      : kind_(k), n_(n), ranks_(ranks), seed_(seed) {
    DPG_ASSERT_MSG(ranks >= 1, "distribution needs at least one rank");
    DPG_ASSERT_MSG(n >= 1, "distribution needs at least one vertex");
    chunk_ = (n + ranks - 1) / ranks;
    if (kind_ == kind::hashed) {
      auto tables = std::make_shared<hash_tables>();
      tables->owned.resize(ranks);
      for (vertex_id v = 0; v < n; ++v)
        tables->owned[static_cast<rank_t>(mix(v) % ranks_)].push_back(v);
      // Vertices are enumerated in increasing order, so each table is
      // already sorted; keep the invariant explicit for safety.
      for (auto& t : tables->owned) DPG_ASSERT(std::is_sorted(t.begin(), t.end()));
      tables_ = std::move(tables);
    }
  }

  std::uint64_t mix(vertex_id v) const {
    return splitmix64(v ^ seed_).next();
  }

  struct hash_tables {
    std::vector<std::vector<vertex_id>> owned;
  };

  kind kind_;
  vertex_id n_;
  rank_t ranks_;
  std::uint64_t seed_;
  std::uint64_t chunk_ = 0;
  std::shared_ptr<const hash_tables> tables_;
};

}  // namespace dpg::graph
