// The distributed, vertex-centric graph of §III-A: every rank stores a
// portion of the vertices and their outgoing edges; a "bidirectional"
// graph additionally stores incoming edges with each vertex ("bidirectional
// describes the storage model rather than a property of the graph").
//
// Access discipline: out_edges(v) / in_edges(v) / adjacency may only be
// enumerated on the rank that owns v. Inside ampp::transport::run this is
// enforced with assertions; outside a run (test inspection, sequential
// baselines) access is unrestricted.
//
// Mutable topology (the non-morphing boundary, footnote 1): the paper's
// patterns never change graph structure, so mutation happens *between*
// runs. The graph carries a monotonically increasing topology version and a
// per-rank delta-CSR overlay: apply_edges() appends edges in place (outside
// any transport::run — enforced at runtime), assigning stable ids from the
// per-rank delta base (graph/ids.hpp); compact() folds the overlay back
// into the base CSR, renumbering edge ids exactly as a from-scratch
// rebuild would. Every enumeration (out_edges / in_edges / adjacent /
// degrees) transparently walks base + overlay, which keeps the pattern
// layer and compiled plans mutation-oblivious. Property maps subscribe to
// version() and grow lazily (pmap/vertex_map.hpp, pmap/edge_map.hpp).
//
// Deletions (the streaming half of the mutation story): remove_edges()
// *tombstones* edges in place. Base-CSR slots are marked in a lazily
// allocated per-shard dead bitset (mirrored on the in-CSR for
// bidirectional storage); overlay edges are unlinked from their
// per-vertex slot lists, which preserves the append order of the
// survivors. No edge id is ever renumbered by a removal, so property maps
// stay index-stable until compact() reclaims the dead slots. The range
// iterators skip tombstoned slots; a shard that has never seen a removal
// keeps a null dead pointer, so the skip costs one pointer test — zero
// extra memory and no per-edge branch on the value path — until the first
// tombstone exists.
#pragma once

#include <cstdint>
#include <iterator>
#include <optional>
#include <span>
#include <vector>

#include "ampp/types.hpp"
#include "graph/distribution.hpp"
#include "graph/ids.hpp"
#include "util/assert.hpp"

namespace dpg::ampp {
struct transport_stats;  // obs counter sink (ampp/stats.hpp)
}

namespace dpg::graph {

class distributed_graph {
  struct shard;  // per-rank storage, defined below

 public:
  /// Builds the distributed representation from a global edge list.
  /// Self-loops are kept; parallel edges are kept (they get distinct edge
  /// ids). With `bidirectional` set, per-vertex in-edge lists are also
  /// built so the `in_edges` generator is available.
  distributed_graph(vertex_id n, std::span<const edge> edges, distribution dist,
                    bool bidirectional = false);

  const distribution& dist() const noexcept { return dist_; }
  vertex_id num_vertices() const noexcept { return dist_.num_vertices(); }
  std::uint64_t num_edges() const noexcept { return num_edges_; }
  bool bidirectional() const noexcept { return bidirectional_; }
  rank_t num_ranks() const noexcept { return dist_.num_ranks(); }

  rank_t owner(vertex_id v) const { return dist_.owner(v); }

  // ---- topology versioning -------------------------------------------------

  /// Monotonically increasing topology version: bumped by every
  /// apply_edges() and every compact(). Property maps subscribe to it.
  std::uint64_t version() const noexcept { return version_; }
  /// Bumped only when edge ids are renumbered (compact()): maps that index
  /// by edge id must be rebuilt past a structure change, not merely grown.
  std::uint64_t structure_version() const noexcept { return structure_version_; }

  /// Appends `extra` edges in place at the non-morphing boundary. Must be
  /// called outside any transport::run / epoch (the paper's footnote-1
  /// guarantee, enforced at runtime). Each edge joins the delta overlay of
  /// owner(src) — and owner(dst)'s in-overlay for bidirectional storage —
  /// with a fresh stable id from the per-rank delta base. O(|extra|);
  /// existing edge ids, property maps, transports and compiled plans stay
  /// valid (maps grow lazily on next access).
  void apply_edges(std::span<const edge> extra);

  /// Tombstones the named edges at the non-morphing boundary (outside any
  /// transport::run, like apply_edges). Each id may name a base-CSR edge or
  /// a live overlay edge; degrees, num_edges() and every range iterator
  /// reflect the removal immediately, the in-mirror is tombstoned alongside
  /// for bidirectional storage, and *no surviving edge id changes* — edge
  /// property maps stay index-stable until compact(). Removing an id twice
  /// (or an id that never existed) dies loudly. O(sum of the endpoints'
  /// degrees) in the worst case (mirror lookup); bumps version().
  void remove_edges(std::span<const std::uint64_t> eids);

  /// Resolves each (src,dst) pair to the id of one live matching edge —
  /// the ingest-pipeline front half of remove_edges() for callers that
  /// speak endpoints (serve::server). Pairs repeated in `victims` resolve
  /// to distinct parallel edges. Dies if any pair has no live match left.
  std::vector<std::uint64_t> resolve_edges(std::span<const edge> victims) const;

  /// Folds the delta overlay back into the base CSR and reclaims every
  /// tombstoned slot, renumbering edge ids exactly as a from-scratch
  /// rebuild over the live edge list would (the equivalence the oracle
  /// test asserts). Outside-run only. No-op on a graph with an empty
  /// overlay and no tombstones. Edge property maps observe the structure
  /// change and re-derive from their pure init function (maps without one
  /// must be rebuilt by the caller).
  void compact();

  /// Attaches an obs counter sink: subsequent apply_edges()/remove_edges()
  /// calls bump graph_mutations / delta_edges / tombstoned_edges (surfaced
  /// in the epoch summary).
  void attach_stats(ampp::transport_stats& st) noexcept { stats_ = &st; }

  /// Total live overlay edges across all ranks (0 after compact()).
  std::uint64_t total_delta_edges() const noexcept { return delta_total_; }
  /// Tombstoned-but-unreclaimed edges across all ranks (0 after compact()).
  std::uint64_t total_tombstoned_edges() const noexcept { return tombstoned_total_; }

  /// Bytes held by the delta overlay (slot arrays + per-vertex slot lists)
  /// and by the tombstone bitsets/counts — the idle memory overhead the
  /// streaming benchmark reports (iPregel's discipline: both go to ~0 after
  /// compact()).
  std::uint64_t overlay_bytes() const noexcept;
  std::uint64_t tombstone_bytes() const noexcept;

  // ---- per-rank storage accounting ----------------------------------------

  /// First global edge id assigned to rank r's base out-edges.
  std::uint64_t edge_base(rank_t r) const { return shards_[r].edge_base; }
  /// Number of base (CSR) out-edges stored on rank r.
  std::uint64_t edge_count(rank_t r) const {
    return shards_[r].out_dst.size();
  }
  /// Number of base in-edges stored on rank r (bidirectional graphs).
  std::uint64_t in_edge_count(rank_t r) const { return shards_[r].in_src.size(); }
  /// Number of overlay out-edge *slots* appended on rank r since the last
  /// compact — physical, so it includes tombstoned slots: property-map
  /// growth indexes by delta slot and must stay index-stable across
  /// removals.
  std::uint64_t delta_edge_count(rank_t r) const { return shards_[r].delta_dst.size(); }
  /// Number of overlay in-edges on rank r (bidirectional graphs).
  std::uint64_t delta_in_edge_count(rank_t r) const {
    return shards_[r].delta_in_src.size();
  }

  /// Handle of rank r's j-th overlay out-edge (for property-map growth).
  edge_handle delta_out_edge(rank_t r, std::uint64_t j) const {
    const shard& s = shards_[r];
    return edge_handle{s.delta_src[j], s.delta_dst[j], make_delta_eid(r, j),
                       static_cast<std::uint64_t>(-1)};
  }
  /// Handle of rank r's j-th overlay in-edge (mirror slot tagged delta).
  edge_handle delta_in_edge(rank_t r, std::uint64_t j) const {
    const shard& s = shards_[r];
    return edge_handle{s.delta_in_src[j], s.delta_in_dst[j], s.delta_in_eid[j],
                       delta_edge_flag | j};
  }

  std::uint64_t out_degree(vertex_id v) const {
    const shard& s = owner_shard(v);
    const std::uint64_t li = dist_.local_index(v);
    return s.out_offsets[li + 1] - s.out_offsets[li] - s.out_dead_deg(li) +
           s.delta_deg(li);
  }

  std::uint64_t in_degree(vertex_id v) const {
    DPG_ASSERT_MSG(bidirectional_, "in_degree requires bidirectional storage");
    const shard& s = owner_shard(v);
    const std::uint64_t li = dist_.local_index(v);
    return s.in_offsets[li + 1] - s.in_offsets[li] - s.in_dead_deg(li) +
           s.delta_in_deg(li);
  }

  /// Forward iteration over v's out-edges as edge_handles: the live base
  /// CSR segment first (tombstoned slots skipped), then the live delta
  /// overlay in append order (exactly the per-vertex order a
  /// compact()/rebuild preserves). Owner-only. Overlay slot lists hold only
  /// live edges (remove_edges unlinks), so only base positions ever skip;
  /// `dead_` is null until the shard's first tombstone, making the
  /// no-deletions case a single pointer test.
  class out_edge_range {
   public:
    class iterator {
     public:
      using value_type = edge_handle;
      using iterator_category = std::forward_iterator_tag;
      using difference_type = std::int64_t;
      using pointer = void;
      using reference = edge_handle;
      edge_handle operator*() const {
        const std::uint64_t base_n = r_->last_ - r_->first_;
        if (pos_ < base_n) {
          const std::uint64_t p = r_->first_ + pos_;
          return edge_handle{src_, r_->s_->out_dst[p], r_->s_->edge_base + p,
                             static_cast<std::uint64_t>(-1)};
        }
        const std::uint32_t j = (*r_->dadj_)[pos_ - base_n];
        return edge_handle{src_, r_->s_->delta_dst[j], make_delta_eid(r_->rank_, j),
                           static_cast<std::uint64_t>(-1)};
      }
      iterator& operator++() {
        ++pos_;
        skip_dead();
        return *this;
      }
      bool operator!=(const iterator& o) const { return pos_ != o.pos_; }
      bool operator==(const iterator& o) const { return pos_ == o.pos_; }

     private:
      friend class out_edge_range;
      iterator(const out_edge_range* r, vertex_id src, std::uint64_t pos)
          : r_(r), src_(src), pos_(pos) {
        skip_dead();
      }
      void skip_dead() {
        if (r_->dead_ == nullptr) return;
        const std::uint64_t base_n = r_->last_ - r_->first_;
        while (pos_ < base_n && r_->dead_[r_->first_ + pos_]) ++pos_;
      }
      const out_edge_range* r_;
      vertex_id src_;
      std::uint64_t pos_;
    };

    iterator begin() const { return iterator(this, src_, 0); }
    /// end() sits at the *physical* position past the last slot (where
    /// skip_dead is a no-op), so pos_ comparison stays exact.
    iterator end() const { return iterator(this, src_, physical_size()); }
    std::uint64_t size() const { return physical_size() - base_dead_; }
    bool empty() const { return size() == 0; }

   private:
    friend class distributed_graph;
    std::uint64_t physical_size() const {
      return (last_ - first_) + (dadj_ != nullptr ? dadj_->size() : 0);
    }
    out_edge_range(const shard* s, rank_t rank, vertex_id src, std::uint64_t first,
                   std::uint64_t last, const std::vector<std::uint32_t>* dadj,
                   const std::uint8_t* dead, std::uint64_t base_dead)
        : s_(s), rank_(rank), src_(src), first_(first), last_(last), dadj_(dadj),
          dead_(dead), base_dead_(base_dead) {}
    const shard* s_;
    rank_t rank_;
    vertex_id src_;
    std::uint64_t first_, last_;
    const std::vector<std::uint32_t>* dadj_;  ///< live overlay slots, or nullptr
    const std::uint8_t* dead_;                ///< shard-wide dead bitset, or nullptr
    std::uint64_t base_dead_;                 ///< tombstones inside [first_, last_)
  };

  /// Forward iteration over v's in-edges as edge_handles (mirror slots set;
  /// overlay in-edges carry delta-tagged mirror slots).
  class in_edge_range {
   public:
    class iterator {
     public:
      using value_type = edge_handle;
      using iterator_category = std::forward_iterator_tag;
      using difference_type = std::int64_t;
      using pointer = void;
      using reference = edge_handle;
      edge_handle operator*() const {
        const std::uint64_t base_n = r_->last_ - r_->first_;
        if (pos_ < base_n) {
          const std::uint64_t p = r_->first_ + pos_;
          return edge_handle{r_->s_->in_src[p], dst_, r_->s_->in_eid[p], p};
        }
        const std::uint32_t j = (*r_->dadj_)[pos_ - base_n];
        return edge_handle{r_->s_->delta_in_src[j], dst_, r_->s_->delta_in_eid[j],
                           delta_edge_flag | j};
      }
      iterator& operator++() {
        ++pos_;
        skip_dead();
        return *this;
      }
      bool operator!=(const iterator& o) const { return pos_ != o.pos_; }
      bool operator==(const iterator& o) const { return pos_ == o.pos_; }

     private:
      friend class in_edge_range;
      iterator(const in_edge_range* r, vertex_id dst, std::uint64_t pos)
          : r_(r), dst_(dst), pos_(pos) {
        skip_dead();
      }
      void skip_dead() {
        if (r_->dead_ == nullptr) return;
        const std::uint64_t base_n = r_->last_ - r_->first_;
        while (pos_ < base_n && r_->dead_[r_->first_ + pos_]) ++pos_;
      }
      const in_edge_range* r_;
      vertex_id dst_;
      std::uint64_t pos_;
    };

    iterator begin() const { return iterator(this, dst_, 0); }
    iterator end() const { return iterator(this, dst_, physical_size()); }
    std::uint64_t size() const { return physical_size() - base_dead_; }
    bool empty() const { return size() == 0; }

   private:
    friend class distributed_graph;
    std::uint64_t physical_size() const {
      return (last_ - first_) + (dadj_ != nullptr ? dadj_->size() : 0);
    }
    in_edge_range(const shard* s, vertex_id dst, std::uint64_t first,
                  std::uint64_t last, const std::vector<std::uint32_t>* dadj,
                  const std::uint8_t* dead, std::uint64_t base_dead)
        : s_(s), dst_(dst), first_(first), last_(last), dadj_(dadj), dead_(dead),
          base_dead_(base_dead) {}
    const shard* s_;
    vertex_id dst_;
    std::uint64_t first_, last_;
    const std::vector<std::uint32_t>* dadj_;
    const std::uint8_t* dead_;   ///< shard-wide in-CSR dead bitset, or nullptr
    std::uint64_t base_dead_;    ///< tombstones inside [first_, last_)
  };

  /// Out-neighbour targets of v (the `adj` generator view): the base CSR
  /// span followed by overlay targets. Owner-only.
  class adjacency_range {
   public:
    class iterator {
     public:
      using value_type = vertex_id;
      using iterator_category = std::forward_iterator_tag;
      using difference_type = std::int64_t;
      using pointer = void;
      using reference = vertex_id;
      vertex_id operator*() const {
        if (pos_ < r_->base_.size()) return r_->base_[pos_];
        return r_->s_->delta_dst[(*r_->dadj_)[pos_ - r_->base_.size()]];
      }
      iterator& operator++() {
        ++pos_;
        skip_dead();
        return *this;
      }
      bool operator!=(const iterator& o) const { return pos_ != o.pos_; }
      bool operator==(const iterator& o) const { return pos_ == o.pos_; }

     private:
      friend class adjacency_range;
      iterator(const adjacency_range* r, std::uint64_t pos) : r_(r), pos_(pos) {
        skip_dead();
      }
      void skip_dead() {
        if (r_->dead_ == nullptr) return;
        while (pos_ < r_->base_.size() && r_->dead_[pos_]) ++pos_;
      }
      const adjacency_range* r_;
      std::uint64_t pos_;
    };

    iterator begin() const { return iterator(this, 0); }
    iterator end() const { return iterator(this, physical_size()); }
    std::uint64_t size() const { return physical_size() - base_dead_; }
    bool empty() const { return size() == 0; }
    /// The contiguous base-CSR prefix (no overlay entries). Only meaningful
    /// while no slot in the prefix is tombstoned — asserted, because a span
    /// cannot skip.
    std::span<const vertex_id> base() const {
      DPG_ASSERT_MSG(base_dead_ == 0,
                     "adjacency_range::base() on a vertex with tombstoned "
                     "base edges; iterate the range instead");
      return base_;
    }

   private:
    friend class distributed_graph;
    std::uint64_t physical_size() const {
      return base_.size() + (dadj_ != nullptr ? dadj_->size() : 0);
    }
    adjacency_range(const shard* s, std::span<const vertex_id> base,
                    const std::vector<std::uint32_t>* dadj,
                    const std::uint8_t* dead, std::uint64_t base_dead)
        : s_(s), base_(base), dadj_(dadj), dead_(dead), base_dead_(base_dead) {}
    const shard* s_;
    std::span<const vertex_id> base_;
    const std::vector<std::uint32_t>* dadj_;
    const std::uint8_t* dead_;  ///< aligned with base_ (not the whole shard)
    std::uint64_t base_dead_;
  };

  out_edge_range out_edges(vertex_id v) const {
    const rank_t r = checked_owner(v);
    const shard& s = shards_[r];
    const std::uint64_t li = dist_.local_index(v);
    return out_edge_range(&s, r, v, s.out_offsets[li], s.out_offsets[li + 1],
                          s.delta_slots(li), s.out_dead_bits(), s.out_dead_deg(li));
  }

  in_edge_range in_edges(vertex_id v) const {
    DPG_ASSERT_MSG(bidirectional_, "in_edges requires bidirectional storage");
    const shard& s = owner_shard(v);
    const std::uint64_t li = dist_.local_index(v);
    return in_edge_range(&s, v, s.in_offsets[li], s.in_offsets[li + 1],
                         s.delta_in_slots(li), s.in_dead_bits(), s.in_dead_deg(li));
  }

  adjacency_range adjacent(vertex_id v) const {
    const shard& s = owner_shard(v);
    const std::uint64_t li = dist_.local_index(v);
    const std::uint8_t* dead = s.out_dead_bits();
    return adjacency_range(
        &s,
        std::span<const vertex_id>(s.out_dst.data() + s.out_offsets[li],
                                   s.out_offsets[li + 1] - s.out_offsets[li]),
        s.delta_slots(li), dead == nullptr ? nullptr : dead + s.out_offsets[li],
        s.out_dead_deg(li));
  }

 private:
  struct shard {
    std::uint64_t edge_base = 0;
    std::vector<std::uint64_t> out_offsets;  // CSR over local vertices
    std::vector<vertex_id> out_dst;
    std::vector<std::uint64_t> in_offsets;   // CSR over local vertices
    std::vector<vertex_id> in_src;
    std::vector<std::uint64_t> in_eid;       // the out-numbering id of each in-edge

    // ---- delta overlay (apply_edges appends; compact() clears) ------------
    // Arrays indexed by the per-rank delta index (the stable id suffix):
    std::vector<vertex_id> delta_src;
    std::vector<vertex_id> delta_dst;
    // Per-local-vertex slot lists, allocated lazily on the first append:
    std::vector<std::vector<std::uint32_t>> delta_adj;
    // In-overlay of bidirectional storage, same layout keyed by dst:
    std::vector<vertex_id> delta_in_src;
    std::vector<vertex_id> delta_in_dst;
    std::vector<std::uint64_t> delta_in_eid;  // out-numbering (delta) id
    std::vector<std::vector<std::uint32_t>> delta_in_adj;

    // ---- tombstones (remove_edges marks; compact() reclaims) --------------
    // Base-CSR dead flags per physical slot plus a per-local-vertex count so
    // out_degree/size() stay O(1). All four stay empty (the iterators carry
    // a null pointer) until the shard's first removal. Overlay edges need no
    // flags on the iteration path — their slot-list entry is unlinked — but
    // delta_dead keeps remove_edges honest about double-removals and lets
    // resolve_edges/property growth see which delta indices still live.
    std::vector<std::uint8_t> out_dead;
    std::vector<std::uint32_t> out_dead_cnt;   // per local vertex
    std::vector<std::uint8_t> in_dead;
    std::vector<std::uint32_t> in_dead_cnt;    // per local vertex
    std::vector<std::uint8_t> delta_dead;      // per delta slot, accounting only

    const std::uint8_t* out_dead_bits() const {
      return out_dead.empty() ? nullptr : out_dead.data();
    }
    const std::uint8_t* in_dead_bits() const {
      return in_dead.empty() ? nullptr : in_dead.data();
    }
    std::uint64_t out_dead_deg(std::uint64_t li) const {
      return out_dead_cnt.empty() ? 0 : out_dead_cnt[li];
    }
    std::uint64_t in_dead_deg(std::uint64_t li) const {
      return in_dead_cnt.empty() ? 0 : in_dead_cnt[li];
    }

    const std::vector<std::uint32_t>* delta_slots(std::uint64_t li) const {
      return delta_adj.empty() || delta_adj[li].empty() ? nullptr : &delta_adj[li];
    }
    const std::vector<std::uint32_t>* delta_in_slots(std::uint64_t li) const {
      return delta_in_adj.empty() || delta_in_adj[li].empty() ? nullptr
                                                              : &delta_in_adj[li];
    }
    std::uint64_t delta_deg(std::uint64_t li) const {
      return delta_adj.empty() ? 0 : delta_adj[li].size();
    }
    std::uint64_t delta_in_deg(std::uint64_t li) const {
      return delta_in_adj.empty() ? 0 : delta_in_adj[li].size();
    }
  };

  rank_t checked_owner(vertex_id v) const {
    const rank_t o = dist_.owner(v);
    const rank_t cur = ampp::current_rank();
    DPG_ASSERT_MSG(cur == ampp::invalid_rank || cur == o,
                   "graph topology accessed on a rank that does not own the vertex");
    return o;
  }
  const shard& owner_shard(vertex_id v) const { return shards_[checked_owner(v)]; }

  /// Builds the base CSR shards from a global edge list (constructor body;
  /// compact() reuses it after folding the overlay).
  void build_shards(std::span<const edge> edges);

  distribution dist_;
  bool bidirectional_;
  std::uint64_t num_edges_ = 0;
  std::vector<shard> shards_;
  std::uint64_t version_ = 1;
  std::uint64_t structure_version_ = 1;
  std::uint64_t delta_total_ = 0;
  std::uint64_t tombstoned_total_ = 0;
  ampp::transport_stats* stats_ = nullptr;
};

/// Recovers the live edge list of a distributed graph (in edge-id order for
/// the base CSR; overlay edges follow their vertex's base edges, which is
/// the order compact() and a rebuild both preserve; tombstoned edges are
/// absent). Call outside transport::run.
std::vector<edge> edge_list_of(const distributed_graph& g);

/// The legacy whole-world mutation path: builds a *new* graph with `extra`
/// edges appended, preserving the distribution. Prefer apply_edges() +
/// compact(), which mutate in place and keep property maps, transports and
/// compiled plans alive. By default the rebuilt graph keeps g's storage
/// model (bidirectional graphs stay bidirectional); pass an explicit flag
/// to change it.
distributed_graph with_added_edges(const distributed_graph& g, std::span<const edge> extra,
                                   std::optional<bool> bidirectional = std::nullopt);

/// Appends the reverse of every edge, producing the symmetric directed
/// representation of an undirected graph (the CC algorithms assume this).
std::vector<edge> symmetrize(std::span<const edge> edges);

/// Removes duplicate edges and self-loops (useful for generator output).
std::vector<edge> simplify(std::vector<edge> edges);

}  // namespace dpg::graph
