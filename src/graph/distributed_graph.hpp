// The distributed, vertex-centric graph of §III-A: every rank stores a
// portion of the vertices and their outgoing edges; a "bidirectional"
// graph additionally stores incoming edges with each vertex ("bidirectional
// describes the storage model rather than a property of the graph").
//
// Access discipline: out_edges(v) / in_edges(v) / adjacency may only be
// enumerated on the rank that owns v. Inside ampp::transport::run this is
// enforced with assertions; outside a run (test inspection, sequential
// baselines) access is unrestricted.
//
// Mutable topology (the non-morphing boundary, footnote 1): the paper's
// patterns never change graph structure, so mutation happens *between*
// runs. The graph carries a monotonically increasing topology version and a
// per-rank delta-CSR overlay: apply_edges() appends edges in place (outside
// any transport::run — enforced at runtime), assigning stable ids from the
// per-rank delta base (graph/ids.hpp); compact() folds the overlay back
// into the base CSR, renumbering edge ids exactly as a from-scratch
// rebuild would. Every enumeration (out_edges / in_edges / adjacent /
// degrees) transparently walks base + overlay, which keeps the pattern
// layer and compiled plans mutation-oblivious. Property maps subscribe to
// version() and grow lazily (pmap/vertex_map.hpp, pmap/edge_map.hpp).
#pragma once

#include <cstdint>
#include <iterator>
#include <optional>
#include <span>
#include <vector>

#include "ampp/types.hpp"
#include "graph/distribution.hpp"
#include "graph/ids.hpp"
#include "util/assert.hpp"

namespace dpg::ampp {
struct transport_stats;  // obs counter sink (ampp/stats.hpp)
}

namespace dpg::graph {

class distributed_graph {
  struct shard;  // per-rank storage, defined below

 public:
  /// Builds the distributed representation from a global edge list.
  /// Self-loops are kept; parallel edges are kept (they get distinct edge
  /// ids). With `bidirectional` set, per-vertex in-edge lists are also
  /// built so the `in_edges` generator is available.
  distributed_graph(vertex_id n, std::span<const edge> edges, distribution dist,
                    bool bidirectional = false);

  const distribution& dist() const noexcept { return dist_; }
  vertex_id num_vertices() const noexcept { return dist_.num_vertices(); }
  std::uint64_t num_edges() const noexcept { return num_edges_; }
  bool bidirectional() const noexcept { return bidirectional_; }
  rank_t num_ranks() const noexcept { return dist_.num_ranks(); }

  rank_t owner(vertex_id v) const { return dist_.owner(v); }

  // ---- topology versioning -------------------------------------------------

  /// Monotonically increasing topology version: bumped by every
  /// apply_edges() and every compact(). Property maps subscribe to it.
  std::uint64_t version() const noexcept { return version_; }
  /// Bumped only when edge ids are renumbered (compact()): maps that index
  /// by edge id must be rebuilt past a structure change, not merely grown.
  std::uint64_t structure_version() const noexcept { return structure_version_; }

  /// Appends `extra` edges in place at the non-morphing boundary. Must be
  /// called outside any transport::run / epoch (the paper's footnote-1
  /// guarantee, enforced at runtime). Each edge joins the delta overlay of
  /// owner(src) — and owner(dst)'s in-overlay for bidirectional storage —
  /// with a fresh stable id from the per-rank delta base. O(|extra|);
  /// existing edge ids, property maps, transports and compiled plans stay
  /// valid (maps grow lazily on next access).
  void apply_edges(std::span<const edge> extra);

  /// Folds the delta overlay back into the base CSR, renumbering edge ids
  /// exactly as a from-scratch rebuild over the concatenated edge list
  /// would (the equivalence the oracle test asserts). Outside-run only.
  /// No-op on a graph with an empty overlay. Edge property maps observe the
  /// structure change and re-derive from their pure init function (maps
  /// without one must be rebuilt by the caller).
  void compact();

  /// Attaches an obs counter sink: subsequent apply_edges() calls bump
  /// graph_mutations / delta_edges (surfaced in the epoch summary).
  void attach_stats(ampp::transport_stats& st) noexcept { stats_ = &st; }

  /// Total overlay edges across all ranks (0 after compact()).
  std::uint64_t total_delta_edges() const noexcept { return delta_total_; }

  // ---- per-rank storage accounting ----------------------------------------

  /// First global edge id assigned to rank r's base out-edges.
  std::uint64_t edge_base(rank_t r) const { return shards_[r].edge_base; }
  /// Number of base (CSR) out-edges stored on rank r.
  std::uint64_t edge_count(rank_t r) const {
    return shards_[r].out_dst.size();
  }
  /// Number of base in-edges stored on rank r (bidirectional graphs).
  std::uint64_t in_edge_count(rank_t r) const { return shards_[r].in_src.size(); }
  /// Number of overlay out-edges appended on rank r since the last compact.
  std::uint64_t delta_edge_count(rank_t r) const { return shards_[r].delta_dst.size(); }
  /// Number of overlay in-edges on rank r (bidirectional graphs).
  std::uint64_t delta_in_edge_count(rank_t r) const {
    return shards_[r].delta_in_src.size();
  }

  /// Handle of rank r's j-th overlay out-edge (for property-map growth).
  edge_handle delta_out_edge(rank_t r, std::uint64_t j) const {
    const shard& s = shards_[r];
    return edge_handle{s.delta_src[j], s.delta_dst[j], make_delta_eid(r, j),
                       static_cast<std::uint64_t>(-1)};
  }
  /// Handle of rank r's j-th overlay in-edge (mirror slot tagged delta).
  edge_handle delta_in_edge(rank_t r, std::uint64_t j) const {
    const shard& s = shards_[r];
    return edge_handle{s.delta_in_src[j], s.delta_in_dst[j], s.delta_in_eid[j],
                       delta_edge_flag | j};
  }

  std::uint64_t out_degree(vertex_id v) const {
    const shard& s = owner_shard(v);
    const std::uint64_t li = dist_.local_index(v);
    return s.out_offsets[li + 1] - s.out_offsets[li] + s.delta_deg(li);
  }

  std::uint64_t in_degree(vertex_id v) const {
    DPG_ASSERT_MSG(bidirectional_, "in_degree requires bidirectional storage");
    const shard& s = owner_shard(v);
    const std::uint64_t li = dist_.local_index(v);
    return s.in_offsets[li + 1] - s.in_offsets[li] + s.delta_in_deg(li);
  }

  /// Forward iteration over v's out-edges as edge_handles: the base CSR
  /// segment first, then the delta overlay in append order (exactly the
  /// per-vertex order a compact()/rebuild preserves). Owner-only.
  class out_edge_range {
   public:
    class iterator {
     public:
      using value_type = edge_handle;
      using iterator_category = std::forward_iterator_tag;
      using difference_type = std::int64_t;
      using pointer = void;
      using reference = edge_handle;
      edge_handle operator*() const {
        const std::uint64_t base_n = r_->last_ - r_->first_;
        if (pos_ < base_n) {
          const std::uint64_t p = r_->first_ + pos_;
          return edge_handle{src_, r_->s_->out_dst[p], r_->s_->edge_base + p,
                             static_cast<std::uint64_t>(-1)};
        }
        const std::uint32_t j = (*r_->dadj_)[pos_ - base_n];
        return edge_handle{src_, r_->s_->delta_dst[j], make_delta_eid(r_->rank_, j),
                           static_cast<std::uint64_t>(-1)};
      }
      iterator& operator++() {
        ++pos_;
        return *this;
      }
      bool operator!=(const iterator& o) const { return pos_ != o.pos_; }
      bool operator==(const iterator& o) const { return pos_ == o.pos_; }

     private:
      friend class out_edge_range;
      iterator(const out_edge_range* r, vertex_id src, std::uint64_t pos)
          : r_(r), src_(src), pos_(pos) {}
      const out_edge_range* r_;
      vertex_id src_;
      std::uint64_t pos_;
    };

    iterator begin() const { return iterator(this, src_, 0); }
    iterator end() const { return iterator(this, src_, size()); }
    std::uint64_t size() const {
      return (last_ - first_) + (dadj_ != nullptr ? dadj_->size() : 0);
    }
    bool empty() const { return size() == 0; }

   private:
    friend class distributed_graph;
    out_edge_range(const shard* s, rank_t rank, vertex_id src, std::uint64_t first,
                   std::uint64_t last, const std::vector<std::uint32_t>* dadj)
        : s_(s), rank_(rank), src_(src), first_(first), last_(last), dadj_(dadj) {}
    const shard* s_;
    rank_t rank_;
    vertex_id src_;
    std::uint64_t first_, last_;
    const std::vector<std::uint32_t>* dadj_;  ///< overlay slots, or nullptr
  };

  /// Forward iteration over v's in-edges as edge_handles (mirror slots set;
  /// overlay in-edges carry delta-tagged mirror slots).
  class in_edge_range {
   public:
    class iterator {
     public:
      using value_type = edge_handle;
      using iterator_category = std::forward_iterator_tag;
      using difference_type = std::int64_t;
      using pointer = void;
      using reference = edge_handle;
      edge_handle operator*() const {
        const std::uint64_t base_n = r_->last_ - r_->first_;
        if (pos_ < base_n) {
          const std::uint64_t p = r_->first_ + pos_;
          return edge_handle{r_->s_->in_src[p], dst_, r_->s_->in_eid[p], p};
        }
        const std::uint32_t j = (*r_->dadj_)[pos_ - base_n];
        return edge_handle{r_->s_->delta_in_src[j], dst_, r_->s_->delta_in_eid[j],
                           delta_edge_flag | j};
      }
      iterator& operator++() {
        ++pos_;
        return *this;
      }
      bool operator!=(const iterator& o) const { return pos_ != o.pos_; }
      bool operator==(const iterator& o) const { return pos_ == o.pos_; }

     private:
      friend class in_edge_range;
      iterator(const in_edge_range* r, vertex_id dst, std::uint64_t pos)
          : r_(r), dst_(dst), pos_(pos) {}
      const in_edge_range* r_;
      vertex_id dst_;
      std::uint64_t pos_;
    };

    iterator begin() const { return iterator(this, dst_, 0); }
    iterator end() const { return iterator(this, dst_, size()); }
    std::uint64_t size() const {
      return (last_ - first_) + (dadj_ != nullptr ? dadj_->size() : 0);
    }
    bool empty() const { return size() == 0; }

   private:
    friend class distributed_graph;
    in_edge_range(const shard* s, vertex_id dst, std::uint64_t first,
                  std::uint64_t last, const std::vector<std::uint32_t>* dadj)
        : s_(s), dst_(dst), first_(first), last_(last), dadj_(dadj) {}
    const shard* s_;
    vertex_id dst_;
    std::uint64_t first_, last_;
    const std::vector<std::uint32_t>* dadj_;
  };

  /// Out-neighbour targets of v (the `adj` generator view): the base CSR
  /// span followed by overlay targets. Owner-only.
  class adjacency_range {
   public:
    class iterator {
     public:
      using value_type = vertex_id;
      using iterator_category = std::forward_iterator_tag;
      using difference_type = std::int64_t;
      using pointer = void;
      using reference = vertex_id;
      vertex_id operator*() const {
        if (pos_ < r_->base_.size()) return r_->base_[pos_];
        return r_->s_->delta_dst[(*r_->dadj_)[pos_ - r_->base_.size()]];
      }
      iterator& operator++() {
        ++pos_;
        return *this;
      }
      bool operator!=(const iterator& o) const { return pos_ != o.pos_; }
      bool operator==(const iterator& o) const { return pos_ == o.pos_; }

     private:
      friend class adjacency_range;
      iterator(const adjacency_range* r, std::uint64_t pos) : r_(r), pos_(pos) {}
      const adjacency_range* r_;
      std::uint64_t pos_;
    };

    iterator begin() const { return iterator(this, 0); }
    iterator end() const { return iterator(this, size()); }
    std::uint64_t size() const {
      return base_.size() + (dadj_ != nullptr ? dadj_->size() : 0);
    }
    bool empty() const { return size() == 0; }
    /// The contiguous base-CSR prefix (no overlay entries).
    std::span<const vertex_id> base() const { return base_; }

   private:
    friend class distributed_graph;
    adjacency_range(const shard* s, std::span<const vertex_id> base,
                    const std::vector<std::uint32_t>* dadj)
        : s_(s), base_(base), dadj_(dadj) {}
    const shard* s_;
    std::span<const vertex_id> base_;
    const std::vector<std::uint32_t>* dadj_;
  };

  out_edge_range out_edges(vertex_id v) const {
    const rank_t r = checked_owner(v);
    const shard& s = shards_[r];
    const std::uint64_t li = dist_.local_index(v);
    return out_edge_range(&s, r, v, s.out_offsets[li], s.out_offsets[li + 1],
                          s.delta_slots(li));
  }

  in_edge_range in_edges(vertex_id v) const {
    DPG_ASSERT_MSG(bidirectional_, "in_edges requires bidirectional storage");
    const shard& s = owner_shard(v);
    const std::uint64_t li = dist_.local_index(v);
    return in_edge_range(&s, v, s.in_offsets[li], s.in_offsets[li + 1],
                         s.delta_in_slots(li));
  }

  adjacency_range adjacent(vertex_id v) const {
    const shard& s = owner_shard(v);
    const std::uint64_t li = dist_.local_index(v);
    return adjacency_range(
        &s,
        std::span<const vertex_id>(s.out_dst.data() + s.out_offsets[li],
                                   s.out_offsets[li + 1] - s.out_offsets[li]),
        s.delta_slots(li));
  }

 private:
  struct shard {
    std::uint64_t edge_base = 0;
    std::vector<std::uint64_t> out_offsets;  // CSR over local vertices
    std::vector<vertex_id> out_dst;
    std::vector<std::uint64_t> in_offsets;   // CSR over local vertices
    std::vector<vertex_id> in_src;
    std::vector<std::uint64_t> in_eid;       // the out-numbering id of each in-edge

    // ---- delta overlay (apply_edges appends; compact() clears) ------------
    // Arrays indexed by the per-rank delta index (the stable id suffix):
    std::vector<vertex_id> delta_src;
    std::vector<vertex_id> delta_dst;
    // Per-local-vertex slot lists, allocated lazily on the first append:
    std::vector<std::vector<std::uint32_t>> delta_adj;
    // In-overlay of bidirectional storage, same layout keyed by dst:
    std::vector<vertex_id> delta_in_src;
    std::vector<vertex_id> delta_in_dst;
    std::vector<std::uint64_t> delta_in_eid;  // out-numbering (delta) id
    std::vector<std::vector<std::uint32_t>> delta_in_adj;

    const std::vector<std::uint32_t>* delta_slots(std::uint64_t li) const {
      return delta_adj.empty() || delta_adj[li].empty() ? nullptr : &delta_adj[li];
    }
    const std::vector<std::uint32_t>* delta_in_slots(std::uint64_t li) const {
      return delta_in_adj.empty() || delta_in_adj[li].empty() ? nullptr
                                                              : &delta_in_adj[li];
    }
    std::uint64_t delta_deg(std::uint64_t li) const {
      return delta_adj.empty() ? 0 : delta_adj[li].size();
    }
    std::uint64_t delta_in_deg(std::uint64_t li) const {
      return delta_in_adj.empty() ? 0 : delta_in_adj[li].size();
    }
  };

  rank_t checked_owner(vertex_id v) const {
    const rank_t o = dist_.owner(v);
    const rank_t cur = ampp::current_rank();
    DPG_ASSERT_MSG(cur == ampp::invalid_rank || cur == o,
                   "graph topology accessed on a rank that does not own the vertex");
    return o;
  }
  const shard& owner_shard(vertex_id v) const { return shards_[checked_owner(v)]; }

  /// Builds the base CSR shards from a global edge list (constructor body;
  /// compact() reuses it after folding the overlay).
  void build_shards(std::span<const edge> edges);

  distribution dist_;
  bool bidirectional_;
  std::uint64_t num_edges_ = 0;
  std::vector<shard> shards_;
  std::uint64_t version_ = 1;
  std::uint64_t structure_version_ = 1;
  std::uint64_t delta_total_ = 0;
  ampp::transport_stats* stats_ = nullptr;
};

/// Recovers the full edge list of a distributed graph (in edge-id order for
/// the base CSR; overlay edges follow their vertex's base edges, which is
/// the order compact() and a rebuild both preserve). Call outside
/// transport::run.
std::vector<edge> edge_list_of(const distributed_graph& g);

/// The legacy whole-world mutation path: builds a *new* graph with `extra`
/// edges appended, preserving the distribution. Prefer apply_edges() +
/// compact(), which mutate in place and keep property maps, transports and
/// compiled plans alive. By default the rebuilt graph keeps g's storage
/// model (bidirectional graphs stay bidirectional); pass an explicit flag
/// to change it.
distributed_graph with_added_edges(const distributed_graph& g, std::span<const edge> extra,
                                   std::optional<bool> bidirectional = std::nullopt);

/// Appends the reverse of every edge, producing the symmetric directed
/// representation of an undirected graph (the CC algorithms assume this).
std::vector<edge> symmetrize(std::span<const edge> edges);

/// Removes duplicate edges and self-loops (useful for generator output).
std::vector<edge> simplify(std::vector<edge> edges);

}  // namespace dpg::graph
