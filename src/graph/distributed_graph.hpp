// The distributed, vertex-centric graph of §III-A: every rank stores a
// portion of the vertices and their outgoing edges; a "bidirectional"
// graph additionally stores incoming edges with each vertex ("bidirectional
// describes the storage model rather than a property of the graph").
//
// Access discipline: out_edges(v) / in_edges(v) / adjacency may only be
// enumerated on the rank that owns v. Inside ampp::transport::run this is
// enforced with assertions; outside a run (test inspection, sequential
// baselines) access is unrestricted.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ampp/types.hpp"
#include "graph/distribution.hpp"
#include "graph/ids.hpp"
#include "util/assert.hpp"

namespace dpg::graph {

class distributed_graph {
  struct shard;  // per-rank storage, defined below

 public:
  /// Builds the distributed representation from a global edge list.
  /// Self-loops are kept; parallel edges are kept (they get distinct edge
  /// ids). With `bidirectional` set, per-vertex in-edge lists are also
  /// built so the `in_edges` generator is available.
  distributed_graph(vertex_id n, std::span<const edge> edges, distribution dist,
                    bool bidirectional = false);

  const distribution& dist() const noexcept { return dist_; }
  vertex_id num_vertices() const noexcept { return dist_.num_vertices(); }
  std::uint64_t num_edges() const noexcept { return num_edges_; }
  bool bidirectional() const noexcept { return bidirectional_; }
  rank_t num_ranks() const noexcept { return dist_.num_ranks(); }

  rank_t owner(vertex_id v) const { return dist_.owner(v); }

  /// First global edge id assigned to rank r's out-edges.
  std::uint64_t edge_base(rank_t r) const { return shards_[r].edge_base; }
  /// Number of out-edges stored on rank r.
  std::uint64_t edge_count(rank_t r) const {
    return shards_[r].out_dst.size();
  }
  /// Number of in-edges stored on rank r (bidirectional graphs).
  std::uint64_t in_edge_count(rank_t r) const { return shards_[r].in_src.size(); }

  std::uint64_t out_degree(vertex_id v) const {
    const shard& s = owner_shard(v);
    const std::uint64_t li = dist_.local_index(v);
    return s.out_offsets[li + 1] - s.out_offsets[li];
  }

  std::uint64_t in_degree(vertex_id v) const {
    DPG_ASSERT_MSG(bidirectional_, "in_degree requires bidirectional storage");
    const shard& s = owner_shard(v);
    const std::uint64_t li = dist_.local_index(v);
    return s.in_offsets[li + 1] - s.in_offsets[li];
  }

  /// Forward iteration over v's out-edges as edge_handles. Owner-only.
  class out_edge_range {
   public:
    class iterator {
     public:
      using value_type = edge_handle;
      edge_handle operator*() const {
        return edge_handle{src_, r_->s_->out_dst[pos_], r_->s_->edge_base + pos_,
                           static_cast<std::uint64_t>(-1)};
      }
      iterator& operator++() {
        ++pos_;
        return *this;
      }
      bool operator!=(const iterator& o) const { return pos_ != o.pos_; }
      bool operator==(const iterator& o) const { return pos_ == o.pos_; }

     private:
      friend class out_edge_range;
      iterator(const out_edge_range* r, vertex_id src, std::uint64_t pos)
          : r_(r), src_(src), pos_(pos) {}
      const out_edge_range* r_;
      vertex_id src_;
      std::uint64_t pos_;
    };

    iterator begin() const { return iterator(this, src_, first_); }
    iterator end() const { return iterator(this, src_, last_); }
    std::uint64_t size() const { return last_ - first_; }
    bool empty() const { return first_ == last_; }

   private:
    friend class distributed_graph;
    out_edge_range(const shard* s, vertex_id src, std::uint64_t first,
                   std::uint64_t last)
        : s_(s), src_(src), first_(first), last_(last) {}
    const shard* s_;
    vertex_id src_;
    std::uint64_t first_, last_;
  };

  /// Forward iteration over v's in-edges as edge_handles (mirror slots set).
  class in_edge_range {
   public:
    class iterator {
     public:
      using value_type = edge_handle;
      edge_handle operator*() const {
        return edge_handle{r_->s_->in_src[pos_], dst_, r_->s_->in_eid[pos_], pos_};
      }
      iterator& operator++() {
        ++pos_;
        return *this;
      }
      bool operator!=(const iterator& o) const { return pos_ != o.pos_; }
      bool operator==(const iterator& o) const { return pos_ == o.pos_; }

     private:
      friend class in_edge_range;
      iterator(const in_edge_range* r, vertex_id dst, std::uint64_t pos)
          : r_(r), dst_(dst), pos_(pos) {}
      const in_edge_range* r_;
      vertex_id dst_;
      std::uint64_t pos_;
    };

    iterator begin() const { return iterator(this, dst_, first_); }
    iterator end() const { return iterator(this, dst_, last_); }
    std::uint64_t size() const { return last_ - first_; }
    bool empty() const { return first_ == last_; }

   private:
    friend class distributed_graph;
    in_edge_range(const shard* s, vertex_id dst, std::uint64_t first,
                  std::uint64_t last)
        : s_(s), dst_(dst), first_(first), last_(last) {}
    const shard* s_;
    vertex_id dst_;
    std::uint64_t first_, last_;
  };

  out_edge_range out_edges(vertex_id v) const {
    const shard& s = owner_shard(v);
    const std::uint64_t li = dist_.local_index(v);
    return out_edge_range(&s, v, s.out_offsets[li], s.out_offsets[li + 1]);
  }

  in_edge_range in_edges(vertex_id v) const {
    DPG_ASSERT_MSG(bidirectional_, "in_edges requires bidirectional storage");
    const shard& s = owner_shard(v);
    const std::uint64_t li = dist_.local_index(v);
    return in_edge_range(&s, v, s.in_offsets[li], s.in_offsets[li + 1]);
  }

  /// Out-neighbour targets of v (the `adj` generator view). Owner-only.
  std::span<const vertex_id> adjacent(vertex_id v) const {
    const shard& s = owner_shard(v);
    const std::uint64_t li = dist_.local_index(v);
    return std::span<const vertex_id>(s.out_dst.data() + s.out_offsets[li],
                                      s.out_offsets[li + 1] - s.out_offsets[li]);
  }

 private:
  struct shard {
    std::uint64_t edge_base = 0;
    std::vector<std::uint64_t> out_offsets;  // CSR over local vertices
    std::vector<vertex_id> out_dst;
    std::vector<std::uint64_t> in_offsets;   // CSR over local vertices
    std::vector<vertex_id> in_src;
    std::vector<std::uint64_t> in_eid;       // the out-numbering id of each in-edge
  };

  const shard& owner_shard(vertex_id v) const {
    const rank_t o = dist_.owner(v);
    const rank_t cur = ampp::current_rank();
    DPG_ASSERT_MSG(cur == ampp::invalid_rank || cur == o,
                   "graph topology accessed on a rank that does not own the vertex");
    return shards_[o];
  }

  distribution dist_;
  bool bidirectional_;
  std::uint64_t num_edges_ = 0;
  std::vector<shard> shards_;
};

/// Recovers the full edge list of a distributed graph (in edge-id order).
/// Call outside transport::run.
std::vector<edge> edge_list_of(const distributed_graph& g);

/// The framework is for non-morphing algorithms (the paper's footnote 1:
/// patterns may not change graph structure). Mutation therefore happens
/// *between* runs: this builds a new graph with `extra` edges appended,
/// preserving the distribution, so existing property values can be carried
/// over vertex-by-vertex (vertex ownership is unchanged). Newly appended
/// edges receive fresh edge ids; edge property maps must be rebuilt.
distributed_graph with_added_edges(const distributed_graph& g, std::span<const edge> extra,
                                   bool bidirectional = false);

/// Appends the reverse of every edge, producing the symmetric directed
/// representation of an undirected graph (the CC algorithms assume this).
std::vector<edge> symmetrize(std::span<const edge> edges);

/// Removes duplicate edges and self-loops (useful for generator output).
std::vector<edge> simplify(std::vector<edge> edges);

}  // namespace dpg::graph
