#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dpg::graph {

std::vector<edge> erdos_renyi(vertex_id n, std::uint64_t m, std::uint64_t seed) {
  DPG_ASSERT(n >= 1);
  xoshiro256ss rng(seed);
  std::vector<edge> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i)
    edges.push_back(edge{rng.below(n), rng.below(n)});
  return edges;
}

std::vector<edge> rmat(const rmat_params& p, std::uint64_t seed) {
  DPG_ASSERT_MSG(p.a + p.b + p.c <= 1.0 + 1e-9, "R-MAT probabilities exceed 1");
  const vertex_id n = vertex_id{1} << p.scale;
  const std::uint64_t m = static_cast<std::uint64_t>(p.edge_factor) * n;
  xoshiro256ss rng(seed);

  // Optional id scramble: without it, low ids concentrate the heavy tail.
  std::vector<vertex_id> perm;
  if (p.scramble_ids) {
    perm.resize(n);
    std::iota(perm.begin(), perm.end(), vertex_id{0});
    xoshiro256ss prng(substream_seed(seed, 1));
    for (vertex_id i = n; i > 1; --i)
      std::swap(perm[i - 1], perm[prng.below(i)]);
  }

  std::vector<edge> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    vertex_id u = 0, v = 0;
    for (unsigned bit = 0; bit < p.scale; ++bit) {
      const double r = rng.uniform01();
      // Quadrant choice per the recursive adjacency-matrix subdivision,
      // with per-level noise as in the Graph500 reference implementation.
      const double noise = 0.95 + 0.1 * rng.uniform01();
      const double a = p.a * noise, b = p.b * noise, c = p.c * noise;
      const double norm = a + b + c + (1.0 - p.a - p.b - p.c) * noise;
      const double ra = a / norm, rb = b / norm, rc = c / norm;
      if (r < ra) {
        // top-left: neither bit set
      } else if (r < ra + rb) {
        v |= vertex_id{1} << bit;
      } else if (r < ra + rb + rc) {
        u |= vertex_id{1} << bit;
      } else {
        u |= vertex_id{1} << bit;
        v |= vertex_id{1} << bit;
      }
    }
    if (p.scramble_ids) {
      u = perm[u];
      v = perm[v];
    }
    edges.push_back(edge{u, v});
  }
  return edges;
}

std::vector<edge> path_graph(vertex_id n) {
  std::vector<edge> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (vertex_id v = 0; v + 1 < n; ++v) edges.push_back(edge{v, v + 1});
  return edges;
}

std::vector<edge> cycle_graph(vertex_id n) {
  auto edges = path_graph(n);
  if (n > 1) edges.push_back(edge{n - 1, 0});
  return edges;
}

std::vector<edge> star_graph(vertex_id n) {
  std::vector<edge> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (vertex_id v = 1; v < n; ++v) edges.push_back(edge{0, v});
  return edges;
}

std::vector<edge> complete_graph(vertex_id n) {
  std::vector<edge> edges;
  edges.reserve(n * (n - 1));
  for (vertex_id u = 0; u < n; ++u)
    for (vertex_id v = 0; v < n; ++v)
      if (u != v) edges.push_back(edge{u, v});
  return edges;
}

std::vector<edge> grid_graph(vertex_id rows, vertex_id cols) {
  std::vector<edge> edges;
  auto id = [cols](vertex_id r, vertex_id c) { return r * cols + c; };
  for (vertex_id r = 0; r < rows; ++r) {
    for (vertex_id c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.push_back(edge{id(r, c), id(r, c + 1)});
        edges.push_back(edge{id(r, c + 1), id(r, c)});
      }
      if (r + 1 < rows) {
        edges.push_back(edge{id(r, c), id(r + 1, c)});
        edges.push_back(edge{id(r + 1, c), id(r, c)});
      }
    }
  }
  return edges;
}

double edge_weight(vertex_id u, vertex_id v, std::uint64_t seed, double max_weight) {
  const vertex_id lo = u < v ? u : v;
  const vertex_id hi = u < v ? v : u;
  splitmix64 h(seed ^ (lo * 0x9e3779b97f4a7c15ULL) ^ (hi + 0x7f4a7c15ULL));
  const double u01 = static_cast<double>(h.next() >> 11) * 0x1.0p-53;
  return 1.0 + u01 * (max_weight - 1.0);
}

std::uint32_t edge_weight_int(vertex_id u, vertex_id v, std::uint64_t seed,
                              std::uint32_t max_weight) {
  const vertex_id lo = u < v ? u : v;
  const vertex_id hi = u < v ? v : u;
  splitmix64 h(seed ^ (lo * 0x9e3779b97f4a7c15ULL) ^ (hi + 0x7f4a7c15ULL));
  return 1 + static_cast<std::uint32_t>(h.next() % max_weight);
}

}  // namespace dpg::graph
