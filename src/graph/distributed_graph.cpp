#include "graph/distributed_graph.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "ampp/stats.hpp"

namespace dpg::graph {

distributed_graph::distributed_graph(vertex_id n, std::span<const edge> edges,
                                     distribution dist, bool bidirectional)
    : dist_(std::move(dist)), bidirectional_(bidirectional), num_edges_(edges.size()) {
  DPG_ASSERT_MSG(dist_.num_vertices() == n, "distribution sized for a different graph");
  build_shards(edges);
}

void distributed_graph::build_shards(std::span<const edge> edges) {
  const vertex_id n = dist_.num_vertices();
  const rank_t ranks = dist_.num_ranks();
  shards_.assign(ranks, shard{});

  // --- out-edges: counting sort by (owner(src), local_index(src)) ---------
  for (rank_t r = 0; r < ranks; ++r)
    shards_[r].out_offsets.assign(dist_.count(r) + 1, 0);
  for (const edge& e : edges) {
    DPG_ASSERT_MSG(e.src < n && e.dst < n, "edge endpoint out of range");
    shards_[dist_.owner(e.src)].out_offsets[dist_.local_index(e.src) + 1]++;
  }
  std::uint64_t base = 0;
  for (rank_t r = 0; r < ranks; ++r) {
    shard& s = shards_[r];
    s.edge_base = base;
    for (std::size_t i = 1; i < s.out_offsets.size(); ++i)
      s.out_offsets[i] += s.out_offsets[i - 1];
    s.out_dst.resize(s.out_offsets.back());
    base += s.out_dst.size();
  }
  // Fill, preserving input order within each vertex's edge list (stable:
  // generators can rely on deterministic edge ids).
  {
    std::vector<std::vector<std::uint64_t>> cursor(ranks);
    for (rank_t r = 0; r < ranks; ++r)
      cursor[r].assign(shards_[r].out_offsets.begin(), shards_[r].out_offsets.end() - 1);
    for (const edge& e : edges) {
      const rank_t r = dist_.owner(e.src);
      const std::uint64_t li = dist_.local_index(e.src);
      shards_[r].out_dst[cursor[r][li]++] = e.dst;
    }
  }

  if (!bidirectional_) return;

  // --- in-edges: same construction keyed by dst, remembering each edge's
  // out-numbering id so property lookups can reach the mirror copy.
  for (rank_t r = 0; r < ranks; ++r)
    shards_[r].in_offsets.assign(dist_.count(r) + 1, 0);
  for (const edge& e : edges)
    shards_[dist_.owner(e.dst)].in_offsets[dist_.local_index(e.dst) + 1]++;
  for (rank_t r = 0; r < ranks; ++r) {
    shard& s = shards_[r];
    for (std::size_t i = 1; i < s.in_offsets.size(); ++i)
      s.in_offsets[i] += s.in_offsets[i - 1];
    s.in_src.resize(s.in_offsets.back());
    s.in_eid.resize(s.in_offsets.back());
  }
  {
    // Walk the out-CSR (not the input list) so in_eid matches assigned ids.
    std::vector<std::vector<std::uint64_t>> cursor(ranks);
    for (rank_t r = 0; r < ranks; ++r)
      cursor[r].assign(shards_[r].in_offsets.begin(), shards_[r].in_offsets.end() - 1);
    for (rank_t r = 0; r < ranks; ++r) {
      const shard& src_shard = shards_[r];
      for (std::uint64_t li = 0; li + 1 < src_shard.out_offsets.size(); ++li) {
        const vertex_id u = dist_.global(r, li);
        for (std::uint64_t p = src_shard.out_offsets[li]; p < src_shard.out_offsets[li + 1];
             ++p) {
          const vertex_id w = src_shard.out_dst[p];
          const rank_t wr = dist_.owner(w);
          const std::uint64_t wl = dist_.local_index(w);
          shard& dst_shard = shards_[wr];
          const std::uint64_t slot = cursor[wr][wl]++;
          dst_shard.in_src[slot] = u;
          dst_shard.in_eid[slot] = src_shard.edge_base + p;
        }
      }
    }
  }
}

void distributed_graph::apply_edges(std::span<const edge> extra) {
  // The non-morphing boundary (footnote 1): patterns never see the topology
  // change, because mutation is only legal while no SPMD program runs.
  if (ampp::current_rank() != ampp::invalid_rank) {
    const std::string msg =
        "apply_edges called inside transport::run: the paper's non-morphing "
        "guarantee (footnote 1) restricts topology mutation to the boundary "
        "between runs (graph version " +
        std::to_string(version_) + ")";
    dpg::assert_fail("ampp::current_rank() == ampp::invalid_rank", __FILE__, __LINE__,
                     msg.c_str());
  }
  if (extra.empty()) return;
  const vertex_id n = dist_.num_vertices();
  for (const edge& e : extra) {
    DPG_ASSERT_MSG(e.src < n && e.dst < n, "edge endpoint out of range");
    const rank_t r = dist_.owner(e.src);
    shard& s = shards_[r];
    if (s.delta_adj.empty()) s.delta_adj.resize(dist_.count(r));
    const std::uint64_t j = s.delta_dst.size();
    DPG_ASSERT_MSG(j <= delta_index_mask, "per-rank delta overlay exhausted; compact()");
    s.delta_src.push_back(e.src);
    s.delta_dst.push_back(e.dst);
    s.delta_adj[dist_.local_index(e.src)].push_back(static_cast<std::uint32_t>(j));
    if (bidirectional_) {
      const rank_t dr = dist_.owner(e.dst);
      shard& d = shards_[dr];
      if (d.delta_in_adj.empty()) d.delta_in_adj.resize(dist_.count(dr));
      const std::uint64_t k = d.delta_in_src.size();
      d.delta_in_src.push_back(e.src);
      d.delta_in_dst.push_back(e.dst);
      d.delta_in_eid.push_back(make_delta_eid(r, j));
      d.delta_in_adj[dist_.local_index(e.dst)].push_back(static_cast<std::uint32_t>(k));
    }
  }
  num_edges_ += extra.size();
  delta_total_ += extra.size();
  ++version_;
  if (stats_ != nullptr) {
    stats_->graph_mutations.fetch_add(1, std::memory_order_relaxed);
    stats_->delta_edges.fetch_add(extra.size(), std::memory_order_relaxed);
  }
}

void distributed_graph::compact() {
  DPG_ASSERT_MSG(ampp::current_rank() == ampp::invalid_rank,
                 "compact() rebuilds every shard; call it outside a run");
  if (delta_total_ == 0) return;
  // edge_list_of walks base + overlay per vertex, which is exactly the
  // per-vertex order a from-scratch rebuild over "original edges followed
  // by extras" produces — so the recounted CSR is structurally identical
  // (degrees, adjacency, edge-id numbering) to that rebuild.
  const std::vector<edge> edges = edge_list_of(*this);
  build_shards(edges);
  num_edges_ = edges.size();
  delta_total_ = 0;
  ++version_;
  ++structure_version_;
}

std::vector<edge> edge_list_of(const distributed_graph& g) {
  DPG_ASSERT_MSG(ampp::current_rank() == ampp::invalid_rank,
                 "edge_list_of touches every shard; call it outside a run");
  std::vector<edge> out;
  out.reserve(g.num_edges());
  const auto& dist = g.dist();
  for (rank_t r = 0; r < g.num_ranks(); ++r)
    for (std::uint64_t li = 0; li < dist.count(r); ++li) {
      const vertex_id v = dist.global(r, li);
      for (const edge_handle e : g.out_edges(v)) out.push_back(edge{e.src, e.dst});
    }
  return out;
}

distributed_graph with_added_edges(const distributed_graph& g, std::span<const edge> extra,
                                   std::optional<bool> bidirectional) {
  std::vector<edge> edges = edge_list_of(g);
  edges.insert(edges.end(), extra.begin(), extra.end());
  return distributed_graph(g.num_vertices(), edges, g.dist(),
                           bidirectional.value_or(g.bidirectional()));
}

std::vector<edge> symmetrize(std::span<const edge> edges) {
  std::vector<edge> out;
  out.reserve(edges.size() * 2);
  for (const edge& e : edges) {
    out.push_back(e);
    if (e.src != e.dst) out.push_back(edge{e.dst, e.src});
  }
  return out;
}

std::vector<edge> simplify(std::vector<edge> edges) {
  std::erase_if(edges, [](const edge& e) { return e.src == e.dst; });
  std::sort(edges.begin(), edges.end(), [](const edge& a, const edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace dpg::graph
