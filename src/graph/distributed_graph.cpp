#include "graph/distributed_graph.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "ampp/stats.hpp"

namespace dpg::graph {

distributed_graph::distributed_graph(vertex_id n, std::span<const edge> edges,
                                     distribution dist, bool bidirectional)
    : dist_(std::move(dist)), bidirectional_(bidirectional), num_edges_(edges.size()) {
  DPG_ASSERT_MSG(dist_.num_vertices() == n, "distribution sized for a different graph");
  build_shards(edges);
}

void distributed_graph::build_shards(std::span<const edge> edges) {
  const vertex_id n = dist_.num_vertices();
  const rank_t ranks = dist_.num_ranks();
  shards_.assign(ranks, shard{});

  // --- out-edges: counting sort by (owner(src), local_index(src)) ---------
  for (rank_t r = 0; r < ranks; ++r)
    shards_[r].out_offsets.assign(dist_.count(r) + 1, 0);
  for (const edge& e : edges) {
    DPG_ASSERT_MSG(e.src < n && e.dst < n, "edge endpoint out of range");
    shards_[dist_.owner(e.src)].out_offsets[dist_.local_index(e.src) + 1]++;
  }
  std::uint64_t base = 0;
  for (rank_t r = 0; r < ranks; ++r) {
    shard& s = shards_[r];
    s.edge_base = base;
    for (std::size_t i = 1; i < s.out_offsets.size(); ++i)
      s.out_offsets[i] += s.out_offsets[i - 1];
    s.out_dst.resize(s.out_offsets.back());
    base += s.out_dst.size();
  }
  // Fill, preserving input order within each vertex's edge list (stable:
  // generators can rely on deterministic edge ids).
  {
    std::vector<std::vector<std::uint64_t>> cursor(ranks);
    for (rank_t r = 0; r < ranks; ++r)
      cursor[r].assign(shards_[r].out_offsets.begin(), shards_[r].out_offsets.end() - 1);
    for (const edge& e : edges) {
      const rank_t r = dist_.owner(e.src);
      const std::uint64_t li = dist_.local_index(e.src);
      shards_[r].out_dst[cursor[r][li]++] = e.dst;
    }
  }

  if (!bidirectional_) return;

  // --- in-edges: same construction keyed by dst, remembering each edge's
  // out-numbering id so property lookups can reach the mirror copy.
  for (rank_t r = 0; r < ranks; ++r)
    shards_[r].in_offsets.assign(dist_.count(r) + 1, 0);
  for (const edge& e : edges)
    shards_[dist_.owner(e.dst)].in_offsets[dist_.local_index(e.dst) + 1]++;
  for (rank_t r = 0; r < ranks; ++r) {
    shard& s = shards_[r];
    for (std::size_t i = 1; i < s.in_offsets.size(); ++i)
      s.in_offsets[i] += s.in_offsets[i - 1];
    s.in_src.resize(s.in_offsets.back());
    s.in_eid.resize(s.in_offsets.back());
  }
  {
    // Walk the out-CSR (not the input list) so in_eid matches assigned ids.
    std::vector<std::vector<std::uint64_t>> cursor(ranks);
    for (rank_t r = 0; r < ranks; ++r)
      cursor[r].assign(shards_[r].in_offsets.begin(), shards_[r].in_offsets.end() - 1);
    for (rank_t r = 0; r < ranks; ++r) {
      const shard& src_shard = shards_[r];
      for (std::uint64_t li = 0; li + 1 < src_shard.out_offsets.size(); ++li) {
        const vertex_id u = dist_.global(r, li);
        for (std::uint64_t p = src_shard.out_offsets[li]; p < src_shard.out_offsets[li + 1];
             ++p) {
          const vertex_id w = src_shard.out_dst[p];
          const rank_t wr = dist_.owner(w);
          const std::uint64_t wl = dist_.local_index(w);
          shard& dst_shard = shards_[wr];
          const std::uint64_t slot = cursor[wr][wl]++;
          dst_shard.in_src[slot] = u;
          dst_shard.in_eid[slot] = src_shard.edge_base + p;
        }
      }
    }
  }
}

void distributed_graph::apply_edges(std::span<const edge> extra) {
  // The non-morphing boundary (footnote 1): patterns never see the topology
  // change, because mutation is only legal while no SPMD program runs.
  if (ampp::current_rank() != ampp::invalid_rank) {
    const std::string msg =
        "apply_edges called inside transport::run: the paper's non-morphing "
        "guarantee (footnote 1) restricts topology mutation to the boundary "
        "between runs (graph version " +
        std::to_string(version_) + ")";
    dpg::assert_fail("ampp::current_rank() == ampp::invalid_rank", __FILE__, __LINE__,
                     msg.c_str());
  }
  if (extra.empty()) return;
  const vertex_id n = dist_.num_vertices();
  for (const edge& e : extra) {
    DPG_ASSERT_MSG(e.src < n && e.dst < n, "edge endpoint out of range");
    const rank_t r = dist_.owner(e.src);
    shard& s = shards_[r];
    if (s.delta_adj.empty()) s.delta_adj.resize(dist_.count(r));
    const std::uint64_t j = s.delta_dst.size();
    DPG_ASSERT_MSG(j <= delta_index_mask, "per-rank delta overlay exhausted; compact()");
    s.delta_src.push_back(e.src);
    s.delta_dst.push_back(e.dst);
    s.delta_adj[dist_.local_index(e.src)].push_back(static_cast<std::uint32_t>(j));
    if (bidirectional_) {
      const rank_t dr = dist_.owner(e.dst);
      shard& d = shards_[dr];
      if (d.delta_in_adj.empty()) d.delta_in_adj.resize(dist_.count(dr));
      const std::uint64_t k = d.delta_in_src.size();
      d.delta_in_src.push_back(e.src);
      d.delta_in_dst.push_back(e.dst);
      d.delta_in_eid.push_back(make_delta_eid(r, j));
      d.delta_in_adj[dist_.local_index(e.dst)].push_back(static_cast<std::uint32_t>(k));
    }
  }
  num_edges_ += extra.size();
  delta_total_ += extra.size();
  ++version_;
  if (stats_ != nullptr) {
    stats_->graph_mutations.fetch_add(1, std::memory_order_relaxed);
    stats_->delta_edges.fetch_add(extra.size(), std::memory_order_relaxed);
  }
}

void distributed_graph::remove_edges(std::span<const std::uint64_t> eids) {
  // Same non-morphing boundary as apply_edges: a pattern in flight must
  // never observe an edge vanishing underneath it.
  if (ampp::current_rank() != ampp::invalid_rank) {
    const std::string msg =
        "remove_edges called inside transport::run: the paper's non-morphing "
        "guarantee (footnote 1) restricts topology mutation to the boundary "
        "between runs (graph version " +
        std::to_string(version_) + ")";
    dpg::assert_fail("ampp::current_rank() == ampp::invalid_rank", __FILE__, __LINE__,
                     msg.c_str());
  }
  if (eids.empty()) return;
  const rank_t ranks = dist_.num_ranks();
  for (const std::uint64_t eid : eids) {
    vertex_id src = 0, dst = 0;
    if (is_delta_edge(eid)) {
      const rank_t r = delta_edge_rank(eid);
      const std::uint64_t j = delta_edge_index(eid);
      DPG_ASSERT_MSG(r < ranks, "delta edge id names a rank this graph lacks");
      shard& s = shards_[r];
      DPG_ASSERT_MSG(j < s.delta_dst.size(), "delta edge id out of range");
      if (s.delta_dead.size() < s.delta_dst.size())
        s.delta_dead.resize(s.delta_dst.size(), 0);
      DPG_ASSERT_MSG(!s.delta_dead[j], "edge tombstoned twice");
      s.delta_dead[j] = 1;
      src = s.delta_src[j];
      dst = s.delta_dst[j];
      // Unlink the slot from its vertex's list: survivors keep their append
      // order, which is what makes compact() == rebuild hold under mixes.
      auto& slots = s.delta_adj[dist_.local_index(src)];
      std::erase(slots, static_cast<std::uint32_t>(j));
      if (bidirectional_) {
        shard& d = shards_[dist_.owner(dst)];
        auto& mirror = d.delta_in_adj[dist_.local_index(dst)];
        std::size_t k = 0;
        while (k < mirror.size() && d.delta_in_eid[mirror[k]] != eid) ++k;
        DPG_ASSERT_MSG(k < mirror.size(), "delta in-mirror missing for removed edge");
        mirror.erase(mirror.begin() + static_cast<std::ptrdiff_t>(k));
      }
      DPG_ASSERT_MSG(delta_total_ > 0, "overlay accounting underflow");
      --delta_total_;
    } else {
      rank_t r = 0;
      while (r + 1 < ranks && shards_[r + 1].edge_base <= eid) ++r;
      shard& s = shards_[r];
      DPG_ASSERT_MSG(eid >= s.edge_base && eid - s.edge_base < s.out_dst.size(),
                     "base edge id out of range");
      const std::uint64_t p = eid - s.edge_base;
      if (s.out_dead.empty()) {
        s.out_dead.assign(s.out_dst.size(), 0);
        s.out_dead_cnt.assign(dist_.count(r), 0);
      }
      DPG_ASSERT_MSG(!s.out_dead[p], "edge tombstoned twice");
      s.out_dead[p] = 1;
      // The owning local vertex is the CSR segment containing slot p.
      const std::uint64_t li = static_cast<std::uint64_t>(
          std::upper_bound(s.out_offsets.begin(), s.out_offsets.end(), p) -
          s.out_offsets.begin() - 1);
      ++s.out_dead_cnt[li];
      src = dist_.global(r, li);
      dst = s.out_dst[p];
      if (bidirectional_) {
        const rank_t dr = dist_.owner(dst);
        shard& d = shards_[dr];
        if (d.in_dead.empty()) {
          d.in_dead.assign(d.in_src.size(), 0);
          d.in_dead_cnt.assign(dist_.count(dr), 0);
        }
        const std::uint64_t dl = dist_.local_index(dst);
        std::uint64_t q = d.in_offsets[dl];
        while (q < d.in_offsets[dl + 1] && !(d.in_eid[q] == eid && !d.in_dead[q])) ++q;
        DPG_ASSERT_MSG(q < d.in_offsets[dl + 1],
                       "in-mirror missing for removed base edge");
        d.in_dead[q] = 1;
        ++d.in_dead_cnt[dl];
      }
    }
    DPG_ASSERT_MSG(num_edges_ > 0, "edge accounting underflow");
    --num_edges_;
    ++tombstoned_total_;
  }
  ++version_;
  if (stats_ != nullptr) {
    stats_->graph_mutations.fetch_add(1, std::memory_order_relaxed);
    stats_->tombstoned_edges.fetch_add(eids.size(), std::memory_order_relaxed);
  }
}

std::vector<std::uint64_t> distributed_graph::resolve_edges(
    std::span<const edge> victims) const {
  DPG_ASSERT_MSG(ampp::current_rank() == ampp::invalid_rank,
                 "resolve_edges walks shards directly; call it outside a run");
  std::vector<std::uint64_t> eids;
  eids.reserve(victims.size());
  std::unordered_set<std::uint64_t> claimed;
  for (const edge& v : victims) {
    DPG_ASSERT_MSG(v.src < dist_.num_vertices() && v.dst < dist_.num_vertices(),
                   "edge endpoint out of range");
    bool found = false;
    for (const edge_handle e : out_edges(v.src)) {
      if (e.dst != v.dst || claimed.contains(e.eid)) continue;
      eids.push_back(e.eid);
      claimed.insert(e.eid);
      found = true;
      break;
    }
    if (!found) {
      const std::string msg = "resolve_edges: no live edge " + std::to_string(v.src) +
                              " -> " + std::to_string(v.dst) + " left to tombstone";
      dpg::assert_fail("live edge exists", __FILE__, __LINE__, msg.c_str());
    }
  }
  return eids;
}

void distributed_graph::compact() {
  DPG_ASSERT_MSG(ampp::current_rank() == ampp::invalid_rank,
                 "compact() rebuilds every shard; call it outside a run");
  if (delta_total_ == 0 && tombstoned_total_ == 0) return;
  // edge_list_of walks the *live* base + overlay edges per vertex, which is
  // exactly the per-vertex order a from-scratch rebuild over "surviving
  // originals followed by surviving extras" produces — so the recounted CSR
  // is structurally identical (degrees, adjacency, edge-id numbering) to
  // that rebuild, and tombstoned slots are reclaimed wholesale because
  // build_shards reassigns every shard.
  const std::vector<edge> edges = edge_list_of(*this);
  build_shards(edges);
  num_edges_ = edges.size();
  delta_total_ = 0;
  tombstoned_total_ = 0;
  ++version_;
  ++structure_version_;
}

std::uint64_t distributed_graph::overlay_bytes() const noexcept {
  std::uint64_t b = 0;
  const auto list_bytes = [](const std::vector<std::vector<std::uint32_t>>& lists) {
    std::uint64_t n = lists.capacity() * sizeof(lists[0]);
    for (const auto& l : lists) n += l.capacity() * sizeof(std::uint32_t);
    return n;
  };
  for (const shard& s : shards_) {
    b += (s.delta_src.capacity() + s.delta_dst.capacity() + s.delta_in_src.capacity() +
          s.delta_in_dst.capacity()) *
         sizeof(vertex_id);
    b += s.delta_in_eid.capacity() * sizeof(std::uint64_t);
    b += list_bytes(s.delta_adj) + list_bytes(s.delta_in_adj);
  }
  return b;
}

std::uint64_t distributed_graph::tombstone_bytes() const noexcept {
  std::uint64_t b = 0;
  for (const shard& s : shards_) {
    b += s.out_dead.capacity() + s.in_dead.capacity() + s.delta_dead.capacity();
    b += (s.out_dead_cnt.capacity() + s.in_dead_cnt.capacity()) * sizeof(std::uint32_t);
  }
  return b;
}

std::vector<edge> edge_list_of(const distributed_graph& g) {
  DPG_ASSERT_MSG(ampp::current_rank() == ampp::invalid_rank,
                 "edge_list_of touches every shard; call it outside a run");
  std::vector<edge> out;
  out.reserve(g.num_edges());
  const auto& dist = g.dist();
  for (rank_t r = 0; r < g.num_ranks(); ++r)
    for (std::uint64_t li = 0; li < dist.count(r); ++li) {
      const vertex_id v = dist.global(r, li);
      for (const edge_handle e : g.out_edges(v)) out.push_back(edge{e.src, e.dst});
    }
  return out;
}

distributed_graph with_added_edges(const distributed_graph& g, std::span<const edge> extra,
                                   std::optional<bool> bidirectional) {
  std::vector<edge> edges = edge_list_of(g);
  edges.insert(edges.end(), extra.begin(), extra.end());
  return distributed_graph(g.num_vertices(), edges, g.dist(),
                           bidirectional.value_or(g.bidirectional()));
}

std::vector<edge> symmetrize(std::span<const edge> edges) {
  std::vector<edge> out;
  out.reserve(edges.size() * 2);
  for (const edge& e : edges) {
    out.push_back(e);
    if (e.src != e.dst) out.push_back(edge{e.dst, e.src});
  }
  return out;
}

std::vector<edge> simplify(std::vector<edge> edges) {
  std::erase_if(edges, [](const edge& e) { return e.src == e.dst; });
  std::sort(edges.begin(), edges.end(), [](const edge& a, const edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace dpg::graph
