#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace dpg::graph {

edge_list_file read_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  edge_list_file out;
  bool pinned_n = false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hdr(line.substr(1));
      std::string word;
      if (hdr >> word && word == "vertices") {
        if (!(hdr >> out.num_vertices))
          throw std::runtime_error(path + ": malformed '# vertices' header");
        pinned_n = true;
      }
      continue;
    }
    std::istringstream ls(line);
    edge e{};
    if (!(ls >> e.src >> e.dst))
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": malformed edge");
    double w;
    if (ls >> w) {
      if (out.weights.size() != out.edges.size())
        throw std::runtime_error(path + ": mixed weighted and unweighted lines");
      out.weights.push_back(w);
    } else if (!out.weights.empty()) {
      throw std::runtime_error(path + ": mixed weighted and unweighted lines");
    }
    out.edges.push_back(e);
    if (!pinned_n) {
      if (e.src >= out.num_vertices) out.num_vertices = e.src + 1;
      if (e.dst >= out.num_vertices) out.num_vertices = e.dst + 1;
    }
  }
  return out;
}

void write_edge_list(const std::string& path, vertex_id num_vertices,
                     const std::vector<edge>& edges, const std::vector<double>& weights) {
  DPG_ASSERT_MSG(weights.empty() || weights.size() == edges.size(),
                 "weight vector must match edge list");
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write edge list: " + path);
  out << "# vertices " << num_vertices << "\n";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    out << edges[i].src << ' ' << edges[i].dst;
    if (!weights.empty()) out << ' ' << weights[i];
    out << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace dpg::graph
