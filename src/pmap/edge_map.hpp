// Edge property maps (§III-B). The authoritative copy of an edge's value
// lives with the edge, i.e. on owner(src) — the rank that stores the
// out-edge (§IV). For bidirectional graphs a read-only mirror is kept at
// owner(dst), aligned with the in-edge lists, so that patterns using the
// `in_edges` generator still see edge values at the action's input vertex
// (Definition 1 assigns such accesses the locality of the input vertex).
//
// Mirrors are filled at construction from the same pure function as the
// primary copy; runtime writes go to the primary only (none of the paper's
// algorithms write edge properties after construction).
#pragma once

#include <span>
#include <vector>

#include "ampp/types.hpp"
#include "graph/distributed_graph.hpp"
#include "util/assert.hpp"

namespace dpg::pmap {

using ampp::rank_t;
using graph::edge_handle;
using graph::vertex_id;

template <class T>
class edge_property_map {
 public:
  using value_type = T;

  /// Uniform initialization.
  edge_property_map(const graph::distributed_graph& g, T init = T{}) : g_(&g) {
    allocate(init);
  }

  /// Fill from a pure function of the edge. `f` must be deterministic in
  /// (src, dst, eid) so primary and mirror copies agree.
  template <class F>
    requires std::invocable<F&, const edge_handle&>
  edge_property_map(const graph::distributed_graph& g, F f) : g_(&g) {
    allocate(T{});
    DPG_ASSERT_MSG(ampp::current_rank() == ampp::invalid_rank,
                   "construct edge maps before entering transport::run");
    const auto& dist = g.dist();
    for (rank_t r = 0; r < g.num_ranks(); ++r) {
      for (std::uint64_t li = 0; li < dist.count(r); ++li) {
        const vertex_id v = dist.global(r, li);
        for (const edge_handle e : g.out_edges(v))
          primary_[r][e.eid - g.edge_base(r)] = f(e);
        if (g.bidirectional())
          for (const edge_handle e : g.in_edges(v)) mirror_[r][e.mirror_slot] = f(e);
      }
    }
  }

  /// Authoritative (writable) value; valid only on owner(src(e)).
  T& operator[](const edge_handle& e) {
    const rank_t o = checked_src_owner(e);
    return primary_[o][e.eid - g_->edge_base(o)];
  }
  const T& operator[](const edge_handle& e) const {
    const rank_t o = checked_src_owner(e);
    return primary_[o][e.eid - g_->edge_base(o)];
  }

  /// Locality-aware read: on owner(src) reads the primary copy; on
  /// owner(dst) reads the mirror (requires an in-edge handle from a
  /// bidirectional graph). This is what the pattern executor calls.
  const T& read(const edge_handle& e) const {
    const rank_t cur = ampp::current_rank();
    const rank_t so = g_->owner(e.src);
    if (cur == ampp::invalid_rank || cur == so)
      return primary_[so][e.eid - g_->edge_base(so)];
    const rank_t to = g_->owner(e.dst);
    DPG_ASSERT_MSG(cur == to, "edge property read on a rank owning neither endpoint");
    DPG_ASSERT_MSG(e.mirror_slot != static_cast<std::uint64_t>(-1),
                   "mirror read requires an in-edge handle");
    return mirror_[to][e.mirror_slot];
  }

  /// Builds an edge map from values parallel to the *input edge list* the
  /// graph was constructed from (e.g. weights read from a file, including
  /// distinct values on parallel edges). The builder assigns edge ids in
  /// per-source-vertex input order, which this replays exactly; mirrors of
  /// bidirectional graphs are filled consistently.
  static edge_property_map from_edge_values(const graph::distributed_graph& g,
                                            std::span<const graph::edge> edges,
                                            std::span<const T> values) {
    DPG_ASSERT_MSG(edges.size() == values.size(), "one value per input edge required");
    DPG_ASSERT_MSG(edges.size() == g.num_edges(), "edge list does not match the graph");
    DPG_ASSERT_MSG(ampp::current_rank() == ampp::invalid_rank,
                   "construct edge maps before entering transport::run");
    edge_property_map out(g, T{});
    const auto& dist = g.dist();
    // Replay the builder's stable counting sort: per source vertex, edge
    // ids follow input order.
    std::vector<std::vector<std::uint64_t>> cursor(g.num_ranks());
    for (rank_t r = 0; r < g.num_ranks(); ++r) {
      cursor[r].resize(dist.count(r));
      for (std::uint64_t li = 0; li < dist.count(r); ++li) {
        const vertex_id v = dist.global(r, li);
        const auto range = g.out_edges(v);
        cursor[r][li] = range.empty() ? 0 : (*range.begin()).eid;
      }
    }
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const rank_t r = dist.owner(edges[i].src);
      const std::uint64_t li = dist.local_index(edges[i].src);
      const std::uint64_t eid = cursor[r][li]++;
      out.primary_[r][eid - g.edge_base(r)] = values[i];
    }
    if (g.bidirectional()) {
      // Mirrors copy the primary value of the same global edge id.
      for (rank_t r = 0; r < g.num_ranks(); ++r) {
        for (std::uint64_t li = 0; li < dist.count(r); ++li) {
          const vertex_id v = dist.global(r, li);
          for (const edge_handle e : g.in_edges(v)) {
            const rank_t so = g.owner(e.src);
            out.mirror_[r][e.mirror_slot] = out.primary_[so][e.eid - g.edge_base(so)];
          }
        }
      }
    }
    return out;
  }

 private:
  void allocate(const T& init) {
    primary_.resize(g_->num_ranks());
    for (rank_t r = 0; r < g_->num_ranks(); ++r)
      primary_[r].assign(g_->edge_count(r), init);
    if (g_->bidirectional()) {
      mirror_.resize(g_->num_ranks());
      for (rank_t r = 0; r < g_->num_ranks(); ++r)
        mirror_[r].assign(g_->in_edge_count(r), init);
    }
  }

  rank_t checked_src_owner(const edge_handle& e) const {
    const rank_t o = g_->owner(e.src);
    const rank_t cur = ampp::current_rank();
    DPG_ASSERT_MSG(cur == ampp::invalid_rank || cur == o,
                   "edge property accessed on a rank that does not own the edge");
    return o;
  }

  const graph::distributed_graph* g_;
  std::vector<std::vector<T>> primary_;
  std::vector<std::vector<T>> mirror_;
};

}  // namespace dpg::pmap
