// Edge property maps (§III-B). The authoritative copy of an edge's value
// lives with the edge, i.e. on owner(src) — the rank that stores the
// out-edge (§IV). For bidirectional graphs a read-only mirror is kept at
// owner(dst), aligned with the in-edge lists, so that patterns using the
// `in_edges` generator still see edge values at the action's input vertex
// (Definition 1 assigns such accesses the locality of the input vertex).
//
// Mirrors are filled at construction from the same pure function as the
// primary copy; runtime writes go to the primary only (none of the paper's
// algorithms write edge properties after construction).
//
// Topology versioning: the map subscribes to its graph's version() and
// grows lazily on the first access after apply_edges(). Base (CSR) edges
// are indexed by `eid - edge_base`; overlay edges carry delta-tagged ids
// (graph/ids.hpp) and live in per-rank delta shards, so growth appends
// without disturbing base values. How delta values materialize depends on
// how the map was built:
//   * pure init function  — evaluated for each new edge (mirrors included),
//   * uniform fill        — new edges take the fill value,
//   * from_edge_values    — frozen: there is no recipe for unseen edges, so
//     any post-mutation access fails loudly, naming both versions.
// compact() renumbers edge ids (a structure change): maps with an init
// function re-derive all storage; fill/frozen maps cannot and fail loudly.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "ampp/types.hpp"
#include "graph/distributed_graph.hpp"
#include "util/assert.hpp"

namespace dpg::pmap {

using ampp::rank_t;
using graph::edge_handle;
using graph::vertex_id;

template <class T>
class edge_property_map {
 public:
  using value_type = T;

  /// Uniform initialization. Overlay edges added later take `init` too.
  edge_property_map(const graph::distributed_graph& g, T init = T{})
      : g_(&g), growth_(growth::fill), fill_(init) {
    allocate(init);
    seen_version_.store(g.version(), std::memory_order_release);
    seen_structure_ = g.structure_version();
  }

  /// Fill from a pure function of the edge. `f` must be deterministic in
  /// (src, dst, eid) so primary and mirror copies agree. The function is
  /// retained: overlay edges appended by apply_edges() are filled from it
  /// lazily, and compact() re-derives the whole map through it.
  template <class F>
    requires std::invocable<F&, const edge_handle&>
  edge_property_map(const graph::distributed_graph& g, F f)
      : g_(&g), growth_(growth::fn), init_fn_(std::move(f)) {
    allocate(T{});
    DPG_ASSERT_MSG(ampp::current_rank() == ampp::invalid_rank,
                   "construct edge maps before entering transport::run");
    fill_from_fn();
    seen_version_.store(g.version(), std::memory_order_release);
    seen_structure_ = g.structure_version();
  }

  edge_property_map(const edge_property_map& o)
      : g_(o.g_), growth_(o.growth_), fill_(o.fill_), init_fn_(o.init_fn_),
        primary_(o.primary_), mirror_(o.mirror_), delta_primary_(o.delta_primary_),
        delta_mirror_(o.delta_mirror_), seen_structure_(o.seen_structure_) {
    seen_version_.store(o.seen_version_.load(std::memory_order_acquire),
                        std::memory_order_release);
  }
  edge_property_map(edge_property_map&& o) noexcept
      : g_(o.g_), growth_(o.growth_), fill_(std::move(o.fill_)),
        init_fn_(std::move(o.init_fn_)), primary_(std::move(o.primary_)),
        mirror_(std::move(o.mirror_)), delta_primary_(std::move(o.delta_primary_)),
        delta_mirror_(std::move(o.delta_mirror_)), seen_structure_(o.seen_structure_) {
    seen_version_.store(o.seen_version_.load(std::memory_order_acquire),
                        std::memory_order_release);
  }
  edge_property_map& operator=(const edge_property_map& o) {
    if (this == &o) return *this;
    g_ = o.g_;
    growth_ = o.growth_;
    fill_ = o.fill_;
    init_fn_ = o.init_fn_;
    primary_ = o.primary_;
    mirror_ = o.mirror_;
    delta_primary_ = o.delta_primary_;
    delta_mirror_ = o.delta_mirror_;
    seen_structure_ = o.seen_structure_;
    seen_version_.store(o.seen_version_.load(std::memory_order_acquire),
                        std::memory_order_release);
    return *this;
  }
  edge_property_map& operator=(edge_property_map&& o) noexcept {
    if (this == &o) return *this;
    g_ = o.g_;
    growth_ = o.growth_;
    fill_ = std::move(o.fill_);
    init_fn_ = std::move(o.init_fn_);
    primary_ = std::move(o.primary_);
    mirror_ = std::move(o.mirror_);
    delta_primary_ = std::move(o.delta_primary_);
    delta_mirror_ = std::move(o.delta_mirror_);
    seen_structure_ = o.seen_structure_;
    seen_version_.store(o.seen_version_.load(std::memory_order_acquire),
                        std::memory_order_release);
    return *this;
  }

  /// Authoritative (writable) value; valid only on owner(src(e)).
  T& operator[](const edge_handle& e) {
    sync();
    const rank_t o = checked_src_owner(e);
    if (graph::is_delta_edge(e.eid))
      return delta_primary_[graph::delta_edge_rank(e.eid)][graph::delta_edge_index(e.eid)];
    return primary_[o][e.eid - g_->edge_base(o)];
  }
  const T& operator[](const edge_handle& e) const {
    sync();
    const rank_t o = checked_src_owner(e);
    if (graph::is_delta_edge(e.eid))
      return delta_primary_[graph::delta_edge_rank(e.eid)][graph::delta_edge_index(e.eid)];
    return primary_[o][e.eid - g_->edge_base(o)];
  }

  /// Locality-aware read: on owner(src) reads the primary copy; on
  /// owner(dst) reads the mirror (requires an in-edge handle from a
  /// bidirectional graph). This is what the pattern executor calls.
  const T& read(const edge_handle& e) const {
    sync();
    const rank_t cur = ampp::current_rank();
    const rank_t so = g_->owner(e.src);
    if (cur == ampp::invalid_rank || cur == so) {
      if (graph::is_delta_edge(e.eid))
        return delta_primary_[graph::delta_edge_rank(e.eid)]
                             [graph::delta_edge_index(e.eid)];
      return primary_[so][e.eid - g_->edge_base(so)];
    }
    const rank_t to = g_->owner(e.dst);
    DPG_ASSERT_MSG(cur == to, "edge property read on a rank owning neither endpoint");
    DPG_ASSERT_MSG(e.mirror_slot != static_cast<std::uint64_t>(-1),
                   "mirror read requires an in-edge handle");
    if ((e.mirror_slot & graph::delta_edge_flag) != 0)
      return delta_mirror_[to][e.mirror_slot & ~graph::delta_edge_flag];
    return mirror_[to][e.mirror_slot];
  }

  /// The graph version this map has synced to (tests observe the lazy
  /// subscription through it).
  std::uint64_t observed_version() const {
    return seen_version_.load(std::memory_order_acquire);
  }

  /// Builds an edge map from values parallel to the *input edge list* the
  /// graph was constructed from (e.g. weights read from a file, including
  /// distinct values on parallel edges). The builder assigns edge ids in
  /// per-source-vertex input order, which this replays exactly; mirrors of
  /// bidirectional graphs are filled consistently. The result is *frozen*:
  /// there is no recipe for edges the graph did not have, so the graph must
  /// carry no delta overlay, and any access after a later mutation fails.
  static edge_property_map from_edge_values(const graph::distributed_graph& g,
                                            std::span<const graph::edge> edges,
                                            std::span<const T> values) {
    DPG_ASSERT_MSG(edges.size() == values.size(), "one value per input edge required");
    DPG_ASSERT_MSG(g.total_delta_edges() == 0,
                   "from_edge_values replays the base CSR numbering; compact() the "
                   "graph's delta overlay first");
    DPG_ASSERT_MSG(edges.size() == g.num_edges(), "edge list does not match the graph");
    DPG_ASSERT_MSG(ampp::current_rank() == ampp::invalid_rank,
                   "construct edge maps before entering transport::run");
    edge_property_map out(g, T{});
    out.growth_ = growth::frozen;
    const auto& dist = g.dist();
    // Replay the builder's stable counting sort: per source vertex, edge
    // ids follow input order.
    std::vector<std::vector<std::uint64_t>> cursor(g.num_ranks());
    for (rank_t r = 0; r < g.num_ranks(); ++r) {
      cursor[r].resize(dist.count(r));
      for (std::uint64_t li = 0; li < dist.count(r); ++li) {
        const vertex_id v = dist.global(r, li);
        const auto range = g.out_edges(v);
        cursor[r][li] = range.empty() ? 0 : (*range.begin()).eid;
      }
    }
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const rank_t r = dist.owner(edges[i].src);
      const std::uint64_t li = dist.local_index(edges[i].src);
      const std::uint64_t eid = cursor[r][li]++;
      out.primary_[r][eid - g.edge_base(r)] = values[i];
    }
    if (g.bidirectional()) {
      // Mirrors copy the primary value of the same global edge id.
      for (rank_t r = 0; r < g.num_ranks(); ++r) {
        for (std::uint64_t li = 0; li < dist.count(r); ++li) {
          const vertex_id v = dist.global(r, li);
          for (const edge_handle e : g.in_edges(v)) {
            const rank_t so = g.owner(e.src);
            out.mirror_[r][e.mirror_slot] = out.primary_[so][e.eid - g.edge_base(so)];
          }
        }
      }
    }
    return out;
  }

 private:
  enum class growth : std::uint8_t {
    fill,   ///< overlay edges take the stored fill value
    fn,     ///< overlay edges evaluate the stored pure init function
    frozen  ///< no recipe for new edges: post-mutation access is an error
  };

  void allocate(const T& init) {
    primary_.resize(g_->num_ranks());
    for (rank_t r = 0; r < g_->num_ranks(); ++r)
      primary_[r].assign(g_->edge_count(r), init);
    if (g_->bidirectional()) {
      mirror_.resize(g_->num_ranks());
      for (rank_t r = 0; r < g_->num_ranks(); ++r)
        mirror_[r].assign(g_->in_edge_count(r), init);
    }
    delta_primary_.assign(g_->num_ranks(), {});
    delta_mirror_.assign(g_->num_ranks(), {});
    for (rank_t r = 0; r < g_->num_ranks(); ++r) {
      grow_rank_primary(r);
      if (g_->bidirectional()) grow_rank_mirror(r);
    }
  }

  /// Evaluates the stored init function over every base edge (and mirror).
  void fill_from_fn() {
    const auto& dist = g_->dist();
    for (rank_t r = 0; r < g_->num_ranks(); ++r) {
      for (std::uint64_t li = 0; li < dist.count(r); ++li) {
        const vertex_id v = dist.global(r, li);
        for (const edge_handle e : g_->out_edges(v))
          if (!graph::is_delta_edge(e.eid)) primary_[r][e.eid - g_->edge_base(r)] = init_fn_(e);
        if (g_->bidirectional())
          for (const edge_handle e : g_->in_edges(v))
            if ((e.mirror_slot & graph::delta_edge_flag) == 0)
              mirror_[r][e.mirror_slot] = init_fn_(e);
      }
    }
  }

  /// Brings rank r's delta-primary shard up to the graph's overlay size.
  void grow_rank_primary(rank_t r) {
    auto& dp = delta_primary_[r];
    const std::uint64_t want = g_->delta_edge_count(r);
    for (std::uint64_t j = dp.size(); j < want; ++j)
      dp.push_back(growth_ == growth::fn ? init_fn_(g_->delta_out_edge(r, j)) : fill_);
  }
  void grow_rank_mirror(rank_t r) {
    auto& dm = delta_mirror_[r];
    const std::uint64_t want = g_->delta_in_edge_count(r);
    for (std::uint64_t j = dm.size(); j < want; ++j)
      dm.push_back(growth_ == growth::fn ? init_fn_(g_->delta_in_edge(r, j)) : fill_);
  }

  /// Lazy version sync (double-checked): the fast path is one acquire load
  /// and a compare; the slow path runs at most once per mutation under the
  /// growth mutex, then publishes with a release store so every later
  /// reader sees the grown shards.
  void sync() const {
    if (seen_version_.load(std::memory_order_acquire) == g_->version()) return;
    auto* self = const_cast<edge_property_map*>(this);
    std::lock_guard<std::mutex> lk(self->grow_mu_);
    if (seen_version_.load(std::memory_order_relaxed) == g_->version()) return;
    if (growth_ == growth::frozen) self->fail_stale("mutated");
    if (seen_structure_ != g_->structure_version()) {
      // compact() renumbered edge ids: only a pure init function can
      // re-derive the values for the new numbering.
      if (growth_ != growth::fn) self->fail_stale("compacted");
      self->allocate(T{});
      self->fill_from_fn();
    } else {
      for (rank_t r = 0; r < g_->num_ranks(); ++r) {
        self->grow_rank_primary(r);
        if (g_->bidirectional()) self->grow_rank_mirror(r);
      }
    }
    self->seen_structure_ = g_->structure_version();
    seen_version_.store(g_->version(), std::memory_order_release);
  }

  [[noreturn]] void fail_stale(const char* what) const {
    const std::string msg =
        std::string("stale edge property map: the graph was ") + what +
        " (map synced at graph version " +
        std::to_string(seen_version_.load(std::memory_order_relaxed)) +
        ", graph is now at version " + std::to_string(g_->version()) +
        ") and this map has no pure init function to grow from - rebuild it";
    dpg::assert_fail("edge map version == graph version", __FILE__, __LINE__,
                     msg.c_str());
  }

  rank_t checked_src_owner(const edge_handle& e) const {
    const rank_t o = g_->owner(e.src);
    const rank_t cur = ampp::current_rank();
    DPG_ASSERT_MSG(cur == ampp::invalid_rank || cur == o,
                   "edge property accessed on a rank that does not own the edge");
    return o;
  }

  const graph::distributed_graph* g_;
  growth growth_;
  T fill_{};                                      ///< growth::fill value
  std::function<T(const edge_handle&)> init_fn_;  ///< growth::fn recipe
  std::vector<std::vector<T>> primary_;
  std::vector<std::vector<T>> mirror_;
  std::vector<std::vector<T>> delta_primary_;  ///< per-rank overlay values
  std::vector<std::vector<T>> delta_mirror_;   ///< per-rank overlay mirrors
  mutable std::atomic<std::uint64_t> seen_version_{0};
  std::uint64_t seen_structure_ = 0;
  std::mutex grow_mu_;
};

}  // namespace dpg::pmap
