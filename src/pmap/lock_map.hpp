// The lock map abstraction of §IV-B.
//
// Quoting the paper: "The synchronization primitives are implemented
// through a lock map abstraction. The lock map has an interface for
// requesting a lock and for atomic instructions on property maps for the
// single-value case. [...] The lock map abstraction allows to parameterize
// an algorithm by a locking scheme. Two examples of possible locking
// schemes are a single lock per vertex or a lock for a block of vertices,
// with a tradeoff between the coarseness of synchronization and the number
// of locks."
//
// We provide exactly that: per-vertex and per-block spinlock schemes, plus
// generic-programming detection of hardware atomics for the single-value
// fast path (via std::atomic_ref), reverting to locking when unsupported.
#pragma once

#include <atomic>
#include <mutex>
#include <type_traits>
#include <vector>

#include "ampp/types.hpp"
#include "graph/distribution.hpp"
#include "util/assert.hpp"
#include "util/spinlock.hpp"

namespace dpg::pmap {

using ampp::rank_t;
using graph::vertex_id;

/// True when values of type T can be updated with hardware atomics.
template <class T>
concept atomic_capable = std::is_trivially_copyable_v<T> && sizeof(T) <= 8 &&
    std::atomic_ref<T>::is_always_lock_free;

/// Locking schemes, per the paper's two examples.
enum class lock_scheme {
  per_vertex,  ///< one lock per owned vertex (fine, more memory)
  per_block,   ///< one lock per 2^block_bits owned vertices (coarse, compact)
};

class lock_map {
 public:
  lock_map(const graph::distribution& dist, lock_scheme scheme, unsigned block_bits = 6)
      : dist_(&dist), scheme_(scheme), block_bits_(scheme == lock_scheme::per_vertex
                                                       ? 0
                                                       : block_bits) {
    locks_.resize(dist.num_ranks());
    for (rank_t r = 0; r < dist.num_ranks(); ++r) {
      const std::uint64_t n = dist.count(r);
      const std::uint64_t k = (n >> block_bits_) + 1;
      locks_[r] = std::vector<dpg::spinlock>(k);
    }
  }

  /// RAII guard for the lock covering vertex v on its owner.
  [[nodiscard]] std::unique_lock<dpg::spinlock> guard(vertex_id v) {
    return std::unique_lock<dpg::spinlock>(lock_for(v));
  }

  dpg::spinlock& lock_for(vertex_id v) {
    const rank_t o = dist_->owner(v);
    const rank_t cur = ampp::current_rank();
    DPG_ASSERT_MSG(cur == ampp::invalid_rank || cur == o,
                   "lock map consulted on a rank that does not own the vertex");
    return locks_[o][dist_->local_index(v) >> block_bits_];
  }

  lock_scheme scheme() const noexcept { return scheme_; }
  unsigned block_bits() const noexcept { return block_bits_; }

 private:
  const graph::distribution* dist_;
  lock_scheme scheme_;
  unsigned block_bits_;
  std::vector<std::vector<dpg::spinlock>> locks_;
};

/// Single-value atomic fast path: atomically
///     if (cond(current, proposed)) { current = proposed; return true; }
/// using a CAS loop on hardware atomics. `cond` must be a stable predicate
/// (if it rejects against a value x it must reject against anything cond
/// prefers over x — true for orderings like `proposed < current`).
template <atomic_capable T, class Cond>
bool atomic_update_if(T& slot, const T& proposed, Cond cond) {
  std::atomic_ref<T> ref(slot);
  T cur = ref.load(std::memory_order_relaxed);
  while (cond(cur, proposed)) {
    if (ref.compare_exchange_weak(cur, proposed, std::memory_order_acq_rel,
                                  std::memory_order_relaxed))
      return true;
    // cur reloaded by CAS failure; loop re-tests the condition.
  }
  return false;
}

/// Lock-based fallback with identical semantics for any type.
template <class T, class Cond>
bool locked_update_if(dpg::spinlock& lock, T& slot, const T& proposed, Cond cond) {
  std::lock_guard<dpg::spinlock> g(lock);
  if (cond(slot, proposed)) {
    slot = proposed;
    return true;
  }
  return false;
}

}  // namespace dpg::pmap
