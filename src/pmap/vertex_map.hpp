// Vertex property maps (§III-B): associate every vertex with an arbitrary
// value. Values are sharded by the graph's distribution and live on the
// owning rank; any access from a different rank inside a transport run is
// an error (the pattern runtime reaches remote values with messages, never
// through shared memory — that is the point of the paper).
#pragma once

#include <span>
#include <vector>

#include "ampp/types.hpp"
#include "graph/distributed_graph.hpp"
#include "util/assert.hpp"

namespace dpg::pmap {

using ampp::rank_t;
using graph::vertex_id;

template <class T>
class vertex_property_map {
 public:
  using value_type = T;

  vertex_property_map(const graph::distributed_graph& g, T init = T{})
      : dist_(&g.dist()), shards_(g.num_ranks()) {
    for (rank_t r = 0; r < g.num_ranks(); ++r)
      shards_[r].assign(dist_->count(r), init);
  }

  /// Owner-side element access.
  T& operator[](vertex_id v) {
    return shards_[checked_owner(v)][dist_->local_index(v)];
  }
  const T& operator[](vertex_id v) const {
    return shards_[checked_owner(v)][dist_->local_index(v)];
  }

  /// The calling rank's whole shard; for owner-local initialization loops
  /// ("for (v in V) dist[v] = ∞" runs as a local loop on every rank).
  std::span<T> local(rank_t r) {
    check_rank(r);
    return shards_[r];
  }
  std::span<const T> local(rank_t r) const {
    check_rank(r);
    return shards_[r];
  }

  /// Global id of rank r's li-th value (parallel to local(r)).
  vertex_id global_id(rank_t r, std::uint64_t li) const { return dist_->global(r, li); }

  /// Reset every value on every rank. Collective-or-outside-run only.
  void fill(const T& value) {
    DPG_ASSERT_MSG(ampp::current_rank() == ampp::invalid_rank,
                   "fill() touches all shards; use local(rank) inside a run");
    for (auto& s : shards_)
      for (auto& x : s) x = value;
  }

  const graph::distribution& dist() const { return *dist_; }

 private:
  rank_t checked_owner(vertex_id v) const {
    const rank_t o = dist_->owner(v);
    const rank_t cur = ampp::current_rank();
    DPG_ASSERT_MSG(cur == ampp::invalid_rank || cur == o,
                   "vertex property accessed on a rank that does not own it");
    return o;
  }
  void check_rank(rank_t r) const {
    const rank_t cur = ampp::current_rank();
    DPG_ASSERT_MSG(cur == ampp::invalid_rank || cur == r,
                   "shard accessed from a foreign rank");
  }

  const graph::distribution* dist_;
  std::vector<std::vector<T>> shards_;
};

}  // namespace dpg::pmap
