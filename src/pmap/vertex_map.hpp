// Vertex property maps (§III-B): associate every vertex with an arbitrary
// value. Values are sharded by the graph's distribution and live on the
// owning rank; any access from a different rank inside a transport run is
// an error (the pattern runtime reaches remote values with messages, never
// through shared memory — that is the point of the paper).
//
// Topology versioning: the map subscribes to its graph's version() and
// re-syncs lazily on the first access after a mutation. Edge mutation never
// changes the vertex set, so the vertex-map sync is a shard-size check plus
// a version acknowledgement — values survive apply_edges()/compact()
// untouched, which is what makes in-place warm restarts possible.
#pragma once

#include <atomic>
#include <span>
#include <vector>

#include "ampp/types.hpp"
#include "graph/distributed_graph.hpp"
#include "util/assert.hpp"

namespace dpg::pmap {

using ampp::rank_t;
using graph::vertex_id;

template <class T>
class vertex_property_map {
 public:
  using value_type = T;

  vertex_property_map(const graph::distributed_graph& g, T init = T{})
      : g_(&g), dist_(&g.dist()), shards_(g.num_ranks()), seen_version_(g.version()) {
    for (rank_t r = 0; r < g.num_ranks(); ++r)
      shards_[r].assign(dist_->count(r), init);
  }

  vertex_property_map(const vertex_property_map& o)
      : g_(o.g_), dist_(o.dist_), shards_(o.shards_),
        seen_version_(o.seen_version_.load(std::memory_order_relaxed)) {}
  vertex_property_map(vertex_property_map&& o) noexcept
      : g_(o.g_), dist_(o.dist_), shards_(std::move(o.shards_)),
        seen_version_(o.seen_version_.load(std::memory_order_relaxed)) {}
  vertex_property_map& operator=(const vertex_property_map& o) {
    if (this == &o) return *this;
    g_ = o.g_;
    dist_ = o.dist_;
    shards_ = o.shards_;
    seen_version_.store(o.seen_version_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    return *this;
  }
  vertex_property_map& operator=(vertex_property_map&& o) noexcept {
    if (this == &o) return *this;
    g_ = o.g_;
    dist_ = o.dist_;
    shards_ = std::move(o.shards_);
    seen_version_.store(o.seen_version_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    return *this;
  }

  /// Owner-side element access.
  T& operator[](vertex_id v) {
    sync();
    return shards_[checked_owner(v)][dist_->local_index(v)];
  }
  const T& operator[](vertex_id v) const {
    sync();
    return shards_[checked_owner(v)][dist_->local_index(v)];
  }

  /// The calling rank's whole shard; for owner-local initialization loops
  /// ("for (v in V) dist[v] = ∞" runs as a local loop on every rank).
  std::span<T> local(rank_t r) {
    sync();
    check_rank(r);
    return shards_[r];
  }
  std::span<const T> local(rank_t r) const {
    sync();
    check_rank(r);
    return shards_[r];
  }

  /// Global id of rank r's li-th value (parallel to local(r)).
  vertex_id global_id(rank_t r, std::uint64_t li) const { return dist_->global(r, li); }

  /// Reset every value on every rank. Collective-or-outside-run only.
  void fill(const T& value) {
    DPG_ASSERT_MSG(ampp::current_rank() == ampp::invalid_rank,
                   "fill() touches all shards; use local(rank) inside a run");
    sync();
    for (auto& s : shards_)
      for (auto& x : s) x = value;
  }

  const graph::distribution& dist() const { return *dist_; }

  /// The graph version this map has synced to (== graph version after any
  /// access; tests use it to observe the lazy subscription).
  std::uint64_t observed_version() const {
    return seen_version_.load(std::memory_order_acquire);
  }

 private:
  /// Lazy topology-version acknowledgement. apply_edges()/compact() never
  /// change the vertex set, so shard sizes are already right — the sync is
  /// a relaxed counter publish. A benign many-writers-same-value race is
  /// still a data race, hence the atomic.
  void sync() const {
    if (seen_version_.load(std::memory_order_relaxed) == g_->version()) return;
    DPG_ASSERT_MSG(shards_.empty() || shards_[0].size() == dist_->count(0),
                   "vertex map shard size diverged from its distribution");
    seen_version_.store(g_->version(), std::memory_order_release);
  }

  rank_t checked_owner(vertex_id v) const {
    const rank_t o = dist_->owner(v);
    const rank_t cur = ampp::current_rank();
    DPG_ASSERT_MSG(cur == ampp::invalid_rank || cur == o,
                   "vertex property accessed on a rank that does not own it");
    return o;
  }
  void check_rank(rank_t r) const {
    const rank_t cur = ampp::current_rank();
    DPG_ASSERT_MSG(cur == ampp::invalid_rank || cur == r,
                   "shard accessed from a foreign rank");
  }

  const graph::distributed_graph* g_;
  const graph::distribution* dist_;
  std::vector<std::vector<T>> shards_;
  mutable std::atomic<std::uint64_t> seen_version_;
};

}  // namespace dpg::pmap
