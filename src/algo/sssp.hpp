// Single-source shortest paths built from the SSSP pattern of §II-A.
//
// One declarative relax action (Fig. 2) is shared verbatim by all three
// execution schedules — this is the paper's headline reuse claim:
//   * fixed_point  — the chaotic label-correcting iteration of Fig. 1,
//   * Δ-stepping   — the bucketed strategy (coordinated, epoch per bucket),
//   * Δ-stepping (uncoordinated) — the try_finish form of §III-D.
#pragma once

#include <limits>
#include <memory>
#include <span>

#include "pattern/action.hpp"
#include "strategy/delta_stepping.hpp"
#include "strategy/strategies.hpp"

namespace dpg::algo {

using graph::vertex_id;

class sssp_solver {
 public:
  static constexpr double infinity = std::numeric_limits<double>::infinity();

  /// Registers the relax action's message types with `tp`. Construct before
  /// transport::run; `g` and `weight` must outlive the solver. `copts`
  /// controls plan compilation (fast-path / compact-wire toggles) — the
  /// default resolves from the environment; tests and sweeps pass explicit
  /// toggles to force both code paths.
  sssp_solver(ampp::transport& tp, const graph::distributed_graph& g,
              pmap::edge_property_map<double>& weight,
              pmap::lock_scheme locking = pmap::lock_scheme::per_vertex,
              pattern::compile_options copts = {})
      : g_(&g),
        dist_(g, infinity),
        locks_(g.dist(), locking),
        weight_(&weight) {
    pattern::property d(dist_);
    pattern::property w(*weight_);
    using namespace pattern;
    relax_ = instantiate(tp, g, locks_,
                         make_action("sssp.relax", out_edges_gen{},
                                     when(d(trg(e_)) > d(v_) + w(e_),
                                          assign(d(trg(e_)), d(v_) + w(e_)))),
                         copts);
  }

  /// Collective: resets distances and solves from `source` with the
  /// fixed_point strategy.
  strategy::result run_fixed_point(ampp::transport_context& ctx, vertex_id source,
                                   const strategy::options& opt = {}) {
    // Local reset only: the strategy's own hook-install barrier (which every
    // rank passes before any application) already orders these writes before
    // the first relax, so a second rendezvous here would be pure overhead.
    reset_local(ctx, source);
    std::vector<vertex_id> seeds;
    if (g_->owner(source) == ctx.rank()) seeds.push_back(source);
    return strategy::fixed_point(ctx, *relax_, seeds, opt);
  }

  /// Collective warm restart after a topology mutation: re-seeds the
  /// fixed_point strategy at `sources` *without* resetting distances.
  /// Because the relax action is monotone (assign only fires when it lowers
  /// a label), replaying it from the mutation sites corrects every label the
  /// mutation can improve and leaves the rest untouched — no graph rebuild,
  /// no property-map rebuild, no full re-solve.
  ///
  /// Incremental (adds only): seed with the sources of the added edges.
  /// Decremental / general (any deletions): call invalidate_unsupported()
  /// at the boundary first, then seed with its returned frontier plus the
  /// added-edge sources. Seeds whose label was invalidated to infinity are
  /// dropped here; if they become reachable again the chaotic relaxation
  /// re-fires their out-edges on its own.
  strategy::result repair(ampp::transport_context& ctx,
                          std::span<const vertex_id> sources,
                          const strategy::options& opt = {}) {
    std::vector<vertex_id> seeds;
    for (const vertex_id v : sources)
      if (g_->owner(v) == ctx.rank() && dist_[v] != infinity) seeds.push_back(v);
    return strategy::fixed_point(ctx, *relax_, seeds, opt);
  }

  /// Decremental invalidation, run at the mutation boundary (outside any
  /// transport::run) after remove_edges(). Keeps exactly the labels the
  /// live graph still witnesses and resets the rest to infinity; returns
  /// the repair frontier: every still-valid vertex with a live out-edge
  /// into the invalidated region (pass it to repair(), which filters by
  /// owning rank).
  ///
  /// A label survives iff its vertex is reachable from the last solve's
  /// source through *tight* live edges (dist[u] + w(e) == dist[v] — the
  /// exact sum the relax action committed, so the comparison is bitwise
  /// for the surviving shortest-path forest). Survivors are exact for the
  /// mutated graph: the tight path witnesses new_dist(v) <= dist[v], and
  /// deletions only lengthen paths so dist[v] = old_dist(v) <= new_dist(v).
  /// Everything else restarts from infinity, which monotone re-relaxation
  /// from the returned frontier then repairs to the exact fixed point.
  /// Ties broken differently by an equal-length alternative path may
  /// invalidate more than strictly necessary — never less.
  std::vector<vertex_id> invalidate_unsupported() {
    DPG_ASSERT_MSG(ampp::current_rank() == ampp::invalid_rank,
                   "invalidate_unsupported called inside transport::run: "
                   "decremental invalidation is a boundary operation, like "
                   "the mutation that makes it necessary");
    DPG_ASSERT_MSG(has_solution_, "invalidate_unsupported before any solve");
    const std::uint64_t n = g_->num_vertices();
    std::vector<std::uint8_t> supported(n, 0);
    std::vector<vertex_id> stack;
    if (dist_[source_] == 0.0) {
      supported[source_] = 1;
      stack.push_back(source_);
    }
    while (!stack.empty()) {
      const vertex_id u = stack.back();
      stack.pop_back();
      const double du = dist_[u];
      for (const auto e : g_->out_edges(u)) {
        if (supported[e.dst]) continue;
        if (dist_[e.dst] == du + (*weight_)[e]) {
          supported[e.dst] = 1;
          stack.push_back(e.dst);
        }
      }
    }
    std::vector<vertex_id> frontier;
    for (vertex_id v = 0; v < n; ++v) {
      if (supported[v]) {
        for (const auto e : g_->out_edges(v))
          if (!supported[e.dst]) {
            frontier.push_back(v);
            break;
          }
      } else if (dist_[v] != infinity) {
        dist_[v] = infinity;
      }
    }
    return frontier;
  }

  /// Collective: Δ-stepping with one epoch per bucket level.
  strategy::result run_delta(ampp::transport_context& ctx, vertex_id source, double delta,
                             const strategy::options& opt = {}) {
    // The driver built below is one object shared by every rank's thread —
    // an inherently in-process design. Cross-process schedules use
    // run_fixed_point (same action, same fixed point).
    DPG_ASSERT_MSG(!ctx.tp().cross_process(),
                   "delta-stepping shares its driver across ranks; use "
                   "run_fixed_point over a cross-process backend");
    reset(ctx, source);
    // The Δ-stepping driver is per-call state shared across ranks; build it
    // collectively on rank 0 and publish through a barrier.
    if (ctx.rank() == 0)
      delta_ = std::make_unique<strategy::delta_stepping<double>>(ctx.tp(), *g_, *relax_,
                                                                  dist_, delta);
    ctx.barrier();
    std::vector<vertex_id> seeds;
    if (g_->owner(source) == ctx.rank()) seeds.push_back(source);
    const strategy::result res = delta_->run(ctx, seeds, opt);
    ctx.barrier();
    return res;
  }

  /// Collective: the §III-D uncoordinated variant (local buckets, a single
  /// epoch terminated via try_finish).
  strategy::result run_delta_uncoordinated(ampp::transport_context& ctx, vertex_id source,
                                           double delta,
                                           const strategy::options& opt = {}) {
    DPG_ASSERT_MSG(!ctx.tp().cross_process(),
                   "delta-stepping shares its driver across ranks; use "
                   "run_fixed_point over a cross-process backend");
    reset(ctx, source);
    if (ctx.rank() == 0)
      delta_ = std::make_unique<strategy::delta_stepping<double>>(ctx.tp(), *g_, *relax_,
                                                                  dist_, delta);
    ctx.barrier();
    std::vector<vertex_id> seeds;
    if (g_->owner(source) == ctx.rank()) seeds.push_back(source);
    const strategy::result res = delta_->run_uncoordinated(ctx, seeds, opt);
    ctx.barrier();
    return res;
  }

  pmap::vertex_property_map<double>& dist() { return dist_; }
  const pmap::vertex_property_map<double>& dist() const { return dist_; }
  pattern::action_instance& relax() { return *relax_; }
  /// Relaxations performed since construction (successful condition fires).
  std::uint64_t relaxations() const { return relax_->modifications(); }
  /// Epochs consumed by the last Δ-stepping run.
  std::uint64_t delta_epochs() const { return delta_ ? delta_->epochs_used() : 0; }
  /// Source of the last solve (meaningful once has_solution()).
  vertex_id last_source() const { return source_; }
  bool has_solution() const { return has_solution_; }

 private:
  void reset(ampp::transport_context& ctx, vertex_id source) {
    reset_local(ctx, source);
    ctx.barrier();
  }

  void reset_local(ampp::transport_context& ctx, vertex_id source) {
    auto mine = dist_.local(ctx.rank());
    for (auto& x : mine) x = infinity;
    if (g_->owner(source) == ctx.rank()) dist_[source] = 0.0;
    // Racy-but-idempotent: every rank writes the same values, and the
    // strategy's hook-install barrier orders them before any read.
    source_ = source;
    has_solution_ = true;
  }

  const graph::distributed_graph* g_;
  pmap::vertex_property_map<double> dist_;
  pmap::lock_map locks_;
  pmap::edge_property_map<double>* weight_;
  std::unique_ptr<pattern::action_instance> relax_;
  std::unique_ptr<strategy::delta_stepping<double>> delta_;
  vertex_id source_ = 0;
  bool has_solution_ = false;
};

}  // namespace dpg::algo
