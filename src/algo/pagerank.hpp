// PageRank as a pattern: a scatter action accumulates rank contributions
// into the target's slot with a general `modify` (the grammar's arbitrary
// property-map modification), and an imperative per-iteration epilogue
// applies damping and swaps buffers — a textbook case of the paper's
// "declarative patterns inside imperative algorithms".
#pragma once

#include <memory>

#include "pattern/action.hpp"
#include "strategy/strategies.hpp"

namespace dpg::algo {

using graph::vertex_id;

class pagerank_solver {
 public:
  pagerank_solver(ampp::transport& tp, const graph::distributed_graph& g)
      : g_(&g),
        rank_(g, 0.0),
        next_(g, 0.0),
        share_(g, 0.0),
        locks_(g.dist(), pmap::lock_scheme::per_vertex) {
    using namespace pattern;
    property next(next_);
    property share(share_);
    scatter_ = instantiate(
        tp, g, locks_,
        make_action("pr.scatter", out_edges_gen{},
                    // Always fires: accumulate the sender's per-edge share.
                    when(lit(true),
                         modify(next(trg(e_)),
                                [](double& acc, double contribution) {
                                  acc += contribution;
                                },
                                share(v_)))));
  }

  /// Collective: `iterations` damped power-iteration rounds.
  void run(ampp::transport_context& ctx, double damping, int iterations) {
    const auto n = static_cast<double>(g_->num_vertices());
    const ampp::rank_t r = ctx.rank();
    for (auto& x : rank_.local(r)) x = 1.0 / n;
    ctx.barrier();

    for (int it = 0; it < iterations; ++it) {
      // Local prologue: per-vertex share; collect sink mass.
      double local_sink = 0.0;
      {
        auto ranks = rank_.local(r);
        auto shares = share_.local(r);
        auto nexts = next_.local(r);
        for (std::size_t li = 0; li < ranks.size(); ++li) {
          nexts[li] = 0.0;
          const std::uint64_t deg = g_->out_degree(rank_.global_id(r, li));
          if (deg == 0)
            local_sink += ranks[li];
          else
            shares[li] = ranks[li] / static_cast<double>(deg);
        }
      }
      const double sink = ctx.allreduce_sum(local_sink);

      // Declarative scatter inside one epoch.
      {
        ampp::epoch ep(ctx);
        strategy::for_each_local_vertex(ctx, *g_, [&](vertex_id v) {
          if (g_->out_degree(v) > 0) (*scatter_)(ctx, v);
        });
      }

      // Imperative epilogue: damping, teleport, sink redistribution, swap.
      const double base = (1.0 - damping) / n + damping * sink / n;
      auto ranks = rank_.local(r);
      auto nexts = next_.local(r);
      for (std::size_t li = 0; li < ranks.size(); ++li)
        ranks[li] = base + damping * nexts[li];
      ctx.barrier();
    }
  }

  pmap::vertex_property_map<double>& ranks() { return rank_; }

 private:
  const graph::distributed_graph* g_;
  pmap::vertex_property_map<double> rank_;
  pmap::vertex_property_map<double> next_;
  pmap::vertex_property_map<double> share_;
  pmap::lock_map locks_;
  std::unique_ptr<pattern::action_instance> scatter_;
};

}  // namespace dpg::algo
