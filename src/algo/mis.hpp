// Maximal independent set, Luby-style, as a genuinely multi-pattern
// algorithm: two declarative actions (priority broadcast, knock-out) driven
// by an imperative round loop with local decisions and a global
// convergence reduction — the paper's "declarative patterns in imperative
// algorithms" thesis exercised beyond single-action solvers.
//
// Per round, over the candidates still undecided:
//   1. every candidate pushes its random 64-bit priority to its candidate
//      neighbours (pattern `mis.push_prio`: min-combine at the target);
//   2. a candidate whose priority is strictly smaller than every candidate
//      neighbour's joins the set (local decision, no communication);
//   3. new members knock their candidate neighbours out
//      (pattern `mis.knock_out`).
// Priorities are re-hashed per round, so ties (probability ~2^-64) only
// cost an extra round, never progress.
//
// The input graph must be symmetric (undirected MIS); self-loops are
// excluded by an explicit trg(e) != src(e) conjunct in the pattern.
#pragma once

#include <cstdint>
#include <memory>

#include "pattern/action.hpp"
#include "strategy/strategies.hpp"
#include "util/rng.hpp"

namespace dpg::algo {

using graph::vertex_id;

class mis_solver {
 public:
  enum class state : std::uint32_t { candidate = 0, in = 1, out = 2 };

  mis_solver(ampp::transport& tp, const graph::distributed_graph& g)
      : g_(&g),
        state_(g, static_cast<std::uint32_t>(state::candidate)),
        prio_(g, 0),
        min_nbr_(g, ~0ULL),
        locks_(g.dist(), pmap::lock_scheme::per_vertex) {
    using namespace pattern;
    property S(state_);
    property P(prio_);
    property M(min_nbr_);
    constexpr auto CAND = static_cast<std::uint32_t>(state::candidate);
    constexpr auto IN = static_cast<std::uint32_t>(state::in);
    constexpr auto OUT = static_cast<std::uint32_t>(state::out);

    push_prio_ = instantiate(
        tp, g, locks_,
        make_action("mis.push_prio", out_edges_gen{},
                    when(S(v_) == lit(CAND) && S(trg(e_)) == lit(CAND) &&
                             trg(e_) != src(e_) && M(trg(e_)) > P(v_),
                         assign(M(trg(e_)), P(v_)))));
    knock_out_ = instantiate(
        tp, g, locks_,
        make_action("mis.knock_out", out_edges_gen{},
                    when(S(v_) == lit(IN) && S(trg(e_)) == lit(CAND),
                         assign(S(trg(e_)), lit(OUT)))));
  }

  /// Collective: computes the MIS; returns the number of rounds used.
  int run(ampp::transport_context& ctx, std::uint64_t seed = 0x715e) {
    const ampp::rank_t r = ctx.rank();
    for (auto& s : state_.local(r)) s = static_cast<std::uint32_t>(state::candidate);
    ctx.barrier();

    int rounds = 0;
    for (;;) {
      // Round prologue: fresh priorities, reset neighbour minima (local).
      {
        auto states = state_.local(r);
        auto prios = prio_.local(r);
        auto minn = min_nbr_.local(r);
        for (std::size_t li = 0; li < states.size(); ++li) {
          minn[li] = ~0ULL;
          if (states[li] == static_cast<std::uint32_t>(state::candidate))
            prios[li] = splitmix64(seed ^ (rounds * 0x9e3779b97f4a7c15ULL) ^
                                   prio_.global_id(r, li))
                            .next();
        }
      }
      bool any_candidate = false;
      {
        ampp::epoch ep(ctx);
        strategy::for_each_local_vertex(ctx, *g_, [&](vertex_id v) {
          if (state_[v] == static_cast<std::uint32_t>(state::candidate)) {
            any_candidate = true;
            (*push_prio_)(ctx, v);
          }
        });
      }
      if (!ctx.allreduce_or(any_candidate)) break;
      ++rounds;

      // Local decision: strict minimum among candidate neighbours wins.
      {
        auto states = state_.local(r);
        auto prios = prio_.local(r);
        auto minn = min_nbr_.local(r);
        for (std::size_t li = 0; li < states.size(); ++li)
          if (states[li] == static_cast<std::uint32_t>(state::candidate) &&
              prios[li] < minn[li])
            states[li] = static_cast<std::uint32_t>(state::in);
      }
      ctx.barrier();

      // Knock out the neighbours of the new members.
      {
        ampp::epoch ep(ctx);
        strategy::for_each_local_vertex(ctx, *g_, [&](vertex_id v) {
          if (state_[v] == static_cast<std::uint32_t>(state::in))
            (*knock_out_)(ctx, v);
        });
      }
    }
    return rounds;
  }

  bool in_set(vertex_id v) const {
    return state_[v] == static_cast<std::uint32_t>(state::in);
  }
  pmap::vertex_property_map<std::uint32_t>& states() { return state_; }

 private:
  const graph::distributed_graph* g_;
  pmap::vertex_property_map<std::uint32_t> state_;
  pmap::vertex_property_map<std::uint64_t> prio_;
  pmap::vertex_property_map<std::uint64_t> min_nbr_;
  pmap::lock_map locks_;
  std::unique_ptr<pattern::action_instance> push_prio_;
  std::unique_ptr<pattern::action_instance> knock_out_;
};

}  // namespace dpg::algo
