// SSSP with predecessor tracking: the paper's §III-C discusses exactly
// this shape ("preds[v].insert(u)" as a general modification). Here the
// relax action performs TWO modifications under one condition — updating
// the distance and recording the parent — which the planner keeps at one
// locality and executes under the lock map (two modifications disable the
// single-value atomic path), so (dist, parent) stay mutually consistent.
#pragma once

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "pattern/action.hpp"
#include "strategy/strategies.hpp"

namespace dpg::algo {

using graph::vertex_id;

class sssp_tree_solver {
 public:
  static constexpr double infinity = std::numeric_limits<double>::infinity();

  sssp_tree_solver(ampp::transport& tp, const graph::distributed_graph& g,
                   pmap::edge_property_map<double>& weight)
      : g_(&g),
        dist_(g, infinity),
        parent_(g, graph::invalid_vertex),
        locks_(g.dist(), pmap::lock_scheme::per_vertex),
        weight_(&weight) {
    using namespace pattern;
    property d(dist_);
    property par(parent_);
    property w(*weight_);
    relax_ = instantiate(
        tp, g, locks_,
        make_action("sssp_tree.relax", out_edges_gen{},
                    when(d(trg(e_)) > d(v_) + w(e_),
                         assign(d(trg(e_)), d(v_) + w(e_)),
                         assign(par(trg(e_)), src(e_)))));
  }

  /// Collective: fixed-point solve from `source`.
  strategy::result run(ampp::transport_context& ctx, vertex_id source,
                       const strategy::options& opt = {}) {
    const ampp::rank_t r = ctx.rank();
    for (auto& x : dist_.local(r)) x = infinity;
    for (auto& x : parent_.local(r)) x = graph::invalid_vertex;
    if (g_->owner(source) == ctx.rank()) dist_[source] = 0.0;
    ctx.barrier();
    std::vector<vertex_id> seeds;
    if (g_->owner(source) == ctx.rank()) seeds.push_back(source);
    return strategy::fixed_point(ctx, *relax_, seeds, opt);
  }

  /// Reconstructs the shortest path source→v (empty if unreachable).
  /// Call outside transport::run.
  std::vector<vertex_id> path_to(vertex_id v, vertex_id source) const {
    if (dist_[v] == infinity) return {};
    std::vector<vertex_id> path{v};
    while (v != source) {
      v = parent_[v];
      if (v == graph::invalid_vertex) return {};  // defensive: broken tree
      path.push_back(v);
      if (path.size() > g_->num_vertices()) return {};  // cycle guard
    }
    std::reverse(path.begin(), path.end());
    return path;
  }

  pmap::vertex_property_map<double>& dist() { return dist_; }
  pmap::vertex_property_map<vertex_id>& parent() { return parent_; }
  pattern::action_instance& relax() { return *relax_; }

 private:
  const graph::distributed_graph* g_;
  pmap::vertex_property_map<double> dist_;
  pmap::vertex_property_map<vertex_id> parent_;
  pmap::lock_map locks_;
  pmap::edge_property_map<double>* weight_;
  std::unique_ptr<pattern::action_instance> relax_;
};

}  // namespace dpg::algo
