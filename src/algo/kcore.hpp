// k-core decomposition by peeling, as a pattern + imperative driver.
//
// The declarative part is a single degree-decrement action: a freshly
// removed vertex tells each surviving neighbour to decrement its residual
// degree (a `modify` statement — the grammar's arbitrary in-place
// property-map modification). The imperative part is the classic peeling
// loop: at threshold k, repeatedly kill alive vertices whose residual
// degree dropped below k; vertices killed while peeling threshold k have
// coreness k-1. Requires a symmetric graph.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "pattern/action.hpp"
#include "strategy/strategies.hpp"

namespace dpg::algo {

using graph::vertex_id;

class kcore_solver {
 public:
  kcore_solver(ampp::transport& tp, const graph::distributed_graph& g)
      : g_(&g),
        state_(g, kAlive),
        deg_(g, 0),
        core_(g, 0),
        locks_(g.dist(), pmap::lock_scheme::per_vertex) {
    using namespace pattern;
    property S(state_);
    property D(deg_);
    decrement_ = instantiate(
        tp, g, locks_,
        make_action("kcore.decrement", out_edges_gen{},
                    when(S(v_) == lit(kFresh) && S(trg(e_)) == lit(kAlive),
                         modify(D(trg(e_)), [](std::uint64_t& d) {
                           if (d > 0) --d;
                         }))));
  }

  /// Collective: computes the coreness of every vertex. Returns the
  /// maximum coreness (the degeneracy of the graph).
  std::uint64_t run(ampp::transport_context& ctx) {
    const ampp::rank_t r = ctx.rank();
    {
      auto states = state_.local(r);
      auto degs = deg_.local(r);
      auto cores = core_.local(r);
      for (std::size_t li = 0; li < states.size(); ++li) {
        states[li] = kAlive;
        degs[li] = g_->out_degree(deg_.global_id(r, li));
        cores[li] = 0;
      }
    }
    ctx.barrier();

    std::uint64_t k = 1;
    for (;;) {
      // Anyone still alive? If not, the previous k-1 was the degeneracy.
      bool alive_here = false;
      strategy::for_each_local_vertex(ctx, *g_, [&](vertex_id v) {
        alive_here = alive_here || state_[v] == kAlive;
      });
      if (!ctx.allreduce_or(alive_here)) break;

      // Peel threshold k to a fixed point: surviving this loop means
      // being in the k-core, so survivors have coreness >= k.
      for (;;) {
        std::vector<vertex_id> fresh;
        strategy::for_each_local_vertex(ctx, *g_, [&](vertex_id v) {
          if (state_[v] == kAlive && deg_[v] < k) {
            state_[v] = kFresh;
            core_[v] = k - 1;  // died at threshold k => coreness k-1
            fresh.push_back(v);
          }
        });
        {
          ampp::epoch ep(ctx);
          for (const vertex_id v : fresh) (*decrement_)(ctx, v);
        }
        for (const vertex_id v : fresh) state_[v] = kDead;
        if (!ctx.allreduce_or(!fresh.empty())) break;
      }
      ++k;
    }
    return ctx.allreduce_max(local_max_core(ctx));
  }

  pmap::vertex_property_map<std::uint64_t>& coreness() { return core_; }

 private:
  static constexpr std::uint32_t kAlive = 0, kFresh = 1, kDead = 2;

  std::uint64_t local_max_core(ampp::transport_context& ctx) {
    std::uint64_t m = 0;
    for (const auto c : core_.local(ctx.rank())) m = std::max(m, c);
    return m;
  }

  const graph::distributed_graph* g_;
  pmap::vertex_property_map<std::uint32_t> state_;
  pmap::vertex_property_map<std::uint64_t> deg_;
  pmap::vertex_property_map<std::uint64_t> core_;
  pmap::lock_map locks_;
  std::unique_ptr<pattern::action_instance> decrement_;
};

}  // namespace dpg::algo
