// Single-source widest path (maximum-bottleneck path): the relax shape of
// §II-A with (max, min) in place of (min, +). Exercises the DSL's min_
// operator and the max-update direction of the §IV-B atomic fast path —
// the pattern framework synthesizes the same one-message plan as SSSP.
#pragma once

#include <limits>
#include <memory>

#include "pattern/action.hpp"
#include "strategy/strategies.hpp"

namespace dpg::algo {

using graph::vertex_id;

class widest_path_solver {
 public:
  static constexpr double infinity = std::numeric_limits<double>::infinity();

  widest_path_solver(ampp::transport& tp, const graph::distributed_graph& g,
                     pmap::edge_property_map<double>& capacity)
      : g_(&g),
        width_(g, 0.0),
        locks_(g.dist(), pmap::lock_scheme::per_vertex) {
    using namespace pattern;
    property w(width_);
    property cap(capacity);
    // Improve trg's bottleneck width when the path through v is wider:
    //   width[trg(e)] = max(width[trg(e)], min(width[v], cap[e]))
    relax_ = instantiate(
        tp, g, locks_,
        make_action("widest.relax", out_edges_gen{},
                    when(w(trg(e_)) < min_(w(v_), cap(e_)),
                         assign(w(trg(e_)), min_(w(v_), cap(e_))))));
  }

  /// Collective: solve from `source` by fixed point.
  strategy::result run(ampp::transport_context& ctx, vertex_id source,
                       const strategy::options& opt = {}) {
    for (auto& x : width_.local(ctx.rank())) x = 0.0;
    if (g_->owner(source) == ctx.rank()) width_[source] = infinity;
    ctx.barrier();
    std::vector<vertex_id> seeds;
    if (g_->owner(source) == ctx.rank()) seeds.push_back(source);
    return strategy::fixed_point(ctx, *relax_, seeds, opt);
  }

  pmap::vertex_property_map<double>& width() { return width_; }
  pattern::action_instance& relax() { return *relax_; }

 private:
  const graph::distributed_graph* g_;
  pmap::vertex_property_map<double> width_;
  pmap::lock_map locks_;
  std::unique_ptr<pattern::action_instance> relax_;
};

}  // namespace dpg::algo
