// Incremental analytics maintainers for streaming graphs.
//
// These ride along with the distributed solvers at the mutation boundary:
// they are sequential, whole-graph structures (like the baselines, they run
// outside transport::run where the owner-access discipline is relaxed) that
// absorb an add/delete batch in time proportional to the *affected* region
// instead of the whole graph. The serving layer's warm sessions consult
// them in solver_session::repair; the streaming sweep test proves their
// outputs bit-identical to the from-scratch oracles after every batch.
//
//  * cc_maintainer    — union-find ride-along. Additions are pure unions;
//    deletions fall back to recomputing the affected components only
//    (union-find cannot split). Labels are canonical: the minimum vertex
//    id of each component, exactly cc_union_find's convention.
//  * kcore_maintainer — the peel-frontier re-activation of Sariyüce et
//    al.'s streaming k-core maintenance: one undirected edge at a time,
//    a traversal collects the candidate set (the core-K purecore/subcore
//    around the touched endpoints), then a local eviction/demotion
//    cascade settles coreness without re-peeling the graph. Requires a
//    simple symmetric graph (use graph::simplify(graph::symmetrize(..))),
//    which is also the domain on which the distributed kcore_solver's
//    wave peel equals standard coreness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/distributed_graph.hpp"

namespace dpg::algo {

using graph::vertex_id;

/// Connected-components maintainer: union-find with canonical min-member
/// labels. rebuild()/apply() read the graph's *live* adjacency, so call
/// them after the corresponding apply_edges/remove_edges.
class cc_maintainer {
 public:
  explicit cc_maintainer(const graph::distributed_graph& g) : g_(&g) { rebuild(); }

  /// Rebuilds from the live edge set (also the deletion fallback's kernel,
  /// restricted there to the affected components).
  void rebuild() {
    const vertex_id n = g_->num_vertices();
    parent_.resize(n);
    label_.resize(n);
    for (vertex_id v = 0; v < n; ++v) parent_[v] = label_[v] = v;
    for (vertex_id v = 0; v < n; ++v)
      for (const vertex_id u : g_->adjacent(v)) unite(v, u);
  }

  /// Absorbs one mutation batch. Call after the graph mutation: additions
  /// union the new endpoints; any deletion recomputes the components the
  /// removed edges touch (members keep their old root until reset, which
  /// is what delimits the recompute region — components are closed under
  /// adjacency, so re-uniting the members' live edges never leaks out).
  void apply(std::span<const graph::edge> added, std::span<const graph::edge> removed) {
    for (const graph::edge& e : added) unite(e.src, e.dst);
    if (removed.empty()) return;
    std::vector<vertex_id> roots;
    for (const graph::edge& e : removed) {
      roots.push_back(find(e.src));
      roots.push_back(find(e.dst));
    }
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
    const vertex_id n = g_->num_vertices();
    std::vector<vertex_id> members;
    for (vertex_id v = 0; v < n; ++v)
      if (std::binary_search(roots.begin(), roots.end(), find(v))) members.push_back(v);
    for (const vertex_id v : members) parent_[v] = label_[v] = v;
    for (const vertex_id v : members)
      for (const vertex_id u : g_->adjacent(v)) unite(v, u);
  }

  /// Canonical label (minimum member id) of v's component.
  vertex_id label(vertex_id v) { return label_[find(v)]; }

  std::vector<vertex_id> labels() {
    std::vector<vertex_id> out(parent_.size());
    for (vertex_id v = 0; v < parent_.size(); ++v) out[v] = label(v);
    return out;
  }

 private:
  vertex_id find(vertex_id v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];  // path halving
      v = parent_[v];
    }
    return v;
  }

  void unite(vertex_id a, vertex_id b) {
    vertex_id ra = find(a), rb = find(b);
    if (ra == rb) return;
    // Attach under the smaller canonical label so the root's label stays
    // the component minimum without a separate pass.
    if (label_[rb] < label_[ra]) std::swap(ra, rb);
    parent_[rb] = ra;
  }

  const graph::distributed_graph* g_;
  std::vector<vertex_id> parent_;
  std::vector<vertex_id> label_;  ///< min member id, authoritative at roots
};

/// k-core maintainer: keeps its own simple undirected adjacency (neighbour
/// -> count of directed halves, so the two directions of a symmetrized
/// batch cancel structurally only when both are gone) plus per-vertex
/// coreness, updated one structural edge at a time.
class kcore_maintainer {
 public:
  explicit kcore_maintainer(const graph::distributed_graph& g) : g_(&g) { rebuild(); }

  /// Rebuilds adjacency from the live out-edges and re-peels from scratch.
  void rebuild() {
    adj_.assign(g_->num_vertices(), {});
    for (vertex_id v = 0; v < g_->num_vertices(); ++v)
      for (const vertex_id u : g_->adjacent(v))
        if (u != v) ++adj_[v][u];
    repeel();
  }

  /// Absorbs one mutation batch of *directed* edges. The batch must be
  /// symmetric (both halves of every undirected edge, the streaming
  /// layer's convention for this maintainer's simple-symmetric domain);
  /// only the canonical src < dst half drives the structural update, so
  /// each undirected edge mutates the symmetric adjacency exactly once —
  /// matching rebuild(), which counts each stored direction once.
  ///
  /// Each structural event settles coreness with a local cascade; if an
  /// event's candidate set blows the traversal budget the cascades stop
  /// (adjacency keeps updating) and one repeel() closes the batch.
  void apply(std::span<const graph::edge> added, std::span<const graph::edge> removed) {
    bool repeel_pending = false;
    for (const graph::edge& e : added) {
      if (e.src >= e.dst) continue;
      if (add_edge(e.src, e.dst) && !repeel_pending)
        repeel_pending = !on_insert(e.src, e.dst);
    }
    for (const graph::edge& e : removed) {
      if (e.src >= e.dst) continue;
      if (remove_edge(e.src, e.dst) && !repeel_pending)
        repeel_pending = !on_delete(e.src, e.dst);
    }
    if (repeel_pending) repeel();
  }

  std::uint64_t core(vertex_id v) const { return core_[v]; }
  const std::vector<std::uint64_t>& cores() const { return core_; }

 private:
  /// Mutates both directions of the symmetric adjacency at once; returns
  /// whether the undirected edge appeared / vanished structurally.
  bool add_edge(vertex_id u, vertex_id v) {
    const bool fresh = adj_[u].find(v) == adj_[u].end();
    ++adj_[u][v];
    ++adj_[v][u];
    return fresh;
  }

  bool remove_edge(vertex_id u, vertex_id v) {
    auto it = adj_[u].find(v);
    DPG_ASSERT_MSG(it != adj_[u].end(), "kcore_maintainer: removing an absent edge");
    if (--it->second == 0) {
      adj_[u].erase(it);
      adj_[v].erase(u);
      return true;
    }
    --adj_[v][u];
    return false;
  }

  /// When one structural event's candidate set (the coreness-K subcore
  /// around its endpoints) grows past this, the local cascade costs more
  /// than re-peeling the whole graph, so apply() abandons cascades for
  /// the rest of the batch and closes with one repeel(). Uniform-degree
  /// graphs — where a single coreness value dominates and the subcore
  /// *is* the graph — land here; skewed graphs stay on local cascades.
  static constexpr std::size_t kTraversalBudget = 128;

  /// Candidate collection shared by insert/delete: the coreness-K vertices
  /// reachable from the touched endpoints through coreness-K vertices (the
  /// purecore/subcore) — the only vertices whose coreness can change.
  /// Returns false (budget blown) without touching core_.
  bool collect(vertex_id u, vertex_id v, std::uint64_t K,
               std::unordered_set<vertex_id>& seen, std::vector<vertex_id>& cand) {
    std::vector<vertex_id> stack;
    for (const vertex_id r : {u, v})
      if (core_[r] == K && seen.insert(r).second) stack.push_back(r);
    while (!stack.empty()) {
      const vertex_id w = stack.back();
      stack.pop_back();
      cand.push_back(w);
      if (cand.size() > kTraversalBudget) return false;
      for (const auto& [x, mult] : adj_[w])
        if (core_[x] == K && seen.insert(x).second) stack.push_back(x);
    }
    return true;
  }

  /// Structural insertion of undirected (u,v), already present in adj_.
  /// Candidates that survive the eviction cascade (enough qualified
  /// neighbours to sit in a (K+1)-core) are promoted by exactly one.
  /// Returns false if the candidate set blew the traversal budget (core_
  /// untouched; the caller owes a repeel()).
  bool on_insert(vertex_id u, vertex_id v) {
    const std::uint64_t K = std::min(core_[u], core_[v]);
    std::unordered_set<vertex_id> cand_set;
    std::vector<vertex_id> cand;
    if (!collect(u, v, K, cand_set, cand)) return false;
    std::unordered_map<vertex_id, std::uint64_t> cd;
    for (const vertex_id w : cand) {
      std::uint64_t d = 0;
      for (const auto& [x, mult] : adj_[w])
        if (core_[x] > K || cand_set.count(x)) ++d;
      cd[w] = d;
    }
    std::unordered_set<vertex_id> evicted;
    std::vector<vertex_id> stack;
    for (const vertex_id w : cand)
      if (cd[w] <= K && evicted.insert(w).second) stack.push_back(w);
    while (!stack.empty()) {
      const vertex_id w = stack.back();
      stack.pop_back();
      for (const auto& [x, mult] : adj_[w]) {
        if (!cand_set.count(x) || evicted.count(x)) continue;
        if (--cd[x] <= K && evicted.insert(x).second) stack.push_back(x);
      }
    }
    for (const vertex_id w : cand)
      if (!evicted.count(w)) core_[w] = K + 1;
    return true;
  }

  /// Structural deletion of undirected (u,v), already erased from adj_.
  /// Candidates whose qualified degree fell below K demote by exactly one,
  /// cascading through the subcore. Returns false if the candidate set
  /// blew the traversal budget (core_ untouched; caller owes a repeel()).
  bool on_delete(vertex_id u, vertex_id v) {
    const std::uint64_t K = std::min(core_[u], core_[v]);
    if (K == 0) return true;
    std::unordered_set<vertex_id> cand_set;
    std::vector<vertex_id> cand;
    if (!collect(u, v, K, cand_set, cand)) return false;
    std::unordered_map<vertex_id, std::uint64_t> md;
    for (const vertex_id w : cand) {
      std::uint64_t d = 0;
      for (const auto& [x, mult] : adj_[w])
        if (core_[x] >= K) ++d;
      md[w] = d;
    }
    std::unordered_set<vertex_id> demoted;
    std::vector<vertex_id> stack;
    for (const vertex_id w : cand)
      if (md[w] < K && demoted.insert(w).second) stack.push_back(w);
    while (!stack.empty()) {
      const vertex_id w = stack.back();
      stack.pop_back();
      core_[w] = K - 1;
      for (const auto& [x, mult] : adj_[w]) {
        if (!cand_set.count(x) || demoted.count(x)) continue;
        if (--md[x] < K && demoted.insert(x).second) stack.push_back(x);
      }
    }
    return true;
  }

  /// Batagelj–Zaveršnik bin-sort peel over the maintained adjacency; on a
  /// simple graph this is exactly the wave peel's coreness.
  void repeel() {
    const vertex_id n = adj_.size();
    core_.assign(n, 0);
    if (n == 0) return;
    std::vector<std::uint64_t> deg(n);
    std::uint64_t md = 0;
    for (vertex_id v = 0; v < n; ++v) {
      deg[v] = adj_[v].size();
      md = std::max(md, deg[v]);
    }
    std::vector<std::uint64_t> bin(md + 2, 0);
    for (vertex_id v = 0; v < n; ++v) ++bin[deg[v]];
    std::uint64_t start = 0;
    for (std::uint64_t d = 0; d <= md; ++d) {
      const std::uint64_t cnt = bin[d];
      bin[d] = start;
      start += cnt;
    }
    std::vector<vertex_id> vert(n);
    std::vector<std::uint64_t> pos(n);
    for (vertex_id v = 0; v < n; ++v) {
      pos[v] = bin[deg[v]]++;
      vert[pos[v]] = v;
    }
    for (std::uint64_t d = md + 1; d > 0; --d) bin[d] = bin[d - 1];
    bin[0] = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const vertex_id v = vert[i];
      core_[v] = deg[v];
      for (const auto& [u, mult] : adj_[v]) {
        if (deg[u] <= deg[v]) continue;
        // Swap u to the front of its bin, then shrink its degree.
        const std::uint64_t du = deg[u], pu = pos[u], pw = bin[du];
        const vertex_id w = vert[pw];
        if (u != w) {
          std::swap(vert[pu], vert[pw]);
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bin[du];
        --deg[u];
      }
    }
  }

  const graph::distributed_graph* g_;
  std::vector<std::unordered_map<vertex_id, std::uint32_t>> adj_;
  std::vector<std::uint64_t> core_;
};

}  // namespace dpg::algo
