#include "algo/baselines.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <unordered_set>

namespace dpg::algo {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::vector<double> dijkstra(const distributed_graph& g,
                             const pmap::edge_property_map<double>& weight,
                             vertex_id source) {
  const vertex_id n = g.num_vertices();
  std::vector<double> dist(n, kInf);
  dist[source] = 0.0;
  using entry = std::pair<double, vertex_id>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> pq;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;  // stale entry
    for (const graph::edge_handle e : g.out_edges(v)) {
      const double nd = d + weight[e];
      if (nd < dist[e.dst]) {
        dist[e.dst] = nd;
        pq.emplace(nd, e.dst);
      }
    }
  }
  return dist;
}

std::vector<double> bellman_ford(const distributed_graph& g,
                                 const pmap::edge_property_map<double>& weight,
                                 vertex_id source) {
  const vertex_id n = g.num_vertices();
  std::vector<double> dist(n, kInf);
  dist[source] = 0.0;
  for (vertex_id round = 0; round < n; ++round) {
    bool changed = false;
    for (vertex_id v = 0; v < n; ++v) {
      if (dist[v] == kInf) continue;
      for (const graph::edge_handle e : g.out_edges(v)) {
        const double nd = dist[v] + weight[e];
        if (nd < dist[e.dst]) {
          dist[e.dst] = nd;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return dist;
}

std::vector<std::int64_t> bfs_levels(const distributed_graph& g, vertex_id source) {
  const vertex_id n = g.num_vertices();
  std::vector<std::int64_t> level(n, -1);
  level[source] = 0;
  std::queue<vertex_id> q;
  q.push(source);
  while (!q.empty()) {
    const vertex_id v = q.front();
    q.pop();
    for (const vertex_id u : g.adjacent(v)) {
      if (level[u] == -1) {
        level[u] = level[v] + 1;
        q.push(u);
      }
    }
  }
  return level;
}

namespace {

class union_find {
 public:
  explicit union_find(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a < b)
      parent_[b] = a;  // root by minimum id → canonical min labels
    else
      parent_[a] = b;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<vertex_id> cc_union_find(const distributed_graph& g) {
  const vertex_id n = g.num_vertices();
  union_find uf(n);
  for (vertex_id v = 0; v < n; ++v)
    for (const vertex_id u : g.adjacent(v)) uf.unite(v, u);
  std::vector<vertex_id> label(n);
  for (vertex_id v = 0; v < n; ++v) label[v] = uf.find(v);
  return label;
}

std::vector<vertex_id> cc_label_propagation(const distributed_graph& g) {
  const vertex_id n = g.num_vertices();
  std::vector<vertex_id> label(n);
  std::iota(label.begin(), label.end(), vertex_id{0});
  bool changed = true;
  while (changed) {
    changed = false;
    for (vertex_id v = 0; v < n; ++v) {
      for (const vertex_id u : g.adjacent(v)) {
        // Push the smaller label across the edge in both directions (the
        // graph may store only one direction).
        if (label[v] < label[u]) {
          label[u] = label[v];
          changed = true;
        } else if (label[u] < label[v]) {
          label[v] = label[u];
          changed = true;
        }
      }
    }
  }
  return label;
}

std::vector<double> pagerank(const distributed_graph& g, double damping,
                             int iterations) {
  const vertex_id n = g.num_vertices();
  std::vector<double> rank(n, 1.0 / static_cast<double>(n)), next(n);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    double sink_mass = 0.0;
    for (vertex_id v = 0; v < n; ++v) {
      const std::uint64_t deg = g.out_degree(v);
      if (deg == 0) {
        sink_mass += rank[v];
        continue;
      }
      const double share = rank[v] / static_cast<double>(deg);
      for (const vertex_id u : g.adjacent(v)) next[u] += share;
    }
    const double base =
        (1.0 - damping) / static_cast<double>(n) + damping * sink_mass / static_cast<double>(n);
    for (vertex_id v = 0; v < n; ++v) next[v] = base + damping * next[v];
    rank.swap(next);
  }
  return rank;
}

std::vector<std::uint64_t> kcore_peel(const distributed_graph& g) {
  const vertex_id n = g.num_vertices();
  enum : std::uint8_t { alive, fresh, dead };
  std::vector<std::uint8_t> state(n, alive);
  std::vector<std::uint64_t> deg(n), core(n, 0);
  vertex_id remaining = n;
  for (vertex_id v = 0; v < n; ++v) deg[v] = g.out_degree(v);
  for (std::uint64_t k = 1; remaining > 0; ++k) {
    // Peel threshold k in waves: each wave removes every alive vertex whose
    // residual degree dropped below k, then decrements the still-alive
    // neighbours — same wave granularity as the distributed solver.
    for (;;) {
      std::vector<vertex_id> wave;
      for (vertex_id v = 0; v < n; ++v)
        if (state[v] == alive && deg[v] < k) {
          state[v] = fresh;
          core[v] = k - 1;
          wave.push_back(v);
        }
      if (wave.empty()) break;
      for (const vertex_id v : wave)
        for (const vertex_id u : g.adjacent(v))
          if (state[u] == alive && deg[u] > 0) --deg[u];
      for (const vertex_id v : wave) state[v] = dead;
      remaining -= static_cast<vertex_id>(wave.size());
    }
  }
  return core;
}

std::size_t count_components(const std::vector<vertex_id>& labels) {
  std::unordered_set<vertex_id> roots(labels.begin(), labels.end());
  return roots.size();
}

}  // namespace dpg::algo
