// Betweenness centrality (Brandes' algorithm) for unweighted graphs, as
// patterns + a level-synchronous imperative driver.
//
// This algorithm exercises the parts of the paper's grammar no simpler
// solver needs:
//   * the forward action has an if / else-if chain whose first arm performs
//     THREE modifications (depth assignment, σ accumulation, predecessor
//     recording — the paper's §III-C `preds[v].insert(u)` example);
//   * the backward action uses the *property-map set generator*
//     ("generator: u in preds[v]"), fanning out along recorded
//     predecessors rather than graph edges;
//   * its modification reads σ at the generated vertex — a synchronized
//     final-locality read feeding a general `modify`.
//
// Forward (per level L, frontier has final σ):    for e in out_edges(v):
//   if depth[trg] unset:   depth[trg]=L+1; σ[trg]+=σ[v]; preds[trg]∪={v}
//   elif depth[trg]==L+1:  σ[trg]+=σ[v];  preds[trg]∪={v}
// Backward (levels L..1):  for u in preds[v]:
//   δ[u] += σ[u]/σ[v] · (1 + δ[v])
// bc[v] = Σ_sources δ[v]  (v ≠ source).
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "pattern/action.hpp"
#include "strategy/strategies.hpp"

namespace dpg::algo {

using graph::vertex_id;

class betweenness_solver {
 public:
  betweenness_solver(ampp::transport& tp, const graph::distributed_graph& g)
      : g_(&g),
        unset_(g.num_vertices()),
        depth_(g, unset_),
        sigma_(g, 0.0),
        delta_(g, 0.0),
        preds_(g),
        bc_(g, 0.0),
        locks_(g.dist(), pmap::lock_scheme::per_vertex),
        next_frontier_(tp.size()) {
    using namespace pattern;
    property D(depth_);
    property S(sigma_);
    property Del(delta_);
    property P(preds_);
    forward_ = instantiate(
        tp, g, locks_,
        make_action(
            "bc.forward", out_edges_gen{},
            when(D(trg(e_)) == lit(unset_),
                 assign(D(trg(e_)), D(v_) + lit<std::uint64_t>(1)),
                 modify(S(trg(e_)), [](double& s, double sv) { s += sv; }, S(v_)),
                 modify(P(trg(e_)),
                        [](std::vector<vertex_id>& p, vertex_id u) { p.push_back(u); },
                        src(e_))),
            when(D(trg(e_)) == D(v_) + lit<std::uint64_t>(1),
                 modify(S(trg(e_)), [](double& s, double sv) { s += sv; }, S(v_)),
                 modify(P(trg(e_)),
                        [](std::vector<vertex_id>& p, vertex_id u) { p.push_back(u); },
                        src(e_)))));
    backward_ = instantiate(
        tp, g, locks_,
        make_action("bc.backward", pmap_gen<pmap::vertex_property_map<std::vector<vertex_id>>>{&preds_},
                    when(lit(true),
                         modify(Del(u_),
                                [](double& d, double sv, double dv, double su) {
                                  d += su / sv * (1.0 + dv);
                                },
                                S(v_), Del(v_), S(u_)))));
    harvest_ = [this](ampp::transport_context& c, vertex_id dep) {
      next_frontier_[c.rank()].push_back(dep);
    };
  }

  /// Collective: accumulates the contribution of one source into bc.
  /// Call reset_bc() first to start a fresh centrality computation; run
  /// several sources to approximate (or all for exact) betweenness.
  void accumulate_source(ampp::transport_context& ctx, vertex_id source) {
    const ampp::rank_t r = ctx.rank();
    {
      auto depths = depth_.local(r);
      auto sigmas = sigma_.local(r);
      auto deltas = delta_.local(r);
      auto preds = preds_.local(r);
      for (std::size_t li = 0; li < depths.size(); ++li) {
        depths[li] = unset_;
        sigmas[li] = 0.0;
        deltas[li] = 0.0;
        preds[li].clear();
      }
    }
    std::vector<std::vector<vertex_id>> levels;  // this rank's vertices per level
    std::vector<vertex_id> frontier;
    if (g_->owner(source) == ctx.rank()) {
      depth_[source] = 0;
      sigma_[source] = 1.0;
      frontier.push_back(source);
    }
    next_frontier_[r].clear();
    strategy::install_hook_collective(ctx, *forward_, harvest_);

    // Forward sweep: one epoch per level; the dependency hook harvests
    // newly discovered vertices (depth is only assigned once, so each
    // vertex is harvested exactly once).
    for (;;) {
      const bool any = ctx.allreduce_or(!frontier.empty());
      if (!any) break;
      levels.push_back(frontier);
      {
        ampp::epoch ep(ctx);
        for (const vertex_id v : frontier) (*forward_)(ctx, v);
      }
      frontier = std::move(next_frontier_[r]);
      next_frontier_[r].clear();
      // The σ-accumulation arm also fires the dependency hook (it writes a
      // map the action reads), so a vertex reached along several same-level
      // edges is harvested once per edge: deduplicate.
      std::sort(frontier.begin(), frontier.end());
      frontier.erase(std::unique(frontier.begin(), frontier.end()), frontier.end());
    }

    // Backward sweep: deepest level first; δ flows along preds.
    const std::uint64_t my_levels = levels.size();
    const std::uint64_t max_levels = ctx.allreduce_max(my_levels);
    for (std::uint64_t l = max_levels; l-- > 1;) {
      ampp::epoch ep(ctx);
      if (l < levels.size())
        for (const vertex_id v : levels[l]) (*backward_)(ctx, v);
    }

    // Fold this source's δ into bc (source excluded).
    {
      auto deltas = delta_.local(r);
      auto bcs = bc_.local(r);
      for (std::size_t li = 0; li < deltas.size(); ++li) bcs[li] += deltas[li];
      if (g_->owner(source) == ctx.rank()) bc_[source] -= delta_[source];
    }
    ctx.barrier();
  }

  /// Collective: zero the accumulated centrality.
  void reset_bc(ampp::transport_context& ctx) {
    for (auto& x : bc_.local(ctx.rank())) x = 0.0;
    ctx.barrier();
  }

  pmap::vertex_property_map<double>& centrality() { return bc_; }
  pmap::vertex_property_map<double>& sigma() { return sigma_; }
  pmap::vertex_property_map<std::uint64_t>& depth() { return depth_; }

 private:
  const graph::distributed_graph* g_;
  std::uint64_t unset_;
  pmap::vertex_property_map<std::uint64_t> depth_;
  pmap::vertex_property_map<double> sigma_;
  pmap::vertex_property_map<double> delta_;
  pmap::vertex_property_map<std::vector<vertex_id>> preds_;
  pmap::vertex_property_map<double> bc_;
  pmap::lock_map locks_;
  std::unique_ptr<pattern::action_instance> forward_;
  std::unique_ptr<pattern::action_instance> backward_;
  pattern::action_instance::work_hook harvest_;
  std::vector<std::vector<vertex_id>> next_frontier_;
};

}  // namespace dpg::algo
