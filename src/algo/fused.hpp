// SSSP + widest-path + BFS-tree in one traversal wave (multi-pattern
// fusion, GraFS-style). The three relax actions are declared exactly as
// their standalone solvers declare them — same DSL text, same shapes —
// and handed to pattern::fuse, which synthesizes one fused message
// family and drives all three to their fixed points in a single epoch
// loop with a single termination detection. Result maps are
// bit-identical to running sssp_solver / widest_path_solver / bfs_solver
// separately (asserted under every fault plan by the fusion sweep).
//
// The sources may differ per member: a candidate generated at a vertex
// one member has not reached yet carries that member's self-rejecting
// sentinel, so mixed-source waves stay exact. This is the serving
// layer's merged distinct-source story — N user queries over one
// snapshot become one fused solve (see serve::server::solve).
#pragma once

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "pattern/fuse.hpp"
#include "strategy/strategies.hpp"

namespace dpg::algo {

using graph::vertex_id;

namespace detail {

// The member action definitions, verbatim from sssp_solver /
// widest_path_solver / bfs_solver. Factored as free builders so the
// fused action's concrete type (which spells out the when-clause types)
// can be named by decltype inside the solver class.
inline auto sssp_def(pmap::vertex_property_map<double>& dist,
                     pmap::edge_property_map<double>& weight) {
  using namespace pattern;
  property d(dist);
  property wt(weight);
  return make_action("sssp.relax", out_edges_gen{},
                     when(d(trg(e_)) > d(v_) + wt(e_),
                          assign(d(trg(e_)), d(v_) + wt(e_))));
}
inline auto widest_def(pmap::vertex_property_map<double>& width,
                       pmap::edge_property_map<double>& capacity) {
  using namespace pattern;
  property w(width);
  property cap(capacity);
  return make_action("widest.relax", out_edges_gen{},
                     when(w(trg(e_)) < min_(w(v_), cap(e_)),
                          assign(w(trg(e_)), min_(w(v_), cap(e_)))));
}
inline auto bfs_def(pmap::vertex_property_map<std::uint64_t>& depth) {
  using namespace pattern;
  property d(depth);
  return make_action("bfs.explore", out_edges_gen{},
                     when(d(trg(e_)) > d(v_) + lit<std::uint64_t>(1),
                          assign(d(trg(e_)), d(v_) + lit<std::uint64_t>(1))));
}

}  // namespace detail

class fused_triple_solver {
 private:
  using fused_ptr = decltype(pattern::fuse(
      std::declval<ampp::transport&>(),
      std::declval<const graph::distributed_graph&>(),
      std::declval<pattern::compile_options>(),
      detail::sssp_def(std::declval<pmap::vertex_property_map<double>&>(),
               std::declval<pmap::edge_property_map<double>&>()),
      detail::widest_def(std::declval<pmap::vertex_property_map<double>&>(),
                 std::declval<pmap::edge_property_map<double>&>()),
      detail::bfs_def(std::declval<pmap::vertex_property_map<std::uint64_t>&>())));

 public:
  static constexpr double infinity = std::numeric_limits<double>::infinity();

  /// Per-member source vertices (they need not coincide).
  struct sources {
    vertex_id sssp = 0;
    vertex_id widest = 0;
    vertex_id bfs = 0;
  };

  /// Registers the fused message family with `tp`. Construct before
  /// transport::run; `g`, `weight`, and `capacity` must outlive the
  /// solver. `copts` controls the batch/reduction toggles of the fused
  /// lane (the fused family is itself the fast path).
  fused_triple_solver(ampp::transport& tp, const graph::distributed_graph& g,
                      pmap::edge_property_map<double>& weight,
                      pmap::edge_property_map<double>& capacity,
                      pattern::compile_options copts = {})
      : g_(&g),
        unreachable_(g.num_vertices()),
        dist_(g, infinity),
        width_(g, 0.0),
        depth_(g, unreachable_),
        fused_(pattern::fuse(tp, g, copts, detail::sssp_def(dist_, weight),
                             detail::widest_def(width_, capacity), detail::bfs_def(depth_))) {}

  /// Collective: resets all three maps and solves the three analytics to
  /// their common fixed point in one epoch loop.
  strategy::result run(ampp::transport_context& ctx, sources s,
                       const strategy::options& opt = {}) {
    // Local reset only: the strategy's hook-install barrier (every rank
    // passes it before any application) orders these writes before the
    // first relax, exactly as in the standalone drivers.
    for (auto& x : dist_.local(ctx.rank())) x = infinity;
    for (auto& x : width_.local(ctx.rank())) x = 0.0;
    for (auto& x : depth_.local(ctx.rank())) x = unreachable_;
    if (g_->owner(s.sssp) == ctx.rank()) dist_[s.sssp] = 0.0;
    if (g_->owner(s.widest) == ctx.rank()) width_[s.widest] = infinity;
    if (g_->owner(s.bfs) == ctx.rank()) depth_[s.bfs] = 0;
    fused_->reset_emission(ctx.rank());
    // Seed the union of the owned sources, deduplicated: one invocation
    // of a shared source vertex generates every member's candidates.
    std::vector<vertex_id> seeds;
    for (const vertex_id v : {s.sssp, s.widest, s.bfs})
      if (g_->owner(v) == ctx.rank() &&
          std::find(seeds.begin(), seeds.end(), v) == seeds.end())
        seeds.push_back(v);
    return strategy::fixed_point(ctx, *fused_, seeds, opt);
  }

  pmap::vertex_property_map<double>& dist() { return dist_; }
  pmap::vertex_property_map<double>& width() { return width_; }
  pmap::vertex_property_map<std::uint64_t>& depth() { return depth_; }
  std::uint64_t unreachable_depth() const { return unreachable_; }

  /// The fused action (plan_info, member names, modification counts, and
  /// the explain_fused rendering).
  auto& action() { return *fused_; }
  const auto& action() const { return *fused_; }
  /// The packed fused wire layout (for explain / tests).
  const ampp::fused_layout& layout() const { return fused_->layout(); }

 private:
  const graph::distributed_graph* g_;
  std::uint64_t unreachable_;
  pmap::vertex_property_map<double> dist_;
  pmap::vertex_property_map<double> width_;
  pmap::vertex_property_map<std::uint64_t> depth_;
  fused_ptr fused_;
};

}  // namespace dpg::algo
