// Concrete solver sessions: the algorithm side of the serving layer's
// uniform session interface (serve/session.hpp).
//
// Each wrapper bundles what used to be assembled by hand at every call
// site — a transport, a solver with its compiled plan and property maps,
// and the strategy/compile options — into one warm object pinned to a
// graph::snapshot_view. Construction is the expensive step (plan
// compilation, full-size maps, a transport's rank states); run()/repair()
// are then pure query execution, which is what makes pooling profitable.
//
// All session transports share one ampp::wire_pool (the process-wide
// envelope pool) while keeping lanes, counters, and termination-detection
// state per-context — the transport carve-up this PR introduces.
#pragma once

#include <memory>
#include <utility>

#include "algo/bfs.hpp"
#include "algo/cc.hpp"
#include "algo/kcore.hpp"
#include "algo/pagerank.hpp"
#include "algo/sssp.hpp"
#include "algo/streaming.hpp"
#include "serve/session.hpp"

namespace dpg::algo {

/// Everything a session factory needs: the shared graph and weights, the
/// split transport knobs (machine topology vs tuning), the shared envelope
/// pool, and the plan/strategy options applied to every session.
struct session_env {
  const graph::distributed_graph* g = nullptr;
  pmap::edge_property_map<double>* weights = nullptr;  ///< sssp only
  ampp::machine_config machine{};
  ampp::tuning_config tuning{};
  std::shared_ptr<ampp::wire_pool> pool;  ///< may be null (per-session pools)
  pattern::compile_options copts{};
  strategy::options sopts{};
};

namespace detail {

/// Shared result assembly: strategy counters + snapshot pin + convergence.
inline serve::session_result make_result(serve::algorithm a,
                                         const graph::snapshot_view& snap,
                                         const strategy::result& res,
                                         const strategy::options& sopts,
                                         bool warm_repair) {
  serve::session_result out;
  out.algo = a;
  out.graph_version = snap.version();
  out.converged = res.rounds < static_cast<std::uint64_t>(sopts.max_rounds);
  out.warm_repair = warm_repair;
  out.rounds = res.rounds;
  out.modifications = res.modifications;
  out.stats_delta = res.stats_delta;
  return out;
}

}  // namespace detail

/// SSSP session: delta > 0 selects Δ-stepping, otherwise the chaotic
/// fixed-point schedule. Values are distance doubles as bit patterns.
/// repair() absorbs one mutation batch warm: pure additions re-relax
/// monotonically from the added edges' sources; any deletion first runs
/// the solver's decremental invalidation (support-closure walk at the
/// boundary) and re-relaxes from the returned frontier plus the addition
/// seeds. Sound only when this session's previous run solved the same
/// params at the batch's base version (checked; falls back to run()).
class sssp_session final : public serve::solver_session {
 public:
  explicit sssp_session(const session_env& env)
      : solver_session(serve::algorithm::sssp, graph::snapshot_view(*env.g)),
        env_(env),
        tp_(env.machine, env.tuning, env.pool),
        solver_(tp_, *env.g, *env.weights, pmap::lock_scheme::per_vertex,
                env.copts) {}

  serve::session_result run(const serve::query_params& p) override {
    snap_.refresh();
    strategy::result res{};
    // Measure the whole quiescent run, not the strategy's inner window: a
    // fault injected inside the strategy can be recovered during epoch
    // teardown, and only the quiescent delta satisfies the conservation
    // laws the sim harness asserts (drops == retries, sent == handled).
    obs::stats_scope sc(tp_.obs());
    tp_.run([&](ampp::transport_context& ctx) {
      const strategy::result r =
          p.delta > 0.0 ? solver_.run_delta(ctx, p.source, p.delta, env_.sopts)
                        : solver_.run_fixed_point(ctx, p.source, env_.sopts);
      if (ctx.rank() == 0) res = r;
    });
    res.stats_delta = sc.finish();
    last_ = p;
    last_version_ = snap_.version();
    has_state_ = true;
    return pack(res, false);
  }

  serve::session_result repair(const serve::query_params& p,
                               const serve::mutation_batch& m) override {
    // Sound only on top of *this* session's state for the same query, and
    // only when that state is exactly at the batch's base version. The
    // batch covers one mutation only: a pooled session whose last run
    // predates an *earlier* mutation would replay the newest edges but
    // never relax the older ones, producing too-large distances stamped
    // with the live version. Any mismatch falls back to a full solve, so a
    // pool can still hand any session to a repair request.
    if (!has_state_ || !(last_ == p) || p.delta > 0.0 ||
        last_version_ != m.base_version)
      return run(p);
    snap_.refresh();
    std::vector<graph::vertex_id> seeds;
    // Deletions invalidate before anything re-relaxes: the support-closure
    // walk is a boundary operation (it predates the collective run below).
    if (!m.removed.empty()) seeds = solver_.invalidate_unsupported();
    for (const graph::edge& e : m.added) seeds.push_back(e.src);
    strategy::result res{};
    obs::stats_scope sc(tp_.obs());
    tp_.run([&](ampp::transport_context& ctx) {
      const strategy::result r = solver_.repair(ctx, seeds, env_.sopts);
      if (ctx.rank() == 0) res = r;
    });
    res.stats_delta = sc.finish();
    last_version_ = snap_.version();
    return pack(res, true);
  }

  const obs::registry& obs() const override { return tp_.obs(); }
  sssp_solver& solver() { return solver_; }

 private:
  serve::session_result pack(const strategy::result& res, bool warm) {
    serve::session_result out =
        detail::make_result(algo(), snap_, res, env_.sopts, warm);
    const graph::vertex_id n = snap_.num_vertices();
    out.values.resize(n);
    auto& d = solver_.dist();
    for (graph::vertex_id v = 0; v < n; ++v)
      out.values[v] = std::bit_cast<std::uint64_t>(d[v]);
    return out;
  }

  session_env env_;
  ampp::transport tp_;
  sssp_solver solver_;
  serve::query_params last_{};
  std::uint64_t last_version_ = 0;
  bool has_state_ = false;
};

/// BFS session: delta > 0 selects the level-synchronous schedule (bucket
/// per level), otherwise chaotic fixed point. Values are depths.
class bfs_session final : public serve::solver_session {
 public:
  explicit bfs_session(const session_env& env)
      : solver_session(serve::algorithm::bfs, graph::snapshot_view(*env.g)),
        env_(env),
        tp_(env.machine, env.tuning, env.pool),
        solver_(tp_, *env.g) {}

  serve::session_result run(const serve::query_params& p) override {
    snap_.refresh();
    strategy::result res{};
    obs::stats_scope sc(tp_.obs());
    tp_.run([&](ampp::transport_context& ctx) {
      const strategy::result r =
          p.delta > 0.0 ? solver_.run_level_sync(ctx, p.source, env_.sopts)
                        : solver_.run_fixed_point(ctx, p.source, env_.sopts);
      if (ctx.rank() == 0) res = r;
    });
    res.stats_delta = sc.finish();
    serve::session_result out =
        detail::make_result(algo(), snap_, res, env_.sopts, false);
    const graph::vertex_id n = snap_.num_vertices();
    out.values.resize(n);
    auto& d = solver_.depth();
    for (graph::vertex_id v = 0; v < n; ++v) out.values[v] = d[v];
    return out;
  }

  const obs::registry& obs() const override { return tp_.obs(); }
  bfs_solver& solver() { return solver_; }

 private:
  session_env env_;
  ampp::transport tp_;
  bfs_solver solver_;
};

/// CC session: whole-graph, so query_params are ignored (every CC query
/// with any params is the same query — the cache key still distinguishes
/// them, which is harmless). Values are *canonical* component labels (the
/// minimum member id), so the cold distributed solve and the warm
/// union-find repair below are bit-identical — the solver's raw labels are
/// schedule-dependent representatives, canonicalized here after solve().
/// repair() rides the cc_maintainer: additions union, deletions recompute
/// only the affected components.
class cc_session final : public serve::solver_session {
 public:
  explicit cc_session(const session_env& env)
      : solver_session(serve::algorithm::cc, graph::snapshot_view(*env.g)),
        g_(env.g),
        solver_(*env.g,
                ampp::transport_config::join(env.machine, env.tuning),
                env.pool, env.copts) {}

  serve::session_result run(const serve::query_params&) override {
    snap_.refresh();
    obs::stats_scope sc(solver_.transport().obs());
    solver_.solve();
    serve::session_result out;
    out.algo = algo();
    out.graph_version = snap_.version();
    out.converged = true;  // solve() runs all three phases to completion
    out.rounds = static_cast<std::uint64_t>(solver_.jump_rounds());
    out.modifications = solver_.searches_seeded();
    out.stats_delta = sc.finish();
    const graph::vertex_id n = snap_.num_vertices();
    out.values.resize(n);
    auto& c = solver_.components();
    // Canonicalize: map every solver label to its class's minimum member.
    std::vector<graph::vertex_id> min_of(n, graph::invalid_vertex);
    for (graph::vertex_id v = 0; v < n; ++v)
      if (v < min_of[c[v]]) min_of[c[v]] = v;
    for (graph::vertex_id v = 0; v < n; ++v) out.values[v] = min_of[c[v]];
    // Sync the ride-along maintainer to the just-solved live topology so a
    // later repair can start from it (sequential O(n+m) — noise next to
    // the distributed solve above).
    if (maint_ == nullptr)
      maint_ = std::make_unique<cc_maintainer>(*g_);
    else
      maint_->rebuild();
    maint_version_ = snap_.version();
    return out;
  }

  serve::session_result repair(const serve::query_params& p,
                               const serve::mutation_batch& m) override {
    if (maint_ == nullptr || maint_version_ != m.base_version) return run(p);
    snap_.refresh();
    maint_->apply(m.added, m.removed);
    maint_version_ = snap_.version();
    serve::session_result out;
    out.algo = algo();
    out.graph_version = snap_.version();
    out.converged = true;
    out.warm_repair = true;
    const graph::vertex_id n = snap_.num_vertices();
    out.values.resize(n);
    for (graph::vertex_id v = 0; v < n; ++v) out.values[v] = maint_->label(v);
    return out;
  }

  const obs::registry& obs() const override { return solver_.transport().obs(); }
  cc_solver& solver() { return solver_; }

 private:
  const graph::distributed_graph* g_;
  cc_solver solver_;
  std::unique_ptr<cc_maintainer> maint_;
  std::uint64_t maint_version_ = 0;
};

/// k-core session: whole-graph (params ignored). Values are coreness.
/// Requires a simple symmetric graph — the domain on which the distributed
/// wave peel, the sequential peel, and the streaming maintainer all agree
/// on standard coreness. repair() rides the kcore_maintainer's
/// peel-frontier re-activation (one structural edge at a time).
class kcore_session final : public serve::solver_session {
 public:
  explicit kcore_session(const session_env& env)
      : solver_session(serve::algorithm::kcore, graph::snapshot_view(*env.g)),
        g_(env.g),
        tp_(env.machine, env.tuning, env.pool),
        solver_(tp_, *env.g) {}

  serve::session_result run(const serve::query_params&) override {
    snap_.refresh();
    obs::stats_scope sc(tp_.obs());
    std::uint64_t degeneracy = 0;
    tp_.run([&](ampp::transport_context& ctx) {
      const std::uint64_t d = solver_.run(ctx);
      if (ctx.rank() == 0) degeneracy = d;
    });
    serve::session_result out;
    out.algo = algo();
    out.graph_version = snap_.version();
    out.converged = true;
    out.rounds = degeneracy;  // the peel loop's outer threshold count
    out.stats_delta = sc.finish();
    const graph::vertex_id n = snap_.num_vertices();
    out.values.resize(n);
    auto& c = solver_.coreness();
    for (graph::vertex_id v = 0; v < n; ++v) out.values[v] = c[v];
    if (maint_ == nullptr)
      maint_ = std::make_unique<kcore_maintainer>(*g_);
    else
      maint_->rebuild();
    maint_version_ = snap_.version();
    return out;
  }

  serve::session_result repair(const serve::query_params& p,
                               const serve::mutation_batch& m) override {
    if (maint_ == nullptr || maint_version_ != m.base_version) return run(p);
    snap_.refresh();
    maint_->apply(m.added, m.removed);
    maint_version_ = snap_.version();
    serve::session_result out;
    out.algo = algo();
    out.graph_version = snap_.version();
    out.converged = true;
    out.warm_repair = true;
    const graph::vertex_id n = snap_.num_vertices();
    out.values.resize(n);
    const auto& c = maint_->cores();
    for (graph::vertex_id v = 0; v < n; ++v) out.values[v] = c[v];
    return out;
  }

  const obs::registry& obs() const override { return tp_.obs(); }
  kcore_solver& solver() { return solver_; }

 private:
  const graph::distributed_graph* g_;
  ampp::transport tp_;
  kcore_solver solver_;
  std::unique_ptr<kcore_maintainer> maint_;
  std::uint64_t maint_version_ = 0;
};

/// PageRank session: power iteration, run/rebind only — rank mass has no
/// incremental repair here, so streaming correctness comes from the base
/// class's repair-as-full-solve fallback. `delta` in (0,1) selects the
/// damping factor (default 0.85); values are rank doubles as bit patterns.
class pagerank_session final : public serve::solver_session {
 public:
  static constexpr int kIterations = 20;

  explicit pagerank_session(const session_env& env)
      : solver_session(serve::algorithm::pagerank, graph::snapshot_view(*env.g)),
        tp_(env.machine, env.tuning, env.pool),
        solver_(tp_, *env.g) {}

  serve::session_result run(const serve::query_params& p) override {
    snap_.refresh();
    const double damping = (p.delta > 0.0 && p.delta < 1.0) ? p.delta : 0.85;
    obs::stats_scope sc(tp_.obs());
    tp_.run([&](ampp::transport_context& ctx) {
      solver_.run(ctx, damping, kIterations);
    });
    serve::session_result out;
    out.algo = algo();
    out.graph_version = snap_.version();
    out.converged = true;  // fixed iteration count, always completes
    out.rounds = kIterations;
    out.stats_delta = sc.finish();
    const graph::vertex_id n = snap_.num_vertices();
    out.values.resize(n);
    auto& r = solver_.ranks();
    for (graph::vertex_id v = 0; v < n; ++v)
      out.values[v] = std::bit_cast<std::uint64_t>(r[v]);
    return out;
  }

  const obs::registry& obs() const override { return tp_.obs(); }
  pagerank_solver& solver() { return solver_; }

 private:
  ampp::transport tp_;
  pagerank_solver solver_;
};

/// The session factory the pool and server construct through. Extend here
/// (and in serve::algorithm + serve::session_pool::kAlgos) to front a new
/// algorithm.
inline std::unique_ptr<serve::solver_session> make_solver_session(
    serve::algorithm a, const session_env& env) {
  switch (a) {
    case serve::algorithm::sssp: return std::make_unique<sssp_session>(env);
    case serve::algorithm::bfs: return std::make_unique<bfs_session>(env);
    case serve::algorithm::cc: return std::make_unique<cc_session>(env);
    case serve::algorithm::kcore: return std::make_unique<kcore_session>(env);
    case serve::algorithm::pagerank:
      return std::make_unique<pagerank_session>(env);
  }
  return nullptr;
}

}  // namespace dpg::algo
