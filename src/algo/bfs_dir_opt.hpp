// Direction-optimizing BFS: one imperative strategy choosing, level by
// level, between two declarative patterns over the same property map —
//
//   push (top-down):  out_edges of the frontier
//       when(depth(trg(e)) > depth(v)+1, assign(depth(trg(e)), depth(v)+1))
//   pull (bottom-up):  in_edges of the undiscovered
//       when(depth(v) > depth(src(e))+1, assign(depth(v), depth(src(e))+1))
//
// This is the paper's separation of concerns at full strength: the
// *what* (two relax-shaped patterns) is declarative and reusable; the
// *when/which* (the Beamer-style direction heuristic, frontier tracking,
// level synchronization) is an ordinary imperative program using epochs,
// work hooks (to harvest the newly discovered frontier), and collectives.
//
// Requires a bidirectional graph (in-edge storage).
#pragma once

#include <memory>
#include <vector>

#include "pattern/action.hpp"
#include "strategy/strategies.hpp"

namespace dpg::algo {

using graph::vertex_id;

class bfs_dir_opt_solver {
 public:
  bfs_dir_opt_solver(ampp::transport& tp, const graph::distributed_graph& g)
      : g_(&g),
        unreachable_(g.num_vertices()),
        depth_(g, unreachable_),
        level_(g, 0),
        locks_(g.dist(), pmap::lock_scheme::per_vertex),
        next_frontier_(tp.size()) {
    DPG_ASSERT_MSG(g.bidirectional(),
                   "direction-optimizing BFS pulls over in_edges; build the "
                   "graph with bidirectional=true");
    using namespace pattern;
    property d(depth_);
    property lvl(level_);
    push_ = instantiate(
        tp, g, locks_,
        make_action("bfs.push", out_edges_gen{},
                    when(d(trg(e_)) > d(v_) + lit<std::uint64_t>(1),
                         assign(d(trg(e_)), d(v_) + lit<std::uint64_t>(1)))));
    // The pull arm is gated on the source sitting at *exactly* the current
    // level (lvl[v] is set to the round number before each epoch). Without
    // the gate, a pull can chain inside one epoch — v pulls from a vertex
    // that was itself just discovered at level+1 and adopts level+2, an
    // overestimate that later pull sweeps (which only visit undiscovered
    // vertices) would never repair. The gate keeps every round level-pure.
    pull_ = instantiate(
        tp, g, locks_,
        make_action("bfs.pull", in_edges_gen{},
                    when(d(v_) > d(src(e_)) + lit<std::uint64_t>(1) &&
                             d(src(e_)) == lvl(v_),
                         assign(d(v_), d(src(e_)) + lit<std::uint64_t>(1)))));
    // Both patterns modify-and-read `depth`, so each successful assignment
    // fires the work hook at the discovered vertex's owner: the strategy
    // harvests it as next level's frontier.
    harvest_ = [this](ampp::transport_context& c, vertex_id dep) {
      next_frontier_[c.rank()].push_back(dep);
    };
  }

  /// Collective. Returns the number of level rounds executed.
  /// `alpha` tunes the switch: pull when the frontier's out-edges exceed
  /// (remaining undiscovered vertices' in-edges)/alpha.
  int run(ampp::transport_context& ctx, vertex_id source, double alpha = 4.0) {
    const ampp::rank_t r = ctx.rank();
    for (auto& x : depth_.local(r)) x = unreachable_;
    std::vector<vertex_id> frontier;
    if (g_->owner(source) == ctx.rank()) {
      depth_[source] = 0;
      frontier.push_back(source);
    }
    next_frontier_[r].clear();
    if (ctx.rank() == 0) modes_.clear();
    strategy::install_hook_collective(ctx, *push_, harvest_);
    strategy::install_hook_collective(ctx, *pull_, harvest_);

    int levels = 0;
    for (;;) {
      // Global decision inputs: frontier out-edge volume and undiscovered
      // in-edge volume.
      std::uint64_t f_edges = 0;
      for (const vertex_id v : frontier) f_edges += g_->out_degree(v);
      std::uint64_t u_edges = 0;
      strategy::for_each_local_vertex(ctx, *g_, [&](vertex_id v) {
        if (depth_[v] == unreachable_) u_edges += g_->in_degree(v);
      });
      const std::uint64_t gf = ctx.allreduce_sum(f_edges);
      const std::uint64_t gu = ctx.allreduce_sum(u_edges);
      if (gf == 0) break;
      const bool pull = static_cast<double>(gf) * alpha > static_cast<double>(gu);
      if (ctx.rank() == 0) modes_.push_back(pull ? 'P' : 'p');
      // Publish the current level for the pull gate (local writes only).
      if (pull)
        for (auto& x : level_.local(r)) x = static_cast<std::uint64_t>(levels);
      ctx.barrier();  // modes_/level bookkeeping precedes any send

      {
        ampp::epoch ep(ctx);
        if (pull) {
          strategy::for_each_local_vertex(ctx, *g_, [&](vertex_id v) {
            if (depth_[v] == unreachable_) (*pull_)(ctx, v);
          });
        } else {
          for (const vertex_id v : frontier) (*push_)(ctx, v);
        }
      }
      frontier = std::move(next_frontier_[r]);
      next_frontier_[r].clear();
      ++levels;
    }
    return levels;
  }

  pmap::vertex_property_map<std::uint64_t>& depth() { return depth_; }
  std::uint64_t unreachable_depth() const { return unreachable_; }
  /// Per-level direction decisions of the last run ('p' push, 'P' pull);
  /// recorded on rank 0.
  const std::vector<char>& modes() const { return modes_; }

 private:
  const graph::distributed_graph* g_;
  std::uint64_t unreachable_;
  pmap::vertex_property_map<std::uint64_t> depth_;
  pmap::vertex_property_map<std::uint64_t> level_;  ///< round number, for the pull gate
  pmap::lock_map locks_;
  std::unique_ptr<pattern::action_instance> push_;
  std::unique_ptr<pattern::action_instance> pull_;
  pattern::action_instance::work_hook harvest_;
  std::vector<std::vector<vertex_id>> next_frontier_;
  std::vector<char> modes_;
};

}  // namespace dpg::algo
