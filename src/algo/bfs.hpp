// Breadth-first search as a pattern: the relax shape of §II-A with unit
// weights and an integer depth map. Demonstrates the paper's reuse story in
// the other direction — the same declarative action runs under fixed_point
// (chaotic) or Δ-stepping with Δ=1 (level-synchronous flavour).
#pragma once

#include <memory>

#include "pattern/action.hpp"
#include "strategy/delta_stepping.hpp"
#include "strategy/strategies.hpp"

namespace dpg::algo {

using graph::vertex_id;

class bfs_solver {
 public:
  /// Depth value for unreachable vertices: num_vertices() (no reachable
  /// vertex can be that deep, and it cannot overflow in depth+1).
  bfs_solver(ampp::transport& tp, const graph::distributed_graph& g)
      : g_(&g),
        unreachable_(g.num_vertices()),
        depth_(g, unreachable_),
        locks_(g.dist(), pmap::lock_scheme::per_vertex) {
    using namespace pattern;
    property d(depth_);
    explore_ = instantiate(
        tp, g, locks_,
        make_action("bfs.explore", out_edges_gen{},
                    when(d(trg(e_)) > d(v_) + lit<std::uint64_t>(1),
                         assign(d(trg(e_)), d(v_) + lit<std::uint64_t>(1)))));
  }

  /// Collective: chaotic fixed-point BFS.
  strategy::result run_fixed_point(ampp::transport_context& ctx, vertex_id source,
                                   const strategy::options& opt = {}) {
    reset(ctx, source);
    std::vector<vertex_id> seeds;
    if (g_->owner(source) == ctx.rank()) seeds.push_back(source);
    return strategy::fixed_point(ctx, *explore_, seeds, opt);
  }

  /// Collective: bucket-per-level schedule (Δ-stepping with Δ = 1), i.e.
  /// a label-setting frontier expansion.
  strategy::result run_level_sync(ampp::transport_context& ctx, vertex_id source,
                                  const strategy::options& opt = {}) {
    // The level-sync driver is one object shared by every rank's thread;
    // cross-process schedules use run_fixed_point (same fixed point).
    DPG_ASSERT_MSG(!ctx.tp().cross_process(),
                   "level-sync BFS shares its driver across ranks; use "
                   "run_fixed_point over a cross-process backend");
    reset(ctx, source);
    if (ctx.rank() == 0)
      delta_ = std::make_unique<strategy::delta_stepping<std::uint64_t>>(
          ctx.tp(), *g_, *explore_, depth_, 1.0);
    ctx.barrier();
    std::vector<vertex_id> seeds;
    if (g_->owner(source) == ctx.rank()) seeds.push_back(source);
    const strategy::result res = delta_->run(ctx, seeds, opt);
    ctx.barrier();
    return res;
  }

  pmap::vertex_property_map<std::uint64_t>& depth() { return depth_; }
  std::uint64_t unreachable_depth() const { return unreachable_; }
  pattern::action_instance& explore() { return *explore_; }

 private:
  void reset(ampp::transport_context& ctx, vertex_id source) {
    for (auto& x : depth_.local(ctx.rank())) x = unreachable_;
    if (g_->owner(source) == ctx.rank()) depth_[source] = 0;
    ctx.barrier();
  }

  const graph::distributed_graph* g_;
  std::uint64_t unreachable_;
  pmap::vertex_property_map<std::uint64_t> depth_;
  pmap::lock_map locks_;
  std::unique_ptr<pattern::action_instance> explore_;
  std::unique_ptr<strategy::delta_stepping<std::uint64_t>> delta_;
};

}  // namespace dpg::algo
