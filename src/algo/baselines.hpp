// Sequential baseline algorithms.
//
// These serve two roles: (a) correctness oracles for the pattern-based
// distributed algorithms, and (b) the single-threaded comparison points in
// the benchmark harness (the paper positions its abstraction against
// hand-written implementations; the sequential versions bound the
// abstraction overhead from below). They run outside transport::run, where
// the owner-access discipline is relaxed, and traverse the same
// distributed_graph + property maps as the distributed runs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/distributed_graph.hpp"
#include "pmap/edge_map.hpp"

namespace dpg::algo {

using graph::distributed_graph;
using graph::vertex_id;

/// Dijkstra with a binary heap; returns dist[] with infinity for
/// unreachable vertices.
std::vector<double> dijkstra(const distributed_graph& g,
                             const pmap::edge_property_map<double>& weight,
                             vertex_id source);

/// Bellman-Ford (label-correcting baseline; also validates graphs whose
/// weight structure Δ-stepping stresses). Returns dist[].
std::vector<double> bellman_ford(const distributed_graph& g,
                                 const pmap::edge_property_map<double>& weight,
                                 vertex_id source);

/// Breadth-first search levels (-1 for unreachable), as int64.
std::vector<std::int64_t> bfs_levels(const distributed_graph& g, vertex_id source);

/// Connected components by union-find over the edge list; labels are the
/// minimum vertex id of each component. The graph is interpreted as
/// undirected (each directed edge connects its endpoints).
std::vector<vertex_id> cc_union_find(const distributed_graph& g);

/// Connected components by sequential label propagation (the algorithm the
/// paper's parallel search is compared to in spirit); same label
/// convention as cc_union_find.
std::vector<vertex_id> cc_label_propagation(const distributed_graph& g);

/// Power-iteration PageRank with uniform teleport; sinks redistribute
/// uniformly. Returns the rank vector after `iterations` rounds.
std::vector<double> pagerank(const distributed_graph& g, double damping,
                             int iterations);

/// k-core decomposition by sequential peeling, mirroring the distributed
/// kcore_solver's wave semantics exactly (a wave of threshold-k removals
/// decrements only still-alive neighbours, residual degrees floor at 0, a
/// vertex removed at threshold k has coreness k-1). Interprets the graph's
/// out-edges as the (symmetric) adjacency, like the solver. Returns the
/// coreness of every vertex.
std::vector<std::uint64_t> kcore_peel(const distributed_graph& g);

/// Counts how many distinct labels a component labelling uses.
std::size_t count_components(const std::vector<vertex_id>& labels);

}  // namespace dpg::algo
