// Connected components by parallel search (§II-B, Fig. 3 of the paper).
//
// Phase 1 — parallel search. Every rank sweeps its local vertices; each
// still-unassigned vertex becomes the root of a new search (pnt[v] = v;
// cc_search(v); epoch_flush()). The declarative search action spreads the
// root label along out-edges; when two searches collide, the invading root
// is recorded in a conflict list at the collision vertex (the `chg`
// recording of the paper, realized as a set-valued modification because our
// planner requires all modifications of one action to share a locality).
//
// Phase 2 — conflict resolution. The recorded collisions induce a graph
// over search roots. The paper resolves root equivalences on "the component
// labels alone" (rewriting "does not require traversing the graph"); we do
// the same: min-label propagation — the same relax-shaped pattern again —
// over the (small) conflict graph computes each root's final label chg[r].
// (Pure min-hooking + pointer jumping alone is not confluent: a root that
// collides with two smaller roots keeps only one link, so the other branch
// would be lost; propagation over the conflict graph is the fixed-point
// closure of exactly those links.)
//
// Phase 3 — rewrite, the paper's cc_jump applied with the `once` strategy
// in a loop (Fig. 3 lines 14–17): pnt[v] jumps to chg[pnt[v]] while that
// is better — a pointer-chase pattern (v → pnt[v] → back to v).
#pragma once

#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "pattern/action.hpp"
#include "strategy/strategies.hpp"

namespace dpg::algo {

using graph::vertex_id;

class cc_solver {
 public:
  /// The input graph should be symmetric (use graph::symmetrize) — the CC
  /// problem is defined on undirected graphs (§II-B). `pool` (optional)
  /// shares an envelope pool across both internal transports — and, under
  /// the serving layer, across every concurrent session context.
  cc_solver(const graph::distributed_graph& g, ampp::transport_config cfg,
            std::shared_ptr<ampp::wire_pool> pool = nullptr,
            pattern::compile_options copts = {})
      : g_(&g),
        cfg_(cfg),
        pool_(std::move(pool)),
        copts_(copts),
        tp_(cfg_, pool_),
        pnt_(g, graph::invalid_vertex),
        conf_(g),
        locks_(g.dist(), pmap::lock_scheme::per_vertex) {
    using namespace pattern;
    property P(pnt_);
    property F(conf_);
    search_ = instantiate(
        tp_, g, locks_,
        make_action(
            "cc.search", out_edges_gen{},
            // Unclaimed neighbour: extend this search's component.
            when(P(trg(e_)) == lit(graph::invalid_vertex), assign(P(trg(e_)), P(v_))),
            // Claimed by another search: record the collision (else-if, so
            // this only fires for a *different* root).
            when(P(trg(e_)) != P(v_),
                 modify(F(trg(e_)),
                        [](std::vector<vertex_id>& roots, vertex_id r) {
                          roots.push_back(r);
                        },
                        P(v_)))),
        copts_);
  }

  /// Runs the full pipeline. `flush_between_seeds` reproduces the
  /// epoch_flush of Fig. 3 line 11 (give running searches a chance to
  /// spread before seeding the next root); disabling it is the Q6 ablation.
  void solve(bool flush_between_seeds = true) {
    run_search_phase(flush_between_seeds);
    const auto pairs = collect_conflict_pairs();
    resolve_and_rewrite(pairs);
  }

  /// Component labels (equal label <=> same component) after solve().
  pmap::vertex_property_map<vertex_id>& components() { return pnt_; }
  const pmap::vertex_property_map<vertex_id>& components() const { return pnt_; }

  // Diagnostics for tests and the benchmark harness.
  std::uint64_t searches_seeded() const { return seeds_; }
  std::uint64_t conflict_pairs() const { return conflicts_; }
  int jump_rounds() const { return jump_rounds_; }
  std::uint64_t search_messages() const { return search_messages_; }
  ampp::transport& transport() { return tp_; }
  const ampp::transport& transport() const { return tp_; }

 private:
  void run_search_phase(bool flush_between_seeds) {
    // Reset state so solve() can be called repeatedly.
    for (ampp::rank_t r = 0; r < tp_.size(); ++r) {
      for (auto& x : pnt_.local(r)) x = graph::invalid_vertex;
      for (auto& s : conf_.local(r)) s.clear();
    }
    seeds_ = 0;
    obs::stats_scope sc(tp_.obs());
    std::atomic<std::uint64_t> seeded{0};
    tp_.run([&](ampp::transport_context& ctx) {
      strategy::install_hook_collective(
          ctx, *search_,
          [this](ampp::transport_context& c, vertex_id dep) { (*search_)(c, dep); });
      ampp::epoch ep(ctx);
      strategy::for_each_local_vertex(ctx, *g_, [&](vertex_id v) {
        if (pnt_[v] == graph::invalid_vertex) {
          pnt_[v] = v;  // new search root
          ++seeded;
          (*search_)(ctx, v);
          // "the system tries to perform as much work as possible ...
          // before starting the next search" (Fig. 3 line 11).
          if (flush_between_seeds) ep.flush();
        }
      });
    });
    seeds_ = seeded.load();
    search_messages_ = sc.finish().core.messages_sent;
  }

  std::vector<graph::edge> collect_conflict_pairs() {
    std::vector<graph::edge> pairs;
    const auto pairs_of = [&](vertex_id v) {
      for (const vertex_id other_root : conf_[v])
        if (pnt_[v] != other_root) pairs.push_back(graph::edge{pnt_[v], other_root});
    };
    if (!tp_.cross_process()) {
      // Every shard lives in this process: read them all directly.
      for (vertex_id v = 0; v < g_->num_vertices(); ++v) pairs_of(v);
      return graph::simplify(graph::symmetrize(pairs));
    }
    // Cross-process only the owned shard is authoritative here; the sibling
    // rank processes hold the rest. Collect owned pairs, allgather the byte
    // images over the wire, and rebuild the global list — simplify sorts,
    // so every process derives the identical conflict graph.
    static_assert(std::is_trivially_copyable_v<graph::edge>);
    const auto& d = g_->dist();
    const ampp::rank_t self = tp_.self_rank();
    const std::uint64_t cnt = d.count(self);
    for (std::uint64_t li = 0; li < cnt; ++li) pairs_of(d.global(self, li));
    std::vector<std::byte> mine(pairs.size() * sizeof(graph::edge));
    if (!mine.empty()) std::memcpy(mine.data(), pairs.data(), mine.size());
    std::vector<graph::edge> all;
    for (const std::vector<std::byte>& blob : tp_.exchange_blobs(mine)) {
      const std::size_t n = blob.size() / sizeof(graph::edge);
      const std::size_t off = all.size();
      all.resize(off + n);
      if (n != 0) std::memcpy(all.data() + off, blob.data(), blob.size());
    }
    return graph::simplify(graph::symmetrize(all));
  }

  void resolve_and_rewrite(const std::vector<graph::edge>& pairs) {
    conflicts_ = pairs.size() / 2;
    using namespace pattern;
    // The conflict graph lives on the same vertex space and distribution,
    // so locality and addressing agree with the data graph's maps.
    graph::distributed_graph cg(g_->num_vertices(), pairs, g_->dist());
    pmap::vertex_property_map<vertex_id> chg(cg, 0);
    for (ampp::rank_t r = 0; r < tp_.size(); ++r) {
      auto span = chg.local(r);
      for (std::size_t li = 0; li < span.size(); ++li) span[li] = chg.global_id(r, li);
    }
    pmap::lock_map cg_locks(cg.dist(), pmap::lock_scheme::per_vertex);

    // A fresh transport for phase 2: its message types depend on the
    // conflict graph, which exists only now. (AM++ registers message types
    // between epochs; our simulator registers them between runs.)
    ampp::transport tp2(cfg_, pool_);
    property C(chg);
    property P(pnt_);
    auto propagate = instantiate(tp2, cg, cg_locks,
                                 make_action("cc.propagate", out_edges_gen{},
                                             when(C(trg(e_)) > C(v_),
                                                  assign(C(trg(e_)), C(v_)))),
                                 copts_);
    auto jump = instantiate(tp2, *g_, locks_,
                            make_action("cc.jump", no_generator{},
                                        when(C(P(v_)) < P(v_), assign(P(v_), C(P(v_))))),
                            copts_);
    std::atomic<int> rounds{0};
    tp2.run([&](ampp::transport_context& ctx) {
      // Min-label propagation over the conflict graph (fixed point).
      std::vector<vertex_id> seeds;
      strategy::for_each_local_vertex(ctx, cg, [&](vertex_id v) {
        if (cg.out_degree(v) > 0) seeds.push_back(v);
      });
      strategy::fixed_point(ctx, *propagate, seeds);
      // Fig. 3 lines 14-17: apply cc_jump with `once` until nothing changes.
      std::vector<vertex_id> mine;
      strategy::for_each_local_vertex(ctx, *g_, [&](vertex_id v) { mine.push_back(v); });
      const strategy::result jr = strategy::once_until_quiet(ctx, *jump, mine);
      if (ctx.rank() == 0) rounds = static_cast<int>(jr.rounds);
    });
    jump_rounds_ = rounds.load();
  }

  const graph::distributed_graph* g_;
  ampp::transport_config cfg_;
  std::shared_ptr<ampp::wire_pool> pool_;
  pattern::compile_options copts_;
  ampp::transport tp_;
  pmap::vertex_property_map<vertex_id> pnt_;
  pmap::vertex_property_map<std::vector<vertex_id>> conf_;
  pmap::lock_map locks_;
  std::unique_ptr<pattern::action_instance> search_;

  std::uint64_t seeds_ = 0;
  std::uint64_t conflicts_ = 0;
  std::uint64_t search_messages_ = 0;
  int jump_rounds_ = 0;
};

}  // namespace dpg::algo
