// Distributed greedy graph coloring, Jones–Plassmann style: in each round,
// the uncolored vertices whose random priority is a strict minimum among
// their uncolored neighbours form an independent set and take the round
// number as their color. Reuses the MIS priority-broadcast pattern shape —
// the paper's reuse story across *algorithms*, not just schedules.
//
// Requires a symmetric graph. Produces a proper coloring whose color count
// equals the number of rounds (expected O(log n / log log n)-ish on
// bounded-degree graphs; tests assert propriety and round bounds).
#pragma once

#include <cstdint>
#include <memory>

#include "pattern/action.hpp"
#include "strategy/strategies.hpp"
#include "util/rng.hpp"

namespace dpg::algo {

using graph::vertex_id;

class coloring_solver {
 public:
  static constexpr std::uint64_t uncolored = ~0ULL;

  coloring_solver(ampp::transport& tp, const graph::distributed_graph& g)
      : g_(&g),
        color_(g, uncolored),
        prio_(g, 0),
        min_nbr_(g, ~0ULL),
        locks_(g.dist(), pmap::lock_scheme::per_vertex) {
    using namespace pattern;
    property C(color_);
    property P(prio_);
    property M(min_nbr_);
    // An uncolored vertex pushes its priority to uncolored neighbours
    // (min-combined at the target, synchronized by the lock map).
    push_prio_ = instantiate(
        tp, g, locks_,
        make_action("color.push_prio", out_edges_gen{},
                    when(C(v_) == lit(uncolored) && C(trg(e_)) == lit(uncolored) &&
                             trg(e_) != src(e_) && M(trg(e_)) > P(v_),
                         assign(M(trg(e_)), P(v_)))));
  }

  /// Collective: colors every vertex; returns the number of colors used.
  std::uint64_t run(ampp::transport_context& ctx, std::uint64_t seed = 0xc0105) {
    const ampp::rank_t r = ctx.rank();
    for (auto& c : color_.local(r)) c = uncolored;
    ctx.barrier();

    std::uint64_t round = 0;
    for (;;) {
      // Fresh priorities for the still-uncolored; reset neighbour minima.
      {
        auto colors = color_.local(r);
        auto prios = prio_.local(r);
        auto minn = min_nbr_.local(r);
        for (std::size_t li = 0; li < colors.size(); ++li) {
          minn[li] = ~0ULL;
          if (colors[li] == uncolored)
            prios[li] = splitmix64(seed ^ (round * 0x9e3779b97f4a7c15ULL) ^
                                   prio_.global_id(r, li))
                            .next();
        }
      }
      bool any_uncolored = false;
      {
        ampp::epoch ep(ctx);
        strategy::for_each_local_vertex(ctx, *g_, [&](vertex_id v) {
          if (color_[v] == uncolored) {
            any_uncolored = true;
            (*push_prio_)(ctx, v);
          }
        });
      }
      if (!ctx.allreduce_or(any_uncolored)) break;

      // Local winners take this round's color.
      {
        auto colors = color_.local(r);
        auto prios = prio_.local(r);
        auto minn = min_nbr_.local(r);
        for (std::size_t li = 0; li < colors.size(); ++li)
          if (colors[li] == uncolored && prios[li] < minn[li]) colors[li] = round;
      }
      ctx.barrier();
      ++round;
    }
    return round;  // colors used: 0 .. round-1
  }

  pmap::vertex_property_map<std::uint64_t>& colors() { return color_; }

 private:
  const graph::distributed_graph* g_;
  pmap::vertex_property_map<std::uint64_t> color_;
  pmap::vertex_property_map<std::uint64_t> prio_;
  pmap::vertex_property_map<std::uint64_t> min_nbr_;
  pmap::lock_map locks_;
  std::unique_ptr<pattern::action_instance> push_prio_;
};

}  // namespace dpg::algo
