// Umbrella header: the full public API of the dpg library.
//
// dpg reproduces "Declarative Patterns for Imperative Distributed Graph
// Algorithms" (Zalewski, Edmonds, Lumsdaine; IPDPS Workshops 2015).
// See README.md for orientation, docs/pattern-language.md for the DSL
// reference, and docs/runtime.md for the execution model.
#pragma once

#define DPG_VERSION_MAJOR 1
#define DPG_VERSION_MINOR 0
#define DPG_VERSION_PATCH 0
#define DPG_VERSION_STRING "1.0.0"

// Observability: counter registry, stats scopes, span tracing.
#include "obs/obs.hpp"

// Active-message runtime (simulated distributed machine).
#include "ampp/epoch.hpp"
#include "ampp/stats.hpp"
#include "ampp/transport.hpp"
#include "ampp/types.hpp"

// Distributed graph substrate.
#include "graph/distributed_graph.hpp"
#include "graph/distribution.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "graph/io.hpp"
#include "graph/snapshot.hpp"

// Property maps and the lock map.
#include "pmap/edge_map.hpp"
#include "pmap/lock_map.hpp"
#include "pmap/vertex_map.hpp"

// The pattern language: EDSL, planner, actions, textual front-end.
#include "pattern/action.hpp"
#include "pattern/expr.hpp"
#include "pattern/parse.hpp"
#include "pattern/pattern.hpp"
#include "pattern/planner.hpp"

// Strategies.
#include "strategy/buckets.hpp"
#include "strategy/delta_stepping.hpp"
#include "strategy/strategies.hpp"

// Algorithms and baselines.
#include "algo/baselines.hpp"
#include "algo/betweenness.hpp"
#include "algo/bfs.hpp"
#include "algo/bfs_dir_opt.hpp"
#include "algo/cc.hpp"
#include "algo/coloring.hpp"
#include "algo/kcore.hpp"
#include "algo/mis.hpp"
#include "algo/pagerank.hpp"
#include "algo/sssp.hpp"
#include "algo/sssp_tree.hpp"
#include "algo/streaming.hpp"
#include "algo/widest_path.hpp"

// Serving layer: warm solver sessions, result cache, multi-tenant front end.
#include "algo/sessions.hpp"
#include "serve/cache.hpp"
#include "serve/pool.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
