// Multi-pattern fusion (§II-A relax shapes, N at a time): run several
// analytics in one traversal wave with a fused wire format.
//
// `pattern::fuse(tp, g, opts, defs...)` takes N single-when action
// definitions over the same graph whose generator/locality shape matches
// (each compiles to the single-locality fast record — see
// detail::fast_shape) and synthesizes ONE fused message family for the
// group:
//
//   * the shared addressing field (the target vertex every member routes
//     by) travels once per record;
//   * each member contributes one 8-byte live slot, concatenated after
//     the addressing prefix (ampp::fused_wire owns the layout math);
//   * one coalesced envelope stream drives all member commits per
//     delivery, so N analytics pay one fixed point — one epoch loop, one
//     termination detection — instead of N.
//
// Exactness. Every member is a monotone compare-and-update relaxation
// (min or max) whose proposed value is computed from the member's own
// state at the invocation vertex. Its final map is therefore the unique
// closure of the initial state under improving updates along edges — the
// pointwise best over deterministic per-path folds — regardless of
// delivery order, duplication, or which sibling's progress triggered a
// re-generation. Candidates generated from a member's unreached state
// self-reject at the target (they never improve anything), so the fused
// fixed point converges to maps bit-identical to N separate solves. The
// fusion sweep in tests/sim asserts exactly that under every fault plan.
//
// Group dispatch. A work-hook re-invocation regenerates candidates for
// the members whose invocation-vertex state actually changed since the
// last emission (per-member change tracking below); members that would
// only repeat an earlier emission are skipped. A wave that wakes several
// members ships one fused record (idle slots carry a self-rejecting
// sentinel); a wave that wakes exactly one member ships that member's
// 16-byte solo record on a per-member solo lane, so single-member tails
// never pay the widened record. The SIMD batch path keeps working on
// both: fused envelopes dispatch per-member sub-batches (strided column
// extraction, then the same filter kernels), solo envelopes reuse the
// 16-byte deinterleave kernel unchanged.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "ampp/fused_wire.hpp"
#include "pattern/action.hpp"

namespace dpg::pattern {

namespace detail {

/// Compile-time: is an expression's value fully determined by (a) the
/// generator header (v, the generated edge) plus (b) vertex-map reads
/// indexed by v itself and (c) edge-map reads? Exactly those reads are
/// captured by the per-member change tracking (the v-indexed reads are
/// the hoisted slots; edge maps are constant per edge within a fixed
/// point), so a member whose value expression satisfies this trait may
/// safely skip re-emission when its tracked state is unchanged. Anything
/// else (e.g. a vertex-map read indexed by src(e_), which the hoister
/// leaves as a direct per-edge access) keeps the member on the
/// always-emit path — correct, just without the redundancy savings.
template <class E>
struct skip_safe : std::false_type {};

template <> struct skip_safe<v_expr> : std::true_type {};
template <> struct skip_safe<e_expr> : std::true_type {};
template <> struct skip_safe<u_expr> : std::true_type {};
template <class X> struct skip_safe<src_expr<X>> : skip_safe<X> {};
template <class X> struct skip_safe<trg_expr<X>> : skip_safe<X> {};
template <class T> struct skip_safe<lit_expr<T>> : std::true_type {};
template <class Op, class L, class R>
struct skip_safe<bin_expr<Op, L, R>>
    : std::bool_constant<skip_safe<L>::value && skip_safe<R>::value> {};
template <class X>
struct skip_safe<un_expr<op_not, X>> : skip_safe<X> {};
template <class PM, class Idx>
struct skip_safe<read_expr<PM, Idx>>
    : std::bool_constant<is_edge_map<PM> ? skip_safe<Idx>::value
                                         : std::is_same_v<Idx, v_expr>> {};

/// The self-rejecting idle-slot value for a member's comparator: a
/// min-update never applies the type's maximum, a max-update never
/// applies its lowest. cmp(cur, sentinel) is false for every cur
/// (including cur == sentinel and, for floats, cur == NaN — the
/// comparisons are IEEE-ordered).
template <class Shape>
constexpr std::uint64_t sentinel_bits() {
  using VT = typename Shape::value_type;
  static_assert(sizeof(VT) == 8);
  if constexpr (std::is_floating_point_v<VT>) {
    return std::bit_cast<std::uint64_t>(Shape::min_update
                                            ? std::numeric_limits<VT>::infinity()
                                            : -std::numeric_limits<VT>::infinity());
  } else {
    return std::bit_cast<std::uint64_t>(Shape::min_update
                                            ? std::numeric_limits<VT>::max()
                                            : std::numeric_limits<VT>::lowest());
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Fused action
// ---------------------------------------------------------------------------

/// N fast-shape members fused into one action instance: one invocation
/// generates every member's candidates, one message family carries them,
/// one work hook drives the shared fixed point. Members must share the
/// generator type and the target index expression (the shared addressing
/// field), and every member value must be 8 bytes (the atomic fast-path
/// currency).
template <class Gen, class... Whens>
class fused_action final : public action_instance {
 public:
  static constexpr std::size_t kMembers = sizeof...(Whens);
  static_assert(kMembers >= 2, "fusing fewer than two patterns is a no-op");

  template <std::size_t I>
  using when_t = std::tuple_element_t<I, std::tuple<Whens...>>;
  template <std::size_t I>
  using shape_t = detail::fast_shape<when_t<I>, Gen>;

  static_assert((detail::fast_shape<Whens, Gen>::value && ...),
                "every fused member must compile to the single-locality fast "
                "shape (one when, compare-and-update, value computable at the "
                "invocation site)");
  static_assert((std::is_same_v<typename detail::fast_shape<Whens, Gen>::idx_expr,
                                typename shape_t<0>::idx_expr> &&
                 ...),
                "fused members must share one target index expression — that "
                "is the shared addressing field");
  static_assert(home_of<typename shape_t<0>::idx_expr, Gen>::kind ==
                    home_kind::at_gen,
                "fused targets must be generator-homed (a v-homed target is a "
                "local apply with no wire to fuse)");
  static_assert(((sizeof(typename detail::fast_shape<Whens, Gen>::value_type) ==
                  8) &&
                 ...),
                "fused live slots are 8 bytes per member");

  /// The fused record: shared addressing prefix + one live slot per
  /// member (value bit patterns; idle slots carry the member sentinel).
  struct fused_rec {
    graph::vertex_id loc = graph::invalid_vertex;
    std::array<std::uint64_t, kMembers> val{};
  };
  static_assert(std::is_trivially_copyable_v<fused_rec>);
  static_assert(sizeof(fused_rec) == sizeof(graph::vertex_id) + kMembers * 8);

  fused_action(ampp::transport& tp, const graph::distributed_graph& g,
               std::tuple<action_def<Gen, Whens>...> defs,
               compile_options opts = {})
      : tp_(&tp), g_(&g) {
    invocations_ = std::vector<padded_counter>(tp.size());
    mods_ = std::vector<padded_counter>(tp.size());
    build(defs, opts);
    register_messages();
  }

  void operator()(ampp::transport_context& ctx, graph::vertex_id v) override {
    DPG_ASSERT_MSG(g_->owner(v) == ctx.rank(), "action invoked off the owner of v");
    invocations_[ctx.rank()].n.fetch_add(1, std::memory_order_relaxed);
    generate(ctx, v, std::index_sequence_for<Whens...>{});
  }

  /// Resets the calling rank's per-member emission tracking. Collective
  /// with the rest of a run's reset: call once per rank before each fixed
  /// point (the drivers in src/algo do), so candidates re-emit from the
  /// fresh initial state and the tracking arrays match the current shard
  /// sizes (graph mutation grows shards between runs).
  void reset_emission(ampp::rank_t r) {
    [&]<std::size_t... I>(std::index_sequence<I...>) {
      ((reset_member_emission<I>(r)), ...);
    }(std::index_sequence_for<Whens...>{});
  }

  /// The packed fused wire layout (shared addressing + per-member slots).
  const ampp::fused_layout& layout() const { return layout_; }
  /// Member action names, in slot order.
  const std::vector<std::string>& member_names() const { return member_names_; }

 private:
  /// Per-member compiled state. When is the member's single when-clause;
  /// everything here mirrors one instantiated_action's fast path.
  template <class When>
  struct member {
    using shape = detail::fast_shape<When, Gen>;
    using value_type = typename shape::value_type;
    /// The member's own 16-byte fast record, used on its solo lane when a
    /// wave wakes only this member.
    struct solo_rec {
      graph::vertex_id loc = graph::invalid_vertex;
      value_type val{};
    };
    static_assert(std::is_trivially_copyable_v<solo_rec>);
    using idx_fn_t = decltype(plan_builder<Gen>::compile_direct(
        std::declval<const typename shape::idx_expr&>()));
    using val_fn_t = decltype(plan_builder<Gen>::compile_direct_hoisted(
        std::declval<const typename shape::val_expr&>(),
        std::declval<hoisted_reads&>()));

    std::string name;
    typename shape::pm_type* pm = nullptr;
    std::optional<idx_fn_t> idx;
    std::optional<val_fn_t> val;
    hoisted_reads hoists;
    bool dep = false;         ///< firing creates work (§IV-C)
    bool skip_safe = false;   ///< change tracking captures the whole value input
    std::size_t words = 0;    ///< tracked hoist-arena words per vertex
    ampp::message_type<solo_rec>* solo_msg = nullptr;
    std::string solo_batch_label;
    /// Last-emitted hoist state per rank, shard-parallel: `last[r]` holds
    /// `words` u64 words per local vertex, `seen[r]` one emitted-once
    /// flag. Accessed through atomic_ref (handler threads of one rank may
    /// race on a vertex); the seen flag is store-release / load-acquire so
    /// an observed flag implies an observed (and therefore emitted) state.
    std::vector<std::vector<std::uint64_t>> last;
    std::vector<std::vector<std::uint8_t>> seen;
  };

  template <std::size_t I>
  using member_t = member<when_t<I>>;

  // ---- plan construction --------------------------------------------------

  void build(std::tuple<action_def<Gen, Whens>...>& defs, compile_options opts) {
    [&]<std::size_t... I>(std::index_sequence<I...>) {
      ((build_member<I>(std::get<I>(defs))), ...);
    }(std::index_sequence_for<Whens...>{});

    name_ = member_names_[0];
    for (std::size_t i = 1; i < member_names_.size(); ++i)
      name_ += "+" + member_names_[i];

    // The fused family is itself the fast path; the fast_path /
    // compact_wire toggles have no general plan to fall back to here, so
    // only the batch / reduction toggles (and their environment escape
    // hatches) apply.
    use_batch_ = detail::resolve_toggle(static_cast<int>(opts.batch_kernel),
                                        "DPG_PATTERN_BATCH");
    use_reduce_ = detail::resolve_toggle(static_cast<int>(opts.fast_reduction),
                                         "DPG_PATTERN_REDUCE");
    simd_level_ = opts.simd_level;

    std::vector<ampp::fused_slot> slots;
    [&]<std::size_t... I>(std::index_sequence<I...>) {
      ((slots.push_back(ampp::fused_slot{
           .member = std::get<I>(members_).name,
           .offset = 0,
           .bytes = sizeof(typename shape_t<I>::value_type),
           .solo_bytes = sizeof(typename member_t<I>::solo_rec),
           .update = update_kind<I>()})),
       ...);
    }(std::index_sequence_for<Whens...>{});
    layout_ = ampp::pack_fused_layout(sizeof(graph::vertex_id), std::move(slots));

    plan_.gather_hops = 1;
    plan_.final_merged = false;
    plan_.atomic_path = true;
    plan_.conditions = static_cast<int>(kMembers);
    plan_.fast_path = true;
    plan_.batch_kernel = use_batch_;
    plan_.fast_reduction = use_reduce_;
    plan_.hop_localities = {"v"};
    plan_.hop_reads = {0};
    plan_.final_locality = "trg(e)";
    plan_.wire_bytes.push_back(sizeof(fused_rec));
    [&]<std::size_t... I>(std::index_sequence<I...>) {
      ((plan_.wire_bytes.push_back(sizeof(typename member_t<I>::solo_rec))), ...);
      plan_.has_dependencies = (std::get<I>(members_).dep || ...);
    }(std::index_sequence_for<Whens...>{});
  }

  template <std::size_t I>
  void build_member(action_def<Gen, when_t<I>>& def) {
    auto& m = std::get<I>(members_);
    auto& a0 = std::get<0>(std::get<0>(def.whens).mods);
    m.name = def.name;
    member_names_.push_back(def.name);
    m.pm = a0.target.pm;
    m.idx.emplace(plan_builder<Gen>::compile_direct(a0.target.idx));
    m.val.emplace(plan_builder<Gen>::compile_direct_hoisted(a0.value, m.hoists));
    m.words = (m.hoists.arena_used + 7) / 8;
    m.skip_safe = detail::skip_safe<typename shape_t<I>::val_expr>::value;
    // Dependency probe (§IV-C): compiling the full when registers every
    // read; the member makes work iff its condition or value reads the
    // map it writes. (Always true for fast shapes — the condition reads
    // the target — but derive it rather than assume it.)
    {
      plan_builder<Gen> pb;
      detail::compile_ctx cx;
      (void)detail::compile_one_when(pb, cx, std::get<0>(def.whens));
      m.dep = pb.reads_pmap(a0.target.pm);
    }
    m.last.resize(tp_->size());
    m.seen.resize(tp_->size());
    for (ampp::rank_t r = 0; r < tp_->size(); ++r) reset_member_emission<I>(r);
  }

  template <std::size_t I>
  void reset_member_emission(ampp::rank_t r) {
    auto& m = std::get<I>(members_);
    const std::size_t nloc = m.pm->local(r).size();
    m.last[r].assign(nloc * m.words, 0);
    m.seen[r].assign(nloc, 0);
  }

  template <std::size_t I>
  std::string update_kind() const {
    using VT = typename shape_t<I>::value_type;
    std::string kind = std::is_floating_point_v<VT> ? "f64"
                       : std::is_signed_v<VT>       ? "i64"
                                                    : "u64";
    return kind + (shape_t<I>::min_update ? " min-update" : " max-update");
  }

  // ---- message registration -----------------------------------------------

  void register_messages() {
    const auto* g = g_;
    fused_label_ = name_ + ".fused";
    fused_batch_label_ = name_ + ".fused.batch";
    fused_msg_ = &tp_->make_message_type<fused_rec>(
        fused_label_,
        [this](ampp::transport_context& ctx, const fused_rec& r) {
          fused_handle(ctx, r);
        },
        [g](const fused_rec& r) { return g->owner(r.loc); });
    if (use_batch_)
      fused_msg_->set_batch_handler(
          [this](ampp::transport_context& ctx, const std::byte* data,
                 std::uint32_t n) { fused_batch_handle(ctx, data, n); });
    // Sender-side combining, elementwise: two same-target fused records
    // merge slot by slot under each member's own comparator (sentinels
    // never win), so candidates from different waves coalesce into one
    // record even when different members produced them.
    if (use_reduce_)
      fused_msg_->enable_reduction(
          [](const fused_rec& r) { return static_cast<std::uint64_t>(r.loc); },
          [](const fused_rec& a, const fused_rec& b) {
            fused_rec out;
            out.loc = a.loc;
            [&]<std::size_t... I>(std::index_sequence<I...>) {
              ((out.val[I] = better_bits<I>(a.val[I], b.val[I])), ...);
            }(std::index_sequence_for<Whens...>{});
            return out;
          });
    [&]<std::size_t... I>(std::index_sequence<I...>) {
      ((register_solo<I>()), ...);
    }(std::index_sequence_for<Whens...>{});
  }

  template <std::size_t I>
  void register_solo() {
    using M = member_t<I>;
    using solo_rec = typename M::solo_rec;
    auto& m = std::get<I>(members_);
    const auto* g = g_;
    m.solo_batch_label = m.name + ".solo.batch";
    m.solo_msg = &tp_->make_message_type<solo_rec>(
        m.name + ".solo",
        [this](ampp::transport_context& ctx, const solo_rec& r) {
          solo_handle<I>(ctx, r);
        },
        [g](const solo_rec& r) { return g->owner(r.loc); });
    if (use_batch_)
      m.solo_msg->set_batch_handler(
          [this](ampp::transport_context& ctx, const std::byte* data,
                 std::uint32_t n) { solo_batch_handle<I>(ctx, data, n); });
    if (use_reduce_)
      m.solo_msg->enable_reduction(
          [](const solo_rec& r) { return static_cast<std::uint64_t>(r.loc); },
          [](const solo_rec& a, const solo_rec& b) {
            const std::uint64_t best =
                better_bits<I>(std::bit_cast<std::uint64_t>(a.val),
                               std::bit_cast<std::uint64_t>(b.val));
            solo_rec out = a;
            out.val = std::bit_cast<typename M::value_type>(best);
            return out;
          });
  }

  /// The better of two member-I value bit patterns under the member's
  /// comparator; NaN (and the idle-slot sentinel) never wins.
  template <std::size_t I>
  static std::uint64_t better_bits(std::uint64_t ab, std::uint64_t bb) {
    using VT = typename shape_t<I>::value_type;
    const VT a = std::bit_cast<VT>(ab);
    const VT b = std::bit_cast<VT>(bb);
    bool b_wins;
    if constexpr (shape_t<I>::min_update)
      b_wins = b < a;
    else
      b_wins = a < b;
    if constexpr (std::is_floating_point_v<VT>) {
      if (b != b) b_wins = false;
      else if (a != a) b_wins = true;
    }
    return b_wins ? bb : ab;
  }

  // ---- generation ----------------------------------------------------------

  template <std::size_t... I>
  void generate(ampp::transport_context& ctx, graph::vertex_id v,
                std::index_sequence<I...>) {
    std::array<gather_state, kMembers> gs;
    const std::uint64_t li = g_->dist().local_index(v);
    std::uint32_t active = 0;
    ((active |= prepare_member<I>(ctx.rank(), v, li, gs[I]) ? (1u << I) : 0u), ...);
    if (active == 0) return;  // every member would repeat its last emission
    const bool multi = (active & (active - 1)) != 0;
    const auto emit = [&](const graph::edge_handle& e) {
      ((gs[I].e = e), ...);
      if (multi) {
        emit_fused(ctx, gs, active, std::index_sequence<I...>{});
      } else {
        const auto one = [&](auto ic) {
          constexpr std::size_t J = decltype(ic)::value;
          if ((active >> J) & 1u) emit_solo<J>(ctx, gs[J]);
        };
        (one(std::integral_constant<std::size_t, I>{}), ...);
      }
    };
    // Like the single-pattern fast path, iterate the graph's live ranges
    // (base CSR + delta overlay): fused plans are mutation-oblivious too.
    if constexpr (std::is_same_v<Gen, out_edges_gen>) {
      for (const graph::edge_handle e : g_->out_edges(v)) emit(e);
    } else {
      static_assert(std::is_same_v<Gen, in_edges_gen>,
                    "fusion supports the edge generators (out/in): the fused "
                    "record's shared addressing is the generated edge endpoint");
      for (const graph::edge_handle e : g_->in_edges(v)) emit(e);
    }
  }

  /// Loads member I's hoisted v-state into `s` and decides whether the
  /// member emits this wave: yes on first invocation of v or when the
  /// tracked state changed since the member's last emission at v (a
  /// repeat emission is always redundant — identical candidates were
  /// already delivered). Members whose value expression the tracking
  /// cannot fully capture (skip_safe false) always emit.
  template <std::size_t I>
  bool prepare_member(ampp::rank_t rank, graph::vertex_id v, std::uint64_t li,
                      gather_state& s) {
    auto& m = std::get<I>(members_);
    s.v = v;
    m.hoists.run(s);
    if (!m.skip_safe) return true;
    auto& seen = m.seen[rank];
    auto& last = m.last[rank];
    DPG_DEBUG_ASSERT(li < seen.size());
    const std::size_t base = static_cast<std::size_t>(li) * m.words;
    bool changed =
        std::atomic_ref<std::uint8_t>(seen[li]).load(std::memory_order_acquire) == 0;
    if (!changed) {
      for (std::size_t w = 0; w < m.words; ++w) {
        std::uint64_t cur;
        std::memcpy(&cur, s.arena + w * 8, 8);
        if (std::atomic_ref<std::uint64_t>(last[base + w])
                .load(std::memory_order_relaxed) != cur) {
          changed = true;
          break;
        }
      }
    }
    if (changed) {
      // Store state, then publish the flag (release): any thread that
      // observes the flag and a matching state knows some thread stored —
      // and therefore emitted — exactly that state. Racing writers can
      // only cause spurious re-emission (harmless: redundant monotone
      // candidates), never a skipped one.
      for (std::size_t w = 0; w < m.words; ++w) {
        std::uint64_t cur;
        std::memcpy(&cur, s.arena + w * 8, 8);
        std::atomic_ref<std::uint64_t>(last[base + w])
            .store(cur, std::memory_order_relaxed);
      }
      std::atomic_ref<std::uint8_t>(seen[li]).store(1, std::memory_order_release);
    }
    return changed;
  }

  template <std::size_t... I>
  void emit_fused(ampp::transport_context& ctx,
                  const std::array<gather_state, kMembers>& gs, std::uint32_t active,
                  std::index_sequence<I...>) {
    fused_rec r;
    r.loc = (*std::get<0>(members_).idx)(gs[0]);
    ((r.val[I] =
          (active >> I) & 1u
              ? std::bit_cast<std::uint64_t>(
                    static_cast<typename shape_t<I>::value_type>(
                        (*std::get<I>(members_).val)(gs[I])))
              : detail::sentinel_bits<shape_t<I>>()),
     ...);
    fused_msg_->send(ctx, g_->owner(r.loc), r);
  }

  template <std::size_t I>
  void emit_solo(ampp::transport_context& ctx, const gather_state& s) {
    auto& m = std::get<I>(members_);
    typename member_t<I>::solo_rec r;
    r.loc = (*m.idx)(s);
    r.val = static_cast<typename shape_t<I>::value_type>((*m.val)(s));
    m.solo_msg->send(ctx, g_->owner(r.loc), r);
  }

  // ---- delivery ------------------------------------------------------------

  /// Commit one member-I candidate: CAS under the member's comparator +
  /// modification accounting. Returns whether the apply should make work.
  template <std::size_t I>
  bool commit_slot(ampp::transport_context& ctx,
                   typename shape_t<I>::value_type& slot,
                   typename shape_t<I>::value_type prop) {
    const bool applied = pmap::atomic_update_if(
        slot, prop,
        [](const auto& cur, const auto& p) { return shape_t<I>::cmp(cur, p); });
    if (!applied) return false;
    mods_[ctx.rank()].n.fetch_add(1, std::memory_order_relaxed);
    return std::get<I>(members_).dep;
  }

  template <std::size_t I>
  bool commit_member(ampp::transport_context& ctx, graph::vertex_id loc,
                     std::uint64_t bits) {
    using VT = typename shape_t<I>::value_type;
    auto& m = std::get<I>(members_);
    return commit_slot<I>(ctx, (*m.pm)[loc], std::bit_cast<VT>(bits));
  }

  void fused_handle(ampp::transport_context& ctx, const fused_rec& r) {
    obs::trace_span sp(&tp_->obs().trace(), "plan", fused_label_.c_str(), ctx.rank());
    bool fire = false;
    [&]<std::size_t... I>(std::index_sequence<I...>) {
      ((fire = commit_member<I>(ctx, r.loc, r.val[I]) || fire), ...);
    }(std::index_sequence_for<Whens...>{});
    // One hook per delivered record, however many members it advanced:
    // the re-generation it triggers serves every member at once.
    if (fire && hook_) hook_(ctx, r.loc);
  }

  template <std::size_t I>
  void solo_handle(ampp::transport_context& ctx,
                   const typename member_t<I>::solo_rec& r) {
    if (commit_member<I>(ctx, r.loc, std::bit_cast<std::uint64_t>(r.val)) && hook_)
      hook_(ctx, r.loc);
  }

  // ---- batch dispatch ------------------------------------------------------

  /// Per-thread SoA scratch shared by the fused and solo batch kernels
  /// (same discipline as the single-pattern path: thread_local so
  /// concurrent transports never share, busy flag downgrades re-entrant
  /// dispatch to per-record).
  struct batch_scratch {
    std::vector<std::uint64_t> loc, val, cur;
    std::vector<std::uint8_t> mask, fire;
    bool busy = false;
    void resize(std::size_t n) {
      loc.resize(n);
      val.resize(n);
      cur.resize(n);
      mask.resize(n);
      fire.resize(n);
    }
  };
  static batch_scratch& scratch() {
    thread_local batch_scratch s;
    return s;
  }

  const simd::kernel_table& kernels() const {
    const simd::level lvl = simd_level_ >= 0 ? static_cast<simd::level>(simd_level_)
                                             : simd::active();
    return simd::kernels(lvl);
  }

  /// Member-I column filter over SoA scratch (values and current-state
  /// snapshots as bit patterns). Returns survivors in sc.mask.
  template <std::size_t I>
  std::size_t filter_member(const simd::kernel_table& kt, batch_scratch& sc,
                            std::uint32_t n) {
    using VT = typename shape_t<I>::value_type;
    if constexpr (std::is_same_v<VT, double>) {
      return shape_t<I>::min_update
                 ? kt.filter_lt_f64(sc.val.data(), sc.cur.data(), n, sc.mask.data())
                 : kt.filter_gt_f64(sc.val.data(), sc.cur.data(), n, sc.mask.data());
    } else if constexpr (std::is_integral_v<VT> && std::is_unsigned_v<VT>) {
      return shape_t<I>::min_update
                 ? kt.filter_lt_u64(sc.val.data(), sc.cur.data(), n, sc.mask.data())
                 : kt.filter_gt_u64(sc.val.data(), sc.cur.data(), n, sc.mask.data());
    } else {
      // Signed 64-bit: no vector filter in the table — scalar pre-filter
      // with the same stable-predicate semantics.
      std::size_t hits = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        const VT cur = std::bit_cast<VT>(sc.cur[i]);
        const VT prop = std::bit_cast<VT>(sc.val[i]);
        sc.mask[i] = shape_t<I>::cmp(cur, prop) ? 1 : 0;
        hits += sc.mask[i];
      }
      return hits;
    }
  }

  /// Whole-envelope dispatch for the fused family: per-member sub-batch
  /// kernels. The loc column is extracted once; each member's live slots
  /// are gathered by stride into the same contiguous scratch the 16-byte
  /// kernels use, so the existing filter tiers run unmodified. Exact for
  /// the same reason the single-pattern batch kernel is: each member's
  /// slot moves monotonically, so a candidate rejected against a stale
  /// snapshot also loses every later CAS, and survivors re-validate in
  /// the commit. Hooks fire once per record that advanced any member,
  /// after all member columns committed — same count as the per-record
  /// handler, deferred to the envelope tail.
  void fused_batch_handle(ampp::transport_context& ctx, const std::byte* data,
                          std::uint32_t n) {
    if (n == 0) return;
    obs::trace_span sp(&tp_->obs().trace(), "plan", fused_batch_label_.c_str(),
                       ctx.rank());
    auto& core = tp_->obs().core();
    core.batch_kernels_run.fetch_add(1, std::memory_order_relaxed);
    core.batch_records.fetch_add(n, std::memory_order_relaxed);
    batch_scratch& sc = scratch();
    if (sc.busy) {
      for (std::uint32_t i = 0; i < n; ++i) {
        fused_rec r;
        std::memcpy(&r, data + i * sizeof(fused_rec), sizeof(fused_rec));
        fused_handle(ctx, r);
      }
      return;
    }
    sc.busy = true;
    sc.resize(n);
    constexpr std::size_t kStride = sizeof(fused_rec);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::memcpy(&sc.loc[i], data + i * kStride, 8);
      sc.fire[i] = 0;
    }
    const simd::kernel_table& kt = kernels();
    const graph::distribution& dd = g_->dist();
    [&]<std::size_t... I>(std::index_sequence<I...>) {
      ((fused_batch_member<I>(ctx, kt, dd, data, n, sc)), ...);
    }(std::index_sequence_for<Whens...>{});
    if (hook_)
      for (std::uint32_t i = 0; i < n; ++i)
        if (sc.fire[i]) hook_(ctx, static_cast<graph::vertex_id>(sc.loc[i]));
    sc.busy = false;
  }

  template <std::size_t I>
  void fused_batch_member(ampp::transport_context& ctx, const simd::kernel_table& kt,
                          const graph::distribution& dd, const std::byte* data,
                          std::uint32_t n, batch_scratch& sc) {
    using VT = typename shape_t<I>::value_type;
    auto& m = std::get<I>(members_);
    constexpr std::size_t kStride = sizeof(fused_rec);
    constexpr std::size_t kSlot = sizeof(graph::vertex_id) + I * 8;
    for (std::uint32_t i = 0; i < n; ++i)
      std::memcpy(&sc.val[i], data + i * kStride + kSlot, 8);
    const std::span<VT> shard = m.pm->local(ctx.rank());
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto loc = static_cast<graph::vertex_id>(sc.loc[i]);
      DPG_DEBUG_ASSERT(g_->owner(loc) == ctx.rank());
      const VT cur = std::atomic_ref<VT>(shard[dd.local_index(loc)])
                         .load(std::memory_order_relaxed);
      sc.cur[i] = std::bit_cast<std::uint64_t>(cur);
    }
    if (filter_member<I>(kt, sc, n) == 0) return;
    for (std::uint32_t i = 0; i < n; ++i)
      if (sc.mask[i]) {
        const auto loc = static_cast<graph::vertex_id>(sc.loc[i]);
        if (commit_slot<I>(ctx, shard[dd.local_index(loc)],
                           std::bit_cast<VT>(sc.val[i])))
          sc.fire[i] = 1;
      }
  }

  /// Whole-envelope dispatch for a member's solo lane: the records are the
  /// member's own 16-byte fast records, so the pairwise deinterleave
  /// kernel applies unchanged.
  template <std::size_t I>
  void solo_batch_handle(ampp::transport_context& ctx, const std::byte* data,
                         std::uint32_t n) {
    using VT = typename shape_t<I>::value_type;
    using solo_rec = typename member_t<I>::solo_rec;
    if (n == 0) return;
    auto& m = std::get<I>(members_);
    obs::trace_span sp(&tp_->obs().trace(), "plan", m.solo_batch_label.c_str(),
                       ctx.rank());
    auto& core = tp_->obs().core();
    core.batch_kernels_run.fetch_add(1, std::memory_order_relaxed);
    core.batch_records.fetch_add(n, std::memory_order_relaxed);
    batch_scratch& sc = scratch();
    if (sc.busy) {
      for (std::uint32_t i = 0; i < n; ++i) {
        solo_rec r;
        std::memcpy(&r, data + i * sizeof(solo_rec), sizeof(solo_rec));
        solo_handle<I>(ctx, r);
      }
      return;
    }
    sc.busy = true;
    sc.resize(n);
    const simd::kernel_table& kt = kernels();
    kt.deinterleave2_u64(data, n, sc.loc.data(), sc.val.data());
    const std::span<VT> shard = m.pm->local(ctx.rank());
    const graph::distribution& dd = g_->dist();
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto loc = static_cast<graph::vertex_id>(sc.loc[i]);
      DPG_DEBUG_ASSERT(g_->owner(loc) == ctx.rank());
      const VT cur = std::atomic_ref<VT>(shard[dd.local_index(loc)])
                         .load(std::memory_order_relaxed);
      sc.cur[i] = std::bit_cast<std::uint64_t>(cur);
    }
    if (filter_member<I>(kt, sc, n) != 0)
      for (std::uint32_t i = 0; i < n; ++i)
        if (sc.mask[i]) {
          const auto loc = static_cast<graph::vertex_id>(sc.loc[i]);
          if (commit_slot<I>(ctx, shard[dd.local_index(loc)],
                             std::bit_cast<VT>(sc.val[i])) &&
              hook_)
            hook_(ctx, loc);
        }
    sc.busy = false;
  }

  ampp::transport* tp_;
  const graph::distributed_graph* g_;
  std::tuple<member<Whens>...> members_;
  std::vector<std::string> member_names_;
  ampp::fused_layout layout_;
  ampp::message_type<fused_rec>* fused_msg_ = nullptr;
  std::string fused_label_;
  std::string fused_batch_label_;
  bool use_batch_ = false;
  bool use_reduce_ = false;
  int simd_level_ = -1;
};

// ---------------------------------------------------------------------------
// Entry point + explain
// ---------------------------------------------------------------------------

/// Fuses N compiled patterns over one graph into a single action instance
/// driving one fixed point. Every definition must carry exactly one when
/// clause of the single-locality fast shape, all over the same generator
/// and target index expression. Must be called before transport::run; the
/// returned object must outlive all runs that use it.
template <class Gen, class... Whens>
std::unique_ptr<fused_action<Gen, Whens...>> fuse(
    ampp::transport& tp, const graph::distributed_graph& g, compile_options opts,
    action_def<Gen, Whens>... defs) {
  return std::make_unique<fused_action<Gen, Whens...>>(
      tp, g, std::tuple<action_def<Gen, Whens>...>{std::move(defs)...}, opts);
}

/// Renders a fused plan: the packed wire layout (shared addressing bytes,
/// per-member live slots, per-hop fused payload size) plus the dispatch
/// and fixed-point sharing summary — the fusion analogue of explain().
template <class Gen, class... Whens>
std::string explain_fused(const fused_action<Gen, Whens...>& a) {
  const plan_info& p = a.plan();
  std::string out = a.layout().describe(a.name());
  out += "  group dispatch: fused lane for multi-member waves, per-member solo "
         "lanes for single-member tails\n";
  out += std::string("  batch kernel: ") +
         (p.batch_kernel ? "per-member sub-batch SIMD dispatch (runtime ISA)"
                         : "off") +
         "\n";
  out += std::string("  sender reduction: ") +
         (p.fast_reduction ? "elementwise combining cache on the fused lane"
                           : "off") +
         "\n";
  out += "  fixed point: one epoch loop, one termination detection for " +
         std::to_string(sizeof...(Whens)) + " members\n";
  return out;
}

}  // namespace dpg::pattern
