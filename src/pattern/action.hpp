// Actions (§III-C) and their instantiation into AM++ message chains (§IV).
//
// An action is declared declaratively:
//
//   property dist(dist_map);            // property-map DSL handles
//   property weight(weight_map);
//   auto relax = make_action("relax", out_edges_gen{},
//       when(dist(trg(e_)) > dist(v_) + weight(e_),
//            assign(dist(trg(e_)), dist(v_) + weight(e_))));
//
// and instantiated against a transport + graph + lock map:
//
//   auto act = instantiate(tp, g, locks, relax);
//   act->work([&](ampp::transport_context& ctx, vertex_id dep) {  // §IV-C
//     (*act)(ctx, dep);                                           // fixed point
//   });
//
// Instantiation performs the paper's §IV-A translation: locality analysis,
// hop planning, merging of the final gather with evaluate+modify, message
// type registration (with auto-generated address maps, §IV-D), and the
// §IV-B synchronization choice (hardware atomics for the single-value
// compare-and-update shape, lock map otherwise).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "ampp/transport.hpp"
#include "graph/distributed_graph.hpp"
#include "pattern/planner.hpp"
#include "pmap/lock_map.hpp"

namespace dpg::pattern {

// ---------------------------------------------------------------------------
// Modification statements
// ---------------------------------------------------------------------------

/// assign: target-pmap[idx] = value. The leftmost property access of a
/// modification is the modified one (the paper's left-to-right rule).
template <class PM, class Idx, class Val>
struct assign_stmt {
  read_expr<PM, Idx> target;
  Val value;
};

template <class PM, class Idx, class V>
auto assign(read_expr<PM, Idx> target, V value) {
  auto val = as_expr(value);
  return assign_stmt<PM, Idx, decltype(val)>{target, val};
}

/// modify: fn(target-pmap[idx], arg-values...) — the general "property map
/// modification" of the grammar (e.g. preds[v].insert(u)). fn must be the
/// only writer of the slot and must not touch other property maps.
template <class PM, class Idx, class F, class... Args>
struct modify_stmt {
  read_expr<PM, Idx> target;
  F fn;
  std::tuple<Args...> args;
};

template <class PM, class Idx, class F, class... Args>
auto modify(read_expr<PM, Idx> target, F fn, Args... args) {
  return modify_stmt<PM, Idx, F, decltype(as_expr(args))...>{
      target, std::move(fn), std::tuple<decltype(as_expr(args))...>{as_expr(args)...}};
}

// ---------------------------------------------------------------------------
// Conditions
// ---------------------------------------------------------------------------

/// One `if (cond) { modifications }` arm. Arms of an action chain as
/// if / else-if: the first true condition fires and ends the action.
template <class Cond, class... Mods>
struct when_clause {
  Cond cond;
  std::tuple<Mods...> mods;
};

template <is_expr Cond, class... Mods>
auto when(Cond cond, Mods... mods) {
  static_assert(sizeof...(Mods) >= 1, "a condition must guard at least one modification");
  return when_clause<Cond, Mods...>{cond, std::tuple<Mods...>{mods...}};
}

/// An unconditional arm (an `else` branch).
template <class... Mods>
auto otherwise(Mods... mods) {
  return when(lit(true), mods...);
}

// ---------------------------------------------------------------------------
// Action definition
// ---------------------------------------------------------------------------

template <generator_kind Gen, class... Whens>
struct action_def {
  std::string name;
  Gen gen;
  std::tuple<Whens...> whens;
};

template <generator_kind Gen, class... Whens>
auto make_action(std::string name, Gen gen, Whens... whens) {
  static_assert(sizeof...(Whens) >= 1, "an action needs at least one condition");
  return action_def<Gen, Whens...>{std::move(name), gen, std::tuple<Whens...>{whens...}};
}

// ---------------------------------------------------------------------------
// Instantiated action: type-erased interface used by strategies
// ---------------------------------------------------------------------------

/// Shape of the synthesized communication, exposed for tests/benchmarks
/// (this is the observable form of Figs. 5 and 6).
struct plan_info {
  int gather_hops = 0;       ///< hops of the gather chain (hop 0 = invocation site)
  bool final_merged = false; ///< evaluate+modify merged into the last gather hop
  bool atomic_path = false;  ///< single-value compare-and-update via atomics
  int final_reads = 0;       ///< reads deferred to the (synchronized) final hop
  std::size_t arena_bytes = 0;  ///< gathered payload bytes
  int conditions = 0;           ///< arms of the if/else-if chain
  bool has_dependencies = false;  ///< §IV-C: some modification creates work items
  /// Human-readable locality of each gather hop, then of the final hop,
  /// e.g. {"v", "value of pmap@0x..[..]"} + "v" for the cc_jump chase.
  std::vector<std::string> hop_localities;
  std::vector<int> hop_reads;  ///< gather reads performed per hop
  std::string final_locality;

  int messages_per_application() const {
    // Messages one application generates per generated item: one per hop
    // transition (hop 0 is local), plus the final evaluate unless merged.
    return (gather_hops - 1) + (final_merged ? 0 : 1);
  }
};

/// Renders a plan as text — the reproduction of the paper's Figs. 5/6 as
/// an inspectable artifact (what the authors' planned translator would
/// print about the communication it generates).
std::string explain(const std::string& action_name, const plan_info& p);

class action_instance {
 public:
  virtual ~action_instance() = default;

  /// Runs the action starting at vertex v. Must be called on the rank that
  /// owns v, inside an epoch.
  virtual void operator()(ampp::transport_context& ctx, graph::vertex_id v) = 0;

  /// The work hook (§IV-C): called at the owner of a dependent vertex when
  /// a condition modified a property value the action also reads. Default:
  /// dependencies are ignored (per the paper).
  using work_hook = std::function<void(ampp::transport_context&, graph::vertex_id)>;
  void work(work_hook h) { hook_ = std::move(h); }

  const std::string& name() const { return name_; }
  const plan_info& plan() const { return plan_; }

  /// Total applications of the action (across ranks).
  std::uint64_t invocations() const { return sum(invocations_); }
  /// Total successful condition firings, i.e. modifications performed.
  std::uint64_t modifications() const { return sum(mods_); }
  /// This-rank's modification counter (for `once`-style local deltas).
  std::uint64_t modifications_on(ampp::rank_t r) const { return mods_[r].n.load(); }

 protected:
  struct padded_counter {
    alignas(64) std::atomic<std::uint64_t> n{0};
  };
  static std::uint64_t sum(const std::vector<padded_counter>& v) {
    std::uint64_t t = 0;
    for (const auto& c : v) t += c.n.load(std::memory_order_relaxed);
    return t;
  }

  std::string name_;
  plan_info plan_;
  work_hook hook_;
  std::vector<padded_counter> invocations_;
  std::vector<padded_counter> mods_;
};

// ---------------------------------------------------------------------------
// Atomic-shape detection (§IV-B single-value fast path)
// ---------------------------------------------------------------------------

namespace detail {

template <class PM>
inline constexpr bool atomic_eligible_map =
    !is_edge_map<PM> && pmap::atomic_capable<typename PM::value_type>;

/// Matches `when(target OP other, assign(target, other))` shapes where the
/// comparison justifies a CAS loop. `cmp(cur, proposed)` returns whether
/// the update should be applied against the current value.
template <class When>
struct atomic_shape : std::false_type {};

// dist(trg(e)) > candidate  →  min-update (apply when proposed < current)
template <class PM, class Idx, class R>
  requires atomic_eligible_map<PM>
struct atomic_shape<when_clause<bin_expr<op_gt, read_expr<PM, Idx>, R>,
                                assign_stmt<PM, Idx, R>>> : std::true_type {
  static bool cmp(const typename PM::value_type& cur, const typename PM::value_type& prop) {
    return prop < cur;
  }
};

// candidate < dist(trg(e))  →  min-update
template <class PM, class Idx, class L>
  requires atomic_eligible_map<PM>
struct atomic_shape<when_clause<bin_expr<op_lt, L, read_expr<PM, Idx>>,
                                assign_stmt<PM, Idx, L>>> : std::true_type {
  static bool cmp(const typename PM::value_type& cur, const typename PM::value_type& prop) {
    return prop < cur;
  }
};

// dist(x) < candidate  →  max-update (apply when proposed > current)
template <class PM, class Idx, class R>
  requires atomic_eligible_map<PM>
struct atomic_shape<when_clause<bin_expr<op_lt, read_expr<PM, Idx>, R>,
                                assign_stmt<PM, Idx, R>>> : std::true_type {
  static bool cmp(const typename PM::value_type& cur, const typename PM::value_type& prop) {
    return cur < prop;
  }
};

// candidate > dist(x)  →  max-update
template <class PM, class Idx, class L>
  requires atomic_eligible_map<PM>
struct atomic_shape<when_clause<bin_expr<op_gt, L, read_expr<PM, Idx>>,
                                assign_stmt<PM, Idx, L>>> : std::true_type {
  static bool cmp(const typename PM::value_type& cur, const typename PM::value_type& prop) {
    return cur < prop;
  }
};

}  // namespace detail

// ---------------------------------------------------------------------------
// Instantiated action implementation
// ---------------------------------------------------------------------------

template <class Gen, class... Whens>
class instantiated_action final : public action_instance {
 public:
  instantiated_action(ampp::transport& tp, const graph::distributed_graph& g,
                      pmap::lock_map& locks, action_def<Gen, Whens...> def)
      : tp_(&tp), g_(&g), locks_(&locks), gen_(def.gen) {
    name_ = std::move(def.name);
    // vector(n) constructs counters in place (atomics are not movable).
    invocations_ = std::vector<padded_counter>(tp.size());
    mods_ = std::vector<padded_counter>(tp.size());
    build(def);
    register_messages();
  }

  void operator()(ampp::transport_context& ctx, graph::vertex_id v) override {
    DPG_ASSERT_MSG(g_->owner(v) == ctx.rank(), "action invoked off the owner of v");
    invocations_[ctx.rank()].n.fetch_add(1, std::memory_order_relaxed);
    gather_state s;
    s.v = v;
    if constexpr (std::is_same_v<Gen, out_edges_gen>) {
      for (const graph::edge_handle e : g_->out_edges(v)) {
        s.e = e;
        run_gather(ctx, 0, s);
      }
    } else if constexpr (std::is_same_v<Gen, in_edges_gen>) {
      for (const graph::edge_handle e : g_->in_edges(v)) {
        s.e = e;
        run_gather(ctx, 0, s);
      }
    } else if constexpr (std::is_same_v<Gen, adj_gen>) {
      for (const graph::vertex_id u : g_->adjacent(v)) {
        s.u = u;
        run_gather(ctx, 0, s);
      }
    } else if constexpr (is_pmap_gen<Gen>) {
      for (const graph::vertex_id u : std::as_const(*gen_.pm)[v]) {
        s.u = u;
        run_gather(ctx, 0, s);
      }
    } else {
      run_gather(ctx, 0, s);
    }
  }

 private:
  struct compiled_mod {
    std::function<void(gather_state&)> exec;  // runs at the final locality
    const void* written_pmap = nullptr;
    bool creates_dependency = false;
  };
  struct compiled_when {
    std::function<bool(const gather_state&)> cond;
    std::vector<compiled_mod> mods;
    bool any_dependency = false;
  };

  // ---- plan construction --------------------------------------------------

  void build(action_def<Gen, Whens...>& def) {
    plan_builder<Gen> pb;

    // Compile conditions and modifications in declaration order (the
    // paper's left-to-right, condition-by-condition analysis).
    std::apply(
        [&](auto&... ws) {
          (compile_when(pb, ws), ...);
        },
        def.whens);

    DPG_ASSERT_MSG(have_ml_, "an action must contain at least one modification");

    // Dependency detection (§IV-C): a modification of a property map the
    // action reads anywhere creates work items.
    for (auto& w : whens_) {
      for (auto& m : w.mods) {
        m.creates_dependency = pb.reads_pmap(m.written_pmap);
        w.any_dependency = w.any_dependency || m.creates_dependency;
      }
    }

    // Partition reads into gather hops and final (synchronized) reads.
    hops_.push_back(gather_hop{home_id{home_kind::at_v, nullptr,
                                       std::type_index(typeid(void))},
                               [](const gather_state& s) { return s.v; },
                               {}});
    for (auto& step : pb.steps()) {
      if (step.home == ml_ && !step.pinned) {
        final_reads_.push_back(step.perform);
        continue;
      }
      gather_hop* hop = nullptr;
      for (auto& h : hops_)
        if (h.home == step.home) {
          hop = &h;
          break;
        }
      if (!hop) {
        hops_.push_back(
            gather_hop{step.home, locality_closure(step.home, pb), {}});
        hop = &hops_.back();
      }
      hop->reads.push_back(step.perform);
    }
    ml_locality_ = locality_closure(ml_, pb);
    merged_ = hops_.back().home == ml_;

    // §IV-B: single-value compare-and-update fast path. The shape is
    // checked statically; at runtime it additionally requires that the
    // *only* synchronized read is the updated value itself.
    using FirstWhen = std::tuple_element_t<0, std::tuple<Whens...>>;
    if constexpr (sizeof...(Whens) == 1 && detail::atomic_shape<FirstWhen>::value) {
      // Runtime refinements: the updated value must be the *only*
      // synchronized read, and the proposed value must not read the target
      // itself (read-modify-write shapes like x[u] = x[u] + 1 need the
      // locked path, which fills the target's arena slot before use).
      if (final_reads_.size() == 1 && !value_reads_target_) atomic_ok_ = true;
    }

    plan_.gather_hops = static_cast<int>(hops_.size());
    plan_.final_merged = merged_;
    plan_.atomic_path = atomic_ok_;
    plan_.final_reads = static_cast<int>(final_reads_.size());
    plan_.arena_bytes = pb.arena_used();
    plan_.conditions = static_cast<int>(whens_.size());
    for (const auto& w : whens_)
      plan_.has_dependencies = plan_.has_dependencies || w.any_dependency;
    for (const auto& h : hops_) {
      plan_.hop_localities.push_back(home_name(h.home));
      plan_.hop_reads.push_back(static_cast<int>(h.reads.size()));
    }
    plan_.final_locality = home_name(ml_);
  }

  static std::string home_name(const home_id& h) {
    switch (h.kind) {
      case home_kind::at_v: return "v";
      case home_kind::at_gen:
        if constexpr (std::is_same_v<Gen, out_edges_gen>) return "trg(e)";
        else if constexpr (std::is_same_v<Gen, in_edges_gen>) return "src(e)";
        else return "u";
      case home_kind::chase: return "chase";  // the value of a gathered vertex read
    }
    return "?";
  }

  template <class Cond, class... Mods>
  void compile_when(plan_builder<Gen>& pb, when_clause<Cond, Mods...>& w) {
    compiled_when cw;
    auto cond_fn = pb.compile(w.cond);
    cw.cond = [cond_fn](const gather_state& s) { return static_cast<bool>(cond_fn(s)); };
    std::apply([&](auto&... ms) { (cw.mods.push_back(compile_mod(pb, ms)), ...); },
               w.mods);
    // The atomic fast path needs the proposed value and slot accessors of
    // the (single) assign; capture them from the first when.
    if constexpr (sizeof...(Whens) == 1 && detail::atomic_shape<when_clause<Cond, Mods...>>::value) {
      build_atomic_exec(pb, std::get<0>(w.mods));
    }
    whens_.push_back(std::move(cw));
  }

  template <class PM, class Idx, class Val>
  compiled_mod compile_mod(plan_builder<Gen>& pb, assign_stmt<PM, Idx, Val>& m) {
    note_ml(make_home<Idx, Gen>(m.target.idx), pb, m.target.idx);
    auto idx_fn = pb.compile(m.target.idx);
    auto val_fn = pb.compile(m.value);
    PM* pm = m.target.pm;
    compiled_mod out;
    out.written_pmap = pm;
    using T = typename PM::value_type;
    out.exec = [pm, idx_fn, val_fn](gather_state& s) {
      if constexpr (pmap::atomic_capable<T>) {
        // Paired with the atomic gather reads in planner.hpp so concurrent
        // handler threads never mix plain and atomic access to one slot.
        std::atomic_ref<T>((*pm)[idx_fn(s)])
            .store(static_cast<T>(val_fn(s)), std::memory_order_relaxed);
      } else {
        (*pm)[idx_fn(s)] = val_fn(s);
      }
    };
    return out;
  }

  template <class PM, class Idx, class F, class... Args>
  compiled_mod compile_mod(plan_builder<Gen>& pb, modify_stmt<PM, Idx, F, Args...>& m) {
    note_ml(make_home<Idx, Gen>(m.target.idx), pb, m.target.idx);
    auto idx_fn = pb.compile(m.target.idx);
    auto arg_fns = std::apply(
        [&](auto&... as) { return std::tuple{pb.compile(as)...}; }, m.args);
    PM* pm = m.target.pm;
    F fn = m.fn;
    compiled_mod out;
    out.written_pmap = pm;
    out.exec = [pm, idx_fn, arg_fns, fn](gather_state& s) {
      std::apply([&](const auto&... afs) { fn((*pm)[idx_fn(s)], afs(s)...); }, arg_fns);
    };
    return out;
  }

  template <class Idx>
  void note_ml(const home_id& h, plan_builder<Gen>& pb, const Idx& idx) {
    if (!have_ml_) {
      ml_ = h;
      have_ml_ = true;
      // A chased modification locality needs the chase value gathered.
      if constexpr (home_of<Idx, Gen>::kind == home_kind::chase)
        (void)pb.register_read(idx);
    } else {
      DPG_ASSERT_MSG(h == ml_,
                     "all modifications of an action must share one locality "
                     "(the paper groups modification statements by locality; "
                     "split the action instead)");
    }
  }

  std::function<graph::vertex_id(const gather_state&)> locality_closure(
      const home_id& h, plan_builder<Gen>& pb) {
    switch (h.kind) {
      case home_kind::at_v:
        return [](const gather_state& s) { return s.v; };
      case home_kind::at_gen:
        if constexpr (std::is_same_v<Gen, out_edges_gen>)
          return [](const gather_state& s) { return s.e.dst; };
        else if constexpr (std::is_same_v<Gen, in_edges_gen>)
          return [](const gather_state& s) { return s.e.src; };
        else if constexpr (std::is_same_v<Gen, adj_gen> || is_pmap_gen<Gen>)
          return [](const gather_state& s) { return s.u; };
        else
          DPG_ASSERT_MSG(false, "generator-homed access without a generator");
      case home_kind::chase: {
        // The chased vertex is the value of the inner read: find its slot.
        for (const auto& step : pb.steps()) {
          if (step.pmap_id == h.chase_pm && step.self_type == h.chase_type) {
            const std::size_t ofs = step.arena_offset;
            return [ofs](const gather_state& s) {
              return s.template arena_get<graph::vertex_id>(ofs);
            };
          }
        }
        DPG_ASSERT_MSG(false, "chase locality lacks its gathered index value");
      }
    }
    return {};
  }

  template <class PM, class Idx, class Val>
  void build_atomic_exec(plan_builder<Gen>& pb, assign_stmt<PM, Idx, Val>& m) {
    using FirstWhen = std::tuple_element_t<0, std::tuple<Whens...>>;
    // Probe: does the value expression read the target access? Compile it
    // into a scratch builder and look for the (map instance, index type)
    // pair — type-level inspection cannot tell two same-typed maps apart.
    {
      plan_builder<Gen> probe;
      (void)probe.compile(m.value);
      const auto target_type = std::type_index(typeid(read_expr<PM, Idx>));
      for (const auto& st : probe.steps())
        if (st.pmap_id == m.target.pm && st.self_type == target_type)
          value_reads_target_ = true;
    }
    auto idx_fn = pb.compile(m.target.idx);
    auto val_fn = pb.compile(m.value);
    PM* pm = m.target.pm;
    atomic_exec_ = [pm, idx_fn, val_fn](gather_state& s) {
      return pmap::atomic_update_if((*pm)[idx_fn(s)], val_fn(s),
                                    [](const auto& cur, const auto& prop) {
                                      return detail::atomic_shape<FirstWhen>::cmp(cur, prop);
                                    });
    };
  }

  // ---- message registration (§IV-A, §IV-D) --------------------------------

  void register_messages() {
    // Stable span labels for the plan-stage traces: one per gather hop plus
    // the final evaluate (spans copy the name, but the c_str must live
    // until the span constructor returns).
    for (std::size_t k = 0; k < hops_.size(); ++k)
      hop_labels_.push_back(name_ + ".hop" + std::to_string(k));
    final_label_ = name_ + ".eval";
    const auto* g = g_;
    for (std::size_t k = 1; k < hops_.size(); ++k) {
      auto loc = hops_[k].locality;
      hop_msgs_.push_back(&tp_->make_message_type<gather_state>(
          name_ + ".gather" + std::to_string(k),
          [this, k](ampp::transport_context& ctx, const gather_state& s) {
            gather_state copy = s;
            run_gather(ctx, k, copy);
          },
          // Auto-generated address map: extract the destination vertex from
          // the payload, ask the graph for its owner (§IV-D).
          [g, loc](const gather_state& s) { return g->owner(loc(s)); }));
    }
    if (!merged_) {
      auto loc = ml_locality_;
      final_msg_ = &tp_->make_message_type<gather_state>(
          name_ + ".eval",
          [this](ampp::transport_context& ctx, const gather_state& s) {
            gather_state copy = s;
            run_final(ctx, copy);
          },
          [g, loc](const gather_state& s) { return g->owner(loc(s)); });
    }
  }

  // ---- execution -----------------------------------------------------------

  void run_gather(ampp::transport_context& ctx, std::size_t k, gather_state& s) {
    obs::trace_span sp(&tp_->obs().trace(), "plan", hop_labels_[k].c_str(), ctx.rank());
    for (const auto& read : hops_[k].reads) read(s);
    if (k + 1 < hops_.size()) {
      hop_msgs_[k]->send(ctx, s);  // hop_msgs_[k] targets hop k+1
      return;
    }
    if (merged_)
      run_final(ctx, s);
    else
      final_msg_->send(ctx, s);
  }

  void run_final(ampp::transport_context& ctx, gather_state& s) {
    obs::trace_span sp(&tp_->obs().trace(), "plan", final_label_.c_str(), ctx.rank());
    const graph::vertex_id mlv = ml_locality_(s);
    DPG_DEBUG_ASSERT(g_->owner(mlv) == ctx.rank());

    bool fired_dependency = false;
    if (atomic_ok_) {
      if (atomic_exec_(s)) {
        mods_[ctx.rank()].n.fetch_add(1, std::memory_order_relaxed);
        fired_dependency = whens_.front().any_dependency;
      }
    } else {
      bool fired = false;
      {
        auto guard = locks_->guard(mlv);
        for (const auto& read : final_reads_) read(s);
        for (const auto& w : whens_) {
          if (w.cond(s)) {
            for (const auto& m : w.mods) m.exec(s);
            fired = true;
            fired_dependency = w.any_dependency;
            break;  // if / else-if chain
          }
        }
      }
      if (fired) mods_[ctx.rank()].n.fetch_add(1, std::memory_order_relaxed);
    }
    // The hook runs outside the lock: it typically re-invokes the action
    // (fixed_point) or inserts into a bucket structure (Δ-stepping).
    if (fired_dependency && hook_) hook_(ctx, mlv);
  }

  ampp::transport* tp_;
  const graph::distributed_graph* g_;
  pmap::lock_map* locks_;
  Gen gen_;

  std::vector<compiled_when> whens_;
  std::vector<gather_hop> hops_;
  std::vector<std::function<void(gather_state&)>> final_reads_;
  std::function<graph::vertex_id(const gather_state&)> ml_locality_;
  home_id ml_{};
  bool have_ml_ = false;
  bool merged_ = false;
  bool atomic_ok_ = false;
  bool value_reads_target_ = false;
  std::function<bool(gather_state&)> atomic_exec_;

  std::vector<ampp::message_type<gather_state>*> hop_msgs_;
  ampp::message_type<gather_state>* final_msg_ = nullptr;
  std::vector<std::string> hop_labels_;  ///< plan-span names, one per hop
  std::string final_label_;              ///< plan-span name of the final stage
};

inline std::string explain(const std::string& action_name, const plan_info& p) {
  std::string out;
  out += "action " + action_name + ":\n";
  for (std::size_t k = 0; k < p.hop_localities.size(); ++k) {
    out += "  hop " + std::to_string(k) + " at " + p.hop_localities[k];
    out += k == 0 ? " (invocation site)" : " (gather message)";
    out += ": " + std::to_string(p.hop_reads[k]) + " read(s)\n";
  }
  out += "  final at " + p.final_locality;
  if (p.final_merged)
    out += " (merged into the last gather hop)";
  else
    out += " (evaluate+modify message)";
  out += ": " + std::to_string(p.final_reads) + " synchronized read(s), " +
         std::to_string(p.conditions) + " condition(s)\n";
  out += std::string("  synchronization: ") +
         (p.atomic_path ? "atomic compare-and-update" : "lock map") + "\n";
  out += "  dependencies: " + std::string(p.has_dependencies ? "yes (work hook fires)"
                                                             : "none") + "\n";
  out += "  messages per application: " + std::to_string(p.messages_per_application()) +
         ", payload arena: " + std::to_string(p.arena_bytes) + " bytes\n";
  return out;
}

/// Instantiates an action definition: performs the locality analysis and
/// registers the synthesized message types with the transport. Must be
/// called before transport::run; the returned object must outlive all runs
/// that use it.
template <class Gen, class... Whens>
std::unique_ptr<instantiated_action<Gen, Whens...>> instantiate(
    ampp::transport& tp, const graph::distributed_graph& g, pmap::lock_map& locks,
    action_def<Gen, Whens...> def) {
  return std::make_unique<instantiated_action<Gen, Whens...>>(tp, g, locks,
                                                              std::move(def));
}

}  // namespace dpg::pattern
