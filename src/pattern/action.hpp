// Actions (§III-C) and their instantiation into AM++ message chains (§IV).
//
// An action is declared declaratively:
//
//   property dist(dist_map);            // property-map DSL handles
//   property weight(weight_map);
//   auto relax = make_action("relax", out_edges_gen{},
//       when(dist(trg(e_)) > dist(v_) + weight(e_),
//            assign(dist(trg(e_)), dist(v_) + weight(e_))));
//
// and instantiated against a transport + graph + lock map:
//
//   auto act = instantiate(tp, g, locks, relax);
//   act->work([&](ampp::transport_context& ctx, vertex_id dep) {  // §IV-C
//     (*act)(ctx, dep);                                           // fixed point
//   });
//
// Instantiation performs the paper's §IV-A translation: locality analysis,
// hop planning, merging of the final gather with evaluate+modify, message
// type registration (with auto-generated address maps, §IV-D), and the
// §IV-B synchronization choice (hardware atomics for the single-value
// compare-and-update shape, lock map otherwise).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "ampp/transport.hpp"
#include "graph/distributed_graph.hpp"
#include "pattern/planner.hpp"
#include "pmap/lock_map.hpp"
#include "util/simd.hpp"

namespace dpg::pattern {

// ---------------------------------------------------------------------------
// Modification statements
// ---------------------------------------------------------------------------

/// assign: target-pmap[idx] = value. The leftmost property access of a
/// modification is the modified one (the paper's left-to-right rule).
template <class PM, class Idx, class Val>
struct assign_stmt {
  read_expr<PM, Idx> target;
  Val value;
};

template <class PM, class Idx, class V>
auto assign(read_expr<PM, Idx> target, V value) {
  auto val = as_expr(value);
  return assign_stmt<PM, Idx, decltype(val)>{target, val};
}

/// modify: fn(target-pmap[idx], arg-values...) — the general "property map
/// modification" of the grammar (e.g. preds[v].insert(u)). fn must be the
/// only writer of the slot and must not touch other property maps.
template <class PM, class Idx, class F, class... Args>
struct modify_stmt {
  read_expr<PM, Idx> target;
  F fn;
  std::tuple<Args...> args;
};

template <class PM, class Idx, class F, class... Args>
auto modify(read_expr<PM, Idx> target, F fn, Args... args) {
  return modify_stmt<PM, Idx, F, decltype(as_expr(args))...>{
      target, std::move(fn), std::tuple<decltype(as_expr(args))...>{as_expr(args)...}};
}

// ---------------------------------------------------------------------------
// Conditions
// ---------------------------------------------------------------------------

/// One `if (cond) { modifications }` arm. Arms of an action chain as
/// if / else-if: the first true condition fires and ends the action.
template <class Cond, class... Mods>
struct when_clause {
  Cond cond;
  std::tuple<Mods...> mods;
};

template <is_expr Cond, class... Mods>
auto when(Cond cond, Mods... mods) {
  static_assert(sizeof...(Mods) >= 1, "a condition must guard at least one modification");
  return when_clause<Cond, Mods...>{cond, std::tuple<Mods...>{mods...}};
}

/// An unconditional arm (an `else` branch).
template <class... Mods>
auto otherwise(Mods... mods) {
  return when(lit(true), mods...);
}

// ---------------------------------------------------------------------------
// Action definition
// ---------------------------------------------------------------------------

template <generator_kind Gen, class... Whens>
struct action_def {
  std::string name;
  Gen gen;
  std::tuple<Whens...> whens;
};

template <generator_kind Gen, class... Whens>
auto make_action(std::string name, Gen gen, Whens... whens) {
  static_assert(sizeof...(Whens) >= 1, "an action needs at least one condition");
  return action_def<Gen, Whens...>{std::move(name), gen, std::tuple<Whens...>{whens...}};
}

// ---------------------------------------------------------------------------
// Instantiated action: type-erased interface used by strategies
// ---------------------------------------------------------------------------

/// Shape of the synthesized communication, exposed for tests/benchmarks
/// (this is the observable form of Figs. 5 and 6).
struct plan_info {
  int gather_hops = 0;       ///< hops of the gather chain (hop 0 = invocation site)
  bool final_merged = false; ///< evaluate+modify merged into the last gather hop
  bool atomic_path = false;  ///< single-value compare-and-update via atomics
  int final_reads = 0;       ///< reads deferred to the (synchronized) final hop
  std::size_t arena_bytes = 0;  ///< gathered payload bytes
  int conditions = 0;           ///< arms of the if/else-if chain
  bool has_dependencies = false;  ///< §IV-C: some modification creates work items
  /// Human-readable locality of each gather hop, then of the final hop,
  /// e.g. {"v", "value of pmap@0x..[..]"} + "v" for the cc_jump chase.
  std::vector<std::string> hop_localities;
  std::vector<int> hop_reads;  ///< gather reads performed per hop
  std::string final_locality;
  bool fast_path = false;    ///< single-locality relax kernel engaged
  bool batch_kernel = false; ///< whole-envelope SIMD batch dispatch engaged
  bool fast_reduction = false;  ///< sender-side combining cache on the relax lane
  std::size_t cse_hits = 0;  ///< duplicate reads sharing one arena slot
  /// Bytes each synthesized message carries on the wire, in send order:
  /// gather wires first (into hop 1, hop 2, …), then the evaluate message
  /// when the final stage is not merged. Empty for fully local actions.
  /// Reflects the compact layout when it is enabled, else full payloads.
  std::vector<std::size_t> wire_bytes;

  int messages_per_application() const {
    // Messages one application generates per generated item: one per hop
    // transition (hop 0 is local), plus the final evaluate unless merged.
    return (gather_hops - 1) + (final_merged ? 0 : 1);
  }
};

/// Renders a plan as text — the reproduction of the paper's Figs. 5/6 as
/// an inspectable artifact (what the authors' planned translator would
/// print about the communication it generates).
std::string explain(const std::string& action_name, const plan_info& p);

class action_instance {
 public:
  virtual ~action_instance() = default;

  /// Runs the action starting at vertex v. Must be called on the rank that
  /// owns v, inside an epoch.
  virtual void operator()(ampp::transport_context& ctx, graph::vertex_id v) = 0;

  /// The work hook (§IV-C): called at the owner of a dependent vertex when
  /// a condition modified a property value the action also reads. Default:
  /// dependencies are ignored (per the paper).
  using work_hook = std::function<void(ampp::transport_context&, graph::vertex_id)>;
  void work(work_hook h) { hook_ = std::move(h); }

  const std::string& name() const { return name_; }
  const plan_info& plan() const { return plan_; }

  /// Total applications of the action (across ranks).
  std::uint64_t invocations() const { return sum(invocations_); }
  /// Total successful condition firings, i.e. modifications performed.
  std::uint64_t modifications() const { return sum(mods_); }
  /// This-rank's modification counter (for `once`-style local deltas).
  std::uint64_t modifications_on(ampp::rank_t r) const { return mods_[r].n.load(); }

 protected:
  struct padded_counter {
    alignas(64) std::atomic<std::uint64_t> n{0};
  };
  static std::uint64_t sum(const std::vector<padded_counter>& v) {
    std::uint64_t t = 0;
    for (const auto& c : v) t += c.n.load(std::memory_order_relaxed);
    return t;
  }

  std::string name_;
  plan_info plan_;
  work_hook hook_;
  std::vector<padded_counter> invocations_;
  std::vector<padded_counter> mods_;
};

// ---------------------------------------------------------------------------
// Atomic-shape detection (§IV-B single-value fast path)
// ---------------------------------------------------------------------------

namespace detail {

template <class PM>
inline constexpr bool atomic_eligible_map =
    !is_edge_map<PM> && pmap::atomic_capable<typename PM::value_type>;

/// Matches `when(target OP other, assign(target, other))` shapes where the
/// comparison justifies a CAS loop. `cmp(cur, proposed)` returns whether
/// the update should be applied against the current value.
template <class When>
struct atomic_shape : std::false_type {};

// dist(trg(e)) > candidate  →  min-update (apply when proposed < current)
template <class PM, class Idx, class R>
  requires atomic_eligible_map<PM>
struct atomic_shape<when_clause<bin_expr<op_gt, read_expr<PM, Idx>, R>,
                                assign_stmt<PM, Idx, R>>> : std::true_type {
  static bool cmp(const typename PM::value_type& cur, const typename PM::value_type& prop) {
    return prop < cur;
  }
};

// candidate < dist(trg(e))  →  min-update
template <class PM, class Idx, class L>
  requires atomic_eligible_map<PM>
struct atomic_shape<when_clause<bin_expr<op_lt, L, read_expr<PM, Idx>>,
                                assign_stmt<PM, Idx, L>>> : std::true_type {
  static bool cmp(const typename PM::value_type& cur, const typename PM::value_type& prop) {
    return prop < cur;
  }
};

// dist(x) < candidate  →  max-update (apply when proposed > current)
template <class PM, class Idx, class R>
  requires atomic_eligible_map<PM>
struct atomic_shape<when_clause<bin_expr<op_lt, read_expr<PM, Idx>, R>,
                                assign_stmt<PM, Idx, R>>> : std::true_type {
  static bool cmp(const typename PM::value_type& cur, const typename PM::value_type& prop) {
    return cur < prop;
  }
};

// candidate > dist(x)  →  max-update
template <class PM, class Idx, class L>
  requires atomic_eligible_map<PM>
struct atomic_shape<when_clause<bin_expr<op_gt, L, read_expr<PM, Idx>>,
                                assign_stmt<PM, Idx, L>>> : std::true_type {
  static bool cmp(const typename PM::value_type& cur, const typename PM::value_type& prop) {
    return cur < prop;
  }
};

// ---------------------------------------------------------------------------
// Single-locality fast shape (compiled relax kernel)
// ---------------------------------------------------------------------------

/// Strengthens atomic_shape into the shape that needs no travelling arena at
/// all: a one-when compare-and-update whose proposed value is computable
/// entirely at the invocation site. Such an action compiles to a minimal
/// relax record {destination vertex, proposed value} — the hand-written
/// AM++ SSSP/CC message of the paper's §IV-A comparison — instead of the
/// general gather_state payload.
///
/// Requirements beyond atomic_shape (all checked at compile time):
///   * the target index is not a pointer chase (its owner is computable
///     from the generator state alone);
///   * the proposed-value expression reads only at the invocation vertex;
///   * for a v-homed target the proposed value contains no reads at all —
///     otherwise those reads would be synchronized final reads and the
///     general plan would take the lock path, which the fast kernel must
///     mirror bit-for-bit.
template <class When, class Gen>
struct fast_shape : std::false_type {
  // Dummy aliases so dependent member declarations instantiate when the
  // shape does not match; every use is guarded by `if constexpr`.
  using pm_type = void;
  using idx_expr = v_expr;
  using val_expr = lit_expr<int>;
  using value_type = int;
  static constexpr bool min_update = false;
};

template <class PM, class Idx, class Gen>
inline constexpr bool fast_idx_ok =
    home_of<Idx, Gen>::kind != home_kind::chase;

template <class PM, class Idx, class Val, class Gen>
inline constexpr bool fast_val_ok =
    reads_all_at_v<Val, Gen>() &&
    (home_of<Idx, Gen>::kind == home_kind::at_gen || read_count<Val>() == 0);

// dist(trg(e)) > candidate  →  min-update
template <class PM, class Idx, class R, class Gen>
  requires (atomic_eligible_map<PM> && fast_idx_ok<PM, Idx, Gen> &&
            fast_val_ok<PM, Idx, R, Gen>)
struct fast_shape<when_clause<bin_expr<op_gt, read_expr<PM, Idx>, R>,
                              assign_stmt<PM, Idx, R>>, Gen> : std::true_type {
  using pm_type = PM;
  using idx_expr = Idx;
  using val_expr = R;
  using value_type = typename PM::value_type;
  static constexpr bool min_update = true;
  static bool cmp(const value_type& cur, const value_type& prop) { return prop < cur; }
};

// candidate < dist(trg(e))  →  min-update
template <class PM, class Idx, class L, class Gen>
  requires (atomic_eligible_map<PM> && fast_idx_ok<PM, Idx, Gen> &&
            fast_val_ok<PM, Idx, L, Gen>)
struct fast_shape<when_clause<bin_expr<op_lt, L, read_expr<PM, Idx>>,
                              assign_stmt<PM, Idx, L>>, Gen> : std::true_type {
  using pm_type = PM;
  using idx_expr = Idx;
  using val_expr = L;
  using value_type = typename PM::value_type;
  static constexpr bool min_update = true;
  static bool cmp(const value_type& cur, const value_type& prop) { return prop < cur; }
};

// dist(x) < candidate  →  max-update
template <class PM, class Idx, class R, class Gen>
  requires (atomic_eligible_map<PM> && fast_idx_ok<PM, Idx, Gen> &&
            fast_val_ok<PM, Idx, R, Gen>)
struct fast_shape<when_clause<bin_expr<op_lt, read_expr<PM, Idx>, R>,
                              assign_stmt<PM, Idx, R>>, Gen> : std::true_type {
  using pm_type = PM;
  using idx_expr = Idx;
  using val_expr = R;
  using value_type = typename PM::value_type;
  static constexpr bool min_update = false;
  static bool cmp(const value_type& cur, const value_type& prop) { return cur < prop; }
};

// candidate > dist(x)  →  max-update
template <class PM, class Idx, class L, class Gen>
  requires (atomic_eligible_map<PM> && fast_idx_ok<PM, Idx, Gen> &&
            fast_val_ok<PM, Idx, L, Gen>)
struct fast_shape<when_clause<bin_expr<op_gt, L, read_expr<PM, Idx>>,
                              assign_stmt<PM, Idx, L>>, Gen> : std::true_type {
  using pm_type = PM;
  using idx_expr = Idx;
  using val_expr = L;
  using value_type = typename PM::value_type;
  static constexpr bool min_update = false;
  static bool cmp(const value_type& cur, const value_type& prop) { return cur < prop; }
};

// ---------------------------------------------------------------------------
// Fused when compilation (statically dispatched condition/modify chains)
// ---------------------------------------------------------------------------

/// Shared state threaded through when-compilation: the (single) modification
/// locality and, per when, the property maps its modifications write.
struct compile_ctx {
  home_id ml{};
  bool have_ml = false;
  std::vector<std::vector<const void*>> written;  ///< one entry per when
};

template <class Gen, class PM, class Idx>
void note_ml(compile_ctx& cx, plan_builder<Gen>& pb, const read_expr<PM, Idx>& target) {
  const home_id h = make_home<Idx, Gen>(target.idx);
  if (!cx.have_ml) {
    cx.ml = h;
    cx.have_ml = true;
    // A chased modification locality needs the chase value gathered.
    if constexpr (home_of<Idx, Gen>::kind == home_kind::chase)
      (void)pb.register_read(target.idx);
  } else {
    DPG_ASSERT_MSG(h == cx.ml,
                   "all modifications of an action must share one locality "
                   "(the paper groups modification statements by locality; "
                   "split the action instead)");
  }
}

template <class Gen, class PM, class Idx, class Val>
auto compile_mod(plan_builder<Gen>& pb, compile_ctx& cx, assign_stmt<PM, Idx, Val>& m) {
  note_ml(cx, pb, m.target);
  cx.written.back().push_back(m.target.pm);
  auto idx_fn = pb.compile(m.target.idx);
  auto val_fn = pb.compile(m.value);
  PM* pm = m.target.pm;
  using T = typename PM::value_type;
  return [pm, idx_fn, val_fn](gather_state& s) {
    if constexpr (pmap::atomic_capable<T>) {
      // Paired with the atomic gather reads in planner.hpp so concurrent
      // handler threads never mix plain and atomic access to one slot.
      std::atomic_ref<T>((*pm)[idx_fn(s)])
          .store(static_cast<T>(val_fn(s)), std::memory_order_relaxed);
    } else {
      (*pm)[idx_fn(s)] = val_fn(s);
    }
  };
}

template <class Gen, class PM, class Idx, class F, class... Args>
auto compile_mod(plan_builder<Gen>& pb, compile_ctx& cx,
                 modify_stmt<PM, Idx, F, Args...>& m) {
  note_ml(cx, pb, m.target);
  cx.written.back().push_back(m.target.pm);
  auto idx_fn = pb.compile(m.target.idx);
  // Braced tuple init: argument compilation (and so arena layout) is
  // guaranteed left-to-right, unlike make_tuple's unsequenced arguments.
  auto arg_fns = std::apply(
      [&](auto&... as) {
        return std::tuple<decltype(pb.compile(as))...>{pb.compile(as)...};
      },
      m.args);
  PM* pm = m.target.pm;
  F fn = m.fn;
  return [pm, idx_fn, arg_fns, fn](gather_state& s) {
    std::apply([&](const auto&... afs) { fn((*pm)[idx_fn(s)], afs(s)...); }, arg_fns);
  };
}

/// One compiled when arm: a statically typed condition closure plus the
/// tuple of its modification closures — no std::function erasure, so the
/// final evaluation fuses into one inlinable chain.
template <class CondFn, class ModsTuple>
struct fused_when {
  CondFn cond;
  ModsTuple mods;
};

template <class Gen, class Cond, class... Mods>
auto compile_one_when(plan_builder<Gen>& pb, compile_ctx& cx,
                      when_clause<Cond, Mods...>& w) {
  cx.written.emplace_back();
  auto cond_fn = pb.compile(w.cond);
  auto mods = std::apply(
      [&](auto&... ms) {
        return std::tuple<decltype(compile_mod(pb, cx, ms))...>{
            compile_mod(pb, cx, ms)...};
      },
      w.mods);
  return fused_when<decltype(cond_fn), decltype(mods)>{std::move(cond_fn),
                                                       std::move(mods)};
}

template <class Gen, class... Whens>
auto compile_whens(plan_builder<Gen>& pb, compile_ctx& cx, std::tuple<Whens...>& whens) {
  return std::apply(
      [&](auto&... ws) {
        return std::tuple<decltype(compile_one_when(pb, cx, ws))...>{
            compile_one_when(pb, cx, ws)...};
      },
      whens);
}

template <class CondFn, class ModsTuple>
bool run_when(const fused_when<CondFn, ModsTuple>& w, gather_state& s) {
  if (!static_cast<bool>(w.cond(s))) return false;
  std::apply([&](const auto&... ms) { (ms(s), ...); }, w.mods);
  return true;
}

template <class Tuple, std::size_t... I>
int eval_whens_impl(const Tuple& t, gather_state& s, std::index_sequence<I...>) {
  int fired = -1;
  // if / else-if chain: the first true condition fires and ends the action.
  ((fired < 0 && run_when(std::get<I>(t), s) ? (fired = static_cast<int>(I)) : 0), ...);
  return fired;
}

/// Runs the fused if/else-if chain; returns the index of the arm that
/// fired, or -1 when no condition held.
template <class... FW>
int eval_whens(const std::tuple<FW...>& t, gather_state& s) {
  return eval_whens_impl(t, s, std::index_sequence_for<FW...>{});
}

// ---- static header needs of the final evaluation ---------------------------

template <class PM, class Idx, class Val>
constexpr unsigned mod_needs(const assign_stmt<PM, Idx, Val>*) {
  return header_needs<Idx>() | header_needs<Val>();
}
template <class PM, class Idx, class F, class... Args>
constexpr unsigned mod_needs(const modify_stmt<PM, Idx, F, Args...>*) {
  return header_needs<Idx>() | (header_needs<Args>() | ... | 0u);
}
template <class Cond, class... Mods>
constexpr unsigned when_needs(const when_clause<Cond, Mods...>*) {
  return header_needs<Cond>() |
         (mod_needs(static_cast<Mods*>(nullptr)) | ... | 0u);
}
/// Header fields (v / e / u) the conditions and modifications touch when
/// they run at the final locality. Property reads contribute nothing here —
/// their values arrive through the arena, and their index expressions are
/// charged to whichever hop performs the read.
template <class... Whens>
constexpr unsigned whens_needs() {
  return (when_needs(static_cast<Whens*>(nullptr)) | ... | 0u);
}

/// Resolves a compile_options toggle against its environment override
/// (set "0" to disable); auto_ means on unless the environment disables.
inline bool resolve_toggle(int t, const char* env) {
  if (t == 1) return false;  // toggle::off
  if (t == 2) return true;   // toggle::on
  const char* e = std::getenv(env);
  return !(e != nullptr && e[0] == '0' && e[1] == '\0');
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Compilation options
// ---------------------------------------------------------------------------

/// Per-instantiation switches over the plan compiler. The defaults engage
/// every optimization whose shape matches; tests force paths off to compare
/// results bit-for-bit. Environment overrides (checked when a toggle is
/// auto_): DPG_PATTERN_FASTPATH=0, DPG_PATTERN_COMPACT=0, and
/// DPG_PATTERN_BATCH=0 disable.
struct compile_options {
  enum class toggle : std::uint8_t { auto_, off, on };
  toggle fast_path = toggle::auto_;     ///< single-locality relax kernel
  toggle compact_wire = toggle::auto_;  ///< truncated per-hop wire payloads
  toggle batch_kernel = toggle::auto_;  ///< whole-envelope SIMD batch dispatch
  /// AM++-style sender-side combining on the fast relax lane: same-target
  /// candidates merge under the action's own monotone comparator before
  /// they reach an envelope (min for SSSP/CC/BFS shapes, max for widest
  /// path). Environment override: DPG_PATTERN_REDUCE=0.
  toggle fast_reduction = toggle::auto_;
  /// Forced ISA tier for this instantiation's batch kernels (a
  /// simd::level value); -1 follows the process-wide simd::active().
  /// Lets concurrent serving sessions run at different tiers.
  int simd_level = -1;
};

// ---------------------------------------------------------------------------
// Instantiated action implementation
// ---------------------------------------------------------------------------

template <class Gen, class... Whens>
class instantiated_action final : public action_instance {
 public:
  instantiated_action(ampp::transport& tp, const graph::distributed_graph& g,
                      pmap::lock_map& locks, action_def<Gen, Whens...> def,
                      compile_options opts = {})
      : tp_(&tp), g_(&g), locks_(&locks), gen_(def.gen) {
    name_ = std::move(def.name);
    // vector(n) constructs counters in place (atomics are not movable).
    invocations_ = std::vector<padded_counter>(tp.size());
    mods_ = std::vector<padded_counter>(tp.size());
    build(def, opts);
    register_messages();
  }

  void operator()(ampp::transport_context& ctx, graph::vertex_id v) override {
    DPG_ASSERT_MSG(g_->owner(v) == ctx.rank(), "action invoked off the owner of v");
    invocations_[ctx.rank()].n.fetch_add(1, std::memory_order_relaxed);
    if constexpr (kFastShape) {
      if (use_fast_) {
        fast_generate(ctx, v);
        return;
      }
    }
    // The generator loops iterate the graph's live ranges (base CSR segment
    // then delta overlay), so compiled plans are mutation-oblivious: edges
    // appended by apply_edges() between runs are visited with no plan
    // recompilation.
    gather_state s;
    s.v = v;
    if constexpr (std::is_same_v<Gen, out_edges_gen>) {
      for (const graph::edge_handle e : g_->out_edges(v)) {
        s.e = e;
        run_gather(ctx, 0, s);
      }
    } else if constexpr (std::is_same_v<Gen, in_edges_gen>) {
      for (const graph::edge_handle e : g_->in_edges(v)) {
        s.e = e;
        run_gather(ctx, 0, s);
      }
    } else if constexpr (std::is_same_v<Gen, adj_gen>) {
      for (const graph::vertex_id u : g_->adjacent(v)) {
        s.u = u;
        run_gather(ctx, 0, s);
      }
    } else if constexpr (is_pmap_gen<Gen>) {
      for (const graph::vertex_id u : std::as_const(*gen_.pm)[v]) {
        s.u = u;
        run_gather(ctx, 0, s);
      }
    } else {
      run_gather(ctx, 0, s);
    }
  }

 private:
  using FirstWhen = std::tuple_element_t<0, std::tuple<Whens...>>;
  using fshape = detail::fast_shape<FirstWhen, Gen>;
  /// Statically: a one-when compare-and-update whose proposed value and
  /// target owner are computable at the invocation site — compilable into
  /// the minimal relax record instead of the general gather chain.
  static constexpr bool kFastShape = sizeof...(Whens) == 1 && fshape::value;

  /// The compact fast-path payload: destination vertex + proposed value
  /// (16 bytes for SSSP/CC — the hand-written AM++ relax message).
  struct fast_rec {
    graph::vertex_id loc = graph::invalid_vertex;
    typename fshape::value_type val{};
  };

  using fused_whens_t = decltype(detail::compile_whens(
      std::declval<plan_builder<Gen>&>(), std::declval<detail::compile_ctx&>(),
      std::declval<std::tuple<Whens...>&>()));
  using fast_idx_fn_t = decltype(plan_builder<Gen>::compile_direct(
      std::declval<const typename fshape::idx_expr&>()));
  using fast_val_fn_t = decltype(plan_builder<Gen>::compile_direct_hoisted(
      std::declval<const typename fshape::val_expr&>(),
      std::declval<hoisted_reads&>()));

  // ---- plan construction --------------------------------------------------

  void build(action_def<Gen, Whens...>& def, const compile_options& opts) {
    plan_builder<Gen> pb;
    detail::compile_ctx cx;

    // Compile conditions and modifications in declaration order (the
    // paper's left-to-right, condition-by-condition analysis) into fused,
    // statically dispatched closures.
    whens_c_.emplace(detail::compile_whens(pb, cx, def.whens));

    DPG_ASSERT_MSG(cx.have_ml, "an action must contain at least one modification");
    ml_ = cx.ml;

    // CSE as the user wrote it: dedup hits so far are duplicate reads in
    // the declared conditions/modifications. (The atomic exec below
    // recompiles the first when's expressions, whose dedup hits are an
    // implementation artifact, not user-visible sharing.)
    plan_.cse_hits = pb.cse_hits();

    // A plan whose gathered reads outgrow the travelling arena is a
    // compile error of the pattern language: fail here, loudly, before any
    // message type is registered or closure run (satellite: the overflow
    // diagnostic names the action and the requirement).
    if (pb.overflow()) {
      const std::string msg =
          "pattern arena overflow compiling action '" + name_ + "': gathered reads need " +
          std::to_string(pb.arena_required()) + " bytes but gather_state::arena_bytes is " +
          std::to_string(gather_state::arena_bytes) +
          " - split the action or shrink the gathered property values";
      dpg::assert_fail("arena_required() <= gather_state::arena_bytes", __FILE__,
                       __LINE__, msg.c_str());
    }

    // Dependency detection (§IV-C): a modification of a property map the
    // action reads anywhere creates work items.
    for (std::size_t i = 0; i < cx.written.size(); ++i)
      for (const void* pm : cx.written[i])
        when_dep_[i] = when_dep_[i] || pb.reads_pmap(pm);
    for (const bool d : when_dep_) plan_.has_dependencies = plan_.has_dependencies || d;

    // Partition reads into gather hops and final (synchronized) reads,
    // recording each step's position for the wire-liveness pass below.
    constexpr std::size_t kFinal = static_cast<std::size_t>(-1);
    std::vector<std::size_t> step_pos;  // aligned with pb.steps()
    hops_.push_back(gather_hop{home_id{home_kind::at_v, nullptr,
                                       std::type_index(typeid(void))},
                               [](const gather_state& s) { return s.v; },
                               {}});
    for (auto& step : pb.steps()) {
      if (step.home == ml_ && !step.pinned) {
        final_reads_.push_back(step.perform);
        step_pos.push_back(kFinal);
        continue;
      }
      std::size_t hop_idx = hops_.size();
      for (std::size_t h = 0; h < hops_.size(); ++h)
        if (hops_[h].home == step.home) {
          hop_idx = h;
          break;
        }
      if (hop_idx == hops_.size())
        hops_.push_back(gather_hop{step.home, locality_closure(step.home, pb), {}});
      hops_[hop_idx].reads.push_back(step.perform);
      step_pos.push_back(hop_idx);
    }
    ml_locality_ = locality_closure(ml_, pb);
    merged_ = hops_.back().home == ml_;

    // §IV-B: single-value compare-and-update fast path. The shape is
    // checked statically; at runtime it additionally requires that the
    // *only* synchronized read is the updated value itself.
    if constexpr (sizeof...(Whens) == 1 && detail::atomic_shape<FirstWhen>::value) {
      build_atomic_exec(pb, std::get<0>(std::get<0>(def.whens).mods));
      // Runtime refinements: the updated value must be the *only*
      // synchronized read, and the proposed value must not read the target
      // itself (read-modify-write shapes like x[u] = x[u] + 1 need the
      // locked path, which fills the target's arena slot before use).
      if (final_reads_.size() == 1 && !value_reads_target_) atomic_ok_ = true;
    }

    // Compile the single-locality relax kernel when the shape admits it.
    if constexpr (kFastShape) {
      auto& a0 = std::get<0>(std::get<0>(def.whens).mods);
      fast_pm_ = a0.target.pm;
      fast_idx_.emplace(plan_builder<Gen>::compile_direct(a0.target.idx));
      // The proposed value hoists its v-indexed reads out of the edge loop
      // (fast_generate runs fast_hoists_ once per application) — the same
      // value economy as a hand-written relax handler. DPG_PATTERN_HOIST=0
      // pre-fills the arena budget so every read falls back to the direct
      // per-edge access (measurement escape hatch).
      fast_val_.emplace(
          plan_builder<Gen>::compile_direct_hoisted(a0.value, fast_hoists_));
      use_fast_ = detail::resolve_toggle(static_cast<int>(opts.fast_path),
                                         "DPG_PATTERN_FASTPATH");
      fast_local_ = merged_;  // v-homed target: apply in place, no message
      fast_dep_ = when_dep_[0];
      // Whole-envelope batch dispatch rides on the fast record: it needs a
      // wire message to batch (a fully local fast path has no envelopes).
      use_batch_ = use_fast_ && !fast_local_ &&
                   detail::resolve_toggle(static_cast<int>(opts.batch_kernel),
                                          "DPG_PATTERN_BATCH");
      // Sender-side combining likewise needs a wire lane to cache on, and
      // only the fast shape knows its own monotone comparator.
      use_reduce_ = use_fast_ && !fast_local_ &&
                    detail::resolve_toggle(static_cast<int>(opts.fast_reduction),
                                           "DPG_PATTERN_REDUCE");
      simd_level_ = opts.simd_level;
    }
    use_compact_ = detail::resolve_toggle(static_cast<int>(opts.compact_wire),
                                          "DPG_PATTERN_COMPACT");

    plan_.gather_hops = static_cast<int>(hops_.size());
    plan_.final_merged = merged_;
    plan_.atomic_path = atomic_ok_;
    plan_.final_reads = static_cast<int>(final_reads_.size());
    plan_.arena_bytes = pb.arena_used();
    plan_.conditions = static_cast<int>(sizeof...(Whens));
    for (const auto& h : hops_) {
      plan_.hop_localities.push_back(home_name(h.home));
      plan_.hop_reads.push_back(static_cast<int>(h.reads.size()));
    }
    plan_.final_locality = home_name(ml_);
    plan_.fast_path = use_fast_;
    plan_.batch_kernel = use_batch_;
    plan_.fast_reduction = use_reduce_;

    compute_wire_layouts(pb, step_pos, kFinal);
  }

  // ---- wire liveness (compact payload layouts) ----------------------------

  /// Header fields the destination of hop `h` needs for its address map.
  static unsigned addr_mask(const home_id& h) {
    switch (h.kind) {
      case home_kind::at_v:
        return hdr_v;
      case home_kind::at_gen:
        if constexpr (std::is_same_v<Gen, out_edges_gen>) return hdr_e_dst;
        else if constexpr (std::is_same_v<Gen, in_edges_gen>) return hdr_e_src;
        else return hdr_u;
      case home_kind::chase:
        return 0;  // destination comes from an arena slot, charged as a use
    }
    return 0;
  }

  /// Byte ranges of gather_state covering the header fields in `mask`.
  static std::vector<ampp::wire_range> mask_ranges(unsigned mask) {
    std::vector<ampp::wire_range> r;
    const auto add = [&r](std::size_t ofs, std::size_t len) {
      r.push_back(ampp::wire_range{static_cast<std::uint32_t>(ofs),
                                   static_cast<std::uint32_t>(len)});
    };
    if (mask & hdr_v) add(offsetof(gather_state, v), sizeof(graph::vertex_id));
    if (mask & hdr_e_src)
      add(offsetof(gather_state, e) + offsetof(graph::edge_handle, src),
          sizeof(graph::vertex_id));
    if (mask & hdr_e_dst)
      add(offsetof(gather_state, e) + offsetof(graph::edge_handle, dst),
          sizeof(graph::vertex_id));
    if (mask & hdr_e_id)
      add(offsetof(gather_state, e) + offsetof(graph::edge_handle, eid),
          sizeof(graph::edge_handle) - offsetof(graph::edge_handle, eid));
    if (mask & hdr_u) add(offsetof(gather_state, u), sizeof(graph::vertex_id));
    return r;
  }

  /// Computes, per synthesized message, which bytes of gather_state any
  /// later stage can still observe, and records the resulting truncated
  /// layouts (applied to the message types in register_messages). A field
  /// is live on wire w exactly when it is written at or before the sending
  /// hop and some strictly later hop (or the final evaluation) consumes it.
  void compute_wire_layouts(plan_builder<Gen>& pb,
                            const std::vector<std::size_t>& step_pos,
                            std::size_t kFinal) {
    const std::size_t H = hops_.size();
    const std::size_t final_pos = merged_ ? H - 1 : H;

    // Header-field needs per position (hops 0..H-1, then the final stage).
    std::vector<unsigned> pos_needs(H + 1, 0u);
    pos_needs[final_pos] |= detail::whens_needs<Whens...>();
    const auto& steps = pb.steps();
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const std::size_t p = step_pos[i] == kFinal ? final_pos : step_pos[i];
      pos_needs[p] |= steps[i].idx_needs;
    }
    // Address maps evaluate at the sending side: hop k's destination is
    // computed at hop k-1, the final message's at the last hop. run_final
    // itself re-derives the modification locality (lock guard, work hook).
    for (std::size_t k = 1; k < H; ++k) pos_needs[k - 1] |= addr_mask(hops_[k].home);
    if (!merged_) pos_needs[H - 1] |= addr_mask(ml_);
    pos_needs[final_pos] |= addr_mask(ml_);

    // Arena-slot liveness: write position from the performing step, last
    // consumption from the recorded slot uses.
    struct slot_live {
      std::size_t offset, size, write_pos, last_use;
    };
    std::vector<slot_live> slots;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const std::size_t p = step_pos[i] == kFinal ? final_pos : step_pos[i];
      slots.push_back(slot_live{steps[i].arena_offset, steps[i].size, p, p});
    }
    for (const slot_use& u : pb.uses()) {
      std::size_t p = final_pos;
      if (u.token >= 0) {
        const std::size_t si = pb.token_to_step(u.token);
        p = step_pos[si] == kFinal ? final_pos : step_pos[si];
      }
      for (auto& sl : slots)
        if (sl.offset == u.offset) sl.last_use = std::max(sl.last_use, p);
    }

    const std::size_t wires = (H - 1) + (merged_ ? 0 : 1);
    for (std::size_t w = 0; w < wires; ++w) {
      unsigned hdr = 0;
      for (std::size_t p = w + 1; p < pos_needs.size(); ++p) hdr |= pos_needs[p];
      std::vector<ampp::wire_range> ranges = mask_ranges(hdr);
      for (const auto& sl : slots)
        if (sl.write_pos <= w && sl.last_use > w)
          ranges.push_back(ampp::wire_range{
              static_cast<std::uint32_t>(offsetof(gather_state, arena) + sl.offset),
              static_cast<std::uint32_t>(sl.size)});
      std::sort(ranges.begin(), ranges.end(),
                [](const ampp::wire_range& a, const ampp::wire_range& b) {
                  return a.offset < b.offset;
                });
      // Coalesce contiguous ranges: fewer memcpys per payload at flush.
      std::vector<ampp::wire_range> merged;
      for (const auto& r : ranges) {
        if (!merged.empty() && merged.back().offset + merged.back().len == r.offset)
          merged.back().len += r.len;
        else
          merged.push_back(r);
      }
      wire_layouts_.push_back(std::move(merged));
    }

    // Report the bytes each message actually carries.
    if (use_fast_) {
      if (!fast_local_) plan_.wire_bytes.push_back(sizeof(fast_rec));
    } else {
      for (const auto& layout : wire_layouts_) {
        std::size_t b = 0;
        for (const auto& r : layout) b += r.len;
        plan_.wire_bytes.push_back(use_compact_ ? b : sizeof(gather_state));
      }
    }
  }

  static std::string home_name(const home_id& h) {
    switch (h.kind) {
      case home_kind::at_v: return "v";
      case home_kind::at_gen:
        if constexpr (std::is_same_v<Gen, out_edges_gen>) return "trg(e)";
        else if constexpr (std::is_same_v<Gen, in_edges_gen>) return "src(e)";
        else return "u";
      case home_kind::chase: return "chase";  // the value of a gathered vertex read
    }
    return "?";
  }

  std::function<graph::vertex_id(const gather_state&)> locality_closure(
      const home_id& h, plan_builder<Gen>& pb) {
    switch (h.kind) {
      case home_kind::at_v:
        return [](const gather_state& s) { return s.v; };
      case home_kind::at_gen:
        if constexpr (std::is_same_v<Gen, out_edges_gen>)
          return [](const gather_state& s) { return s.e.dst; };
        else if constexpr (std::is_same_v<Gen, in_edges_gen>)
          return [](const gather_state& s) { return s.e.src; };
        else if constexpr (std::is_same_v<Gen, adj_gen> || is_pmap_gen<Gen>)
          return [](const gather_state& s) { return s.u; };
        else
          DPG_ASSERT_MSG(false, "generator-homed access without a generator");
      case home_kind::chase: {
        // The chased vertex is the value of the inner read: find its slot.
        for (const auto& step : pb.steps()) {
          if (step.pmap_id == h.chase_pm && step.self_type == h.chase_type) {
            const std::size_t ofs = step.arena_offset;
            return [ofs](const gather_state& s) {
              return s.template arena_get<graph::vertex_id>(ofs);
            };
          }
        }
        DPG_ASSERT_MSG(false, "chase locality lacks its gathered index value");
      }
    }
    return {};
  }

  template <class PM, class Idx, class Val>
  void build_atomic_exec(plan_builder<Gen>& pb, assign_stmt<PM, Idx, Val>& m) {
    // Probe: does the value expression read the target access? Compile it
    // into a scratch builder and look for the (map instance, index type)
    // pair — type-level inspection cannot tell two same-typed maps apart.
    {
      plan_builder<Gen> probe;
      (void)probe.compile(m.value);
      const auto target_type = std::type_index(typeid(read_expr<PM, Idx>));
      for (const auto& st : probe.steps())
        if (st.pmap_id == m.target.pm && st.self_type == target_type)
          value_reads_target_ = true;
    }
    auto idx_fn = pb.compile(m.target.idx);
    auto val_fn = pb.compile(m.value);
    PM* pm = m.target.pm;
    atomic_exec_ = [pm, idx_fn, val_fn](gather_state& s) {
      return pmap::atomic_update_if((*pm)[idx_fn(s)], val_fn(s),
                                    [](const auto& cur, const auto& prop) {
                                      return detail::atomic_shape<FirstWhen>::cmp(cur, prop);
                                    });
    };
  }

  // ---- message registration (§IV-A, §IV-D) --------------------------------

  void register_messages() {
    const auto* g = g_;
    if constexpr (kFastShape) {
      if (use_fast_) {
        // Compiled relax kernel: one minimal message type, or none when the
        // target is the invocation vertex itself (fully local application).
        fast_label_ = name_ + ".relax";
        batch_label_ = name_ + ".relax.batch";
        if (!fast_local_) {
          fast_msg_ = &tp_->make_message_type<fast_rec>(
              name_ + ".relax",
              [this](ampp::transport_context& ctx, const fast_rec& r) {
                fast_handle(ctx, r);
              },
              [g](const fast_rec& r) { return g->owner(r.loc); });
          // Whole-envelope dispatch: the receiver hands each coalesced
          // envelope to batch_handle in one call (SIMD pre-filter + CAS
          // pass) instead of per-record fast_handle calls.
          if (use_batch_)
            fast_msg_->set_batch_handler(
                [this](ampp::transport_context& ctx, const std::byte* data,
                       std::uint32_t n) { batch_handle(ctx, data, n); });
          // Sender-side combining cache (AM++ reduction): same-target relax
          // candidates merge under the shape's own monotone comparator
          // before they reach an envelope. Sound for the same reason the
          // batch pre-filter is: the losing proposal of a monotone pair can
          // never win a CAS the surviving proposal would lose.
          if (use_reduce_)
            fast_msg_->enable_reduction(
                [](const fast_rec& r) {
                  return static_cast<std::uint64_t>(r.loc);
                },
                [](const fast_rec& a, const fast_rec& b) {
                  using VT = typename fshape::value_type;
                  bool b_wins;
                  if constexpr (fshape::min_update)
                    b_wins = b.val < a.val;
                  else
                    b_wins = a.val < b.val;
                  if constexpr (std::is_floating_point_v<VT>) {
                    // A NaN candidate never beats anything; prefer the
                    // other record so the cache stays monotone.
                    if (b.val != b.val) b_wins = false;
                    else if (a.val != a.val) b_wins = true;
                  }
                  return b_wins ? b : a;
                });
        }
        return;
      }
    }
    // Stable span labels for the plan-stage traces: one per gather hop plus
    // the final evaluate (spans copy the name, but the c_str must live
    // until the span constructor returns).
    for (std::size_t k = 0; k < hops_.size(); ++k)
      hop_labels_.push_back(name_ + ".hop" + std::to_string(k));
    final_label_ = name_ + ".eval";
    for (std::size_t k = 1; k < hops_.size(); ++k) {
      auto loc = hops_[k].locality;
      hop_msgs_.push_back(&tp_->make_message_type<gather_state>(
          name_ + ".gather" + std::to_string(k),
          [this, k](ampp::transport_context& ctx, const gather_state& s) {
            gather_state copy = s;
            run_gather(ctx, k, copy);
          },
          // Auto-generated address map: extract the destination vertex from
          // the payload, ask the graph for its owner (§IV-D).
          [g, loc](const gather_state& s) { return g->owner(loc(s)); }));
      if (use_compact_ && !wire_layouts_[k - 1].empty())
        hop_msgs_.back()->set_wire_layout(wire_layouts_[k - 1]);
    }
    if (!merged_) {
      auto loc = ml_locality_;
      final_msg_ = &tp_->make_message_type<gather_state>(
          name_ + ".eval",
          [this](ampp::transport_context& ctx, const gather_state& s) {
            gather_state copy = s;
            run_final(ctx, copy);
          },
          [g, loc](const gather_state& s) { return g->owner(loc(s)); });
      if (use_compact_ && !wire_layouts_.back().empty())
        final_msg_->set_wire_layout(wire_layouts_.back());
    }
  }

  // ---- execution -----------------------------------------------------------

  /// Fast-path generator loop: evaluates destination and proposed value
  /// directly from the generator state — no arena, no gather chain. Like
  /// the arena path, iterates base + overlay ranges, so the fast kernel is
  /// equally mutation-oblivious.
  void fast_generate(ampp::transport_context& ctx, graph::vertex_id v) {
    if constexpr (kFastShape) {
      gather_state s;
      s.v = v;
      fast_hoists_.run(s);  // v-homed reads: once per application, not per edge
      if constexpr (std::is_same_v<Gen, out_edges_gen>) {
        for (const graph::edge_handle e : g_->out_edges(v)) {
          s.e = e;
          fast_apply(ctx, s);
        }
      } else if constexpr (std::is_same_v<Gen, in_edges_gen>) {
        for (const graph::edge_handle e : g_->in_edges(v)) {
          s.e = e;
          fast_apply(ctx, s);
        }
      } else if constexpr (std::is_same_v<Gen, adj_gen>) {
        for (const graph::vertex_id u : g_->adjacent(v)) {
          s.u = u;
          fast_apply(ctx, s);
        }
      } else if constexpr (is_pmap_gen<Gen>) {
        for (const graph::vertex_id u : std::as_const(*gen_.pm)[v]) {
          s.u = u;
          fast_apply(ctx, s);
        }
      } else {
        fast_apply(ctx, s);
      }
    }
  }

  void fast_apply(ampp::transport_context& ctx, const gather_state& s) {
    if constexpr (kFastShape) {
      fast_rec r;
      r.loc = (*fast_idx_)(s);
      r.val = static_cast<typename fshape::value_type>((*fast_val_)(s));
      if (fast_local_)
        fast_handle(ctx, r);  // target is v itself: apply in place
      else
        // Explicit destination: same routing as the registered address map
        // (§IV-D), minus its type-erased call — this loop is the hot path.
        fast_msg_->send(ctx, g_->owner(r.loc), r);
    }
  }

  void fast_handle(ampp::transport_context& ctx, const fast_rec& r) {
    if constexpr (kFastShape) {
      obs::trace_span sp(&tp_->obs().trace(), "plan", fast_label_.c_str(), ctx.rank());
      fast_commit(ctx, r.loc, r.val);
    }
  }

  /// CAS + modification accounting + work hook for one relax record — the
  /// shared tail of the per-record and batch paths.
  void fast_commit(ampp::transport_context& ctx, graph::vertex_id loc,
                   typename fshape::value_type val) {
    if constexpr (kFastShape) {
      DPG_DEBUG_ASSERT(g_->owner(loc) == ctx.rank());
      fast_commit_slot(ctx, loc, (*fast_pm_)[loc], val);
    }
  }

  /// fast_commit against an already-resolved shard slot — the batch kernel
  /// resolves the shard once per envelope instead of paying the checked
  /// owner-sync property access for every record.
  void fast_commit_slot(ampp::transport_context& ctx, graph::vertex_id loc,
                        typename fshape::value_type& slot,
                        typename fshape::value_type val) {
    if constexpr (kFastShape) {
      const bool applied = pmap::atomic_update_if(
          slot, val,
          [](const auto& cur, const auto& prop) { return fshape::cmp(cur, prop); });
      if (applied) {
        mods_[ctx.rank()].n.fetch_add(1, std::memory_order_relaxed);
        if (fast_dep_ && hook_) hook_(ctx, loc);
      }
    }
  }

  /// Per-thread SoA scratch for batch_handle. thread_local: concurrent
  /// transports' handler threads never share one (the serving layer's
  /// cross-session isolation), and the busy flag downgrades a re-entrant
  /// dispatch on the same thread to the per-record path instead of
  /// clobbering a live batch.
  struct batch_scratch {
    std::vector<std::uint64_t> loc, val, cur;
    std::vector<std::uint8_t> mask;
    bool busy = false;
    void resize(std::size_t n) {
      loc.resize(n);
      val.resize(n);
      cur.resize(n);
      mask.resize(n);
    }
  };
  static batch_scratch& scratch() {
    thread_local batch_scratch s;
    return s;
  }

  /// Envelope-batch kernel: deinterleaves a whole envelope's fast records
  /// into struct-of-arrays scratch, snapshots the current property values,
  /// runs the vectorized compare pre-filter at the selected ISA tier, and
  /// CASes only the surviving candidates. Exact by construction: a lane
  /// the filter rejects is sound to skip because the fast shape moves the
  /// slot monotonically (min keeps shrinking / max keeps growing, so a
  /// proposal that lost against a stale snapshot also loses against every
  /// later value — the same stable-predicate contract atomic_update_if
  /// documents), and every survivor is re-validated by the identical CAS
  /// loop the per-record path runs. Final pmap state, modification counts,
  /// and hook firings are therefore bit-identical to per-record dispatch
  /// at every tier, duplicate targets within one envelope included.
  void batch_handle(ampp::transport_context& ctx, const std::byte* data,
                    std::uint32_t n) {
    if constexpr (kFastShape) {
      if (n == 0) return;
      obs::trace_span sp(&tp_->obs().trace(), "plan", batch_label_.c_str(), ctx.rank());
      auto& core = tp_->obs().core();
      core.batch_kernels_run.fetch_add(1, std::memory_order_relaxed);
      core.batch_records.fetch_add(n, std::memory_order_relaxed);
      using VT = typename fshape::value_type;
      constexpr bool k16 = sizeof(fast_rec) == 16 && sizeof(VT) == 8 &&
                           sizeof(graph::vertex_id) == 8;
      constexpr bool kF64 = std::is_same_v<VT, double>;
      constexpr bool kU64 =
          std::is_integral_v<VT> && std::is_unsigned_v<VT> && sizeof(VT) == 8;
      if constexpr (k16 && (kF64 || kU64)) {
        batch_scratch& sc = scratch();
        if (!sc.busy) {
          sc.busy = true;
          sc.resize(n);
          const simd::level lvl = simd_level_ >= 0
                                      ? static_cast<simd::level>(simd_level_)
                                      : simd::active();
          const simd::kernel_table& kt = simd::kernels(lvl);
          kt.deinterleave2_u64(data, n, sc.loc.data(), sc.val.data());
          // Shard-local addressing, hoisted: every record in the envelope is
          // owned by this rank (send routing guarantees it), so one local()
          // resolution replaces the checked owner-sync property access per
          // record — the record loop indexes a flat slab like hand-written
          // relax handlers do.
          const std::span<VT> shard = fast_pm_->local(ctx.rank());
          const graph::distribution& dd = g_->dist();
          for (std::uint32_t i = 0; i < n; ++i) {
            const auto loc = static_cast<graph::vertex_id>(sc.loc[i]);
            DPG_DEBUG_ASSERT(g_->owner(loc) == ctx.rank());
            // Relaxed atomic snapshot, like the gather reads elsewhere: the
            // pre-filter tolerates staleness, the CAS below does not.
            const VT cur = std::atomic_ref<VT>(shard[dd.local_index(loc)])
                               .load(std::memory_order_relaxed);
            sc.cur[i] = std::bit_cast<std::uint64_t>(cur);
          }
          std::size_t hits;
          if constexpr (kF64)
            hits = fshape::min_update
                       ? kt.filter_lt_f64(sc.val.data(), sc.cur.data(), n,
                                          sc.mask.data())
                       : kt.filter_gt_f64(sc.val.data(), sc.cur.data(), n,
                                          sc.mask.data());
          else
            hits = fshape::min_update
                       ? kt.filter_lt_u64(sc.val.data(), sc.cur.data(), n,
                                          sc.mask.data())
                       : kt.filter_gt_u64(sc.val.data(), sc.cur.data(), n,
                                          sc.mask.data());
          if (hits != 0)
            for (std::uint32_t i = 0; i < n; ++i)
              if (sc.mask[i]) {
                const auto loc = static_cast<graph::vertex_id>(sc.loc[i]);
                fast_commit_slot(ctx, loc, shard[dd.local_index(loc)],
                                 std::bit_cast<VT>(sc.val[i]));
              }
          sc.busy = false;
          return;
        }
      }
      // Value types without a SIMD filter, or a re-entrant dispatch while
      // the scratch is live up-stack: per-record semantics, one call.
      for (std::uint32_t i = 0; i < n; ++i) {
        fast_rec r;
        std::memcpy(&r, data + i * sizeof(fast_rec), sizeof(fast_rec));
        fast_commit(ctx, r.loc, r.val);
      }
    }
  }

  void run_gather(ampp::transport_context& ctx, std::size_t k, gather_state& s) {
    obs::trace_span sp(&tp_->obs().trace(), "plan", hop_labels_[k].c_str(), ctx.rank());
    for (const auto& read : hops_[k].reads) read(s);
    if (k + 1 < hops_.size()) {
      hop_msgs_[k]->send(ctx, s);  // hop_msgs_[k] targets hop k+1
      return;
    }
    if (merged_)
      run_final(ctx, s);
    else
      final_msg_->send(ctx, s);
  }

  void run_final(ampp::transport_context& ctx, gather_state& s) {
    obs::trace_span sp(&tp_->obs().trace(), "plan", final_label_.c_str(), ctx.rank());
    const graph::vertex_id mlv = ml_locality_(s);
    DPG_DEBUG_ASSERT(g_->owner(mlv) == ctx.rank());

    bool fired_dependency = false;
    if (atomic_ok_) {
      if (atomic_exec_(s)) {
        mods_[ctx.rank()].n.fetch_add(1, std::memory_order_relaxed);
        fired_dependency = when_dep_[0];
      }
    } else {
      int fired = -1;
      {
        auto guard = locks_->guard(mlv);
        for (const auto& read : final_reads_) read(s);
        fired = detail::eval_whens(*whens_c_, s);
      }
      if (fired >= 0) {
        mods_[ctx.rank()].n.fetch_add(1, std::memory_order_relaxed);
        fired_dependency = when_dep_[static_cast<std::size_t>(fired)];
      }
    }
    // The hook runs outside the lock: it typically re-invokes the action
    // (fixed_point) or inserts into a bucket structure (Δ-stepping).
    if (fired_dependency && hook_) hook_(ctx, mlv);
  }

  ampp::transport* tp_;
  const graph::distributed_graph* g_;
  pmap::lock_map* locks_;
  Gen gen_;

  std::optional<fused_whens_t> whens_c_;  ///< fused, statically typed arms
  std::array<bool, sizeof...(Whens)> when_dep_{};  ///< per-arm: firing makes work
  std::vector<gather_hop> hops_;
  std::vector<std::function<void(gather_state&)>> final_reads_;
  std::function<graph::vertex_id(const gather_state&)> ml_locality_;
  home_id ml_{};
  bool merged_ = false;
  bool atomic_ok_ = false;
  bool value_reads_target_ = false;
  std::function<bool(gather_state&)> atomic_exec_;

  // Single-locality fast path (engaged when kFastShape and not disabled).
  typename fshape::pm_type* fast_pm_ = nullptr;
  std::optional<fast_idx_fn_t> fast_idx_;
  std::optional<fast_val_fn_t> fast_val_;
  ampp::message_type<fast_rec>* fast_msg_ = nullptr;
  hoisted_reads fast_hoists_;  ///< per-application invariant loads for fast_val_
  std::string fast_label_;
  std::string batch_label_;  ///< plan-span name of the envelope-batch kernel
  bool use_fast_ = false;
  bool fast_local_ = false;
  bool fast_dep_ = false;
  bool use_batch_ = false;  ///< whole-envelope SIMD dispatch installed
  bool use_reduce_ = false; ///< sender-side combining cache on the relax lane
  int simd_level_ = -1;     ///< forced ISA tier; -1 follows simd::active()

  bool use_compact_ = false;
  /// Truncated layouts per wire: gather wires in hop order, then the
  /// evaluate wire when the final stage is not merged.
  std::vector<std::vector<ampp::wire_range>> wire_layouts_;

  std::vector<ampp::message_type<gather_state>*> hop_msgs_;
  ampp::message_type<gather_state>* final_msg_ = nullptr;
  std::vector<std::string> hop_labels_;  ///< plan-span names, one per hop
  std::string final_label_;              ///< plan-span name of the final stage
};

inline std::string explain(const std::string& action_name, const plan_info& p) {
  std::string out;
  out += "action " + action_name + ":\n";
  for (std::size_t k = 0; k < p.hop_localities.size(); ++k) {
    out += "  hop " + std::to_string(k) + " at " + p.hop_localities[k];
    out += k == 0 ? " (invocation site)" : " (gather message)";
    out += ": " + std::to_string(p.hop_reads[k]) + " read(s)\n";
  }
  out += "  final at " + p.final_locality;
  if (p.final_merged)
    out += " (merged into the last gather hop)";
  else
    out += " (evaluate+modify message)";
  out += ": " + std::to_string(p.final_reads) + " synchronized read(s), " +
         std::to_string(p.conditions) + " condition(s)\n";
  out += std::string("  synchronization: ") +
         (p.atomic_path ? "atomic compare-and-update" : "lock map") + "\n";
  out += "  dependencies: " + std::string(p.has_dependencies ? "yes (work hook fires)"
                                                             : "none") + "\n";
  out += "  messages per application: " + std::to_string(p.messages_per_application()) +
         ", payload arena: " + std::to_string(p.arena_bytes) + " bytes\n";
  out += "  compiled wire payloads:";
  if (p.wire_bytes.empty()) {
    out += " none (fully local)";
  } else {
    for (std::size_t i = 0; i < p.wire_bytes.size(); ++i) {
      std::string label;
      if (p.fast_path)
        label = "relax";
      else if (!p.final_merged && i + 1 == p.wire_bytes.size())
        label = "eval";
      else
        label = "gather" + std::to_string(i + 1);
      out += " " + label + "=" + std::to_string(p.wire_bytes[i]) + "B";
    }
  }
  out += " (full gather_state = " + std::to_string(sizeof(gather_state)) + "B)\n";
  out += "  gather read CSE: " + std::to_string(p.cse_hits) + " shared slot(s)\n";
  out += std::string("  fast path: ") +
         (p.fast_path ? "compiled single-locality relax kernel" : "off") + "\n";
  out += std::string("  batch kernel: ") +
         (p.batch_kernel ? "whole-envelope SIMD relax (runtime ISA dispatch)"
                         : "off") +
         "\n";
  out += std::string("  sender reduction: ") +
         (p.fast_reduction ? "combining cache on the relax lane" : "off") +
         "\n";
  return out;
}

/// Instantiates an action definition: performs the locality analysis and
/// registers the synthesized message types with the transport. Must be
/// called before transport::run; the returned object must outlive all runs
/// that use it.
template <class Gen, class... Whens>
std::unique_ptr<instantiated_action<Gen, Whens...>> instantiate(
    ampp::transport& tp, const graph::distributed_graph& g, pmap::lock_map& locks,
    action_def<Gen, Whens...> def, compile_options opts = {}) {
  return std::make_unique<instantiated_action<Gen, Whens...>>(tp, g, locks,
                                                              std::move(def), opts);
}

}  // namespace dpg::pattern
