// The grammar's top-level construct (§III): "A pattern is a collection of
// vertex and edge property maps and of actions that can operate on these
// property maps."
//
// In this embedding, property maps are ordinary C++ objects and actions are
// instantiated separately, so `pattern_set` is an ownership-and-naming
// container: it keeps the instantiated actions alive (strategies hold
// references into it), gives them the `using pattern X; X.action` feel of
// the paper's pseudocode, and can render the whole pattern's synthesized
// communication (explain_all) for inspection.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "pattern/action.hpp"

namespace dpg::pattern {

class pattern_set {
 public:
  explicit pattern_set(std::string name) : name_(std::move(name)) {}

  pattern_set(const pattern_set&) = delete;
  pattern_set& operator=(const pattern_set&) = delete;
  pattern_set(pattern_set&&) = default;
  pattern_set& operator=(pattern_set&&) = default;

  /// Registers an instantiated action under its own name; returns it for
  /// immediate use. Duplicate names are an error.
  action_instance& add(std::unique_ptr<action_instance> a) {
    DPG_ASSERT_MSG(a != nullptr, "cannot add a null action");
    auto [it, fresh] = actions_.emplace(a->name(), std::move(a));
    DPG_ASSERT_MSG(fresh, "duplicate action name in pattern");
    return *it->second;
  }

  /// Access by action name (asserts existence — pattern names are static
  /// program structure, not user input).
  action_instance& operator[](const std::string& action_name) {
    auto it = actions_.find(action_name);
    DPG_ASSERT_MSG(it != actions_.end(), "unknown action in pattern");
    return *it->second;
  }
  const action_instance& operator[](const std::string& action_name) const {
    auto it = actions_.find(action_name);
    DPG_ASSERT_MSG(it != actions_.end(), "unknown action in pattern");
    return *it->second;
  }

  bool contains(const std::string& action_name) const {
    return actions_.count(action_name) != 0;
  }
  std::size_t size() const { return actions_.size(); }
  const std::string& name() const { return name_; }

  /// The synthesized communication of every action, rendered as text.
  std::string explain_all() const {
    std::string out = "pattern " + name_ + " (" + std::to_string(actions_.size()) +
                      " action(s)):\n";
    for (const auto& [n, a] : actions_) out += explain(n, a->plan());
    return out;
  }

  auto begin() const { return actions_.begin(); }
  auto end() const { return actions_.end(); }

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<action_instance>> actions_;
};

}  // namespace dpg::pattern
