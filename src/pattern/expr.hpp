// The pattern expression language (§III of the paper), embedded in C++20
// as expression templates.
//
// Grammar correspondence:
//   (pattern)   ::= property maps + actions          -> pattern.hpp
//   (action)    ::= name(vertex v) generator? conditions  -> action.hpp
//   (generator) ::= name in out_edges|in_edges|adj|pmap   -> action.hpp
//   (condition) ::= if (expr involving pmaps) { modifications }  -> when(...)
//   expressions  ::= arbitrary side-effect-free C++       -> this file
//
// Terminals:
//   v_   the action's input vertex (paper: "every action starts at some
//        vertex, named v")
//   e_   the generated edge (when the generator yields edges)
//   u_   the generated vertex (when the generator yields vertices)
//   src(x), trg(x)  endpoint selectors on edge-valued expressions
//   lit(c)          literal constant
//   property(pm)(x) property-map read (built by property wrappers)
//
// "Aliases" from the paper's grammar need no machinery here: naming an
// expression is just binding it to a C++ variable ("using an alias is the
// same as pasting in the expression it stands for").
#pragma once

#include <concepts>
#include <cstddef>
#include <cstring>
#include <cstdint>
#include <type_traits>

#include "graph/ids.hpp"
#include "pmap/edge_map.hpp"
#include "pmap/vertex_map.hpp"

namespace dpg::pattern {

using graph::edge_handle;
using graph::vertex_id;

/// Runtime evaluation state threaded through the gather-message chain: the
/// action's input vertex, the generated edge/vertex, and an arena of
/// gathered property values (filled hop by hop; see planner.hpp). The
/// struct is trivially copyable — it *is* the message payload.
struct gather_state {
  static constexpr std::size_t arena_bytes = 48;

  vertex_id v = graph::invalid_vertex;
  edge_handle e{};
  vertex_id u = graph::invalid_vertex;
  alignas(8) std::byte arena[arena_bytes] = {};

  template <class T>
  T arena_get(std::size_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    std::memcpy(&out, arena + offset, sizeof(T));
    return out;
  }
  template <class T>
  void arena_put(std::size_t offset, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(arena + offset, &value, sizeof(T));
  }
};
static_assert(std::is_trivially_copyable_v<gather_state>);

// ---------------------------------------------------------------------------
// AST nodes
// ---------------------------------------------------------------------------

struct expr_base {};

template <class E>
concept is_expr = std::derived_from<std::remove_cvref_t<E>, expr_base>;

struct v_expr : expr_base {};
struct e_expr : expr_base {};
struct u_expr : expr_base {};

template <is_expr E>
struct src_expr : expr_base {
  E inner;
};
template <is_expr E>
struct trg_expr : expr_base {
  E inner;
};

template <class T>
struct lit_expr : expr_base {
  T value;
};

/// Property-map read: PM is vertex_property_map<T> or edge_property_map<T>,
/// Idx an expression yielding a vertex or an edge respectively.
template <class PM, is_expr Idx>
struct read_expr : expr_base {
  PM* pm;
  Idx idx;
};

// Binary / unary operator tags.
struct op_add {}; struct op_sub {}; struct op_mul {}; struct op_div {};
struct op_lt {};  struct op_gt {};  struct op_le {};  struct op_ge {};
struct op_eq {};  struct op_ne {};  struct op_and {}; struct op_or {};
struct op_min {}; struct op_max {};
struct op_not {};

template <class Op, is_expr L, is_expr R>
struct bin_expr : expr_base {
  L lhs;
  R rhs;
};
template <class Op, is_expr X>
struct un_expr : expr_base {
  X inner;
};

// ---------------------------------------------------------------------------
// Value types of expressions
// ---------------------------------------------------------------------------

template <class E>
struct value_type_of;

template <> struct value_type_of<v_expr> { using type = vertex_id; };
template <> struct value_type_of<u_expr> { using type = vertex_id; };
template <> struct value_type_of<e_expr> { using type = edge_handle; };
template <class E> struct value_type_of<src_expr<E>> { using type = vertex_id; };
template <class E> struct value_type_of<trg_expr<E>> { using type = vertex_id; };
template <class T> struct value_type_of<lit_expr<T>> { using type = T; };
template <class PM, class I> struct value_type_of<read_expr<PM, I>> {
  using type = typename PM::value_type;
};

namespace detail {
template <class Op, class L, class R>
struct bin_result {
  using type = std::common_type_t<L, R>;
};
template <class L, class R> struct bin_result<op_lt, L, R> { using type = bool; };
template <class L, class R> struct bin_result<op_gt, L, R> { using type = bool; };
template <class L, class R> struct bin_result<op_le, L, R> { using type = bool; };
template <class L, class R> struct bin_result<op_ge, L, R> { using type = bool; };
template <class L, class R> struct bin_result<op_eq, L, R> { using type = bool; };
template <class L, class R> struct bin_result<op_ne, L, R> { using type = bool; };
template <class L, class R> struct bin_result<op_and, L, R> { using type = bool; };
template <class L, class R> struct bin_result<op_or, L, R> { using type = bool; };
}  // namespace detail

template <class Op, class L, class R>
struct value_type_of<bin_expr<Op, L, R>> {
  using type = typename detail::bin_result<Op, typename value_type_of<L>::type,
                                           typename value_type_of<R>::type>::type;
};
template <class X>
struct value_type_of<un_expr<op_not, X>> {
  using type = bool;
};

template <class E>
using value_t = typename value_type_of<std::remove_cvref_t<E>>::type;

// ---------------------------------------------------------------------------
// Node traits (shared by the planner's compilers and the wire-layout pass)
// ---------------------------------------------------------------------------

namespace detail {
template <class E> struct is_src_expr : std::false_type {};
template <class X> struct is_src_expr<src_expr<X>> : std::true_type { using inner = X; };
template <class E> struct is_trg_expr : std::false_type {};
template <class X> struct is_trg_expr<trg_expr<X>> : std::true_type { using inner = X; };
template <class E> struct is_lit_expr : std::false_type {};
template <class T> struct is_lit_expr<lit_expr<T>> : std::true_type {};
template <class E> struct is_read_expr : std::false_type {};
template <class PM, class I> struct is_read_expr<read_expr<PM, I>> : std::true_type {
  using pm_type = PM;
  using idx_type = I;
};
template <class E> struct is_bin_expr : std::false_type {};
template <class Op, class L, class R> struct is_bin_expr<bin_expr<Op, L, R>> : std::true_type {
  using op_type = Op;
  using lhs_type = L;
  using rhs_type = R;
};
template <class E> struct is_not_expr : std::false_type {};
template <class X> struct is_not_expr<un_expr<op_not, X>> : std::true_type { using inner = X; };
}  // namespace detail

// ---------------------------------------------------------------------------
// Static liveness analysis over the gather_state header
// ---------------------------------------------------------------------------

/// Bitmask over the fixed (non-arena) fields of gather_state. `src`/`dst`
/// of the generated edge are tracked separately from the full handle: an
/// expression that only takes an endpoint does not keep eid/mirror_slot
/// alive on the wire, but an edge-map read (indexed by the whole handle)
/// does.
inline constexpr unsigned hdr_v = 1u << 0;
inline constexpr unsigned hdr_e_src = 1u << 1;
inline constexpr unsigned hdr_e_dst = 1u << 2;
inline constexpr unsigned hdr_e_id = 1u << 3;  ///< eid + mirror_slot
inline constexpr unsigned hdr_u = 1u << 4;
inline constexpr unsigned hdr_e_full = hdr_e_src | hdr_e_dst | hdr_e_id;

/// Header fields needed to *evaluate* E once every property read resolves
/// to its arena slot. Reads contribute nothing here — their index needs are
/// charged to the hop that performs the read (see plan_builder).
template <class Expr>
constexpr unsigned header_needs() {
  using E = std::remove_cvref_t<Expr>;
  if constexpr (std::is_same_v<E, v_expr>) {
    return hdr_v;
  } else if constexpr (std::is_same_v<E, e_expr>) {
    return hdr_e_full;
  } else if constexpr (std::is_same_v<E, u_expr>) {
    return hdr_u;
  } else if constexpr (detail::is_src_expr<E>::value) {
    if constexpr (std::is_same_v<typename detail::is_src_expr<E>::inner, e_expr>)
      return hdr_e_src;
    else
      return header_needs<typename detail::is_src_expr<E>::inner>();
  } else if constexpr (detail::is_trg_expr<E>::value) {
    if constexpr (std::is_same_v<typename detail::is_trg_expr<E>::inner, e_expr>)
      return hdr_e_dst;
    else
      return header_needs<typename detail::is_trg_expr<E>::inner>();
  } else if constexpr (detail::is_lit_expr<E>::value || detail::is_read_expr<E>::value) {
    return 0u;
  } else if constexpr (detail::is_bin_expr<E>::value) {
    return header_needs<typename detail::is_bin_expr<E>::lhs_type>() |
           header_needs<typename detail::is_bin_expr<E>::rhs_type>();
  } else if constexpr (detail::is_not_expr<E>::value) {
    return header_needs<typename detail::is_not_expr<E>::inner>();
  } else {
    return 0u;
  }
}

/// Number of property reads anywhere in E (nested index expressions
/// included).
template <class Expr>
constexpr int read_count() {
  using E = std::remove_cvref_t<Expr>;
  if constexpr (detail::is_read_expr<E>::value) {
    return 1 + read_count<typename detail::is_read_expr<E>::idx_type>();
  } else if constexpr (detail::is_src_expr<E>::value) {
    return read_count<typename detail::is_src_expr<E>::inner>();
  } else if constexpr (detail::is_trg_expr<E>::value) {
    return read_count<typename detail::is_trg_expr<E>::inner>();
  } else if constexpr (detail::is_bin_expr<E>::value) {
    return read_count<typename detail::is_bin_expr<E>::lhs_type>() +
           read_count<typename detail::is_bin_expr<E>::rhs_type>();
  } else if constexpr (detail::is_not_expr<E>::value) {
    return read_count<typename detail::is_not_expr<E>::inner>();
  } else {
    return 0;
  }
}

template <class E>
concept vertex_expr = is_expr<E> && std::same_as<value_t<E>, vertex_id>;
template <class E>
concept edge_expr = is_expr<E> && std::same_as<value_t<E>, edge_handle>;

// ---------------------------------------------------------------------------
// DSL surface
// ---------------------------------------------------------------------------

inline constexpr v_expr v_{};
inline constexpr e_expr e_{};
inline constexpr u_expr u_{};

template <edge_expr E>
constexpr auto src(E e) {
  return src_expr<E>{{}, e};
}
template <edge_expr E>
constexpr auto trg(E e) {
  return trg_expr<E>{{}, e};
}

template <class T>
constexpr auto lit(T value) {
  return lit_expr<T>{{}, value};
}

/// Wraps a non-expression operand (a plain number, a vertex id) as a
/// literal; passes expressions through.
template <class X>
constexpr auto as_expr(X&& x) {
  if constexpr (is_expr<X>)
    return std::forward<X>(x);
  else
    return lit(std::remove_cvref_t<X>(std::forward<X>(x)));
}

/// DSL handle for a property map: `property pm(dist); pm(v_)` builds a read.
/// The paper declares property maps in the pattern header (§III-B); here
/// binding the map into the DSL *is* the declaration.
template <class PM>
class property {
 public:
  explicit property(PM& pm) : pm_(&pm) {}

  template <is_expr Idx>
  auto operator()(Idx idx) const {
    return read_expr<PM, Idx>{{}, pm_, idx};
  }

  PM& map() const { return *pm_; }

 private:
  PM* pm_;
};

// Operator overloads, constrained so they never capture unrelated types.
#define DPG_DEFINE_BINOP(sym, tag)                                        \
  template <class L, class R>                                             \
    requires(is_expr<L> || is_expr<R>)                                    \
  constexpr auto operator sym(L l, R r) {                                 \
    auto le = as_expr(l);                                                 \
    auto re = as_expr(r);                                                 \
    return bin_expr<tag, decltype(le), decltype(re)>{{}, le, re};         \
  }

DPG_DEFINE_BINOP(+, op_add)
DPG_DEFINE_BINOP(-, op_sub)
DPG_DEFINE_BINOP(*, op_mul)
DPG_DEFINE_BINOP(/, op_div)
DPG_DEFINE_BINOP(<, op_lt)
DPG_DEFINE_BINOP(>, op_gt)
DPG_DEFINE_BINOP(<=, op_le)
DPG_DEFINE_BINOP(>=, op_ge)
DPG_DEFINE_BINOP(==, op_eq)
DPG_DEFINE_BINOP(!=, op_ne)
DPG_DEFINE_BINOP(&&, op_and)
DPG_DEFINE_BINOP(||, op_or)
#undef DPG_DEFINE_BINOP

template <class L, class R>
  requires(is_expr<L> || is_expr<R>)
constexpr auto min_(L l, R r) {
  auto le = as_expr(l);
  auto re = as_expr(r);
  return bin_expr<op_min, decltype(le), decltype(re)>{{}, le, re};
}
template <class L, class R>
  requires(is_expr<L> || is_expr<R>)
constexpr auto max_(L l, R r) {
  auto le = as_expr(l);
  auto re = as_expr(r);
  return bin_expr<op_max, decltype(le), decltype(re)>{{}, le, re};
}
template <is_expr X>
constexpr auto operator!(X x) {
  return un_expr<op_not, X>{{}, x};
}

/// Applies a binary operator tag to concrete values.
template <class Op, class L, class R>
constexpr auto apply_op(const L& l, const R& r) {
  if constexpr (std::is_same_v<Op, op_add>) return l + r;
  else if constexpr (std::is_same_v<Op, op_sub>) return l - r;
  else if constexpr (std::is_same_v<Op, op_mul>) return l * r;
  else if constexpr (std::is_same_v<Op, op_div>) return l / r;
  else if constexpr (std::is_same_v<Op, op_lt>) return l < r;
  else if constexpr (std::is_same_v<Op, op_gt>) return l > r;
  else if constexpr (std::is_same_v<Op, op_le>) return l <= r;
  else if constexpr (std::is_same_v<Op, op_ge>) return l >= r;
  else if constexpr (std::is_same_v<Op, op_eq>) return l == r;
  else if constexpr (std::is_same_v<Op, op_ne>) return l != r;
  else if constexpr (std::is_same_v<Op, op_and>) return l && r;
  else if constexpr (std::is_same_v<Op, op_or>) return l || r;
  else if constexpr (std::is_same_v<Op, op_min>) {
    using C = std::common_type_t<L, R>;
    return C(l) < C(r) ? C(l) : C(r);
  } else if constexpr (std::is_same_v<Op, op_max>) {
    using C = std::common_type_t<L, R>;
    return C(l) < C(r) ? C(r) : C(l);
  }
}

}  // namespace dpg::pattern
