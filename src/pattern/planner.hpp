// Locality analysis and communication planning (§IV-A of the paper).
//
// Definition 1 (Locality): the locality of the input vertex v, the
// generated edge e, and the generated vertex u is v; the locality of a
// property access p(x) is x for vertex x, or the locality of x for edge x;
// trg/src have the locality of their edge.
//
// Definition 2 (Dependency graph): an edge (l1, l2) between values when l1
// is the locality of l2. Gather messages traverse this graph depth-first,
// accumulating values in the payload; the final evaluate message runs the
// condition — merged with the modification when their localities coincide
// (the Fig. 6 one-message SSSP case).
//
// In this implementation localities are *compile-time classified* into
//   at_v    — the action's input vertex (hop 0; the invocation site)
//   at_gen  — the far endpoint of the generated edge / generated vertex
//   chase   — the *value* of a vertex-valued property read (pointer chase,
//             e.g. chg(pnt(v)) in the CC pointer-jumping action)
// and the hop chain is built per action at instantiation time. Every
// property read is assigned an arena slot in the travelling gather_state;
// evaluators are composed lambdas reading only (v, e, u, arena), so the
// final evaluation is a pure function of the gathered payload, exactly as
// in the paper's message model.
#pragma once

#include <atomic>
#include <functional>
#include <typeindex>
#include <utility>
#include <vector>

#include "pattern/expr.hpp"
#include "pmap/lock_map.hpp"
#include "util/assert.hpp"

namespace dpg::pattern {

// ---------------------------------------------------------------------------
// Generator kinds (§III-C: zero or one generator per action)
// ---------------------------------------------------------------------------

struct no_generator {};
struct out_edges_gen {};
struct in_edges_gen {};
struct adj_gen {};
/// Set-valued generator: iterates the vertices stored in pm[v] (the
/// grammar's pmap-access set expression). PM's value_type must be a range
/// of vertex_id.
template <class PM>
struct pmap_gen {
  PM* pm;
};

template <class G>
inline constexpr bool is_pmap_gen = false;
template <class PM>
inline constexpr bool is_pmap_gen<pmap_gen<PM>> = true;

template <class G>
concept generator_kind =
    std::same_as<G, no_generator> || std::same_as<G, out_edges_gen> ||
    std::same_as<G, in_edges_gen> || std::same_as<G, adj_gen> || is_pmap_gen<G>;

// ---------------------------------------------------------------------------
// Homes (runtime identity of a locality class)
// ---------------------------------------------------------------------------

enum class home_kind : std::uint8_t { at_v, at_gen, chase };

/// Runtime identity of a locality: chases are distinguished by the property
/// map instance and the static type of the full read expression that
/// produces the chased vertex value.
struct home_id {
  home_kind kind = home_kind::at_v;
  const void* chase_pm = nullptr;
  std::type_index chase_type = std::type_index(typeid(void));

  friend bool operator==(const home_id&, const home_id&) = default;
};

/// Compile-time locality classification of an index expression under a
/// given generator kind. Mirrors Definition 1 plus the normalizations
/// src(e) == v for out-edges and trg(e) == v for in-edges (those endpoint
/// reads are local to the invocation site by the storage model of §III-A).
template <class Idx, class Gen>
struct home_of;

template <class Gen>
struct home_of<v_expr, Gen> {
  static constexpr home_kind kind = home_kind::at_v;
};
// The generated edge e itself has locality v (Definition 1), so edge
// property reads indexed by e_ are resolved at the invocation site (via
// the mirror copy for in-edge generators; see edge_map.hpp).
template <class Gen>
struct home_of<e_expr, Gen> {
  static constexpr home_kind kind = home_kind::at_v;
};
template <class Gen>
struct home_of<u_expr, Gen> {
  static constexpr home_kind kind = home_kind::at_gen;
};
template <>
struct home_of<src_expr<e_expr>, out_edges_gen> {
  static constexpr home_kind kind = home_kind::at_v;
};
template <>
struct home_of<trg_expr<e_expr>, out_edges_gen> {
  static constexpr home_kind kind = home_kind::at_gen;
};
template <>
struct home_of<src_expr<e_expr>, in_edges_gen> {
  static constexpr home_kind kind = home_kind::at_gen;
};
template <>
struct home_of<trg_expr<e_expr>, in_edges_gen> {
  static constexpr home_kind kind = home_kind::at_v;
};
// Pointer chase: the index is itself a property read yielding a vertex.
// One level of chasing is supported (the paper's own patterns use one);
// the chased read must be resolvable at the invocation site.
template <class PM, class Inner, class Gen>
  requires std::same_as<typename PM::value_type, vertex_id>
struct home_of<read_expr<PM, Inner>, Gen> {
  static_assert(home_of<Inner, Gen>::kind == home_kind::at_v,
                "pointer-chase indices must be readable at the input vertex "
                "(one level of chasing, per the paper's single-generator rule)");
  static constexpr home_kind kind = home_kind::chase;
};

/// Builds the runtime home id for an index expression type.
template <class Idx, class Gen>
home_id make_home(const Idx& idx) {
  home_id h;
  h.kind = home_of<Idx, Gen>::kind;
  if constexpr (home_of<Idx, Gen>::kind == home_kind::chase) {
    h.chase_pm = idx.pm;
    h.chase_type = std::type_index(typeid(Idx));
  }
  return h;
}

// ---------------------------------------------------------------------------
// Plan structures
// ---------------------------------------------------------------------------

/// One gather read: performed on the rank owning its home locality; loads a
/// property value into the travelling arena.
struct read_step {
  home_id home;
  bool pinned = false;  ///< must be gathered early even if homed at the
                        ///< modification locality (it feeds a chase index)
  std::size_t arena_offset = 0;
  std::size_t size = 0;       ///< bytes the value occupies in the arena
  unsigned idx_needs = 0;     ///< header fields the index expression touches
  const void* pmap_id = nullptr;
  std::type_index self_type = std::type_index(typeid(void));  ///< read_expr type
  std::function<void(gather_state&)> perform;
};

/// One recorded consumption of an arena slot: which compiled expression
/// context reads it. `token` identifies the read step whose index
/// expression consumed the slot, or -1 when the consumer is the final
/// condition/modification evaluation. The wire-layout pass drops a slot
/// from every hop transition past its last consumer.
struct slot_use {
  std::size_t offset = 0;
  int token = -1;
};

/// One gather hop of the synthesized communication (a node of the pruned
/// depth-first traversal of the dependency graph).
struct gather_hop {
  home_id home;
  std::function<vertex_id(const gather_state&)> locality;
  std::vector<std::function<void(gather_state&)>> reads;
};

// ---------------------------------------------------------------------------
// Expression compiler
// ---------------------------------------------------------------------------

namespace detail {
template <class PM>
inline constexpr bool is_edge_map = false;
template <class T>
inline constexpr bool is_edge_map<pmap::edge_property_map<T>> = true;
}  // namespace detail

/// Loop-invariant reads hoisted out of the fast-path generator loop. The
/// recorded closures load v-homed property values into the arena once per
/// action application, so the per-edge kernel evaluation reads a stack
/// slot instead of repeating the sharded (and, for atomic-capable values,
/// atomic) property-map access for every generated edge — the same value
/// economy as a hand-written relax handler, which computes its source
/// value once and carries it through the edge loop. Freshness is
/// unaffected in spirit: property reads are freshness-relaxed anyway (see
/// read_step::perform), and any concurrent improvement of a hoisted value
/// re-triggers the action through the dependency work hook.
struct hoisted_reads {
  std::vector<std::function<void(gather_state&)>> loads;
  std::size_t arena_used = 0;
  /// One entry per hoisted (map, slot) pair: repeated reads of the same
  /// v-indexed map share a slot (the fast-path analogue of gather CSE).
  std::vector<std::pair<const void*, std::size_t>> slots;

  void run(gather_state& s) const {
    for (const auto& f : loads) f(s);
  }
};

/// Accumulates read steps and arena layout while compiling the expressions
/// of one action. The Gen parameter fixes the generator kind so locality
/// classification is purely type-level.
template <class Gen>
class plan_builder {
 public:
  /// Compiles an expression into a callable (const gather_state&) ->
  /// value_t<Expr>, registering every property read it contains.
  template <class Expr>
  auto compile(const Expr& ex) {
    using E = std::remove_cvref_t<Expr>;
    if constexpr (std::is_same_v<E, v_expr>) {
      return [](const gather_state& s) { return s.v; };
    } else if constexpr (std::is_same_v<E, e_expr>) {
      return [](const gather_state& s) { return s.e; };
    } else if constexpr (std::is_same_v<E, u_expr>) {
      return [](const gather_state& s) { return s.u; };
    } else if constexpr (is_src<E>::value) {
      auto f = compile(ex.inner);
      return [f](const gather_state& s) { return f(s).src; };
    } else if constexpr (is_trg<E>::value) {
      auto f = compile(ex.inner);
      return [f](const gather_state& s) { return f(s).dst; };
    } else if constexpr (is_lit<E>::value) {
      auto val = ex.value;
      return [val](const gather_state&) { return val; };
    } else if constexpr (is_read<E>::value) {
      return compile_read(ex);
    } else if constexpr (is_bin<E>::value) {
      auto l = compile(ex.lhs);
      auto r = compile(ex.rhs);
      using Op = typename is_bin<E>::op_type;
      return [l, r](const gather_state& s) { return apply_op<Op>(l(s), r(s)); };
    } else if constexpr (is_not<E>::value) {
      auto f = compile(ex.inner);
      return [f](const gather_state& s) { return !f(s); };
    } else {
      static_assert(sizeof(E) == 0, "unsupported expression node");
    }
  }

  /// Registers (or dedups) the read for `ex` and returns its arena slot.
  /// Also used for modification targets' condition-synchronized reads.
  /// Every call records a slot use in the current consumption context, so
  /// a dedup hit (CSE) still extends the slot's wire lifetime.
  template <class PM, class Idx>
  std::size_t register_read(const read_expr<PM, Idx>& ex) {
    const dedup_key key{static_cast<const void*>(ex.pm), std::type_index(typeid(ex))};
    for (const auto& [k, entry] : dedup_)
      if (k == key) {
        ++cse_hits_;
        uses_.push_back(slot_use{entry.offset, use_ctx_});
        return entry.offset;
      }

    using T = typename PM::value_type;
    static_assert(std::is_trivially_copyable_v<T>,
                  "property values read by a pattern travel in messages and "
                  "must be trivially copyable");
    const std::size_t ofs = allocate(sizeof(T), alignof(T));
    uses_.push_back(slot_use{ofs, use_ctx_});
    // The index expression evaluates where this read executes: reads (and
    // header fields) it touches are consumed by *this* step, not by the
    // final evaluation. Tokens resolve to step indices once the step is
    // pushed (nested chase reads push theirs first).
    const int token = static_cast<int>(token_step_.size());
    token_step_.push_back(static_cast<std::size_t>(-1));
    const int saved_ctx = use_ctx_;
    use_ctx_ = token;
    auto idx_fn = compile(ex.idx);
    use_ctx_ = saved_ctx;
    PM* pm = ex.pm;

    read_step step;
    step.home = make_home<Idx, Gen>(ex.idx);
    step.arena_offset = ofs;
    step.size = sizeof(T);
    step.idx_needs = header_needs<Idx>();
    step.pmap_id = pm;
    step.self_type = std::type_index(typeid(ex));
    step.perform = [pm, idx_fn, ofs](gather_state& s) {
      if constexpr (detail::is_edge_map<PM>) {
        s.arena_put(ofs, pm->read(idx_fn(s)));
      } else if constexpr (pmap::atomic_capable<T>) {
        // Handlers may run on dedicated threads concurrently with writers
        // (§IV-B's atomic path): read through an atomic_ref so the access
        // is well-defined. The paper gives no cross-vertex read guarantee,
        // and neither do we — this is freshness-relaxed, not synchronized.
        T& slot = const_cast<T&>(std::as_const(*pm)[idx_fn(s)]);
        s.arena_put(ofs, std::atomic_ref<T>(slot).load(std::memory_order_relaxed));
      } else {
        s.arena_put(ofs, std::as_const(*pm)[idx_fn(s)]);
      }
    };
    // A chase read needs its index value gathered strictly earlier: pin the
    // inner read(s) so they are never deferred to the final hop.
    if constexpr (home_of<Idx, Gen>::kind == home_kind::chase) pin_reads_of(ex.idx);

    const std::size_t step_index = steps_.size();
    token_step_[static_cast<std::size_t>(token)] = step_index;
    steps_.push_back(std::move(step));
    dedup_.emplace_back(key, dedup_entry{ofs, step_index});
    return ofs;
  }

  /// Compiles an expression into a callable that reads property maps
  /// *directly* — no arena, no read registration. Only valid when every
  /// read it contains resolves at the evaluation site (the single-locality
  /// fast path guarantees this by construction). Uses the same access
  /// discipline as the registered read steps: mirror-aware reads for edge
  /// maps, relaxed atomic loads for atomic-capable values.
  template <class Expr>
  static auto compile_direct(const Expr& ex) {
    using E = std::remove_cvref_t<Expr>;
    if constexpr (std::is_same_v<E, v_expr>) {
      return [](const gather_state& s) { return s.v; };
    } else if constexpr (std::is_same_v<E, e_expr>) {
      return [](const gather_state& s) { return s.e; };
    } else if constexpr (std::is_same_v<E, u_expr>) {
      return [](const gather_state& s) { return s.u; };
    } else if constexpr (pattern::detail::is_src_expr<E>::value) {
      auto f = compile_direct(ex.inner);
      return [f](const gather_state& s) { return f(s).src; };
    } else if constexpr (pattern::detail::is_trg_expr<E>::value) {
      auto f = compile_direct(ex.inner);
      return [f](const gather_state& s) { return f(s).dst; };
    } else if constexpr (pattern::detail::is_lit_expr<E>::value) {
      auto val = ex.value;
      return [val](const gather_state&) { return val; };
    } else if constexpr (pattern::detail::is_read_expr<E>::value) {
      using PM = typename pattern::detail::is_read_expr<E>::pm_type;
      using T = typename PM::value_type;
      auto idx_fn = compile_direct(ex.idx);
      PM* pm = ex.pm;
      return [pm, idx_fn](const gather_state& s) {
        if constexpr (detail::is_edge_map<PM>) {
          return pm->read(idx_fn(s));
        } else if constexpr (pmap::atomic_capable<T>) {
          T& slot = const_cast<T&>(std::as_const(*pm)[idx_fn(s)]);
          return std::atomic_ref<T>(slot).load(std::memory_order_relaxed);
        } else {
          return std::as_const(*pm)[idx_fn(s)];
        }
      };
    } else if constexpr (pattern::detail::is_bin_expr<E>::value) {
      auto l = compile_direct(ex.lhs);
      auto r = compile_direct(ex.rhs);
      using Op = typename pattern::detail::is_bin_expr<E>::op_type;
      return [l, r](const gather_state& s) { return apply_op<Op>(l(s), r(s)); };
    } else if constexpr (pattern::detail::is_not_expr<E>::value) {
      auto f = compile_direct(ex.inner);
      return [f](const gather_state& s) { return !f(s); };
    } else {
      static_assert(sizeof(E) == 0, "unsupported expression node");
    }
  }

  /// compile_direct with loop-invariant hoisting: reads indexed by the
  /// invocation vertex itself load into the arena once per application
  /// (recorded in `h`) and evaluate as a branchless stack-slot fetch per
  /// edge; all other nodes compile exactly as compile_direct. Hoisted
  /// reads always fit: they are a subset of the registered gather reads,
  /// and build() aborts on arena overflow before any fast compile runs.
  template <class Expr>
  static auto compile_direct_hoisted(const Expr& ex, hoisted_reads& h) {
    using E = std::remove_cvref_t<Expr>;
    if constexpr (pattern::detail::is_read_expr<E>::value) {
      using PM = typename pattern::detail::is_read_expr<E>::pm_type;
      using T = typename PM::value_type;
      if constexpr (std::is_same_v<std::remove_cvref_t<decltype(ex.idx)>, v_expr> &&
                    !detail::is_edge_map<PM>) {
        PM* pm = ex.pm;
        std::size_t ofs = gather_state::arena_bytes;
        for (const auto& [id, slot] : h.slots)
          if (id == pm) ofs = slot;
        if (ofs == gather_state::arena_bytes) {
          DPG_ASSERT_MSG(h.arena_used + sizeof(T) <= gather_state::arena_bytes,
                         "hoisted reads exceed the gather arena");
          ofs = h.arena_used;
          h.arena_used += sizeof(T);
          h.slots.emplace_back(pm, ofs);
          h.loads.push_back([pm, ofs](gather_state& s) {
            if constexpr (pmap::atomic_capable<T>) {
              T& slot = const_cast<T&>(std::as_const(*pm)[s.v]);
              s.arena_put(ofs,
                          std::atomic_ref<T>(slot).load(std::memory_order_relaxed));
            } else {
              s.arena_put(ofs, std::as_const(*pm)[s.v]);
            }
          });
        }
        return [ofs](const gather_state& s) { return s.template arena_get<T>(ofs); };
      } else {
        return compile_direct(ex);
      }
    } else if constexpr (pattern::detail::is_bin_expr<E>::value) {
      auto l = compile_direct_hoisted(ex.lhs, h);
      auto r = compile_direct_hoisted(ex.rhs, h);
      using Op = typename pattern::detail::is_bin_expr<E>::op_type;
      return [l, r](const gather_state& s) { return apply_op<Op>(l(s), r(s)); };
    } else if constexpr (pattern::detail::is_not_expr<E>::value) {
      auto f = compile_direct_hoisted(ex.inner, h);
      return [f](const gather_state& s) { return !f(s); };
    } else {
      return compile_direct(ex);
    }
  }

  const std::vector<read_step>& steps() const { return steps_; }
  std::vector<read_step>& steps() { return steps_; }
  std::size_t arena_used() const { return arena_used_; }

  /// Duplicate reads eliminated by the (map instance, read type) dedup —
  /// each hit shares an already-allocated arena slot.
  std::size_t cse_hits() const { return cse_hits_; }
  /// Did the registered reads outgrow gather_state::arena_bytes? Checked by
  /// instantiated_action::build, which aborts with a diagnostic naming the
  /// action; the compiled closures are never run past an overflow.
  bool overflow() const { return arena_required_ > gather_state::arena_bytes; }
  std::size_t arena_required() const { return arena_required_; }

  /// Recorded slot consumptions (for the wire-liveness pass).
  const std::vector<slot_use>& uses() const { return uses_; }
  /// Resolves a slot_use token to the index of the consuming read step.
  std::size_t token_to_step(int token) const {
    return token_step_[static_cast<std::size_t>(token)];
  }

  /// Was property map `pm` read anywhere in the compiled expressions?
  /// (Dependency detection, §IV-C.)
  bool reads_pmap(const void* pm) const {
    for (const auto& s : steps_)
      if (s.pmap_id == pm) return true;
    return false;
  }

 private:
  template <class E> struct is_src : std::false_type {};
  template <class E> struct is_src<src_expr<E>> : std::true_type {};
  template <class E> struct is_trg : std::false_type {};
  template <class E> struct is_trg<trg_expr<E>> : std::true_type {};
  template <class E> struct is_lit : std::false_type {};
  template <class T> struct is_lit<lit_expr<T>> : std::true_type {};
  template <class E> struct is_read : std::false_type {};
  template <class PM, class I> struct is_read<read_expr<PM, I>> : std::true_type {};
  template <class E> struct is_bin : std::false_type {};
  template <class Op, class L, class R> struct is_bin<bin_expr<Op, L, R>> : std::true_type {
    using op_type = Op;
  };
  template <class E> struct is_not : std::false_type {};
  template <class X> struct is_not<un_expr<op_not, X>> : std::true_type {};

  template <class PM, class Idx>
  auto compile_read(const read_expr<PM, Idx>& ex) {
    using T = typename PM::value_type;
    const std::size_t ofs = register_read(ex);
    return [ofs](const gather_state& s) { return s.template arena_get<T>(ofs); };
  }

  std::size_t allocate(std::size_t size, std::size_t align) {
    arena_used_ = (arena_used_ + align - 1) & ~(align - 1);
    const std::size_t ofs = arena_used_;
    arena_used_ += size;
    // Overflow is recorded, not fatal here: the action's build pass checks
    // overflow() once compilation finishes and fails with a diagnostic that
    // can name the action and the total requirement. The perform closures
    // capturing an out-of-bounds offset are never executed — build aborts
    // before the action is registered.
    arena_required_ = arena_used_ > arena_required_ ? arena_used_ : arena_required_;
    return ofs;
  }

  template <class Idx>
  void pin_reads_of(const Idx& idx) {
    // The chased index is itself a read (one level): find and pin it.
    const dedup_key key{static_cast<const void*>(idx.pm), std::type_index(typeid(idx))};
    for (auto& [k, entry] : dedup_)
      if (k == key) {
        steps_[entry.step_index].pinned = true;
        return;
      }
    DPG_ASSERT_MSG(false, "chase inner read not registered before outer");
  }

  struct dedup_key {
    const void* pm;
    std::type_index type;
    friend bool operator==(const dedup_key&, const dedup_key&) = default;
  };
  struct dedup_entry {
    std::size_t offset;
    std::size_t step_index;
  };

  std::vector<std::pair<dedup_key, dedup_entry>> dedup_;
  std::vector<read_step> steps_;
  std::size_t arena_used_ = 0;
  std::size_t arena_required_ = 0;
  std::size_t cse_hits_ = 0;
  std::vector<slot_use> uses_;
  std::vector<std::size_t> token_step_;  ///< token -> index into steps_
  int use_ctx_ = -1;  ///< current consumption context (-1: final evaluation)
};

/// True when every property read anywhere in Expr (nested index
/// expressions included) is homed at the invocation vertex — the
/// value-expression precondition of the single-locality fast path: such an
/// expression evaluates completely at hop 0 without an arena.
template <class Expr, class Gen>
constexpr bool reads_all_at_v() {
  using E = std::remove_cvref_t<Expr>;
  if constexpr (detail::is_read_expr<E>::value) {
    using Idx = typename detail::is_read_expr<E>::idx_type;
    return home_of<Idx, Gen>::kind == home_kind::at_v && reads_all_at_v<Idx, Gen>();
  } else if constexpr (detail::is_src_expr<E>::value) {
    return reads_all_at_v<typename detail::is_src_expr<E>::inner, Gen>();
  } else if constexpr (detail::is_trg_expr<E>::value) {
    return reads_all_at_v<typename detail::is_trg_expr<E>::inner, Gen>();
  } else if constexpr (detail::is_bin_expr<E>::value) {
    return reads_all_at_v<typename detail::is_bin_expr<E>::lhs_type, Gen>() &&
           reads_all_at_v<typename detail::is_bin_expr<E>::rhs_type, Gen>();
  } else if constexpr (detail::is_not_expr<E>::value) {
    return reads_all_at_v<typename detail::is_not_expr<E>::inner, Gen>();
  } else {
    return true;
  }
}

}  // namespace dpg::pattern
