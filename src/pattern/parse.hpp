// A concrete textual front-end for the pattern grammar of §III — the
// paper's own declared future work: "we plan to implement a translator for
// patterns that will at least generate AM++ messaging code".
//
// This module parses pattern source text, performs the full semantic
// analysis of §IV (locality classification, hop planning, merging, the
// synchronization choice, dependency detection — the same algorithm the
// EDSL instantiation runs, reimplemented over a runtime AST), and reports
// the synthesized communication as a plan. What it does NOT do is emit
// C++: in a library setting the EDSL *is* the executable form; the parser
// serves as the specification checker / translator front half, and its
// plans are byte-for-byte comparable with the EDSL's `plan_info`.
//
// Concrete syntax (the paper's figures set the shape; the tokens here make
// it parseable):
//
//   pattern SSSP {
//     vertex_property<double> dist;
//     edge_property<double> weight;
//
//     action relax(v) {
//       generator e : out_edges;
//       alias d = dist[v] + weight[e];
//       when (dist[trg(e)] > d) {
//         dist[trg(e)] = d;
//       }
//     }
//   }
//
// Generators: `out_edges`, `in_edges`, `adj` (binding a vertex name), or a
// vertex-set property map (`generator u : preds;`). Aliases substitute
// textually-by-AST, exactly like the paper ("using an alias is the same as
// pasting in the expression"). Conditions chain as if / else-if. A
// modification is either an assignment `pmap[idx] = expr;` or an opaque
// in-place call `pmap[idx].update(args...);` (the grammar's general
// modification — the method name is not interpreted).
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dpg::pattern::text {

/// Thrown on lexical, syntactic, or semantic errors; carries a 1-based
/// line number and a message.
class parse_error : public std::runtime_error {
 public:
  parse_error(int line, const std::string& msg)
      : std::runtime_error("line " + std::to_string(line) + ": " + msg), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

/// Value kinds the analyzer reasons about (all scalar kinds are 8 bytes in
/// the plan's arena estimate).
enum class value_kind { boolean, integer, real, vertex, edge, opaque };

struct expr;
using expr_ptr = std::shared_ptr<const expr>;

struct expr {
  enum class node {
    input_vertex,   // v
    gen_edge,       // the generator-bound edge name
    gen_vertex,     // the generator-bound vertex name (adj / pmap set)
    src_of,         // src(edge-expr)
    trg_of,         // trg(edge-expr)
    pmap_read,      // name[index-expr]
    literal,        // number / true / false / infinity
    binary,         // op lhs rhs
    unary_not,
  };

  node kind;
  int line = 0;
  // pmap_read:
  std::string pmap;
  // literal:
  std::string literal_text;
  // binary:
  std::string op;  // one of + - * / < > <= >= == != && ||
  std::vector<expr_ptr> children;
};

struct modification {
  bool is_assignment = true;  // false: opaque .method(args) update
  expr_ptr target;            // always a pmap_read
  std::string method;         // for opaque updates
  std::vector<expr_ptr> arguments;  // assignment: exactly the RHS
  int line = 0;
};

struct condition {
  expr_ptr guard;
  std::vector<modification> mods;
  int line = 0;
};

enum class generator_type { none, out_edges, in_edges, adjacent, pmap_set };

struct parsed_action {
  std::string name;
  std::string vertex_param;           // the input vertex's name
  generator_type gen = generator_type::none;
  std::string gen_binding;            // the bound edge/vertex name
  std::string gen_pmap;               // for pmap_set generators
  std::vector<std::pair<std::string, expr_ptr>> aliases;
  std::vector<condition> conditions;
  int line = 0;
};

struct parsed_property {
  std::string name;
  bool on_vertices = true;  // vertex_property vs edge_property
  value_kind type = value_kind::real;
  std::string type_text;
  int line = 0;
};

struct parsed_pattern {
  std::string name;
  std::vector<parsed_property> properties;
  std::vector<parsed_action> actions;
};

/// Parses one `pattern` declaration. Throws parse_error.
parsed_pattern parse_pattern(std::string_view source);

// ---------------------------------------------------------------------------
// Analysis (the §IV translation, over the textual AST)
// ---------------------------------------------------------------------------

/// The communication plan for one parsed action, mirroring
/// pattern::plan_info for the EDSL (field-for-field comparable).
struct analyzed_action {
  std::string name;
  int gather_hops = 0;
  bool final_merged = false;
  bool atomic_path = false;
  int final_reads = 0;
  std::size_t arena_bytes = 0;
  int conditions = 0;
  bool has_dependencies = false;
  std::vector<std::string> hop_localities;
  std::vector<int> hop_reads;
  std::string final_locality;
  bool fast_path = false;           ///< single-locality relax kernel engaged
  bool batch_kernel = false;        ///< whole-envelope SIMD batch dispatch engaged
  bool fast_reduction = false;      ///< sender-side combining cache engaged
  std::size_t cse_hits = 0;         ///< duplicate reads sharing one arena slot
  std::vector<std::size_t> wire_bytes;  ///< bytes per synthesized message

  int messages_per_application() const {
    return (gather_hops - 1) + (final_merged ? 0 : 1);
  }
};

struct analyzed_pattern {
  std::string name;
  std::vector<analyzed_action> actions;
};

/// Runs semantic checks + locality/hop analysis on every action. Throws
/// parse_error on semantic violations (unknown property map, edge-indexed
/// vertex map, two generators' worth of fan-out, modifications at
/// different localities, unsupported chase depth, ...).
analyzed_pattern analyze(const parsed_pattern& p);

/// Renders an analyzed action exactly like pattern::explain does for
/// instantiated EDSL actions.
std::string explain(const analyzed_action& a);

/// Convenience: parse + analyze + explain everything.
std::string explain_source(std::string_view source);

}  // namespace dpg::pattern::text
