#include "pattern/parse.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <set>

#include "pattern/action.hpp"  // plan_info + explain formatting
#include "util/assert.hpp"

namespace dpg::pattern::text {

// ===========================================================================
// Lexer
// ===========================================================================

namespace {

struct token {
  enum class type { ident, number, punct, end };
  type kind = type::end;
  std::string text;
  int line = 1;
};

class lexer {
 public:
  explicit lexer(std::string_view src) : src_(src) { advance(); }

  const token& peek() const { return current_; }

  token next() {
    token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw parse_error(current_.line, msg + " (near '" +
                                         (current_.kind == token::type::end
                                              ? std::string("<end>")
                                              : current_.text) +
                                         "')");
  }

 private:
  void advance() {
    skip_ws_and_comments();
    current_.line = line_;
    if (pos_ >= src_.size()) {
      current_ = token{token::type::end, "", line_};
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_'))
        ++pos_;
      current_ = token{token::type::ident, std::string(src_.substr(start, pos_ - start)),
                       line_};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < src_.size() && (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
                                    src_[pos_] == '.' || src_[pos_] == 'e' ||
                                    src_[pos_] == 'E' ||
                                    ((src_[pos_] == '+' || src_[pos_] == '-') && pos_ > start &&
                                     (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E'))))
        ++pos_;
      current_ = token{token::type::number, std::string(src_.substr(start, pos_ - start)),
                       line_};
      return;
    }
    // Multi-character punctuation first.
    static const char* two[] = {"<=", ">=", "==", "!=", "&&", "||"};
    for (const char* p : two) {
      if (src_.substr(pos_, 2) == p) {
        current_ = token{token::type::punct, p, line_};
        pos_ += 2;
        return;
      }
    }
    current_ = token{token::type::punct, std::string(1, c), line_};
    ++pos_;
  }

  void skip_ws_and_comments() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  token current_;
};

// ===========================================================================
// Parser
// ===========================================================================

class parser {
 public:
  explicit parser(std::string_view src) : lx_(src) {}

  parsed_pattern parse() {
    expect_ident("pattern");
    parsed_pattern out;
    out.name = expect(token::type::ident).text;
    expect_punct("{");
    while (!peek_punct("}")) {
      const token& t = lx_.peek();
      if (t.kind != token::type::ident) lx_.fail("expected a property or action");
      if (t.text == "vertex_property" || t.text == "edge_property")
        out.properties.push_back(parse_property());
      else if (t.text == "action")
        out.actions.push_back(parse_action(out));
      else
        lx_.fail("expected 'vertex_property', 'edge_property', or 'action'");
    }
    expect_punct("}");
    if (out.actions.empty()) throw parse_error(1, "a pattern needs at least one action");
    return out;
  }

 private:
  // ---- declarations -------------------------------------------------------

  parsed_property parse_property() {
    parsed_property p;
    p.line = lx_.peek().line;
    p.on_vertices = expect(token::type::ident).text == "vertex_property";
    expect_punct("<");
    while (!peek_punct(">")) {
      if (lx_.peek().kind == token::type::end) lx_.fail("unterminated property type");
      if (!p.type_text.empty()) p.type_text += ' ';
      p.type_text += lx_.next().text;
    }
    expect_punct(">");
    p.type = classify_type(p.type_text);
    p.name = expect(token::type::ident).text;
    expect_punct(";");
    return p;
  }

  static value_kind classify_type(const std::string& t) {
    if (t == "double" || t == "float") return value_kind::real;
    if (t == "bool") return value_kind::boolean;
    if (t == "vertex") return value_kind::vertex;
    if (t.find("int") != std::string::npos || t == "unsigned" || t == "size_t")
      return value_kind::integer;
    return value_kind::opaque;
  }

  // ---- actions ------------------------------------------------------------

  struct scope {
    const parsed_pattern* pat;
    const parsed_action* act;
    std::map<std::string, expr_ptr> aliases;

    const parsed_property* find_pmap(const std::string& name) const {
      for (const auto& p : pat->properties)
        if (p.name == name) return &p;
      return nullptr;
    }
  };

  parsed_action parse_action(const parsed_pattern& pat) {
    parsed_action act;
    act.line = lx_.peek().line;
    expect_ident("action");
    act.name = expect(token::type::ident).text;
    expect_punct("(");
    act.vertex_param = expect(token::type::ident).text;
    expect_punct(")");
    expect_punct("{");

    scope sc{&pat, &act, {}};

    if (peek_ident("generator")) {
      lx_.next();
      act.gen_binding = expect(token::type::ident).text;
      expect_punct(":");
      const token src_tok = expect(token::type::ident);
      if (src_tok.text == "out_edges")
        act.gen = generator_type::out_edges;
      else if (src_tok.text == "in_edges")
        act.gen = generator_type::in_edges;
      else if (src_tok.text == "adj")
        act.gen = generator_type::adjacent;
      else {
        act.gen = generator_type::pmap_set;
        act.gen_pmap = src_tok.text;
        const parsed_property* pm = sc.find_pmap(act.gen_pmap);
        if (!pm)
          throw parse_error(src_tok.line,
                            "generator set '" + act.gen_pmap + "' is not a property map");
        if (!pm->on_vertices)
          throw parse_error(src_tok.line, "generator sets must be vertex properties");
      }
      expect_punct(";");
      if (peek_ident("generator")) lx_.fail("only one generator per action (§III-C)");
    }

    while (peek_ident("alias")) {
      lx_.next();
      const std::string name = expect(token::type::ident).text;
      expect_punct("=");
      expr_ptr e = parse_expr(sc);
      expect_punct(";");
      if (!sc.aliases.emplace(name, e).second)
        throw parse_error(act.line, "duplicate alias '" + name + "'");
      act.aliases.emplace_back(name, e);
    }

    while (peek_ident("when")) {
      condition c;
      c.line = lx_.peek().line;
      lx_.next();
      expect_punct("(");
      c.guard = parse_expr(sc);
      expect_punct(")");
      expect_punct("{");
      while (!peek_punct("}")) c.mods.push_back(parse_modification(sc));
      expect_punct("}");
      if (c.mods.empty())
        throw parse_error(c.line, "a condition must guard at least one modification");
      act.conditions.push_back(std::move(c));
    }
    expect_punct("}");
    if (act.conditions.empty())
      throw parse_error(act.line, "an action needs at least one condition");
    return act;
  }

  modification parse_modification(const scope& sc) {
    modification m;
    m.line = lx_.peek().line;
    const token name = expect(token::type::ident);
    const parsed_property* pm = sc.find_pmap(name.text);
    if (!pm)
      throw parse_error(name.line,
                        "modification target '" + name.text + "' is not a property map");
    expect_punct("[");
    expr_ptr idx = parse_expr(sc);
    expect_punct("]");
    auto target = std::make_shared<expr>();
    target->kind = expr::node::pmap_read;
    target->pmap = name.text;
    target->line = name.line;
    target->children = {idx};
    m.target = target;
    if (peek_punct("=")) {
      lx_.next();
      m.is_assignment = true;
      m.arguments.push_back(parse_expr(sc));
    } else if (peek_punct(".")) {
      lx_.next();
      m.is_assignment = false;
      m.method = expect(token::type::ident).text;
      expect_punct("(");
      if (!peek_punct(")")) {
        m.arguments.push_back(parse_expr(sc));
        while (peek_punct(",")) {
          lx_.next();
          m.arguments.push_back(parse_expr(sc));
        }
      }
      expect_punct(")");
    } else {
      lx_.fail("expected '=' or '.method(...)' in modification");
    }
    expect_punct(";");
    return m;
  }

  // ---- expressions (precedence climbing) ----------------------------------

  expr_ptr parse_expr(const scope& sc) { return parse_or(sc); }

  expr_ptr parse_or(const scope& sc) {
    expr_ptr lhs = parse_and(sc);
    while (peek_punct("||")) {
      const int line = lx_.next().line;
      lhs = make_bin("||", lhs, parse_and(sc), line);
    }
    return lhs;
  }
  expr_ptr parse_and(const scope& sc) {
    expr_ptr lhs = parse_eq(sc);
    while (peek_punct("&&")) {
      const int line = lx_.next().line;
      lhs = make_bin("&&", lhs, parse_eq(sc), line);
    }
    return lhs;
  }
  expr_ptr parse_eq(const scope& sc) {
    expr_ptr lhs = parse_rel(sc);
    while (peek_punct("==") || peek_punct("!=")) {
      const token op = lx_.next();
      lhs = make_bin(op.text, lhs, parse_rel(sc), op.line);
    }
    return lhs;
  }
  expr_ptr parse_rel(const scope& sc) {
    expr_ptr lhs = parse_add(sc);
    while (peek_punct("<") || peek_punct(">") || peek_punct("<=") || peek_punct(">=")) {
      const token op = lx_.next();
      lhs = make_bin(op.text, lhs, parse_add(sc), op.line);
    }
    return lhs;
  }
  expr_ptr parse_add(const scope& sc) {
    expr_ptr lhs = parse_mul(sc);
    while (peek_punct("+") || peek_punct("-")) {
      const token op = lx_.next();
      lhs = make_bin(op.text, lhs, parse_mul(sc), op.line);
    }
    return lhs;
  }
  expr_ptr parse_mul(const scope& sc) {
    expr_ptr lhs = parse_unary(sc);
    while (peek_punct("*") || peek_punct("/")) {
      const token op = lx_.next();
      lhs = make_bin(op.text, lhs, parse_unary(sc), op.line);
    }
    return lhs;
  }
  expr_ptr parse_unary(const scope& sc) {
    if (peek_punct("!")) {
      const int line = lx_.next().line;
      auto e = std::make_shared<expr>();
      e->kind = expr::node::unary_not;
      e->line = line;
      e->children = {parse_unary(sc)};
      return e;
    }
    return parse_primary(sc);
  }

  expr_ptr parse_primary(const scope& sc) {
    const token t = lx_.peek();
    if (t.kind == token::type::punct && t.text == "(") {
      lx_.next();
      expr_ptr e = parse_expr(sc);
      expect_punct(")");
      return e;
    }
    if (t.kind == token::type::number) {
      lx_.next();
      auto e = std::make_shared<expr>();
      e->kind = expr::node::literal;
      e->literal_text = t.text;
      e->line = t.line;
      return e;
    }
    if (t.kind != token::type::ident) lx_.fail("expected an expression");
    lx_.next();
    if (t.text == "true" || t.text == "false" || t.text == "infinity" ||
        t.text == "null_vertex") {
      auto e = std::make_shared<expr>();
      e->kind = expr::node::literal;
      e->literal_text = t.text;
      e->line = t.line;
      return e;
    }
    if (t.text == "src" || t.text == "trg") {
      expect_punct("(");
      expr_ptr inner = parse_expr(sc);
      expect_punct(")");
      auto e = std::make_shared<expr>();
      e->kind = t.text == "src" ? expr::node::src_of : expr::node::trg_of;
      e->line = t.line;
      e->children = {inner};
      return e;
    }
    if (t.text == "min" || t.text == "max") {
      expect_punct("(");
      expr_ptr a = parse_expr(sc);
      expect_punct(",");
      expr_ptr b = parse_expr(sc);
      expect_punct(")");
      return make_bin(t.text, a, b, t.line);
    }
    if (auto it = sc.aliases.find(t.text); it != sc.aliases.end()) return it->second;
    if (t.text == sc.act->vertex_param) {
      auto e = std::make_shared<expr>();
      e->kind = expr::node::input_vertex;
      e->line = t.line;
      return e;
    }
    if (sc.act->gen != generator_type::none && t.text == sc.act->gen_binding) {
      auto e = std::make_shared<expr>();
      e->kind = (sc.act->gen == generator_type::out_edges ||
                 sc.act->gen == generator_type::in_edges)
                    ? expr::node::gen_edge
                    : expr::node::gen_vertex;
      e->line = t.line;
      return e;
    }
    if (const parsed_property* pm = sc.find_pmap(t.text)) {
      (void)pm;
      expect_punct("[");
      expr_ptr idx = parse_expr(sc);
      expect_punct("]");
      auto e = std::make_shared<expr>();
      e->kind = expr::node::pmap_read;
      e->pmap = t.text;
      e->line = t.line;
      e->children = {idx};
      return e;
    }
    throw parse_error(t.line, "unknown identifier '" + t.text + "'");
  }

  // ---- token helpers ------------------------------------------------------

  static expr_ptr make_bin(const std::string& op, expr_ptr l, expr_ptr r, int line) {
    auto e = std::make_shared<expr>();
    e->kind = expr::node::binary;
    e->op = op;
    e->line = line;
    e->children = {l, r};
    return e;
  }

  token expect(token::type k) {
    if (lx_.peek().kind != k) lx_.fail("unexpected token");
    return lx_.next();
  }
  void expect_ident(const std::string& word) {
    if (lx_.peek().kind != token::type::ident || lx_.peek().text != word)
      lx_.fail("expected '" + word + "'");
    lx_.next();
  }
  void expect_punct(const std::string& p) {
    if (lx_.peek().kind != token::type::punct || lx_.peek().text != p)
      lx_.fail("expected '" + p + "'");
    lx_.next();
  }
  bool peek_punct(const std::string& p) const {
    return lx_.peek().kind == token::type::punct && lx_.peek().text == p;
  }
  bool peek_ident(const std::string& w) const {
    return lx_.peek().kind == token::type::ident && lx_.peek().text == w;
  }

  lexer lx_;
};

}  // namespace

parsed_pattern parse_pattern(std::string_view source) { return parser(source).parse(); }

// ===========================================================================
// Analysis
// ===========================================================================

namespace {

/// Structural print; doubles as the dedup key for reads.
std::string print(const expr& e) {
  switch (e.kind) {
    case expr::node::input_vertex: return "v";
    case expr::node::gen_edge: return "e";
    case expr::node::gen_vertex: return "u";
    case expr::node::src_of: return "src(" + print(*e.children[0]) + ")";
    case expr::node::trg_of: return "trg(" + print(*e.children[0]) + ")";
    case expr::node::pmap_read: return e.pmap + "[" + print(*e.children[0]) + "]";
    case expr::node::literal: return e.literal_text;
    case expr::node::binary:
      return "(" + print(*e.children[0]) + " " + e.op + " " + print(*e.children[1]) + ")";
    case expr::node::unary_not: return "!" + print(*e.children[0]);
  }
  return "?";
}

class analyzer {
 public:
  analyzer(const parsed_pattern& pat, const parsed_action& act) : pat_(pat), act_(act) {}

  analyzed_action run() {
    // Walk conditions in order, mirroring the EDSL instantiation.
    for (const condition& c : act_.conditions) {
      const value_kind gk = walk(*c.guard);
      if (gk != value_kind::boolean)
        throw parse_error(c.line, "condition guard must be boolean");
      for (const modification& m : c.mods) handle_mod(m);
    }
    if (!have_ml_) throw parse_error(act_.line, "action never modifies a property map");

    // Dependency detection.
    bool deps = false;
    for (const auto& wp : written_pmaps_)
      if (read_pmaps_.count(wp)) deps = true;

    // Hop partition.
    analyzed_action out;
    out.name = act_.name;
    out.conditions = static_cast<int>(act_.conditions.size());
    out.has_dependencies = deps;
    out.hop_localities.push_back("v");
    out.hop_reads.push_back(0);
    constexpr std::size_t kFinal = static_cast<std::size_t>(-1);
    std::vector<std::size_t> rpos(reads_.size(), kFinal);  // hop index or final
    for (std::size_t i = 0; i < reads_.size(); ++i) {
      const auto& r = reads_[i];
      if (r.loc == ml_ && !r.pinned) {
        ++out.final_reads;
        continue;
      }
      std::size_t hop = 0;
      bool found = false;
      for (std::size_t k = 0; k < hop_homes_.size(); ++k)
        if (hop_homes_[k] == r.loc) {
          hop = k;
          found = true;
          break;
        }
      if (!found) {
        hop_homes_.push_back(r.loc);
        out.hop_localities.push_back(home_label(r.loc));
        out.hop_reads.push_back(0);
        hop = hop_homes_.size() - 1;
      }
      ++out.hop_reads[hop];
      rpos[i] = hop;
    }
    out.gather_hops = static_cast<int>(out.hop_localities.size());
    out.final_locality = home_label(ml_);
    out.final_merged = hop_homes_.back() == ml_;
    out.arena_bytes = reads_.size() * 8;  // all travelling kinds are 8 bytes
    out.cse_hits = cse_hits_;

    // Atomic fast path: single condition, single assignment, compare shape,
    // and the only synchronized read is the target itself.
    if (act_.conditions.size() == 1 && act_.conditions[0].mods.size() == 1 &&
        act_.conditions[0].mods[0].is_assignment && out.final_reads == 1) {
      const modification& m = act_.conditions[0].mods[0];
      const expr& g = *act_.conditions[0].guard;
      if (g.kind == expr::node::binary && (g.op == "<" || g.op == ">")) {
        const std::string target = print(*m.target);
        const std::string rhs = print(*m.arguments[0]);
        const std::string gl = print(*g.children[0]);
        const std::string gr = print(*g.children[1]);
        const bool shape = (gl == target && gr == rhs) || (gr == target && gl == rhs);
        // The proposed value must not read the target itself (that read is
        // only performed by the locked path); see the EDSL's contains_read.
        const bool rmw = rhs.find(target) != std::string::npos;
        const value_kind tk = pmap_of(*m.target)->type;
        if (shape && !rmw && tk != value_kind::opaque) out.atomic_path = true;
      }
      // Single-locality fast path: the compare-and-update whose proposed
      // value and target owner are computable at the invocation site
      // compiles to the minimal relax record (mirrors detail::fast_shape).
      if (out.atomic_path) {
        const expr& tidx = *m.target->children[0];
        const home th = classify_index(tidx);
        const expr& val = *m.arguments[0];
        const bool idx_ok = th.k != home::kind::chase;
        const bool val_ok =
            reads_all_at_v(val) &&
            (th.k == home::kind::at_gen || !contains_read(val));
        if (idx_ok && val_ok && pmap_of(*m.target)->on_vertices)
          out.fast_path = pattern::detail::resolve_toggle(0, "DPG_PATTERN_FASTPATH");
        // Mirrors instantiated_action: batch dispatch rides on the fast
        // record and needs a wire message to batch (not fully local).
        out.batch_kernel = out.fast_path && !out.final_merged &&
                           pattern::detail::resolve_toggle(0, "DPG_PATTERN_BATCH");
        // ... and so does the sender-side combining cache.
        out.fast_reduction =
            out.fast_path && !out.final_merged &&
            pattern::detail::resolve_toggle(0, "DPG_PATTERN_REDUCE");
      }
    }

    compute_wire_bytes(out, rpos, kFinal);
    return out;
  }

  /// Mirrors instantiated_action::compute_wire_layouts over the textual
  /// plan: per wire, the header fields any later stage needs plus the arena
  /// slots written at or before the sender and consumed strictly after it.
  void compute_wire_bytes(analyzed_action& out, std::vector<std::size_t>& rpos,
                          std::size_t kFinal) const {
    if (out.fast_path) {
      // relax record: destination vertex + 8-byte proposed value; none at
      // all when the target is the invocation vertex itself.
      if (!out.final_merged) out.wire_bytes.push_back(16);
      return;
    }
    const bool compact = pattern::detail::resolve_toggle(0, "DPG_PATTERN_COMPACT");
    const std::size_t H = hop_homes_.size();
    const std::size_t final_pos = out.final_merged ? H - 1 : H;
    for (auto& p : rpos)
      if (p == kFinal) p = final_pos;

    std::vector<unsigned> pos_needs(H + 1, 0u);
    for (const condition& c : act_.conditions) {
      pos_needs[final_pos] |= needs(*c.guard);
      for (const modification& m : c.mods) {
        pos_needs[final_pos] |= needs(*m.target->children[0]);
        for (const auto& a : m.arguments) pos_needs[final_pos] |= needs(*a);
      }
    }
    for (std::size_t i = 0; i < reads_.size(); ++i)
      pos_needs[rpos[i]] |= reads_[i].idx_needs;
    for (std::size_t k = 1; k < H; ++k) pos_needs[k - 1] |= addr_mask(hop_homes_[k]);
    if (!out.final_merged) pos_needs[H - 1] |= addr_mask(ml_);
    pos_needs[final_pos] |= addr_mask(ml_);

    // Slot liveness: write position = performing hop, last consumption from
    // the recorded uses (empty context = final evaluation).
    std::vector<std::size_t> last_use = rpos;
    const auto pos_of_key = [&](const std::string& key) -> std::size_t {
      for (std::size_t i = 0; i < reads_.size(); ++i)
        if (reads_[i].key == key) return rpos[i];
      return final_pos;
    };
    for (const use_rec& u : uses_) {
      const std::size_t p = u.ctx.empty() ? final_pos : pos_of_key(u.ctx);
      for (std::size_t i = 0; i < reads_.size(); ++i)
        if (reads_[i].key == u.key) last_use[i] = std::max(last_use[i], p);
    }

    const auto hdr_bytes = [](unsigned m) {
      std::size_t b = 0;
      if (m & hdr_v) b += 8;
      if (m & hdr_e_src) b += 8;
      if (m & hdr_e_dst) b += 8;
      if (m & hdr_e_id) b += 16;  // edge id + mirror slot
      if (m & hdr_u) b += 8;
      return b;
    };
    const std::size_t wires = (H - 1) + (out.final_merged ? 0 : 1);
    for (std::size_t w = 0; w < wires; ++w) {
      if (!compact) {
        out.wire_bytes.push_back(sizeof(gather_state));
        continue;
      }
      unsigned hdr = 0;
      for (std::size_t p = w + 1; p < pos_needs.size(); ++p) hdr |= pos_needs[p];
      std::size_t b = hdr_bytes(hdr);
      for (std::size_t i = 0; i < reads_.size(); ++i)
        if (rpos[i] <= w && last_use[i] > w) b += 8;
      out.wire_bytes.push_back(b);
    }
  }

 private:
  struct home {
    enum class kind { at_v, at_gen, chase } k = kind::at_v;
    std::string chase_key;  // pmap[index] print for chases
    friend bool operator==(const home&, const home&) = default;
  };

  struct read_entry {
    std::string key;
    home loc;
    bool pinned = false;
    unsigned idx_needs = 0;  ///< header fields the index expression touches
  };

  /// One recorded consumption of a read's slot: `ctx` is the key of the
  /// read whose index consumed it, or empty when the consumer is the final
  /// evaluation. Mirrors the EDSL planner's slot_use tokens.
  struct use_rec {
    std::string key;
    std::string ctx;
  };

  std::string home_label(const home& h) const {
    switch (h.k) {
      case home::kind::at_v: return "v";
      case home::kind::at_gen:
        if (act_.gen == generator_type::out_edges) return "trg(e)";
        if (act_.gen == generator_type::in_edges) return "src(e)";
        return "u";
      case home::kind::chase: return "chase";
    }
    return "?";
  }

  const parsed_property* pmap_of(const expr& read) const {
    for (const auto& p : pat_.properties)
      if (p.name == read.pmap) return &p;
    throw parse_error(read.line, "unknown property map '" + read.pmap + "'");
  }

  home classify_index(const expr& idx) {
    switch (idx.kind) {
      case expr::node::input_vertex: return {home::kind::at_v, ""};
      case expr::node::gen_vertex:
        require_gen(idx.line);
        return {home::kind::at_gen, ""};
      case expr::node::gen_edge:  // edge property read: locality of e is v
        return {home::kind::at_v, ""};
      case expr::node::src_of:
        require_edge_gen(idx.line);
        return {act_.gen == generator_type::out_edges ? home{home::kind::at_v, ""}
                                                      : home{home::kind::at_gen, ""}};
      case expr::node::trg_of:
        require_edge_gen(idx.line);
        return {act_.gen == generator_type::out_edges ? home{home::kind::at_gen, ""}
                                                      : home{home::kind::at_v, ""}};
      case expr::node::pmap_read: {
        const parsed_property* pm = pmap_of(idx);
        if (pm->type != value_kind::vertex)
          throw parse_error(idx.line,
                            "index '" + print(idx) + "' is not vertex-valued");
        const home inner = classify_index(*idx.children[0]);
        if (inner.k != home::kind::at_v)
          throw parse_error(idx.line,
                            "pointer-chase indices must be readable at the input "
                            "vertex (one level of chasing)");
        return {home::kind::chase, print(idx)};
      }
      default:
        throw parse_error(idx.line, "'" + print(idx) + "' cannot index a property map");
    }
  }

  void require_gen(int line) const {
    if (act_.gen == generator_type::none)
      throw parse_error(line, "generator binding used but no generator declared");
  }
  void require_edge_gen(int line) const {
    if (act_.gen != generator_type::out_edges && act_.gen != generator_type::in_edges)
      throw parse_error(line, "src/trg need an edge generator");
  }

  /// Walks an expression: registers reads, returns the value kind.
  value_kind walk(const expr& e) {
    switch (e.kind) {
      case expr::node::input_vertex: return value_kind::vertex;
      case expr::node::gen_vertex:
        require_gen(e.line);
        return value_kind::vertex;
      case expr::node::gen_edge:
        require_gen(e.line);
        return value_kind::edge;
      case expr::node::src_of:
      case expr::node::trg_of: {
        if (walk(*e.children[0]) != value_kind::edge)
          throw parse_error(e.line, "src/trg apply to edges");
        return value_kind::vertex;
      }
      case expr::node::literal: {
        if (e.literal_text == "true" || e.literal_text == "false")
          return value_kind::boolean;
        if (e.literal_text == "infinity") return value_kind::real;
        if (e.literal_text == "null_vertex") return value_kind::vertex;
        return e.literal_text.find('.') != std::string::npos ? value_kind::real
                                                             : value_kind::integer;
      }
      case expr::node::pmap_read: return register_read(e);
      case expr::node::unary_not: {
        if (walk(*e.children[0]) != value_kind::boolean)
          throw parse_error(e.line, "'!' needs a boolean");
        return value_kind::boolean;
      }
      case expr::node::binary: {
        const value_kind l = walk(*e.children[0]);
        const value_kind r = walk(*e.children[1]);
        if (e.op == "&&" || e.op == "||") {
          if (l != value_kind::boolean || r != value_kind::boolean)
            throw parse_error(e.line, "'" + e.op + "' needs booleans");
          return value_kind::boolean;
        }
        if (e.op == "==" || e.op == "!=" || e.op == "<" || e.op == ">" || e.op == "<=" ||
            e.op == ">=") {
          check_comparable(l, r, e);
          return value_kind::boolean;
        }
        // arithmetic (including the min/max intrinsics)
        if (l == value_kind::opaque || r == value_kind::opaque ||
            l == value_kind::edge || r == value_kind::edge ||
            l == value_kind::boolean || r == value_kind::boolean)
          throw parse_error(e.line, "invalid operands of '" + e.op + "'");
        return (l == value_kind::real || r == value_kind::real) ? value_kind::real
                                                                : value_kind::integer;
      }
    }
    return value_kind::opaque;
  }

  static void check_comparable(value_kind l, value_kind r, const expr& e) {
    auto numeric = [](value_kind k) {
      return k == value_kind::real || k == value_kind::integer || k == value_kind::vertex;
    };
    const bool ok = (numeric(l) && numeric(r)) ||
                    (l == value_kind::boolean && r == value_kind::boolean);
    if (!ok) throw parse_error(e.line, "operands of '" + e.op + "' are not comparable");
  }

  value_kind register_read(const expr& e) {
    const parsed_property* pm = pmap_of(e);
    const expr& idx = *e.children[0];
    const value_kind ik = walk_index_kind(idx);
    if (pm->on_vertices && ik != value_kind::vertex)
      throw parse_error(e.line, "vertex property '" + pm->name + "' indexed by non-vertex");
    if (!pm->on_vertices && ik != value_kind::edge)
      throw parse_error(e.line, "edge property '" + pm->name + "' indexed by non-edge");
    if (pm->type == value_kind::opaque)
      throw parse_error(e.line, "values of '" + pm->name +
                                    "' cannot travel in messages (opaque type); only "
                                    "modification targets may be opaque");
    const std::string key = print(e);
    read_pmaps_.insert(pm->name);
    // Dedup (CSE): a repeated read shares the already-allocated slot, but
    // still records a consumption in the current context — the second
    // consumer extends the slot's wire lifetime (mirrors the EDSL planner).
    for (const auto& r : reads_)
      if (r.key == key) {
        ++cse_hits_;
        uses_.push_back(use_rec{key, ctx_});
        return pm->type;
      }
    uses_.push_back(use_rec{key, ctx_});
    // Index sub-reads register first (depth-first), like the EDSL; their
    // consumption is charged to *this* read, not the final evaluation.
    {
      const std::string saved = ctx_;
      ctx_ = key;
      if (idx.kind == expr::node::pmap_read) (void)register_read(idx);
      ctx_ = saved;
    }
    read_entry re;
    re.key = key;
    re.loc = classify_index(idx);
    re.idx_needs = needs(idx);
    reads_.push_back(re);
    if (re.loc.k == home::kind::chase) pin(print(idx));
    return pm->type;
  }

  /// Header fields (v / e / u) an expression touches when evaluated at some
  /// hop. Property reads contribute nothing — their values travel in the
  /// arena, and their index needs are charged to the performing read.
  static unsigned needs(const expr& e) {
    switch (e.kind) {
      case expr::node::input_vertex: return hdr_v;
      case expr::node::gen_edge: return hdr_e_full;
      case expr::node::gen_vertex: return hdr_u;
      case expr::node::src_of:
        return e.children[0]->kind == expr::node::gen_edge ? hdr_e_src
                                                           : needs(*e.children[0]);
      case expr::node::trg_of:
        return e.children[0]->kind == expr::node::gen_edge ? hdr_e_dst
                                                           : needs(*e.children[0]);
      case expr::node::pmap_read:
      case expr::node::literal: return 0;
      case expr::node::binary: return needs(*e.children[0]) | needs(*e.children[1]);
      case expr::node::unary_not: return needs(*e.children[0]);
    }
    return 0;
  }

  static bool contains_read(const expr& e) {
    if (e.kind == expr::node::pmap_read) return true;
    for (const auto& c : e.children)
      if (contains_read(*c)) return true;
    return false;
  }

  /// Every property read anywhere in e (nested indices included) is homed
  /// at the input vertex — the fast-path value precondition.
  bool reads_all_at_v(const expr& e) {
    if (e.kind == expr::node::pmap_read)
      return classify_index(*e.children[0]).k == home::kind::at_v &&
             reads_all_at_v(*e.children[0]);
    for (const auto& c : e.children)
      if (!reads_all_at_v(*c)) return false;
    return true;
  }

  unsigned addr_mask(const home& h) const {
    switch (h.k) {
      case home::kind::at_v: return hdr_v;
      case home::kind::at_gen:
        if (act_.gen == generator_type::out_edges) return hdr_e_dst;
        if (act_.gen == generator_type::in_edges) return hdr_e_src;
        return hdr_u;
      case home::kind::chase: return 0;  // destination is an arena slot
    }
    return 0;
  }

  value_kind walk_index_kind(const expr& idx) {
    switch (idx.kind) {
      case expr::node::input_vertex:
      case expr::node::gen_vertex:
      case expr::node::src_of:
      case expr::node::trg_of: return value_kind::vertex;
      case expr::node::gen_edge: return value_kind::edge;
      case expr::node::pmap_read: return pmap_of(idx)->type;
      default: return value_kind::opaque;
    }
  }

  void pin(const std::string& key) {
    for (auto& r : reads_)
      if (r.key == key) {
        r.pinned = true;
        return;
      }
    // The chased index is registered by register_read before pinning.
    DPG_ASSERT_MSG(false, "chase inner read missing");
  }

  void handle_mod(const modification& m) {
    const parsed_property* pm = pmap_of(*m.target);
    const expr& idx = *m.target->children[0];
    // Chased modification locality needs the chase value gathered; the
    // second touch mirrors the EDSL compiling the target index expression
    // (note_ml registers, compile_mod re-reads the shared slot).
    const home h = classify_index(idx);
    if (h.k == home::kind::chase) {
      (void)register_read(idx);
      (void)register_read(idx);
    }
    // Argument values travel: walk (and type-check) them once, like the
    // EDSL compiles each value expression exactly once.
    std::vector<value_kind> arg_kinds;
    for (const auto& a : m.arguments) arg_kinds.push_back(walk(*a));
    if (m.is_assignment) {
      const value_kind rk = arg_kinds[0];
      if (pm->type != value_kind::opaque && rk != pm->type &&
          !(pm->type == value_kind::real && rk == value_kind::integer))
        throw parse_error(m.line, "assignment value kind does not match '" + pm->name + "'");
    }
    if (!have_ml_) {
      ml_ = h;
      have_ml_ = true;
    } else if (!(h == ml_)) {
      throw parse_error(m.line,
                        "all modifications of an action must share one locality; "
                        "split the action (the paper groups modification "
                        "statements by locality)");
    }
    written_pmaps_.insert(pm->name);
  }

  const parsed_pattern& pat_;
  const parsed_action& act_;
  std::vector<read_entry> reads_;
  std::vector<use_rec> uses_;
  std::string ctx_;  ///< key of the read whose index is being walked; empty = final
  std::size_t cse_hits_ = 0;
  std::vector<home> hop_homes_{home{home::kind::at_v, ""}};
  std::set<std::string> read_pmaps_, written_pmaps_;
  home ml_{};
  bool have_ml_ = false;
};

}  // namespace

analyzed_pattern analyze(const parsed_pattern& p) {
  analyzed_pattern out;
  out.name = p.name;
  for (const parsed_action& a : p.actions) out.actions.push_back(analyzer(p, a).run());
  return out;
}

std::string explain(const analyzed_action& a) {
  plan_info info;
  info.gather_hops = a.gather_hops;
  info.final_merged = a.final_merged;
  info.atomic_path = a.atomic_path;
  info.final_reads = a.final_reads;
  info.arena_bytes = a.arena_bytes;
  info.conditions = a.conditions;
  info.has_dependencies = a.has_dependencies;
  info.hop_localities = a.hop_localities;
  info.hop_reads = a.hop_reads;
  info.final_locality = a.final_locality;
  info.fast_path = a.fast_path;
  info.batch_kernel = a.batch_kernel;
  info.fast_reduction = a.fast_reduction;
  info.cse_hits = a.cse_hits;
  info.wire_bytes = a.wire_bytes;
  return pattern::explain(a.name, info);
}

std::string explain_source(std::string_view source) {
  const auto parsed = parse_pattern(source);
  const auto analyzed = analyze(parsed);
  std::string out = "pattern " + analyzed.name + ":\n";
  for (const auto& a : analyzed.actions) out += explain(a);
  return out;
}

}  // namespace dpg::pattern::text
