// The uniform solver-session interface of the serving layer.
//
// The ROADMAP's north-star workload is heavy query traffic against one big
// graph — many solves per second, not one solver per process. The unit of
// work is a *session*: a warm bundle of transport context (its own
// ampp::transport, hence its own lanes/counters/TD state, sharing only the
// process-wide envelope pool), a compiled pattern plan, and pre-sized
// property maps, pinned to a graph::snapshot_view. Sessions are checked out
// of a pool per request (serve/pool.hpp), run one query, and go back warm —
// construction cost (plan compilation, map allocation) is paid once, not
// per query.
//
// Every algorithm sits behind the same three verbs so the pool and the
// admission front end are algorithm-agnostic:
//   run(params)             — full solve, results pinned to the session's
//                             snapshot version;
//   repair(params, batch)   — warm repair from one recorded mutation batch
//                             (added + removed edges) when the session's
//                             previous run makes that sound, transparent
//                             fallback to run() otherwise;
//   the returned session_result — one result shape for all of them.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/snapshot.hpp"
#include "obs/registry.hpp"

namespace dpg::serve {

using graph::vertex_id;

/// The algorithms the serving layer fronts (extend alongside the factory in
/// algo/sessions.hpp and the pool's kAlgos).
enum class algorithm : std::uint8_t { sssp, bfs, cc, kcore, pagerank };

inline const char* algorithm_name(algorithm a) {
  switch (a) {
    case algorithm::sssp: return "sssp";
    case algorithm::bfs: return "bfs";
    case algorithm::cc: return "cc";
    case algorithm::kcore: return "kcore";
    case algorithm::pagerank: return "pagerank";
  }
  return "?";
}

/// One recorded topology mutation, the unit warm repair consumes: the edges
/// added and removed, plus the topology version the graph was at *before*
/// the mutation was applied (what a session's previous state must be pinned
/// to for replaying just this batch to be sound).
struct mutation_batch {
  std::vector<graph::edge> added;
  std::vector<graph::edge> removed;
  std::uint64_t base_version = 0;

  bool empty() const noexcept { return added.empty() && removed.empty(); }
};

/// Query parameters — the cache-key half of a request. Kept trivially
/// comparable so identical queries merge and cache exactly.
struct query_params {
  vertex_id source = 0;  ///< ignored by whole-graph algorithms (cc)
  double delta = 0.0;    ///< > 0 selects the Δ-stepping schedule (sssp/bfs)
  friend bool operator==(const query_params&, const query_params&) = default;
};

/// One admitted request: what to run, with what parameters, for whom.
struct query {
  algorithm algo = algorithm::sssp;
  query_params params{};
  std::uint64_t tenant = 0;  ///< attribution key for per-tenant obs counters
};

/// The one result shape every session verb returns — the serving-layer
/// unification of PR 1's strategy::result (rounds / modifications /
/// stats_delta ride along verbatim) with the metadata a multi-tenant
/// front end needs: the topology version the answer is pinned to and how
/// it converged.
///
/// `values` holds one 64-bit word per vertex. Floating-point results
/// travel as the raw bit pattern of their double (std::bit_cast), so
/// result equality is bit-identity — never an epsilon — and one vector
/// type serves every algorithm.
struct session_result {
  algorithm algo{};
  std::uint64_t graph_version = 0;  ///< topology version the run was pinned to
  bool converged = false;           ///< fixed point reached (round cap not hit)
  bool warm_repair = false;         ///< produced by repair(), not a full solve
  std::uint64_t rounds = 0;         ///< strategy rounds/epochs driven
  std::uint64_t modifications = 0;  ///< successful condition firings
  obs::stats_snapshot stats_delta;  ///< transport counters the run consumed
  std::vector<std::uint64_t> values;

  std::uint64_t value(vertex_id v) const { return values[v]; }
  double value_as_double(vertex_id v) const {
    return std::bit_cast<double>(values[v]);
  }
};

/// Abstract warm solver session. Concrete wrappers live with their
/// algorithms (algo/sessions.hpp); everything above the wrappers — pool,
/// cache, admission — programs against this interface only.
class solver_session {
 public:
  virtual ~solver_session() = default;

  solver_session(const solver_session&) = delete;
  solver_session& operator=(const solver_session&) = delete;

  algorithm algo() const noexcept { return algo_; }
  const graph::snapshot_view& snapshot() const noexcept { return snap_; }

  /// Re-pins the session to the graph's current topology version (cheap:
  /// property maps grow lazily; the compiled plan is mutation-oblivious).
  /// Returns true when the pin moved. The pool calls this on checkout so a
  /// warm session never serves a stale version by accident.
  bool rebind() { return snap_.refresh(); }

  /// Full solve. Collective machinery runs inside (the session drives its
  /// own transport); the caller is an ordinary serving thread.
  virtual session_result run(const query_params& p) = 0;

  /// Warm repair: absorb one mutation batch (added + removed edges) on top
  /// of the previous run's state instead of re-solving. `m.base_version` is
  /// the topology version the batch was applied against; repairing is sound
  /// only when this session's last run solved the same params at exactly
  /// that version — the batch covers one mutation only, so a session two or
  /// more mutations behind would miss the earlier edges. Implementations
  /// check and transparently fall back to run() otherwise, so the pool may
  /// hand any session to a repair request. The default is that fallback:
  /// algorithms without an incremental path (bfs, pagerank) get streaming
  /// correctness for free at full-solve cost.
  virtual session_result repair(const query_params& p, const mutation_batch& m) {
    (void)m;
    return run(p);
  }

  /// The session's observability registry (per-context; the pool rolls
  /// these up into the server's obs::rollup at retire/summary time).
  virtual const obs::registry& obs() const = 0;

 protected:
  solver_session(algorithm a, graph::snapshot_view snap) : snap_(snap), algo_(a) {}

  graph::snapshot_view snap_;

 private:
  algorithm algo_;
};

}  // namespace dpg::serve
