// The multi-tenant serving front end: admission, merging, caching, and
// mutation over one shared graph.
//
// This is ROADMAP item 2 ("production-scale serving"): the process holds
// one big distributed_graph and answers a stream of read queries
// interleaved with mutations. The server composes the pieces this PR
// introduces —
//
//   graph::snapshot_view   results attributable to one topology version
//   solver_session pool    warm per-query contexts (serve/pool.hpp)
//   result_cache           (version, algorithm, params) → shared result
//   obs::rollup            per-context + per-tenant accounting
//
// — behind two calls: query() and apply_edges().
//
// Admission discipline (the interesting part):
//   1. A query first probes the cache under the live topology version; a
//      hit is lock-free of any solver machinery.
//   2. On a miss, identical in-flight queries *merge*: the first requester
//      becomes the leader and solves; followers wait on the leader's entry
//      and share its result. N tenants asking the same question cost one
//      solve.
//   3. The leader checks a session out of the warm pool, runs it inside a
//      shared (reader) topology lock, inserts the result, and wakes the
//      followers.
// Mutations take the exclusive side of the topology lock: apply_mutation()
// (and its apply_edges/remove_edges shorthands) waits out in-flight solves,
// mutates (bumping the version), invalidates stale cache entries, and
// records the batch — added and removed edges plus its base version — so
// repair_query() can warm-restart instead of re-solving.
//
// Groundwork: step 3 is also where multi-pattern fusion will plug into
// serving — distinct-source (or distinct-algorithm) leaders over one
// snapshot batched behind a single pattern::fuse solve instead of one
// session each; see the fused-plan hook note at server::solve.
#pragma once

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "algo/sessions.hpp"
#include "serve/cache.hpp"
#include "serve/pool.hpp"

namespace dpg::serve {

struct server_config {
  ampp::machine_config machine{};  ///< rank/thread topology of every session
  ampp::tuning_config tuning{};    ///< runtime knobs shared by every session
  std::size_t max_warm_sessions = 2;  ///< warm pool depth per algorithm
  std::size_t cache_capacity = 1024;
  pattern::compile_options copts{};
  strategy::options sopts{};
};

class server {
 public:
  /// `g` and `weights` are the shared state being served; they must outlive
  /// the server. All topology mutation must go through apply_mutation() and
  /// friends below — the server's topology lock is what keeps mutation at
  /// the non-morphing boundary while queries are in flight. Edges added
  /// later take their weight from the map's own fill value / init function
  /// (pmap/edge_map.hpp), so build `weights` with the growth recipe you
  /// want served.
  server(graph::distributed_graph& g, pmap::edge_property_map<double>& weights,
         server_config cfg = {});
  ~server();

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Serves one query: cache hit, merge onto an identical in-flight query,
  /// or a fresh solve on a pooled session. Thread-safe; blocks while a
  /// mutation holds the topology lock. The result is immutable and shared.
  std::shared_ptr<const session_result> query(const serve::query& q);

  /// Like query(), but a miss warm-repairs from the most recent mutation
  /// batch instead of solving from scratch (transparently falls back to a
  /// full solve when the leased session can't repair soundly).
  std::shared_ptr<const session_result> repair_query(const serve::query& q);

  /// One streaming ingest step at the non-morphing boundary: waits out
  /// in-flight solves, appends `added` then tombstones `removed` (resolved
  /// to live edge ids — dying loudly if a victim has no live instance),
  /// drops now-stale cache entries, and records the batch for repair.
  void apply_mutation(std::span<const graph::edge> added,
                      std::span<const graph::edge> removed,
                      std::uint64_t tenant = 0);

  /// apply_mutation with an empty removal set.
  void apply_edges(std::span<const graph::edge> extra, std::uint64_t tenant = 0);

  /// apply_mutation with an empty addition set.
  void remove_edges(std::span<const graph::edge> victims,
                    std::uint64_t tenant = 0);

  /// The live topology version queries are currently keyed on.
  std::uint64_t version() const;

  // ---- introspection -------------------------------------------------------

  result_cache& cache() noexcept { return cache_; }
  session_pool& pool() noexcept { return *pool_; }
  obs::rollup& obs() noexcept { return rollup_; }
  const std::shared_ptr<ampp::wire_pool>& envelope_pool() const noexcept {
    return wire_pool_;
  }

  /// The combined per-context / per-tenant epoch summary (drains the warm
  /// pool first so live sessions' counters are included).
  std::string serving_summary();

 private:
  struct inflight;

  std::shared_ptr<const session_result> serve_one(const serve::query& q,
                                                  bool try_repair);
  std::shared_ptr<const session_result> solve(const serve::query& q,
                                              const cache_key& key,
                                              bool try_repair);

  graph::distributed_graph* g_;
  pmap::edge_property_map<double>* weights_;
  server_config cfg_;

  std::shared_ptr<ampp::wire_pool> wire_pool_;
  obs::rollup rollup_;
  result_cache cache_;
  std::unique_ptr<session_pool> pool_;

  /// Readers = queries (shared), writers = apply_mutation (exclusive).
  mutable std::shared_mutex topo_mu_;
  /// The newest mutation batch, recorded for warm repair. Its base_version
  /// is the topology version *before* the batch was applied: a session can
  /// only warm-repair from it if its own state is pinned to exactly that
  /// version — the batch covers the newest mutation only. Guarded by
  /// topo_mu_.
  mutation_batch last_batch_;

  std::mutex inflight_mu_;
  std::unordered_map<cache_key, std::shared_ptr<inflight>, cache_key::hasher>
      inflight_;
};

}  // namespace dpg::serve
