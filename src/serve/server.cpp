#include "serve/server.hpp"

#include <chrono>
#include <condition_variable>

namespace dpg::serve {

namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// One in-flight solve followers merge onto: the leader fills `result` and
/// flips `done`; followers wait on `cv`.
struct server::inflight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool failed = false;
  std::shared_ptr<const session_result> result;
};

server::server(graph::distributed_graph& g,
               pmap::edge_property_map<double>& weights, server_config cfg)
    : g_(&g),
      weights_(&weights),
      cfg_(cfg),
      wire_pool_(std::make_shared<ampp::wire_pool>(cfg.machine.n_ranks)),
      cache_(cfg.cache_capacity) {
  // The serving layer's topology gate (topo_mu_) and snapshot_view::refresh
  // assume a mutation is visible process-wide the moment apply_edges
  // releases the exclusive lock — true only when every rank lives in this
  // process. Cross-process serving needs a single-writer topology protocol
  // (the envelope header's version/structure-version stamp is the enforcing
  // half; see docs/runtime.md "Transport backends"), which the server does
  // not yet implement — so refuse loudly instead of serving stale shards.
  DPG_ASSERT_MSG(!cfg_.machine.backend.cross_process(),
                 "serve::server requires the in-process backend: its topology gate "
                 "assumes process-wide visibility of mutations");
  algo::session_env env;
  env.g = g_;
  env.weights = weights_;
  env.machine = cfg_.machine;
  env.tuning = cfg_.tuning;
  env.pool = wire_pool_;
  env.copts = cfg_.copts;
  env.sopts = cfg_.sopts;
  pool_ = std::make_unique<session_pool>(
      [env](algorithm a) { return algo::make_solver_session(a, env); },
      cfg_.max_warm_sessions, &rollup_);
}

server::~server() { pool_->drain(); }

std::uint64_t server::version() const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  return g_->version();
}

std::shared_ptr<const session_result> server::query(const serve::query& q) {
  return serve_one(q, /*try_repair=*/false);
}

std::shared_ptr<const session_result> server::repair_query(
    const serve::query& q) {
  return serve_one(q, /*try_repair=*/true);
}

std::shared_ptr<const session_result> server::serve_one(const serve::query& q,
                                                        bool try_repair) {
  const std::uint64_t t0 = now_us();
  // The shared topology lock spans the whole serve: the version the result
  // is keyed on cannot move underneath the solve, and mutations queue
  // behind every in-flight query (the non-morphing boundary).
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  const cache_key key{g_->version(), q.algo, q.params};

  if (auto hit = cache_.lookup(key)) {
    rollup_.note_query(q.tenant, /*cache_hit=*/true, /*merged=*/false,
                       now_us() - t0);
    return hit;
  }

  // Admission: the first requester of (version, algo, params) leads and
  // solves; everyone else merges onto its in-flight entry.
  std::shared_ptr<inflight> entry;
  bool leader = false;
  {
    std::lock_guard<std::mutex> g(inflight_mu_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) {
      entry = std::make_shared<inflight>();
      inflight_.emplace(key, entry);
      leader = true;
    } else {
      entry = it->second;
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> l(entry->mu);
    entry->cv.wait(l, [&] { return entry->done; });
    if (!entry->failed && entry->result != nullptr) {
      rollup_.note_query(q.tenant, /*cache_hit=*/false, /*merged=*/true,
                         now_us() - t0);
      return entry->result;
    }
    l.unlock();
    // The leader failed: solve independently rather than cascading the
    // failure to every merged follower.
    auto res = solve(q, key, try_repair);
    cache_.insert(key, res);
    rollup_.note_query(q.tenant, false, false, now_us() - t0);
    return res;
  }

  // Leadership double-check: miss → register is not atomic, so the previous
  // leader may have cached this key and left in the gap. Re-probing here
  // makes "N identical queries cost one solve" a guarantee, not a likelihood.
  if (auto hit = cache_.lookup(key)) {
    {
      std::lock_guard<std::mutex> g(inflight_mu_);
      inflight_.erase(key);
    }
    {
      std::lock_guard<std::mutex> l(entry->mu);
      entry->result = hit;
      entry->done = true;
    }
    entry->cv.notify_all();
    rollup_.note_query(q.tenant, /*cache_hit=*/true, /*merged=*/false,
                       now_us() - t0);
    return hit;
  }

  std::shared_ptr<const session_result> res;
  try {
    res = solve(q, key, try_repair);
  } catch (...) {
    {
      std::lock_guard<std::mutex> g(inflight_mu_);
      inflight_.erase(key);
    }
    {
      std::lock_guard<std::mutex> l(entry->mu);
      entry->failed = true;
      entry->done = true;
    }
    entry->cv.notify_all();
    throw;
  }

  cache_.insert(key, res);
  {
    // Erase after the cache insert so a request arriving in between finds
    // one or the other — never a gap that would duplicate the solve.
    std::lock_guard<std::mutex> g(inflight_mu_);
    inflight_.erase(key);
  }
  {
    std::lock_guard<std::mutex> l(entry->mu);
    entry->result = res;
    entry->done = true;
  }
  entry->cv.notify_all();

  if (res->warm_repair)
    rollup_.note_repair(q.tenant);
  else
    rollup_.note_solve(q.tenant);
  rollup_.note_query(q.tenant, /*cache_hit=*/false, /*merged=*/false,
                     now_us() - t0);
  return res;
}

std::shared_ptr<const session_result> server::solve(const serve::query& q,
                                                    const cache_key& key,
                                                    bool try_repair) {
  // Fused-plan hook point. Admission currently merges only *identical*
  // queries (same version/algo/params, via inflight_ above); each leader
  // checks out one single-algorithm session here. pattern::fuse (see
  // algo::fused_triple_solver) makes the stronger batching legal: leaders
  // for *distinct* sources — or distinct member algorithms over the same
  // snapshot — could be grouped behind one fused solve, since per-member
  // sources need not coincide and idle members self-reject on the wire.
  // Plumbing that in means a fused session kind in the pool keyed on the
  // member set plus a small admission window to gather co-resident
  // leaders; the solve below is the single point such a batch would
  // replace.
  session_pool::lease lease = pool_->checkout(q.algo);
  session_result r = (try_repair && !last_batch_.empty())
                         ? lease->repair(q.params, last_batch_)
                         : lease->run(q.params);
  DPG_ASSERT_MSG(r.graph_version == key.version,
                 "session produced a result for the wrong topology version");
  return std::make_shared<const session_result>(std::move(r));
}

void server::apply_mutation(std::span<const graph::edge> added,
                            std::span<const graph::edge> removed,
                            std::uint64_t tenant) {
  std::unique_lock<std::shared_mutex> topo(topo_mu_);
  // The batch repairs *from* the pre-mutation version; additions apply
  // before removals so a batch may remove an edge it just added.
  last_batch_.base_version = g_->version();
  if (!added.empty()) g_->apply_edges(added);
  if (!removed.empty()) g_->remove_edges(g_->resolve_edges(removed));
  cache_.invalidate_stale(g_->version());
  last_batch_.added.assign(added.begin(), added.end());
  last_batch_.removed.assign(removed.begin(), removed.end());
  rollup_.note_mutation(tenant);
}

void server::apply_edges(std::span<const graph::edge> extra,
                         std::uint64_t tenant) {
  apply_mutation(extra, {}, tenant);
}

void server::remove_edges(std::span<const graph::edge> victims,
                          std::uint64_t tenant) {
  apply_mutation({}, victims, tenant);
}

std::string server::serving_summary() {
  // Retire the warm sessions so their registries are folded into the
  // rollup exactly once, then re-open the pool (subsequent queries rebuild
  // warmth). Outstanding leases fold in whenever they retire.
  pool_->drain();
  pool_->reopen();
  return rollup_.summary();
}

}  // namespace dpg::serve
