// The serving-layer result cache: completed session_results keyed by
// (topology version, algorithm, params).
//
// The topology version in the key is the whole invalidation story:
// apply_edges() bumps the graph's version, so every entry pinned to the old
// version can never be *hit* again — lookups always key on the live
// version. invalidate_stale() reclaims that dead weight eagerly (the server
// calls it inside the same exclusive section as the mutation); capacity
// eviction (FIFO) bounds the cache between mutations.
//
// Results are shared immutably (shared_ptr<const session_result>), so a hit
// is one hash probe + one refcount — safe to hand to any number of
// concurrent tenants.
#pragma once

#include <bit>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "serve/session.hpp"

namespace dpg::serve {

/// Cache identity of one query against one topology version.
struct cache_key {
  std::uint64_t version = 0;
  algorithm algo{};
  query_params params{};

  /// Equality must agree with the hasher below, which hashes delta's bit
  /// pattern — so compare the bit pattern too, not the double. A defaulted
  /// operator== would break the unordered_map contract at the edges: +0.0
  /// and -0.0 compare equal but hash differently, and a NaN delta never
  /// equals itself, leaving unerasable map/inflight entries.
  friend bool operator==(const cache_key& a, const cache_key& b) noexcept {
    return a.version == b.version && a.algo == b.algo &&
           a.params.source == b.params.source &&
           std::bit_cast<std::uint64_t>(a.params.delta) ==
               std::bit_cast<std::uint64_t>(b.params.delta);
  }

  struct hasher {
    std::size_t operator()(const cache_key& k) const noexcept {
      auto mix = [](std::uint64_t h, std::uint64_t x) {
        h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        return h;
      };
      std::uint64_t h = k.version;
      h = mix(h, static_cast<std::uint64_t>(k.algo));
      h = mix(h, static_cast<std::uint64_t>(k.params.source));
      h = mix(h, std::bit_cast<std::uint64_t>(k.params.delta));
      return static_cast<std::size_t>(h);
    }
  };
};

class result_cache {
 public:
  explicit result_cache(std::size_t capacity = 1024) : cap_(capacity) {}

  result_cache(const result_cache&) = delete;
  result_cache& operator=(const result_cache&) = delete;

  /// The cached result for `k`, or nullptr. Counts a hit or a miss.
  std::shared_ptr<const session_result> lookup(const cache_key& k) {
    std::lock_guard<std::mutex> g(mu_);
    const auto it = map_.find(k);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    return it->second;
  }

  /// Inserts (or overwrites) `k`. FIFO-evicts past capacity.
  void insert(const cache_key& k, std::shared_ptr<const session_result> r) {
    std::lock_guard<std::mutex> g(mu_);
    if (cap_ == 0) return;
    auto [it, fresh] = map_.insert_or_assign(k, std::move(r));
    (void)it;
    if (fresh) fifo_.push_back(k);
    ++insertions_;
    // fifo_ can't run dry while map_ is over capacity (every map entry was
    // pushed exactly once), but guard anyway: popping an empty deque is UB.
    while (map_.size() > cap_ && !fifo_.empty()) {
      map_.erase(fifo_.front());
      fifo_.pop_front();
      ++evictions_;
    }
  }

  /// Drops every entry not pinned to `live_version` (the server calls this
  /// under its exclusive topology lock right after apply_edges/compact).
  /// Returns the number of entries reclaimed.
  std::size_t invalidate_stale(std::uint64_t live_version) {
    std::lock_guard<std::mutex> g(mu_);
    std::size_t dropped = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->first.version != live_version) {
        it = map_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    if (dropped != 0) {
      std::deque<cache_key> keep;
      for (const cache_key& k : fifo_)
        if (map_.contains(k)) keep.push_back(k);
      fifo_ = std::move(keep);
      invalidations_ += dropped;
    }
    return dropped;
  }

  void clear() {
    std::lock_guard<std::mutex> g(mu_);
    invalidations_ += map_.size();
    map_.clear();
    fifo_.clear();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return map_.size();
  }
  std::size_t capacity() const { return cap_; }
  std::uint64_t hits() const {
    std::lock_guard<std::mutex> g(mu_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard<std::mutex> g(mu_);
    return misses_;
  }
  std::uint64_t insertions() const {
    std::lock_guard<std::mutex> g(mu_);
    return insertions_;
  }
  std::uint64_t evictions() const {
    std::lock_guard<std::mutex> g(mu_);
    return evictions_;
  }
  std::uint64_t invalidations() const {
    std::lock_guard<std::mutex> g(mu_);
    return invalidations_;
  }
  double hit_rate() const {
    std::lock_guard<std::mutex> g(mu_);
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<cache_key, std::shared_ptr<const session_result>,
                     cache_key::hasher>
      map_;
  std::deque<cache_key> fifo_;  ///< insertion order for capacity eviction
  std::size_t cap_;
  std::uint64_t hits_ = 0, misses_ = 0, insertions_ = 0, evictions_ = 0,
                invalidations_ = 0;
};

}  // namespace dpg::serve
