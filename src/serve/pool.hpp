// Warm session pool: checkout / return of solver_sessions per algorithm.
//
// Session construction is the expensive part of serving a query (a fresh
// ampp::transport, compiled plan, full-size property maps); the pool
// amortises it by keeping up to `max_warm_per_algo` idle sessions per
// algorithm and handing them out under an RAII lease. Checkout re-pins the
// session to the live topology (rebind()), so a warm session never serves a
// stale version by accident; give-back either re-warms the session or
// retires it, rolling its per-context obs registry up into the server's
// rollup so no counters are lost when a context dies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "serve/session.hpp"
#include "util/assert.hpp"

namespace dpg::serve {

class session_pool {
 public:
  /// Builds a cold session for `a`; called under no pool lock.
  using factory_fn = std::function<std::unique_ptr<solver_session>(algorithm)>;

  /// RAII checkout. Holds the session exclusively; the destructor returns
  /// it to the pool (or retires it if the warm list is full).
  class lease {
   public:
    lease() = default;
    lease(session_pool* pool, std::unique_ptr<solver_session> s)
        : pool_(pool), s_(std::move(s)) {}
    lease(lease&& o) noexcept : pool_(o.pool_), s_(std::move(o.s_)) {
      o.pool_ = nullptr;
    }
    lease& operator=(lease&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        s_ = std::move(o.s_);
        o.pool_ = nullptr;
      }
      return *this;
    }
    lease(const lease&) = delete;
    lease& operator=(const lease&) = delete;
    ~lease() { release(); }

    explicit operator bool() const noexcept { return s_ != nullptr; }
    solver_session& operator*() const { return *s_; }
    solver_session* operator->() const { return s_.get(); }
    solver_session* get() const noexcept { return s_.get(); }

    /// Early give-back (the destructor is the usual path).
    void release() {
      if (pool_ != nullptr && s_ != nullptr) pool_->give_back(std::move(s_));
      pool_ = nullptr;
      s_.reset();
    }

   private:
    session_pool* pool_ = nullptr;
    std::unique_ptr<solver_session> s_;
  };

  /// `sink` (optional) receives the obs registry of every retired session.
  session_pool(factory_fn factory, std::size_t max_warm_per_algo,
               obs::rollup* sink = nullptr)
      : factory_(std::move(factory)),
        max_warm_(max_warm_per_algo),
        sink_(sink) {
    DPG_ASSERT_MSG(factory_ != nullptr, "session_pool needs a factory");
  }

  session_pool(const session_pool&) = delete;
  session_pool& operator=(const session_pool&) = delete;

  ~session_pool() { drain(); }

  /// Checks out a session for `a`: pops a warm one (re-pinned to the live
  /// topology) or cold-constructs through the factory.
  lease checkout(algorithm a) {
    std::unique_ptr<solver_session> s;
    {
      std::lock_guard<std::mutex> g(mu_);
      auto& warm = warm_[slot(a)];
      if (!warm.empty()) {
        s = std::move(warm.back());
        warm.pop_back();
        ++warm_hits_;
        ++outstanding_;
      }
    }
    if (s == nullptr) {
      // Count the session outstanding only once it exists: the factory can
      // throw (transport construction, plan compile), and a pre-counted
      // failure would skew outstanding() and the give_back assert forever.
      s = factory_(a);
      DPG_ASSERT_MSG(s != nullptr, "session factory returned null");
      std::lock_guard<std::mutex> g(mu_);
      ++created_;
      ++outstanding_;
    } else if (s->rebind()) {
      std::lock_guard<std::mutex> g(mu_);
      ++rebinds_;
    }
    return lease(this, std::move(s));
  }

  /// Retires every warm session now (rolls their registries into the sink).
  /// Outstanding leases retire on give-back.
  void drain() {
    std::vector<std::unique_ptr<solver_session>> victims;
    {
      std::lock_guard<std::mutex> g(mu_);
      draining_ = true;
      for (auto& warm : warm_)
        for (auto& s : warm) victims.push_back(std::move(s));
      for (auto& warm : warm_) warm.clear();
    }
    for (auto& s : victims) retire(std::move(s));
  }

  /// Re-opens the pool after drain() (tests use this to force cold paths).
  void reopen() {
    std::lock_guard<std::mutex> g(mu_);
    draining_ = false;
  }

  std::uint64_t created() const { return locked(created_); }
  std::uint64_t warm_hits() const { return locked(warm_hits_); }
  std::uint64_t rebinds() const { return locked(rebinds_); }
  std::uint64_t retired() const { return locked(retired_); }
  std::uint64_t outstanding() const { return locked(outstanding_); }
  std::size_t warm_count(algorithm a) const {
    std::lock_guard<std::mutex> g(mu_);
    return warm_[slot(a)].size();
  }

 private:
  friend class lease;

  static constexpr std::size_t kAlgos = 5;  // sssp, bfs, cc, kcore, pagerank
  static std::size_t slot(algorithm a) {
    const auto i = static_cast<std::size_t>(a);
    // A serve::algorithm added without growing kAlgos must fail loudly here,
    // not index out of warm_[].
    DPG_ASSERT_MSG(i < kAlgos, "serve::algorithm out of range for session_pool");
    return i;
  }

  std::uint64_t locked(const std::uint64_t& v) const {
    std::lock_guard<std::mutex> g(mu_);
    return v;
  }

  void give_back(std::unique_ptr<solver_session> s) {
    {
      std::lock_guard<std::mutex> g(mu_);
      DPG_ASSERT_MSG(outstanding_ > 0, "lease returned to the wrong pool");
      --outstanding_;
      auto& warm = warm_[slot(s->algo())];
      if (!draining_ && warm.size() < max_warm_) {
        warm.push_back(std::move(s));
        return;
      }
    }
    retire(std::move(s));
  }

  void retire(std::unique_ptr<solver_session> s) {
    if (sink_ != nullptr)
      sink_->absorb(algorithm_name(s->algo()), s->obs());
    {
      std::lock_guard<std::mutex> g(mu_);
      ++retired_;
    }
    s.reset();
  }

  factory_fn factory_;
  std::size_t max_warm_;
  obs::rollup* sink_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<solver_session>> warm_[kAlgos];
  bool draining_ = false;
  std::uint64_t created_ = 0, warm_hits_ = 0, rebinds_ = 0, retired_ = 0,
                outstanding_ = 0;
};

}  // namespace dpg::serve
