// The on-wire format of the transport backend seam (ISSUE 8).
//
// Everything that crosses a process boundary is framed explicitly here:
// a fixed-width, padding-free `wire_header` in front of every envelope's
// payload bytes, and a `wire_handshake` exchanged once per connection by
// the TCP backend (and embedded in the shared-memory segment header) so a
// peer speaking a different format version — or a different byte order —
// is rejected before a single envelope is decoded, instead of scattering
// garbage into property maps.
//
// Contract for seam-crossing types: trivially copyable, fixed-width
// fields, no padding (so memcpy'ing the object bytes is the serialization
// and `std::has_unique_object_representations_v` can prove it). The
// static_asserts below are the enforcement; the same asserts guard the
// transport's control-plane payloads in transport.hpp.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

namespace dpg::ampp {

/// Thrown on any wire-level protocol violation: handshake mismatch, frame
/// corruption, stale-topology envelopes, peer disconnects. Deliberately an
/// exception rather than an assert — a malformed *peer* is an environment
/// error the caller may want to report cleanly, not a bug in this process.
class wire_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t wire_magic = 0x44504757u;      // "DPGW"
inline constexpr std::uint16_t wire_format_version = 1;       // bump on layout change
inline constexpr std::uint8_t wire_endian_little = 1;
inline constexpr std::uint8_t wire_endian_big = 2;

/// Endianness tag of this build. The backends do not byte-swap: a
/// mixed-endian pair is rejected at handshake (§ "versioned handshake").
constexpr std::uint8_t wire_native_endian() noexcept {
  return std::endian::native == std::endian::little ? wire_endian_little
                                                    : wire_endian_big;
}

/// Frame flags.
inline constexpr std::uint8_t wire_flag_oob = 0x01;  ///< out-of-band blob
                                                     ///< (exchange_blobs), not
                                                     ///< an envelope

/// FNV-1a over a type name: stamped into every frame so a receiver whose
/// message-type registration order diverged from the sender's fails loudly
/// instead of dispatching payloads to the wrong handler.
constexpr std::uint32_t wire_name_hash(std::string_view name) noexcept {
  std::uint32_t h = 2166136261u;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

/// The explicit on-wire envelope header (satellite: the old cross-process
/// delivery assumed same-process type layout; this header is what makes
/// the assumption checkable). Fixed-width fields only, no implicit
/// padding; 56 bytes on every ABI we compile for.
struct wire_header {
  std::uint32_t magic = wire_magic;
  std::uint16_t version = wire_format_version;
  std::uint8_t endian = wire_native_endian();
  std::uint8_t flags = 0;
  std::uint32_t type_id = 0;        ///< msg_type_id in the shared registration order
  std::uint32_t type_hash = 0;      ///< wire_name_hash(type name); 0 for OOB frames
  std::uint32_t count = 0;          ///< payload records in this envelope
  std::uint32_t payload_bytes = 0;  ///< bytes following this header (the length prefix)
  std::uint32_t src = 0;            ///< sending rank
  std::uint32_t pad0 = 0;           ///< explicit padding (keeps seq 8-aligned)
  std::uint64_t seq = 0;            ///< per-(src,dest) wire sequence / OOB generation
  /// Topology stamp (satellite: single-writer topology across processes).
  /// 0 = unstamped; a nonzero stamp must match the receiver's stamp exactly
  /// or the frame is rejected — a stale-version envelope fails loudly
  /// rather than scattering into a resized pmap.
  std::uint64_t topo_version = 0;
  std::uint64_t structure_version = 0;
};

static_assert(sizeof(wire_header) == 56, "wire_header layout is part of the protocol");
static_assert(std::is_trivially_copyable_v<wire_header>);
static_assert(std::has_unique_object_representations_v<wire_header>,
              "wire_header must be padding-free: its object bytes are the wire bytes");

/// The versioned handshake: first bytes on every TCP connection (both
/// directions) and the leading fields of the shared-memory segment header.
/// A mismatch on any field is a rejection before envelope decoding.
struct wire_handshake {
  std::uint32_t magic = wire_magic;
  std::uint16_t version = wire_format_version;
  std::uint8_t endian = wire_native_endian();
  std::uint8_t pad0 = 0;
  std::uint32_t src_rank = 0;
  std::uint32_t n_ranks = 0;
  std::uint32_t channel = 0;  ///< per-process transport construction index
  std::uint32_t pad1 = 0;
};

static_assert(sizeof(wire_handshake) == 24, "wire_handshake layout is part of the protocol");
static_assert(std::is_trivially_copyable_v<wire_handshake>);
static_assert(std::has_unique_object_representations_v<wire_handshake>);

/// Validates the peer half of a handshake against ours. Throws wire_error
/// naming the first mismatching field; `who` prefixes the message.
inline void validate_handshake(const wire_handshake& peer, std::uint32_t expect_n_ranks,
                               std::uint32_t expect_channel, const std::string& who) {
  if (peer.magic != wire_magic)
    throw wire_error(who + ": bad magic (not a dpg wire peer)");
  if (peer.version != wire_format_version)
    throw wire_error(who + ": wire format version mismatch (peer v" +
                     std::to_string(peer.version) + ", local v" +
                     std::to_string(wire_format_version) + ")");
  if (peer.endian != wire_native_endian())
    throw wire_error(who + ": endianness mismatch (peer tag " +
                     std::to_string(peer.endian) + ", local tag " +
                     std::to_string(wire_native_endian()) + "); refusing to decode");
  if (peer.n_ranks != expect_n_ranks)
    throw wire_error(who + ": rank-count mismatch (peer says " +
                     std::to_string(peer.n_ranks) + ", local machine has " +
                     std::to_string(expect_n_ranks) + ")");
  if (peer.channel != expect_channel)
    throw wire_error(who + ": channel mismatch (peer channel " +
                     std::to_string(peer.channel) + ", local channel " +
                     std::to_string(expect_channel) +
                     "); transports were constructed in different orders");
}

/// Format-level validation of one received frame header (the part that
/// does not need the message-type registry; the transport adds registry
/// and topology checks on top). Throws wire_error on violation.
inline void validate_header(const wire_header& h, std::uint32_t n_ranks) {
  if (h.magic != wire_magic) throw wire_error("wire frame: bad magic (stream corrupt?)");
  if (h.version != wire_format_version)
    throw wire_error("wire frame: format version mismatch (frame v" +
                     std::to_string(h.version) + ", local v" +
                     std::to_string(wire_format_version) + ")");
  if (h.endian != wire_native_endian())
    throw wire_error("wire frame: endianness mismatch; refusing to decode");
  if (h.src >= n_ranks)
    throw wire_error("wire frame: source rank " + std::to_string(h.src) +
                     " out of range");
}

}  // namespace dpg::ampp
