// Epochs (§II, §III-D, §IV of the paper).
//
// An epoch is the coarse-grained synchronization construct for the
// fine-grained world of actions: it finishes, on all ranks, only when every
// action invoked inside it — and every action transitively created by
// dependency work items or message handlers — has finished. Epochs map
// directly onto AM++ epochs; termination is established by the transport's
// message-based four-counter protocol (transport::td_round).
//
// The two mid-epoch primitives from §III-D:
//   * epoch::flush()      — the paper's `epoch_flush`: perform as much
//     pending work as possible (flush coalescing buffers, run handlers
//     until this rank is locally quiescent), then return control.
//   * epoch::try_finish() — participate in exactly one termination-
//     detection round; returns true (and ends the epoch) iff no work was
//     left anywhere in the system. Used by uncoordinated algorithms such as
//     the per-thread-buckets Δ-stepping the paper describes.
#pragma once

#include "ampp/transport.hpp"
#include "obs/trace.hpp"

namespace dpg::ampp {

/// RAII scope for one epoch. Construction and destruction are collective:
/// every rank of the transport must construct its epoch, and destruction
/// (or end()) blocks until global termination is detected.
class epoch {
 public:
  /// Collective. Enables message sends on this rank and synchronizes entry
  /// so that no rank can inject epoch-N+1 messages while another rank is
  /// still completing epoch N.
  explicit epoch(transport_context& ctx);

  epoch(const epoch&) = delete;
  epoch& operator=(const epoch&) = delete;

  /// `epoch_flush`: flush outgoing buffers and run handlers until this rank
  /// is locally quiescent. Does not synchronize with other ranks. The
  /// emptiness re-check each iteration reads the per-lane occupancy
  /// counters (docs/runtime.md "Progress & quiescence fast paths") — it
  /// never rescans buffers or reduction caches.
  void flush();

  /// One termination-detection round. True iff the epoch ended globally;
  /// afterwards the epoch must not be used further. When false, pending
  /// work may have arrived — the caller typically returns to its local
  /// work source (e.g. its bucket structure) and tries again later.
  bool try_finish();

  /// Block until global termination (repeated TD rounds), then end the
  /// epoch. Idempotent.
  void end();

  bool ended() const noexcept { return ended_; }

  /// Ends the epoch if still active.
  ~epoch();

 private:
  void finish();

  transport_context& ctx_;
  bool ended_ = false;
  obs::trace_span span_;  ///< covers the epoch on this rank's trace lane
};

}  // namespace dpg::ampp
