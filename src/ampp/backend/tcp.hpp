// TCP socket backend: one process per rank, full mesh of stream sockets
// with length-prefixed envelope frames (the wire_header carries the
// length) and a versioned handshake in both directions on every
// connection. Works on loopback for single-host testing and across hosts
// in principle (one address for all ranks today; a per-rank host list is
// future work).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "ampp/backend.hpp"

namespace dpg::ampp::backend {

class tcp_backend final : public wire_backend {
 public:
  /// Binds this rank's listen port, connects to every lower rank, accepts
  /// from every higher rank, and validates handshakes both ways. Throws
  /// wire_error on timeout or a peer speaking a different wire format.
  tcp_backend(const backend_config& cfg, rank_t n_ranks, std::uint32_t channel);
  ~tcp_backend() override;

  const char* name() const override { return "tcp"; }
  rank_t self() const override { return self_; }
  void send(rank_t dest, const wire_header& h, const std::byte* payload) override;
  std::size_t poll(const frame_sink& sink) override;

 private:
  struct peer {
    int fd = -1;
    bool closed = false;                // EOF seen
    std::vector<std::byte> rx;          // reassembly buffer for partial reads
  };

  void send_all(int fd, const void* buf, std::size_t n, rank_t dest);
  /// Drains whatever is readable from one peer into its reassembly buffer
  /// and dispatches every complete frame. Returns frames delivered.
  std::size_t drain_peer(rank_t src, const frame_sink& sink);

  rank_t self_ = 0;
  rank_t n_ranks_ = 0;
  std::vector<peer> peers_;             // indexed by rank; peers_[self_] unused
  std::vector<std::mutex> send_mu_;
  std::mutex poll_mu_;
};

}  // namespace dpg::ampp::backend
