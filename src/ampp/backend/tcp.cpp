#include "ampp/backend/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/assert.hpp"

namespace dpg::ampp::backend {
namespace {

// Mesh construction is deadlock-free by ordering: rank r *connects* to
// every rank below it and *accepts* from every rank above it, so each
// unordered pair {lo, hi} gets exactly one socket, initiated by hi.
// Rank r of channel c listens on base_port + c * n_ranks + r.

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Blocking exact-length read during the handshake phase only (sockets are
// still blocking there); returns false on EOF.
bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::byte*>(buf);
  while (n) {
    const ssize_t got = ::read(fd, p, n);
    if (got == 0) return false;
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_exact(int fd, const void* buf, std::size_t n) {
  auto* p = static_cast<const std::byte*>(buf);
  while (n) {
    const ssize_t put = ::send(fd, p, n, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

// Exchanges handshakes on a fresh connection (ours out first, then read
// theirs) and validates. `expect_src` pins the peer's rank on accepted
// connections where we already know who must be on the other end from the
// port order (invalid_rank = learn it from the handshake).
rank_t shake(int fd, const wire_handshake& ours, rank_t expect_src, rank_t n_ranks,
             std::uint32_t channel, const char* who) {
  if (!write_exact(fd, &ours, sizeof(ours)))
    throw wire_error(std::string(who) + ": handshake write failed (peer closed early?)");
  wire_handshake theirs{};
  if (!read_exact(fd, &theirs, sizeof(theirs)))
    throw wire_error(std::string(who) +
                     ": handshake read failed — peer rejected us or is not a dpg wire peer");
  validate_handshake(theirs, n_ranks, channel, who);
  if (theirs.src_rank >= n_ranks)
    throw wire_error(std::string(who) + ": peer claims out-of-range rank " +
                     std::to_string(theirs.src_rank));
  if (expect_src != invalid_rank && theirs.src_rank != expect_src)
    throw wire_error(std::string(who) + ": expected rank " + std::to_string(expect_src) +
                     " on this connection, peer claims rank " +
                     std::to_string(theirs.src_rank));
  return theirs.src_rank;
}

}  // namespace

tcp_backend::tcp_backend(const backend_config& cfg, rank_t n_ranks, std::uint32_t channel)
    : self_(cfg.self_rank), n_ranks_(n_ranks), peers_(n_ranks), send_mu_(n_ranks) {
  DPG_ASSERT_MSG(self_ < n_ranks_, "tcp backend: self_rank out of range");
  const wire_handshake ours{.src_rank = self_, .n_ranks = n_ranks_, .channel = channel};
  const std::uint16_t my_port =
      static_cast<std::uint16_t>(cfg.base_port + channel * n_ranks_ + self_);

  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1)
    throw wire_error("tcp backend: bad host address '" + cfg.host + "'");

  // Listen first so any peer that races ahead of us finds the port open.
  int lfd = -1;
  if (self_ + 1 < n_ranks_) {  // the top rank only connects, never accepts
    lfd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (lfd < 0) throw wire_error("tcp backend: socket() failed");
    int one = 1;
    ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    ::sockaddr_in bindaddr = addr;
    bindaddr.sin_port = htons(my_port);
    if (::bind(lfd, reinterpret_cast<::sockaddr*>(&bindaddr), sizeof(bindaddr)) != 0 ||
        ::listen(lfd, static_cast<int>(n_ranks_)) != 0) {
      ::close(lfd);
      throw wire_error("tcp backend: bind/listen on port " + std::to_string(my_port) +
                       " failed (stale process holding it?)");
    }
  }

  try {
    // Connect downward: to every rank below self, with retry while the
    // peer's listener comes up.
    for (rank_t dest = 0; dest < self_; ++dest) {
      const std::uint16_t port =
          static_cast<std::uint16_t>(cfg.base_port + channel * n_ranks_ + dest);
      ::sockaddr_in peer_addr = addr;
      peer_addr.sin_port = htons(port);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(cfg.attach_timeout_ms);
      int fd = -1;
      for (;;) {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) throw wire_error("tcp backend: socket() failed");
        if (::connect(fd, reinterpret_cast<::sockaddr*>(&peer_addr),
                      sizeof(peer_addr)) == 0)
          break;
        ::close(fd);
        fd = -1;
        if (std::chrono::steady_clock::now() > deadline)
          throw wire_error("tcp backend: timed out connecting to rank " +
                           std::to_string(dest) + " on port " + std::to_string(port));
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      set_nodelay(fd);
      try {
        shake(fd, ours, dest, n_ranks_, channel, "tcp backend (connect)");
      } catch (...) {
        ::close(fd);
        throw;
      }
      peers_[dest].fd = fd;
    }

    // Accept upward: one connection from each rank above self, in whatever
    // order they arrive; the handshake tells us which rank it is.
    for (rank_t pending = n_ranks_ - 1 - self_; pending > 0; --pending) {
      const int fd = ::accept(lfd, nullptr, nullptr);
      if (fd < 0) throw wire_error("tcp backend: accept() failed");
      set_nodelay(fd);
      rank_t src;
      try {
        src = shake(fd, ours, invalid_rank, n_ranks_, channel, "tcp backend (accept)");
      } catch (...) {
        ::close(fd);
        throw;
      }
      if (src <= self_ || peers_[src].fd != -1) {
        ::close(fd);
        throw wire_error("tcp backend: duplicate or misdirected connection from rank " +
                         std::to_string(src));
      }
      peers_[src].fd = fd;
    }
  } catch (...) {
    if (lfd >= 0) ::close(lfd);
    for (peer& p : peers_)
      if (p.fd >= 0) ::close(p.fd);
    throw;
  }
  if (lfd >= 0) ::close(lfd);  // mesh complete; no more connections expected

  // Data phase is nonblocking on the receive side: poll() drains what's
  // there and returns.
  for (rank_t r = 0; r < n_ranks_; ++r) {
    if (r == self_) continue;
    const int fl = ::fcntl(peers_[r].fd, F_GETFL, 0);
    ::fcntl(peers_[r].fd, F_SETFL, fl | O_NONBLOCK);
  }
}

tcp_backend::~tcp_backend() {
  for (peer& p : peers_)
    if (p.fd >= 0) ::close(p.fd);
}

void tcp_backend::send_all(int fd, const void* buf, std::size_t n, rank_t dest) {
  auto* p = static_cast<const std::byte*>(buf);
  while (n) {
    const ssize_t put = ::send(fd, p, n, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // The socket inherited O_NONBLOCK (one fd serves both directions);
        // a full send buffer just means the peer is busy — wait it out.
        std::this_thread::yield();
        continue;
      }
      throw wire_error("tcp backend: send to rank " + std::to_string(dest) +
                       " failed (" + std::string(std::strerror(errno)) + ")");
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
}

void tcp_backend::send(rank_t dest, const wire_header& h, const std::byte* payload) {
  DPG_ASSERT_MSG(dest < n_ranks_ && dest != self_, "tcp backend: bad destination");
  std::lock_guard lk(send_mu_[dest]);
  peer& p = peers_[dest];
  if (p.fd < 0 || p.closed)
    throw wire_error("tcp backend: send to rank " + std::to_string(dest) +
                     " after peer disconnect");
  // One frame = the 56-byte header (whose payload_bytes field is the
  // length prefix) followed by the payload. Two writes keep the envelope
  // zero-copy from the pool buffer.
  send_all(p.fd, &h, sizeof(h), dest);
  if (h.payload_bytes) send_all(p.fd, payload, h.payload_bytes, dest);
}

std::size_t tcp_backend::drain_peer(rank_t src, const frame_sink& sink) {
  peer& p = peers_[src];
  if (p.fd < 0) return 0;
  // Append whatever is readable right now.
  std::byte chunk[16384];
  for (;;) {
    const ssize_t got = ::read(p.fd, chunk, sizeof(chunk));
    if (got > 0) {
      p.rx.insert(p.rx.end(), chunk, chunk + got);
      continue;
    }
    if (got == 0) {
      p.closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    throw wire_error("tcp backend: read from rank " + std::to_string(src) +
                     " failed (" + std::string(std::strerror(errno)) + ")");
  }

  // Dispatch every complete frame; keep the partial tail for next poll.
  std::size_t delivered = 0;
  std::size_t off = 0;
  while (p.rx.size() - off >= sizeof(wire_header)) {
    wire_header h;
    std::memcpy(&h, p.rx.data() + off, sizeof(wire_header));
    validate_header(h, n_ranks_);
    const std::size_t frame = sizeof(wire_header) + h.payload_bytes;
    if (p.rx.size() - off < frame) break;  // partial read: wait for the rest
    sink(h, p.rx.data() + off + sizeof(wire_header));
    off += frame;
    ++delivered;
  }
  if (off) p.rx.erase(p.rx.begin(), p.rx.begin() + static_cast<std::ptrdiff_t>(off));

  if (p.closed && !p.rx.empty())
    throw wire_error("tcp backend: rank " + std::to_string(src) +
                     " disconnected mid-frame (" + std::to_string(p.rx.size()) +
                     " bytes of partial frame)");
  return delivered;
}

std::size_t tcp_backend::poll(const frame_sink& sink) {
  std::unique_lock lk(poll_mu_, std::try_to_lock);
  if (!lk.owns_lock()) return 0;
  std::size_t delivered = 0;
  for (rank_t src = 0; src < n_ranks_; ++src) {
    if (src == self_) continue;
    delivered += drain_peer(src, sink);
  }
  return delivered;
}

}  // namespace dpg::ampp::backend
