#include "ampp/backend/shm_ring.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "util/assert.hpp"

namespace dpg::ampp::backend {
namespace {

// Segment layout:
//   [segment_header][ring(0,0)][ring(0,1)]...[ring(N-1,N-1)]
// ring(s,d) occupies sizeof(ring_header) + ring_bytes; only (s != d) rings
// are ever used but the full matrix keeps indexing trivial.
//
// Frame encoding inside a ring: [u64 frame_bytes][wire_header][payload],
// the whole record padded to 8 bytes. A frame never wraps: if the tail is
// too close to the end, the producer writes a wrap marker (frame_bytes ==
// kWrapMark) and restarts at offset 0. ring_bytes must therefore exceed
// the largest frame by enough margin; the constructor enforces a floor.

constexpr std::uint64_t kWrapMark = ~0ull;
constexpr std::uint32_t kSegMagic = 0x44504753u;  // "DPGS"

struct segment_header {
  wire_handshake hs;  // magic/version/endian/n_ranks/channel of the creator
  std::uint32_t seg_magic;
  std::uint32_t ring_bytes;
  std::atomic<std::uint32_t> ready;     // creator sets 1 after init
  std::atomic<std::uint32_t> attached;  // each rank increments once
};
static_assert(std::is_trivially_copyable_v<wire_handshake>);

struct alignas(64) ring_header {
  // head: next byte offset the consumer will read; tail: next byte offset
  // the producer will write. Monotonic offsets are NOT used — these are
  // plain positions in [0, ring_bytes) with an "empty when equal" rule,
  // so the usable capacity is ring_bytes - 8.
  std::atomic<std::uint64_t> head;
  char pad0[64 - sizeof(std::atomic<std::uint64_t>)];
  std::atomic<std::uint64_t> tail;
  char pad1[64 - sizeof(std::atomic<std::uint64_t>)];
};

std::size_t ring_slot_bytes(std::uint32_t ring_bytes) {
  return sizeof(ring_header) + ring_bytes;
}

std::size_t segment_bytes(rank_t n_ranks, std::uint32_t ring_bytes) {
  return sizeof(segment_header) +
         static_cast<std::size_t>(n_ranks) * n_ranks * ring_slot_bytes(ring_bytes);
}

std::uint64_t pad8(std::uint64_t n) { return (n + 7) & ~7ull; }

}  // namespace

struct shm_ring_backend::ring {
  ring_header hdr;
  std::byte data[1];  // ring_bytes_ of payload space follows hdr

  std::uint64_t used(std::uint64_t head, std::uint64_t tail, std::uint64_t cap) const {
    return tail >= head ? tail - head : cap - head + tail;
  }
};

shm_ring_backend::ring* shm_ring_backend::ring_at(rank_t src, rank_t dest) {
  auto* p = static_cast<std::byte*>(base_) + sizeof(segment_header) +
            (static_cast<std::size_t>(src) * n_ranks_ + dest) * ring_slot_bytes(ring_bytes_);
  return reinterpret_cast<ring*>(p);
}

shm_ring_backend::shm_ring_backend(const backend_config& cfg, rank_t n_ranks,
                                   std::uint32_t channel)
    : self_(cfg.self_rank),
      n_ranks_(n_ranks),
      ring_bytes_(cfg.ring_bytes),
      attach_timeout_ms_(cfg.attach_timeout_ms),
      shm_name_("/dpg_" + cfg.session + "_c" + std::to_string(channel)),
      send_mu_(n_ranks),
      frame_scratch_(n_ranks) {
  DPG_ASSERT_MSG(self_ < n_ranks_, "shm backend: self_rank out of range");
  DPG_ASSERT_MSG((ring_bytes_ & (ring_bytes_ - 1)) == 0 && ring_bytes_ >= (1u << 14),
                 "shm backend: ring_bytes must be a power of two >= 16KiB");

  const std::size_t len = segment_bytes(n_ranks_, ring_bytes_);
  creator_ = (self_ == 0);

  int fd = -1;
  if (creator_) {
    // A previous crashed run may have left a stale segment behind; a fresh
    // session id is the supported way to run concurrently, so an existing
    // segment with our name is garbage by definition.
    ::shm_unlink(shm_name_.c_str());
    fd = ::shm_open(shm_name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) throw wire_error("shm backend: shm_open(create " + shm_name_ + ") failed");
    if (::ftruncate(fd, static_cast<off_t>(len)) != 0) {
      ::close(fd);
      ::shm_unlink(shm_name_.c_str());
      throw wire_error("shm backend: ftruncate failed (is /dev/shm large enough?)");
    }
  } else {
    // Attach with retry: rank 0 may not have created the segment yet.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(attach_timeout_ms_);
    for (;;) {
      fd = ::shm_open(shm_name_.c_str(), O_RDWR, 0600);
      if (fd >= 0) {
        struct ::stat st{};
        if (::fstat(fd, &st) == 0 && static_cast<std::size_t>(st.st_size) >= len) break;
        ::close(fd);
        fd = -1;
      }
      if (std::chrono::steady_clock::now() > deadline)
        throw wire_error("shm backend: timed out waiting for rank 0 to create " +
                         shm_name_);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  base_ = ::mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base_ == MAP_FAILED) {
    base_ = nullptr;
    if (creator_) ::shm_unlink(shm_name_.c_str());
    throw wire_error("shm backend: mmap failed");
  }
  map_len_ = len;

  auto* seg = static_cast<segment_header*>(base_);
  if (creator_) {
    std::memset(base_, 0, len);
    seg->hs = wire_handshake{.src_rank = 0, .n_ranks = n_ranks_, .channel = channel};
    seg->seg_magic = kSegMagic;
    seg->ring_bytes = ring_bytes_;
    seg->attached.store(0, std::memory_order_relaxed);
    seg->ready.store(1, std::memory_order_release);
  } else {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(attach_timeout_ms_);
    while (seg->ready.load(std::memory_order_acquire) != 1) {
      if (std::chrono::steady_clock::now() > deadline)
        throw wire_error("shm backend: timed out waiting for segment init");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (seg->seg_magic != kSegMagic || seg->ring_bytes != ring_bytes_)
      throw wire_error("shm backend: segment geometry mismatch (ring_bytes " +
                       std::to_string(seg->ring_bytes) + " vs local " +
                       std::to_string(ring_bytes_) + ")");
    // Same format-version / endianness / rank-count discipline as the TCP
    // handshake, just mediated through the segment header.
    validate_handshake(seg->hs, n_ranks_, channel,
                       "shm backend (segment " + shm_name_ + ")");
  }

  // Barrier: everyone announces attachment; everyone waits for all ranks.
  seg->attached.fetch_add(1, std::memory_order_acq_rel);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(attach_timeout_ms_);
  while (seg->attached.load(std::memory_order_acquire) < n_ranks_) {
    if (std::chrono::steady_clock::now() > deadline)
      throw wire_error("shm backend: timed out waiting for " +
                       std::to_string(n_ranks_) + " ranks to attach (have " +
                       std::to_string(seg->attached.load()) + ")");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

shm_ring_backend::~shm_ring_backend() {
  if (base_) ::munmap(base_, map_len_);
  // The creator unlinks; attached peers keep their mapping valid until
  // their own munmap regardless (POSIX shm semantics).
  if (creator_) ::shm_unlink(shm_name_.c_str());
}

void shm_ring_backend::push_frame(ring& r, const wire_header& h,
                                  const std::byte* payload) {
  const std::uint64_t cap = ring_bytes_;
  const std::uint64_t frame = sizeof(wire_header) + h.payload_bytes;
  const std::uint64_t record = 8 + pad8(frame);
  DPG_ASSERT_MSG(record + 16 < cap,
                 "shm backend: envelope larger than ring capacity");

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(attach_timeout_ms_);
  std::uint64_t tail = r.hdr.tail.load(std::memory_order_relaxed);
  // A frame never straddles the end: if the record doesn't fit contiguously
  // the producer writes a wrap marker, declares [tail, cap) dead, and
  // restarts at 0 — so the wrap case needs (cap - tail) + record bytes of
  // free space, which also guarantees the restarted record cannot cross an
  // unread head. +8 keeps head == tail meaning "empty", never "full".
  const bool wraps = tail + 8 + frame > cap;
  const std::uint64_t need = (wraps ? (cap - tail) + record : record) + 8;
  for (;;) {
    const std::uint64_t head = r.hdr.head.load(std::memory_order_acquire);
    const std::uint64_t used = r.used(head, tail, cap);
    if (cap - used >= need) break;
    if (std::chrono::steady_clock::now() > deadline)
      throw wire_error("shm backend: ring to rank full for " +
                       std::to_string(attach_timeout_ms_) +
                       "ms — peer stalled or exited");
    std::this_thread::yield();
  }

  if (wraps) {
    std::memcpy(r.data + tail, &kWrapMark, 8);
    tail = 0;
  }
  std::uint64_t frame_bytes = frame;
  std::memcpy(r.data + tail + 8, &h, sizeof(wire_header));
  if (h.payload_bytes)
    std::memcpy(r.data + tail + 8 + sizeof(wire_header), payload, h.payload_bytes);
  std::memcpy(r.data + tail, &frame_bytes, 8);
  // The release store publishes the wrap marker, header, and payload
  // together; the consumer acquires them through the tail load.
  r.hdr.tail.store((tail + record) % cap, std::memory_order_release);
}

void shm_ring_backend::send(rank_t dest, const wire_header& h,
                            const std::byte* payload) {
  DPG_ASSERT_MSG(dest < n_ranks_ && dest != self_, "shm backend: bad destination");
  std::lock_guard lk(send_mu_[dest]);
  push_frame(*ring_at(self_, dest), h, payload);
}

std::size_t shm_ring_backend::poll(const frame_sink& sink) {
  std::unique_lock lk(poll_mu_, std::try_to_lock);
  if (!lk.owns_lock()) return 0;  // another thread is already draining
  std::size_t delivered = 0;
  const std::uint64_t cap = ring_bytes_;
  for (rank_t src = 0; src < n_ranks_; ++src) {
    if (src == self_) continue;
    ring& r = *ring_at(src, self_);
    for (;;) {
      std::uint64_t head = r.hdr.head.load(std::memory_order_relaxed);
      const std::uint64_t tail = r.hdr.tail.load(std::memory_order_acquire);
      if (head == tail) break;
      std::uint64_t frame_bytes;
      std::memcpy(&frame_bytes, r.data + head, 8);
      if (frame_bytes == kWrapMark) {
        r.hdr.head.store(0, std::memory_order_release);
        continue;
      }
      if (frame_bytes < sizeof(wire_header) || frame_bytes > cap)
        throw wire_error("shm backend: corrupt frame length in ring");
      // Copy out before publishing the head so the producer can reuse the
      // space while the sink runs.
      auto& scratch = frame_scratch_[src];
      scratch.resize(frame_bytes);
      std::memcpy(scratch.data(), r.data + head + 8, frame_bytes);
      r.hdr.head.store((head + 8 + pad8(frame_bytes)) % cap,
                       std::memory_order_release);
      wire_header h;
      std::memcpy(&h, scratch.data(), sizeof(wire_header));
      validate_header(h, n_ranks_);
      if (sizeof(wire_header) + h.payload_bytes != frame_bytes)
        throw wire_error("shm backend: frame length disagrees with header");
      sink(h, scratch.data() + sizeof(wire_header));
      ++delivered;
    }
  }
  return delivered;
}

}  // namespace dpg::ampp::backend
