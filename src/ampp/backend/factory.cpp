#include <atomic>

#include "ampp/backend.hpp"
#include "ampp/backend/shm_ring.hpp"
#include "ampp/backend/tcp.hpp"

namespace dpg::ampp {
namespace {

// Automatic channel assignment: the SPMD model runs the same program in
// every rank process, so transports are constructed in the same order
// everywhere and a per-process counter yields matching channel ids (the
// handshake verifies this instead of trusting it). Deliberately never
// reset — a second transport in the same process (cc_solver's rewrite
// pass, serving sessions) gets a fresh shm segment / port block.
std::atomic<std::uint32_t> next_channel{0};

}  // namespace

std::unique_ptr<wire_backend> make_backend(const backend_config& cfg, rank_t n_ranks) {
  if (cfg.kind == backend_config::kind_t::inproc) return nullptr;
  const std::uint32_t channel =
      cfg.channel >= 0 ? static_cast<std::uint32_t>(cfg.channel)
                       : next_channel.fetch_add(1, std::memory_order_relaxed);
  switch (cfg.kind) {
    case backend_config::kind_t::shm_ring:
      return std::make_unique<backend::shm_ring_backend>(cfg, n_ranks, channel);
    case backend_config::kind_t::tcp:
      return std::make_unique<backend::tcp_backend>(cfg, n_ranks, channel);
    case backend_config::kind_t::inproc:
      break;
  }
  return nullptr;
}

}  // namespace dpg::ampp
