// Shared-memory ring-buffer backend: multi-process, single host, one
// process per rank. One POSIX shm segment per (session, channel) holds an
// N×N matrix of SPSC byte rings — ring (s,d) is written only by rank s's
// process and read only by rank d's process, so each ring needs nothing
// stronger than acquire/release on its head/tail counters. Progress is
// poll-based (reader spins with yield); the segment is created by rank 0
// and unlinked by it on teardown.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ampp/backend.hpp"

namespace dpg::ampp::backend {

class shm_ring_backend final : public wire_backend {
 public:
  /// Creates (rank 0) or attaches (other ranks) the session's segment and
  /// waits for all peers to attach. Throws wire_error on timeout or a
  /// format/geometry mismatch with an existing segment.
  shm_ring_backend(const backend_config& cfg, rank_t n_ranks, std::uint32_t channel);
  ~shm_ring_backend() override;

  const char* name() const override { return "shm_ring"; }
  rank_t self() const override { return self_; }
  void send(rank_t dest, const wire_header& h, const std::byte* payload) override;
  std::size_t poll(const frame_sink& sink) override;

 private:
  struct ring;  // layout in shm_ring.cpp

  ring* ring_at(rank_t src, rank_t dest);
  void push_frame(ring& r, const wire_header& h, const std::byte* payload);

  rank_t self_ = 0;
  rank_t n_ranks_ = 0;
  std::uint32_t ring_bytes_ = 0;
  std::uint32_t attach_timeout_ms_ = 0;
  std::string shm_name_;
  bool creator_ = false;
  void* base_ = nullptr;    // mmap'd segment
  std::size_t map_len_ = 0;
  // The rings are SPSC across processes, but one *process* may send from
  // several threads (helper threads flushing lanes); these local mutexes
  // serialize this process's producer side per destination, and the
  // consumer side across concurrent poll() calls.
  std::vector<std::mutex> send_mu_;
  std::mutex poll_mu_;
  std::vector<std::vector<std::byte>> frame_scratch_;  // per-src reassembly
};

}  // namespace dpg::ampp::backend
