// Fundamental identifiers for the active-message runtime.
#pragma once

#include <cstdint>

namespace dpg::ampp {

/// Rank identifier (a "node" of the simulated distributed machine).
using rank_t = std::uint32_t;

/// Message-type identifier assigned at registration time.
using msg_type_id = std::uint32_t;

inline constexpr rank_t invalid_rank = static_cast<rank_t>(-1);

/// Rank of the calling thread inside transport::run, or invalid_rank
/// outside. Property maps and graph accessors use this to enforce the
/// owner-computes discipline the paper assumes (§III-A / §IV).
rank_t current_rank() noexcept;

namespace detail {
/// Set by transport::run for each SPMD thread. RAII so nested runs
/// (not supported) fail loudly rather than corrupt state.
class current_rank_scope {
 public:
  explicit current_rank_scope(rank_t r) noexcept;
  ~current_rank_scope();
  current_rank_scope(const current_rank_scope&) = delete;
  current_rank_scope& operator=(const current_rank_scope&) = delete;
};
}  // namespace detail

}  // namespace dpg::ampp
