// Deterministic fault injection for the simulated wire (the replacement
// for the old single `scramble_delivery` flag).
//
// A `fault_plan` is a seeded list of rules; each rule matches a subset of
// envelopes by (source rank, destination rank, message-type name prefix)
// and gives per-envelope probabilities for four wire faults:
//
//   * reorder   — the envelope is inserted at a random position of the
//                 destination inbox instead of the back (adversarial
//                 delivery order; active messages promise none);
//   * duplicate — a second copy of the envelope reaches the inbox; the
//                 transport's receive-side dedup window (per-(src,dest)
//                 wire sequence numbers) suppresses it before dispatch;
//   * delay     — the envelope is held at the sender and released after
//                 `delay_flushes` progress ticks;
//   * drop      — the transmission is lost; the sender's ack-timeout fires
//                 after `retry_timeout_flushes << drops` ticks (exponential
//                 backoff) and the envelope is retransmitted. `max_drops`
//                 bounds the adversary, so delivery is always eventual and
//                 epochs still terminate.
//
// Every decision is a pure function of (plan seed ^ transport seed, fault
// stage, src, dest, msg type, wire sequence number, attempt) — no hidden
// RNG state — so a run's fault pattern reproduces exactly from the printed
// seed regardless of thread interleaving, and a single-rank run is
// bit-identical end to end. See docs/runtime.md "Fault injection".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ampp/types.hpp"
#include "util/rng.hpp"

namespace dpg::ampp {

/// Decision site inside the transmission pipeline; part of the hash input
/// so the four coins of one envelope are independent.
enum class fault_stage : std::uint64_t {
  reorder = 1,
  duplicate = 2,
  delay = 3,
  drop = 4,
  placement = 5,  ///< inbox position draw for a reordered envelope
};

/// One fault-injection rule: matchers plus per-envelope probabilities.
struct fault_rule {
  // ---- matchers (disengaged / empty = wildcard) ---------------------------
  std::optional<rank_t> src;   ///< only envelopes sent by this rank
  std::optional<rank_t> dest;  ///< only envelopes addressed to this rank
  std::string type_prefix;     ///< message-type name prefix ("" = every type,
                               ///< "dpg." = the control plane)

  // ---- per-envelope fault probabilities in [0, 1] -------------------------
  double reorder = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  double drop = 0.0;

  // ---- knobs --------------------------------------------------------------
  /// Progress ticks a delayed envelope is held before release.
  unsigned delay_flushes = 3;
  /// Base ack-timeout in progress ticks; retransmission n waits
  /// `retry_timeout_flushes << n` ticks (exponential backoff).
  unsigned retry_timeout_flushes = 2;
  /// Adversary budget: one envelope is dropped at most this many times,
  /// guaranteeing eventual delivery (and hence epoch termination).
  unsigned max_drops = 4;

  bool matches(rank_t s, rank_t d, std::string_view type) const {
    if (src.has_value() && *src != s) return false;
    if (dest.has_value() && *dest != d) return false;
    if (!type_prefix.empty() &&
        std::string_view(type).substr(0, type_prefix.size()) != type_prefix)
      return false;
    return true;
  }
};

namespace detail {

/// Stateless mix of every coordinate of one fault decision.
inline std::uint64_t fault_mix(std::uint64_t seed, fault_stage st, rank_t src, rank_t dest,
                               msg_type_id type, std::uint64_t seq,
                               std::uint64_t attempt) noexcept {
  std::uint64_t h = splitmix64(seed ^ 0xfa017ULL).next();
  const std::uint64_t words[5] = {static_cast<std::uint64_t>(st),
                                  (static_cast<std::uint64_t>(src) << 32) | dest,
                                  static_cast<std::uint64_t>(type), seq, attempt};
  for (const std::uint64_t w : words) h = splitmix64(h ^ (w + 0x9e3779b97f4a7c15ULL)).next();
  return h;
}

}  // namespace detail

/// A seeded, deterministic fault-injection plan. Default-constructed plans
/// are inactive and cost nothing on the transport's hot paths.
class fault_plan {
 public:
  /// Mixed with the transport's own seed; two transports with equal
  /// configuration make identical fault decisions.
  std::uint64_t seed = 0;
  /// First matching rule wins; no match = the envelope is delivered cleanly.
  std::vector<fault_rule> rules;

  bool active() const noexcept { return !rules.empty(); }

  const fault_rule* match(rank_t src, rank_t dest, std::string_view type) const {
    for (const fault_rule& r : rules)
      if (r.matches(src, dest, type)) return &r;
    return nullptr;
  }

  /// Deterministic coin with probability `p`.
  static bool decide(double p, std::uint64_t seed, fault_stage st, rank_t src, rank_t dest,
                     msg_type_id type, std::uint64_t seq, std::uint64_t attempt) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return detail::fault_mix(seed, st, src, dest, type, seq, attempt) <
           static_cast<std::uint64_t>(p * 18446744073709551616.0 /* 2^64 */);
  }

  /// Deterministic uniform draw (for the reorder placement index).
  static std::uint64_t draw(std::uint64_t seed, fault_stage st, rank_t src, rank_t dest,
                            msg_type_id type, std::uint64_t seq,
                            std::uint64_t attempt) noexcept {
    return detail::fault_mix(seed, st, src, dest, type, seq, attempt);
  }

  // ---- canned plans (the sim harness sweeps these) ------------------------

  /// No faults.
  static fault_plan none() { return {}; }

  /// Pure adversarial reordering — the old `scramble_delivery = true`.
  static fault_plan scramble(std::uint64_t seed) {
    fault_rule r;
    r.reorder = 1.0;
    return fault_plan{seed, {r}};
  }

  /// Reordering plus heavy loss: every lane drops ~30% of transmissions.
  static fault_plan lossy(std::uint64_t seed, double drop = 0.3) {
    fault_rule r;
    r.reorder = 0.25;
    r.drop = drop;
    return fault_plan{seed, {r}};
  }

  /// Everything at once: reorder, duplicate, delay, and drop.
  static fault_plan chaos(std::uint64_t seed) {
    fault_rule r;
    r.reorder = 0.5;
    r.duplicate = 0.25;
    r.delay = 0.25;
    r.drop = 0.25;
    return fault_plan{seed, {r}};
  }

  /// Faults aimed only at the control plane (termination detection and
  /// collectives, message types named "dpg.*") — data traffic is clean.
  static fault_plan control_chaos(std::uint64_t seed) {
    fault_rule r;
    r.type_prefix = "dpg.";
    r.reorder = 1.0;
    r.duplicate = 0.25;
    r.delay = 0.2;
    r.drop = 0.25;
    return fault_plan{seed, {r}};
  }
};

}  // namespace dpg::ampp
