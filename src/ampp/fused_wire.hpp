// Wire-format packing for fused message families (multi-pattern fusion).
//
// When N single-locality relax patterns over one graph share a generator
// and target-locality shape, their per-edge candidates can travel in one
// record: the shared addressing field (the target vertex every member
// routes by) is sent once, and each member contributes one 8-byte live
// slot. This header owns the layout arithmetic — slot offsets, record
// size, and the byte comparison against N separate fast records — so the
// pattern-side fusion pass and the explain output agree on one source of
// truth for what the fused wire carries.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dpg::ampp {

/// One member pattern's live slot inside a fused record.
struct fused_slot {
  std::string member;           ///< member action name, e.g. "sssp.relax"
  std::size_t offset = 0;       ///< byte offset of the slot in the fused record
  std::size_t bytes = 0;        ///< slot width (8 for every atomic-capable value)
  std::size_t solo_bytes = 0;   ///< bytes of the member's own 1-pattern fast record
  std::string update;           ///< value kind + direction, e.g. "f64 min-update"
};

/// The packed layout of one fused message family: a shared addressing
/// prefix followed by the members' live slots, in member order.
struct fused_layout {
  std::size_t addressing_bytes = 0;  ///< shared routing prefix (target vertex)
  std::size_t record_bytes = 0;      ///< addressing + all live slots, no padding
  std::vector<fused_slot> slots;

  /// Bytes the same candidates would cost as separate per-member records
  /// (each repeating the addressing field the fused record shares).
  std::size_t separate_bytes() const {
    std::size_t b = 0;
    for (const fused_slot& s : slots) b += s.solo_bytes;
    return b;
  }

  /// The satellite-facing rendering: shared addressing bytes, per-member
  /// live slots, and the per-hop fused payload vs its separate-record sum.
  std::string describe(const std::string& family) const {
    std::string out;
    out += "fused family " + family + ":\n";
    out += "  members: " + std::to_string(slots.size()) +
           " single-locality relax patterns, one generator shape\n";
    out += "  shared addressing: " + std::to_string(addressing_bytes) +
           "B (target vertex, sent once per record)\n";
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const fused_slot& s = slots[i];
      out += "  member " + std::to_string(i) + " " + s.member + ": live slot @" +
             std::to_string(s.offset) + "B +" + std::to_string(s.bytes) + "B " +
             s.update + " (solo record " + std::to_string(s.solo_bytes) + "B)\n";
    }
    out += "  per-hop fused payload: " + std::to_string(record_bytes) + "B (vs " +
           std::to_string(separate_bytes()) + "B as separate records)\n";
    return out;
  }
};

/// Packs member slots after the shared addressing prefix, in declaration
/// order, with no padding (every slot is 8 bytes, the prefix is 8 bytes).
/// The caller supplies slots with `bytes`, `solo_bytes`, `member`, and
/// `update` filled in; offsets and totals come back computed.
inline fused_layout pack_fused_layout(std::size_t addressing_bytes,
                                      std::vector<fused_slot> slots) {
  fused_layout l;
  l.addressing_bytes = addressing_bytes;
  std::size_t at = addressing_bytes;
  for (fused_slot& s : slots) {
    s.offset = at;
    at += s.bytes;
  }
  l.record_bytes = at;
  l.slots = std::move(slots);
  return l;
}

}  // namespace dpg::ampp
