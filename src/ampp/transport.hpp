// The active-message transport: a from-scratch reimplementation of the
// AM++ / Active Pebbles facilities the paper builds on (§I, §IV), running
// over a simulated distributed machine (N ranks inside one process, one
// SPMD thread per rank).
//
// Faithfulness notes:
//  * Message types are statically typed; handlers are arbitrary functions
//    and are NOT restricted — a handler may send any number of further
//    messages (the AM++ property the paper singles out in §I).
//  * Coalescing: sends are buffered per (source, destination) lane and
//    delivered as batched envelopes (§IV "built-in layers for message
//    coalescing").
//  * Caching/reductions: a message type may opt into a direct-mapped
//    reduction cache that combines same-key payloads before they reach the
//    wire (§IV "caching allows to avoid unnecessary message sends").
//  * Object-based addressing: a message type may carry an address map that
//    computes the destination rank from the payload (§IV-D).
//  * Termination detection / epochs: epochs map to AM++ epochs; the end of
//    an epoch is detected with a message-based four-counter protocol (see
//    epoch.hpp). No shortcut through shared memory is taken for the
//    decision — only the monotonic sent/received counters that a real
//    distributed runtime would also reduce.
//
// Progress model: polling. Messages are handled when the owning rank's
// thread calls into the runtime (drain/flush/collectives/epoch ends), the
// same progress discipline AM++ uses.
#pragma once

#include <array>
#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "ampp/backend.hpp"
#include "ampp/fault.hpp"
#include "ampp/stats.hpp"
#include "ampp/types.hpp"
#include "obs/registry.hpp"
#include "util/assert.hpp"
#include "util/spinlock.hpp"

namespace dpg::ampp {

class transport;
class transport_context;
class epoch;

/// Construction-time transport knobs: they determine the machine shape
/// (thread/lane topology) and cannot change over a transport's lifetime.
/// Under the serving layer every solver session's transport shares the
/// machine shape of its server, so sessions are interchangeable in the
/// warm pool.
struct machine_config {
  rank_t n_ranks = 4;
  /// Dedicated message-handler threads per rank (§II-A: ranks "each
  /// running multiple threads"). 0 = polling-only progress (handlers run
  /// when the rank's SPMD thread calls into the runtime). With helpers,
  /// handlers execute concurrently with the SPMD thread: property maps
  /// touched by patterns should hold atomic-capable values or the
  /// algorithm must phase its accesses (see docs/runtime.md).
  unsigned handler_threads = 0;
  /// Wire backend (see backend.hpp). Default: all ranks in this process,
  /// the classic simulated machine. shm_ring / tcp make this process host
  /// exactly rank `backend.self_rank` and carry every remote envelope over
  /// a real inter-process wire.
  backend_config backend{};
};

/// Runtime tuning knobs: per-session behavior that may legitimately differ
/// between transports sharing one machine shape (a chaos-testing session
/// next to a clean one, different coalescing budgets per workload).
struct tuning_config {
  /// Payloads buffered per (source, destination) lane before an envelope is
  /// delivered. 1 disables coalescing.
  std::size_t coalescing_size = 256;
  /// Root seed for runtime-internal randomization (mixed into every
  /// fault-injection decision).
  std::uint64_t seed = 42;
  /// Fault-injection plan: seeded, per-(src, dest, message-type) injection
  /// of envelope reorder, duplicate, delay, and drop-with-retry (see
  /// fault.hpp). Active-message semantics promise nothing about delivery
  /// order or timing, so every algorithm must survive any plan; tests use
  /// plans to falsify accidental ordering/exactly-once assumptions (in the
  /// library and in patterns alike). `fault_plan::scramble(seed)` is the
  /// old `scramble_delivery = true`. Default: no faults, zero overhead.
  fault_plan faults{};
};

/// Transport configuration: the deprecated flat aggregate of machine_config
/// and tuning_config, kept so existing call sites (designated initializers
/// everywhere) compile unchanged. New code — the serving layer in
/// particular — should pass the two halves separately so construction-time
/// and runtime knobs cannot be conflated.
struct transport_config {
  rank_t n_ranks = 4;
  std::size_t coalescing_size = 256;
  std::uint64_t seed = 42;
  fault_plan faults{};
  unsigned handler_threads = 0;
  backend_config backend{};

  /// The construction-time half.
  machine_config machine() const {
    return machine_config{n_ranks, handler_threads, backend};
  }
  /// The runtime half.
  tuning_config tuning() const { return tuning_config{coalescing_size, seed, faults}; }
  /// Reassembles the flat aggregate from its two halves.
  static transport_config join(const machine_config& m, const tuning_config& t) {
    return transport_config{m.n_ranks, t.coalescing_size, t.seed, t.faults,
                            m.handler_threads, m.backend};
  }
};

/// A shareable envelope byte-buffer pool: free lists of wire buffers,
/// sharded to keep concurrent transports off one lock. A transport that is
/// not handed a pool creates a private one, so single-solver programs are
/// unchanged; the serving layer hands every session's transport one shared
/// pool, which keeps per-session idle overhead near zero — warm sessions
/// park no buffer capacity of their own (the iPregel memory discipline).
class wire_pool {
 public:
  /// `shards` sizes the lock sharding (rank count is a good choice).
  explicit wire_pool(std::size_t shards = 16) : shards_(shards == 0 ? 1 : shards) {}

  wire_pool(const wire_pool&) = delete;
  wire_pool& operator=(const wire_pool&) = delete;

  /// A recycled buffer (capacity intact, size 0) or a fresh empty one.
  std::vector<std::byte> acquire(std::size_t shard) {
    shard_t& s = shards_[shard % shards_.size()];
    std::lock_guard<dpg::spinlock> g(s.mu);
    if (s.free_list.empty()) return {};
    std::vector<std::byte> bytes = std::move(s.free_list.back());
    s.free_list.pop_back();
    return bytes;
  }

  /// Returns `bytes` to the shard's free list. Bounded in both list length
  /// and kept capacity: envelopes are normally coalescing-size payloads,
  /// but a reduction-cache spill can be much bigger and should not be
  /// hoarded.
  void release(std::size_t shard, std::vector<std::byte>&& bytes) {
    constexpr std::size_t kMaxPooled = 64;
    constexpr std::size_t kMaxPooledCapacity = std::size_t{1} << 20;
    if (bytes.capacity() == 0 || bytes.capacity() > kMaxPooledCapacity) return;
    bytes.clear();
    shard_t& s = shards_[shard % shards_.size()];
    std::lock_guard<dpg::spinlock> g(s.mu);
    if (s.free_list.size() < kMaxPooled) s.free_list.push_back(std::move(bytes));
  }

  /// Buffers currently parked across all shards (diagnostics).
  std::size_t pooled() const {
    std::size_t n = 0;
    for (const shard_t& s : shards_) {
      std::lock_guard<dpg::spinlock> g(s.mu);
      n += s.free_list.size();
    }
    return n;
  }

 private:
  struct shard_t {
    mutable dpg::spinlock mu;
    std::vector<std::vector<std::byte>> free_list;
  };
  std::deque<shard_t> shards_;  // deque: shards hold locks
};

namespace detail {

class message_type_base;

/// Type-erased dispatch table for one registered message type.
struct message_vtable {
  void (*dispatch)(message_type_base* self, transport_context& ctx, const std::byte* data,
                   std::uint32_t count);
  std::size_t payload_size;
  message_type_base* self;
};

/// A coalesced batch of `count` payloads of one message type.
struct envelope {
  const message_vtable* vt = nullptr;
  std::uint32_t count = 0;
  std::vector<std::byte> bytes;
  // Wire header used by the reliability layer (stamped only when a
  // fault_plan is active): source rank and the per-(src, dest) sequence
  // number that the receiver's dedup window keys on.
  rank_t src = invalid_rank;
  std::uint64_t seq = 0;
};

/// Base class for registered message types; the transport needs uniform
/// access to buffered lanes for flushing during epochs.
class message_type_base {
 public:
  virtual ~message_type_base() = default;

  /// Spill every buffered payload and cached reduction slot owned by
  /// `src` onto the wire. Visits only dirty lanes (lanes whose occupancy
  /// tracking says they hold data); clean lanes are skipped without
  /// locking.
  virtual void flush_rank(rank_t src) = 0;

  /// True when rank `src` has nothing buffered for any destination. O(1):
  /// a single occupancy-counter read, no lane locks, no cache scans.
  virtual bool rank_buffers_empty(rank_t src) const = 0;

  /// Occupancy counter for rank `src`: buffered payloads + used reduction
  /// slots across all of its lanes (the value rank_buffers_empty tests).
  virtual std::int64_t rank_occupancy(rank_t src) const = 0;

  /// Brute-force recount of rank_occupancy under the lane locks — the
  /// conservation oracle for tests; never on a hot path.
  virtual std::int64_t rank_occupancy_scan(rank_t src) const = 0;

  /// Dispatch table for envelopes of this type — the cross-process receive
  /// path rebuilds an envelope from a wire frame and needs the vtable the
  /// in-process sender would have stamped.
  virtual const message_vtable* wire_vtable() const = 0;
  /// Bytes one payload occupies on the wire (sizeof(Payload), or the
  /// compact-layout stride): validates a frame's length against its count.
  virtual std::size_t wire_stride_bytes() const = 0;

  const std::string& name() const { return name_; }
  msg_type_id id() const { return id_; }
  /// FNV-1a of the type name, stamped into every cross-process frame so
  /// registration-order divergence between processes fails loudly.
  std::uint32_t wire_hash() const { return wire_hash_; }

 protected:
  friend class dpg::ampp::transport;
  std::string name_;
  msg_type_id id_ = 0;
  std::uint32_t wire_hash_ = 0;
  bool internal_ = false;  ///< control-plane types bypass epoch/TD accounting
  transport* tp_ = nullptr;
};

}  // namespace detail

/// Handler concept: invocable with (transport_context&, const Payload&).
template <class H, class Payload>
concept message_handler = std::invocable<H&, transport_context&, const Payload&>;

/// Address map concept: computes a destination rank from a payload (§IV-D).
template <class A, class Payload>
concept address_map = std::invocable<const A&, const Payload&> &&
    std::convertible_to<std::invoke_result_t<const A&, const Payload&>, rank_t>;

/// One contiguous byte range of a payload that travels on the wire when a
/// compact wire layout is installed (see message_type::set_wire_layout).
struct wire_range {
  std::uint32_t offset = 0;
  std::uint32_t len = 0;
};

/// A registered, statically typed active-message type.
///
/// Payloads must be trivially copyable: they travel through byte buffers
/// exactly as they would through a network. Handlers run on the destination
/// rank's thread and may freely send further messages of any type.
template <class Payload>
class message_type final : public detail::message_type_base {
  static_assert(std::is_trivially_copyable_v<Payload>,
                "active-message payloads must be trivially copyable");

 public:
  using handler_fn = std::function<void(transport_context&, const Payload&)>;
  using address_fn = std::function<rank_t(const Payload&)>;
  using key_fn = std::function<std::uint64_t(const Payload&)>;
  using combine_fn = std::function<Payload(const Payload&, const Payload&)>;

  /// Send `p` to rank `dest`. Must be called from inside transport::run on
  /// the sending rank's thread and, for non-internal types, inside an epoch.
  void send(transport_context& ctx, rank_t dest, const Payload& p);

  /// Object-based addressing: destination computed by the address map.
  void send(transport_context& ctx, const Payload& p);

  /// Enable the AM++-style reduction cache: sends whose key collides with a
  /// cached entry are combined instead of transmitted. `cache_bits` gives a
  /// 2^cache_bits-slot direct-mapped cache per destination lane. The
  /// combine function must make one combined message semantically equal to
  /// delivering both (e.g. min for SSSP relaxations).
  void enable_reduction(key_fn key, combine_fn combine, unsigned cache_bits = 10);

  bool reduction_enabled() const { return reduce_.has_value(); }

  /// Installs a compact wire layout: only the given byte ranges of each
  /// payload travel inside envelopes; the receiver reassembles payloads
  /// with the dead bytes value-initialized (`Payload{}`). Ranges must be
  /// sorted, non-overlapping, and in-bounds. Must be called before
  /// transport::run, like registration itself. Senders still buffer and
  /// reduce *full* payloads — truncation happens at envelope flush, so
  /// reduction caches and address maps are unaffected. A layout covering
  /// the whole payload reverts to the plain memcpy path.
  void set_wire_layout(std::vector<wire_range> ranges);

  /// Bytes one payload occupies on the wire under the current layout.
  std::size_t wire_stride() const { return layout_.empty() ? sizeof(Payload) : wire_stride_; }

  /// Installs an envelope-batch handler: the receiver hands a whole
  /// envelope's payload bytes (`count` packed records) to `h` in one call
  /// instead of dispatching per record — the entry point of the SIMD batch
  /// kernels (see pattern::instantiated_action::batch_handle). Only taken
  /// when no compact wire layout is installed (full payloads travel, so the
  /// bytes are the records verbatim); a layout silently keeps the
  /// per-record path. The batch handler fully replaces the per-record
  /// handler for batched envelopes and must preserve its semantics.
  using batch_handler_fn =
      std::function<void(transport_context&, const std::byte*, std::uint32_t)>;
  void set_batch_handler(batch_handler_fn h);

  void flush_rank(rank_t src) override;
  bool rank_buffers_empty(rank_t src) const override;
  std::int64_t rank_occupancy(rank_t src) const override;
  std::int64_t rank_occupancy_scan(rank_t src) const override;
  const detail::message_vtable* wire_vtable() const override { return &vt_; }
  std::size_t wire_stride_bytes() const override { return wire_stride(); }

 private:
  friend class transport;
  message_type() = default;

  struct red_slot {
    bool used = false;
    std::uint64_t key = 0;
    Payload payload;
  };

  /// One outgoing lane: source rank -> one destination rank. With
  /// handler threads, handlers running on the source rank send
  /// concurrently with the SPMD thread, so each lane carries its own lock
  /// (uncontended and near-free in polling mode).
  struct lane {
    mutable dpg::spinlock mu;
    std::vector<Payload> buf;
    std::vector<red_slot> cache;  // empty unless reduction enabled
    /// Buffered payloads + used reduction slots in this lane. Written only
    /// under mu — and with plain load+store rather than fetch_add, so the
    /// send hot path carries no lock-prefixed RMW. Read lock-free
    /// (relaxed) by flush_rank's clean-lane skip and the quiescence
    /// probes; a stale zero is safe because any payload it misses is
    /// flushed by the next TD round, perturbing the sent-sums and failing
    /// the double-round stability test.
    std::atomic<std::int64_t> occupancy{0};
    /// Used reduction-cache slots, with their indices, so a flush spills
    /// O(used) slots instead of scanning all 2^cache_bits. Guarded by mu;
    /// used_list holds each used slot exactly once (entries are appended
    /// only on the unused->used transition and cleared by the spill).
    std::uint32_t used_slots = 0;
    std::vector<std::uint32_t> used_list;
  };

  struct per_source {
    std::deque<lane> lanes;  // indexed by destination rank; deque: lanes hold locks
  };

  struct reduction {
    key_fn key;
    combine_fn combine;
    unsigned bits;
  };

  static void dispatch_thunk(detail::message_type_base* self, transport_context& ctx,
                             const std::byte* data, std::uint32_t count);

  void flush_lane(rank_t src, rank_t dest);
  void flush_lane_locked(rank_t src, rank_t dest, lane& ln, bool spill_cache);
  /// Occupancy bookkeeping (call with the lane lock held): plain
  /// load+store, not fetch_add — writers are serialized by the lane lock,
  /// only the lock-free readers need atomicity.
  static void note_occupancy(lane& ln, std::int64_t delta);

  handler_fn handler_;
  batch_handler_fn batch_;  ///< whole-envelope dispatch (empty: per record)
  address_fn addr_;
  std::optional<reduction> reduce_;
  std::deque<per_source> rows_;  // indexed by source rank (deque: lanes hold locks)
  detail::message_vtable vt_{};
  std::vector<wire_range> layout_;  ///< empty: full payloads travel
  std::size_t wire_stride_ = sizeof(Payload);
};

/// Per-rank view of the transport handed to the SPMD function and to
/// message handlers. Provides rank identity, progress, and collectives.
class transport_context {
 public:
  rank_t rank() const noexcept { return rank_; }
  rank_t size() const noexcept;
  transport& tp() noexcept { return *tp_; }

  /// Process every envelope currently queued for this rank (handlers may
  /// enqueue more locally; those are processed too). Returns the number of
  /// payloads handled.
  std::size_t drain();

  /// Process at most one queued envelope. Returns payloads handled.
  std::size_t poll_once();

  /// Message-based barrier across all ranks (progress keeps running while
  /// waiting, as in AM++: handlers execute inside blocking calls).
  void barrier();

  /// Message-based all-reduce of a trivially copyable value (<= 56 bytes).
  /// All ranks must call with the same op in the same program order.
  template <class T, class Op>
  T allreduce(T value, Op op);

  /// Convenience reductions.
  template <class T>
  T allreduce_sum(T v) {
    return allreduce(v, [](T a, T b) { return a + b; });
  }
  template <class T>
  T allreduce_min(T v) {
    return allreduce(v, [](T a, T b) { return b < a ? b : a; });
  }
  template <class T>
  T allreduce_max(T v) {
    return allreduce(v, [](T a, T b) { return a < b ? b : a; });
  }
  bool allreduce_or(bool v) {
    return allreduce_sum(std::uint32_t{v ? 1u : 0u}) != 0;
  }

  bool in_epoch() const noexcept { return in_epoch_; }

 private:
  friend class transport;
  friend class epoch;
  template <class P>
  friend class message_type;

  transport_context(transport* tp, rank_t r) : tp_(tp), rank_(r) {}

  // Type-erased allreduce plumbing (implemented in transport.cpp).
  void allreduce_raw(const void* in, void* out, std::size_t size,
                     void (*combine)(void* ctx, const void* contrib, void* acc), void* opctx);

  transport* tp_;
  rank_t rank_;
  bool in_epoch_ = false;
  std::uint64_t coll_gen_ = 0;   ///< per-rank collective call counter (SPMD order)
  std::uint64_t td_round_ = 0;   ///< next termination-detection round to join
};

/// The simulated distributed machine: N ranks, per-rank inboxes, a message
/// type registry, and the control plane (termination detection,
/// collectives) implemented with internal message types.
class transport {
 public:
  /// Preferred constructor: construction-time machine shape + runtime
  /// tuning, with an optional shared envelope pool (the serving layer hands
  /// every session's transport one pool; see wire_pool).
  transport(machine_config machine, tuning_config tuning,
            std::shared_ptr<wire_pool> pool = nullptr);
  /// Deprecated shim: the flat aggregate, optionally with a shared pool.
  explicit transport(transport_config cfg, std::shared_ptr<wire_pool> pool = nullptr);
  ~transport();

  transport(const transport&) = delete;
  transport& operator=(const transport&) = delete;

  rank_t size() const noexcept { return cfg_.n_ranks; }
  const transport_config& config() const noexcept { return cfg_; }
  /// The envelope byte-buffer pool this transport recycles through —
  /// shared across sessions when one was injected at construction.
  const std::shared_ptr<wire_pool>& envelope_pool() const noexcept { return pool_; }

  /// True when this transport carries remote envelopes over a real wire
  /// (shm_ring / tcp): this process hosts exactly one rank and run()
  /// executes the SPMD function for that rank alone.
  bool cross_process() const noexcept { return xproc_; }
  /// The rank this process hosts (0 in-process: every rank is local).
  rank_t self_rank() const noexcept { return self_rank_; }
  /// Wire backend name for stats/bench metadata ("inproc" when in-process).
  const char* backend_name() const noexcept {
    return backend_ ? backend_->name() : "inproc";
  }

  /// Stamps every outgoing cross-process frame with the graph's
  /// (version, structure_version) pair. Receivers reject frames whose stamp
  /// differs from their own — the loud-failure half of the single-writer
  /// topology contract (see docs/runtime.md "Transport backends"): a
  /// process that mutated its topology while a peer still runs on the old
  /// one produces wire_error, not silent scatter into a resized pmap.
  void set_topology_stamp(std::uint64_t version, std::uint64_t structure_version);

  /// Cross-process out-of-band allgather: ships `mine` to every peer and
  /// returns all ranks' blobs indexed by rank (self included). A collective
  /// — every rank process must call in the same program order, outside
  /// run(). This is how between-run gathers that the in-process code does
  /// by reading sibling shards directly (CC's conflict collection, result
  /// hashing) cross the wire.
  std::vector<std::vector<std::byte>> exchange_blobs(const std::vector<std::byte>& mine);

  /// Register a message type. Must happen before run(). The handler runs on
  /// the destination rank; the optional address map enables send(payload)
  /// without an explicit rank (§IV-D).
  template <class Payload, message_handler<Payload> H>
  message_type<Payload>& make_message_type(std::string name, H handler);

  template <class Payload, message_handler<Payload> H, address_map<Payload> A>
  message_type<Payload>& make_message_type(std::string name, H handler, A addr);

  /// Execute `f` as an SPMD program: one thread per rank, each receiving
  /// its own transport_context. Blocks until all ranks return; rethrows the
  /// first exception thrown by any rank. May be called repeatedly.
  void run(const std::function<void(transport_context&)>& f);

  /// The observability registry: the public measurement surface (counters
  /// with per-message-type and per-epoch attribution, obs::stats_scope
  /// deltas, span tracing, Chrome trace export). See docs/runtime.md.
  obs::registry& obs() noexcept { return obs_; }
  const obs::registry& obs() const noexcept { return obs_; }

  /// The raw cumulative counter blob (the registry's internal backing
  /// store). Prefer obs() — manual snapshot-and-subtract is deprecated.
  transport_stats& stats() noexcept { return obs_.core(); }
  const transport_stats& stats() const noexcept { return obs_.core(); }

  /// Payloads delivered per message type, indexed by msg_type_id; for
  /// benchmark reporting.
  std::uint64_t sent_of_type(msg_type_id id) const { return obs_.type_sent(id); }
  const std::string& type_name(msg_type_id id) const { return types_.at(id)->name(); }
  std::size_t num_types() const { return types_.size(); }

  /// Conservation oracle for tests: true iff, for every message type and
  /// every rank, the O(1) occupancy counter equals a brute-force recount of
  /// buffered payloads + used reduction slots under the lane locks. Only
  /// meaningful while the transport is quiescent (between runs, or
  /// single-rank).
  bool occupancy_consistent() const;

 private:
  friend class transport_context;
  friend class epoch;
  template <class P>
  friend class message_type;

  // ---- wire -------------------------------------------------------------

  /// An envelope parked at its sender by the fault layer: either delayed
  /// (released after its due tick) or dropped (the ack timeout fires at the
  /// due tick and the envelope is retransmitted).
  struct held_tx {
    detail::envelope env;
    rank_t dest = 0;
    std::uint64_t due_tick = 0;
    unsigned drops = 0;     ///< drop events so far (bounds the adversary)
    bool is_retry = false;  ///< release is a retransmission, not a delay expiry
  };

  struct rank_state {
    mutable std::mutex inbox_mu;
    std::deque<detail::envelope> inbox;
    /// Handlers currently executing on this rank (incremented under
    /// inbox_mu before the envelope is popped, so "inbox empty and no
    /// handler active" is an exact local-quiescence predicate).
    std::atomic<int> active_handlers{0};
    std::atomic<std::uint64_t> sent{0};      ///< user payloads this rank pushed out
    std::atomic<std::uint64_t> received{0};  ///< user payloads this rank handled
    // Control-plane mailboxes (written by handlers on this rank's thread).
    std::atomic<std::int64_t> td_result_round{-1};
    std::atomic<bool> td_result_done{false};
    std::atomic<std::uint64_t> coll_result_gen{0};
    std::array<std::byte, 56> coll_result_bytes{};

    // ---- reliability layer (populated only when a fault_plan is active) --
    /// Next wire sequence number per destination rank (sender side).
    std::vector<std::atomic<std::uint64_t>> wire_seq;
    /// Receive-side dedup window, one per source rank; guarded by inbox_mu.
    /// Out-of-order arrivals are legal (reorder faults), so acceptance
    /// tracks a contiguous frontier plus the set of accepted seqs ahead of
    /// it; an arrival at or behind the frontier, or already in the set, is
    /// a duplicate and is suppressed before dispatch.
    struct dedup_window {
      std::uint64_t next_expected = 0;
      std::set<std::uint64_t> ahead;
    };
    std::vector<dedup_window> dedup;
    /// Progress tick (advanced by every fault pump); delay releases and ack
    /// timeouts are measured in these ticks.
    std::atomic<std::uint64_t> fault_tick{0};
    std::atomic<std::size_t> held_count{0};  ///< lock-free emptiness probe
    std::mutex held_mu;
    std::vector<held_tx> held;

  };

  /// What one drain accomplished. `envelopes` counts every envelope
  /// dispatched (control plane included) and gates yield decisions — a
  /// helper that just processed a TD verdict made real progress even
  /// though no user payload moved. `user_payloads` feeds the quiescence
  /// predicates and the public drain()/poll_once() return values.
  struct drain_result {
    std::size_t user_payloads = 0;
    std::size_t envelopes = 0;
  };

  void deliver(rank_t src, rank_t dest, detail::envelope env, std::uint32_t user_payloads);
  /// Drains the wire backend: every frame currently readable becomes an
  /// inbox envelope (validated against the type registry, topology stamp,
  /// and per-source sequence) or an OOB blob. No-op in-process.
  void poll_backend();
  drain_result drain_rank(transport_context& ctx, bool at_most_one);
  void flush_all_types(rank_t src);
  bool all_buffers_empty(rank_t src) const;
  /// Nothing buffered in any outgoing lane or reduction cache of `r`: one
  /// relaxed counter read per message type, no lane locks, no cache scans.
  /// (Deliberately not a single transport-wide aggregate: that would put a
  /// second atomic RMW on every send, and this probe only runs on the
  /// TD/epoch idle spins where O(#types) loads are already noise.)
  bool outbound_empty(rank_t r) const {
    for (const auto& mt : types_)
      if (mt->rank_occupancy(r) != 0) return false;
    return true;
  }
  /// Envelope pool: recycled buffer (capacity intact) or a fresh one. The
  /// pool may be shared with other transports (wire_pool).
  std::vector<std::byte> pool_acquire(rank_t src);
  /// Returns `bytes` to the pool shard of rank `r` (bounded; oversized
  /// buffers freed).
  void pool_release(rank_t r, std::vector<std::byte>&& bytes);
  /// Inbox empty and no handler mid-flight (exact snapshot under inbox_mu).
  bool locally_quiet(rank_t r) const;

  // ---- fault injection / reliability --------------------------------------
  /// Run one envelope through the fault pipeline (delay → drop → duplicate
  /// → reorder placement) and enqueue whatever survives. `fresh` is false
  /// for releases from the held queue (a released envelope is never delayed
  /// again, so a delay probability of 1.0 cannot livelock).
  void transmit(rank_t src, rank_t dest, detail::envelope env, unsigned drops, bool fresh);
  /// Insert into the destination inbox: back (FIFO) or, on a reorder
  /// decision, at a deterministic pseudo-random position.
  void enqueue_wire(rank_t src, rank_t dest, const fault_rule* rule, detail::envelope env,
                    std::uint64_t attempt);
  void hold_envelope(rank_t src, rank_t dest, detail::envelope env, std::uint64_t due_tick,
                     unsigned drops, bool is_retry);
  /// Advance rank `r`'s progress tick and retransmit/release every held
  /// envelope whose due tick has passed. Called from every flush and drain.
  void pump_faults(rank_t r);
  /// True iff the envelope is not a duplicate (caller holds rs.inbox_mu).
  bool dedup_accept(rank_state& rs, const detail::envelope& env);
  bool fault_held_empty(rank_t r) const;
  /// Post-run residual quiesce for one rank: pump the held queue to empty
  /// (retransmitting as needed) so no other rank waits forever on a parked
  /// control-plane envelope, then drain what arrived meanwhile.
  void quiesce_residual(transport_context& ctx);

  // ---- control plane ------------------------------------------------------
  // These payloads cross the backend seam (TD reports/verdicts and
  // collective contributions travel rank-to-rank like any envelope), so
  // they obey the wire contract from wire.hpp: fixed-width fields and
  // explicit padding, asserted padding-free below — their object bytes ARE
  // their wire bytes, on every process of a run.
  struct td_report_t {
    std::uint64_t round, sent, recv;
    rank_t src;
    std::uint32_t pad0 = 0;
  };
  struct td_result_t {
    std::uint64_t round;
    std::uint32_t done;
    std::uint32_t pad0 = 0;
  };
  struct coll_contrib_t {
    std::uint64_t gen;
    rank_t src;
    std::uint32_t size;
    std::array<std::byte, 56> bytes;
  };
  struct coll_result_t {
    std::uint64_t gen;
    std::uint32_t size;
    std::uint32_t pad0 = 0;
    std::array<std::byte, 56> bytes;
  };
  static_assert(sizeof(td_report_t) == 32 && sizeof(td_result_t) == 16 &&
                    sizeof(coll_contrib_t) == 72 && sizeof(coll_result_t) == 72,
                "control-plane payload layouts are part of the wire protocol");
  static_assert(std::has_unique_object_representations_v<td_report_t> &&
                    std::has_unique_object_representations_v<td_result_t> &&
                    std::has_unique_object_representations_v<coll_contrib_t> &&
                    std::has_unique_object_representations_v<coll_result_t>,
                "control-plane payloads must be padding-free: they memcpy across the seam");

  struct td_coordinator {
    std::mutex mu;
    std::uint64_t round = 0;
    std::uint32_t reports = 0;
    std::uint64_t sum_sent = 0, sum_recv = 0;
    std::uint64_t prev_sent = ~0ULL, prev_recv = ~0ULL;
  };
  struct coll_round {
    std::vector<coll_contrib_t> contribs;
  };
  struct coll_coordinator {
    std::mutex mu;
    std::map<std::uint64_t, coll_round> rounds;
  };

  void register_control_plane();
  void td_on_report(transport_context& ctx, const td_report_t& r);
  /// One termination-detection round for the calling rank: flush, drain to
  /// empty, report, wait for the verdict. Returns true iff globally done.
  bool td_round(transport_context& ctx);

  template <class Payload>
  message_type<Payload>& make_internal(std::string name,
                                       std::function<void(transport_context&, const Payload&)> h);

  transport_config cfg_;
  std::vector<std::unique_ptr<detail::message_type_base>> types_;
  std::vector<rank_state> ranks_;
  std::shared_ptr<wire_pool> pool_;  ///< envelope buffers, possibly shared
  obs::registry obs_;
  bool running_ = false;
  bool faults_active_ = false;  ///< cfg_.faults.active(), hoisted off hot paths
  std::uint64_t fault_seed_ = 0;  ///< transport seed mixed with the plan seed

  // ---- cross-process wire (null/unused for the in-process backend) --------
  std::unique_ptr<wire_backend> backend_;
  bool xproc_ = false;       ///< backend_ != nullptr, hoisted off hot paths
  rank_t self_rank_ = 0;     ///< the one rank this process hosts when xproc_
  /// Next outgoing frame sequence per destination (senders may be the SPMD
  /// thread and helper threads concurrently).
  std::vector<std::atomic<std::uint64_t>> xsend_seq_;
  /// Expected incoming frame sequence per source. Written only inside the
  /// backend's serialized poll, so plain integers suffice.
  std::vector<std::uint64_t> xrecv_seq_;
  /// Topology stamp applied to outgoing frames / checked on incoming ones.
  std::uint64_t topo_version_ = 0, topo_structure_version_ = 0;
  /// Out-of-band blob stash: (generation, bytes) per source rank.
  std::mutex oob_mu_;
  std::vector<std::deque<std::pair<std::uint64_t, std::vector<std::byte>>>> oob_in_;
  std::uint64_t oob_gen_ = 0;  ///< exchange_blobs call counter (SPMD order)

  td_coordinator td_;
  coll_coordinator coll_;
  message_type<td_report_t>* mt_td_report_ = nullptr;
  message_type<td_result_t>* mt_td_result_ = nullptr;
  message_type<coll_contrib_t>* mt_coll_contrib_ = nullptr;
  message_type<coll_result_t>* mt_coll_result_ = nullptr;
};

// ===========================================================================
// message_type implementation
// ===========================================================================

template <class Payload>
void message_type<Payload>::dispatch_thunk(detail::message_type_base* self,
                                           transport_context& ctx, const std::byte* data,
                                           std::uint32_t count) {
  auto* mt = static_cast<message_type<Payload>*>(self);
  if (mt->layout_.empty()) {
    if (mt->batch_) {
      // Whole-envelope dispatch: the records sit packed in the wire buffer
      // exactly as sent (no layout truncation), so the batch kernel can
      // deinterleave them in place. received/handler accounting is done by
      // the caller per envelope count, identical to the per-record path.
      mt->batch_(ctx, data, count);
      return;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      Payload p;
      std::memcpy(&p, data + i * sizeof(Payload), sizeof(Payload));
      mt->handler_(ctx, p);
    }
    return;
  }
  const std::size_t stride = mt->wire_stride_;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::byte* in = data + i * stride;
    // Value-init so bytes outside the live ranges hold the payload type's
    // defaults (sentinels stay sentinels), then scatter the wire bytes back
    // to their home offsets.
    Payload p{};
    std::byte* out = reinterpret_cast<std::byte*>(&p);
    for (const wire_range& r : mt->layout_) {
      std::memcpy(out + r.offset, in, r.len);
      in += r.len;
    }
    mt->handler_(ctx, p);
  }
}

template <class Payload>
void message_type<Payload>::set_batch_handler(batch_handler_fn h) {
  DPG_ASSERT_MSG(tp_ == nullptr || !tp_->running_,
                 "batch handlers must be installed before transport::run");
  batch_ = std::move(h);
}

template <class Payload>
void message_type<Payload>::set_wire_layout(std::vector<wire_range> ranges) {
  DPG_ASSERT_MSG(tp_ == nullptr || !tp_->running_,
                 "wire layouts must be installed before transport::run");
  std::size_t stride = 0, prev_end = 0;
  for (const wire_range& r : ranges) {
    DPG_ASSERT_MSG(r.len > 0 && r.offset >= prev_end &&
                       r.offset + r.len <= sizeof(Payload),
                   "wire layout ranges must be sorted, disjoint, and in-bounds");
    prev_end = r.offset + r.len;
    stride += r.len;
  }
  if (stride == sizeof(Payload)) {  // full coverage: plain memcpy is faster
    layout_.clear();
    wire_stride_ = sizeof(Payload);
    return;
  }
  DPG_ASSERT_MSG(stride > 0, "a wire layout must carry at least one byte");
  layout_ = std::move(ranges);
  wire_stride_ = stride;
}

template <class Payload>
void message_type<Payload>::send(transport_context& ctx, rank_t dest, const Payload& p) {
  DPG_ASSERT_MSG(ctx.rank() == current_rank(), "send from a foreign rank's context");
  DPG_ASSERT_MSG(dest < tp_->size(), "destination rank out of range");
  DPG_ASSERT_MSG(internal_ || ctx.in_epoch(),
                 "user messages may only be sent inside an epoch");
  lane& ln = rows_[ctx.rank()].lanes[dest];
  std::lock_guard<dpg::spinlock> lane_guard(ln.mu);

  if (reduce_) {
    const std::uint64_t key = reduce_->key(p);
    // Fibonacci hash into the direct-mapped cache.
    const std::size_t slot_idx =
        static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> (64 - reduce_->bits));
    red_slot& slot = ln.cache[slot_idx];
    if (slot.used && slot.key == key) {
      slot.payload = reduce_->combine(slot.payload, p);
      tp_->obs_.core().cache_hits.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (slot.used) {
      // Evict: the old payload moves slot -> buf (still buffered) and the
      // new one takes the slot, so the net occupancy change is +1.
      ln.buf.push_back(slot.payload);
      tp_->obs_.core().cache_evictions.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++ln.used_slots;
      ln.used_list.push_back(static_cast<std::uint32_t>(slot_idx));
    }
    slot.used = true;
    slot.key = key;
    slot.payload = p;
    note_occupancy(ln, +1);
    if (ln.buf.size() >= tp_->cfg_.coalescing_size)
      flush_lane_locked(ctx.rank(), dest, ln, /*spill_cache=*/false);
    return;
  }

  ln.buf.push_back(p);
  note_occupancy(ln, +1);
  if (ln.buf.size() >= tp_->cfg_.coalescing_size)
    flush_lane_locked(ctx.rank(), dest, ln, /*spill_cache=*/false);
}

template <class Payload>
void message_type<Payload>::send(transport_context& ctx, const Payload& p) {
  DPG_ASSERT_MSG(static_cast<bool>(addr_), "message type has no address map");
  send(ctx, addr_(p), p);
}

template <class Payload>
void message_type<Payload>::enable_reduction(key_fn key, combine_fn combine,
                                             unsigned cache_bits) {
  DPG_ASSERT_MSG(cache_bits >= 1 && cache_bits <= 24, "unreasonable reduction cache size");
  reduce_ = reduction{std::move(key), std::move(combine), cache_bits};
  for (auto& row : rows_)
    for (auto& ln : row.lanes) ln.cache.assign(std::size_t{1} << cache_bits, red_slot{});
}

template <class Payload>
void message_type<Payload>::flush_lane(rank_t src, rank_t dest) {
  lane& ln = rows_[src].lanes[dest];
  std::lock_guard<dpg::spinlock> lane_guard(ln.mu);
  flush_lane_locked(src, dest, ln, /*spill_cache=*/true);
}

template <class Payload>
void message_type<Payload>::note_occupancy(lane& ln, std::int64_t delta) {
  ln.occupancy.store(ln.occupancy.load(std::memory_order_relaxed) + delta,
                     std::memory_order_relaxed);
}

template <class Payload>
void message_type<Payload>::flush_lane_locked(rank_t src, rank_t dest, lane& ln,
                                              bool spill_cache) {
  tp_->obs_.core().flush_lane_visits.fetch_add(1, std::memory_order_relaxed);
  if (reduce_ && spill_cache && ln.used_slots != 0) {
    // Spill O(used) slots via the used-slot index list, not O(2^bits) over
    // the whole cache. slot -> buf is occupancy-neutral; the flush below
    // settles the account.
    for (const std::uint32_t idx : ln.used_list) {
      red_slot& slot = ln.cache[idx];
      ln.buf.push_back(slot.payload);
      slot.used = false;
    }
    ln.used_list.clear();
    ln.used_slots = 0;
  }
  if (ln.buf.empty()) return;
  const auto count = static_cast<std::uint32_t>(ln.buf.size());
  detail::envelope env;
  env.vt = &vt_;
  env.count = count;
  env.bytes = tp_->pool_acquire(src);
  if (layout_.empty()) {
    env.bytes.resize(ln.buf.size() * sizeof(Payload));
    std::memcpy(env.bytes.data(), ln.buf.data(), env.bytes.size());
  } else {
    // Compact wire layout: gather only the live ranges of each payload,
    // packed back to back. The receiver's dispatch_thunk reverses this.
    env.bytes.resize(ln.buf.size() * wire_stride_);
    std::byte* out = env.bytes.data();
    for (const Payload& p : ln.buf) {
      const std::byte* in = reinterpret_cast<const std::byte*>(&p);
      for (const wire_range& r : layout_) {
        std::memcpy(out, in + r.offset, r.len);
        out += r.len;
      }
    }
  }
  const std::size_t wire_bytes = env.bytes.size();
  ln.buf.clear();
  note_occupancy(ln, -static_cast<std::int64_t>(count));
  const std::size_t n_bytes = static_cast<std::size_t>(count) * sizeof(Payload);
  tp_->deliver(src, dest, std::move(env), internal_ ? 0 : count);
  tp_->obs_.on_sent(id_, count, n_bytes);
  tp_->obs_.on_envelope(id_, wire_bytes);
  if (internal_)
    tp_->obs_.core().control_messages.fetch_add(count, std::memory_order_relaxed);
}

template <class Payload>
void message_type<Payload>::flush_rank(rank_t src) {
  per_source& row = rows_[src];
  const auto n_lanes = static_cast<rank_t>(row.lanes.size());
  std::uint64_t skipped = 0;
  for (rank_t d = 0; d < n_lanes; ++d) {
    // A clean lane (zero occupancy) is skipped without taking its lock —
    // the common case on TD idle spins, where no lane holds anything.
    if (row.lanes[d].occupancy.load(std::memory_order_relaxed) == 0) {
      ++skipped;
      continue;
    }
    flush_lane(src, d);
  }
  if (skipped != 0)
    tp_->obs_.core().flush_lane_skips.fetch_add(skipped, std::memory_order_relaxed);
}

template <class Payload>
bool message_type<Payload>::rank_buffers_empty(rank_t src) const {
  return rank_occupancy(src) == 0;
}

template <class Payload>
std::int64_t message_type<Payload>::rank_occupancy(rank_t src) const {
  std::int64_t n = 0;
  for (const lane& ln : rows_[src].lanes)
    n += ln.occupancy.load(std::memory_order_relaxed);
  return n;
}

template <class Payload>
std::int64_t message_type<Payload>::rank_occupancy_scan(rank_t src) const {
  std::int64_t n = 0;
  for (const lane& ln : rows_[src].lanes) {
    std::lock_guard<dpg::spinlock> lane_guard(ln.mu);
    n += static_cast<std::int64_t>(ln.buf.size());
    for (const red_slot& s : ln.cache)
      if (s.used) ++n;
  }
  return n;
}

// ===========================================================================
// transport template members
// ===========================================================================

template <class Payload, message_handler<Payload> H>
message_type<Payload>& transport::make_message_type(std::string name, H handler) {
  DPG_ASSERT_MSG(!running_, "message types must be registered before transport::run");
  auto mt = std::unique_ptr<message_type<Payload>>(new message_type<Payload>());
  mt->name_ = std::move(name);
  mt->id_ = static_cast<msg_type_id>(types_.size());
  mt->wire_hash_ = wire_name_hash(mt->name_);
  mt->tp_ = this;
  mt->handler_ = std::move(handler);
  mt->rows_.resize(cfg_.n_ranks);
  for (auto& row : mt->rows_) row.lanes.resize(cfg_.n_ranks);
  mt->vt_ = detail::message_vtable{&message_type<Payload>::dispatch_thunk, sizeof(Payload),
                                   mt.get()};
  auto& ref = *mt;
  const std::size_t slot = obs_.add_type(mt->name_);
  DPG_ASSERT(slot == mt->id_);
  types_.push_back(std::move(mt));
  return ref;
}

template <class Payload, message_handler<Payload> H, address_map<Payload> A>
message_type<Payload>& transport::make_message_type(std::string name, H handler, A addr) {
  auto& mt = make_message_type<Payload>(std::move(name), std::move(handler));
  mt.addr_ = [a = std::move(addr)](const Payload& p) { return static_cast<rank_t>(a(p)); };
  return mt;
}

template <class Payload>
message_type<Payload>& transport::make_internal(
    std::string name, std::function<void(transport_context&, const Payload&)> h) {
  auto& mt = make_message_type<Payload>(std::move(name), std::move(h));
  mt.internal_ = true;
  obs_.mark_internal(mt.id());
  return mt;
}

template <class T, class Op>
T transport_context::allreduce(T value, Op op) {
  static_assert(std::is_trivially_copyable_v<T>, "allreduce values must be trivially copyable");
  static_assert(sizeof(T) <= 56, "allreduce values are limited to 56 bytes");
  T out{};
  auto combine = [](void* opctx, const void* contrib, void* acc) {
    auto& o = *static_cast<Op*>(opctx);
    T a, c;
    std::memcpy(&a, acc, sizeof(T));
    std::memcpy(&c, contrib, sizeof(T));
    a = o(a, c);
    std::memcpy(acc, &a, sizeof(T));
  };
  allreduce_raw(&value, &out, sizeof(T), combine, &op);
  return out;
}

}  // namespace dpg::ampp
