// Cumulative core runtime counters — the *internal backing store* of the
// observability layer (message counts for the Fig. 5/6 plan ablation,
// cache hit rates for the AM++ caching claim, termination-detection rounds
// for the epoch-overhead experiment).
//
// The public measurement API is obs::registry (reached via
// transport::obs()): per-message-type and per-epoch attribution, snapshots,
// and the RAII obs::stats_scope. Manual snapshot-and-subtract through
// snap() is DEPRECATED in favour of obs::stats_scope; snap() remains for
// the runtime's own bookkeeping.
#pragma once

#include <atomic>
#include <cstdint>

namespace dpg::ampp {

/// Aggregate transport statistics. All counters are cumulative over the
/// transport's lifetime; callers snapshot-and-subtract to measure a region.
struct transport_stats {
  std::atomic<std::uint64_t> messages_sent{0};      ///< user payloads enqueued to a remote inbox
  std::atomic<std::uint64_t> envelopes_sent{0};     ///< coalesced buffers delivered
  std::atomic<std::uint64_t> bytes_sent{0};         ///< logical payload bytes delivered
  std::atomic<std::uint64_t> wire_bytes_sent{0};    ///< envelope bytes on the wire (<= bytes_sent; compact layouts truncate)
  std::atomic<std::uint64_t> handler_invocations{0};///< user handler calls
  std::atomic<std::uint64_t> self_deliveries{0};    ///< payloads whose destination was the sender
  std::atomic<std::uint64_t> cache_hits{0};         ///< sends absorbed by a reduction cache
  std::atomic<std::uint64_t> cache_evictions{0};    ///< cache slots spilled to the wire
  std::atomic<std::uint64_t> td_rounds{0};          ///< termination-detection rounds completed
  std::atomic<std::uint64_t> barriers{0};           ///< barrier operations completed
  std::atomic<std::uint64_t> epochs{0};             ///< epochs ended
  std::atomic<std::uint64_t> control_messages{0};   ///< internal control-plane payloads
  // Fault-injection counters (zero unless a fault_plan is active). At
  // quiescence: envelopes_dropped == envelopes_retried and
  // envelopes_duplicated == duplicates_suppressed — the reliability layer's
  // conservation laws, asserted by the sim harness.
  std::atomic<std::uint64_t> envelopes_dropped{0};    ///< transmissions lost by the fault plan
  std::atomic<std::uint64_t> envelopes_retried{0};    ///< retransmissions after an ack timeout
  std::atomic<std::uint64_t> envelopes_duplicated{0}; ///< extra copies injected on the wire
  std::atomic<std::uint64_t> envelopes_delayed{0};    ///< envelopes held back N progress ticks
  std::atomic<std::uint64_t> duplicates_suppressed{0};///< copies absorbed by the dedup window
  // Flush/quiescence hot-path counters. Conservation laws (asserted by the
  // sim harness): envelopes_sent <= flush_lane_visits (every envelope comes
  // out of a visited lane) and pool_reuses <= envelopes_sent (every reuse
  // built one envelope).
  std::atomic<std::uint64_t> flush_lane_visits{0};    ///< lanes locked by a flush (incl. capacity flushes)
  std::atomic<std::uint64_t> flush_lane_skips{0};     ///< lanes a flush skipped via occupancy/dirty tracking
  std::atomic<std::uint64_t> pool_reuses{0};          ///< envelope byte buffers recycled from the pool
  // Envelope-batch kernel counters (bumped by the pattern layer's batch
  // dispatch; zero when no batch kernel is installed). Conservation law
  // (asserted by the sim harness): batch_records <= handler_invocations —
  // every batched record is also counted as a handled payload.
  std::atomic<std::uint64_t> batch_records{0};      ///< fast records processed by batch kernels
  std::atomic<std::uint64_t> batch_kernels_run{0};  ///< whole-envelope batch kernel invocations
  // Topology-mutation counters (bumped by distributed_graph::apply_edges /
  // remove_edges when a graph is attached via attach_stats; mutation
  // happens outside epochs, so these appear in the summary's totals row,
  // not per-epoch).
  std::atomic<std::uint64_t> graph_mutations{0};      ///< apply_edges/remove_edges calls observed
  std::atomic<std::uint64_t> delta_edges{0};          ///< overlay edges appended
  std::atomic<std::uint64_t> tombstoned_edges{0};     ///< edges tombstoned by remove_edges

  /// Plain-value snapshot. Manual snapshot-and-subtract in tests/benches is
  /// deprecated — use obs::stats_scope, which also captures per-type deltas.
  struct snapshot {
    std::uint64_t messages_sent, envelopes_sent, bytes_sent, wire_bytes_sent,
        handler_invocations,
        self_deliveries, cache_hits, cache_evictions, td_rounds, barriers, epochs,
        control_messages, envelopes_dropped, envelopes_retried, envelopes_duplicated,
        envelopes_delayed, duplicates_suppressed, flush_lane_visits, flush_lane_skips,
        pool_reuses, batch_records, batch_kernels_run, graph_mutations, delta_edges,
        tombstoned_edges;

    snapshot operator-(const snapshot& o) const {
      return {messages_sent - o.messages_sent,
              envelopes_sent - o.envelopes_sent,
              bytes_sent - o.bytes_sent,
              wire_bytes_sent - o.wire_bytes_sent,
              handler_invocations - o.handler_invocations,
              self_deliveries - o.self_deliveries,
              cache_hits - o.cache_hits,
              cache_evictions - o.cache_evictions,
              td_rounds - o.td_rounds,
              barriers - o.barriers,
              epochs - o.epochs,
              control_messages - o.control_messages,
              envelopes_dropped - o.envelopes_dropped,
              envelopes_retried - o.envelopes_retried,
              envelopes_duplicated - o.envelopes_duplicated,
              envelopes_delayed - o.envelopes_delayed,
              duplicates_suppressed - o.duplicates_suppressed,
              flush_lane_visits - o.flush_lane_visits,
              flush_lane_skips - o.flush_lane_skips,
              pool_reuses - o.pool_reuses,
              batch_records - o.batch_records,
              batch_kernels_run - o.batch_kernels_run,
              graph_mutations - o.graph_mutations,
              delta_edges - o.delta_edges,
              tombstoned_edges - o.tombstoned_edges};
    }

    snapshot operator+(const snapshot& o) const {
      return {messages_sent + o.messages_sent,
              envelopes_sent + o.envelopes_sent,
              bytes_sent + o.bytes_sent,
              wire_bytes_sent + o.wire_bytes_sent,
              handler_invocations + o.handler_invocations,
              self_deliveries + o.self_deliveries,
              cache_hits + o.cache_hits,
              cache_evictions + o.cache_evictions,
              td_rounds + o.td_rounds,
              barriers + o.barriers,
              epochs + o.epochs,
              control_messages + o.control_messages,
              envelopes_dropped + o.envelopes_dropped,
              envelopes_retried + o.envelopes_retried,
              envelopes_duplicated + o.envelopes_duplicated,
              envelopes_delayed + o.envelopes_delayed,
              duplicates_suppressed + o.duplicates_suppressed,
              flush_lane_visits + o.flush_lane_visits,
              flush_lane_skips + o.flush_lane_skips,
              pool_reuses + o.pool_reuses,
              batch_records + o.batch_records,
              batch_kernels_run + o.batch_kernels_run,
              graph_mutations + o.graph_mutations,
              delta_edges + o.delta_edges,
              tombstoned_edges + o.tombstoned_edges};
    }
  };

  snapshot snap() const {
    return {messages_sent.load(), envelopes_sent.load(), bytes_sent.load(),
            wire_bytes_sent.load(), handler_invocations.load(), self_deliveries.load(), cache_hits.load(),
            cache_evictions.load(), td_rounds.load(), barriers.load(), epochs.load(),
            control_messages.load(), envelopes_dropped.load(), envelopes_retried.load(),
            envelopes_duplicated.load(), envelopes_delayed.load(),
            duplicates_suppressed.load(), flush_lane_visits.load(), flush_lane_skips.load(),
            pool_reuses.load(), batch_records.load(), batch_kernels_run.load(),
            graph_mutations.load(), delta_edges.load(), tombstoned_edges.load()};
  }
};

}  // namespace dpg::ampp
