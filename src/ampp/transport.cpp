#include "ampp/transport.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "ampp/epoch.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace dpg::ampp {

// ---------------------------------------------------------------------------
// current_rank
// ---------------------------------------------------------------------------

namespace {
thread_local rank_t tl_current_rank = invalid_rank;
}  // namespace

rank_t current_rank() noexcept { return tl_current_rank; }

namespace detail {

current_rank_scope::current_rank_scope(rank_t r) noexcept {
  DPG_ASSERT_MSG(tl_current_rank == invalid_rank, "nested transport::run on one thread");
  tl_current_rank = r;
}

current_rank_scope::~current_rank_scope() { tl_current_rank = invalid_rank; }

}  // namespace detail

// ---------------------------------------------------------------------------
// transport: construction / control plane registration
// ---------------------------------------------------------------------------

transport::transport(machine_config machine, tuning_config tuning,
                     std::shared_ptr<wire_pool> pool)
    : transport(transport_config::join(machine, tuning), std::move(pool)) {}

transport::transport(transport_config cfg, std::shared_ptr<wire_pool> pool)
    : cfg_(std::move(cfg)),
      ranks_(cfg_.n_ranks),
      pool_(pool != nullptr ? std::move(pool)
                            : std::make_shared<wire_pool>(cfg_.n_ranks)) {
  DPG_ASSERT_MSG(cfg_.n_ranks >= 1, "transport needs at least one rank");
  DPG_ASSERT_MSG(cfg_.coalescing_size >= 1, "coalescing size must be positive");
  faults_active_ = cfg_.faults.active();
  if (faults_active_) {
    fault_seed_ = substream_seed(cfg_.seed, 0xfa) ^ cfg_.faults.seed;
    for (rank_state& rs : ranks_) {
      rs.wire_seq = std::vector<std::atomic<std::uint64_t>>(cfg_.n_ranks);
      rs.dedup.resize(cfg_.n_ranks);
    }
  }
  if (cfg_.backend.cross_process()) {
    DPG_ASSERT_MSG(cfg_.n_ranks >= 2, "a cross-process machine needs at least two ranks");
    DPG_ASSERT_MSG(!faults_active_,
                   "fault plans are an in-process-only instrument: real backends are "
                   "reliable ordered pipes, so there is nothing for the plan to model");
    // Rendezvous happens here: the constructor returns only once every
    // sibling rank process attached and passed the handshake.
    backend_ = make_backend(cfg_.backend, cfg_.n_ranks);
    xproc_ = true;
    self_rank_ = cfg_.backend.self_rank;
    xsend_seq_ = std::vector<std::atomic<std::uint64_t>>(cfg_.n_ranks);
    xrecv_seq_.assign(cfg_.n_ranks, 0);
    oob_in_.resize(cfg_.n_ranks);
  }
  register_control_plane();
}

transport::~transport() = default;

void transport::register_control_plane() {
  mt_td_report_ = &make_internal<td_report_t>(
      "dpg.td_report",
      [this](transport_context& ctx, const td_report_t& r) { td_on_report(ctx, r); });

  mt_td_result_ = &make_internal<td_result_t>(
      "dpg.td_result", [this](transport_context& ctx, const td_result_t& r) {
        rank_state& rs = ranks_[ctx.rank()];
        rs.td_result_done.store(r.done != 0, std::memory_order_relaxed);
        rs.td_result_round.store(static_cast<std::int64_t>(r.round), std::memory_order_release);
      });

  mt_coll_contrib_ = &make_internal<coll_contrib_t>(
      "dpg.coll_contrib", [this](transport_context&, const coll_contrib_t& c) {
        std::lock_guard<std::mutex> g(coll_.mu);
        coll_.rounds[c.gen].contribs.push_back(c);
      });

  mt_coll_result_ = &make_internal<coll_result_t>(
      "dpg.coll_result", [this](transport_context& ctx, const coll_result_t& r) {
        rank_state& rs = ranks_[ctx.rank()];
        rs.coll_result_bytes = r.bytes;
        rs.coll_result_gen.store(r.gen, std::memory_order_release);
      });
}

// ---------------------------------------------------------------------------
// wire
// ---------------------------------------------------------------------------

void transport::deliver(rank_t src, rank_t dest, detail::envelope env,
                        std::uint32_t user_payloads) {
  transport_stats& st = obs_.core();
  st.envelopes_sent.fetch_add(1, std::memory_order_relaxed);
  // bytes_sent counts *logical* payload bytes; wire_bytes_sent counts what
  // actually travels, which is smaller when a compact wire layout is
  // installed (see message_type::set_wire_layout).
  st.bytes_sent.fetch_add(env.count * env.vt->payload_size, std::memory_order_relaxed);
  st.wire_bytes_sent.fetch_add(env.bytes.size(), std::memory_order_relaxed);
  // `sent` counts at the first transmission only: a held (delayed or
  // dropped) payload keeps ΣS > ΣR until its eventual dispatch, so
  // termination detection can never declare done over an in-flight retry.
  if (user_payloads != 0) {
    st.messages_sent.fetch_add(user_payloads, std::memory_order_relaxed);
    if (src == dest)
      st.self_deliveries.fetch_add(user_payloads, std::memory_order_relaxed);
    ranks_[src].sent.fetch_add(user_payloads, std::memory_order_relaxed);
  }
  {
    obs::trace_span sp(&obs_.trace(), "transport", "envelope", src);
    sp.arg("dest", dest);
    sp.arg("count", env.count);
    sp.arg("bytes", env.bytes.size());
  }
  if (xproc_ && dest != self_rank_) {
    // Remote rank: frame the envelope and hand it to the wire. Everything
    // above this point (stats, TD sent-counting at first transmission) is
    // identical to the in-process path, which is what lets the four-counter
    // protocol sit oblivious above the seam.
    DPG_ASSERT_MSG(src == self_rank_, "cross-process send from a foreign rank");
    wire_header h;
    h.type_id = env.vt->self->id();
    h.type_hash = env.vt->self->wire_hash();
    h.count = env.count;
    h.payload_bytes = static_cast<std::uint32_t>(env.bytes.size());
    h.src = src;
    h.seq = xsend_seq_[dest].fetch_add(1, std::memory_order_relaxed);
    h.topo_version = topo_version_;
    h.structure_version = topo_structure_version_;
    backend_->send(dest, h, env.bytes.data());
    pool_release(src, std::move(env.bytes));
    return;
  }
  if (faults_active_) {
    env.src = src;
    env.seq = ranks_[src].wire_seq[dest].fetch_add(1, std::memory_order_relaxed);
    transmit(src, dest, std::move(env), /*drops=*/0, /*fresh=*/true);
    return;
  }
  rank_state& rs = ranks_[dest];
  std::lock_guard<std::mutex> g(rs.inbox_mu);
  rs.inbox.push_back(std::move(env));
}

void transport::transmit(rank_t src, rank_t dest, detail::envelope env, unsigned drops,
                         bool fresh) {
  const detail::message_type_base* mt = env.vt->self;
  const fault_rule* rule = cfg_.faults.match(src, dest, mt->name());
  if (rule == nullptr) {
    enqueue_wire(src, dest, nullptr, std::move(env), 0);
    return;
  }
  const msg_type_id tid = mt->id();
  const std::uint64_t seq = env.seq;
  transport_stats& st = obs_.core();

  if (fresh && fault_plan::decide(rule->delay, fault_seed_, fault_stage::delay, src, dest,
                                  tid, seq, 0)) {
    st.envelopes_delayed.fetch_add(1, std::memory_order_relaxed);
    hold_envelope(src, dest, std::move(env),
                  ranks_[src].fault_tick.load(std::memory_order_relaxed) + rule->delay_flushes,
                  drops, /*is_retry=*/false);
    return;
  }

  if (drops < rule->max_drops &&
      fault_plan::decide(rule->drop, fault_seed_, fault_stage::drop, src, dest, tid, seq,
                         drops)) {
    // Lost on the wire; the sender's ack timeout fires after
    // retry_timeout_flushes << min(drops, cap) progress ticks (exponential
    // backoff) and the envelope is retransmitted. max_drops bounds the
    // adversary; the shift cap keeps the backoff finite and monotone when a
    // plan (or a genuinely lossy wire) drops the same envelope dozens of
    // times — an uncapped `<< drops` is undefined behavior at 64 drops and
    // wraps the due tick into the far past or future well before that. The
    // cap (1024 ticks) is already orders of magnitude past any genuine
    // congestion window here; existing plans (max_drops <= 4) never reach it.
    constexpr unsigned kMaxBackoffShift = 10;
    st.envelopes_dropped.fetch_add(1, std::memory_order_relaxed);
    hold_envelope(src, dest, std::move(env),
                  ranks_[src].fault_tick.load(std::memory_order_relaxed) +
                      (static_cast<std::uint64_t>(rule->retry_timeout_flushes)
                       << std::min(drops, kMaxBackoffShift)),
                  drops + 1, /*is_retry=*/true);
    return;
  }

  if (fault_plan::decide(rule->duplicate, fault_seed_, fault_stage::duplicate, src, dest,
                         tid, seq, drops)) {
    st.envelopes_duplicated.fetch_add(1, std::memory_order_relaxed);
    detail::envelope copy;
    copy.vt = env.vt;
    copy.count = env.count;
    copy.bytes = env.bytes;
    copy.src = env.src;
    copy.seq = env.seq;
    enqueue_wire(src, dest, rule, std::move(copy), drops + (1ULL << 32));
  }
  enqueue_wire(src, dest, rule, std::move(env), drops);
}

void transport::enqueue_wire(rank_t src, rank_t dest, const fault_rule* rule,
                             detail::envelope env, std::uint64_t attempt) {
  rank_state& rs = ranks_[dest];
  std::lock_guard<std::mutex> g(rs.inbox_mu);
  if (rule != nullptr && !rs.inbox.empty() &&
      fault_plan::decide(rule->reorder, fault_seed_, fault_stage::reorder, src, dest,
                         env.vt->self->id(), env.seq, attempt)) {
    const std::size_t pos = static_cast<std::size_t>(
        fault_plan::draw(fault_seed_, fault_stage::placement, src, dest, env.vt->self->id(),
                         env.seq, attempt) %
        (rs.inbox.size() + 1));
    rs.inbox.insert(rs.inbox.begin() + static_cast<std::ptrdiff_t>(pos), std::move(env));
    return;
  }
  rs.inbox.push_back(std::move(env));
}

void transport::hold_envelope(rank_t src, rank_t dest, detail::envelope env,
                              std::uint64_t due_tick, unsigned drops, bool is_retry) {
  rank_state& rs = ranks_[src];
  std::lock_guard<std::mutex> g(rs.held_mu);
  rs.held.push_back(held_tx{std::move(env), dest, due_tick, drops, is_retry});
  rs.held_count.store(rs.held.size(), std::memory_order_release);
}

void transport::pump_faults(rank_t r) {
  rank_state& rs = ranks_[r];
  const std::uint64_t tick = rs.fault_tick.fetch_add(1, std::memory_order_relaxed) + 1;
  if (rs.held_count.load(std::memory_order_acquire) == 0) return;
  std::vector<held_tx> due;
  {
    std::lock_guard<std::mutex> g(rs.held_mu);
    for (auto it = rs.held.begin(); it != rs.held.end();) {
      if (it->due_tick <= tick) {
        due.push_back(std::move(*it));
        it = rs.held.erase(it);
      } else {
        ++it;
      }
    }
    rs.held_count.store(rs.held.size(), std::memory_order_release);
  }
  if (due.empty()) return;
  std::uint64_t retries = 0;
  for (const held_tx& h : due)
    if (h.is_retry) ++retries;
  if (retries != 0)
    obs_.core().envelopes_retried.fetch_add(retries, std::memory_order_relaxed);
  {
    obs::trace_span sp(&obs_.trace(), "fault", retries != 0 ? "retry_round" : "delay_release",
                       r);
    sp.arg("released", due.size());
    sp.arg("retries", retries);
    sp.arg("tick", tick);
  }
  // Retransmit outside held_mu: transmit may re-hold (another drop) or take
  // a destination inbox lock.
  for (held_tx& h : due) transmit(r, h.dest, std::move(h.env), h.drops, /*fresh=*/false);
}

bool transport::dedup_accept(rank_state& rs, const detail::envelope& env) {
  rank_state::dedup_window& w = rs.dedup[env.src];
  if (env.seq < w.next_expected) return false;
  if (env.seq == w.next_expected) {
    ++w.next_expected;
    // Absorb the contiguous run the out-of-order set already holds.
    auto it = w.ahead.begin();
    while (it != w.ahead.end() && *it == w.next_expected) {
      it = w.ahead.erase(it);
      ++w.next_expected;
    }
    return true;
  }
  return w.ahead.insert(env.seq).second;
}

bool transport::fault_held_empty(rank_t r) const {
  return ranks_[r].held_count.load(std::memory_order_acquire) == 0;
}

std::vector<std::byte> transport::pool_acquire(rank_t src) {
  std::vector<std::byte> bytes = pool_->acquire(src);
  if (bytes.capacity() != 0)
    obs_.core().pool_reuses.fetch_add(1, std::memory_order_relaxed);
  return bytes;
}

void transport::pool_release(rank_t r, std::vector<std::byte>&& bytes) {
  pool_->release(r, std::move(bytes));
}

void transport::set_topology_stamp(std::uint64_t version, std::uint64_t structure_version) {
  DPG_ASSERT_MSG(!running_, "the topology stamp may only change between runs");
  topo_version_ = version;
  topo_structure_version_ = structure_version;
}

void transport::poll_backend() {
  backend_->poll([this](const wire_header& h, const std::byte* payload) {
    // The backend already ran validate_header (magic/version/endian/src);
    // here the frame meets the local process: registry, topology, ordering.
    if (h.flags & wire_flag_oob) {
      std::lock_guard<std::mutex> g(oob_mu_);
      oob_in_[h.src].emplace_back(
          h.seq, std::vector<std::byte>(payload, payload + h.payload_bytes));
      return;
    }
    if (h.type_id >= types_.size())
      throw wire_error("wire frame: unknown message type id " +
                       std::to_string(h.type_id) + " (registry has " +
                       std::to_string(types_.size()) + " types)");
    detail::message_type_base* mt = types_[h.type_id].get();
    if (h.type_hash != mt->wire_hash())
      throw wire_error("wire frame: type hash mismatch for id " +
                       std::to_string(h.type_id) + " (local type '" + mt->name() +
                       "') — processes registered message types in different orders");
    if (h.topo_version != topo_version_ || h.structure_version != topo_structure_version_)
      throw wire_error(
          "wire frame: stale topology stamp (frame v" + std::to_string(h.topo_version) +
          "/s" + std::to_string(h.structure_version) + ", local v" +
          std::to_string(topo_version_) + "/s" + std::to_string(topo_structure_version_) +
          ") — cross-process runs require single-writer topology; see docs/runtime.md");
    if (h.seq != xrecv_seq_[h.src])
      throw wire_error("wire frame: sequence gap from rank " + std::to_string(h.src) +
                       " (got " + std::to_string(h.seq) + ", expected " +
                       std::to_string(xrecv_seq_[h.src]) +
                       ") — the backend pipe is supposed to be reliable and ordered");
    ++xrecv_seq_[h.src];
    if (h.payload_bytes != h.count * mt->wire_stride_bytes())
      throw wire_error("wire frame: length disagrees with payload stride for type '" +
                       mt->name() + "'");
    detail::envelope env;
    env.vt = mt->wire_vtable();
    env.count = h.count;
    env.bytes = pool_acquire(self_rank_);
    env.bytes.resize(h.payload_bytes);
    std::memcpy(env.bytes.data(), payload, h.payload_bytes);
    env.src = h.src;
    env.seq = h.seq;
    rank_state& rs = ranks_[self_rank_];
    std::lock_guard<std::mutex> g(rs.inbox_mu);
    rs.inbox.push_back(std::move(env));
  });
}

std::vector<std::vector<std::byte>> transport::exchange_blobs(
    const std::vector<std::byte>& mine) {
  DPG_ASSERT_MSG(xproc_, "exchange_blobs is the cross-process gather; in-process code "
                         "reads sibling shards directly");
  DPG_ASSERT_MSG(!running_, "exchange_blobs is a between-runs collective");
  DPG_ASSERT_MSG(mine.size() < (std::uint64_t{1} << 32), "blob too large for one frame");
  const std::uint64_t gen = ++oob_gen_;
  wire_header h;
  h.flags = wire_flag_oob;
  h.payload_bytes = static_cast<std::uint32_t>(mine.size());
  h.src = self_rank_;
  h.seq = gen;  // OOB frames use the exchange generation, not the envelope seq
  h.topo_version = topo_version_;
  h.structure_version = topo_structure_version_;
  for (rank_t d = 0; d < cfg_.n_ranks; ++d)
    if (d != self_rank_) backend_->send(d, h, mine.data());

  std::vector<std::vector<std::byte>> out(cfg_.n_ranks);
  out[self_rank_] = mine;
  for (rank_t src = 0; src < cfg_.n_ranks; ++src) {
    if (src == self_rank_) continue;
    for (;;) {
      {
        std::lock_guard<std::mutex> g(oob_mu_);
        auto& q = oob_in_[src];
        if (!q.empty()) {
          // SPMD program order makes generations lockstep per source; a
          // mismatch means the processes diverged.
          if (q.front().first != gen)
            throw wire_error("exchange_blobs: generation mismatch from rank " +
                             std::to_string(src) + " (got " +
                             std::to_string(q.front().first) + ", expected " +
                             std::to_string(gen) + ")");
          out[src] = std::move(q.front().second);
          q.pop_front();
          break;
        }
      }
      poll_backend();
      std::this_thread::yield();
    }
  }
  return out;
}

transport::drain_result transport::drain_rank(transport_context& ctx, bool at_most_one) {
  rank_state& rs = ranks_[ctx.rank()];
  if (xproc_) poll_backend();
  if (faults_active_) pump_faults(ctx.rank());
  drain_result res;
  for (;;) {
    detail::envelope env;
    bool suppressed = false;
    {
      std::lock_guard<std::mutex> g(rs.inbox_mu);
      if (rs.inbox.empty()) break;
      env = std::move(rs.inbox.front());
      rs.inbox.pop_front();
      if (faults_active_ && !dedup_accept(rs, env)) {
        // Injected duplicate: absorbed by the dedup window before dispatch;
        // neither `received` nor any per-type counter moves, so exactly-once
        // accounting (and the TD sums) are unaffected.
        obs_.core().duplicates_suppressed.fetch_add(1, std::memory_order_relaxed);
        suppressed = true;
      } else {
        // Claimed under the lock: quiescence tests see either the queued
        // envelope or the active handler, never a gap.
        rs.active_handlers.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (suppressed) {
      pool_release(ctx.rank(), std::move(env.bytes));
      continue;
    }
    {
      obs::trace_span sp(&obs_.trace(), "handler", env.vt->self->name().c_str(),
                         ctx.rank());
      sp.arg("count", env.count);
      env.vt->dispatch(env.vt->self, ctx, env.bytes.data(), env.count);
    }
    const bool internal = env.vt->self->internal_;
    obs_.on_handled(env.vt->self->id(), env.count);
    if (!internal) {
      rs.received.fetch_add(env.count, std::memory_order_relaxed);
      obs_.core().handler_invocations.fetch_add(env.count, std::memory_order_relaxed);
      res.user_payloads += env.count;
    }
    rs.active_handlers.fetch_sub(1, std::memory_order_release);
    ++res.envelopes;
    pool_release(ctx.rank(), std::move(env.bytes));
    if (at_most_one) break;
  }
  return res;
}

bool transport::locally_quiet(rank_t r) const {
  const rank_state& rs = ranks_[r];
  std::lock_guard<std::mutex> g(rs.inbox_mu);
  return rs.inbox.empty() && rs.active_handlers.load(std::memory_order_acquire) == 0;
}

void transport::flush_all_types(rank_t src) {
  obs::trace_span sp(&obs_.trace(), "transport", "flush", src);
  if (faults_active_) pump_faults(src);
  for (auto& mt : types_) mt->flush_rank(src);
}

bool transport::all_buffers_empty(rank_t src) const {
  if (!outbound_empty(src)) return false;
  if (!fault_held_empty(src)) return false;
  const rank_state& rs = ranks_[src];
  std::lock_guard<std::mutex> g(rs.inbox_mu);
  return rs.inbox.empty();
}

bool transport::occupancy_consistent() const {
  for (rank_t r = 0; r < cfg_.n_ranks; ++r) {
    for (const auto& mt : types_) {
      const std::int64_t counter = mt->rank_occupancy(r);
      const std::int64_t scan = mt->rank_occupancy_scan(r);
      if (counter != scan) {
        DPG_WARN("occupancy drift: type '%s' rank %u counter=%lld scan=%lld",
                 mt->name().c_str(), static_cast<unsigned>(r),
                 static_cast<long long>(counter), static_cast<long long>(scan));
        return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// run
// ---------------------------------------------------------------------------

void transport::run(const std::function<void(transport_context&)>& f) {
  DPG_ASSERT_MSG(!running_, "transport::run is not reentrant");
  running_ = true;
  // Reset per-run control-plane state; message counters stay cumulative
  // (the four-counter protocol only needs monotonicity).
  td_.round = 0;
  td_.reports = 0;
  td_.sum_sent = td_.sum_recv = 0;
  td_.prev_sent = td_.prev_recv = ~0ULL;
  // Deliberately NOT clearing coll_.rounds: in-process it is provably empty
  // here (all rank threads joined, and a parked contribution would have
  // deadlocked the collective that owned it), but cross-process a fast peer
  // can enter the next run and land its first-generation contribution while
  // this coordinator still drains the previous run's tail — wiping it would
  // lose the contribution and deadlock that collective. Generation numbers
  // restart per run in lockstep, so the stashed entry is exactly the one
  // the next run's first collective will look up.
  for (rank_state& rs : ranks_) {
    rs.td_result_round.store(-1, std::memory_order_relaxed);
    rs.td_result_done.store(false, std::memory_order_relaxed);
    rs.coll_result_gen.store(0, std::memory_order_relaxed);
  }

  if (cfg_.n_ranks == 1 && cfg_.handler_threads == 0) {
    detail::current_rank_scope scope(0);
    transport_context ctx(this, 0);
    f(ctx);
    quiesce_residual(ctx);
    DPG_ASSERT_MSG(all_buffers_empty(0), "messages left undelivered at end of run");
    running_ = false;
    return;
  }

  if (xproc_) {
    // Cross-process: this process hosts exactly one rank. The SPMD function
    // runs once, for self_rank_; sibling processes run the same program for
    // their ranks, and every remote envelope crosses the backend. Optional
    // helper threads drain the one local inbox, same as in-process.
    std::mutex xerr_mu;
    std::exception_ptr xerr;
    std::atomic<bool> stop_helpers{false};
    std::vector<std::thread> helpers;
    for (unsigned hth = 0; hth < cfg_.handler_threads; ++hth) {
      helpers.emplace_back([this, &stop_helpers, &xerr_mu, &xerr] {
        detail::current_rank_scope scope(self_rank_);
        transport_context hctx(this, self_rank_);
        hctx.in_epoch_ = true;
        try {
          while (!stop_helpers.load(std::memory_order_acquire)) {
            if (drain_rank(hctx, /*at_most_one=*/true).envelopes == 0)
              std::this_thread::yield();
          }
        } catch (...) {
          std::lock_guard<std::mutex> g(xerr_mu);
          if (!xerr) xerr = std::current_exception();
        }
      });
    }
    {
      detail::current_rank_scope scope(self_rank_);
      transport_context ctx(this, self_rank_);
      try {
        f(ctx);
      } catch (...) {
        std::lock_guard<std::mutex> g(xerr_mu);
        if (!xerr) xerr = std::current_exception();
      }
    }
    stop_helpers.store(true, std::memory_order_release);
    for (auto& t : helpers) t.join();
    running_ = false;
    if (xerr) std::rethrow_exception(xerr);
    return;
  }

  std::mutex err_mu;
  std::exception_ptr first_error;

  // Optional dedicated handler threads (§II-A multithreaded ranks): each
  // concurrently drains its rank's inbox for the whole run. They hold an
  // always-in-epoch context so the handlers they execute may send.
  std::atomic<bool> stop_helpers{false};
  std::vector<std::thread> helpers;
  for (rank_t r = 0; r < cfg_.n_ranks; ++r) {
    for (unsigned h = 0; h < cfg_.handler_threads; ++h) {
      helpers.emplace_back([this, r, &stop_helpers, &err_mu, &first_error] {
        detail::current_rank_scope scope(r);
        transport_context hctx(this, r);
        hctx.in_epoch_ = true;
        try {
          while (!stop_helpers.load(std::memory_order_acquire)) {
            // Gate on envelopes, not user payloads: a helper that just
            // dispatched a control-plane envelope (TD verdict, collective
            // result) did real work and should keep draining, not yield.
            if (drain_rank(hctx, /*at_most_one=*/true).envelopes == 0)
              std::this_thread::yield();
          }
        } catch (...) {
          std::lock_guard<std::mutex> g(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(cfg_.n_ranks);
  for (rank_t r = 0; r < cfg_.n_ranks; ++r) {
    threads.emplace_back([this, r, &f, &err_mu, &first_error] {
      detail::current_rank_scope scope(r);
      transport_context ctx(this, r);
      try {
        f(ctx);
        // Empty this rank's held queue before the thread exits: a parked
        // retry of a control-plane envelope (TD verdict, collective result)
        // would otherwise leave its destination rank spinning forever.
        quiesce_residual(ctx);
      } catch (...) {
        std::lock_guard<std::mutex> g(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  stop_helpers.store(true, std::memory_order_release);
  for (auto& t : helpers) t.join();
  if (faults_active_ && !first_error) {
    // Mop-up pass: residual quiesce above emptied every held queue, but a
    // release from rank A may have landed in rank B's inbox after B's final
    // drain (late verdict duplicates and the like). Drain every inbox to
    // empty — only internal control-plane envelopes can remain here (TD
    // proves user traffic quiescent at each epoch's end), and their
    // handlers send nothing — so the duplicate/suppression and drop/retry
    // conservation laws hold exactly at destruction.
    bool dirty = true;
    while (dirty) {
      dirty = false;
      for (rank_t r = 0; r < cfg_.n_ranks; ++r) {
        detail::current_rank_scope scope(r);
        transport_context cctx(this, r);
        drain_rank(cctx, /*at_most_one=*/false);
        if (!fault_held_empty(r) || !locally_quiet(r)) dirty = true;
      }
    }
  }
  running_ = false;
  if (first_error) std::rethrow_exception(first_error);
}

void transport::quiesce_residual(transport_context& ctx) {
  if (!faults_active_) return;
  const rank_t r = ctx.rank();
  while (!fault_held_empty(r)) {
    pump_faults(r);
    drain_rank(ctx, /*at_most_one=*/false);
    std::this_thread::yield();
  }
  drain_rank(ctx, /*at_most_one=*/false);
}

// ---------------------------------------------------------------------------
// termination detection (message-based four-counter protocol)
// ---------------------------------------------------------------------------

void transport::td_on_report(transport_context& ctx, const td_report_t& r) {
  DPG_ASSERT_MSG(ctx.rank() == 0, "TD reports must arrive at the coordinator");
  bool decide = false;
  std::uint64_t round = 0;
  bool done = false;
  {
    std::lock_guard<std::mutex> g(td_.mu);
    DPG_ASSERT_MSG(r.round == td_.round, "TD round mismatch (lockstep violated)");
    td_.sum_sent += r.sent;
    td_.sum_recv += r.recv;
    if (++td_.reports == cfg_.n_ranks) {
      done = td_.sum_sent == td_.sum_recv && td_.sum_sent == td_.prev_sent &&
             td_.sum_recv == td_.prev_recv;
      td_.prev_sent = td_.sum_sent;
      td_.prev_recv = td_.sum_recv;
      round = td_.round;
      ++td_.round;
      td_.reports = 0;
      td_.sum_sent = td_.sum_recv = 0;
      decide = true;
    }
  }
  if (decide) {
    obs_.core().td_rounds.fetch_add(1, std::memory_order_relaxed);
    const td_result_t result{round, done ? 1u : 0u};
    for (rank_t d = 0; d < cfg_.n_ranks; ++d) mt_td_result_->send(ctx, d, result);
    mt_td_result_->flush_rank(ctx.rank());
  }
}

bool transport::td_round(transport_context& ctx) {
  const rank_t r = ctx.rank();
  const std::uint64_t round = ctx.td_round_;
  obs::trace_span sp(&obs_.trace(), "epoch", "td_round", r);
  sp.arg("round", round);

  // Locally quiesce: alternate flushing outgoing buffers and handling
  // arrived messages until neither produces work — and, with dedicated
  // handler threads, until no handler is mid-flight (an in-flight handler
  // may still send). Handlers may refill buffers, hence the loop. With
  // fault injection the held queue (delayed/dropped envelopes awaiting
  // release) must also be empty before reporting: a parked user payload is
  // counted sent but not yet received, and each flush advances the
  // progress tick, so the loop pumps every hold to delivery.
  for (;;) {
    flush_all_types(r);
    const drain_result dr = drain_rank(ctx, /*at_most_one=*/false);
    // outbound_empty is one relaxed counter read per message type (no lane
    // locks, no cache scans): this spin is the hottest loop of every
    // strategy.
    if (dr.user_payloads == 0 && outbound_empty(r) && fault_held_empty(r) &&
        locally_quiet(r))
      break;
    if (dr.envelopes == 0) std::this_thread::yield();
  }

  const td_report_t report{round, ranks_[r].sent.load(std::memory_order_relaxed),
                           ranks_[r].received.load(std::memory_order_relaxed), r};
  mt_td_report_->send(ctx, 0, report);
  mt_td_report_->flush_rank(r);

  // Wait for the coordinator's verdict for this round; keep making
  // progress while waiting (handlers run, which may create new work — that
  // is fine, the next round will observe it).
  while (ranks_[r].td_result_round.load(std::memory_order_acquire) <
         static_cast<std::int64_t>(round)) {
    if (drain_rank(ctx, /*at_most_one=*/false).envelopes == 0) std::this_thread::yield();
  }
  ctx.td_round_ = round + 1;
  return ranks_[r].td_result_done.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// collectives
// ---------------------------------------------------------------------------

rank_t transport_context::size() const noexcept { return tp_->size(); }

std::size_t transport_context::drain() { return tp_->drain_rank(*this, false).user_payloads; }

std::size_t transport_context::poll_once() {
  return tp_->drain_rank(*this, true).user_payloads;
}

void transport_context::barrier() {
  std::uint32_t dummy = 0;
  allreduce(dummy, [](std::uint32_t a, std::uint32_t) { return a; });
  tp_->obs_.core().barriers.fetch_add(1, std::memory_order_relaxed);
}

void transport_context::allreduce_raw(const void* in, void* out, std::size_t size,
                                      void (*combine)(void*, const void*, void*),
                                      void* opctx) {
  DPG_ASSERT(size <= 56);
  transport& tp = *tp_;
  const std::uint64_t gen = ++coll_gen_;
  obs::trace_span sp(&tp.obs_.trace(), "collective", "allreduce", rank_);
  sp.arg("gen", gen);

  transport::coll_contrib_t contrib{};
  contrib.gen = gen;
  contrib.src = rank_;
  contrib.size = static_cast<std::uint32_t>(size);
  std::memcpy(contrib.bytes.data(), in, size);
  tp.mt_coll_contrib_->send(*this, 0, contrib);
  tp.mt_coll_contrib_->flush_rank(rank_);

  if (rank_ == 0) {
    // Coordinator: gather all contributions for this generation, fold them
    // in rank order (deterministic for non-commutative ops), broadcast.
    std::vector<transport::coll_contrib_t> contribs;
    for (;;) {
      {
        std::lock_guard<std::mutex> g(tp.coll_.mu);
        auto it = tp.coll_.rounds.find(gen);
        if (it != tp.coll_.rounds.end() && it->second.contribs.size() == tp.size()) {
          contribs = std::move(it->second.contribs);
          tp.coll_.rounds.erase(it);
          break;
        }
      }
      if (tp.drain_rank(*this, false).envelopes == 0) std::this_thread::yield();
    }
    std::sort(contribs.begin(), contribs.end(),
              [](const auto& a, const auto& b) { return a.src < b.src; });
    transport::coll_result_t result{};
    result.gen = gen;
    result.size = static_cast<std::uint32_t>(size);
    std::memcpy(result.bytes.data(), contribs[0].bytes.data(), size);
    for (rank_t i = 1; i < tp.size(); ++i)
      combine(opctx, contribs[i].bytes.data(), result.bytes.data());
    for (rank_t d = 0; d < tp.size(); ++d) tp.mt_coll_result_->send(*this, d, result);
    tp.mt_coll_result_->flush_rank(rank_);
  }

  transport::rank_state& rs = tp.ranks_[rank_];
  while (rs.coll_result_gen.load(std::memory_order_acquire) < gen) {
    if (tp.drain_rank(*this, false).envelopes == 0) std::this_thread::yield();
  }
  std::memcpy(out, rs.coll_result_bytes.data(), size);
}

// ---------------------------------------------------------------------------
// epoch
// ---------------------------------------------------------------------------

epoch::epoch(transport_context& ctx) : ctx_(ctx) {
  DPG_ASSERT_MSG(!ctx.in_epoch_, "epochs do not nest");
  // Enable sends before the entry barrier: a rank waiting in the barrier
  // already runs handlers, and handlers may legitimately send.
  ctx.in_epoch_ = true;
  ctx.barrier();
  // Open the span (and the rank-0 per-epoch stats window) only after the
  // entry barrier so the window excludes stragglers from the previous epoch.
  span_ = obs::trace_span(&ctx.tp().obs_.trace(), "epoch", "epoch", ctx.rank());
  if (ctx.rank() == 0) ctx.tp().obs_.epoch_begin();
}

void epoch::flush() {
  DPG_ASSERT_MSG(!ended_, "epoch_flush after the epoch ended");
  transport& tp = ctx_.tp();
  const rank_t r = ctx_.rank();
  for (;;) {
    tp.flush_all_types(r);
    const transport::drain_result dr = tp.drain_rank(ctx_, /*at_most_one=*/false);
    if (dr.user_payloads == 0 && tp.outbound_empty(r) && tp.fault_held_empty(r) &&
        tp.locally_quiet(r))
      break;
    if (dr.envelopes == 0) std::this_thread::yield();
  }
}

bool epoch::try_finish() {
  DPG_ASSERT_MSG(!ended_, "try_finish after the epoch ended");
  if (ctx_.tp().td_round(ctx_)) {
    finish();
    return true;
  }
  return false;
}

void epoch::end() {
  if (ended_) return;
  while (!ctx_.tp().td_round(ctx_)) {
  }
  finish();
}

void epoch::finish() {
  ctx_.in_epoch_ = false;
  ended_ = true;
  if (ctx_.rank() == 0) {
    ctx_.tp().obs_.core().epochs.fetch_add(1, std::memory_order_relaxed);
    ctx_.tp().obs_.epoch_end();
  }
  span_.finish();
}

epoch::~epoch() { end(); }

}  // namespace dpg::ampp
