// The wire-backend seam (ISSUE 8 tentpole).
//
// A `wire_backend` carries opaque envelope byte buffers between rank
// *processes*: send() frames one envelope (wire_header + payload bytes)
// to a destination rank, poll() drains every frame currently available
// and hands each one to a sink. Everything above the seam — coalescing
// lanes, four-counter termination detection, seq/dedup windows,
// ack/retry, collectives — is wire-agnostic and unchanged; everything
// below is a dumb reliable byte pipe.
//
// Contract:
//  * One process hosts exactly one rank (`cfg.self_rank`); the other
//    ranks of the machine live in sibling processes launched with the
//    same session id (scripts/run_ranks.sh).
//  * send() is thread-safe per backend and delivers frames to a given
//    destination in order, reliably (no drops, no duplicates) — which is
//    why the transport's dedup window is a no-op across a real wire and
//    fault plans stay an in-process-only instrument.
//  * poll() may be called concurrently with send(); implementations
//    serialize internally. It never blocks beyond "what is readable now".
//  * Errors (peer disconnect, handshake mismatch, corrupt frame) throw
//    ampp::wire_error — loudly, never by decoding garbage.
//
// The in-process path does NOT go through this interface: when
// backend_config::kind is `inproc` (the default) the transport keeps its
// direct inbox push, bit-identical to every seed baseline. The seam only
// activates for shm_ring / tcp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "ampp/types.hpp"
#include "ampp/wire.hpp"

namespace dpg::ampp {

/// Selects and parameterizes the wire backend of a transport. Default
/// (kind = inproc) keeps today's single-process N-thread simulation.
struct backend_config {
  enum class kind_t : std::uint8_t {
    inproc,    ///< all ranks in this process; direct inbox delivery (default)
    shm_ring,  ///< one process per rank on one host; shared-memory SPSC rings
    tcp,       ///< one process per rank; TCP full mesh, loopback or multi-host
  };

  kind_t kind = kind_t::inproc;
  /// The rank this process hosts (cross-process kinds only).
  rank_t self_rank = 0;
  /// Session id shared by all rank processes of one run: names the shm
  /// segment / scopes the port block so concurrent runs don't collide.
  std::string session = "dpg";
  /// TCP: host to bind/connect on. Rank processes on one host use loopback;
  /// multi-host runs put every rank's address here (same value per rank for
  /// now — a full host list is future work).
  std::string host = "127.0.0.1";
  /// TCP: first port of the block. Rank r of channel c listens on
  /// base_port + c * n_ranks + r.
  std::uint16_t base_port = 29700;
  /// shm: per-(src,dest) ring capacity in bytes (power of two).
  std::uint32_t ring_bytes = 1u << 20;
  /// How long construction waits for peers to appear before failing.
  std::uint32_t attach_timeout_ms = 30000;
  /// Channel index distinguishing multiple transports in one process
  /// (e.g. cc_solver's rewrite transport). -1 = assign automatically from
  /// a process-global counter — correct whenever every rank process
  /// constructs its transports in the same order, which the SPMD model
  /// guarantees. Tests pairing two backends inside one process set it
  /// explicitly.
  std::int32_t channel = -1;

  bool cross_process() const { return kind != kind_t::inproc; }
};

/// Abstract rank-to-rank byte pipe. Implementations: backend/shm_ring,
/// backend/tcp. Constructed (rendezvous + handshake included) by
/// make_backend.
class wire_backend {
 public:
  virtual ~wire_backend() = default;

  /// Human-readable backend name ("shm_ring", "tcp") for stats/bench metadata.
  virtual const char* name() const = 0;
  /// The rank this process hosts.
  virtual rank_t self() const = 0;

  /// Frames and ships one envelope to `dest` (!= self). `h.payload_bytes`
  /// bytes are read from `payload`. Blocks only if the destination's pipe
  /// is full; throws wire_error if the peer is gone.
  virtual void send(rank_t dest, const wire_header& h, const std::byte* payload) = 0;

  /// Sink for received frames: header + `h.payload_bytes` of payload.
  using frame_sink = std::function<void(const wire_header& h, const std::byte* payload)>;

  /// Drains every frame currently readable from every peer into `sink`.
  /// Returns the number of frames delivered. Throws wire_error on protocol
  /// violations or a dead peer with a partial frame in flight.
  virtual std::size_t poll(const frame_sink& sink) = 0;
};

/// Builds the backend described by `cfg` for a machine of `n_ranks` ranks
/// and rendezvouses with the sibling rank processes (creates/attaches the
/// shm segment, listens + connects the TCP mesh, exchanges handshakes).
/// Throws wire_error on timeout or a peer speaking a different wire
/// format. Returns nullptr for kind_t::inproc.
std::unique_ptr<wire_backend> make_backend(const backend_config& cfg, rank_t n_ranks);

}  // namespace dpg::ampp
