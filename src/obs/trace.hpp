// Span-based runtime tracing (the observability layer's timeline half; the
// counter half lives in obs/registry.hpp).
//
// A `tracer` is a bounded, sharded event buffer with a runtime on/off
// switch. Emitters open a `trace_span` (RAII) around a region — an epoch, a
// termination-detection round, a buffer flush, a handler dispatch, a gather
// hop of a synthesized plan — and the span records a Chrome trace-event
// "complete" event (`ph:"X"`) when it closes. Events carry the simulated
// rank as the thread id, so a trace viewer shows one lane per rank.
//
// Overhead discipline:
//  * disabled (the default): constructing a span is one relaxed atomic load
//    and a branch — no clock read, no string copy, no allocation;
//  * enabled: a steady-clock read at open/close and one short spinlock
//    acquisition on a per-rank shard at close;
//  * compile-time kill switch: building with -DDPG_OBS_DISABLE turns
//    `trace_span` into an empty shell (for overhead A/B measurements).
//
// The buffer is bounded (default 1M events); once full, further events are
// dropped and counted — a trace is a window, never a crash or a stall.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "util/spinlock.hpp"

namespace dpg::obs {

/// One recorded event. Names are copied into a fixed inline buffer at
/// record time so emitters never need to keep strings alive until export.
struct trace_event {
  static constexpr std::size_t name_capacity = 47;
  static constexpr int max_args = 4;

  char name[name_capacity + 1] = {0};
  const char* cat = "";  ///< static-lifetime category literal
  std::uint64_t ts_us = 0;   ///< microseconds since tracer construction
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;     ///< simulated rank (trace-viewer lane)
  int n_args = 0;
  struct arg_t {
    const char* key;  ///< static-lifetime literal
    std::uint64_t value;
  } args[max_args] = {};

  void set_name(const char* n) {
    std::strncpy(name, n, name_capacity);
    name[name_capacity] = '\0';
  }
};

/// Bounded sharded event sink with a runtime enable switch and a Chrome
/// trace-event JSON exporter. One tracer per transport (owned by its
/// obs::registry); all ranks and handler threads record into it.
class tracer {
 public:
  tracer();

  tracer(const tracer&) = delete;
  tracer& operator=(const tracer&) = delete;

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since construction (the trace timebase).
  std::uint64_t now_us() const;

  /// Appends one event (thread-safe). Silently drops once the buffer is
  /// full; drops are counted.
  void record(const trace_event& ev);

  /// All recorded events, merged across shards (unsorted).
  std::vector<trace_event> events() const;

  std::size_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Total event capacity. Must be set while no emitter is running.
  void set_capacity(std::size_t events);

  void clear();

  /// Writes the Chrome trace-event JSON object ({"traceEvents": [...]}).
  /// Load the file in chrome://tracing or https://ui.perfetto.dev. The
  /// optional `extra` events (e.g. per-message-type counter samples) are
  /// appended verbatim after the recorded spans.
  void write_chrome_trace(std::ostream& os,
                          const std::vector<trace_event>& extra = {}) const;

  /// write_chrome_trace to a file; returns false (and logs) on I/O error.
  bool write_chrome_trace_file(const std::string& path,
                               const std::vector<trace_event>& extra = {}) const;

 private:
  static constexpr std::size_t kShards = 8;
  struct alignas(64) shard {
    mutable dpg::spinlock mu;
    std::vector<trace_event> events;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::size_t shard_capacity_;
  shard shards_[kShards];
  std::chrono::steady_clock::time_point start_;
};

#ifndef DPG_OBS_DISABLE

/// RAII span: opens on construction (when the tracer is enabled), records a
/// complete event on finish()/destruction. Inactive spans (null or disabled
/// tracer) cost one relaxed load and a branch: the event payload lives in
/// an optional that is only constructed (and its ~100 bytes only touched)
/// on the enabled path — span sites sit on per-message hot paths.
class trace_span {
 public:
  trace_span() = default;

  trace_span(tracer* t, const char* cat, const char* name, std::uint32_t tid) {
    if (t == nullptr || !t->enabled()) return;
    t_ = t;
    trace_event& ev = ev_.emplace();
    ev.set_name(name);
    ev.cat = cat;
    ev.tid = tid;
    ev.ts_us = t->now_us();
  }

  trace_span(const trace_span&) = delete;
  trace_span& operator=(const trace_span&) = delete;

  trace_span(trace_span&& o) noexcept : t_(o.t_), ev_(o.ev_) { o.t_ = nullptr; }
  trace_span& operator=(trace_span&& o) noexcept {
    if (this != &o) {
      finish();
      t_ = o.t_;
      ev_ = o.ev_;
      o.t_ = nullptr;
    }
    return *this;
  }

  /// Attaches a key/value pair (up to trace_event::max_args; extras are
  /// dropped). `key` must be a static-lifetime literal.
  void arg(const char* key, std::uint64_t value) {
    if (t_ == nullptr || ev_->n_args >= trace_event::max_args) return;
    ev_->args[ev_->n_args++] = {key, value};
  }

  bool active() const { return t_ != nullptr; }

  /// Closes and records the span now (idempotent).
  void finish() {
    if (t_ == nullptr) return;
    ev_->dur_us = t_->now_us() - ev_->ts_us;
    t_->record(*ev_);
    t_ = nullptr;
  }

  ~trace_span() { finish(); }

 private:
  tracer* t_ = nullptr;
  std::optional<trace_event> ev_;
};

#else  // DPG_OBS_DISABLE: spans compile to nothing.

class trace_span {
 public:
  trace_span() = default;
  trace_span(tracer*, const char*, const char*, std::uint32_t) {}
  void arg(const char*, std::uint64_t) {}
  bool active() const { return false; }
  void finish() {}
};

#endif  // DPG_OBS_DISABLE

}  // namespace dpg::obs
