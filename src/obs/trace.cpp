#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <mutex>
#include <ostream>

#include "util/log.hpp"

namespace dpg::obs {

namespace {

/// JSON string escaping for event names (categories and arg keys are
/// compile-time literals and are trusted).
void write_escaped(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void write_event(std::ostream& os, const trace_event& ev) {
  os << "{\"name\":\"";
  write_escaped(os, ev.name);
  os << "\",\"cat\":\"";
  write_escaped(os, ev.cat);
  os << "\",\"ph\":\"X\",\"ts\":" << ev.ts_us << ",\"dur\":" << ev.dur_us
     << ",\"pid\":0,\"tid\":" << ev.tid;
  if (ev.n_args > 0) {
    os << ",\"args\":{";
    for (int i = 0; i < ev.n_args; ++i) {
      if (i) os << ',';
      os << '"';
      write_escaped(os, ev.args[i].key);
      os << "\":" << ev.args[i].value;
    }
    os << '}';
  }
  os << '}';
}

}  // namespace

tracer::tracer()
    : shard_capacity_((std::size_t{1} << 20) / kShards),
      start_(std::chrono::steady_clock::now()) {}

std::uint64_t tracer::now_us() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - start_)
                                        .count());
}

void tracer::record(const trace_event& ev) {
  shard& sh = shards_[ev.tid % kShards];
  std::lock_guard<dpg::spinlock> g(sh.mu);
  if (sh.events.size() >= shard_capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  sh.events.push_back(ev);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<trace_event> tracer::events() const {
  std::vector<trace_event> out;
  for (const shard& sh : shards_) {
    std::lock_guard<dpg::spinlock> g(sh.mu);
    out.insert(out.end(), sh.events.begin(), sh.events.end());
  }
  return out;
}

void tracer::set_capacity(std::size_t events) {
  shard_capacity_ = events < kShards ? 1 : events / kShards;
}

void tracer::clear() {
  for (shard& sh : shards_) {
    std::lock_guard<dpg::spinlock> g(sh.mu);
    sh.events.clear();
  }
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

void tracer::write_chrome_trace(std::ostream& os,
                                const std::vector<trace_event>& extra) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const trace_event& ev : events()) {
    if (!first) os << ",\n";
    first = false;
    write_event(os, ev);
  }
  for (const trace_event& ev : extra) {
    if (!first) os << ",\n";
    first = false;
    write_event(os, ev);
  }
  os << "],\"displayTimeUnit\":\"ms\"";
  if (const std::uint64_t d = dropped())
    os << ",\"otherData\":{\"dropped_events\":\"" << d << "\"}";
  os << "}\n";
}

bool tracer::write_chrome_trace_file(const std::string& path,
                                     const std::vector<trace_event>& extra) const {
  std::ofstream out(path);
  if (!out) {
    DPG_WARN("cannot open trace output file '%s'", path.c_str());
    return false;
  }
  write_chrome_trace(out, extra);
  return static_cast<bool>(out);
}

}  // namespace dpg::obs
