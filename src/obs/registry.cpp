#include "obs/registry.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/log.hpp"
#include "util/simd.hpp"

namespace dpg::obs {

// ---------------------------------------------------------------------------
// snapshots
// ---------------------------------------------------------------------------

stats_snapshot stats_snapshot::operator-(const stats_snapshot& o) const {
  stats_snapshot d;
  d.core = core - o.core;
  d.per_type.reserve(per_type.size());
  for (std::size_t i = 0; i < per_type.size(); ++i) {
    type_counters t = per_type[i];
    if (i < o.per_type.size()) {
      t.sent -= o.per_type[i].sent;
      t.handled -= o.per_type[i].handled;
      t.bytes -= o.per_type[i].bytes;
      t.envelopes -= o.per_type[i].envelopes;
      t.wire_bytes -= o.per_type[i].wire_bytes;
      // max_env_bytes is a gauge: the later snapshot's value stands.
    }
    d.per_type.push_back(std::move(t));
  }
  return d;
}

// ---------------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------------

registry::registry() {
  if (const char* path = std::getenv("DPG_TRACE"); path != nullptr && *path != '\0') {
    trace_path_ = path;
    tracer_.enable();
  }
  if (const char* s = std::getenv("DPG_OBS_SUMMARY"); s != nullptr && *s != '\0' &&
                                                      std::strcmp(s, "0") != 0) {
    summary_on_destroy_ = true;
  }
}

registry::~registry() {
  if (!trace_path_.empty() && tracer_.recorded() > 0) {
    // Each transport in the process gets its own file: the first takes the
    // configured path verbatim, later ones append .1, .2, …
    static std::atomic<unsigned> seq{0};
    const unsigned n = seq.fetch_add(1, std::memory_order_relaxed);
    std::string path = trace_path_;
    if (n > 0) {
      path += '.';
      path += std::to_string(n);
    }
    if (export_trace(path))
      DPG_INFO("wrote Chrome trace to '%s' (%zu events, %llu dropped)", path.c_str(),
               tracer_.recorded(), static_cast<unsigned long long>(tracer_.dropped()));
  }
  if (summary_on_destroy_ && epochs_recorded() > 0)
    std::fputs(epoch_summary().c_str(), stderr);
}

std::size_t registry::add_type(std::string name) {
  types_.emplace_back();
  types_.back().name = std::move(name);
  return types_.size() - 1;
}

void registry::mark_internal(std::size_t id) { types_[id].internal = true; }

stats_snapshot registry::snapshot() const {
  stats_snapshot s;
  s.core = core_.snap();
  s.per_type.reserve(types_.size());
  for (const type_row& t : types_) {
    s.per_type.push_back(type_counters{t.name, t.internal,
                                       t.sent.load(std::memory_order_relaxed),
                                       t.handled.load(std::memory_order_relaxed),
                                       t.bytes.load(std::memory_order_relaxed),
                                       t.envelopes.load(std::memory_order_relaxed),
                                       t.wire_bytes.load(std::memory_order_relaxed),
                                       t.max_env_bytes.load(std::memory_order_relaxed)});
  }
  return s;
}

// ---------------------------------------------------------------------------
// per-epoch records
// ---------------------------------------------------------------------------

void registry::epoch_begin() {
  std::lock_guard<std::mutex> g(epochs_mu_);
  if (epoch_depth_++ != 0) {
    // A window is already open: keep the outer one (overwriting its start
    // snapshot would corrupt the record) and count the overlap instead of
    // assuming a single writer.
    ++epoch_overlaps_;
    return;
  }
  epoch_start_us_ = tracer_.now_us();
  epoch_at_begin_ = snapshot();
}

void registry::epoch_end() {
  std::lock_guard<std::mutex> g(epochs_mu_);
  if (epoch_depth_ == 0) return;  // epoch began before this registry was watching
  if (--epoch_depth_ != 0) return;  // overlapping windows merge into one record
  epoch_record rec;
  rec.index = epochs_.size();
  rec.start_us = epoch_start_us_;
  rec.dur_us = tracer_.now_us() - epoch_start_us_;
  rec.delta = snapshot() - epoch_at_begin_;
  epochs_.push_back(std::move(rec));
}

std::uint64_t registry::epoch_overlaps() const {
  std::lock_guard<std::mutex> g(epochs_mu_);
  return epoch_overlaps_;
}

std::uint64_t registry::epoch_wall_us() const {
  std::lock_guard<std::mutex> g(epochs_mu_);
  std::uint64_t us = 0;
  for (const epoch_record& e : epochs_) us += e.dur_us;
  return us;
}

std::vector<epoch_record> registry::epoch_records() const {
  std::lock_guard<std::mutex> g(epochs_mu_);
  return epochs_;
}

std::size_t registry::epochs_recorded() const {
  std::lock_guard<std::mutex> g(epochs_mu_);
  return epochs_.size();
}

std::string registry::epoch_summary() const {
  const std::vector<epoch_record> eps = epoch_records();
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "%5s %9s %10s %9s %12s %12s %9s %9s %10s %8s %8s %9s %9s %9s %9s "
                "%5s %8s %8s\n",
                "epoch", "wall_ms", "msgs", "envs", "bytes", "wire_b", "handlers",
                "td_rnds", "cache_hit", "drops", "retries", "ln_visit", "ln_skip",
                "batch_rec", "batch_krn", "muts", "delta_e", "tomb_e");
  out += line;
  counters tot{};
  std::uint64_t tot_us = 0;
  for (const epoch_record& e : eps) {
    const counters& d = e.delta.core;
    std::snprintf(line, sizeof line,
                  "%5llu %9.3f %10llu %9llu %12llu %12llu %9llu %9llu %10llu %8llu %8llu "
                  "%9llu %9llu %9llu %9llu %5llu %8llu %8llu\n",
                  static_cast<unsigned long long>(e.index), e.dur_us / 1e3,
                  static_cast<unsigned long long>(d.messages_sent),
                  static_cast<unsigned long long>(d.envelopes_sent),
                  static_cast<unsigned long long>(d.bytes_sent),
                  static_cast<unsigned long long>(d.wire_bytes_sent),
                  static_cast<unsigned long long>(d.handler_invocations),
                  static_cast<unsigned long long>(d.td_rounds),
                  static_cast<unsigned long long>(d.cache_hits),
                  static_cast<unsigned long long>(d.envelopes_dropped),
                  static_cast<unsigned long long>(d.envelopes_retried),
                  static_cast<unsigned long long>(d.flush_lane_visits),
                  static_cast<unsigned long long>(d.flush_lane_skips),
                  static_cast<unsigned long long>(d.batch_records),
                  static_cast<unsigned long long>(d.batch_kernels_run),
                  static_cast<unsigned long long>(d.graph_mutations),
                  static_cast<unsigned long long>(d.delta_edges),
                  static_cast<unsigned long long>(d.tombstoned_edges));
    out += line;
    tot = tot + d;
    tot_us += e.dur_us;
  }
  // Topology mutation is only legal *between* runs, so every per-epoch
  // delta is zero for these three; the totals row reports the cumulative
  // counts instead of the (empty) sum of epoch deltas.
  {
    const counters cum = core_.snap();
    tot.graph_mutations = cum.graph_mutations;
    tot.delta_edges = cum.delta_edges;
    tot.tombstoned_edges = cum.tombstoned_edges;
  }
  std::snprintf(line, sizeof line,
                "%5s %9.3f %10llu %9llu %12llu %12llu %9llu %9llu %10llu %8llu %8llu "
                "%9llu %9llu %9llu %9llu %5llu %8llu %8llu\n",
                "total", tot_us / 1e3, static_cast<unsigned long long>(tot.messages_sent),
                static_cast<unsigned long long>(tot.envelopes_sent),
                static_cast<unsigned long long>(tot.bytes_sent),
                static_cast<unsigned long long>(tot.wire_bytes_sent),
                static_cast<unsigned long long>(tot.handler_invocations),
                static_cast<unsigned long long>(tot.td_rounds),
                static_cast<unsigned long long>(tot.cache_hits),
                static_cast<unsigned long long>(tot.envelopes_dropped),
                static_cast<unsigned long long>(tot.envelopes_retried),
                static_cast<unsigned long long>(tot.flush_lane_visits),
                static_cast<unsigned long long>(tot.flush_lane_skips),
                static_cast<unsigned long long>(tot.batch_records),
                static_cast<unsigned long long>(tot.batch_kernels_run),
                static_cast<unsigned long long>(tot.graph_mutations),
                static_cast<unsigned long long>(tot.delta_edges),
                static_cast<unsigned long long>(tot.tombstoned_edges));
  out += line;

  std::snprintf(line, sizeof line, "simd level: %s (detected %s)\n",
                simd::name(simd::active()), simd::name(simd::detect()));
  out += line;
  out += "per-type totals (cumulative):\n";
  for (std::size_t i = 0; i < num_types(); ++i) {
    std::snprintf(line, sizeof line,
                  "  %-32s %10llu sent %10llu handled %12llu bytes %8llu envs "
                  "%12llu wire%s\n",
                  types_[i].name.c_str(),
                  static_cast<unsigned long long>(type_sent(i)),
                  static_cast<unsigned long long>(type_handled(i)),
                  static_cast<unsigned long long>(type_bytes(i)),
                  static_cast<unsigned long long>(type_envelopes(i)),
                  static_cast<unsigned long long>(type_wire_bytes(i)),
                  types_[i].internal ? "  [control]" : "");
    out += line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// cross-registry aggregation (rollup)
// ---------------------------------------------------------------------------

void merge(stats_snapshot& a, const stats_snapshot& b) {
  a.core = a.core + b.core;
  for (const type_counters& t : b.per_type) {
    type_counters* row = nullptr;
    for (type_counters& existing : a.per_type)
      if (existing.name == t.name) {
        row = &existing;
        break;
      }
    if (row == nullptr) {
      a.per_type.push_back(t);
      continue;
    }
    row->sent += t.sent;
    row->handled += t.handled;
    row->bytes += t.bytes;
    row->envelopes += t.envelopes;
    row->wire_bytes += t.wire_bytes;
    row->max_env_bytes = std::max(row->max_env_bytes, t.max_env_bytes);
  }
}

void rollup::absorb(const std::string& label, const stats_snapshot& totals,
                    std::uint64_t epochs, std::uint64_t wall_us) {
  std::lock_guard<std::mutex> g(mu_);
  context_row* row = nullptr;
  for (context_row& r : rows_)
    if (r.label == label) {
      row = &r;
      break;
    }
  if (row == nullptr) {
    rows_.push_back(context_row{});
    row = &rows_.back();
    row->label = label;
  }
  merge(row->totals, totals);
  row->epochs += epochs;
  row->wall_us += wall_us;
  ++row->contexts;
}

void rollup::absorb(const std::string& label, const registry& reg) {
  absorb(label, reg.snapshot(), reg.epochs_recorded(), reg.epoch_wall_us());
}

void rollup::note_query(std::uint64_t tenant, bool cache_hit, bool merged,
                        std::uint64_t latency_us) {
  std::lock_guard<std::mutex> g(mu_);
  tenant_row& t = tenants_[tenant];
  ++t.queries;
  if (cache_hit) ++t.cache_hits;
  if (merged) ++t.merged;
  t.latency_us_sum += latency_us;
  t.latency_us_max = std::max(t.latency_us_max, latency_us);
}

void rollup::note_solve(std::uint64_t tenant) {
  std::lock_guard<std::mutex> g(mu_);
  ++tenants_[tenant].solves;
}

void rollup::note_repair(std::uint64_t tenant) {
  std::lock_guard<std::mutex> g(mu_);
  ++tenants_[tenant].repairs;
}

void rollup::note_mutation(std::uint64_t tenant) {
  std::lock_guard<std::mutex> g(mu_);
  ++tenants_[tenant].mutations;
}

std::vector<rollup::context_row> rollup::contexts() const {
  std::lock_guard<std::mutex> g(mu_);
  return rows_;
}

rollup::tenant_row rollup::tenant(std::uint64_t id) const {
  std::lock_guard<std::mutex> g(mu_);
  const auto it = tenants_.find(id);
  return it != tenants_.end() ? it->second : tenant_row{};
}

std::size_t rollup::tenants_seen() const {
  std::lock_guard<std::mutex> g(mu_);
  return tenants_.size();
}

stats_snapshot rollup::total() const {
  std::lock_guard<std::mutex> g(mu_);
  stats_snapshot s;
  for (const context_row& r : rows_) merge(s, r.totals);
  return s;
}

std::string rollup::summary() const {
  std::lock_guard<std::mutex> g(mu_);
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-20s %5s %6s %9s %10s %9s %12s %12s %10s\n",
                "context", "ctxs", "epochs", "wall_ms", "msgs", "envs", "bytes",
                "wire_b", "cache_hit");
  out += line;
  stats_snapshot tot;
  std::uint64_t tot_epochs = 0, tot_wall = 0, tot_ctxs = 0;
  for (const context_row& r : rows_) {
    const counters& c = r.totals.core;
    std::snprintf(line, sizeof line,
                  "%-20s %5llu %6llu %9.3f %10llu %9llu %12llu %12llu %10llu\n",
                  r.label.c_str(), static_cast<unsigned long long>(r.contexts),
                  static_cast<unsigned long long>(r.epochs), r.wall_us / 1e3,
                  static_cast<unsigned long long>(c.messages_sent),
                  static_cast<unsigned long long>(c.envelopes_sent),
                  static_cast<unsigned long long>(c.bytes_sent),
                  static_cast<unsigned long long>(c.wire_bytes_sent),
                  static_cast<unsigned long long>(c.cache_hits));
    out += line;
    merge(tot, r.totals);
    tot_epochs += r.epochs;
    tot_wall += r.wall_us;
    tot_ctxs += r.contexts;
  }
  {
    const counters& c = tot.core;
    std::snprintf(line, sizeof line,
                  "%-20s %5llu %6llu %9.3f %10llu %9llu %12llu %12llu %10llu\n", "total",
                  static_cast<unsigned long long>(tot_ctxs),
                  static_cast<unsigned long long>(tot_epochs), tot_wall / 1e3,
                  static_cast<unsigned long long>(c.messages_sent),
                  static_cast<unsigned long long>(c.envelopes_sent),
                  static_cast<unsigned long long>(c.bytes_sent),
                  static_cast<unsigned long long>(c.wire_bytes_sent),
                  static_cast<unsigned long long>(c.cache_hits));
    out += line;
  }
  if (!tenants_.empty()) {
    out += "per-tenant serving counters:\n";
    std::snprintf(line, sizeof line, "  %-8s %8s %9s %7s %7s %8s %5s %10s %10s\n",
                  "tenant", "queries", "cache_hit", "merged", "solves", "repairs",
                  "muts", "lat_avg_us", "lat_max_us");
    out += line;
    for (const auto& [id, t] : tenants_) {
      const double avg =
          t.queries != 0 ? static_cast<double>(t.latency_us_sum) / t.queries : 0.0;
      std::snprintf(line, sizeof line,
                    "  %-8llu %8llu %9llu %7llu %7llu %8llu %5llu %10.1f %10llu\n",
                    static_cast<unsigned long long>(id),
                    static_cast<unsigned long long>(t.queries),
                    static_cast<unsigned long long>(t.cache_hits),
                    static_cast<unsigned long long>(t.merged),
                    static_cast<unsigned long long>(t.solves),
                    static_cast<unsigned long long>(t.repairs),
                    static_cast<unsigned long long>(t.mutations), avg,
                    static_cast<unsigned long long>(t.latency_us_max));
      out += line;
    }
  }
  return out;
}

void rollup::clear() {
  std::lock_guard<std::mutex> g(mu_);
  rows_.clear();
  tenants_.clear();
}

// ---------------------------------------------------------------------------
// trace export helpers
// ---------------------------------------------------------------------------

std::vector<trace_event> registry::type_counter_events() const {
  std::vector<trace_event> out;
  const std::uint64_t ts = tracer_.now_us();
  for (std::size_t i = 0; i < num_types(); ++i) {
    if (type_sent(i) == 0 && type_handled(i) == 0) continue;
    trace_event ev;
    ev.set_name(("msg:" + types_[i].name).c_str());
    ev.cat = "counter";
    ev.ts_us = ts;
    ev.dur_us = 0;
    ev.tid = 0;
    ev.n_args = 4;
    ev.args[0] = {"sent", type_sent(i)};
    ev.args[1] = {"handled", type_handled(i)};
    ev.args[2] = {"bytes", type_bytes(i)};
    ev.args[3] = {"wire_bytes", type_wire_bytes(i)};
    out.push_back(ev);
  }
  return out;
}

}  // namespace dpg::obs
