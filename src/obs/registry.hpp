// The observability registry: the public measurement surface of a
// transport (counters half; the timeline half is obs/trace.hpp).
//
// The paper's evaluation (§IV-A, Figs. 5–6) rests on message accounting —
// "how many messages does the synthesized plan cost over hand-written
// AM++?" — so the runtime keeps its counters where experiments can reach
// them with attribution:
//
//   * core counters      — the cumulative ampp::transport_stats blob, kept
//     as the *internal backing store* (its snapshot-and-subtract idiom is
//     deprecated; use stats_scope);
//   * per-message-type   — payloads sent/handled and bytes per registered
//     message type, including the synthesized gather/evaluate types of
//     every pattern (name.gatherK / name.eval) and the control plane;
//   * per-epoch          — one record per completed epoch: wall time and
//     the counter delta the epoch consumed, rendered on demand as a
//     human-readable summary table;
//   * stats_scope        — RAII region measurement: captures the counter
//     delta between construction and finish()/destruction.
//
// Environment switches (read at transport construction, zero overhead when
// unset):
//   DPG_TRACE=<path>     enable tracing; write a Chrome trace-event JSON to
//                        <path> when the transport is destroyed (subsequent
//                        transports in one process write <path>.1, .2, …).
//   DPG_OBS_SUMMARY=1    print the per-epoch summary table to stderr when
//                        the transport is destroyed.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ampp/stats.hpp"
#include "obs/trace.hpp"

namespace dpg::obs {

/// Plain-value core counters (one row of a snapshot). Alias of the backing
/// store's snapshot type so the field set can never drift.
using counters = ampp::transport_stats::snapshot;

/// Per-message-type plain-value counters.
struct type_counters {
  std::string name;
  bool internal = false;  ///< control-plane type (TD, collectives)
  std::uint64_t sent = 0;     ///< payloads flushed to the wire
  std::uint64_t handled = 0;  ///< payloads dispatched to the handler
  std::uint64_t bytes = 0;    ///< logical payload bytes delivered
  std::uint64_t envelopes = 0;       ///< coalesced envelopes flushed
  std::uint64_t wire_bytes = 0;      ///< envelope bytes on the wire (compact layouts truncate)
  std::uint64_t max_env_bytes = 0;   ///< largest single envelope (gauge, not differenced)
};

/// Full point-in-time snapshot: core counters plus every message type.
struct stats_snapshot {
  counters core{};
  std::vector<type_counters> per_type;

  /// Pairwise difference. `o` must be an earlier snapshot of the same
  /// registry (types registered after `o` keep their full counts).
  stats_snapshot operator-(const stats_snapshot& o) const;
};

/// One completed epoch: wall time and the counter delta it consumed.
struct epoch_record {
  std::uint64_t index = 0;
  std::uint64_t start_us = 0;  ///< tracer timebase (µs since registry birth)
  std::uint64_t dur_us = 0;
  stats_snapshot delta;
};

/// Per-transport observability registry. Owned by ampp::transport and
/// reached through transport::obs(); strategies, patterns, benchmarks, and
/// tests measure through this API rather than raw transport_stats.
class registry {
 public:
  registry();
  ~registry();

  registry(const registry&) = delete;
  registry& operator=(const registry&) = delete;

  // ---- core counters (internal backing store) -----------------------------

  /// The cumulative counter blob the transport increments. Prefer
  /// snapshot() / stats_scope; manual snapshot-and-subtract on this struct
  /// is the deprecated pre-obs idiom.
  ampp::transport_stats& core() noexcept { return core_; }
  const ampp::transport_stats& core() const noexcept { return core_; }

  // ---- message-type registry ----------------------------------------------

  /// Registers one message type; returns its slot (the transport keeps
  /// slots aligned with msg_type_id). Not thread-safe; registration happens
  /// before transport::run, as message types do.
  std::size_t add_type(std::string name);
  void mark_internal(std::size_t id);

  std::size_t num_types() const { return types_.size(); }
  const std::string& type_name(std::size_t id) const { return types_[id].name; }
  bool type_internal(std::size_t id) const { return types_[id].internal; }
  std::uint64_t type_sent(std::size_t id) const {
    return types_[id].sent.load(std::memory_order_relaxed);
  }
  std::uint64_t type_handled(std::size_t id) const {
    return types_[id].handled.load(std::memory_order_relaxed);
  }
  std::uint64_t type_bytes(std::size_t id) const {
    return types_[id].bytes.load(std::memory_order_relaxed);
  }
  std::uint64_t type_envelopes(std::size_t id) const {
    return types_[id].envelopes.load(std::memory_order_relaxed);
  }
  std::uint64_t type_wire_bytes(std::size_t id) const {
    return types_[id].wire_bytes.load(std::memory_order_relaxed);
  }
  std::uint64_t type_max_env_bytes(std::size_t id) const {
    return types_[id].max_env_bytes.load(std::memory_order_relaxed);
  }

  /// Hot-path accounting hooks (relaxed atomic adds).
  void on_sent(std::size_t id, std::uint64_t n, std::uint64_t bytes) {
    types_[id].sent.fetch_add(n, std::memory_order_relaxed);
    types_[id].bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  /// One envelope of this type hit the wire carrying `wire_bytes` bytes.
  /// Maintains the conservation law the sim harness asserts per type:
  /// wire_bytes <= envelopes * max_env_bytes.
  void on_envelope(std::size_t id, std::uint64_t wire_bytes) {
    type_row& t = types_[id];
    t.envelopes.fetch_add(1, std::memory_order_relaxed);
    t.wire_bytes.fetch_add(wire_bytes, std::memory_order_relaxed);
    std::uint64_t cur = t.max_env_bytes.load(std::memory_order_relaxed);
    while (cur < wire_bytes &&
           !t.max_env_bytes.compare_exchange_weak(cur, wire_bytes,
                                                  std::memory_order_relaxed)) {
    }
  }
  void on_handled(std::size_t id, std::uint64_t n) {
    types_[id].handled.fetch_add(n, std::memory_order_relaxed);
  }

  // ---- snapshots ----------------------------------------------------------

  stats_snapshot snapshot() const;

  // ---- per-epoch records --------------------------------------------------

  /// Epoch scoping hooks, called by ampp::epoch on rank 0. Epochs are
  /// collective and serialized per transport, but the registry no longer
  /// *assumes* one writer: overlapping begin/end pairs (two runs sharing a
  /// registry, a misbehaving driver) merge into one record instead of
  /// silently corrupting the open window, and epoch_overlaps() reports how
  /// often that happened.
  void epoch_begin();
  void epoch_end();

  std::vector<epoch_record> epoch_records() const;
  std::size_t epochs_recorded() const;
  /// Epoch windows that opened while another was still open (0 under the
  /// intended one-collective-epoch-at-a-time discipline).
  std::uint64_t epoch_overlaps() const;
  /// Total wall time of all recorded epochs, µs.
  std::uint64_t epoch_wall_us() const;

  /// Renders the per-epoch records and per-type totals as a fixed-width
  /// table (one epoch per row, totals last).
  std::string epoch_summary() const;

  // ---- tracing ------------------------------------------------------------

  tracer& trace() noexcept { return tracer_; }
  const tracer& trace() const noexcept { return tracer_; }

  /// Per-message-type counter events for trace export (zero-duration spans
  /// carrying sent/handled/bytes args).
  std::vector<trace_event> type_counter_events() const;

  /// Writes the Chrome trace (recorded spans + per-type counter events).
  bool export_trace(const std::string& path) const {
    return tracer_.write_chrome_trace_file(path, type_counter_events());
  }

 private:
  struct type_row {
    std::string name;
    bool internal = false;
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> handled{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> envelopes{0};
    std::atomic<std::uint64_t> wire_bytes{0};
    std::atomic<std::uint64_t> max_env_bytes{0};
  };

  ampp::transport_stats core_;
  std::deque<type_row> types_;  // deque: rows hold atomics and cannot move
  tracer tracer_;

  mutable std::mutex epochs_mu_;
  std::vector<epoch_record> epochs_;
  std::uint64_t epoch_depth_ = 0;  ///< open windows (overlaps merge into one record)
  std::uint64_t epoch_overlaps_ = 0;
  std::uint64_t epoch_start_us_ = 0;
  stats_snapshot epoch_at_begin_;

  std::string trace_path_;  ///< from DPG_TRACE; empty = no export
  bool summary_on_destroy_ = false;
};

/// RAII counter-delta capture: the replacement for the deprecated
/// snapshot-and-subtract idiom on transport_stats.
///
///   obs::stats_scope sc(tp.obs());
///   tp.run(...);
///   const obs::stats_snapshot d = sc.finish();   // or let ~stats_scope
///   use(d.core.messages_sent);                   // write through `out`
class stats_scope {
 public:
  /// Starts measuring. If `out` is given, the delta is stored there on
  /// destruction (for scopes that end before the measurement is read).
  explicit stats_scope(const registry& reg, stats_snapshot* out = nullptr)
      : reg_(&reg), begin_(reg.snapshot()), out_(out) {}

  stats_scope(const stats_scope&) = delete;
  stats_scope& operator=(const stats_scope&) = delete;

  /// The delta accumulated so far (does not end the scope).
  stats_snapshot delta() const { return reg_->snapshot() - begin_; }

  /// Ends the scope and returns the captured delta (idempotent).
  const stats_snapshot& finish() {
    if (!end_) end_ = delta();
    return *end_;
  }

  ~stats_scope() {
    if (out_ != nullptr) *out_ = finish();
  }

 private:
  const registry* reg_;
  stats_snapshot begin_;
  std::optional<stats_snapshot> end_;
  stats_snapshot* out_;
};

/// Accumulates `b` into `a`: core counters add field-wise; per-type rows
/// merge by name (sessions register the same pattern types independently,
/// so name — not slot — is the stable identity across registries).
void merge(stats_snapshot& a, const stats_snapshot& b);

/// Cross-registry aggregation for concurrent sessions.
///
/// Under the serving layer every solver session owns its transport and
/// therefore its registry — one writer per context, which is what keeps the
/// hot-path counters cheap. The rollup is the one deliberately concurrent
/// surface: sessions (or the pool retiring them) fold their registry totals
/// in from any thread, the serving front end attributes queries to tenants
/// from any thread, and summary() renders the combined per-context /
/// per-tenant epoch summary. Everything here is mutex-guarded; nothing here
/// is on a message hot path.
class rollup {
 public:
  /// Per-tenant serving counters (surfaced in the combined summary).
  struct tenant_row {
    std::uint64_t queries = 0;     ///< requests admitted
    std::uint64_t cache_hits = 0;  ///< served straight from the result cache
    std::uint64_t merged = 0;      ///< coalesced onto an identical in-flight query
    std::uint64_t solves = 0;      ///< full solver runs executed on behalf
    std::uint64_t repairs = 0;     ///< warm repairs executed on behalf
    std::uint64_t mutations = 0;   ///< apply_edges calls issued
    std::uint64_t latency_us_sum = 0;
    std::uint64_t latency_us_max = 0;
  };

  /// One aggregated context (e.g. every retired + live "sssp" session).
  struct context_row {
    std::string label;
    stats_snapshot totals;
    std::uint64_t epochs = 0;
    std::uint64_t wall_us = 0;
    std::uint64_t contexts = 0;  ///< registries folded into this row
  };

  /// Folds one context's counter totals into the row named `label`
  /// (thread-safe; repeated absorbs accumulate).
  void absorb(const std::string& label, const stats_snapshot& totals,
              std::uint64_t epochs, std::uint64_t wall_us);
  /// Convenience: absorbs a live registry's current cumulative totals.
  void absorb(const std::string& label, const registry& reg);

  /// Tenant attribution hooks (thread-safe).
  void note_query(std::uint64_t tenant, bool cache_hit, bool merged,
                  std::uint64_t latency_us);
  void note_solve(std::uint64_t tenant);
  void note_repair(std::uint64_t tenant);
  void note_mutation(std::uint64_t tenant);

  std::vector<context_row> contexts() const;
  /// The row for one tenant (zeroes if never seen).
  tenant_row tenant(std::uint64_t id) const;
  std::size_t tenants_seen() const;

  /// Sum of every context row's totals.
  stats_snapshot total() const;

  /// The combined epoch summary: one row per context (epochs, wall time,
  /// message economy), one row per tenant (queries, hits, merges, solves,
  /// latency), and a grand-total line.
  std::string summary() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<context_row> rows_;              // small; linear label lookup
  std::map<std::uint64_t, tenant_row> tenants_;
};

}  // namespace dpg::obs
