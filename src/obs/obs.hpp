// Umbrella header for the observability layer (dpg::obs): counter/timer
// registry, per-epoch and per-message-type stats, span tracing, and the
// Chrome trace exporter. See docs/runtime.md ("Observability").
#pragma once

#include "obs/registry.hpp"
#include "obs/trace.hpp"
