// Minimal steady-clock stopwatch used by benchmarks and examples.
#pragma once

#include <chrono>

namespace dpg {

class timer {
 public:
  timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dpg
