// Runtime ISA dispatch: CPUID probing, the DPG_SIMD_LEVEL clamp, and the
// per-tier kernel tables. One translation unit carries every tier via GCC
// target attributes, so no part of the build needs -mavx2/-mavx512f and the
// binary stays runnable on the oldest tier.
#include "util/simd.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "util/log.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define DPG_SIMD_X86 1
#include <immintrin.h>
#else
#define DPG_SIMD_X86 0
#endif

namespace dpg::simd {

const char* name(level l) noexcept {
  switch (l) {
    case level::scalar: return "scalar";
    case level::sse4: return "sse4";
    case level::avx2: return "avx2";
    case level::avx512: return "avx512";
  }
  return "?";
}

bool parse(const char* spec, level& out) noexcept {
  if (spec == nullptr) return false;
  if (std::strcmp(spec, "scalar") == 0 || std::strcmp(spec, "0") == 0) {
    out = level::scalar;
    return true;
  }
  if (std::strcmp(spec, "sse4") == 0 || std::strcmp(spec, "sse") == 0 ||
      std::strcmp(spec, "1") == 0) {
    out = level::sse4;
    return true;
  }
  if (std::strcmp(spec, "avx2") == 0 || std::strcmp(spec, "2") == 0) {
    out = level::avx2;
    return true;
  }
  if (std::strcmp(spec, "avx512") == 0 || std::strcmp(spec, "3") == 0) {
    out = level::avx512;
    return true;
  }
  return false;
}

level detect() noexcept {
#if DPG_SIMD_X86
  static const level lvl = [] {
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512f")) return level::avx512;
    if (__builtin_cpu_supports("avx2")) return level::avx2;
    if (__builtin_cpu_supports("sse4.2")) return level::sse4;
    return level::scalar;
  }();
  return lvl;
#else
  return level::scalar;
#endif
}

namespace {

// -1 = no override; otherwise a level value. Relaxed atomics: tests flip
// this between (not during) runs, and a momentarily stale read would only
// pick a different-but-exact tier.
std::atomic<int> g_override{-1};

level env_level() noexcept {
  static const level lvl = [] {
    level out = detect();
    if (const char* e = std::getenv("DPG_SIMD_LEVEL")) {
      level parsed{};
      if (!parse(e, parsed)) {
        DPG_WARN("DPG_SIMD_LEVEL='%s' not recognized; using %s", e, name(out));
      } else if (parsed > detect()) {
        DPG_WARN("DPG_SIMD_LEVEL=%s exceeds this CPU (%s); clamping",
                 name(parsed), name(detect()));
      } else {
        out = parsed;
      }
    }
    return out;
  }();
  return lvl;
}

}  // namespace

level active() noexcept {
  const int ov = g_override.load(std::memory_order_relaxed);
  if (ov >= 0) {
    const level l = static_cast<level>(ov);
    return l > detect() ? detect() : l;
  }
  return env_level();
}

void override_level(level l) noexcept {
  g_override.store(static_cast<int>(l), std::memory_order_relaxed);
}

void clear_override() noexcept { g_override.store(-1, std::memory_order_relaxed); }

std::vector<level> available_levels() {
  std::vector<level> out;
  for (int l = 0; l <= static_cast<int>(detect()); ++l)
    out.push_back(static_cast<level>(l));
  return out;
}

// ===========================================================================
// Scalar reference kernels
// ===========================================================================

namespace {

void deinterleave2_u64_scalar(const std::byte* recs, std::size_t n,
                              std::uint64_t* lo, std::uint64_t* hi) {
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(&lo[i], recs + i * 16, 8);
    std::memcpy(&hi[i], recs + i * 16 + 8, 8);
  }
}

std::size_t filter_lt_f64_scalar(const std::uint64_t* prop, const std::uint64_t* cur,
                                 std::size_t n, std::uint8_t* mask) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool h = std::bit_cast<double>(prop[i]) < std::bit_cast<double>(cur[i]);
    mask[i] = h ? 1 : 0;
    hits += h;
  }
  return hits;
}

std::size_t filter_gt_f64_scalar(const std::uint64_t* prop, const std::uint64_t* cur,
                                 std::size_t n, std::uint8_t* mask) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool h = std::bit_cast<double>(prop[i]) > std::bit_cast<double>(cur[i]);
    mask[i] = h ? 1 : 0;
    hits += h;
  }
  return hits;
}

std::size_t filter_lt_u64_scalar(const std::uint64_t* prop, const std::uint64_t* cur,
                                 std::size_t n, std::uint8_t* mask) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool h = prop[i] < cur[i];
    mask[i] = h ? 1 : 0;
    hits += h;
  }
  return hits;
}

std::size_t filter_gt_u64_scalar(const std::uint64_t* prop, const std::uint64_t* cur,
                                 std::size_t n, std::uint8_t* mask) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool h = prop[i] > cur[i];
    mask[i] = h ? 1 : 0;
    hits += h;
  }
  return hits;
}

constexpr kernel_table kScalarTable{
    deinterleave2_u64_scalar, filter_lt_f64_scalar, filter_gt_f64_scalar,
    filter_lt_u64_scalar,     filter_gt_u64_scalar,
};

#if DPG_SIMD_X86

// ===========================================================================
// SSE4.2 kernels (128-bit: 2 records per step)
// ===========================================================================

__attribute__((target("sse4.2"))) void deinterleave2_u64_sse4(
    const std::byte* recs, std::size_t n, std::uint64_t* lo, std::uint64_t* hi) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(recs + i * 16));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(recs + (i + 1) * 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(lo + i), _mm_unpacklo_epi64(a, b));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(hi + i), _mm_unpackhi_epi64(a, b));
  }
  for (; i < n; ++i) {
    std::memcpy(&lo[i], recs + i * 16, 8);
    std::memcpy(&hi[i], recs + i * 16 + 8, 8);
  }
}

/// Expands a 2-bit movemask into byte flags; returns its popcount.
__attribute__((target("sse4.2"))) inline std::size_t emit_mask2(int m,
                                                                std::uint8_t* mask) {
  mask[0] = static_cast<std::uint8_t>(m & 1);
  mask[1] = static_cast<std::uint8_t>((m >> 1) & 1);
  return static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(m)));
}

__attribute__((target("sse4.2"))) std::size_t filter_lt_f64_sse4(
    const std::uint64_t* prop, const std::uint64_t* cur, std::size_t n,
    std::uint8_t* mask) {
  std::size_t i = 0, hits = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d p =
        _mm_castsi128_pd(_mm_loadu_si128(reinterpret_cast<const __m128i*>(prop + i)));
    const __m128d c =
        _mm_castsi128_pd(_mm_loadu_si128(reinterpret_cast<const __m128i*>(cur + i)));
    hits += emit_mask2(_mm_movemask_pd(_mm_cmplt_pd(p, c)), mask + i);
  }
  for (; i < n; ++i) {
    const bool h = std::bit_cast<double>(prop[i]) < std::bit_cast<double>(cur[i]);
    mask[i] = h ? 1 : 0;
    hits += h;
  }
  return hits;
}

__attribute__((target("sse4.2"))) std::size_t filter_gt_f64_sse4(
    const std::uint64_t* prop, const std::uint64_t* cur, std::size_t n,
    std::uint8_t* mask) {
  std::size_t i = 0, hits = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d p =
        _mm_castsi128_pd(_mm_loadu_si128(reinterpret_cast<const __m128i*>(prop + i)));
    const __m128d c =
        _mm_castsi128_pd(_mm_loadu_si128(reinterpret_cast<const __m128i*>(cur + i)));
    hits += emit_mask2(_mm_movemask_pd(_mm_cmpgt_pd(p, c)), mask + i);
  }
  for (; i < n; ++i) {
    const bool h = std::bit_cast<double>(prop[i]) > std::bit_cast<double>(cur[i]);
    mask[i] = h ? 1 : 0;
    hits += h;
  }
  return hits;
}

__attribute__((target("sse4.2"))) std::size_t filter_lt_u64_sse4(
    const std::uint64_t* prop, const std::uint64_t* cur, std::size_t n,
    std::uint8_t* mask) {
  // No unsigned 64-bit vector compare below AVX-512: bias both sides by
  // 2^63 so the signed compare orders them as unsigned.
  const __m128i bias = _mm_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  std::size_t i = 0, hits = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i p = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(prop + i)), bias);
    const __m128i c = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cur + i)), bias);
    hits += emit_mask2(_mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(c, p))),
                       mask + i);
  }
  for (; i < n; ++i) {
    const bool h = prop[i] < cur[i];
    mask[i] = h ? 1 : 0;
    hits += h;
  }
  return hits;
}

__attribute__((target("sse4.2"))) std::size_t filter_gt_u64_sse4(
    const std::uint64_t* prop, const std::uint64_t* cur, std::size_t n,
    std::uint8_t* mask) {
  const __m128i bias = _mm_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  std::size_t i = 0, hits = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i p = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(prop + i)), bias);
    const __m128i c = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cur + i)), bias);
    hits += emit_mask2(_mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(p, c))),
                       mask + i);
  }
  for (; i < n; ++i) {
    const bool h = prop[i] > cur[i];
    mask[i] = h ? 1 : 0;
    hits += h;
  }
  return hits;
}

constexpr kernel_table kSse4Table{
    deinterleave2_u64_sse4, filter_lt_f64_sse4, filter_gt_f64_sse4,
    filter_lt_u64_sse4,     filter_gt_u64_sse4,
};

// ===========================================================================
// AVX2 kernels (256-bit: 4 records per step)
// ===========================================================================

__attribute__((target("avx2"))) void deinterleave2_u64_avx2(const std::byte* recs,
                                                            std::size_t n,
                                                            std::uint64_t* lo,
                                                            std::uint64_t* hi) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(recs + i * 16));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(recs + (i + 2) * 16));
    // unpack{lo,hi} works per 128-bit half: [x0 x2 x1 x3] — permute fixes it.
    const __m256i l = _mm256_permute4x64_epi64(_mm256_unpacklo_epi64(a, b),
                                               _MM_SHUFFLE(3, 1, 2, 0));
    const __m256i h = _mm256_permute4x64_epi64(_mm256_unpackhi_epi64(a, b),
                                               _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo + i), l);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hi + i), h);
  }
  for (; i < n; ++i) {
    std::memcpy(&lo[i], recs + i * 16, 8);
    std::memcpy(&hi[i], recs + i * 16 + 8, 8);
  }
}

/// Expands a 4-bit movemask into byte flags; returns its popcount.
__attribute__((target("avx2"))) inline std::size_t emit_mask4(int m,
                                                              std::uint8_t* mask) {
  mask[0] = static_cast<std::uint8_t>(m & 1);
  mask[1] = static_cast<std::uint8_t>((m >> 1) & 1);
  mask[2] = static_cast<std::uint8_t>((m >> 2) & 1);
  mask[3] = static_cast<std::uint8_t>((m >> 3) & 1);
  return static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(m)));
}

__attribute__((target("avx2"))) std::size_t filter_lt_f64_avx2(
    const std::uint64_t* prop, const std::uint64_t* cur, std::size_t n,
    std::uint8_t* mask) {
  std::size_t i = 0, hits = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d p = _mm256_castsi256_pd(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prop + i)));
    const __m256d c = _mm256_castsi256_pd(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cur + i)));
    hits += emit_mask4(_mm256_movemask_pd(_mm256_cmp_pd(p, c, _CMP_LT_OQ)), mask + i);
  }
  for (; i < n; ++i) {
    const bool h = std::bit_cast<double>(prop[i]) < std::bit_cast<double>(cur[i]);
    mask[i] = h ? 1 : 0;
    hits += h;
  }
  return hits;
}

__attribute__((target("avx2"))) std::size_t filter_gt_f64_avx2(
    const std::uint64_t* prop, const std::uint64_t* cur, std::size_t n,
    std::uint8_t* mask) {
  std::size_t i = 0, hits = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d p = _mm256_castsi256_pd(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prop + i)));
    const __m256d c = _mm256_castsi256_pd(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cur + i)));
    hits += emit_mask4(_mm256_movemask_pd(_mm256_cmp_pd(p, c, _CMP_GT_OQ)), mask + i);
  }
  for (; i < n; ++i) {
    const bool h = std::bit_cast<double>(prop[i]) > std::bit_cast<double>(cur[i]);
    mask[i] = h ? 1 : 0;
    hits += h;
  }
  return hits;
}

__attribute__((target("avx2"))) std::size_t filter_lt_u64_avx2(
    const std::uint64_t* prop, const std::uint64_t* cur, std::size_t n,
    std::uint8_t* mask) {
  const __m256i bias =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  std::size_t i = 0, hits = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i p = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prop + i)), bias);
    const __m256i c = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cur + i)), bias);
    hits += emit_mask4(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(c, p))), mask + i);
  }
  for (; i < n; ++i) {
    const bool h = prop[i] < cur[i];
    mask[i] = h ? 1 : 0;
    hits += h;
  }
  return hits;
}

__attribute__((target("avx2"))) std::size_t filter_gt_u64_avx2(
    const std::uint64_t* prop, const std::uint64_t* cur, std::size_t n,
    std::uint8_t* mask) {
  const __m256i bias =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  std::size_t i = 0, hits = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i p = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prop + i)), bias);
    const __m256i c = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cur + i)), bias);
    hits += emit_mask4(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(p, c))), mask + i);
  }
  for (; i < n; ++i) {
    const bool h = prop[i] > cur[i];
    mask[i] = h ? 1 : 0;
    hits += h;
  }
  return hits;
}

constexpr kernel_table kAvx2Table{
    deinterleave2_u64_avx2, filter_lt_f64_avx2, filter_gt_f64_avx2,
    filter_lt_u64_avx2,     filter_gt_u64_avx2,
};

// ===========================================================================
// AVX-512 kernels (512-bit: 8 records per step; avx512f only)
// ===========================================================================

__attribute__((target("avx512f"))) void deinterleave2_u64_avx512(
    const std::byte* recs, std::size_t n, std::uint64_t* lo, std::uint64_t* hi) {
  const __m512i idx_lo = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
  const __m512i idx_hi = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i a = _mm512_loadu_si512(recs + i * 16);
    const __m512i b = _mm512_loadu_si512(recs + (i + 4) * 16);
    _mm512_storeu_si512(lo + i, _mm512_permutex2var_epi64(a, idx_lo, b));
    _mm512_storeu_si512(hi + i, _mm512_permutex2var_epi64(a, idx_hi, b));
  }
  for (; i < n; ++i) {
    std::memcpy(&lo[i], recs + i * 16, 8);
    std::memcpy(&hi[i], recs + i * 16 + 8, 8);
  }
}

/// Expands an 8-lane compare mask into byte flags; returns its popcount.
__attribute__((target("avx512f"))) inline std::size_t emit_mask8(__mmask8 m,
                                                                 std::uint8_t* mask) {
  for (int j = 0; j < 8; ++j) mask[j] = static_cast<std::uint8_t>((m >> j) & 1);
  return static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(m)));
}

__attribute__((target("avx512f"))) std::size_t filter_lt_f64_avx512(
    const std::uint64_t* prop, const std::uint64_t* cur, std::size_t n,
    std::uint8_t* mask) {
  std::size_t i = 0, hits = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d p = _mm512_castsi512_pd(_mm512_loadu_si512(prop + i));
    const __m512d c = _mm512_castsi512_pd(_mm512_loadu_si512(cur + i));
    hits += emit_mask8(_mm512_cmp_pd_mask(p, c, _CMP_LT_OQ), mask + i);
  }
  for (; i < n; ++i) {
    const bool h = std::bit_cast<double>(prop[i]) < std::bit_cast<double>(cur[i]);
    mask[i] = h ? 1 : 0;
    hits += h;
  }
  return hits;
}

__attribute__((target("avx512f"))) std::size_t filter_gt_f64_avx512(
    const std::uint64_t* prop, const std::uint64_t* cur, std::size_t n,
    std::uint8_t* mask) {
  std::size_t i = 0, hits = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d p = _mm512_castsi512_pd(_mm512_loadu_si512(prop + i));
    const __m512d c = _mm512_castsi512_pd(_mm512_loadu_si512(cur + i));
    hits += emit_mask8(_mm512_cmp_pd_mask(p, c, _CMP_GT_OQ), mask + i);
  }
  for (; i < n; ++i) {
    const bool h = std::bit_cast<double>(prop[i]) > std::bit_cast<double>(cur[i]);
    mask[i] = h ? 1 : 0;
    hits += h;
  }
  return hits;
}

__attribute__((target("avx512f"))) std::size_t filter_lt_u64_avx512(
    const std::uint64_t* prop, const std::uint64_t* cur, std::size_t n,
    std::uint8_t* mask) {
  std::size_t i = 0, hits = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i p = _mm512_loadu_si512(prop + i);
    const __m512i c = _mm512_loadu_si512(cur + i);
    hits += emit_mask8(_mm512_cmplt_epu64_mask(p, c), mask + i);
  }
  for (; i < n; ++i) {
    const bool h = prop[i] < cur[i];
    mask[i] = h ? 1 : 0;
    hits += h;
  }
  return hits;
}

__attribute__((target("avx512f"))) std::size_t filter_gt_u64_avx512(
    const std::uint64_t* prop, const std::uint64_t* cur, std::size_t n,
    std::uint8_t* mask) {
  std::size_t i = 0, hits = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i p = _mm512_loadu_si512(prop + i);
    const __m512i c = _mm512_loadu_si512(cur + i);
    hits += emit_mask8(_mm512_cmpgt_epu64_mask(p, c), mask + i);
  }
  for (; i < n; ++i) {
    const bool h = prop[i] > cur[i];
    mask[i] = h ? 1 : 0;
    hits += h;
  }
  return hits;
}

constexpr kernel_table kAvx512Table{
    deinterleave2_u64_avx512, filter_lt_f64_avx512, filter_gt_f64_avx512,
    filter_lt_u64_avx512,     filter_gt_u64_avx512,
};

#endif  // DPG_SIMD_X86

}  // namespace

const kernel_table& kernels(level l) noexcept {
  if (l > detect()) l = detect();
#if DPG_SIMD_X86
  switch (l) {
    case level::scalar: return kScalarTable;
    case level::sse4: return kSse4Table;
    case level::avx2: return kAvx2Table;
    case level::avx512: return kAvx512Table;
  }
#endif
  return kScalarTable;
}

}  // namespace dpg::simd
