// Tiny leveled logger. Off by default; enabled via dpg::set_log_level or the
// DPG_LOG environment variable (trace|debug|info|warn|error). Kept
// deliberately simple — the runtime's own statistics are exposed through
// typed counters (see ampp::transport::stats), not log scraping.
#pragma once

#include <cstdio>
#include <string>

namespace dpg {

enum class log_level : int { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

log_level get_log_level() noexcept;
void set_log_level(log_level lvl) noexcept;

namespace detail {
void vlog(log_level lvl, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
}  // namespace detail

}  // namespace dpg

#define DPG_LOG(lvl, ...)                                            \
  do {                                                               \
    if (static_cast<int>(lvl) >= static_cast<int>(::dpg::get_log_level())) \
      ::dpg::detail::vlog(lvl, __VA_ARGS__);                         \
  } while (0)

#define DPG_TRACE(...) DPG_LOG(::dpg::log_level::trace, __VA_ARGS__)
#define DPG_DEBUG(...) DPG_LOG(::dpg::log_level::debug, __VA_ARGS__)
#define DPG_INFO(...) DPG_LOG(::dpg::log_level::info, __VA_ARGS__)
#define DPG_WARN(...) DPG_LOG(::dpg::log_level::warn, __VA_ARGS__)
#define DPG_ERROR(...) DPG_LOG(::dpg::log_level::error, __VA_ARGS__)
