// Deterministic, seed-controlled random number generation.
//
// All stochastic components of the library (graph generators, workload
// drivers, tests) draw from these generators so that every run is exactly
// reproducible from a single 64-bit seed. std::mt19937 is deliberately
// avoided: its state is large and its streams are awkward to split across
// simulated ranks. splitmix64 is used to derive independent streams,
// xoshiro256** for bulk generation (both public-domain algorithms by
// Blackman & Vigna).
#pragma once

#include <cstdint>
#include <limits>

namespace dpg {

/// splitmix64: tiny, high-quality 64-bit generator; primarily used to seed
/// and to split one seed into many independent streams.
class splitmix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr splitmix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast all-purpose 64-bit generator. Satisfies
/// UniformRandomBitGenerator so it composes with <random> distributions.
class xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from a splitmix64 stream, per the authors'
  /// recommendation (avoids the all-zero state).
  explicit constexpr xoshiro256ss(std::uint64_t seed) noexcept : s_{} {
    splitmix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  /// Uniform in [0, bound). Uses Lemire's multiply-shift rejection-free
  /// approximation (bias negligible for bound << 2^64, and determinism is
  /// what we actually require).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Derives the seed for an independent substream, e.g. one per simulated
/// rank or per generator task. Mixing through splitmix64 keeps substreams
/// decorrelated even for adjacent indices.
constexpr std::uint64_t substream_seed(std::uint64_t root_seed, std::uint64_t index) noexcept {
  splitmix64 sm(root_seed ^ (0x517cc1b727220a95ULL * (index + 1)));
  return sm.next();
}

}  // namespace dpg
