#include "util/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace dpg {

namespace {

log_level level_from_env() {
  const char* env = std::getenv("DPG_LOG");
  if (!env) return log_level::off;
  if (std::strcmp(env, "trace") == 0) return log_level::trace;
  if (std::strcmp(env, "debug") == 0) return log_level::debug;
  if (std::strcmp(env, "info") == 0) return log_level::info;
  if (std::strcmp(env, "warn") == 0) return log_level::warn;
  if (std::strcmp(env, "error") == 0) return log_level::error;
  return log_level::off;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_name(log_level lvl) {
  switch (lvl) {
    case log_level::trace: return "TRACE";
    case log_level::debug: return "DEBUG";
    case log_level::info: return "INFO";
    case log_level::warn: return "WARN";
    case log_level::error: return "ERROR";
    default: return "?";
  }
}

}  // namespace

log_level get_log_level() noexcept {
  return static_cast<log_level>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(log_level lvl) noexcept {
  level_storage().store(static_cast<int>(lvl), std::memory_order_relaxed);
}

namespace detail {

void vlog(log_level lvl, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::fprintf(stderr, "[dpg %s] ", level_name(lvl));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
}

}  // namespace detail

}  // namespace dpg
