// Assertion macros used throughout the library.
//
// DPG_ASSERT is active in all build types: the invariants it guards (e.g.
// "property maps are only dereferenced on the owning rank") are the
// correctness contract of the simulated distributed runtime, and violating
// them silently would defeat the purpose of the simulation. DPG_DEBUG_ASSERT
// compiles away in release builds and is reserved for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dpg {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "dpg assertion failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace dpg

#define DPG_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr)) ::dpg::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define DPG_ASSERT_MSG(expr, msg)                                   \
  do {                                                              \
    if (!(expr)) ::dpg::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifndef NDEBUG
#define DPG_DEBUG_ASSERT(expr) DPG_ASSERT(expr)
#else
#define DPG_DEBUG_ASSERT(expr) ((void)0)
#endif
