// Small spinlock for fine-grained, short critical sections (per-vertex
// locks in the lock map). std::mutex is 40 bytes on glibc; a one-byte
// test-and-test-and-set spinlock lets us afford a lock per vertex or per
// block of vertices, which is exactly the trade-off §IV-B of the paper
// discusses.
#pragma once

#include <atomic>

namespace dpg {

class spinlock {
 public:
  spinlock() = default;
  spinlock(const spinlock&) = delete;
  spinlock& operator=(const spinlock&) = delete;

  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Test loop: spin on a plain load to avoid cache-line ping-pong.
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() noexcept { return !flag_.exchange(true, std::memory_order_acquire); }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace dpg
