// Runtime ISA dispatch for the envelope-batch kernels (pattern fast path).
//
// One binary carries scalar, SSE4.2, AVX2, and AVX-512 variants of a small
// kernel table; the tier is picked once at startup from CPUID, clamped by
// the DPG_SIMD_LEVEL environment variable (a name or a digit 0-3), and can
// be forced per test via override_level(). Every kernel is *exact*: the
// vector variants perform no floating-point arithmetic, only IEEE ordered
// comparisons and integer shuffles, so each tier is bit-identical to the
// scalar reference by construction — the differential test matrix in
// tests/pattern/batch_kernel_test.cpp holds them to that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dpg::simd {

/// Vector tiers, in strictly increasing capability order. A tier implies
/// every lower tier (avx512 hosts run avx2/sse4 kernels fine).
enum class level : int { scalar = 0, sse4 = 1, avx2 = 2, avx512 = 3 };

/// Human-readable tier name ("scalar", "sse4", "avx2", "avx512").
const char* name(level l) noexcept;

/// Highest tier this CPU supports (CPUID probe, cached after first call).
level detect() noexcept;

/// The tier batch kernels run at: detect(), clamped down by the
/// DPG_SIMD_LEVEL environment variable (read once), and superseded by an
/// override_level() in effect. Never exceeds detect().
level active() noexcept;

/// Parses a tier spec ("scalar"|"sse4"|"avx2"|"avx512" or "0".."3") into
/// `out`. Returns false (out untouched) when the spec is unrecognized.
bool parse(const char* spec, level& out) noexcept;

/// Test hook: force active() to min(l, detect()) until clear_override().
void override_level(level l) noexcept;
void clear_override() noexcept;

/// Every tier this host can execute, lowest first: {scalar, ..., detect()}.
/// This is the axis the forced-ISA differential sweeps iterate.
std::vector<level> available_levels();

/// The batch-kernel vtable one tier provides. All functions accept any n
/// (vector body + scalar tail handled inside), require no alignment, and
/// tolerate n == 0.
struct kernel_table {
  /// Deinterleave n 16-byte {lo, hi} u64 pairs (array-of-structs `recs`)
  /// into two struct-of-arrays outputs.
  void (*deinterleave2_u64)(const std::byte* recs, std::size_t n,
                            std::uint64_t* lo, std::uint64_t* hi);
  /// mask[i] = compare(prop[i], cur[i]) ? 1 : 0; returns the hit count.
  /// _f64 variants compare the bit patterns as IEEE doubles with *ordered*
  /// comparisons (a NaN on either side never passes — identical to the
  /// scalar `<`/`>`); _u64 variants compare as unsigned integers.
  std::size_t (*filter_lt_f64)(const std::uint64_t* prop, const std::uint64_t* cur,
                               std::size_t n, std::uint8_t* mask);
  std::size_t (*filter_gt_f64)(const std::uint64_t* prop, const std::uint64_t* cur,
                               std::size_t n, std::uint8_t* mask);
  std::size_t (*filter_lt_u64)(const std::uint64_t* prop, const std::uint64_t* cur,
                               std::size_t n, std::uint8_t* mask);
  std::size_t (*filter_gt_u64)(const std::uint64_t* prop, const std::uint64_t* cur,
                               std::size_t n, std::uint8_t* mask);
};

/// The kernel table for a tier, clamped to detect() so a forced level on a
/// lesser host degrades instead of faulting. Entries are never null.
const kernel_table& kernels(level l) noexcept;

}  // namespace dpg::simd
