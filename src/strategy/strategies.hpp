// The basic strategies shipped with the framework (§II-A): fixed_point and
// once. Strategies are ordinary imperative SPMD programs that apply pattern
// actions through the framework's primitives — epochs, work hooks, and
// collectives. Users write their own the same way (Δ-stepping lives in
// delta_stepping.hpp).
//
// Every strategy entry point takes a `strategy::options` and returns a
// `strategy::result` {rounds, modifications, stats_delta} so callers can
// treat strategies uniformly and measure them without touching raw
// transport counters.
#pragma once

#include <optional>
#include <span>

#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"
#include "graph/distributed_graph.hpp"
#include "obs/obs.hpp"
#include "pattern/action.hpp"

namespace dpg::strategy {

using graph::vertex_id;

/// Common knobs accepted by every strategy entry point.
struct options {
  /// Round cap for iterating strategies (once_until_quiet); single-epoch
  /// strategies ignore it.
  int max_rounds = 1 << 20;
  /// Capture the transport-counter delta the strategy consumed into
  /// result::stats_delta. Cheap (two registry snapshots); disable only in
  /// tight strategy-composition loops.
  bool collect_stats = true;
};

/// Common return value of every strategy entry point. Counters are global
/// (summed across ranks): after the collective returns, every rank holds
/// the same values.
struct result {
  std::uint64_t rounds = 0;         ///< epochs/rounds the strategy drove
  std::uint64_t modifications = 0;  ///< successful condition firings it caused
  obs::stats_snapshot stats_delta;  ///< transport counters consumed (if collected)

  /// Did any property-map modification happen anywhere in the system?
  bool changed() const { return modifications != 0; }

  /// Wire faults this run absorbed (always 0 without a `fault_plan` on the
  /// transport): dropped envelopes recovered by retry, duplicates
  /// suppressed by the dedup window, and delayed releases. Lets chaos
  /// tests assert that the sweep actually exercised the fault layer.
  std::uint64_t faults_survived() const {
    const obs::counters& c = stats_delta.core;
    return c.envelopes_dropped + c.envelopes_duplicated + c.envelopes_delayed;
  }
};

/// Collectively installs a work hook on a shared action instance: assigned
/// on one rank, published to all by the barrier. (All strategies call this
/// at entry so a single action can serve several strategies in sequence.)
inline void install_hook_collective(ampp::transport_context& ctx,
                                    pattern::action_instance& a,
                                    pattern::action_instance::work_hook hook) {
  // In-process every rank shares one action instance, so one assignment
  // suffices; cross-process each rank process owns its own instance and
  // must install locally (rank identity no longer implies instance
  // identity). The barrier publishes either way.
  if (ctx.rank() == 0 || ctx.tp().cross_process()) a.work(std::move(hook));
  ctx.barrier();
}

/// Applies `fn` to every vertex the calling rank owns.
template <class F>
void for_each_local_vertex(ampp::transport_context& ctx,
                           const graph::distributed_graph& g, F fn) {
  const auto& d = g.dist();
  const std::uint64_t cnt = d.count(ctx.rank());
  for (std::uint64_t li = 0; li < cnt; ++li) fn(d.global(ctx.rank(), li));
}

/// The fixed_point strategy, verbatim from §II-A:
///
///   strategy fixed_point(action a, container vertices) {
///     a.work(Vertex v) = { a(v) };
///     epoch { for (v in vertices) a(v); }
///   }
///
/// `seeds` holds the seed vertices owned by the calling rank (SPMD callers
/// pass their local portion). Collective; returns when the fixed point is
/// reached everywhere.
inline result fixed_point(ampp::transport_context& ctx, pattern::action_instance& a,
                          std::span<const vertex_id> seeds, const options& opt = {}) {
  install_hook_collective(
      ctx, a, [&a](ampp::transport_context& c, vertex_id dep) { a(c, dep); });
  obs::registry& reg = ctx.tp().obs();
  std::optional<obs::stats_scope> sc;
  if (opt.collect_stats) sc.emplace(reg);
  const std::uint64_t before = a.modifications();
  {
    obs::trace_span sp(&reg.trace(), "strategy", "fixed_point", ctx.rank());
    ampp::epoch ep(ctx);
    for (const vertex_id v : seeds) a(ctx, v);
  }
  result res;
  res.rounds = 1;
  // In-process the shared instance's counter is already the global count;
  // cross-process each process saw only its local firings, so the global
  // count is the sum over rank processes.
  res.modifications = a.modifications() - before;
  if (ctx.tp().cross_process()) res.modifications = ctx.allreduce_sum(res.modifications);
  if (sc) res.stats_delta = sc->finish();
  return res;
}

/// The once strategy (§II-B): applies the action at every seed exactly once
/// (dependencies are ignored); result::changed() reports whether any
/// property-map modification happened anywhere in the system. Collective.
inline result once(ampp::transport_context& ctx, pattern::action_instance& a,
                   std::span<const vertex_id> seeds, const options& opt = {}) {
  install_hook_collective(ctx, a, {});
  ctx.barrier();  // all ranks snapshot the counter before anyone applies
  obs::registry& reg = ctx.tp().obs();
  std::optional<obs::stats_scope> sc;
  if (opt.collect_stats) sc.emplace(reg);
  const std::uint64_t before = a.modifications();
  {
    obs::trace_span sp(&reg.trace(), "strategy", "once", ctx.rank());
    ampp::epoch ep(ctx);
    for (const vertex_id v : seeds) a(ctx, v);
  }
  result res;
  res.rounds = 1;
  // Same global-count rule as fixed_point — and load-bearing here: the
  // once_until_quiet loop keys its termination on changed(), so all rank
  // processes must agree on it or the synchronous rounds deadlock.
  res.modifications = a.modifications() - before;
  if (ctx.tp().cross_process()) res.modifications = ctx.allreduce_sum(res.modifications);
  if (sc) res.stats_delta = sc->finish();
  return res;
}

/// Repeats `once` until no modification happens or opt.max_rounds is
/// reached (a synchronous-round fixed point; used for the CC pointer-jump
/// loop of Fig. 3, lines 14-17). result::rounds counts the rounds that
/// performed work.
inline result once_until_quiet(ampp::transport_context& ctx, pattern::action_instance& a,
                               std::span<const vertex_id> seeds,
                               const options& opt = {}) {
  obs::registry& reg = ctx.tp().obs();
  std::optional<obs::stats_scope> sc;
  if (opt.collect_stats) sc.emplace(reg);
  obs::trace_span sp(&reg.trace(), "strategy", "once_until_quiet", ctx.rank());
  options inner = opt;
  inner.collect_stats = false;  // one delta for the whole loop, not per round
  result res;
  while (static_cast<int>(res.rounds) < opt.max_rounds) {
    const result r = once(ctx, a, seeds, inner);
    if (!r.changed()) break;
    ++res.rounds;
    res.modifications += r.modifications;
  }
  sp.arg("rounds", res.rounds);
  sp.finish();
  if (sc) res.stats_delta = sc->finish();
  return res;
}

}  // namespace dpg::strategy
