// The basic strategies shipped with the framework (§II-A): fixed_point and
// once. Strategies are ordinary imperative SPMD programs that apply pattern
// actions through the framework's primitives — epochs, work hooks, and
// collectives. Users write their own the same way (Δ-stepping lives in
// delta_stepping.hpp).
#pragma once

#include <span>

#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"
#include "graph/distributed_graph.hpp"
#include "pattern/action.hpp"

namespace dpg::strategy {

using graph::vertex_id;

/// Collectively installs a work hook on a shared action instance: assigned
/// on one rank, published to all by the barrier. (All strategies call this
/// at entry so a single action can serve several strategies in sequence.)
inline void install_hook_collective(ampp::transport_context& ctx,
                                    pattern::action_instance& a,
                                    pattern::action_instance::work_hook hook) {
  if (ctx.rank() == 0) a.work(std::move(hook));
  ctx.barrier();
}

/// Applies `fn` to every vertex the calling rank owns.
template <class F>
void for_each_local_vertex(ampp::transport_context& ctx,
                           const graph::distributed_graph& g, F fn) {
  const auto& d = g.dist();
  const std::uint64_t cnt = d.count(ctx.rank());
  for (std::uint64_t li = 0; li < cnt; ++li) fn(d.global(ctx.rank(), li));
}

/// The fixed_point strategy, verbatim from §II-A:
///
///   strategy fixed_point(action a, container vertices) {
///     a.work(Vertex v) = { a(v) };
///     epoch { for (v in vertices) a(v); }
///   }
///
/// `seeds` holds the seed vertices owned by the calling rank (SPMD callers
/// pass their local portion). Collective; returns when the fixed point is
/// reached everywhere.
inline void fixed_point(ampp::transport_context& ctx, pattern::action_instance& a,
                        std::span<const vertex_id> seeds) {
  install_hook_collective(
      ctx, a, [&a](ampp::transport_context& c, vertex_id dep) { a(c, dep); });
  ampp::epoch ep(ctx);
  for (const vertex_id v : seeds) a(ctx, v);
}

/// The once strategy (§II-B): applies the action at every seed exactly once
/// (dependencies are ignored) and reports whether any property-map
/// modification happened anywhere in the system. Collective.
inline bool once(ampp::transport_context& ctx, pattern::action_instance& a,
                 std::span<const vertex_id> seeds) {
  install_hook_collective(ctx, a, {});
  ctx.barrier();  // all ranks snapshot the counter before anyone applies
  const std::uint64_t before = a.modifications();
  {
    ampp::epoch ep(ctx);
    for (const vertex_id v : seeds) a(ctx, v);
  }
  return a.modifications() != before;
}

/// Repeats `once` until no modification happens (a synchronous-round
/// fixed point; used for the CC pointer-jump loop of Fig. 3, lines 14-17).
/// Returns the number of rounds that performed work.
inline int once_until_quiet(ampp::transport_context& ctx, pattern::action_instance& a,
                            std::span<const vertex_id> seeds, int max_rounds = 1 << 20) {
  int rounds = 0;
  while (rounds < max_rounds && once(ctx, a, seeds)) ++rounds;
  return rounds;
}

}  // namespace dpg::strategy
