// The Δ-stepping strategy of §II-A, in both the coordinated form the paper
// lists and the uncoordinated try_finish form of §III-D.
//
// Coordinated (one epoch per bucket):
//
//   strategy delta(action a, container vertices, property-map m, delta Δ) {
//     buckets B;  for (v in vertices) B.insert(v, m[v], Δ);
//     a.work(Vertex v) = { B.insert(v, m[v], Δ); }
//     while (!B.empty()) { while (!B[i].empty()) { v = B[i].pop(); a(v); } i++; }
//   }
//
// Every rank keeps its own bucket structure for the vertices it owns; the
// work hook runs on the owner of the dependent vertex and files it locally.
// The per-bucket inner loop runs inside an epoch because in-flight actions
// may refill the bucket after it tests empty (the paper's remark); we drain
// and try_finish until the epoch truly ends, then reconcile globally.
//
// Uncoordinated (§III-D): a single epoch; each rank drains its local
// buckets in priority order and calls try_finish when out of work — "if
// ending the epoch is unsuccessful, the thread goes back to its local
// bucket structure" (its buckets can refill while it tries to end).
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "strategy/buckets.hpp"
#include "strategy/strategies.hpp"

namespace dpg::strategy {

template <class T>
class delta_stepping {
 public:
  /// `m` is the priority property map (the tentative distances); Δ the
  /// bucket width. Construct before transport::run; call run()/
  /// run_uncoordinated() collectively inside.
  delta_stepping(ampp::transport& tp, const graph::distributed_graph& g,
                 pattern::action_instance& a, pmap::vertex_property_map<T>& m,
                 double delta)
      : g_(&g), a_(&a), m_(&m), delta_(delta) {
    for (ampp::rank_t r = 0; r < tp.size(); ++r) buckets_.emplace_back(delta);
    // The work hook of §II-A line 4: file the dependent vertex into the
    // owner rank's buckets under its (updated) priority. Built here, once,
    // so concurrent SPMD ranks never race on assignment.
    hook_ = [this](ampp::transport_context& c, vertex_id dep) {
      buckets_[c.rank()].insert(dep, priority(dep));
    };
  }

  /// Coordinated Δ-stepping: one epoch per bucket level. Collective.
  /// result::rounds counts the epochs driven (a proxy for global
  /// synchronization cost — the Δ sweep benchmark reports it).
  result run(ampp::transport_context& ctx, std::span<const vertex_id> seeds,
             const options& opt = {}) {
    buckets& B = my_buckets(ctx);
    B.clear();
    install_hook_collective(ctx, *a_, hook_);
    for (const vertex_id v : seeds) B.insert(v, priority(v));

    obs::registry& reg = ctx.tp().obs();
    std::optional<obs::stats_scope> sc;
    if (opt.collect_stats) sc.emplace(reg);
    const std::uint64_t before = a_->modifications();
    obs::trace_span sp(&reg.trace(), "strategy", "delta", ctx.rank());

    std::uint64_t epochs = 0;
    for (;;) {
      // Agree on the lowest globally non-empty bucket.
      const std::uint64_t mine = B.first_nonempty();
      const std::uint64_t level = ctx.allreduce_min(mine);
      if (level == buckets::none) break;
      obs::trace_span lsp(&reg.trace(), "strategy", "bucket", ctx.rank());
      lsp.arg("level", level);

      // Drain this level to a global fixed point. try_finish may succeed
      // while a conflicting hook insertion has just refilled the bucket
      // (bucket contents are invisible to termination detection), so
      // reconcile with a reduction and re-enter the epoch if needed.
      for (;;) {
        {
          ampp::epoch ep(ctx);
          ++epochs;
          do {
            while (auto v = B.pop(level)) (*a_)(ctx, *v);
          } while (!ep.try_finish());
        }
        if (!ctx.allreduce_or(!B.empty(level))) break;
      }
    }
    if (ctx.rank() == 0) epochs_used_ = epochs;  // one writer; TSan-clean
    sp.arg("epochs", epochs);
    sp.finish();
    ctx.barrier();

    result res;
    res.rounds = epochs;
    res.modifications = a_->modifications() - before;
    if (sc) res.stats_delta = sc->finish();
    return res;
  }

  /// Uncoordinated Δ-stepping (§III-D): single epoch, local priority order,
  /// termination purely via try_finish. Collective.
  result run_uncoordinated(ampp::transport_context& ctx, std::span<const vertex_id> seeds,
                           const options& opt = {}) {
    buckets& B = my_buckets(ctx);
    B.clear();
    install_hook_collective(ctx, *a_, hook_);
    for (const vertex_id v : seeds) B.insert(v, priority(v));

    obs::registry& reg = ctx.tp().obs();
    std::optional<obs::stats_scope> sc;
    if (opt.collect_stats) sc.emplace(reg);
    const std::uint64_t before = a_->modifications();
    obs::trace_span sp(&reg.trace(), "strategy", "delta_uncoordinated", ctx.rank());

    {
      ampp::epoch ep(ctx);
      for (;;) {
        while (auto v = B.pop_any()) (*a_)(ctx, *v);
        if (B.empty() && ep.try_finish()) break;
        // Either local work arrived while trying to finish, or some other
        // rank still works: go back to the buckets.
      }
    }
    if (ctx.rank() == 0) epochs_used_ = 1;
    sp.finish();
    ctx.barrier();

    result res;
    res.rounds = 1;
    res.modifications = a_->modifications() - before;
    if (sc) res.stats_delta = sc->finish();
    return res;
  }

  /// Epochs consumed by the last run (a proxy for global synchronization
  /// cost; the Δ sweep benchmark reports it).
  std::uint64_t epochs_used() const { return epochs_used_; }

 private:
  buckets& my_buckets(ampp::transport_context& ctx) { return buckets_[ctx.rank()]; }

  double priority(vertex_id v) const {
    return static_cast<double>((*m_)[v]);
  }

  const graph::distributed_graph* g_;
  pattern::action_instance* a_;
  pmap::vertex_property_map<T>* m_;
  double delta_;
  std::deque<buckets> buckets_;  // deque: buckets hold locks and cannot move
  pattern::action_instance::work_hook hook_;
  std::uint64_t epochs_used_ = 0;
};

}  // namespace dpg::strategy
