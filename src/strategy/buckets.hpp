// The thread-safe bucket structure backing the Δ-stepping strategy (§II-A:
// "The Δ-stepping strategy, for example, has to provide a thread-safe
// buckets data structure").
//
// Vertices are filed under bucket ⌊priority/Δ⌋. Duplicate insertions are
// allowed (an improved vertex is simply filed again; popping a stale entry
// re-applies the action, which is a no-op when nothing can improve) — the
// classic lazy-deletion formulation of Δ-stepping.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <vector>

#include "graph/ids.hpp"
#include "util/assert.hpp"
#include "util/spinlock.hpp"

namespace dpg::strategy {

using graph::vertex_id;

class buckets {
 public:
  static constexpr std::uint64_t none = std::numeric_limits<std::uint64_t>::max();
  /// Bucket indices are capped: priorities at or beyond max_buckets·Δ
  /// (including +∞, the "unreached" distance, and NaN) are filed together
  /// in the last bucket. Lazy deletion makes this safe — popping a far
  /// vertex early merely re-applies its action — while bounding the row
  /// array that `insert` would otherwise resize without limit (and the
  /// float→integer cast that is undefined for non-finite values).
  static constexpr std::uint64_t max_buckets = std::uint64_t{1} << 16;

  explicit buckets(double delta) : delta_(delta) {
    DPG_ASSERT_MSG(delta > 0.0, "Δ must be positive");
  }

  std::uint64_t bucket_of(double priority) const {
    DPG_ASSERT_MSG(!(priority < 0.0), "Δ-stepping priorities must be non-negative");
    const double q = priority / delta_;
    // Ordered comparison is false for NaN, so ∞, NaN, and any quotient
    // that would overflow the cap all take this branch; the cast below is
    // then always in-range and well-defined.
    if (!(q < static_cast<double>(max_buckets))) return max_buckets - 1;
    return static_cast<std::uint64_t>(q);
  }

  void insert(vertex_id v, double priority) {
    const std::uint64_t b = bucket_of(priority);
    std::lock_guard<dpg::spinlock> g(mu_);
    if (b >= rows_.size()) rows_.resize(b + 1);
    rows_[b].push_back(v);
    ++size_;
    if (b < cursor_) cursor_ = b;
  }

  /// Pops from bucket i; nullopt when it is empty.
  std::optional<vertex_id> pop(std::uint64_t i) {
    std::lock_guard<dpg::spinlock> g(mu_);
    if (i >= rows_.size() || rows_[i].empty()) return std::nullopt;
    const vertex_id v = rows_[i].front();
    rows_[i].pop_front();
    --size_;
    return v;
  }

  /// Pops from the lowest non-empty bucket (the uncoordinated variant's
  /// local priority order). Amortized O(1): resumes from the cursor
  /// instead of rescanning from row 0 (this sits in the per-vertex inner
  /// loop of uncoordinated Δ-stepping).
  std::optional<vertex_id> pop_any() {
    std::lock_guard<dpg::spinlock> g(mu_);
    const std::uint64_t i = first_nonempty_locked();
    if (i == none) return std::nullopt;
    const vertex_id v = rows_[i].front();
    rows_[i].pop_front();
    --size_;
    return v;
  }

  bool empty(std::uint64_t i) const {
    std::lock_guard<dpg::spinlock> g(mu_);
    return i >= rows_.size() || rows_[i].empty();
  }

  bool empty() const {
    std::lock_guard<dpg::spinlock> g(mu_);
    return size_ == 0;
  }

  std::uint64_t size() const {
    std::lock_guard<dpg::spinlock> g(mu_);
    return size_;
  }

  /// Index of the first non-empty bucket, or `none`.
  std::uint64_t first_nonempty() const {
    std::lock_guard<dpg::spinlock> g(mu_);
    return first_nonempty_locked();
  }

  void clear() {
    std::lock_guard<dpg::spinlock> g(mu_);
    rows_.clear();
    size_ = 0;
    cursor_ = 0;
  }

  double delta() const { return delta_; }

 private:
  /// Scan for the lowest non-empty row, resuming from cursor_. The cursor
  /// is a lower bound: rows below it are empty (insert lowers it, and the
  /// scan only advances it past rows observed empty under mu_), so each row
  /// is passed over at most once per insertion that lands in it.
  std::uint64_t first_nonempty_locked() const {
    for (; cursor_ < rows_.size(); ++cursor_)
      if (!rows_[cursor_].empty()) return cursor_;
    return none;
  }

  double delta_;
  mutable dpg::spinlock mu_;
  std::vector<std::deque<vertex_id>> rows_;
  std::uint64_t size_ = 0;
  mutable std::uint64_t cursor_ = 0;
};

}  // namespace dpg::strategy
