// The thread-safe bucket structure backing the Δ-stepping strategy (§II-A:
// "The Δ-stepping strategy, for example, has to provide a thread-safe
// buckets data structure").
//
// Vertices are filed under bucket ⌊priority/Δ⌋. Duplicate insertions are
// allowed (an improved vertex is simply filed again; popping a stale entry
// re-applies the action, which is a no-op when nothing can improve) — the
// classic lazy-deletion formulation of Δ-stepping.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <vector>

#include "graph/ids.hpp"
#include "util/assert.hpp"
#include "util/spinlock.hpp"

namespace dpg::strategy {

using graph::vertex_id;

class buckets {
 public:
  static constexpr std::uint64_t none = std::numeric_limits<std::uint64_t>::max();

  explicit buckets(double delta) : delta_(delta) {
    DPG_ASSERT_MSG(delta > 0.0, "Δ must be positive");
  }

  std::uint64_t bucket_of(double priority) const {
    DPG_ASSERT_MSG(priority >= 0.0, "Δ-stepping priorities must be non-negative");
    return static_cast<std::uint64_t>(priority / delta_);
  }

  void insert(vertex_id v, double priority) {
    const std::uint64_t b = bucket_of(priority);
    std::lock_guard<dpg::spinlock> g(mu_);
    if (b >= rows_.size()) rows_.resize(b + 1);
    rows_[b].push_back(v);
    ++size_;
  }

  /// Pops from bucket i; nullopt when it is empty.
  std::optional<vertex_id> pop(std::uint64_t i) {
    std::lock_guard<dpg::spinlock> g(mu_);
    if (i >= rows_.size() || rows_[i].empty()) return std::nullopt;
    const vertex_id v = rows_[i].front();
    rows_[i].pop_front();
    --size_;
    return v;
  }

  /// Pops from the lowest non-empty bucket (the uncoordinated variant's
  /// local priority order).
  std::optional<vertex_id> pop_any() {
    std::lock_guard<dpg::spinlock> g(mu_);
    for (auto& row : rows_) {
      if (!row.empty()) {
        const vertex_id v = row.front();
        row.pop_front();
        --size_;
        return v;
      }
    }
    return std::nullopt;
  }

  bool empty(std::uint64_t i) const {
    std::lock_guard<dpg::spinlock> g(mu_);
    return i >= rows_.size() || rows_[i].empty();
  }

  bool empty() const {
    std::lock_guard<dpg::spinlock> g(mu_);
    return size_ == 0;
  }

  std::uint64_t size() const {
    std::lock_guard<dpg::spinlock> g(mu_);
    return size_;
  }

  /// Index of the first non-empty bucket, or `none`.
  std::uint64_t first_nonempty() const {
    std::lock_guard<dpg::spinlock> g(mu_);
    for (std::uint64_t i = 0; i < rows_.size(); ++i)
      if (!rows_[i].empty()) return i;
    return none;
  }

  void clear() {
    std::lock_guard<dpg::spinlock> g(mu_);
    rows_.clear();
    size_ = 0;
  }

  double delta() const { return delta_; }

 private:
  double delta_;
  mutable dpg::spinlock mu_;
  std::vector<std::deque<vertex_id>> rows_;
  std::uint64_t size_ = 0;
};

}  // namespace dpg::strategy
