// One rank process of a cross-process machine (ISSUE 8).
//
// rankproc hosts exactly one rank of an N-rank machine over a real wire
// backend (shm ring or TCP), runs one algorithm on the shared sim-suite
// graph recipe, and prints a canonical result hash. Launch N of these with
// scripts/run_ranks.sh; tests/sim/backend_sweep_test.cpp forks the full
// matrix and compares hashes bit-for-bit against the in-process oracle
// (`--backend inproc`, which runs the classic N-threads-one-process
// machine — optionally under a fault plan — through the same hashing
// path, so the comparison exercises one code path end to end).
//
// The graph is the sim suite's: erdos_renyi(96, 480) from substream 1 of
// the seed, cyclic distribution, deterministic edge weights. Identical
// inputs on every rank process are the SPMD contract the wire backends
// assume; everything downstream (message-type registration order, channel
// assignment, collective generations) follows from it.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "algo/bfs.hpp"
#include "algo/cc.hpp"
#include "algo/sssp.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace dpg;
using graph::distributed_graph;
using graph::distribution;
using graph::vertex_id;

constexpr vertex_id kN = 96;
constexpr std::uint64_t kM = 480;

struct options {
  ampp::backend_config::kind_t kind = ampp::backend_config::kind_t::inproc;
  ampp::rank_t ranks = 2;
  ampp::rank_t rank = 0;
  std::string session = "dpg";
  std::uint16_t base_port = 29700;
  std::string algo = "sssp";
  std::uint64_t seed = 1;
  std::string plan = "none";  // inproc only: fault plan name
};

[[noreturn]] void usage(const char* msg) {
  if (msg) std::cerr << "rankproc: " << msg << "\n";
  std::cerr << "usage: rankproc --backend inproc|shm|tcp --ranks N [--rank R]\n"
               "                [--session S] [--base-port P] [--plan NAME]\n"
               "                --algo sssp|bfs|cc [--seed X]\n"
               "  --plan (inproc only): none|scramble|lossy|chaos|control_chaos\n";
  std::exit(2);
}

options parse(int argc, char** argv) {
  options o;
  auto need = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--backend") {
      const std::string v = need(i);
      if (v == "inproc")
        o.kind = ampp::backend_config::kind_t::inproc;
      else if (v == "shm")
        o.kind = ampp::backend_config::kind_t::shm_ring;
      else if (v == "tcp")
        o.kind = ampp::backend_config::kind_t::tcp;
      else
        usage("unknown backend");
    } else if (a == "--ranks") {
      o.ranks = static_cast<ampp::rank_t>(std::stoul(need(i)));
    } else if (a == "--rank") {
      o.rank = static_cast<ampp::rank_t>(std::stoul(need(i)));
    } else if (a == "--session") {
      o.session = need(i);
    } else if (a == "--base-port") {
      o.base_port = static_cast<std::uint16_t>(std::stoul(need(i)));
    } else if (a == "--algo") {
      o.algo = need(i);
    } else if (a == "--seed") {
      o.seed = std::stoull(need(i));
    } else if (a == "--plan") {
      o.plan = need(i);
    } else {
      usage(("unknown flag '" + a + "'").c_str());
    }
  }
  if (o.ranks < 1) usage("--ranks must be >= 1");
  if (o.rank >= o.ranks) usage("--rank out of range");
  if (o.algo != "sssp" && o.algo != "bfs" && o.algo != "cc") usage("unknown --algo");
  if (o.plan != "none" && o.kind != ampp::backend_config::kind_t::inproc)
    usage("fault plans are an in-process-only instrument");
  return o;
}

ampp::fault_plan make_plan(const std::string& name, std::uint64_t seed) {
  const std::uint64_t s = substream_seed(seed, 2);  // the sim harness substream
  if (name == "none") return ampp::fault_plan::none();
  if (name == "scramble") return ampp::fault_plan::scramble(s);
  if (name == "lossy") return ampp::fault_plan::lossy(s);
  if (name == "chaos") return ampp::fault_plan::chaos(s);
  if (name == "control_chaos") return ampp::fault_plan::control_chaos(s);
  usage("unknown --plan");
}

ampp::transport_config make_config(const options& o) {
  ampp::backend_config bc;
  bc.kind = o.kind;
  bc.self_rank = o.rank;
  bc.session = o.session;
  bc.base_port = o.base_port;
  // The sim-suite workload is tiny; small rings keep a 4-rank machine's
  // shm footprint near 1 MiB per channel so CI containers with a modest
  // /dev/shm never thrash.
  bc.ring_bytes = 1u << 16;
  return ampp::transport_config{.n_ranks = o.ranks,
                                .coalescing_size = 8,
                                .seed = substream_seed(o.seed, 3),
                                .faults = make_plan(o.plan, o.seed),
                                .handler_threads = 0,
                                .backend = bc};
}

std::uint64_t fnv1a64(const std::vector<std::uint64_t>& vals) {
  std::uint64_t h = 14695981039346656037ull;
  for (const std::uint64_t v : vals)
    for (unsigned b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  return h;
}

/// Assembles the full per-vertex value array from per-rank shards. In
/// process: read every shard directly (they all live here). Cross-process:
/// allgather the owned shard's values over the wire; SPMD program order
/// makes this collective line up across the rank processes.
template <class Map>
std::vector<std::uint64_t> gather_values(ampp::transport& tp,
                                         const distributed_graph& g, Map& map,
                                         std::uint64_t (*encode)(
                                             typename Map::value_type)) {
  const auto& d = g.dist();
  std::vector<std::uint64_t> vals(kN, 0);
  if (!tp.cross_process()) {
    for (vertex_id v = 0; v < kN; ++v) vals[v] = encode(map[v]);
    return vals;
  }
  const ampp::rank_t self = tp.self_rank();
  const std::uint64_t cnt = d.count(self);
  std::vector<std::byte> mine(cnt * 8);
  for (std::uint64_t li = 0; li < cnt; ++li) {
    const std::uint64_t enc = encode(map[d.global(self, li)]);
    std::memcpy(mine.data() + li * 8, &enc, 8);
  }
  const auto blobs = tp.exchange_blobs(mine);
  for (ampp::rank_t src = 0; src < tp.size(); ++src) {
    const std::uint64_t n = blobs[src].size() / 8;
    if (n != d.count(src))
      throw ampp::wire_error("rankproc: shard size mismatch from rank " +
                             std::to_string(src));
    for (std::uint64_t li = 0; li < n; ++li) {
      std::uint64_t enc;
      std::memcpy(&enc, blobs[src].data() + li * 8, 8);
      vals[d.global(src, li)] = enc;
    }
  }
  return vals;
}

std::uint64_t encode_double(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  return bits;
}
std::uint64_t encode_u64(std::uint64_t v) { return v; }
std::uint64_t encode_vid(vertex_id v) { return static_cast<std::uint64_t>(v); }

/// Component labels are representative-dependent (which vertex becomes a
/// search root is a race); the partition is not. Relabel every class by
/// its minimum member so any valid CC run of the same graph hashes
/// identically.
void canonicalize_labels(std::vector<std::uint64_t>& vals) {
  std::vector<std::uint64_t> minrep(kN, ~0ull);
  for (vertex_id v = 0; v < kN; ++v) {
    std::uint64_t& m = minrep[vals[v]];
    if (v < m) m = v;
  }
  for (vertex_id v = 0; v < kN; ++v) vals[v] = minrep[vals[v]];
}

std::vector<std::uint64_t> run_algo(const options& o) {
  const ampp::transport_config cfg = make_config(o);
  const bool symmetric = o.algo == "cc";
  auto edges = graph::erdos_renyi(kN, kM, substream_seed(o.seed, 1));
  if (symmetric) edges = graph::symmetrize(edges);
  distributed_graph g(kN, edges, distribution::cyclic(kN, o.ranks));

  if (o.algo == "cc") {
    algo::cc_solver cc(g, cfg);
    cc.transport().set_topology_stamp(g.version(), g.structure_version());
    cc.solve();
    auto vals = gather_values(cc.transport(), g, cc.components(), encode_vid);
    canonicalize_labels(vals);
    return vals;
  }

  ampp::transport tp(cfg);
  tp.set_topology_stamp(g.version(), g.structure_version());
  if (o.algo == "bfs") {
    algo::bfs_solver bfs(tp, g);
    tp.run([&](ampp::transport_context& ctx) { bfs.run_fixed_point(ctx, 0); });
    return gather_values(tp, g, bfs.depth(), encode_u64);
  }
  auto weight = pmap::edge_property_map<double>(g, [](const graph::edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 17, 8.0);
  });
  algo::sssp_solver solver(tp, g, weight);
  tp.run([&](ampp::transport_context& ctx) { solver.run_fixed_point(ctx, 0); });
  return gather_values(tp, g, solver.dist(), encode_double);
}

const char* backend_name(const options& o) {
  switch (o.kind) {
    case ampp::backend_config::kind_t::shm_ring: return "shm_ring";
    case ampp::backend_config::kind_t::tcp: return "tcp";
    default: return "inproc";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const options o = parse(argc, argv);
  try {
    const std::vector<std::uint64_t> vals = run_algo(o);
    const std::uint64_t hash = fnv1a64(vals);
    // Every process computes the full array (the gather is an allgather),
    // so every process could print; rank 0 owns the report line.
    if (o.rank == 0) {
      char hex[17];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(hash));
      std::cout << "RESULT algo=" << o.algo << " seed=" << o.seed
                << " ranks=" << static_cast<unsigned>(o.ranks)
                << " backend=" << backend_name(o) << " plan=" << o.plan
                << " hash=" << hex << std::endl;
    }
  } catch (const std::exception& e) {
    std::cerr << "rankproc[rank " << static_cast<unsigned>(o.rank)
              << "]: " << e.what() << std::endl;
    return 1;
  }
  return 0;
}
