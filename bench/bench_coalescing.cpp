// Experiment Q1 (DESIGN.md §4): the AM++ coalescing claim — "coalescing
// greatly improves performance when large amounts of messages are sent".
//
// A fixed stream of fine-grained messages (an SSSP-shaped payload) is
// pushed through the transport with varying coalescing buffer sizes; the
// expected shape is throughput rising steeply from buffer=1 and then
// plateauing once per-envelope overhead is amortized.
#include <benchmark/benchmark.h>

#include <atomic>

#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"
#include "common.hpp"

namespace dpg::bench {
namespace {

struct relax_payload {
  std::uint64_t vertex;
  double dist;
};

void BM_CoalescingSweep(benchmark::State& state) {
  const auto buffer = static_cast<std::size_t>(state.range(0));
  constexpr ampp::rank_t kRanks = 4;
  constexpr std::uint64_t kMessages = 200000;
  ampp::transport tp(
      ampp::transport_config{.n_ranks = kRanks, .coalescing_size = buffer});
  std::atomic<std::uint64_t> sink{0};
  auto& mt = tp.make_message_type<relax_payload>(
      "relax", [&](ampp::transport_context&, const relax_payload& p) {
        sink.fetch_add(p.vertex, std::memory_order_relaxed);
      });
  for (auto _ : state) {
    tp.run([&](ampp::transport_context& ctx) {
      ampp::epoch ep(ctx);
      dpg::xoshiro256ss rng(ctx.rank() + 1);
      for (std::uint64_t i = 0; i < kMessages / kRanks; ++i)
        mt.send(ctx, static_cast<ampp::rank_t>(rng.below(kRanks)),
                relax_payload{i, 1.0});
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kMessages) * state.iterations());
  state.counters["buffer"] = static_cast<double>(buffer);
  state.counters["envelopes"] = static_cast<double>(tp.obs().snapshot().core.envelopes_sent);
}
BENCHMARK(BM_CoalescingSweep)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace dpg::bench

BENCHMARK_MAIN();
