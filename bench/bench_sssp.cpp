// Experiment F1 + Q5 (DESIGN.md §4): the two SSSP algorithms of the
// paper's Fig. 1 — chaotic fixed point and Δ-stepping — built from ONE
// shared relax pattern, against the sequential Dijkstra baseline.
//
// Series reported:
//   * fixed_point vs Δ-stepping vs Δ-stepping(uncoordinated) wall time,
//     with `relaxations` counters (label-correcting work) per run;
//   * a Δ sweep (Q5): small Δ ⇒ many epochs; huge Δ ⇒ chaotic-like
//     re-relaxation — the U-shaped cost curve;
//   * the Dijkstra baseline for the abstraction-overhead bound.
#include <benchmark/benchmark.h>

#include "algo/baselines.hpp"
#include "algo/sssp.hpp"
#include "common.hpp"

namespace dpg::bench {
namespace {

constexpr unsigned kScale = 11;      // 2048 vertices, ~16k edges
constexpr unsigned kEdgeFactor = 8;

const workload& wl() {
  static workload w = workload::rmat(kScale, kEdgeFactor);
  return w;
}

void BM_SsspFixedPoint(benchmark::State& state) {
  const auto ranks = static_cast<ampp::rank_t>(state.range(0));
  auto g = wl().build(ranks);
  auto weight = wl().weights(g);
  ampp::transport tp(ampp::transport_config{.n_ranks = ranks});
  algo::sssp_solver solver(tp, g, weight);
  strategy::result last;
  obs::stats_snapshot delta;
  for (auto _ : state) {
    obs::stats_scope sc(tp.obs(), &delta);
    tp.run([&](ampp::transport_context& ctx) {
      const strategy::result r = solver.run_fixed_point(ctx, 0);
      if (ctx.rank() == 0) last = r;
    });
  }
  state.counters["relaxations"] = static_cast<double>(last.modifications);
  state.counters["edges"] = static_cast<double>(g.num_edges());
  report_stats(state, delta);
}
BENCHMARK(BM_SsspFixedPoint)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SsspDelta(benchmark::State& state) {
  const auto ranks = static_cast<ampp::rank_t>(state.range(0));
  const double delta = static_cast<double>(state.range(1));
  auto g = wl().build(ranks);
  auto weight = wl().weights(g);
  ampp::transport tp(ampp::transport_config{.n_ranks = ranks});
  algo::sssp_solver solver(tp, g, weight);
  strategy::result last;
  obs::stats_snapshot sdelta;
  for (auto _ : state) {
    obs::stats_scope sc(tp.obs(), &sdelta);
    tp.run([&](ampp::transport_context& ctx) {
      const strategy::result r = solver.run_delta(ctx, 0, delta);
      if (ctx.rank() == 0) last = r;
    });
  }
  state.counters["relaxations"] = static_cast<double>(last.modifications);
  state.counters["epochs"] = static_cast<double>(last.rounds);
  report_stats(state, sdelta);
}
// Q5 Δ sweep at 2 ranks, plus rank scaling at the sweet spot.
BENCHMARK(BM_SsspDelta)
    ->Args({2, 2})
    ->Args({2, 10})
    ->Args({2, 50})
    ->Args({2, 250})
    ->Args({2, 100000})
    ->Args({1, 50})
    ->Args({4, 50})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SsspDeltaUncoordinated(benchmark::State& state) {
  const auto ranks = static_cast<ampp::rank_t>(state.range(0));
  auto g = wl().build(ranks);
  auto weight = wl().weights(g);
  ampp::transport tp(ampp::transport_config{.n_ranks = ranks});
  algo::sssp_solver solver(tp, g, weight);
  obs::stats_snapshot delta;
  for (auto _ : state) {
    obs::stats_scope sc(tp.obs(), &delta);
    tp.run([&](ampp::transport_context& ctx) {
      solver.run_delta_uncoordinated(ctx, 0, 50.0);
    });
  }
  report_stats(state, delta);
}
BENCHMARK(BM_SsspDeltaUncoordinated)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SsspHandRolledReduction(benchmark::State& state) {
  // Hand-written AM++-style chaotic SSSP (the paper's comparison target,
  // §IV-A): one relax message type with a min-combining reduction cache of
  // 2^range(0) slots per lane. Large caches put the flush/quiescence path
  // under maximum pressure: every epoch-flush and TD-round spin has to
  // establish that the cache holds no residual entries.
  constexpr ampp::rank_t kRanks = 2;
  const auto cache_bits = static_cast<unsigned>(state.range(0));
  auto g = wl().build(kRanks);
  auto weight = wl().weights(g);
  ampp::transport tp(ampp::transport_config{.n_ranks = kRanks});
  std::vector<double> dist(g.num_vertices(),
                           std::numeric_limits<double>::infinity());
  struct relax {
    std::uint64_t v;
    double d;
  };
  ampp::message_type<relax>* mtp = nullptr;
  auto& mt = tp.make_message_type<relax>(
      "relax", [&](ampp::transport_context& ctx, const relax& m) {
        if (m.d < dist[m.v]) {
          dist[m.v] = m.d;
          for (const auto e : g.out_edges(m.v))
            mtp->send(ctx, g.owner(e.dst), relax{e.dst, m.d + weight.read(e)});
        }
      });
  mtp = &mt;
  mt.enable_reduction([](const relax& m) { return m.v; },
                      [](const relax& a, const relax& b) { return a.d <= b.d ? a : b; },
                      cache_bits);
  obs::stats_snapshot delta;
  for (auto _ : state) {
    obs::stats_scope sc(tp.obs(), &delta);
    tp.run([&](ampp::transport_context& ctx) {
      for (vertex_id v = 0; v < g.num_vertices(); ++v)
        if (g.owner(v) == ctx.rank())
          dist[v] = std::numeric_limits<double>::infinity();
      ctx.barrier();
      ampp::epoch ep(ctx);
      if (g.owner(0) == ctx.rank()) mt.send(ctx, g.owner(0), relax{0, 0.0});
    });
  }
  state.counters["cache_bits"] = cache_bits;
  report_stats(state, delta);
}
BENCHMARK(BM_SsspHandRolledReduction)->Arg(10)->Arg(16)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SsspDijkstraBaseline(benchmark::State& state) {
  auto g = wl().build(1);
  auto weight = wl().weights(g);
  for (auto _ : state) {
    auto d = algo::dijkstra(g, weight, 0);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_SsspDijkstraBaseline)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SsspBellmanFordBaseline(benchmark::State& state) {
  auto g = wl().build(1);
  auto weight = wl().weights(g);
  for (auto _ : state) {
    auto d = algo::bellman_ford(g, weight, 0);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_SsspBellmanFordBaseline)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace dpg::bench

BENCHMARK_MAIN();
