// The streaming end-to-end experiment (DESIGN.md §4/§7, ISSUE 10): a
// timestamp-ordered edge stream replayed in mixed add/delete batches
// against a server answering continuous sssp / cc / k-core queries.
//
// Two replays of the *identical* stream (same seed, same batches):
//   BM_StreamingColdReplay   every post-batch query is a full solve
//                            (query() at the bumped version misses the
//                            cache and re-runs the session cold);
//   BM_StreamingWarmReplay   every post-batch query is repair_query() —
//                            sssp decremental repair, cc union-find
//                            maintainer, k-core peel-frontier maintainer.
//
// The repair-vs-cold wall-time ratio is the headline number (CI guards it
// at >= 5x; scripts/ci.sh "streaming" stage), and both replays report the
// idle cost of never compacting: delta-overlay + tombstone bytes left
// behind by the stream, stamped into BENCH_streaming.json by
// scripts/bench_json.sh.
//
// The iteration count is pinned so both replays consume exactly the same
// prefix of the stream — mutation state accumulates across iterations (no
// compaction, by design: that accumulation *is* the idle-overhead
// measurement), so untimed warmup iterations would desynchronize the
// comparison.
#include <benchmark/benchmark.h>

#include <set>
#include <utility>
#include <vector>

#include "algo/baselines.hpp"
#include "common.hpp"
#include "serve/server.hpp"

namespace dpg::bench {
namespace {

constexpr ampp::rank_t kRanks = 2;
constexpr vertex_id kN = 2000;
constexpr std::uint64_t kEdges = 8000;  // before symmetrize/simplify
constexpr int kDelPairs = 16;
constexpr int kAddPairs = 16;
constexpr benchmark::IterationCount kReplay = 24;  // batches per replay

/// The timestamp-ordered stream: batch t deletes kDelPairs present pairs
/// and adds kAddPairs absent ones, always as both directed halves, so the
/// served graph stays simple and symmetric (the k-core maintainer's
/// domain) with a constant live-edge count. Deterministic in the seed:
/// the cold and warm replays consume bit-identical batches.
struct edge_stream {
  std::vector<std::pair<vertex_id, vertex_id>> pairs;
  std::set<std::pair<vertex_id, vertex_id>> present;
  dpg::xoshiro256ss rng;

  edge_stream(std::span<const graph::edge> base, std::uint64_t seed) : rng(seed) {
    for (const graph::edge& e : base)
      if (e.src < e.dst && present.insert({e.src, e.dst}).second)
        pairs.push_back({e.src, e.dst});
  }

  void next(std::vector<graph::edge>& adds, std::vector<graph::edge>& dels) {
    adds.clear();
    dels.clear();
    for (int i = 0; i < kDelPairs; ++i) {
      const std::size_t idx = static_cast<std::size_t>(rng.below(pairs.size()));
      const auto [u, v] = pairs[idx];
      pairs.erase(pairs.begin() + static_cast<std::ptrdiff_t>(idx));
      present.erase({u, v});
      dels.push_back({u, v});
      dels.push_back({v, u});
    }
    for (int i = 0; i < kAddPairs; ++i) {
      vertex_id u = 0, v = 0;
      do {
        u = rng.below(kN);
        v = rng.below(kN);
        if (u > v) std::swap(u, v);
      } while (u == v || present.contains({u, v}));
      present.insert({u, v});
      pairs.push_back({u, v});
      adds.push_back({u, v});
      adds.push_back({v, u});
    }
  }
};

std::vector<graph::edge> base_edges() {
  return graph::simplify(
      graph::symmetrize(graph::erdos_renyi(kN, kEdges, 7)));
}

pmap::edge_property_map<double> stream_weights(const graph::distributed_graph& g) {
  return pmap::edge_property_map<double>(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 11, 20.0);
  });
}

/// Shared replay skeleton: cold solves pin the sessions, then each timed
/// iteration ingests one batch and answers the three continuous queries.
template <bool kWarm>
void streaming_replay(benchmark::State& state) {
  const auto base = base_edges();
  graph::distributed_graph g(kN, base, distribution::cyclic(kN, kRanks));
  auto w = stream_weights(g);
  serve::server srv(g, w, {.machine = {.n_ranks = kRanks}});
  edge_stream stream(base, 31);

  const serve::query qs{serve::algorithm::sssp, {.source = 0}, 0};
  const serve::query qc{serve::algorithm::cc, {}, 0};
  const serve::query qk{serve::algorithm::kcore, {}, 0};
  srv.query(qs);
  srv.query(qc);
  srv.query(qk);

  std::vector<graph::edge> adds, dels;
  std::uint64_t warm_repairs = 0;
  for (auto _ : state) {
    stream.next(adds, dels);
    srv.apply_mutation(adds, dels);
    for (const serve::query& q : {qs, qc, qk}) {
      const auto r = kWarm ? srv.repair_query(q) : srv.query(q);
      benchmark::DoNotOptimize(r.get());
      warm_repairs += r->warm_repair ? 1 : 0;
      if (kWarm && !r->warm_repair)
        state.SkipWithError("repair_query fell back to a cold solve");
    }
  }

  state.counters["warm_repairs"] = static_cast<double>(warm_repairs);
  // The idle streaming overhead: what the never-compacted overlay and
  // tombstones cost in memory after the replayed prefix of the stream.
  state.counters["delta_edges"] = static_cast<double>(g.total_delta_edges());
  state.counters["tombstoned_edges"] =
      static_cast<double>(g.total_tombstoned_edges());
  state.counters["overlay_bytes"] = static_cast<double>(g.overlay_bytes());
  state.counters["tombstone_bytes"] = static_cast<double>(g.tombstone_bytes());
}

void BM_StreamingColdReplay(benchmark::State& state) {
  streaming_replay<false>(state);
}
BENCHMARK(BM_StreamingColdReplay)
    ->Iterations(kReplay)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_StreamingWarmReplay(benchmark::State& state) {
  streaming_replay<true>(state);
}
BENCHMARK(BM_StreamingWarmReplay)
    ->Iterations(kReplay)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The ingest pipeline alone (no queries): resolve + tombstone + append
/// per batch, timing the boundary operation the server's topology gate
/// serializes. Reported per batch.
void BM_StreamingIngestBatch(benchmark::State& state) {
  const auto base = base_edges();
  graph::distributed_graph g(kN, base, distribution::cyclic(kN, kRanks));
  edge_stream stream(base, 33);
  std::vector<graph::edge> adds, dels;
  for (auto _ : state) {
    stream.next(adds, dels);
    g.apply_edges(adds);
    g.remove_edges(g.resolve_edges(dels));
  }
  state.counters["delta_edges"] = static_cast<double>(g.total_delta_edges());
  state.counters["tombstoned_edges"] =
      static_cast<double>(g.total_tombstoned_edges());
  state.counters["overlay_bytes"] = static_cast<double>(g.overlay_bytes());
  state.counters["tombstone_bytes"] = static_cast<double>(g.tombstone_bytes());
}
BENCHMARK(BM_StreamingIngestBatch)
    ->Iterations(kReplay * 4)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace
}  // namespace dpg::bench

BENCHMARK_MAIN();
