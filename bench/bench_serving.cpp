// The serving-layer benchmark (ROADMAP item 2): a multi-tenant query storm
// against one shared graph, with mutations interleaved.
//
// Series reported:
//   * BM_ServingThroughput/clients — N client threads replay the same
//     deterministic query stream against one server while every iteration
//     opens with an apply_edges() mutation (so the cache is cold at the new
//     topology version each round). Reports items_per_second (queries),
//     p50/p99 query latency, cache hit rate, and merge/solve counts. The
//     CI guard compares clients=8 against clients=1: admission merging +
//     the shared result cache must make 8 concurrent sessions serve >= 4x
//     the single-session throughput *without* 8x the solver work.
//   * BM_SessionColdConstruct vs BM_SessionWarmPool — what the warm pool
//     buys: plan compilation + transport + property-map construction per
//     query vs a checkout of a pre-built session.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "algo/sessions.hpp"
#include "common.hpp"
#include "serve/server.hpp"

namespace dpg::bench {
namespace {

constexpr graph::vertex_id kN = 1 << 10;
constexpr std::uint64_t kEdges = 8ull * kN;
constexpr ampp::rank_t kRanks = 2;
constexpr int kUniqueSources = 6;    ///< distinct queries per version
constexpr int kQueriesPerClient = 30;

const workload& wl() {
  static workload w = workload::erdos_renyi(kN, kEdges, 42);
  return w;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void BM_ServingThroughput(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  auto g = wl().build(kRanks);
  auto weights = wl().weights(g);
  serve::server srv(g, weights, {.machine = {.n_ranks = kRanks}});

  std::mutex lat_mu;
  std::vector<std::uint64_t> latencies;
  std::uint64_t total_queries = 0;
  graph::vertex_id next_v = 1;

  for (auto _ : state) {
    // One mutation per round: the version moves, the cache goes cold, and
    // the round's first queries are real solves (the mixed read/mutate
    // stream of the serving workload).
    const std::vector<graph::edge> extra = {{0, next_v}, {next_v, 0}};
    next_v = next_v % (kN - 1) + 1;
    srv.apply_edges(extra);

    std::vector<std::jthread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<std::uint64_t> local;
        local.reserve(kQueriesPerClient);
        for (int i = 0; i < kQueriesPerClient; ++i) {
          const serve::query q{
              .algo = serve::algorithm::sssp,
              .params = {.source =
                             static_cast<graph::vertex_id>(i % kUniqueSources)},
              .tenant = static_cast<std::uint64_t>(c)};
          const std::uint64_t t0 = now_us();
          benchmark::DoNotOptimize(srv.query(q));
          local.push_back(now_us() - t0);
        }
        std::lock_guard<std::mutex> lk(lat_mu);
        latencies.insert(latencies.end(), local.begin(), local.end());
      });
    }
    threads.clear();  // join
    total_queries += static_cast<std::uint64_t>(clients) * kQueriesPerClient;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(total_queries));
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    state.counters["p50_us"] =
        static_cast<double>(latencies[latencies.size() / 2]);
    state.counters["p99_us"] =
        static_cast<double>(latencies[latencies.size() * 99 / 100]);
  }
  state.counters["clients"] = clients;
  state.counters["cache_hit_rate"] = srv.cache().hit_rate();
  state.counters["cache_invalidations"] =
      static_cast<double>(srv.cache().invalidations());
  state.counters["sessions_created"] = static_cast<double>(srv.pool().created());
  std::uint64_t merged = 0, solves = 0;
  for (int c = 0; c < clients; ++c) {
    const auto t = srv.obs().tenant(static_cast<std::uint64_t>(c));
    merged += t.merged;
    solves += t.solves;
  }
  state.counters["merged"] = static_cast<double>(merged);
  state.counters["solves"] = static_cast<double>(solves);
}
BENCHMARK(BM_ServingThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// What a query costs when every request builds its own context from
/// scratch: transport + compiled plan + full-size property maps, then one
/// solve. The anti-pattern the session pool exists to kill.
void BM_SessionColdConstruct(benchmark::State& state) {
  auto g = wl().build(kRanks);
  auto weights = wl().weights(g);
  algo::session_env env;
  env.g = &g;
  env.weights = &weights;
  env.machine = {.n_ranks = kRanks};
  env.pool = std::make_shared<ampp::wire_pool>(kRanks);
  for (auto _ : state) {
    auto s = algo::make_solver_session(serve::algorithm::sssp, env);
    benchmark::DoNotOptimize(s->run({.source = 0}));
  }
}
BENCHMARK(BM_SessionColdConstruct)->Unit(benchmark::kMillisecond)->UseRealTime();

/// The same query through the warm pool: construction amortized away.
void BM_SessionWarmPool(benchmark::State& state) {
  auto g = wl().build(kRanks);
  auto weights = wl().weights(g);
  algo::session_env env;
  env.g = &g;
  env.weights = &weights;
  env.machine = {.n_ranks = kRanks};
  env.pool = std::make_shared<ampp::wire_pool>(kRanks);
  serve::session_pool pool(
      [&env](serve::algorithm a) { return algo::make_solver_session(a, env); },
      /*max_warm_per_algo=*/1);
  for (auto _ : state) {
    auto lease = pool.checkout(serve::algorithm::sssp);
    benchmark::DoNotOptimize(lease->run({.source = 0}));
  }
  state.counters["warm_hits"] = static_cast<double>(pool.warm_hits());
  state.counters["created"] = static_cast<double>(pool.created());
}
BENCHMARK(BM_SessionWarmPool)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace dpg::bench

BENCHMARK_MAIN();
