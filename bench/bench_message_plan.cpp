// Experiments F5 + F6 (DESIGN.md §4): the synthesized communication plans.
//
// The paper's Fig. 6 shows the SSSP pattern compiling to ONE message per
// relaxation because the evaluate+modify step is merged with (the only
// required hop to) the modification locality, and the paper's Fig. 5 shows
// general multi-hop gather chains (pointer chases). This benchmark measures
// exactly that: messages per application and wall time for
//   * push SSSP   — 1 message/edge  (the merged Fig. 6 plan),
//   * pull SSSP   — 2 messages/edge (gather at neighbour + evaluate at v),
//   * pointer chase (cc_jump shape) — 2 messages/application,
// plus the §IV-B synchronization ablation (atomic fast path vs lock map)
// on the same push pattern.
#include <benchmark/benchmark.h>

#include "algo/baselines.hpp"
#include "common.hpp"
#include "pattern/action.hpp"
#include "pmap/lock_map.hpp"
#include "strategy/strategies.hpp"

namespace dpg::bench {
namespace {

using namespace dpg::pattern;

constexpr unsigned kScale = 10;

const workload& wl() {
  static workload w = workload::rmat(kScale, 8);
  return w;
}

/// One full sweep (apply at every local vertex) of the given action.
template <class Setup>
void run_sweep_bench(benchmark::State& state, ampp::rank_t ranks, Setup setup) {
  auto g = wl().build(ranks, /*bidirectional=*/true);
  auto weight = wl().weights(g);
  pmap::vertex_property_map<double> dist(g, 1e100);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = ranks});
  auto act = setup(tp, g, dist, weight, locks);

  std::uint64_t applications = 0;
  obs::stats_snapshot delta;
  for (auto _ : state) {
    for (ampp::rank_t r = 0; r < ranks; ++r)
      for (auto& x : dist.local(r)) x = 1e100;
    dist[0] = 0.0;
    obs::stats_scope sc(tp.obs(), &delta);
    const std::uint64_t inv_before = act->invocations();
    tp.run([&](ampp::transport_context& ctx) {
      ampp::epoch ep(ctx);
      strategy::for_each_local_vertex(ctx, g, [&](vertex_id v) { (*act)(ctx, v); });
    });
    applications = act->invocations() - inv_before;
  }
  report_stats(state, delta);
  state.counters["plan_msgs_per_app"] =
      static_cast<double>(act->plan().messages_per_application());
  state.counters["plan_wire_bytes"] = static_cast<double>(
      act->plan().wire_bytes.empty() ? 0 : act->plan().wire_bytes.back());
  state.counters["gather_hops"] = static_cast<double>(act->plan().gather_hops);
  state.counters["atomic"] = act->plan().atomic_path ? 1 : 0;
  state.counters["applications"] = static_cast<double>(applications);
}

void BM_PlanPushSssp(benchmark::State& state) {
  run_sweep_bench(state, 2, [](auto& tp, auto& g, auto& dist, auto& weight, auto& locks) {
    property d(dist);
    property w(weight);
    return instantiate(tp, g, locks,
                       make_action("push", out_edges_gen{},
                                   when(d(trg(e_)) > d(v_) + w(e_),
                                        assign(d(trg(e_)), d(v_) + w(e_)))));
  });
}
BENCHMARK(BM_PlanPushSssp)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PlanPullSssp(benchmark::State& state) {
  run_sweep_bench(state, 2, [](auto& tp, auto& g, auto& dist, auto& weight, auto& locks) {
    property d(dist);
    property w(weight);
    return instantiate(tp, g, locks,
                       make_action("pull", out_edges_gen{},
                                   when(d(v_) > d(trg(e_)) + w(e_),
                                        assign(d(v_), d(trg(e_)) + w(e_)))));
  });
}
BENCHMARK(BM_PlanPullSssp)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PlanPushLockedAblation(benchmark::State& state) {
  // Same push pattern, but a two-arm condition disables the atomic
  // fast path — isolating the §IV-B synchronization choice.
  run_sweep_bench(state, 2, [](auto& tp, auto& g, auto& dist, auto& weight, auto& locks) {
    property d(dist);
    property w(weight);
    return instantiate(tp, g, locks,
                       make_action("push_locked", out_edges_gen{},
                                   when(d(trg(e_)) > d(v_) + w(e_),
                                        assign(d(trg(e_)), d(v_) + w(e_))),
                                   when(lit(false), assign(d(trg(e_)), lit(0.0)))));
  });
}
BENCHMARK(BM_PlanPushLockedAblation)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PlanPointerChase(benchmark::State& state) {
  // The cc_jump shape (Fig. 5's multi-hop gather): v -> pnt(v) -> v.
  const ampp::rank_t ranks = 2;
  const vertex_id n = wl().n;
  auto g = wl().build(ranks);
  pmap::vertex_property_map<vertex_id> pnt(g, 0), chg(g, 0);
  for (vertex_id v = 0; v < n; ++v) {
    pnt[v] = v == 0 ? 0 : v - 1;
    chg[v] = v;
  }
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = ranks});
  property P(pnt);
  property C(chg);
  auto jump = instantiate(tp, g, locks,
                          make_action("jump", no_generator{},
                                      when(C(P(v_)) < C(v_), assign(C(v_), C(P(v_))))));
  obs::stats_snapshot delta;
  for (auto _ : state) {
    for (ampp::rank_t r = 0; r < ranks; ++r) {
      auto span = chg.local(r);
      for (std::size_t li = 0; li < span.size(); ++li) span[li] = chg.global_id(r, li);
    }
    obs::stats_scope sc(tp.obs(), &delta);
    tp.run([&](ampp::transport_context& ctx) {
      ampp::epoch ep(ctx);
      strategy::for_each_local_vertex(ctx, g, [&](vertex_id v) { (*jump)(ctx, v); });
    });
  }
  report_stats(state, delta);
  state.counters["plan_msgs_per_app"] =
      static_cast<double>(jump->plan().messages_per_application());
  state.counters["gather_hops"] = static_cast<double>(jump->plan().gather_hops);
}
BENCHMARK(BM_PlanPointerChase)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace dpg::bench

BENCHMARK_MAIN();
