// Experiment Q4 (DESIGN.md §4): the §IV-B lock map schemes.
//
// The same contended relaxation workload runs under (a) the atomic
// single-value fast path, (b) per-vertex locks, (c) per-block locks of
// increasing coarseness. Expected shape: atomics ≥ fine locks > coarse
// locks under contention (the paper's stated trade-off between coarseness
// of synchronization and the number of locks).
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "graph/distribution.hpp"
#include "pmap/lock_map.hpp"

namespace dpg::bench {
namespace {

using graph::distribution;
using pmap::lock_map;
using pmap::lock_scheme;

constexpr std::size_t kVertices = 1024;
constexpr int kThreads = 4;
constexpr int kOpsPerThread = 100000;

/// Contended min-updates against a shared distance array; the vertex
/// stream is hub-skewed (low ids repeat) to create real contention.
template <class Update>
void run_contended(benchmark::State& state, Update update) {
  std::vector<double> dist(kVertices);
  for (auto _ : state) {
    std::fill(dist.begin(), dist.end(), 1e100);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        dpg::xoshiro256ss rng(t + 1);
        for (int i = 0; i < kOpsPerThread; ++i) {
          // Square the uniform draw: quadratic skew toward vertex 0.
          const double u = rng.uniform01();
          const auto v = static_cast<std::size_t>(u * u * kVertices);
          update(dist[std::min(v, kVertices - 1)], static_cast<double>(i));
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kThreads) * kOpsPerThread *
                          state.iterations());
}

void BM_LockMapAtomic(benchmark::State& state) {
  run_contended(state, [](double& slot, double proposed) {
    pmap::atomic_update_if(slot, proposed,
                           [](double cur, double prop) { return prop < cur; });
  });
}
BENCHMARK(BM_LockMapAtomic)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_LockMapScheme(benchmark::State& state) {
  // range(0): block_bits; 0 = per-vertex.
  const auto bits = static_cast<unsigned>(state.range(0));
  auto d = distribution::block(kVertices, 1);
  lock_map locks(d, bits == 0 ? lock_scheme::per_vertex : lock_scheme::per_block, bits);
  std::vector<double> dist(kVertices);
  for (auto _ : state) {
    std::fill(dist.begin(), dist.end(), 1e100);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        dpg::xoshiro256ss rng(t + 1);
        for (int i = 0; i < kOpsPerThread; ++i) {
          const double u = rng.uniform01();
          const auto v =
              std::min(static_cast<std::size_t>(u * u * kVertices), kVertices - 1);
          pmap::locked_update_if(locks.lock_for(v), dist[v], static_cast<double>(i),
                                 [](double cur, double prop) { return prop < cur; });
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kThreads) * kOpsPerThread *
                          state.iterations());
  state.counters["locks"] = static_cast<double>(kVertices >> bits);
}
BENCHMARK(BM_LockMapScheme)
    ->Arg(0)    // per-vertex: 1024 locks
    ->Arg(2)    // 256 locks
    ->Arg(5)    // 32 locks
    ->Arg(8)    // 4 locks
    ->Arg(10)   // single lock
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace dpg::bench

BENCHMARK_MAIN();
