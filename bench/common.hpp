// Shared workload builders for the benchmark harness. Each benchmark
// binary regenerates one experiment row of DESIGN.md §4; the graphs are
// sized for a single machine (the abstractions under test are
// size-independent; see DESIGN.md §2).
#pragma once

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "graph/distributed_graph.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "pmap/edge_map.hpp"

namespace dpg::bench {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;
using graph::vertex_id;

/// Graph500-flavoured workload: R-MAT with hashed edge weights in [1, maxw].
struct workload {
  vertex_id n;
  std::vector<graph::edge> edges;
  std::uint64_t weight_seed;
  double max_weight;

  static workload rmat(unsigned scale, unsigned edge_factor = 8,
                       std::uint64_t seed = 42, double max_weight = 100.0) {
    graph::rmat_params p;
    p.scale = scale;
    p.edge_factor = edge_factor;
    return workload{vertex_id{1} << scale, graph::rmat(p, seed), seed ^ 0x77, max_weight};
  }

  static workload erdos_renyi(vertex_id n, std::uint64_t m, std::uint64_t seed = 42,
                              double max_weight = 100.0) {
    return workload{n, graph::erdos_renyi(n, m, seed), seed ^ 0x77, max_weight};
  }

  distributed_graph build(ampp::rank_t ranks, bool bidirectional = false) const {
    return distributed_graph(n, edges, distribution::cyclic(n, ranks), bidirectional);
  }

  distributed_graph build_symmetric(ampp::rank_t ranks) const {
    return distributed_graph(n, graph::symmetrize(edges),
                             distribution::cyclic(n, ranks));
  }

  pmap::edge_property_map<double> weights(const distributed_graph& g) const {
    const std::uint64_t s = weight_seed;
    const double mw = max_weight;
    return pmap::edge_property_map<double>(
        g, [s, mw](const edge_handle& e) { return graph::edge_weight(e.src, e.dst, s, mw); });
  }
};

/// Publishes an obs::stats_scope delta as benchmark counters (optionally
/// namespaced by `prefix` for multi-phase benchmarks). The standard way for
/// bench binaries to report message economy per measured region.
inline void report_stats(benchmark::State& state, const obs::stats_snapshot& d,
                         const std::string& prefix = "") {
  state.counters[prefix + "messages"] = static_cast<double>(d.core.messages_sent);
  state.counters[prefix + "envelopes"] = static_cast<double>(d.core.envelopes_sent);
  state.counters[prefix + "bytes"] = static_cast<double>(d.core.bytes_sent);
  state.counters[prefix + "wire_bytes"] = static_cast<double>(d.core.wire_bytes_sent);
  state.counters[prefix + "td_rounds"] = static_cast<double>(d.core.td_rounds);
  state.counters[prefix + "cache_hits"] = static_cast<double>(d.core.cache_hits);
  state.counters[prefix + "cache_evictions"] = static_cast<double>(d.core.cache_evictions);
  state.counters[prefix + "dropped"] = static_cast<double>(d.core.envelopes_dropped);
  state.counters[prefix + "retried"] = static_cast<double>(d.core.envelopes_retried);
  state.counters[prefix + "duplicated"] = static_cast<double>(d.core.envelopes_duplicated);
  state.counters[prefix + "delayed"] = static_cast<double>(d.core.envelopes_delayed);
  state.counters[prefix + "dup_suppressed"] =
      static_cast<double>(d.core.duplicates_suppressed);
  state.counters[prefix + "lane_visits"] = static_cast<double>(d.core.flush_lane_visits);
  state.counters[prefix + "lane_skips"] = static_cast<double>(d.core.flush_lane_skips);
  state.counters[prefix + "pool_reuses"] = static_cast<double>(d.core.pool_reuses);
  state.counters[prefix + "batch_records"] = static_cast<double>(d.core.batch_records);
  state.counters[prefix + "batch_kernels"] =
      static_cast<double>(d.core.batch_kernels_run);
  state.counters[prefix + "graph_mutations"] = static_cast<double>(d.core.graph_mutations);
  state.counters[prefix + "delta_edges"] = static_cast<double>(d.core.delta_edges);
  state.counters[prefix + "tombstoned_edges"] =
      static_cast<double>(d.core.tombstoned_edges);
}

}  // namespace dpg::bench
