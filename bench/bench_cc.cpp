// Experiments F3 + Q6 (DESIGN.md §4): the Fig. 3 parallel-search connected
// components algorithm.
//
// Series reported:
//   * parallel search CC vs the sequential baselines (union-find, label
//     propagation), with counters for searches seeded, conflict pairs
//     recorded, and pointer-jump rounds;
//   * the epoch_flush ablation (Q6): flushing between seeds lets running
//     searches claim territory first, so fewer redundant searches start
//     and fewer conflicts need rewriting.
#include <benchmark/benchmark.h>

#include "algo/baselines.hpp"
#include "algo/cc.hpp"
#include "common.hpp"

namespace dpg::bench {
namespace {

// A graph with a giant component plus fragments: ER at the connectivity
// threshold region.
const workload& wl() {
  static workload w = workload::erdos_renyi(4000, 4400, 9);
  return w;
}

void BM_CcParallelSearch(benchmark::State& state) {
  const auto ranks = static_cast<ampp::rank_t>(state.range(0));
  const bool flush = state.range(1) != 0;
  auto g = wl().build_symmetric(ranks);
  algo::cc_solver cc(g, ampp::transport_config{.n_ranks = ranks});
  for (auto _ : state) cc.solve(flush);
  state.counters["seeded"] = static_cast<double>(cc.searches_seeded());
  state.counters["conflicts"] = static_cast<double>(cc.conflict_pairs());
  state.counters["jump_rounds"] = static_cast<double>(cc.jump_rounds());
  state.counters["search_msgs"] = static_cast<double>(cc.search_messages());
}
BENCHMARK(BM_CcParallelSearch)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({2, 0})   // Q6 ablation: no epoch_flush between seeds
    ->Args({4, 0})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_CcUnionFindBaseline(benchmark::State& state) {
  auto g = wl().build_symmetric(1);
  std::size_t comps = 0;
  for (auto _ : state) {
    auto labels = algo::cc_union_find(g);
    comps = algo::count_components(labels);
    benchmark::DoNotOptimize(labels);
  }
  state.counters["components"] = static_cast<double>(comps);
}
BENCHMARK(BM_CcUnionFindBaseline)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_CcLabelPropagationBaseline(benchmark::State& state) {
  auto g = wl().build_symmetric(1);
  for (auto _ : state) {
    auto labels = algo::cc_label_propagation(g);
    benchmark::DoNotOptimize(labels);
  }
}
BENCHMARK(BM_CcLabelPropagationBaseline)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace dpg::bench

BENCHMARK_MAIN();
