// Supplementary experiment: PageRank via the scatter pattern vs the
// sequential power-iteration baseline — bounds the cost of expressing an
// accumulate-style algorithm declaratively (the `modify` statement path,
// which always takes the lock-map route).
#include <benchmark/benchmark.h>

#include "algo/baselines.hpp"
#include "algo/pagerank.hpp"
#include "common.hpp"

namespace dpg::bench {
namespace {

constexpr int kIters = 10;

const workload& wl() {
  static workload w = workload::rmat(10, 8);
  return w;
}

void BM_PageRankPattern(benchmark::State& state) {
  const auto ranks = static_cast<ampp::rank_t>(state.range(0));
  auto g = wl().build(ranks);
  ampp::transport tp(ampp::transport_config{.n_ranks = ranks});
  algo::pagerank_solver pr(tp, g);
  for (auto _ : state) {
    tp.run([&](ampp::transport_context& ctx) { pr.run(ctx, 0.85, kIters); });
  }
  state.counters["iters"] = kIters;
}
BENCHMARK(BM_PageRankPattern)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PageRankBaseline(benchmark::State& state) {
  auto g = wl().build(1);
  for (auto _ : state) {
    auto r = algo::pagerank(g, 0.85, kIters);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PageRankBaseline)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace dpg::bench

BENCHMARK_MAIN();
