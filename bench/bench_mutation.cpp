// Experiment FW2 (DESIGN.md §4/§7): graph mutation at the non-morphing
// boundary — warm-started incremental SSSP repair vs a cold re-solve after
// adding shortcut edges. Expected shape: the warm repair performs a small
// fraction of the cold solve's relaxations and wall time, because the
// dependency mechanism only re-touches the part of the shortest-path tree
// the new edges actually improve.
#include <benchmark/benchmark.h>

#include "algo/sssp.hpp"
#include "common.hpp"
#include "strategy/strategies.hpp"

namespace dpg::bench {
namespace {

constexpr ampp::rank_t kRanks = 2;

const workload& wl() {
  static workload w = workload::erdos_renyi(4000, 24000, 9, 20.0);
  return w;
}

std::vector<graph::edge> shortcut_edges(int count) {
  std::vector<graph::edge> extra;
  dpg::xoshiro256ss rng(3);
  for (int i = 0; i < count; ++i) extra.push_back({rng.below(wl().n), rng.below(wl().n)});
  return extra;
}

void BM_MutationColdResolve(benchmark::State& state) {
  const auto extra = shortcut_edges(static_cast<int>(state.range(0)));
  auto base = wl().build(kRanks);
  auto g2 = graph::with_added_edges(base, extra);
  auto w2 = wl().weights(g2);
  ampp::transport tp(ampp::transport_config{.n_ranks = kRanks});
  algo::sssp_solver solver(tp, g2, w2);
  strategy::result last;
  for (auto _ : state) {
    tp.run([&](ampp::transport_context& ctx) {
      const strategy::result r = solver.run_delta(ctx, 0, 5.0);
      if (ctx.rank() == 0) last = r;
    });
  }
  state.counters["relaxations"] = static_cast<double>(last.modifications);
}
BENCHMARK(BM_MutationColdResolve)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_MutationWarmRepair(benchmark::State& state) {
  const auto extra = shortcut_edges(static_cast<int>(state.range(0)));
  auto base = wl().build(kRanks);
  auto w1 = wl().weights(base);
  auto g2 = graph::with_added_edges(base, extra);
  auto w2 = wl().weights(g2);

  // Solve once on the base graph; its distances seed every warm repair.
  ampp::transport tp1(ampp::transport_config{.n_ranks = kRanks});
  algo::sssp_solver base_solver(tp1, base, w1);
  tp1.run([&](ampp::transport_context& ctx) { base_solver.run_delta(ctx, 0, 5.0); });

  ampp::transport tp2(ampp::transport_config{.n_ranks = kRanks});
  algo::sssp_solver solver(tp2, g2, w2);
  strategy::result last;
  for (auto _ : state) {
    for (ampp::rank_t r = 0; r < kRanks; ++r) {
      auto src = base_solver.dist().local(r);
      std::copy(src.begin(), src.end(), solver.dist().local(r).begin());
    }
    tp2.run([&](ampp::transport_context& ctx) {
      std::vector<vertex_id> seeds;
      for (const auto& e : extra)
        if (g2.owner(e.src) == ctx.rank()) seeds.push_back(e.src);
      const strategy::result r = strategy::fixed_point(ctx, solver.relax(), seeds);
      if (ctx.rank() == 0) last = r;
    });
  }
  state.counters["relaxations"] = static_cast<double>(last.modifications);
}
BENCHMARK(BM_MutationWarmRepair)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace dpg::bench

BENCHMARK_MAIN();
