// Experiment FW2 (DESIGN.md §4/§7): graph mutation at the non-morphing
// boundary — in-place incremental SSSP repair vs a cold re-solve after
// adding shortcut edges. The warm path performs ZERO reconstruction: the
// shortcut edges are applied once through apply_edges() (delta-CSR
// overlay), the weight map grows lazily from its stored init function, and
// each iteration only restores the pre-mutation distance labels and replays
// the relax pattern from the mutation sites via sssp_solver::repair().
// Expected shape: the warm repair performs a small fraction of the cold
// solve's relaxations and wall time, because the dependency mechanism only
// re-touches the part of the shortest-path tree the new edges improve.
#include <benchmark/benchmark.h>

#include "algo/sssp.hpp"
#include "common.hpp"
#include "strategy/strategies.hpp"

namespace dpg::bench {
namespace {

constexpr ampp::rank_t kRanks = 2;

const workload& wl() {
  static workload w = workload::erdos_renyi(4000, 24000, 9, 20.0);
  return w;
}

std::vector<graph::edge> shortcut_edges(int count) {
  std::vector<graph::edge> extra;
  dpg::xoshiro256ss rng(3);
  for (int i = 0; i < count; ++i) extra.push_back({rng.below(wl().n), rng.below(wl().n)});
  return extra;
}

/// Cold baseline: full re-solve on the already-mutated topology (same
/// delta-CSR overlay the warm path sees, so the comparison is purely
/// "replay everything" vs "replay from the mutation sites").
void BM_MutationColdResolve(benchmark::State& state) {
  const auto extra = shortcut_edges(static_cast<int>(state.range(0)));
  auto g = wl().build(kRanks);
  auto w = wl().weights(g);
  g.apply_edges(extra);
  ampp::transport tp(ampp::transport_config{.n_ranks = kRanks});
  algo::sssp_solver solver(tp, g, w);
  strategy::result last;
  for (auto _ : state) {
    tp.run([&](ampp::transport_context& ctx) {
      const strategy::result r = solver.run_delta(ctx, 0, 5.0);
      if (ctx.rank() == 0) last = r;
    });
  }
  state.counters["relaxations"] = static_cast<double>(last.modifications);
  state.counters["delta_edges"] = static_cast<double>(g.total_delta_edges());
}
BENCHMARK(BM_MutationColdResolve)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_MutationWarmRepair(benchmark::State& state) {
  const auto extra = shortcut_edges(static_cast<int>(state.range(0)));
  auto g = wl().build(kRanks);
  auto w = wl().weights(g);

  // Solve once on the base topology; its labels seed every warm repair.
  ampp::transport tp(ampp::transport_config{.n_ranks = kRanks});
  g.attach_stats(tp.stats());
  algo::sssp_solver solver(tp, g, w);
  tp.run([&](ampp::transport_context& ctx) { solver.run_delta(ctx, 0, 5.0); });
  std::vector<std::vector<double>> base_dist(kRanks);
  for (ampp::rank_t r = 0; r < kRanks; ++r) {
    auto s = solver.dist().local(r);
    base_dist[r].assign(s.begin(), s.end());
  }

  // The mutation happens ONCE, in place: graph, weight map, solver, and
  // compiled plan all survive it. No object in the hot loop is rebuilt.
  std::vector<vertex_id> sources;
  for (const auto& e : extra) sources.push_back(e.src);
  g.apply_edges(extra);

  strategy::result last;
  for (auto _ : state) {
    for (ampp::rank_t r = 0; r < kRanks; ++r) {
      auto dst = solver.dist().local(r);
      std::copy(base_dist[r].begin(), base_dist[r].end(), dst.begin());
    }
    tp.run([&](ampp::transport_context& ctx) {
      const strategy::result r = solver.repair(ctx, sources);
      if (ctx.rank() == 0) last = r;
    });
  }
  state.counters["relaxations"] = static_cast<double>(last.modifications);
  state.counters["delta_edges"] = static_cast<double>(g.total_delta_edges());
  state.counters["graph_mutations"] =
      static_cast<double>(tp.stats().graph_mutations.load(std::memory_order_relaxed));
}
BENCHMARK(BM_MutationWarmRepair)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace dpg::bench

BENCHMARK_MAIN();
