// Experiment Q2 (DESIGN.md §4): the AM++ caching/reduction claim —
// "caching allows to avoid unnecessary message sends and the corresponding
// handler calls in algorithms that produce potentially large amounts of
// repetitive work".
//
// Workload: a relaxation stream over a power-law (R-MAT) vertex set, where
// hubs receive many duplicate updates. Series: cache off vs on across
// cache sizes; counters report the measured hit rate and handler savings.
#include <benchmark/benchmark.h>

#include <atomic>

#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"
#include "common.hpp"

namespace dpg::bench {
namespace {

struct relax_payload {
  std::uint64_t vertex;
  double dist;
};

/// Generates a skewed stream of (vertex, dist) updates: vertex ids drawn
/// from the R-MAT edge targets so hubs repeat heavily.
const std::vector<std::uint64_t>& skewed_targets() {
  static std::vector<std::uint64_t> targets = [] {
    auto w = workload::rmat(10, 16);
    std::vector<std::uint64_t> t;
    t.reserve(w.edges.size());
    for (const auto& e : w.edges) t.push_back(e.dst);
    return t;
  }();
  return targets;
}

void run_case(benchmark::State& state, bool cache_on, unsigned cache_bits) {
  constexpr ampp::rank_t kRanks = 2;
  ampp::transport tp(ampp::transport_config{.n_ranks = kRanks, .coalescing_size = 512});
  std::atomic<std::uint64_t> handled{0};
  auto& mt = tp.make_message_type<relax_payload>(
      "relax", [&](ampp::transport_context&, const relax_payload&) {
        handled.fetch_add(1, std::memory_order_relaxed);
      });
  if (cache_on) {
    mt.enable_reduction(
        [](const relax_payload& p) { return p.vertex; },
        [](const relax_payload& a, const relax_payload& b) {
          return a.dist <= b.dist ? a : b;
        },
        cache_bits);
  }
  const auto& targets = skewed_targets();
  for (auto _ : state) {
    tp.run([&](ampp::transport_context& ctx) {
      ampp::epoch ep(ctx);
      if (ctx.rank() == 0) {
        double d = 1e9;
        for (const std::uint64_t t : targets) {
          mt.send(ctx, 1, relax_payload{t, d});
          d -= 0.001;  // monotonically improving: all combinable
        }
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(targets.size()) * state.iterations());
  const obs::counters s = tp.obs().snapshot().core;
  state.counters["handler_calls"] = static_cast<double>(s.handler_invocations);
  state.counters["cache_hits"] = static_cast<double>(s.cache_hits);
  state.counters["hit_rate"] =
      s.cache_hits ? static_cast<double>(s.cache_hits) /
                         static_cast<double>(targets.size() * state.iterations())
                   : 0.0;
}

void BM_ReductionOff(benchmark::State& state) { run_case(state, false, 0); }
BENCHMARK(BM_ReductionOff)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ReductionOn(benchmark::State& state) {
  run_case(state, true, static_cast<unsigned>(state.range(0)));
}
BENCHMARK(BM_ReductionOn)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace dpg::bench

BENCHMARK_MAIN();
