// Distribution ablation (DESIGN.md §3: block / cyclic / hashed): the
// paper's model is distribution-oblivious ("it is not predictable which
// parts of the graph are colocated", §I) — algorithms must be correct under
// any placement, but placement changes the *locality* of the synthesized
// messages. This benchmark quantifies that: the fraction of pattern
// messages whose destination is the sending rank (self deliveries) and the
// end-to-end SSSP time for each scheme, on a locality-friendly topology
// (2-D grid) and a locality-hostile one (R-MAT).
#include <benchmark/benchmark.h>

#include "algo/sssp.hpp"
#include "common.hpp"

namespace dpg::bench {
namespace {

distribution make_dist(int kind, vertex_id n, ampp::rank_t ranks) {
  switch (kind) {
    case 0: return distribution::block(n, ranks);
    case 1: return distribution::cyclic(n, ranks);
    default: return distribution::hashed(n, ranks, 5);
  }
}

void run_case(benchmark::State& state, bool grid) {
  const int kind = static_cast<int>(state.range(0));
  constexpr ampp::rank_t kRanks = 4;
  vertex_id n;
  std::vector<graph::edge> edges;
  if (grid) {
    n = 48 * 48;
    edges = graph::grid_graph(48, 48);
  } else {
    graph::rmat_params p;
    p.scale = 11;
    n = vertex_id{1} << p.scale;
    edges = graph::rmat(p, 42);
  }
  graph::distributed_graph g(n, edges, make_dist(kind, n, kRanks));
  pmap::edge_property_map<double> weight(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 3, 10.0);
  });
  ampp::transport tp(ampp::transport_config{.n_ranks = kRanks});
  algo::sssp_solver solver(tp, g, weight);
  std::uint64_t msgs = 0, self = 0;
  for (auto _ : state) {
    obs::stats_scope sc(tp.obs());
    tp.run([&](ampp::transport_context& ctx) { solver.run_delta(ctx, 0, 20.0); });
    const obs::stats_snapshot& d = sc.finish();
    msgs = d.core.messages_sent;
    self = d.core.self_deliveries;
  }
  state.counters["messages"] = static_cast<double>(msgs);
  state.counters["local_frac"] =
      msgs ? static_cast<double>(self) / static_cast<double>(msgs) : 0.0;
}

void BM_DistributionGrid(benchmark::State& state) { run_case(state, true); }
BENCHMARK(BM_DistributionGrid)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_DistributionRmat(benchmark::State& state) { run_case(state, false); }
BENCHMARK(BM_DistributionRmat)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace dpg::bench

BENCHMARK_MAIN();
