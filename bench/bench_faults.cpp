// Overhead of the fault-injection layer: the same Δ-stepping workload with
// no plan, pure reordering, 30% loss (ack-timeout + retransmit), and full
// chaos. The "none" row doubles as the regression guard for the clean
// path — an inactive fault_plan must cost nothing beyond one branch per
// envelope.
#include <benchmark/benchmark.h>

#include <atomic>

#include "algo/sssp.hpp"
#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"
#include "common.hpp"

namespace dpg::bench {
namespace {

ampp::fault_plan plan_for(int kind, std::uint64_t seed) {
  switch (kind) {
    case 1:
      return ampp::fault_plan::scramble(seed);
    case 2:
      return ampp::fault_plan::lossy(seed);
    case 3:
      return ampp::fault_plan::chaos(seed);
    default:
      return ampp::fault_plan::none();
  }
}

const char* plan_name(int kind) {
  static const char* names[] = {"none", "scramble", "lossy", "chaos"};
  return names[kind];
}

struct token {
  std::uint64_t x;
};

void BM_PumpUnderFaults(benchmark::State& state) {
  // Raw transport throughput: an all-to-all pump with small envelopes, so
  // the per-envelope fault bookkeeping dominates.
  const int kind = static_cast<int>(state.range(0));
  constexpr ampp::rank_t kRanks = 4;
  ampp::transport tp(ampp::transport_config{.n_ranks = kRanks,
                                            .coalescing_size = 16,
                                            .seed = 11,
                                            .faults = plan_for(kind, 11)});
  std::atomic<std::uint64_t> handled{0};
  auto& mt = tp.make_message_type<token>(
      "pump", [&](ampp::transport_context&, const token&) { ++handled; });
  for (auto _ : state) {
    tp.run([&](ampp::transport_context& ctx) {
      ampp::epoch ep(ctx);
      for (int i = 0; i < 2000; ++i)
        mt.send(ctx, static_cast<ampp::rank_t>((ctx.rank() + 1 + i % (kRanks - 1)) % kRanks),
                token{static_cast<std::uint64_t>(i)});
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(handled.load()));
  state.SetLabel(plan_name(kind));
  const auto s = tp.obs().snapshot();
  state.counters["dropped"] = static_cast<double>(s.core.envelopes_dropped);
  state.counters["duplicated"] = static_cast<double>(s.core.envelopes_duplicated);
  state.counters["delayed"] = static_cast<double>(s.core.envelopes_delayed);
}
BENCHMARK(BM_PumpUnderFaults)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SsspDeltaUnderFaults(benchmark::State& state) {
  // End-to-end: how much chaos slows a real algorithm down (the answer the
  // abstraction-overhead experiments need a baseline for).
  const int kind = static_cast<int>(state.range(0));
  const auto w = workload::erdos_renyi(1 << 10, 1 << 13, 11, 16.0);
  constexpr ampp::rank_t kRanks = 4;
  const auto g = w.build(kRanks);
  auto weight = w.weights(g);
  ampp::transport tp(ampp::transport_config{.n_ranks = kRanks,
                                            .coalescing_size = 64,
                                            .seed = 11,
                                            .faults = plan_for(kind, 11)});
  algo::sssp_solver solver(tp, g, weight);
  for (auto _ : state) {
    tp.run([&](ampp::transport_context& ctx) { solver.run_delta(ctx, 0, 4.0); });
  }
  state.SetLabel(plan_name(kind));
  const auto s = tp.obs().snapshot();
  state.counters["retries"] = static_cast<double>(s.core.envelopes_retried);
}
BENCHMARK(BM_SsspDeltaUnderFaults)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace dpg::bench

BENCHMARK_MAIN();
