// Multi-pattern fusion (ISSUE 9): fused SSSP + widest-path + BFS-tree in
// one traversal wave vs the three analytics solved separately.
//
// Series reported:
//   * BM_FusedTriple     — one fused fixed point (one epoch loop, one
//     termination detection, one coalesced envelope stream);
//   * BM_SeparateTriple  — the sum-of-separate baseline: three solvers on
//     three transports, run back-to-back per iteration, message economy
//     reported per member (sssp_/widest_/bfs_ prefixes).
//
// The CI fusion stage asserts BM_FusedTriple/2 < BM_SeparateTriple/2 on
// both wall time and total wire bytes (ratio < 1.0). All members share
// one source here: maximal wave overlap is the workload fusion exists
// for (the serving layer's merged-query batching), and the sim sweep
// already covers the distinct-source grid.
#include <benchmark/benchmark.h>

#include "algo/bfs.hpp"
#include "algo/fused.hpp"
#include "algo/sssp.hpp"
#include "algo/widest_path.hpp"
#include "common.hpp"

namespace dpg::bench {
namespace {

constexpr unsigned kScale = 11;      // 2048 vertices, ~16k edges
constexpr unsigned kEdgeFactor = 8;
constexpr vertex_id kSource = 0;

const workload& wl() {
  static workload w = workload::rmat(kScale, kEdgeFactor);
  return w;
}

/// Edge capacities for the widest-path member: same hashed-weight scheme
/// as wl().weights but salted differently, so the two edge maps disagree.
pmap::edge_property_map<double> capacities(const distributed_graph& g) {
  return pmap::edge_property_map<double>(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 1337, 50.0);
  });
}

void BM_FusedTriple(benchmark::State& state) {
  const auto ranks = static_cast<ampp::rank_t>(state.range(0));
  auto g = wl().build(ranks);
  auto weight = wl().weights(g);
  auto cap = capacities(g);
  ampp::transport tp(ampp::transport_config{.n_ranks = ranks});
  algo::fused_triple_solver fused(tp, g, weight, cap);
  strategy::result last;
  obs::stats_snapshot delta;
  for (auto _ : state) {
    obs::stats_scope sc(tp.obs(), &delta);
    tp.run([&](ampp::transport_context& ctx) {
      const strategy::result r =
          fused.run(ctx, {.sssp = kSource, .widest = kSource, .bfs = kSource});
      if (ctx.rank() == 0) last = r;
    });
  }
  state.counters["modifications"] = static_cast<double>(last.modifications);
  state.counters["edges"] = static_cast<double>(g.num_edges());
  state.counters["fused_record_bytes"] =
      static_cast<double>(fused.layout().record_bytes);
  report_stats(state, delta);
}
BENCHMARK(BM_FusedTriple)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SeparateTriple(benchmark::State& state) {
  const auto ranks = static_cast<ampp::rank_t>(state.range(0));
  auto g = wl().build(ranks);
  auto weight = wl().weights(g);
  auto cap = capacities(g);
  // Three transports, one per analytic — each run pays its own epochs and
  // termination detection, exactly as three independent jobs would.
  ampp::transport stp(ampp::transport_config{.n_ranks = ranks});
  algo::sssp_solver sssp(stp, g, weight);
  ampp::transport wtp(ampp::transport_config{.n_ranks = ranks});
  algo::widest_path_solver widest(wtp, g, cap);
  ampp::transport btp(ampp::transport_config{.n_ranks = ranks});
  algo::bfs_solver bfs(btp, g);
  obs::stats_snapshot sd, wd, bd;
  for (auto _ : state) {
    obs::stats_scope ss(stp.obs(), &sd);
    obs::stats_scope ws(wtp.obs(), &wd);
    obs::stats_scope bs(btp.obs(), &bd);
    stp.run([&](ampp::transport_context& ctx) { sssp.run_fixed_point(ctx, kSource); });
    wtp.run([&](ampp::transport_context& ctx) { widest.run(ctx, kSource); });
    btp.run([&](ampp::transport_context& ctx) { bfs.run_fixed_point(ctx, kSource); });
  }
  state.counters["edges"] = static_cast<double>(g.num_edges());
  report_stats(state, sd, "sssp_");
  report_stats(state, wd, "widest_");
  report_stats(state, bd, "bfs_");
  // The aggregate the CI wire-ratio guard divides by.
  state.counters["wire_bytes_total"] =
      static_cast<double>(sd.core.wire_bytes_sent + wd.core.wire_bytes_sent +
                          bd.core.wire_bytes_sent);
}
BENCHMARK(BM_SeparateTriple)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace dpg::bench

BENCHMARK_MAIN();
