// Experiments Q3 + Q7 (DESIGN.md §4): epoch and termination-detection
// overhead.
//
// Series:
//   * empty-epoch cost vs rank count — the fixed price of the message-based
//     four-counter protocol (expected: a small constant, growing mildly
//     with ranks);
//   * epoch cost vs message volume — detection cost amortizes: TD rounds
//     per epoch stay O(1) while work grows;
//   * end() vs try_finish()-loop termination styles on identical work
//     (Q7: the uncoordinated style costs about the same).
#include <benchmark/benchmark.h>

#include <atomic>

#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"
#include "common.hpp"

namespace dpg::bench {
namespace {

struct token {
  std::uint64_t hops;
};

void BM_EmptyEpoch(benchmark::State& state) {
  const auto ranks = static_cast<ampp::rank_t>(state.range(0));
  ampp::transport tp(ampp::transport_config{.n_ranks = ranks});
  for (auto _ : state) {
    tp.run([&](ampp::transport_context& ctx) {
      for (int i = 0; i < 100; ++i) ampp::epoch ep(ctx);
    });
  }
  state.SetItemsProcessed(100 * state.iterations());
  state.counters["td_rounds_total"] = static_cast<double>(tp.obs().snapshot().core.td_rounds);
}
BENCHMARK(BM_EmptyEpoch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_EpochWithWork(benchmark::State& state) {
  // One epoch carrying `range(0)` messages of parallel (fan-out) work:
  // termination-detection rounds per epoch must stay O(1) as the work
  // inside grows — detection cost amortizes over real work.
  const std::uint64_t volume = static_cast<std::uint64_t>(state.range(0));
  constexpr ampp::rank_t kRanks = 4;
  ampp::transport tp(ampp::transport_config{.n_ranks = kRanks});
  auto& mt = tp.make_message_type<token>(
      "bulk", [](ampp::transport_context&, const token& t) { benchmark::DoNotOptimize(t); });
  std::uint64_t epochs = 0;
  for (auto _ : state) {
    tp.run([&](ampp::transport_context& ctx) {
      ampp::epoch ep(ctx);
      dpg::xoshiro256ss rng(ctx.rank() + 7);
      for (std::uint64_t i = 0; i < volume / kRanks; ++i)
        mt.send(ctx, static_cast<ampp::rank_t>(rng.below(kRanks)), token{0});
    });
    ++epochs;
  }
  state.counters["td_rounds_per_epoch"] =
      static_cast<double>(tp.obs().snapshot().core.td_rounds) / static_cast<double>(epochs);
  state.counters["msgs_per_epoch"] = static_cast<double>(volume);
}
BENCHMARK(BM_EpochWithWork)->Arg(0)->Arg(100)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_EpochSerialChain(benchmark::State& state) {
  // Worst case for any termination detector: one strictly serial message
  // chain — every other rank is idle and keeps probing. TD rounds grow
  // with chain length here; this bounds the protocol from the bad side.
  const std::uint64_t chain = static_cast<std::uint64_t>(state.range(0));
  constexpr ampp::rank_t kRanks = 4;
  ampp::transport tp(ampp::transport_config{.n_ranks = kRanks});
  ampp::message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("chain", [&](ampp::transport_context& ctx,
                                                      const token& t) {
    if (t.hops > 0) mtp->send(ctx, (ctx.rank() + 1) % kRanks, token{t.hops - 1});
  });
  mtp = &mt;
  std::uint64_t epochs = 0;
  for (auto _ : state) {
    tp.run([&](ampp::transport_context& ctx) {
      ampp::epoch ep(ctx);
      if (ctx.rank() == 0) mt.send(ctx, 1, token{chain});
    });
    ++epochs;
  }
  state.counters["td_rounds_per_epoch"] =
      static_cast<double>(tp.obs().snapshot().core.td_rounds) / static_cast<double>(epochs);
}
BENCHMARK(BM_EpochSerialChain)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_TerminationEndVsTryFinish(benchmark::State& state) {
  // Identical message tree; range(0)==0 ends with end(), ==1 with a
  // try_finish loop (the §III-D uncoordinated style).
  const bool use_try_finish = state.range(0) != 0;
  constexpr ampp::rank_t kRanks = 4;
  ampp::transport tp(ampp::transport_config{.n_ranks = kRanks, .coalescing_size = 16});
  ampp::message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("tree", [&](ampp::transport_context& ctx,
                                                     const token& t) {
    if (t.hops > 0) {
      mtp->send(ctx, (ctx.rank() + 1) % kRanks, token{t.hops - 1});
      mtp->send(ctx, (ctx.rank() + 2) % kRanks, token{t.hops - 1});
    }
  });
  mtp = &mt;
  for (auto _ : state) {
    tp.run([&](ampp::transport_context& ctx) {
      ampp::epoch ep(ctx);
      if (ctx.rank() == 0) mt.send(ctx, 1, token{14});
      if (use_try_finish) {
        while (!ep.try_finish()) {
        }
      } else {
        ep.end();
      }
    });
  }
  state.counters["style"] = use_try_finish ? 1 : 0;
}
BENCHMARK(BM_TerminationEndVsTryFinish)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace dpg::bench

BENCHMARK_MAIN();
