// Wire-backend microbenchmarks (ISSUE 8): per-frame cost of the shm SPSC
// ring and the TCP loopback mesh, both ends hosted in this process with an
// explicit channel (the same trick tests/ampp/backend_test.cpp uses). The
// numbers bound what a cross-process machine pays per envelope on top of
// the in-process inbox push, per payload size.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <vector>

#include "ampp/backend.hpp"

namespace {

using namespace dpg;

std::uint32_t next_channel() {
  static std::atomic<std::uint32_t> c{5000};  // clear of any transport's channels
  return c.fetch_add(1);
}

ampp::backend_config bench_cfg(ampp::backend_config::kind_t kind, ampp::rank_t self,
                               std::uint32_t channel) {
  ampp::backend_config cfg;
  cfg.kind = kind;
  cfg.self_rank = self;
  cfg.session = "bench" + std::to_string(::getpid());
  cfg.base_port = static_cast<std::uint16_t>(21000 + (::getpid() % 2048) * 16);
  cfg.ring_bytes = 1u << 20;
  cfg.channel = static_cast<std::int32_t>(channel);
  return cfg;
}

/// A 2-rank machine, both backends in this process.
struct pair_machine {
  std::unique_ptr<ampp::wire_backend> a, b;

  explicit pair_machine(ampp::backend_config::kind_t kind) {
    const std::uint32_t channel = next_channel();
    auto fa = std::async(std::launch::async,
                         [&] { return ampp::make_backend(bench_cfg(kind, 0, channel), 2); });
    auto fb = std::async(std::launch::async,
                         [&] { return ampp::make_backend(bench_cfg(kind, 1, channel), 2); });
    a = fa.get();
    b = fb.get();
  }
};

void send_drain_loop(benchmark::State& state, ampp::backend_config::kind_t kind) {
  const std::uint32_t payload_bytes = static_cast<std::uint32_t>(state.range(0));
  pair_machine m(kind);
  std::vector<std::byte> payload(payload_bytes, std::byte{0x5a});
  ampp::wire_header h;
  h.type_hash = ampp::wire_name_hash("bench.frame");
  h.count = 1;
  h.payload_bytes = payload_bytes;
  h.src = 0;
  std::uint64_t seq = 0;
  std::size_t sink_bytes = 0;
  const auto sink = [&](const ampp::wire_header& rh, const std::byte* p) {
    sink_bytes += rh.payload_bytes;
    benchmark::DoNotOptimize(p);
  };
  // Batches of 16 frames per drain amortize the poll() entry cost the way
  // the transport's own progress loop does.
  constexpr int kBatch = 16;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      h.seq = seq++;
      m.a->send(1, h, payload.data());
    }
    std::size_t got = 0;
    while (got < kBatch) got += m.b->poll(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(seq));
  state.SetBytesProcessed(static_cast<std::int64_t>(sink_bytes));
}

void BM_ShmRingSendDrain(benchmark::State& state) {
  send_drain_loop(state, ampp::backend_config::kind_t::shm_ring);
}

void BM_TcpLoopbackSendDrain(benchmark::State& state) {
  send_drain_loop(state, ampp::backend_config::kind_t::tcp);
}

BENCHMARK(BM_ShmRingSendDrain)->Arg(64)->Arg(1024)->Arg(16384)->UseRealTime();
BENCHMARK(BM_TcpLoopbackSendDrain)->Arg(64)->Arg(1024)->Arg(16384)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
