#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dpg {
namespace {

TEST(SplitMix64, DeterministicForFixedSeed) {
  splitmix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  splitmix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, DeterministicForFixedSeed) {
  xoshiro256ss a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BelowStaysInRange) {
  xoshiro256ss g(99);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      const auto v = g.below(bound);
      ASSERT_LT(v, bound) << "bound=" << bound;
    }
  }
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  xoshiro256ss g(5);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(g.below(1), 0u);
}

TEST(Xoshiro256, Uniform01InHalfOpenInterval) {
  xoshiro256ss g(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = g.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  // Mean of U(0,1) is 0.5; loose tolerance suited to 10k samples.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, UniformRespectsBounds) {
  xoshiro256ss g(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = g.uniform(3.0, 9.0);
    ASSERT_GE(v, 3.0);
    ASSERT_LT(v, 9.0);
  }
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  xoshiro256ss g(23);
  constexpr std::uint64_t kBuckets = 10;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[g.below(kBuckets)];
  for (auto c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(SubstreamSeed, AdjacentIndicesDecorrelated) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(substream_seed(42, i));
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions among 1000 substreams
}

TEST(SubstreamSeed, DependsOnRootSeed) {
  EXPECT_NE(substream_seed(1, 0), substream_seed(2, 0));
}

}  // namespace
}  // namespace dpg
