// Fault injection: adversarial (seeded random) delivery order, via
// fault_plan::scramble — the successor of the old scramble_delivery flag.
// Active messages promise nothing about ordering, so the runtime's own
// protocols (termination detection, collectives) and the algorithms built
// on top must all be order-insensitive. These tests falsify hidden FIFO
// assumptions.
#include <gtest/gtest.h>

#include <atomic>

#include "algo/baselines.hpp"
#include "algo/sssp.hpp"
#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"
#include "graph/generators.hpp"

namespace dpg::ampp {
namespace {

struct token {
  std::uint64_t depth;
};

TEST(ScrambledDelivery, EpochStillWaitsForAllCascades) {
  constexpr rank_t kRanks = 4;
  constexpr std::uint64_t kDepth = 9;
  transport tp(transport_config{.n_ranks = kRanks,
                                .coalescing_size = 4,
                                .seed = 99,
                                .faults = fault_plan::scramble(99)});
  std::atomic<std::uint64_t> handled{0};
  message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("tree", [&](transport_context& ctx, const token& t) {
    ++handled;
    if (t.depth > 0) {
      mtp->send(ctx, (ctx.rank() + 1) % kRanks, token{t.depth - 1});
      mtp->send(ctx, (ctx.rank() + 3) % kRanks, token{t.depth - 1});
    }
  });
  mtp = &mt;
  for (int trial = 0; trial < 3; ++trial) {
    handled = 0;
    tp.run([&](transport_context& ctx) {
      epoch ep(ctx);
      if (ctx.rank() == 0) mt.send(ctx, 1, token{kDepth});
    });
    ASSERT_EQ(handled.load(), (1ULL << (kDepth + 1)) - 1);
  }
}

TEST(ScrambledDelivery, CollectivesSurviveReordering) {
  constexpr rank_t kRanks = 5;
  transport tp(
      transport_config{.n_ranks = kRanks, .seed = 7, .faults = fault_plan::scramble(7)});
  tp.run([&](transport_context& ctx) {
    for (std::uint64_t i = 0; i < 50; ++i)
      ASSERT_EQ(ctx.allreduce_sum<std::uint64_t>(i + ctx.rank()),
                kRanks * i + kRanks * (kRanks - 1) / 2);
  });
}

TEST(ScrambledDelivery, SsspStillMatchesDijkstra) {
  using namespace dpg;
  const graph::vertex_id n = 120;
  const auto edges = graph::erdos_renyi(n, 900, 31);
  graph::distributed_graph g(n, edges, graph::distribution::cyclic(n, 3));
  pmap::edge_property_map<double> weight(g, [](const graph::edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 17, 6.0);
  });
  const auto oracle = algo::dijkstra(g, weight, 0);
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    transport tp(transport_config{.n_ranks = 3,
                                  .coalescing_size = 8,
                                  .seed = seed,
                                  .faults = fault_plan::scramble(seed)});
    algo::sssp_solver solver(tp, g, weight);
    tp.run([&](transport_context& ctx) { solver.run_delta(ctx, 0, 3.0); });
    for (graph::vertex_id v = 0; v < n; ++v)
      ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v]) << "seed=" << seed;
  }
}

TEST(ScrambledDelivery, DeterministicForFixedSeed) {
  // Same seed => same reorder-placement decisions => identical handler
  // order on a single rank (where no thread interleaving can differ).
  auto run_once = [](std::uint64_t seed) {
    transport tp(transport_config{.n_ranks = 1,
                                  .coalescing_size = 1,
                                  .seed = seed,
                                  .faults = fault_plan::scramble(seed)});
    std::vector<std::uint64_t> order;
    auto& mt = tp.make_message_type<token>(
        "t", [&](transport_context&, const token& t) { order.push_back(t.depth); });
    tp.run([&](transport_context& ctx) {
      epoch ep(ctx);
      for (std::uint64_t i = 0; i < 32; ++i) mt.send(ctx, 0, token{i});
    });
    return order;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

}  // namespace
}  // namespace dpg::ampp
