// Unit tests for the active-message transport: typed message delivery,
// handler chaining (handlers sending messages), coalescing accounting,
// object-based addressing, and multi-run reuse.
#include "ampp/transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "ampp/epoch.hpp"

namespace dpg::ampp {
namespace {

struct ping {
  std::uint64_t value;
  rank_t target;
};

TEST(Transport, SingleRankSelfDelivery) {
  transport tp(transport_config{.n_ranks = 1});
  std::atomic<std::uint64_t> sum{0};
  auto& mt = tp.make_message_type<ping>(
      "ping", [&](transport_context&, const ping& p) { sum += p.value; });
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    for (std::uint64_t i = 1; i <= 100; ++i) mt.send(ctx, 0, ping{i, 0});
  });
  EXPECT_EQ(sum.load(), 5050u);
  EXPECT_EQ(tp.stats().messages_sent.load(), 100u);
  EXPECT_EQ(tp.stats().handler_invocations.load(), 100u);
  EXPECT_EQ(tp.stats().self_deliveries.load(), 100u);
}

TEST(Transport, AllToAllDelivery) {
  constexpr rank_t kRanks = 4;
  constexpr int kPerPair = 50;
  transport tp(transport_config{.n_ranks = kRanks});
  std::vector<std::atomic<std::uint64_t>> received(kRanks);
  auto& mt = tp.make_message_type<ping>(
      "ping", [&](transport_context& ctx, const ping& p) {
        EXPECT_EQ(p.target, ctx.rank());
        received[ctx.rank()] += p.value;
      });
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    for (rank_t d = 0; d < kRanks; ++d)
      for (int i = 0; i < kPerPair; ++i) mt.send(ctx, d, ping{1, d});
  });
  for (rank_t r = 0; r < kRanks; ++r)
    EXPECT_EQ(received[r].load(), static_cast<std::uint64_t>(kRanks) * kPerPair);
  EXPECT_EQ(tp.stats().messages_sent.load(),
            static_cast<std::uint64_t>(kRanks) * kRanks * kPerPair);
}

TEST(Transport, HandlersMaySendMessages) {
  // A chain: each message with value > 0 forwards value-1 to the next rank.
  // AM++'s distinguishing property (§I): handlers are unrestricted.
  constexpr rank_t kRanks = 3;
  transport tp(transport_config{.n_ranks = kRanks});
  std::atomic<std::uint64_t> handled{0};
  message_type<ping>* mtp = nullptr;
  auto& mt = tp.make_message_type<ping>("chain", [&](transport_context& ctx, const ping& p) {
    ++handled;
    if (p.value > 0) mtp->send(ctx, (ctx.rank() + 1) % kRanks, ping{p.value - 1, 0});
  });
  mtp = &mt;
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    if (ctx.rank() == 0) mt.send(ctx, 1, ping{99, 0});
  });
  EXPECT_EQ(handled.load(), 100u);  // 99 forwards + the original
}

TEST(Transport, ObjectBasedAddressing) {
  // §IV-D: the destination is computed from the payload by an address map.
  constexpr rank_t kRanks = 4;
  transport tp(transport_config{.n_ranks = kRanks});
  std::vector<std::atomic<std::uint64_t>> count(kRanks);
  auto& mt = tp.make_message_type<ping>(
      "addr",
      [&](transport_context& ctx, const ping& p) {
        EXPECT_EQ(ctx.rank(), p.target);
        ++count[ctx.rank()];
      },
      [](const ping& p) { return p.target; });
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    if (ctx.rank() == 0)
      for (std::uint64_t i = 0; i < 400; ++i)
        mt.send(ctx, ping{i, static_cast<rank_t>(i % kRanks)});
  });
  for (rank_t r = 0; r < kRanks; ++r) EXPECT_EQ(count[r].load(), 100u);
}

TEST(Transport, CoalescingReducesEnvelopes) {
  // With a coalescing factor of 64, 1000 same-lane sends should travel in
  // ~ceil(1000/64) envelopes, not 1000.
  transport tp(transport_config{.n_ranks = 2, .coalescing_size = 64});
  auto& mt = tp.make_message_type<ping>("c", [](transport_context&, const ping&) {});
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    if (ctx.rank() == 0)
      for (int i = 0; i < 1000; ++i) mt.send(ctx, 1, ping{1, 1});
  });
  EXPECT_EQ(tp.stats().messages_sent.load(), 1000u);
  //

  // envelopes_sent includes control-plane envelopes (TD reports/results), so
  // bound rather than match exactly: data envelopes = ceil(1000/64) = 16.
  EXPECT_LT(tp.stats().envelopes_sent.load(), 16 + 40u);
}

TEST(Transport, NoCoalescingDeliversEagerly) {
  transport tp(transport_config{.n_ranks = 2, .coalescing_size = 1});
  std::atomic<int> n{0};
  auto& mt =
      tp.make_message_type<ping>("e", [&](transport_context&, const ping&) { ++n; });
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    if (ctx.rank() == 0)
      for (int i = 0; i < 10; ++i) mt.send(ctx, 1, ping{1, 1});
  });
  EXPECT_EQ(n.load(), 10);
}

TEST(Transport, RunCanBeInvokedRepeatedly) {
  transport tp(transport_config{.n_ranks = 2});
  std::atomic<int> n{0};
  auto& mt =
      tp.make_message_type<ping>("r", [&](transport_context&, const ping&) { ++n; });
  for (int round = 0; round < 3; ++round) {
    tp.run([&](transport_context& ctx) {
      epoch ep(ctx);
      mt.send(ctx, 1 - ctx.rank(), ping{1, 0});
    });
  }
  EXPECT_EQ(n.load(), 6);
}

TEST(Transport, ExceptionInRankPropagates) {
  transport tp(transport_config{.n_ranks = 2});
  EXPECT_THROW(tp.run([&](transport_context&) {
    // Both ranks throw immediately; no epoch is entered, so no rank blocks
    // waiting for a peer (which would deadlock the test).
    throw std::runtime_error("boom");
  }),
               std::runtime_error);
}

TEST(Transport, PerTypeCountsAreTracked) {
  transport tp(transport_config{.n_ranks = 2});
  auto& a = tp.make_message_type<ping>("a", [](transport_context&, const ping&) {});
  auto& b = tp.make_message_type<ping>("b", [](transport_context&, const ping&) {});
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    if (ctx.rank() == 0) {
      for (int i = 0; i < 7; ++i) a.send(ctx, 1, ping{1, 1});
      for (int i = 0; i < 3; ++i) b.send(ctx, 1, ping{1, 1});
    }
  });
  EXPECT_EQ(tp.sent_of_type(a.id()), 7u);
  EXPECT_EQ(tp.sent_of_type(b.id()), 3u);
  EXPECT_EQ(tp.type_name(a.id()), "a");
  EXPECT_EQ(tp.type_name(b.id()), "b");
}

}  // namespace
}  // namespace dpg::ampp
