// Multithreaded ranks (§II-A: "multiple ranks, each running multiple
// threads"): dedicated handler threads drain inboxes concurrently with the
// SPMD threads. Termination detection must account for in-flight handlers;
// lanes must tolerate concurrent senders; patterns with atomic-capable
// values must stay correct.
#include <gtest/gtest.h>

#include <atomic>

#include "algo/baselines.hpp"
#include "algo/sssp.hpp"
#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"
#include "graph/generators.hpp"

namespace dpg::ampp {
namespace {

struct token {
  std::uint64_t depth;
};

TEST(HandlerThreads, CascadesCompleteWithinEpoch) {
  // Tree cascade handled by helpers; the epoch must still wait for all of
  // it — an in-flight handler on a helper thread is pending work the
  // termination detector may not overlook.
  constexpr rank_t kRanks = 3;
  transport tp(transport_config{
      .n_ranks = kRanks, .coalescing_size = 4, .handler_threads = 2});
  std::atomic<std::uint64_t> handled{0};
  message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("tree", [&](transport_context& ctx, const token& t) {
    ++handled;
    if (t.depth > 0) {
      mtp->send(ctx, (ctx.rank() + 1) % kRanks, token{t.depth - 1});
      mtp->send(ctx, (ctx.rank() + 2) % kRanks, token{t.depth - 1});
    }
  });
  mtp = &mt;
  for (int trial = 0; trial < 5; ++trial) {
    handled = 0;
    std::uint64_t at_exit = 0;
    tp.run([&](transport_context& ctx) {
      {
        epoch ep(ctx);
        if (ctx.rank() == 0) mt.send(ctx, 1, token{10});
      }
      if (ctx.rank() == 0) at_exit = handled.load();
    });
    ASSERT_EQ(handled.load(), (1ULL << 11) - 1) << "trial " << trial;
    ASSERT_EQ(at_exit, (1ULL << 11) - 1) << "epoch exited before helpers finished";
  }
}

TEST(HandlerThreads, SingleRankWithHelpers) {
  transport tp(transport_config{.n_ranks = 1, .handler_threads = 3});
  std::atomic<std::uint64_t> sum{0};
  auto& mt = tp.make_message_type<token>(
      "t", [&](transport_context&, const token& t) { sum += t.depth; });
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    for (std::uint64_t i = 1; i <= 1000; ++i) mt.send(ctx, 0, token{i});
  });
  EXPECT_EQ(sum.load(), 500500u);
}

TEST(HandlerThreads, CollectivesUnaffected) {
  constexpr rank_t kRanks = 4;
  transport tp(transport_config{.n_ranks = kRanks, .handler_threads = 1});
  tp.run([&](transport_context& ctx) {
    for (std::uint64_t i = 0; i < 30; ++i)
      ASSERT_EQ(ctx.allreduce_sum<std::uint64_t>(i), i * kRanks);
  });
}

TEST(HandlerThreads, ReductionCachePreservesSemantics) {
  transport tp(transport_config{
      .n_ranks = 2, .coalescing_size = 128, .handler_threads = 2});
  std::atomic<std::uint64_t> delivered{0};
  auto& mt = tp.make_message_type<token>(
      "r", [&](transport_context&, const token&) { ++delivered; });
  mt.enable_reduction([](const token& t) { return t.depth % 16; },
                      [](const token& a, const token& b) {
                        return a.depth <= b.depth ? a : b;
                      },
                      6);
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    if (ctx.rank() == 0)
      for (std::uint64_t i = 0; i < 5000; ++i) mt.send(ctx, 1, token{i});
  });
  // At least one message per distinct key must arrive; duplicates may be
  // absorbed but never lost entirely.
  EXPECT_GE(delivered.load(), 16u);
  EXPECT_LT(delivered.load(), 5000u);
}

TEST(HandlerThreads, TryFinishLoopTerminates) {
  constexpr rank_t kRanks = 2;
  transport tp(transport_config{.n_ranks = kRanks, .handler_threads = 2});
  std::atomic<std::uint64_t> handled{0};
  message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("c", [&](transport_context& ctx, const token& t) {
    ++handled;
    if (t.depth > 0) mtp->send(ctx, 1 - ctx.rank(), token{t.depth - 1});
  });
  mtp = &mt;
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    mt.send(ctx, 1 - ctx.rank(), token{50});
    while (!ep.try_finish()) {
    }
  });
  EXPECT_EQ(handled.load(), 102u);
}

TEST(HandlerThreads, SsspRelaxPatternStaysCorrect) {
  // The relax pattern's values (double) take the atomic read/CAS paths, so
  // concurrent handler threads must still converge to Dijkstra's answer.
  using namespace dpg;
  const graph::vertex_id n = 150;
  const auto edges = graph::erdos_renyi(n, 1000, 8);
  graph::distributed_graph g(n, edges, graph::distribution::cyclic(n, 2));
  pmap::edge_property_map<double> weight(g, [](const graph::edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 21, 7.0);
  });
  const auto oracle = algo::dijkstra(g, weight, 0);
  transport tp(transport_config{.n_ranks = 2, .handler_threads = 2});
  algo::sssp_solver solver(tp, g, weight);
  for (int trial = 0; trial < 3; ++trial) {
    tp.run([&](transport_context& ctx) { solver.run_fixed_point(ctx, 0); });
    for (graph::vertex_id v = 0; v < n; ++v)
      ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v]) << "trial=" << trial << " v=" << v;
  }
}

}  // namespace
}  // namespace dpg::ampp
