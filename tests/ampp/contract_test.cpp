// API-contract tests: the runtime's preconditions are enforced loudly
// (assertion aborts), and its accounting invariants hold exactly.
#include <gtest/gtest.h>

#include <atomic>

#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"
#include "obs/obs.hpp"

namespace dpg::ampp {
namespace {

struct ping {
  std::uint64_t x;
};

TEST(ContractDeathTest, SendOutsideEpochAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        transport tp(transport_config{.n_ranks = 1});
        auto& mt = tp.make_message_type<ping>("p", [](transport_context&, const ping&) {});
        tp.run([&](transport_context& ctx) { mt.send(ctx, 0, ping{1}); });
      },
      "inside an epoch");
}

TEST(ContractDeathTest, NestedEpochsAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        transport tp(transport_config{.n_ranks = 1});
        tp.run([&](transport_context& ctx) {
          epoch outer(ctx);
          epoch inner(ctx);
        });
      },
      "do not nest");
}

TEST(ContractDeathTest, RegistrationDuringRunAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        transport tp(transport_config{.n_ranks = 1});
        tp.run([&](transport_context&) {
          tp.make_message_type<ping>("late", [](transport_context&, const ping&) {});
        });
      },
      "before transport::run");
}

TEST(ContractDeathTest, DestinationOutOfRangeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        transport tp(transport_config{.n_ranks = 2});
        auto& mt = tp.make_message_type<ping>("p", [](transport_context&, const ping&) {});
        tp.run([&](transport_context& ctx) {
          epoch ep(ctx);
          mt.send(ctx, 7, ping{1});
        });
      },
      "out of range");
}

TEST(Contract, AccountingInvariants) {
  // After a run: messages_sent == handler_invocations (everything sent was
  // handled), and per-type counts sum to the total.
  constexpr rank_t kRanks = 3;
  transport tp(transport_config{.n_ranks = kRanks, .coalescing_size = 8});
  auto& a = tp.make_message_type<ping>("a", [](transport_context&, const ping&) {});
  auto& b = tp.make_message_type<ping>("b", [](transport_context&, const ping&) {});
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    for (int i = 0; i < 50; ++i) {
      a.send(ctx, (ctx.rank() + 1) % kRanks, ping{1});
      if (ctx.rank() == 0) b.send(ctx, 2, ping{2});
    }
  });
  const obs::stats_snapshot s = tp.obs().snapshot();
  EXPECT_EQ(s.core.messages_sent, s.core.handler_invocations);
  EXPECT_EQ(tp.sent_of_type(a.id()) + tp.sent_of_type(b.id()), s.core.messages_sent);
  EXPECT_EQ(tp.sent_of_type(a.id()), 50u * kRanks);
  EXPECT_EQ(tp.sent_of_type(b.id()), 50u);
  // The registry's per-type rows agree with the legacy accessors and carry
  // handled/byte attribution too.
  EXPECT_EQ(s.per_type[a.id()].sent, 50u * kRanks);
  EXPECT_EQ(s.per_type[a.id()].handled, 50u * kRanks);
  EXPECT_EQ(s.per_type[a.id()].bytes, 50u * kRanks * sizeof(ping));
  EXPECT_EQ(s.per_type[b.id()].name, "b");
}

TEST(Contract, EnvelopeCountRespectsCoalescingBound) {
  // Data envelopes >= messages / coalescing_size (can't batch more than
  // the buffer holds).
  transport tp(transport_config{.n_ranks = 2, .coalescing_size = 32});
  auto& mt = tp.make_message_type<ping>("p", [](transport_context&, const ping&) {});
  obs::stats_scope sc(tp.obs());
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    if (ctx.rank() == 0)
      for (int i = 0; i < 1000; ++i) mt.send(ctx, 1, ping{1});
  });
  const obs::stats_snapshot& d = sc.finish();
  EXPECT_GE(d.core.envelopes_sent, 1000u / 32u);
  EXPECT_EQ(d.core.messages_sent, 1000u);
  EXPECT_EQ(d.core.bytes_sent >= 1000u * sizeof(ping), true);
}

TEST(Contract, AllreduceAtPayloadSizeLimit) {
  struct big56 {
    std::uint64_t words[7];  // exactly 56 bytes
  };
  static_assert(sizeof(big56) == 56);
  transport tp(transport_config{.n_ranks = 3});
  tp.run([&](transport_context& ctx) {
    big56 mine{};
    for (int i = 0; i < 7; ++i) mine.words[i] = ctx.rank() + 1;
    const big56 all = ctx.allreduce(mine, [](big56 a, big56 b) {
      for (int i = 0; i < 7; ++i) a.words[i] += b.words[i];
      return a;
    });
    for (int i = 0; i < 7; ++i) ASSERT_EQ(all.words[i], 6u);  // 1+2+3
  });
}

}  // namespace
}  // namespace dpg::ampp
