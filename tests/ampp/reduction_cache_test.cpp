// The AM++-style reduction cache (§IV: "caching allows to avoid
// unnecessary message sends and the corresponding handler calls").
// Correctness contract: delivering the combined payload must be equivalent
// to delivering every absorbed payload.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <vector>

#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"

namespace dpg::ampp {
namespace {

struct relax_msg {
  std::uint64_t vertex;
  std::uint64_t dist;
};

class ReductionCacheTest : public ::testing::Test {
 protected:
  // Applies min-combining at the destination into `best`, so the final map
  // is identical whether or not messages were absorbed en route.
  std::map<std::uint64_t, std::uint64_t> best;
  std::mutex mu;
};

TEST_F(ReductionCacheTest, MinReductionPreservesSemantics) {
  transport tp(transport_config{.n_ranks = 2, .coalescing_size = 1024});
  auto& mt = tp.make_message_type<relax_msg>(
      "relax", [&](transport_context&, const relax_msg& m) {
        std::lock_guard<std::mutex> g(mu);
        auto [it, fresh] = best.emplace(m.vertex, m.dist);
        if (!fresh && m.dist < it->second) it->second = m.dist;
      });
  mt.enable_reduction([](const relax_msg& m) { return m.vertex; },
                      [](const relax_msg& a, const relax_msg& b) {
                        return a.dist <= b.dist ? a : b;
                      },
                      /*cache_bits=*/6);
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    if (ctx.rank() == 0) {
      // Many updates to few keys: heavy duplication, as in power-law SSSP.
      for (std::uint64_t i = 0; i < 1000; ++i)
        mt.send(ctx, 1, relax_msg{i % 10, 1000 - i});
    }
  });
  ASSERT_EQ(best.size(), 10u);
  // Minimum distance sent for vertex v is 1000-i at the largest i with
  // i%10==v, i.e. i = 990+v, so dist = 10-v.
  for (std::uint64_t v = 0; v < 10; ++v) EXPECT_EQ(best[v], 10 - v);
  EXPECT_GT(tp.stats().cache_hits.load(), 900u);
  // Far fewer handler invocations than the 1000 logical sends.
  EXPECT_LT(tp.stats().handler_invocations.load(), 100u);
}

TEST_F(ReductionCacheTest, EvictionSpillsRatherThanDrops) {
  // More distinct keys than cache slots: evictions must deliver, not drop.
  transport tp(transport_config{.n_ranks = 2, .coalescing_size = 64});
  std::atomic<std::uint64_t> delivered{0};
  auto& mt = tp.make_message_type<relax_msg>(
      "relax", [&](transport_context&, const relax_msg&) { ++delivered; });
  mt.enable_reduction([](const relax_msg& m) { return m.vertex; },
                      [](const relax_msg& a, const relax_msg& b) {
                        return a.dist <= b.dist ? a : b;
                      },
                      /*cache_bits=*/2);  // 4 slots only
  constexpr std::uint64_t kKeys = 512;
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    if (ctx.rank() == 0)
      for (std::uint64_t k = 0; k < kKeys; ++k) mt.send(ctx, 1, relax_msg{k, k});
  });
  // Every distinct key must arrive exactly once (no two sends share a key).
  EXPECT_EQ(delivered.load(), kKeys);
  EXPECT_GT(tp.stats().cache_evictions.load(), 0u);
}

TEST_F(ReductionCacheTest, CombineRespectsTieBreaking) {
  // With equal distances the combiner keeps the first payload (a <= b picks
  // a); semantics must not depend on which survives, but the cache must not
  // duplicate either.
  transport tp(transport_config{.n_ranks = 2});
  std::atomic<std::uint64_t> delivered{0};
  auto& mt = tp.make_message_type<relax_msg>(
      "relax", [&](transport_context&, const relax_msg&) { ++delivered; });
  mt.enable_reduction([](const relax_msg& m) { return m.vertex; },
                      [](const relax_msg& a, const relax_msg& b) {
                        return a.dist <= b.dist ? a : b;
                      },
                      4);
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    if (ctx.rank() == 0)
      for (int i = 0; i < 100; ++i) mt.send(ctx, 1, relax_msg{7, 3});
  });
  EXPECT_EQ(delivered.load(), 1u);
  EXPECT_EQ(tp.stats().cache_hits.load(), 99u);
}

TEST_F(ReductionCacheTest, FlushOnEpochEndDeliversCachedEntries) {
  // A cached entry never re-sent must still arrive by epoch end (the
  // termination protocol flushes caches before reporting).
  transport tp(transport_config{.n_ranks = 3, .coalescing_size = 1 << 20});
  std::atomic<std::uint64_t> delivered{0};
  auto& mt = tp.make_message_type<relax_msg>(
      "relax", [&](transport_context&, const relax_msg&) { ++delivered; });
  mt.enable_reduction([](const relax_msg& m) { return m.vertex; },
                      [](const relax_msg& a, const relax_msg& b) {
                        return a.dist <= b.dist ? a : b;
                      },
                      8);
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    mt.send(ctx, (ctx.rank() + 1) % 3, relax_msg{ctx.rank(), 1});
  });
  EXPECT_EQ(delivered.load(), 3u);
}

TEST_F(ReductionCacheTest, WithoutReductionAllMessagesDeliver) {
  transport tp(transport_config{.n_ranks = 2});
  std::atomic<std::uint64_t> delivered{0};
  auto& mt = tp.make_message_type<relax_msg>(
      "relax", [&](transport_context&, const relax_msg&) { ++delivered; });
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    if (ctx.rank() == 0)
      for (int i = 0; i < 100; ++i) mt.send(ctx, 1, relax_msg{7, 3});
  });
  EXPECT_EQ(delivered.load(), 100u);
  EXPECT_EQ(tp.stats().cache_hits.load(), 0u);
}

}  // namespace
}  // namespace dpg::ampp
