// Message-based collectives: barrier and allreduce. These back the
// strategies (`once` needs a global modified flag; Δ-stepping needs a
// global bucket-empty test).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "ampp/transport.hpp"

namespace dpg::ampp {
namespace {

TEST(Collectives, AllreduceSum) {
  constexpr rank_t kRanks = 5;
  transport tp(transport_config{.n_ranks = kRanks});
  tp.run([&](transport_context& ctx) {
    const std::uint64_t total = ctx.allreduce_sum<std::uint64_t>(ctx.rank() + 1);
    EXPECT_EQ(total, 15u);  // 1+2+3+4+5
  });
}

TEST(Collectives, AllreduceMinMax) {
  constexpr rank_t kRanks = 4;
  transport tp(transport_config{.n_ranks = kRanks});
  tp.run([&](transport_context& ctx) {
    const int v = static_cast<int>(ctx.rank()) * 10 - 5;
    EXPECT_EQ(ctx.allreduce_min(v), -5);
    EXPECT_EQ(ctx.allreduce_max(v), 25);
  });
}

TEST(Collectives, AllreduceOr) {
  constexpr rank_t kRanks = 4;
  transport tp(transport_config{.n_ranks = kRanks});
  tp.run([&](transport_context& ctx) {
    EXPECT_TRUE(ctx.allreduce_or(ctx.rank() == 2));
    EXPECT_FALSE(ctx.allreduce_or(false));
  });
}

TEST(Collectives, AllreduceStructValue) {
  struct stats {
    double sum;
    std::uint64_t count;
  };
  constexpr rank_t kRanks = 3;
  transport tp(transport_config{.n_ranks = kRanks});
  tp.run([&](transport_context& ctx) {
    stats mine{static_cast<double>(ctx.rank()), 1};
    stats all = ctx.allreduce(mine, [](stats a, stats b) {
      return stats{a.sum + b.sum, a.count + b.count};
    });
    EXPECT_DOUBLE_EQ(all.sum, 3.0);  // 0+1+2
    EXPECT_EQ(all.count, 3u);
  });
}

TEST(Collectives, RepeatedAllreducesStayInLockstep) {
  constexpr rank_t kRanks = 4;
  transport tp(transport_config{.n_ranks = kRanks});
  tp.run([&](transport_context& ctx) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      const std::uint64_t s = ctx.allreduce_sum<std::uint64_t>(i);
      ASSERT_EQ(s, i * kRanks);
    }
  });
}

TEST(Collectives, BarrierOrdersSideEffects) {
  // Every rank writes its slot before the barrier; after the barrier every
  // rank must observe all slots written.
  constexpr rank_t kRanks = 6;
  transport tp(transport_config{.n_ranks = kRanks});
  std::vector<std::atomic<int>> slots(kRanks);
  std::atomic<int> failures{0};
  tp.run([&](transport_context& ctx) {
    slots[ctx.rank()].store(1, std::memory_order_release);
    ctx.barrier();
    for (rank_t r = 0; r < kRanks; ++r)
      if (slots[r].load(std::memory_order_acquire) != 1) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(Collectives, AllreduceIsDeterministicForNonCommutativeOp) {
  // Contributions are folded in rank order at the coordinator, so even a
  // non-commutative op gives a stable result.
  constexpr rank_t kRanks = 4;
  transport tp(transport_config{.n_ranks = kRanks});
  std::atomic<std::uint64_t> results[3];
  for (auto& r : results) r = 0;
  for (int trial = 0; trial < 3; ++trial) {
    tp.run([&](transport_context& ctx) {
      // "Subtract-fold": a - b is non-commutative; determinism requires a
      // fixed fold order.
      const std::int64_t folded =
          ctx.allreduce<std::int64_t>(static_cast<std::int64_t>(ctx.rank() + 1),
                                      [](std::int64_t a, std::int64_t b) { return a - b; });
      if (ctx.rank() == 0) results[trial] = static_cast<std::uint64_t>(folded);
    });
  }
  EXPECT_EQ(results[0].load(), results[1].load());
  EXPECT_EQ(results[1].load(), results[2].load());
}

TEST(Collectives, SingleRankAllreduceIsIdentity) {
  transport tp(transport_config{.n_ranks = 1});
  tp.run([&](transport_context& ctx) {
    EXPECT_EQ(ctx.allreduce_sum<std::uint64_t>(42), 42u);
    EXPECT_EQ(ctx.allreduce_min(7), 7);
    ctx.barrier();  // must not deadlock
  });
}

}  // namespace
}  // namespace dpg::ampp
