// Unit tests for the fault-injection layer itself: rule matching, the
// stateless decision function, and each of the four wire faults in
// isolation — including the recovery invariants (every drop retried, every
// duplicate suppressed, every delay released) and termination under a plan
// that attacks only the control plane.
#include "ampp/fault.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"

namespace dpg::ampp {
namespace {

struct token {
  std::uint64_t depth;
};

fault_plan only(fault_rule r, std::uint64_t seed) { return fault_plan{seed, {r}}; }

TEST(FaultPlan, RuleMatching) {
  fault_rule r;
  EXPECT_TRUE(r.matches(0, 1, "anything"));  // all-wildcard
  r.src = 2;
  EXPECT_TRUE(r.matches(2, 1, "x"));
  EXPECT_FALSE(r.matches(0, 1, "x"));
  r.dest = 3;
  EXPECT_TRUE(r.matches(2, 3, "x"));
  EXPECT_FALSE(r.matches(2, 1, "x"));
  r = fault_rule{};
  r.type_prefix = "dpg.";
  EXPECT_TRUE(r.matches(0, 0, "dpg.td.report"));
  EXPECT_FALSE(r.matches(0, 0, "relax"));
  EXPECT_FALSE(r.matches(0, 0, "dpg"));  // shorter than the prefix
}

TEST(FaultPlan, FirstMatchWins) {
  fault_rule control;
  control.type_prefix = "dpg.";
  control.drop = 0.5;
  // The catch-all second rule is only reached by non-control types.
  fault_plan p{7, {control, fault_rule{}}};
  EXPECT_EQ(p.match(0, 1, "dpg.td.report"), &p.rules[0]);
  EXPECT_EQ(p.match(0, 1, "relax"), &p.rules[1]);
}

TEST(FaultPlan, DecisionsAreStateless) {
  // Same coordinates, same answer — and the edge probabilities are exact.
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    const bool a = fault_plan::decide(0.5, 9, fault_stage::drop, 0, 1, 3, seq, 0);
    const bool b = fault_plan::decide(0.5, 9, fault_stage::drop, 0, 1, 3, seq, 0);
    EXPECT_EQ(a, b) << "seq=" << seq;
    EXPECT_FALSE(fault_plan::decide(0.0, 9, fault_stage::drop, 0, 1, 3, seq, 0));
    EXPECT_TRUE(fault_plan::decide(1.0, 9, fault_stage::drop, 0, 1, 3, seq, 0));
  }
  // Distinct stages draw independent coins: the streams must differ
  // somewhere over 64 sequence numbers.
  int diffs = 0;
  for (std::uint64_t seq = 0; seq < 64; ++seq)
    diffs += fault_plan::decide(0.5, 9, fault_stage::drop, 0, 1, 3, seq, 0) !=
             fault_plan::decide(0.5, 9, fault_stage::delay, 0, 1, 3, seq, 0);
  EXPECT_GT(diffs, 0);
}

TEST(FaultPlan, InactiveByDefault) {
  EXPECT_FALSE(fault_plan{}.active());
  EXPECT_FALSE(fault_plan::none().active());
  EXPECT_TRUE(fault_plan::scramble(1).active());
  EXPECT_TRUE(fault_plan::chaos(1).active());
}

/// Sends a small all-to-all workload and returns the final snapshot.
obs::stats_snapshot pump(fault_plan plan, rank_t ranks, int per_rank) {
  transport tp(transport_config{.n_ranks = ranks,
                                .coalescing_size = 4,
                                .seed = plan.seed,
                                .faults = std::move(plan)});
  std::atomic<std::uint64_t> handled{0};
  auto& mt = tp.make_message_type<token>(
      "pump", [&](transport_context&, const token&) { ++handled; });
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    for (int i = 0; i < per_rank; ++i)
      for (rank_t d = 0; d < ctx.size(); ++d) mt.send(ctx, d, token{0});
  });
  EXPECT_EQ(handled.load(), static_cast<std::uint64_t>(per_rank) * ranks * ranks);
  return tp.obs().snapshot();
}

TEST(FaultTransport, EveryDropIsRetriedUntilDelivered) {
  // drop = 1.0: the adversary drops every transmission until the per-rule
  // budget (max_drops) is exhausted, after which delivery must succeed.
  fault_rule r;
  r.drop = 1.0;
  r.retry_timeout_flushes = 1;
  r.max_drops = 3;
  const auto s = pump(only(r, 17), 3, 20);
  EXPECT_GT(s.core.envelopes_dropped, 0u);
  EXPECT_EQ(s.core.envelopes_dropped, s.core.envelopes_retried);
  // Every envelope was dropped exactly max_drops times before delivery.
  EXPECT_EQ(s.core.envelopes_dropped, 3u * s.core.envelopes_sent);
  EXPECT_EQ(s.core.messages_sent, s.core.handler_invocations);
}

TEST(FaultTransport, HighDropCountsKeepBackoffFiniteAndMonotone) {
  // Regression for the retry-path UB fix: the ack-timeout backoff is
  // `retry_timeout_flushes << drops`, and before the clamp a plan allowed
  // to drop one envelope more than 63 times shifted past the width of the
  // tick — undefined behavior that in practice wrapped the due tick into
  // the far past (a hot retry storm) or the far future (a hang). With the
  // shift capped, an 80-drop adversary must still converge: every drop is
  // retried, every envelope is delivered, and the run terminates.
  fault_rule r;
  r.drop = 1.0;
  r.retry_timeout_flushes = 1;
  r.max_drops = 80;  // well past the 64-bit shift-width UB threshold
  const auto s = pump(only(r, 23), 2, 2);
  EXPECT_GT(s.core.envelopes_dropped, 0u);
  EXPECT_EQ(s.core.envelopes_dropped, s.core.envelopes_retried);
  EXPECT_EQ(s.core.envelopes_dropped, 80u * s.core.envelopes_sent);
  EXPECT_EQ(s.core.messages_sent, s.core.handler_invocations);
}

TEST(FaultTransport, EveryDuplicateIsSuppressed) {
  fault_rule r;
  r.duplicate = 1.0;
  const auto s = pump(only(r, 18), 3, 20);
  EXPECT_GT(s.core.envelopes_duplicated, 0u);
  EXPECT_EQ(s.core.envelopes_duplicated, s.core.duplicates_suppressed);
  EXPECT_EQ(s.core.envelopes_duplicated, s.core.envelopes_sent);
  EXPECT_EQ(s.core.messages_sent, s.core.handler_invocations);
}

TEST(FaultTransport, EveryDelayIsEventuallyReleased) {
  fault_rule r;
  r.delay = 1.0;
  r.delay_flushes = 2;
  const auto s = pump(only(r, 19), 3, 20);
  EXPECT_EQ(s.core.envelopes_delayed, s.core.envelopes_sent);
  EXPECT_EQ(s.core.messages_sent, s.core.handler_invocations);
  EXPECT_EQ(s.core.envelopes_dropped, 0u);
}

TEST(FaultTransport, TypePrefixConfinesTheBlastRadius) {
  // A rule that matches no message type must inject nothing.
  fault_rule r;
  r.type_prefix = "no.such.type";
  r.drop = 1.0;
  r.duplicate = 1.0;
  r.delay = 1.0;
  const auto s = pump(only(r, 20), 2, 10);
  EXPECT_EQ(s.core.envelopes_dropped, 0u);
  EXPECT_EQ(s.core.envelopes_duplicated, 0u);
  EXPECT_EQ(s.core.envelopes_delayed, 0u);
}

TEST(FaultTransport, ControlPlaneChaosStillTerminates) {
  // Attack only the "dpg.*" control plane (termination detection and
  // collectives) while data traffic flows cleanly: epochs must still
  // terminate with exact delivery, and the plan must actually have fired.
  constexpr rank_t kRanks = 4;
  transport tp(transport_config{.n_ranks = kRanks,
                                .coalescing_size = 4,
                                .seed = 21,
                                .faults = fault_plan::control_chaos(21)});
  std::atomic<std::uint64_t> handled{0};
  message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("cascade", [&](transport_context& ctx, const token& t) {
    ++handled;
    if (t.depth > 0) mtp->send(ctx, (ctx.rank() + 1) % kRanks, token{t.depth - 1});
  });
  mtp = &mt;
  for (int trial = 0; trial < 3; ++trial) {
    handled = 0;
    tp.run([&](transport_context& ctx) {
      epoch ep(ctx);
      if (ctx.rank() == 0) mt.send(ctx, 1, token{64});
    });
    ASSERT_EQ(handled.load(), 65u) << "trial " << trial;
  }
  const auto s = tp.obs().snapshot();
  EXPECT_GT(s.core.envelopes_dropped + s.core.envelopes_duplicated +
                s.core.envelopes_delayed,
            0u);
  EXPECT_EQ(s.core.envelopes_dropped, s.core.envelopes_retried);
  EXPECT_EQ(s.core.envelopes_duplicated, s.core.duplicates_suppressed);
}

}  // namespace
}  // namespace dpg::ampp
