// Unit tests for the wire backends (ISSUE 8): the shm SPSC rings and the
// TCP mesh, driven directly through the wire_backend interface with both
// "rank processes" living in this one test process (explicit channel, two
// threads for the construction rendezvous). The cross-process end-to-end
// matrix lives in tests/sim/backend_sweep_test.cpp; these tests pin the
// mechanics the sweep relies on: ring wraparound, partial TCP reads,
// handshake rejection, peer-disconnect errors, and header validation.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "ampp/backend.hpp"
#include "ampp/wire.hpp"

namespace dpg::ampp {
namespace {

// Channels below 1000 could collide with transports constructed elsewhere
// in this process; give every test its own high channel so shm names and
// port blocks never overlap (ports also offset by PID to survive parallel
// ctest invocations and TIME_WAIT from earlier runs).
std::uint32_t next_test_channel() {
  static std::atomic<std::uint32_t> c{1000};
  return c.fetch_add(1);
}

std::uint16_t test_base_port() {
  return static_cast<std::uint16_t>(20000 + (::getpid() % 4096) * 8);
}

backend_config make_cfg(backend_config::kind_t kind, rank_t self,
                        std::uint32_t channel, std::uint32_t ring_bytes = 1u << 16) {
  backend_config cfg;
  cfg.kind = kind;
  cfg.self_rank = self;
  cfg.session = "btest" + std::to_string(::getpid());
  cfg.base_port = test_base_port();
  cfg.ring_bytes = ring_bytes;
  cfg.attach_timeout_ms = 10000;
  cfg.channel = static_cast<std::int32_t>(channel);
  return cfg;
}

/// Constructs a full machine of backends inside this process, one thread
/// per rank (the rendezvous blocks until all ranks arrive).
std::vector<std::unique_ptr<wire_backend>> make_machine(backend_config::kind_t kind,
                                                        rank_t n_ranks,
                                                        std::uint32_t ring_bytes = 1u
                                                                                   << 16) {
  const std::uint32_t channel = next_test_channel();
  std::vector<std::future<std::unique_ptr<wire_backend>>> futs;
  for (rank_t r = 0; r < n_ranks; ++r)
    futs.push_back(std::async(std::launch::async, [=] {
      return make_backend(make_cfg(kind, r, channel, ring_bytes), n_ranks);
    }));
  std::vector<std::unique_ptr<wire_backend>> out;
  for (auto& f : futs) out.push_back(f.get());
  return out;
}

wire_header payload_header(rank_t src, std::uint64_t seq, std::uint32_t bytes) {
  wire_header h;
  h.type_id = 0;
  h.type_hash = wire_name_hash("backend.test");
  h.count = 1;
  h.payload_bytes = bytes;
  h.src = src;
  h.seq = seq;
  return h;
}

std::vector<std::byte> pattern_payload(std::uint32_t bytes, std::uint64_t salt) {
  std::vector<std::byte> p(bytes);
  for (std::uint32_t i = 0; i < bytes; ++i)
    p[i] = static_cast<std::byte>((salt * 131 + i * 7) & 0xff);
  return p;
}

/// A receive-side checker: payload integrity plus per-source ordering via
/// the seq field. Use the sink while sending (a ring smaller than the sent
/// volume deadlocks unless someone drains concurrently), then drain() the
/// remainder.
class frame_checker {
 public:
  explicit frame_checker(wire_backend& b) : b_(&b), next_seq_(64, 0) {}

  wire_backend::frame_sink sink() {
    return [this](const wire_header& h, const std::byte* payload) {
      ASSERT_EQ(h.seq, next_seq_[h.src]) << "frames from rank " << h.src << " reordered";
      ++next_seq_[h.src];
      const auto expect = pattern_payload(h.payload_bytes, h.seq);
      ASSERT_EQ(0, std::memcmp(payload, expect.data(), h.payload_bytes));
      ++got_;
    };
  }

  void pump() { b_->poll(sink()); }

  void drain(std::size_t want) {
    while (got_ < want) {
      pump();
      std::this_thread::yield();
    }
  }

  std::size_t got() const { return got_; }

 private:
  wire_backend* b_;
  std::vector<std::uint64_t> next_seq_;
  std::size_t got_ = 0;
};

void drain_expect(wire_backend& b, std::size_t want) {
  frame_checker chk(b);
  chk.drain(want);
}

// ---- shm ring ------------------------------------------------------------

TEST(ShmRingBackend, WrapAroundPreservesFramesAndOrder) {
  // A 16 KiB ring (the floor) with ~1.5 KiB frames wraps every ~10 sends;
  // pushing 600 exercises the wrap marker path dozens of times, including
  // tails landing exactly at the capacity boundary (varying sizes).
  auto m = make_machine(backend_config::kind_t::shm_ring, 2, 1u << 14);
  constexpr std::size_t kFrames = 600;
  std::thread consumer([&] { drain_expect(*m[1], kFrames); });
  for (std::uint64_t seq = 0; seq < kFrames; ++seq) {
    const std::uint32_t bytes = static_cast<std::uint32_t>(800 + (seq * 97) % 1024);
    const auto payload = pattern_payload(bytes, seq);
    m[0]->send(1, payload_header(0, seq, bytes), payload.data());
  }
  consumer.join();
}

TEST(ShmRingBackend, AllToAllUnderConcurrency) {
  constexpr rank_t kRanks = 4;
  constexpr std::size_t kPerPair = 200;
  auto m = make_machine(backend_config::kind_t::shm_ring, kRanks, 1u << 14);
  std::vector<std::thread> threads;
  for (rank_t r = 0; r < kRanks; ++r)
    threads.emplace_back([&, r] {
      frame_checker chk(*m[r]);
      for (std::uint64_t seq = 0; seq < kPerPair; ++seq) {
        for (rank_t d = 0; d < kRanks; ++d) {
          if (d == r) continue;
          const std::uint32_t bytes = static_cast<std::uint32_t>(64 + seq % 512);
          const auto payload = pattern_payload(bytes, seq);
          m[r]->send(d, payload_header(r, seq, bytes), payload.data());
        }
        // Drain as we go: the aggregate volume far exceeds one ring's
        // capacity, so a send-everything-then-drain schedule would deadlock
        // with every producer waiting on a consumer that never polls.
        chk.pump();
      }
      chk.drain(kPerPair * (kRanks - 1));
    });
  for (auto& t : threads) t.join();
}

TEST(ShmRingBackend, GeometryMismatchIsRejected) {
  // Rank 1 attaches with a different ring_bytes than the creator: the
  // segment-geometry check must throw rather than mis-index the rings.
  const std::uint32_t channel = next_test_channel();
  backend_config cfg0 = make_cfg(backend_config::kind_t::shm_ring, 0, channel, 1u << 15);
  cfg0.attach_timeout_ms = 1500;  // rank 0 can only fail by attach timeout
  backend_config cfg1 = make_cfg(backend_config::kind_t::shm_ring, 1, channel, 1u << 14);
  auto f0 = std::async(std::launch::async, [&] { return make_backend(cfg0, 2); });
  auto f1 = std::async(std::launch::async, [&] { return make_backend(cfg1, 2); });
  EXPECT_THROW(f1.get(), wire_error);
  // Rank 0 times out waiting for rank 1's attach — also an error, never a
  // half-attached machine.
  EXPECT_THROW(f0.get(), wire_error);
}

// ---- TCP -----------------------------------------------------------------

TEST(TcpBackend, LargeFramesSurvivePartialReads) {
  // A 200 KiB payload is far larger than the 16 KiB read chunk AND larger
  // than typical socket buffers: the receiver necessarily observes many
  // partial frames and must reassemble across poll() calls; the sender's
  // nonblocking send path must ride out EAGAIN.
  auto m = make_machine(backend_config::kind_t::tcp, 2);
  constexpr std::uint32_t kBytes = 200 * 1024;
  constexpr std::size_t kFrames = 8;
  std::thread consumer([&] { drain_expect(*m[1], kFrames); });
  for (std::uint64_t seq = 0; seq < kFrames; ++seq) {
    const auto payload = pattern_payload(kBytes, seq);
    m[0]->send(1, payload_header(0, seq, kBytes), payload.data());
  }
  consumer.join();
}

TEST(TcpBackend, FourRankMeshDelivers) {
  constexpr rank_t kRanks = 4;
  constexpr std::size_t kPerPair = 100;
  auto m = make_machine(backend_config::kind_t::tcp, kRanks);
  std::vector<std::thread> threads;
  for (rank_t r = 0; r < kRanks; ++r)
    threads.emplace_back([&, r] {
      frame_checker chk(*m[r]);
      for (std::uint64_t seq = 0; seq < kPerPair; ++seq) {
        for (rank_t d = 0; d < kRanks; ++d) {
          if (d == r) continue;
          const std::uint32_t bytes = static_cast<std::uint32_t>(32 + seq % 256);
          const auto payload = pattern_payload(bytes, seq);
          m[r]->send(d, payload_header(r, seq, bytes), payload.data());
        }
        chk.pump();
      }
      chk.drain(kPerPair * (kRanks - 1));
    });
  for (auto& t : threads) t.join();
}

TEST(TcpBackend, HandshakeVersionMismatchIsRejected) {
  // Pose as rank 1 of a 2-rank machine but speak a future format version:
  // rank 0 must reject the connection during its own construction.
  const std::uint32_t channel = next_test_channel();
  const backend_config cfg0 = make_cfg(backend_config::kind_t::tcp, 0, channel);
  auto f0 = std::async(std::launch::async,
                       [&] { return make_backend(cfg0, 2); });
  const std::uint16_t port =
      static_cast<std::uint16_t>(cfg0.base_port + channel * 2 + 0);
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ASSERT_EQ(1, ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr));
  int fd = -1;
  for (int tries = 0; tries < 5000; ++tries) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    if (::connect(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof(addr)) == 0) break;
    ::close(fd);
    fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(fd, 0) << "could not reach rank 0's listener";
  wire_handshake bogus;
  bogus.version = wire_format_version + 1;
  bogus.src_rank = 1;
  bogus.n_ranks = 2;
  bogus.channel = channel;
  ASSERT_EQ(static_cast<ssize_t>(sizeof(bogus)),
            ::send(fd, &bogus, sizeof(bogus), MSG_NOSIGNAL));
  EXPECT_THROW(f0.get(), wire_error);
  ::close(fd);
}

TEST(TcpBackend, PeerDisconnectFailsLoudly) {
  auto m = make_machine(backend_config::kind_t::tcp, 2);
  m[1].reset();  // rank 1 exits
  // Sends eventually fail (the first few may land in the socket buffer);
  // they must fail with wire_error, not SIGPIPE or silent loss.
  const auto payload = pattern_payload(1024, 0);
  EXPECT_THROW(
      {
        for (int i = 0; i < 100000; ++i)
          m[0]->send(1, payload_header(0, static_cast<std::uint64_t>(i), 1024),
                     payload.data());
      },
      wire_error);
}

// ---- wire format ---------------------------------------------------------

TEST(WireFormat, HeaderValidationCatchesCorruption) {
  wire_header h;
  h.src = 1;
  EXPECT_NO_THROW(validate_header(h, 4));
  wire_header bad_magic = h;
  bad_magic.magic ^= 1;
  EXPECT_THROW(validate_header(bad_magic, 4), wire_error);
  wire_header bad_version = h;
  bad_version.version = wire_format_version + 1;
  EXPECT_THROW(validate_header(bad_version, 4), wire_error);
  wire_header bad_endian = h;
  bad_endian.endian = h.endian == wire_endian_little ? wire_endian_big
                                                     : wire_endian_little;
  EXPECT_THROW(validate_header(bad_endian, 4), wire_error);
  wire_header bad_src = h;
  bad_src.src = 4;
  EXPECT_THROW(validate_header(bad_src, 4), wire_error);
}

TEST(WireFormat, HandshakeValidationNamesTheMismatch) {
  wire_handshake ok;
  ok.src_rank = 1;
  ok.n_ranks = 4;
  ok.channel = 7;
  EXPECT_NO_THROW(validate_handshake(ok, 4, 7, "test"));
  wire_handshake wrong_ranks = ok;
  wrong_ranks.n_ranks = 8;
  EXPECT_THROW(validate_handshake(wrong_ranks, 4, 7, "test"), wire_error);
  wire_handshake wrong_channel = ok;
  wrong_channel.channel = 8;
  EXPECT_THROW(validate_handshake(wrong_channel, 4, 7, "test"), wire_error);
}

TEST(WireFormat, NameHashIsStable) {
  // The FNV-1a constant vector: registration-order divergence detection
  // depends on both sides computing the identical hash.
  static_assert(wire_name_hash("") == 2166136261u);
  static_assert(wire_name_hash("dpg.td.report") == wire_name_hash("dpg.td.report"));
  static_assert(wire_name_hash("sssp.relax") != wire_name_hash("cc.search"));
  static_assert(sizeof(wire_header) == 56);
  static_assert(sizeof(wire_handshake) == 24);
  SUCCEED();
}

}  // namespace
}  // namespace dpg::ampp
