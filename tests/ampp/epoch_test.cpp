// Epoch semantics (§II, §III-D): an epoch ends only when all actions and
// their transitive message cascades have finished on all ranks; epoch_flush
// performs pending local work; try_finish detects global quiescence without
// ever declaring it early.
#include "ampp/epoch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ampp/transport.hpp"

namespace dpg::ampp {
namespace {

struct token {
  std::uint64_t depth;
  std::uint64_t payload;
};

TEST(Epoch, EndWaitsForHandlerCascades) {
  // Each token of depth d spawns two tokens of depth d-1 on other ranks.
  // Epoch end must wait for the entire binary tree: 2^(d+1)-1 handlers.
  constexpr rank_t kRanks = 4;
  constexpr std::uint64_t kDepth = 9;
  transport tp(transport_config{.n_ranks = kRanks, .coalescing_size = 8});
  std::atomic<std::uint64_t> handled{0};
  message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("tree", [&](transport_context& ctx, const token& t) {
    ++handled;
    if (t.depth > 0) {
      mtp->send(ctx, (ctx.rank() + 1) % kRanks, token{t.depth - 1, 0});
      mtp->send(ctx, (ctx.rank() + 2) % kRanks, token{t.depth - 1, 0});
    }
  });
  mtp = &mt;
  std::atomic<std::uint64_t> observed_at_exit{0};
  tp.run([&](transport_context& ctx) {
    {
      epoch ep(ctx);
      if (ctx.rank() == 0) mt.send(ctx, 1, token{kDepth, 0});
    }
    if (ctx.rank() == 0) observed_at_exit = handled.load();
  });
  const std::uint64_t expect = (1ULL << (kDepth + 1)) - 1;
  EXPECT_EQ(handled.load(), expect);
  // The count must already be complete the moment rank 0 leaves the epoch.
  EXPECT_EQ(observed_at_exit.load(), expect);
}

TEST(Epoch, EmptyEpochTerminates) {
  transport tp(transport_config{.n_ranks = 3});
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);  // nobody sends anything
  });
  EXPECT_GE(tp.stats().epochs.load(), 1u);
}

TEST(Epoch, SequentialEpochsAreIsolated) {
  // Messages from epoch k must all be handled before epoch k+1's handlers
  // see anything: we tag each epoch's messages and check the tag.
  constexpr rank_t kRanks = 3;
  transport tp(transport_config{.n_ranks = kRanks});
  std::atomic<std::uint64_t> current_tag{0};
  std::atomic<int> mismatches{0};
  auto& mt = tp.make_message_type<token>("tag", [&](transport_context&, const token& t) {
    if (t.payload != current_tag.load()) ++mismatches;
  });
  tp.run([&](transport_context& ctx) {
    for (std::uint64_t tag = 0; tag < 5; ++tag) {
      if (ctx.rank() == 0) current_tag = tag;
      epoch ep(ctx);
      for (rank_t d = 0; d < kRanks; ++d) mt.send(ctx, d, token{0, tag});
      ep.end();
      // The epoch-entry barrier of the next iteration orders the tag bump
      // (rank 0, pre-epoch) before any send of that next epoch.
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Epoch, FlushPerformsLocalWork) {
  // After epoch_flush on a single rank, every self-addressed message
  // (including handler-generated ones) must have been handled.
  transport tp(transport_config{.n_ranks = 1, .coalescing_size = 16});
  std::atomic<std::uint64_t> handled{0};
  message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("f", [&](transport_context& ctx, const token& t) {
    ++handled;
    if (t.depth > 0) mtp->send(ctx, 0, token{t.depth - 1, 0});
  });
  mtp = &mt;
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    mt.send(ctx, 0, token{41, 0});
    ep.flush();
    EXPECT_EQ(handled.load(), 42u);  // whole chain done before flush returns
  });
}

TEST(Epoch, TryFinishSucceedsOnlyWhenGloballyQuiet) {
  // Rank 0 keeps injecting work in bounded portions; try_finish must return
  // false while work remains and true once everything is drained.
  constexpr rank_t kRanks = 2;
  transport tp(transport_config{.n_ranks = kRanks});
  std::atomic<std::uint64_t> handled{0};
  auto& mt = tp.make_message_type<token>(
      "w", [&](transport_context&, const token&) { ++handled; });
  std::atomic<int> false_results{0};
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    if (ctx.rank() == 0) {
      for (int burst = 0; burst < 3; ++burst) {
        for (int i = 0; i < 10; ++i) mt.send(ctx, 1, token{0, 0});
        if (!ep.try_finish()) {
          ++false_results;
        } else {
          // try_finish can only succeed after everything was delivered;
          // but with more bursts to send this would be a bug in the test,
          // so re-enter: not allowed — instead just stop sending.
          break;
        }
      }
    }
    // Everyone converges on end() (idempotent if already ended).
    ep.end();
  });
  EXPECT_EQ(handled.load(), 30u);
}

TEST(Epoch, TryFinishLoopTerminatesForAllRanks) {
  // All ranks seed work, then loop on try_finish like the uncoordinated
  // Δ-stepping described in §III-D.
  constexpr rank_t kRanks = 4;
  transport tp(transport_config{.n_ranks = kRanks, .coalescing_size = 4});
  std::atomic<std::uint64_t> handled{0};
  message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("t", [&](transport_context& ctx, const token& t) {
    ++handled;
    if (t.depth > 0) mtp->send(ctx, (ctx.rank() + 1) % kRanks, token{t.depth - 1, 0});
  });
  mtp = &mt;
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    mt.send(ctx, (ctx.rank() + 1) % kRanks, token{20, 0});
    while (!ep.try_finish()) {
    }
  });
  EXPECT_EQ(handled.load(), kRanks * 21u);
}

TEST(Epoch, TerminationIsNeverEarly) {
  // Long dependency chain through all ranks with tiny coalescing buffers:
  // the classic stress for termination detectors. If detection fired early,
  // the handled count at epoch exit would be short.
  constexpr rank_t kRanks = 5;
  transport tp(transport_config{.n_ranks = kRanks, .coalescing_size = 1});
  std::atomic<std::uint64_t> handled{0};
  message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("c", [&](transport_context& ctx, const token& t) {
    ++handled;
    if (t.depth > 0) mtp->send(ctx, (ctx.rank() + 1) % kRanks, token{t.depth - 1, 0});
  });
  mtp = &mt;
  for (int trial = 0; trial < 5; ++trial) {
    handled = 0;
    tp.run([&](transport_context& ctx) {
      epoch ep(ctx);
      if (ctx.rank() == 0) mt.send(ctx, 1, token{1000, 0});
    });
    ASSERT_EQ(handled.load(), 1001u) << "trial " << trial;
  }
}

TEST(Epoch, FlushRankIdempotent) {
  // epoch_flush is a progress primitive, not a delivery event: flushing
  // again with nothing pending must deliver nothing new. Single rank so
  // the global counters can be compared race-free between the two calls.
  transport tp(transport_config{.n_ranks = 1, .coalescing_size = 64});
  std::atomic<std::uint64_t> handled{0};
  auto& mt = tp.make_message_type<token>(
      "idem", [&](transport_context&, const token&) { ++handled; });
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    for (int i = 0; i < 10; ++i) mt.send(ctx, 0, token{0, 0});
    ep.flush();
    const std::uint64_t sent_1 = tp.stats().messages_sent.load();
    const std::uint64_t handled_1 = handled.load();
    EXPECT_EQ(handled_1, 10u);
    ep.flush();  // double flush: no pending work, nothing may move
    EXPECT_EQ(tp.stats().messages_sent.load(), sent_1);
    EXPECT_EQ(handled.load(), handled_1);
    mt.flush_rank(0);  // ditto for the raw per-type flush
    EXPECT_EQ(tp.stats().messages_sent.load(), sent_1);
  });
  EXPECT_EQ(handled.load(), 10u);
}

TEST(Epoch, DoubleFlushNeverDuplicatesDelivery) {
  // Multi-rank variant: redundant flushes anywhere in the epoch must not
  // change the total payload count.
  constexpr rank_t kRanks = 3;
  transport tp(transport_config{.n_ranks = kRanks, .coalescing_size = 64});
  std::atomic<std::uint64_t> handled{0};
  auto& mt = tp.make_message_type<token>(
      "dd", [&](transport_context&, const token&) { ++handled; });
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    for (int i = 0; i < 10; ++i) mt.send(ctx, (ctx.rank() + 1) % kRanks, token{0, 0});
    ep.flush();
    ep.flush();
    mt.flush_rank(ctx.rank());
  });
  EXPECT_EQ(handled.load(), 10u * kRanks);
  EXPECT_EQ(tp.stats().messages_sent.load(), 10u * kRanks);
}

TEST(Epoch, ReentryAfterEmptyRound) {
  // An epoch in which nothing was sent must leave the transport in a state
  // where the next epoch still runs full cascades — and an empty flush
  // round inside an epoch must not wedge later sends of the same epoch.
  constexpr rank_t kRanks = 3;
  transport tp(transport_config{.n_ranks = kRanks, .coalescing_size = 4});
  std::atomic<std::uint64_t> handled{0};
  message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("re", [&](transport_context& ctx, const token& t) {
    ++handled;
    if (t.depth > 0) mtp->send(ctx, (ctx.rank() + 1) % kRanks, token{t.depth - 1, 0});
  });
  mtp = &mt;
  tp.run([&](transport_context& ctx) {
    {
      epoch ep(ctx);  // completely empty round
    }
    {
      epoch ep(ctx);
      ep.flush();  // empty flush first...
      if (ctx.rank() == 0) mt.send(ctx, 1, token{4, 0});  // ...then real work
    }
    {
      epoch ep(ctx);  // empty again after the cascade
    }
  });
  EXPECT_EQ(handled.load(), 5u);
  EXPECT_GE(tp.stats().epochs.load(), 3u);
}

// --- Occupancy-counter conservation (the O(1) quiescence fast path) -------
//
// rank_buffers_empty is now a relaxed counter read; these tests pin the
// counter to the ground truth (a locked brute-force recount) at the
// observable quiescence points of an epoch.

TEST(Epoch, OccupancyTracksBufferedPayloads) {
  transport tp(transport_config{.n_ranks = 1, .coalescing_size = 64});
  auto& mt = tp.make_message_type<token>("occ", [](transport_context&, const token&) {});
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    EXPECT_EQ(mt.rank_occupancy(0), 0);
    EXPECT_TRUE(mt.rank_buffers_empty(0));
    for (int i = 1; i <= 5; ++i) {
      mt.send(ctx, 0, token{0, 0});
      EXPECT_EQ(mt.rank_occupancy(0), i);
      EXPECT_EQ(mt.rank_occupancy_scan(0), i);
      EXPECT_FALSE(mt.rank_buffers_empty(0));
    }
    mt.flush_rank(0);
    EXPECT_EQ(mt.rank_occupancy(0), 0);
    EXPECT_EQ(mt.rank_occupancy_scan(0), 0);
    EXPECT_TRUE(mt.rank_buffers_empty(0));
  });
  EXPECT_TRUE(tp.occupancy_consistent());
}

TEST(Epoch, OccupancyTracksReductionCache) {
  // With a reduction cache the counter must see fresh slots (+1), combines
  // (0), evictions (net +1: the evicted payload moves to the buffer while
  // the slot stays used), and flushes (-everything).
  transport tp(transport_config{.n_ranks = 1, .coalescing_size = 64});
  auto& mt = tp.make_message_type<token>("red", [](transport_context&, const token&) {});
  mt.enable_reduction([](const token& t) { return t.depth; },
                      [](const token& a, const token& b) {
                        return token{a.depth, a.payload < b.payload ? a.payload : b.payload};
                      },
                      /*cache_bits=*/2);  // 4 slots: tiny, to force evictions
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    const auto evictions = [&] { return tp.stats().cache_evictions.load(); };
    const std::uint64_t ev0 = evictions();
    mt.send(ctx, 0, token{1, 10});  // fresh slot: occupancy 1
    EXPECT_EQ(mt.rank_occupancy(0), 1);
    mt.send(ctx, 0, token{1, 7});  // combines in place: still 1
    EXPECT_EQ(mt.rank_occupancy(0), 1);
    EXPECT_EQ(mt.rank_occupancy_scan(0), 1);
    // Distinct keys until something evicts; every send adds exactly one.
    std::uint64_t key = 2;
    while (evictions() == ev0) {
      mt.send(ctx, 0, token{key++, 1});
      EXPECT_EQ(mt.rank_occupancy(0), mt.rank_occupancy_scan(0));
    }
    EXPECT_GT(mt.rank_occupancy(0), 0);
    mt.flush_rank(0);
    EXPECT_EQ(mt.rank_occupancy(0), 0);
    EXPECT_EQ(mt.rank_occupancy_scan(0), 0);
    EXPECT_TRUE(mt.rank_buffers_empty(0));
    ctx.drain();
  });
  EXPECT_TRUE(tp.occupancy_consistent());
}

TEST(Epoch, DirtyLaneFlushSkipsCleanLanes) {
  // A flush over many destinations with one dirty lane must skip the rest
  // (counted), and a second flush with nothing pending must skip everything.
  // The flush counters are transport-global, so ranks 1..3 park on a plain
  // atomic (no transport activity) while rank 0 measures; the epoch
  // constructor's collective entry ensures all barrier traffic has been
  // flushed before the baseline snapshot.
  constexpr rank_t kRanks = 4;
  transport tp(transport_config{.n_ranks = kRanks, .coalescing_size = 64});
  auto& mt = tp.make_message_type<token>("dirty", [](transport_context&, const token&) {});
  std::atomic<bool> measured{false};
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    if (ctx.rank() == 0) {
      const std::uint64_t skips0 = tp.stats().flush_lane_skips.load();
      const std::uint64_t visits0 = tp.stats().flush_lane_visits.load();
      mt.send(ctx, 1, token{0, 0});
      mt.flush_rank(0);
      const std::uint64_t visited = tp.stats().flush_lane_visits.load() - visits0;
      EXPECT_EQ(visited, 1u);  // only the 0->1 lane was locked
      EXPECT_GE(tp.stats().flush_lane_skips.load() - skips0, kRanks - 1u);
      const std::uint64_t skips1 = tp.stats().flush_lane_skips.load();
      const std::uint64_t visits1 = tp.stats().flush_lane_visits.load();
      mt.flush_rank(0);  // nothing pending: occupancy short-circuits
      EXPECT_EQ(tp.stats().flush_lane_visits.load(), visits1);
      EXPECT_EQ(tp.stats().flush_lane_skips.load() - skips1, kRanks);
      measured.store(true, std::memory_order_release);
    } else {
      while (!measured.load(std::memory_order_acquire)) std::this_thread::yield();
    }
  });
  EXPECT_TRUE(tp.occupancy_consistent());
}

TEST(Epoch, EnvelopePoolRecyclesBuffers) {
  // Repeated flush/deliver cycles on one rank must start reusing envelope
  // byte buffers instead of allocating fresh ones each flush.
  transport tp(transport_config{.n_ranks = 1, .coalescing_size = 4});
  std::atomic<std::uint64_t> handled{0};
  auto& mt = tp.make_message_type<token>(
      "pool", [&](transport_context&, const token&) { ++handled; });
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    for (int round = 0; round < 10; ++round) {
      for (int i = 0; i < 3; ++i) mt.send(ctx, 0, token{0, 0});
      mt.flush_rank(0);
      ctx.drain();  // returns the envelope's bytes to the pool
    }
  });
  EXPECT_EQ(handled.load(), 30u);
  EXPECT_GT(tp.stats().pool_reuses.load(), 0u);
  EXPECT_LE(tp.stats().pool_reuses.load(), tp.stats().envelopes_sent.load());
}

TEST(Epoch, OccupancyConsistentAfterCascades) {
  // The counters must survive real multi-rank cascades with tiny buffers
  // (lots of capacity flushes) — checked via the transport-wide oracle.
  constexpr rank_t kRanks = 4;
  transport tp(transport_config{.n_ranks = kRanks, .coalescing_size = 2});
  std::atomic<std::uint64_t> handled{0};
  message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("cons", [&](transport_context& ctx, const token& t) {
    ++handled;
    if (t.depth > 0) mtp->send(ctx, (ctx.rank() + 1) % kRanks, token{t.depth - 1, 0});
  });
  mtp = &mt;
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    mt.send(ctx, (ctx.rank() + 1) % kRanks, token{30, 0});
  });
  EXPECT_EQ(handled.load(), kRanks * 31u);
  EXPECT_TRUE(tp.occupancy_consistent());
  for (rank_t r = 0; r < kRanks; ++r) {
    EXPECT_EQ(mt.rank_occupancy(r), 0) << "rank " << r;
    EXPECT_EQ(mt.rank_occupancy_scan(r), 0) << "rank " << r;
    EXPECT_TRUE(mt.rank_buffers_empty(r)) << "rank " << r;
  }
  EXPECT_LE(tp.stats().envelopes_sent.load(), tp.stats().flush_lane_visits.load());
}

}  // namespace
}  // namespace dpg::ampp
