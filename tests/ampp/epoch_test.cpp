// Epoch semantics (§II, §III-D): an epoch ends only when all actions and
// their transitive message cascades have finished on all ranks; epoch_flush
// performs pending local work; try_finish detects global quiescence without
// ever declaring it early.
#include "ampp/epoch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "ampp/transport.hpp"

namespace dpg::ampp {
namespace {

struct token {
  std::uint64_t depth;
  std::uint64_t payload;
};

TEST(Epoch, EndWaitsForHandlerCascades) {
  // Each token of depth d spawns two tokens of depth d-1 on other ranks.
  // Epoch end must wait for the entire binary tree: 2^(d+1)-1 handlers.
  constexpr rank_t kRanks = 4;
  constexpr std::uint64_t kDepth = 9;
  transport tp(transport_config{.n_ranks = kRanks, .coalescing_size = 8});
  std::atomic<std::uint64_t> handled{0};
  message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("tree", [&](transport_context& ctx, const token& t) {
    ++handled;
    if (t.depth > 0) {
      mtp->send(ctx, (ctx.rank() + 1) % kRanks, token{t.depth - 1, 0});
      mtp->send(ctx, (ctx.rank() + 2) % kRanks, token{t.depth - 1, 0});
    }
  });
  mtp = &mt;
  std::atomic<std::uint64_t> observed_at_exit{0};
  tp.run([&](transport_context& ctx) {
    {
      epoch ep(ctx);
      if (ctx.rank() == 0) mt.send(ctx, 1, token{kDepth, 0});
    }
    if (ctx.rank() == 0) observed_at_exit = handled.load();
  });
  const std::uint64_t expect = (1ULL << (kDepth + 1)) - 1;
  EXPECT_EQ(handled.load(), expect);
  // The count must already be complete the moment rank 0 leaves the epoch.
  EXPECT_EQ(observed_at_exit.load(), expect);
}

TEST(Epoch, EmptyEpochTerminates) {
  transport tp(transport_config{.n_ranks = 3});
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);  // nobody sends anything
  });
  EXPECT_GE(tp.stats().epochs.load(), 1u);
}

TEST(Epoch, SequentialEpochsAreIsolated) {
  // Messages from epoch k must all be handled before epoch k+1's handlers
  // see anything: we tag each epoch's messages and check the tag.
  constexpr rank_t kRanks = 3;
  transport tp(transport_config{.n_ranks = kRanks});
  std::atomic<std::uint64_t> current_tag{0};
  std::atomic<int> mismatches{0};
  auto& mt = tp.make_message_type<token>("tag", [&](transport_context&, const token& t) {
    if (t.payload != current_tag.load()) ++mismatches;
  });
  tp.run([&](transport_context& ctx) {
    for (std::uint64_t tag = 0; tag < 5; ++tag) {
      if (ctx.rank() == 0) current_tag = tag;
      epoch ep(ctx);
      for (rank_t d = 0; d < kRanks; ++d) mt.send(ctx, d, token{0, tag});
      ep.end();
      // The epoch-entry barrier of the next iteration orders the tag bump
      // (rank 0, pre-epoch) before any send of that next epoch.
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Epoch, FlushPerformsLocalWork) {
  // After epoch_flush on a single rank, every self-addressed message
  // (including handler-generated ones) must have been handled.
  transport tp(transport_config{.n_ranks = 1, .coalescing_size = 16});
  std::atomic<std::uint64_t> handled{0};
  message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("f", [&](transport_context& ctx, const token& t) {
    ++handled;
    if (t.depth > 0) mtp->send(ctx, 0, token{t.depth - 1, 0});
  });
  mtp = &mt;
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    mt.send(ctx, 0, token{41, 0});
    ep.flush();
    EXPECT_EQ(handled.load(), 42u);  // whole chain done before flush returns
  });
}

TEST(Epoch, TryFinishSucceedsOnlyWhenGloballyQuiet) {
  // Rank 0 keeps injecting work in bounded portions; try_finish must return
  // false while work remains and true once everything is drained.
  constexpr rank_t kRanks = 2;
  transport tp(transport_config{.n_ranks = kRanks});
  std::atomic<std::uint64_t> handled{0};
  auto& mt = tp.make_message_type<token>(
      "w", [&](transport_context&, const token&) { ++handled; });
  std::atomic<int> false_results{0};
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    if (ctx.rank() == 0) {
      for (int burst = 0; burst < 3; ++burst) {
        for (int i = 0; i < 10; ++i) mt.send(ctx, 1, token{0, 0});
        if (!ep.try_finish()) {
          ++false_results;
        } else {
          // try_finish can only succeed after everything was delivered;
          // but with more bursts to send this would be a bug in the test,
          // so re-enter: not allowed — instead just stop sending.
          break;
        }
      }
    }
    // Everyone converges on end() (idempotent if already ended).
    ep.end();
  });
  EXPECT_EQ(handled.load(), 30u);
}

TEST(Epoch, TryFinishLoopTerminatesForAllRanks) {
  // All ranks seed work, then loop on try_finish like the uncoordinated
  // Δ-stepping described in §III-D.
  constexpr rank_t kRanks = 4;
  transport tp(transport_config{.n_ranks = kRanks, .coalescing_size = 4});
  std::atomic<std::uint64_t> handled{0};
  message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("t", [&](transport_context& ctx, const token& t) {
    ++handled;
    if (t.depth > 0) mtp->send(ctx, (ctx.rank() + 1) % kRanks, token{t.depth - 1, 0});
  });
  mtp = &mt;
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    mt.send(ctx, (ctx.rank() + 1) % kRanks, token{20, 0});
    while (!ep.try_finish()) {
    }
  });
  EXPECT_EQ(handled.load(), kRanks * 21u);
}

TEST(Epoch, TerminationIsNeverEarly) {
  // Long dependency chain through all ranks with tiny coalescing buffers:
  // the classic stress for termination detectors. If detection fired early,
  // the handled count at epoch exit would be short.
  constexpr rank_t kRanks = 5;
  transport tp(transport_config{.n_ranks = kRanks, .coalescing_size = 1});
  std::atomic<std::uint64_t> handled{0};
  message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("c", [&](transport_context& ctx, const token& t) {
    ++handled;
    if (t.depth > 0) mtp->send(ctx, (ctx.rank() + 1) % kRanks, token{t.depth - 1, 0});
  });
  mtp = &mt;
  for (int trial = 0; trial < 5; ++trial) {
    handled = 0;
    tp.run([&](transport_context& ctx) {
      epoch ep(ctx);
      if (ctx.rank() == 0) mt.send(ctx, 1, token{1000, 0});
    });
    ASSERT_EQ(handled.load(), 1001u) << "trial " << trial;
  }
}

TEST(Epoch, FlushRankIdempotent) {
  // epoch_flush is a progress primitive, not a delivery event: flushing
  // again with nothing pending must deliver nothing new. Single rank so
  // the global counters can be compared race-free between the two calls.
  transport tp(transport_config{.n_ranks = 1, .coalescing_size = 64});
  std::atomic<std::uint64_t> handled{0};
  auto& mt = tp.make_message_type<token>(
      "idem", [&](transport_context&, const token&) { ++handled; });
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    for (int i = 0; i < 10; ++i) mt.send(ctx, 0, token{0, 0});
    ep.flush();
    const std::uint64_t sent_1 = tp.stats().messages_sent.load();
    const std::uint64_t handled_1 = handled.load();
    EXPECT_EQ(handled_1, 10u);
    ep.flush();  // double flush: no pending work, nothing may move
    EXPECT_EQ(tp.stats().messages_sent.load(), sent_1);
    EXPECT_EQ(handled.load(), handled_1);
    mt.flush_rank(0);  // ditto for the raw per-type flush
    EXPECT_EQ(tp.stats().messages_sent.load(), sent_1);
  });
  EXPECT_EQ(handled.load(), 10u);
}

TEST(Epoch, DoubleFlushNeverDuplicatesDelivery) {
  // Multi-rank variant: redundant flushes anywhere in the epoch must not
  // change the total payload count.
  constexpr rank_t kRanks = 3;
  transport tp(transport_config{.n_ranks = kRanks, .coalescing_size = 64});
  std::atomic<std::uint64_t> handled{0};
  auto& mt = tp.make_message_type<token>(
      "dd", [&](transport_context&, const token&) { ++handled; });
  tp.run([&](transport_context& ctx) {
    epoch ep(ctx);
    for (int i = 0; i < 10; ++i) mt.send(ctx, (ctx.rank() + 1) % kRanks, token{0, 0});
    ep.flush();
    ep.flush();
    mt.flush_rank(ctx.rank());
  });
  EXPECT_EQ(handled.load(), 10u * kRanks);
  EXPECT_EQ(tp.stats().messages_sent.load(), 10u * kRanks);
}

TEST(Epoch, ReentryAfterEmptyRound) {
  // An epoch in which nothing was sent must leave the transport in a state
  // where the next epoch still runs full cascades — and an empty flush
  // round inside an epoch must not wedge later sends of the same epoch.
  constexpr rank_t kRanks = 3;
  transport tp(transport_config{.n_ranks = kRanks, .coalescing_size = 4});
  std::atomic<std::uint64_t> handled{0};
  message_type<token>* mtp = nullptr;
  auto& mt = tp.make_message_type<token>("re", [&](transport_context& ctx, const token& t) {
    ++handled;
    if (t.depth > 0) mtp->send(ctx, (ctx.rank() + 1) % kRanks, token{t.depth - 1, 0});
  });
  mtp = &mt;
  tp.run([&](transport_context& ctx) {
    {
      epoch ep(ctx);  // completely empty round
    }
    {
      epoch ep(ctx);
      ep.flush();  // empty flush first...
      if (ctx.rank() == 0) mt.send(ctx, 1, token{4, 0});  // ...then real work
    }
    {
      epoch ep(ctx);  // empty again after the cascade
    }
  });
  EXPECT_EQ(handled.load(), 5u);
  EXPECT_GE(tp.stats().epochs.load(), 3u);
}

}  // namespace
}  // namespace dpg::ampp
