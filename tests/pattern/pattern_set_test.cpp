// The pattern_set container (§III's top-level "pattern" construct).
#include "pattern/pattern.hpp"

#include "ampp/epoch.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace dpg::pattern {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::vertex_id;

struct world {
  distributed_graph g;
  pmap::vertex_property_map<vertex_id> pnt, chg;
  pmap::lock_map locks;
  ampp::transport tp;

  world()
      : g(8, graph::symmetrize(graph::path_graph(8)), distribution::cyclic(8, 2)),
        pnt(g, graph::invalid_vertex),
        chg(g, 0),
        locks(g.dist(), pmap::lock_scheme::per_vertex),
        tp(ampp::transport_config{.n_ranks = 2}) {}
};

pattern_set make_cc_pattern(world& w) {
  property P(w.pnt);
  property C(w.chg);
  pattern_set cc("CC");
  cc.add(instantiate(w.tp, w.g, w.locks,
                     make_action("cc_search", out_edges_gen{},
                                 when(P(trg(e_)) == lit(graph::invalid_vertex),
                                      assign(P(trg(e_)), P(v_))))));
  cc.add(instantiate(w.tp, w.g, w.locks,
                     make_action("cc_jump", no_generator{},
                                 when(C(P(v_)) < C(v_), assign(C(v_), C(P(v_)))))));
  return cc;
}

TEST(PatternSet, NamesAndLookup) {
  world w;
  auto cc = make_cc_pattern(w);
  EXPECT_EQ(cc.name(), "CC");
  EXPECT_EQ(cc.size(), 2u);
  EXPECT_TRUE(cc.contains("cc_search"));
  EXPECT_TRUE(cc.contains("cc_jump"));
  EXPECT_FALSE(cc.contains("relax"));
  EXPECT_EQ(cc["cc_search"].name(), "cc_search");
  EXPECT_EQ(cc["cc_jump"].plan().gather_hops, 2);
}

TEST(PatternSet, ActionsRemainUsable) {
  world w;
  auto cc = make_cc_pattern(w);
  w.pnt[0] = 0;
  w.tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    if (w.g.owner(0) == ctx.rank()) cc["cc_search"](ctx, 0);
  });
  EXPECT_EQ(w.pnt[1], 0u);  // neighbour claimed by search from 0
}

TEST(PatternSet, ExplainAllListsEveryAction) {
  world w;
  auto cc = make_cc_pattern(w);
  const std::string text = cc.explain_all();
  EXPECT_NE(text.find("pattern CC (2 action(s))"), std::string::npos);
  EXPECT_NE(text.find("action cc_search"), std::string::npos);
  EXPECT_NE(text.find("action cc_jump"), std::string::npos);
}

TEST(PatternSetDeathTest, DuplicateNamesRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        world w;
        property P(w.pnt);
        pattern_set ps("dup");
        ps.add(instantiate(w.tp, w.g, w.locks,
                           make_action("a", no_generator{},
                                       when(P(v_) == lit<vertex_id>(0),
                                            assign(P(v_), lit<vertex_id>(1))))));
        ps.add(instantiate(w.tp, w.g, w.locks,
                           make_action("a", no_generator{},
                                       when(P(v_) == lit<vertex_id>(1),
                                            assign(P(v_), lit<vertex_id>(2))))));
      },
      "duplicate");
}

TEST(PatternSetDeathTest, UnknownLookupRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        world w;
        auto cc = make_cc_pattern(w);
        (void)cc["nope"];
      },
      "unknown action");
}

}  // namespace
}  // namespace dpg::pattern
