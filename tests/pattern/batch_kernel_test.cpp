// Forced-ISA differential matrix for the envelope-batch kernels.
//
// Two layers of evidence that every vector tier is bit-identical to the
// scalar reference:
//
//  1. Kernel level — each kernel_table entry of every available tier is
//     compared against a plain C++ reference computed here (not against
//     the scalar table, so the scalar tier itself is under test too) over
//     adversarial inputs: NaNs (quiet and signaling), infinities, both
//     zeros, denormals, exact ties, and batch sizes straddling every
//     vector width (0, 1, widths ± 1, and well past them).
//
//  2. Action level — a compiled relax pattern is run to its fixed point
//     with each tier forced via simd::override_level(); the resulting
//     property map must match the scalar run bit for bit, including
//     envelopes holding duplicate targets and coalescing sizes that are
//     not a multiple of any vector width. (Modification and message
//     counts are NOT compared across runs: the chaotic schedule makes
//     them run-dependent even at a fixed tier — only the fixed point is
//     deterministic.)
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "pattern/action.hpp"
#include "util/simd.hpp"

namespace dpg::pattern {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;
using graph::vertex_id;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Restores the process-wide SIMD override even when an assertion fails.
struct override_guard {
  ~override_guard() { simd::clear_override(); }
};

// Batch sizes that exercise empty input, every tier's scalar tail, and
// bodies spanning multiple vector iterations (widths are 2, 4 and 8).
const std::vector<std::size_t>& batch_sizes() {
  static const std::vector<std::size_t> sizes = {0,  1,  2,  3,  4,  5,  7, 8,
                                                 9,  15, 16, 17, 31, 33, 67};
  return sizes;
}

// A pool of adversarial 64-bit patterns mixed into the random streams.
std::vector<std::uint64_t> special_bits() {
  return {
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::quiet_NaN()),
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::signaling_NaN()),
      std::bit_cast<std::uint64_t>(kInf),
      std::bit_cast<std::uint64_t>(-kInf),
      std::bit_cast<std::uint64_t>(0.0),
      std::bit_cast<std::uint64_t>(-0.0),
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::denorm_min()),
      std::bit_cast<std::uint64_t>(-std::numeric_limits<double>::denorm_min()),
      std::uint64_t{0},
      ~std::uint64_t{0},
      std::uint64_t{0x8000000000000000ULL},  // sign-bias boundary
      std::uint64_t{0x7fffffffffffffffULL},
  };
}

std::vector<std::uint64_t> random_words(std::mt19937_64& rng, std::size_t n) {
  const auto specials = special_bits();
  std::vector<std::uint64_t> out(n);
  for (auto& w : out) {
    switch (rng() % 4) {
      case 0: w = specials[rng() % specials.size()]; break;
      case 1: w = rng() % 8; break;  // force exact ties between streams
      default: w = rng(); break;
    }
  }
  return out;
}

TEST(BatchKernel, DeinterleaveMatchesReferenceAtEveryTier) {
  std::mt19937_64 rng(0xD1E5);
  for (std::size_t n : batch_sizes()) {
    std::vector<std::uint64_t> lo_ref = random_words(rng, n);
    std::vector<std::uint64_t> hi_ref = random_words(rng, n);
    std::vector<std::byte> recs(n * 16);
    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(recs.data() + 16 * i, &lo_ref[i], 8);
      std::memcpy(recs.data() + 16 * i + 8, &hi_ref[i], 8);
    }
    for (simd::level l : simd::available_levels()) {
      SCOPED_TRACE(std::string("tier=") + simd::name(l) +
                   " n=" + std::to_string(n));
      // Canary padding proves the kernels never write past n.
      std::vector<std::uint64_t> lo(n + 2, 0xCACACACACACACACAULL);
      std::vector<std::uint64_t> hi(n + 2, 0xCACACACACACACACAULL);
      simd::kernels(l).deinterleave2_u64(recs.data(), n, lo.data(), hi.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(lo[i], lo_ref[i]) << "lo[" << i << "]";
        EXPECT_EQ(hi[i], hi_ref[i]) << "hi[" << i << "]";
      }
      EXPECT_EQ(lo[n], 0xCACACACACACACACAULL);
      EXPECT_EQ(hi[n], 0xCACACACACACACACAULL);
    }
  }
}

TEST(BatchKernel, FiltersMatchReferenceAtEveryTier) {
  struct filter_case {
    const char* name;
    std::size_t (*simd::kernel_table::* fn)(const std::uint64_t*,
                                            const std::uint64_t*, std::size_t,
                                            std::uint8_t*);
    bool (*ref)(std::uint64_t, std::uint64_t);
  };
  const filter_case cases[] = {
      {"lt_f64", &simd::kernel_table::filter_lt_f64,
       [](std::uint64_t p, std::uint64_t c) {
         return std::bit_cast<double>(p) < std::bit_cast<double>(c);
       }},
      {"gt_f64", &simd::kernel_table::filter_gt_f64,
       [](std::uint64_t p, std::uint64_t c) {
         return std::bit_cast<double>(p) > std::bit_cast<double>(c);
       }},
      {"lt_u64", &simd::kernel_table::filter_lt_u64,
       [](std::uint64_t p, std::uint64_t c) { return p < c; }},
      {"gt_u64", &simd::kernel_table::filter_gt_u64,
       [](std::uint64_t p, std::uint64_t c) { return p > c; }},
  };
  std::mt19937_64 rng(0xF17E);
  for (std::size_t n : batch_sizes()) {
    for (int round = 0; round < 8; ++round) {
      const std::vector<std::uint64_t> prop = random_words(rng, n);
      const std::vector<std::uint64_t> cur = random_words(rng, n);
      for (const filter_case& fc : cases) {
        std::vector<std::uint8_t> ref_mask(n);
        std::size_t ref_hits = 0;
        for (std::size_t i = 0; i < n; ++i) {
          ref_mask[i] = fc.ref(prop[i], cur[i]) ? 1 : 0;
          ref_hits += ref_mask[i];
        }
        for (simd::level l : simd::available_levels()) {
          SCOPED_TRACE(std::string("filter=") + fc.name + " tier=" +
                       simd::name(l) + " n=" + std::to_string(n) +
                       " round=" + std::to_string(round));
          std::vector<std::uint8_t> mask(n + 2, 0xEE);
          const std::size_t hits = (simd::kernels(l).*(fc.fn))(
              prop.data(), cur.data(), n, mask.data());
          EXPECT_EQ(hits, ref_hits);
          for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(mask[i], ref_mask[i]) << "mask[" << i << "]";
          EXPECT_EQ(mask[n], 0xEE);  // no overwrite past n
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Action level: a compiled relax run under each forced tier must leave the
// property map bit-identical to the scalar run.
// ---------------------------------------------------------------------------

struct relax_run {
  std::vector<std::uint64_t> bits;  // final pmap state, as bit patterns
  std::uint64_t modifications = 0;
  std::uint64_t batch_records = 0;
  std::uint64_t batch_kernels = 0;
  bool batch_plan = false;

  bool operator==(const relax_run& o) const { return bits == o.bits; }
};

/// Runs the f64 min-relax (SSSP shape) to its fixed point at a forced tier.
relax_run run_sssp(simd::level l, const std::vector<graph::edge>& edges,
                   vertex_id n, std::size_t coalescing,
                   compile_options::toggle reduce = compile_options::toggle::auto_) {
  override_guard restore;
  simd::override_level(l);
  distributed_graph g(n, edges, distribution::cyclic(n, 3));
  pmap::vertex_property_map<double> dist_map(g, kInf);
  pmap::edge_property_map<double> weight_map(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 11, 7.0);
  });
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(
      ampp::transport_config{.n_ranks = 3, .coalescing_size = coalescing});
  property dist(dist_map);
  property weight(weight_map);
  auto relax = instantiate(
      tp, g, locks,
      make_action("relax", out_edges_gen{},
                  when(dist(trg(e_)) > dist(v_) + weight(e_),
                       assign(dist(trg(e_)), dist(v_) + weight(e_)))),
      compile_options{.fast_path = compile_options::toggle::on,
                      .batch_kernel = compile_options::toggle::on,
                      .fast_reduction = reduce});
  relax->work([&](ampp::transport_context& ctx, vertex_id dep) { (*relax)(ctx, dep); });
  dist_map[0] = 0.0;
  obs::stats_scope sc(tp.obs());
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    if (g.owner(0) == ctx.rank()) (*relax)(ctx, 0);
  });
  const obs::stats_snapshot d = sc.finish();
  relax_run out;
  out.bits.resize(n);
  for (vertex_id v = 0; v < n; ++v)
    out.bits[v] = std::bit_cast<std::uint64_t>(dist_map[v]);
  out.modifications = relax->modifications();
  out.batch_records = d.core.batch_records;
  out.batch_kernels = d.core.batch_kernels_run;
  out.batch_plan = relax->plan().batch_kernel;
  return out;
}

/// Runs the u64 min-propagate (CC label shape) to its fixed point.
relax_run run_labels(simd::level l, const std::vector<graph::edge>& edges,
                     vertex_id n, std::size_t coalescing) {
  override_guard restore;
  simd::override_level(l);
  distributed_graph g(n, edges, distribution::cyclic(n, 3));
  pmap::vertex_property_map<vertex_id> label_map(g, 0);
  for (vertex_id v = 0; v < n; ++v) label_map[v] = v;
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(
      ampp::transport_config{.n_ranks = 3, .coalescing_size = coalescing});
  property lbl(label_map);
  auto prop = instantiate(
      tp, g, locks,
      make_action("labels", out_edges_gen{},
                  when(lbl(trg(e_)) > lbl(v_), assign(lbl(trg(e_)), lbl(v_)))),
      compile_options{.fast_path = compile_options::toggle::on,
                      .batch_kernel = compile_options::toggle::on});
  prop->work([&](ampp::transport_context& ctx, vertex_id dep) { (*prop)(ctx, dep); });
  obs::stats_scope sc(tp.obs());
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    for (vertex_id v = 0; v < n; ++v)
      if (g.owner(v) == ctx.rank()) (*prop)(ctx, v);
  });
  const obs::stats_snapshot d = sc.finish();
  relax_run out;
  out.bits.resize(n);
  for (vertex_id v = 0; v < n; ++v) out.bits[v] = label_map[v];
  out.modifications = prop->modifications();
  out.batch_records = d.core.batch_records;
  out.batch_kernels = d.core.batch_kernels_run;
  out.batch_plan = prop->plan().batch_kernel;
  return out;
}

TEST(BatchKernel, ForcedTierSsspBitIdenticalToScalar) {
  const vertex_id n = 96;
  const auto edges = graph::erdos_renyi(n, 700, 31);
  // Coalescing 5 keeps every full envelope off the vector widths (2/4/8),
  // so each batch exercises a vector body plus a scalar tail.
  const relax_run scalar = run_sssp(simd::level::scalar, edges, n, 5);
  EXPECT_TRUE(scalar.batch_plan);
  EXPECT_GT(scalar.batch_records, 0u);
  EXPECT_GT(scalar.batch_kernels, 0u);
  for (simd::level l : simd::available_levels()) {
    if (l == simd::level::scalar) continue;
    SCOPED_TRACE(std::string("tier=") + simd::name(l));
    const relax_run r = run_sssp(l, edges, n, 5);
    EXPECT_TRUE(r == scalar);
    EXPECT_GT(r.batch_records, 0u);
  }
}

TEST(BatchKernel, ForcedTierLabelsBitIdenticalToScalar) {
  const vertex_id n = 80;
  const auto edges = graph::symmetrize(graph::erdos_renyi(n, 400, 47));
  const relax_run scalar = run_labels(simd::level::scalar, edges, n, 7);
  EXPECT_TRUE(scalar.batch_plan);
  EXPECT_GT(scalar.batch_records, 0u);
  for (simd::level l : simd::available_levels()) {
    if (l == simd::level::scalar) continue;
    SCOPED_TRACE(std::string("tier=") + simd::name(l));
    const relax_run r = run_labels(l, edges, n, 7);
    EXPECT_TRUE(r == scalar);
    EXPECT_GT(r.batch_records, 0u);
  }
}

TEST(BatchKernel, DuplicateTargetsWithinOneEnvelope) {
  // A multigraph hub: four parallel edges to each spoke, so one coalesced
  // envelope carries several records for the same target vertex and the
  // batch must apply the best candidate exactly as sequential dispatch
  // does (the relax values differ per parallel edge via the weight hash).
  // The sender-side combining cache is pinned off — it would merge the
  // duplicates before they ever reach an envelope, which is exactly the
  // case this test must keep exercising.
  const vertex_id n = 9;
  std::vector<graph::edge> edges;
  for (vertex_id v = 1; v < n; ++v)
    for (int dup = 0; dup < 4; ++dup) edges.push_back(graph::edge{0, v});
  constexpr auto off = compile_options::toggle::off;
  const relax_run scalar = run_sssp(simd::level::scalar, edges, n, 64, off);
  EXPECT_TRUE(scalar.batch_plan);
  for (simd::level l : simd::available_levels()) {
    SCOPED_TRACE(std::string("tier=") + simd::name(l));
    const relax_run r = run_sssp(l, edges, n, 64, off);
    EXPECT_TRUE(r == scalar);
  }
}

TEST(BatchKernel, SingleRecordEnvelopes) {
  // coalescing_size = 1: every batch is a single record (pure scalar tail
  // at every tier) — the degenerate envelope shape must still agree.
  const vertex_id n = 24;
  const auto edges = graph::erdos_renyi(n, 90, 5);
  const relax_run scalar = run_sssp(simd::level::scalar, edges, n, 1);
  for (simd::level l : simd::available_levels()) {
    SCOPED_TRACE(std::string("tier=") + simd::name(l));
    EXPECT_TRUE(run_sssp(l, edges, n, 1) == scalar);
  }
}

TEST(BatchKernel, BatchTogglePreservesResultsAndCounters) {
  // Batching off must produce the same distances and report zero batch
  // activity; batching on must account every record it consumed.
  const vertex_id n = 48;
  const auto edges = graph::erdos_renyi(n, 300, 13);
  auto run_toggle = [&](compile_options::toggle batch) {
    distributed_graph g(n, edges, distribution::cyclic(n, 2));
    pmap::vertex_property_map<double> dist_map(g, kInf);
    pmap::edge_property_map<double> weight_map(g, [](const edge_handle& e) {
      return graph::edge_weight(e.src, e.dst, 3, 5.0);
    });
    pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
    ampp::transport tp(ampp::transport_config{.n_ranks = 2, .coalescing_size = 6});
    property dist(dist_map);
    property weight(weight_map);
    auto relax = instantiate(
        tp, g, locks,
        make_action("relax", out_edges_gen{},
                    when(dist(trg(e_)) > dist(v_) + weight(e_),
                         assign(dist(trg(e_)), dist(v_) + weight(e_)))),
        compile_options{.fast_path = compile_options::toggle::on,
                        .batch_kernel = batch});
    relax->work(
        [&](ampp::transport_context& ctx, vertex_id dep) { (*relax)(ctx, dep); });
    dist_map[0] = 0.0;
    obs::stats_scope sc(tp.obs());
    tp.run([&](ampp::transport_context& ctx) {
      ampp::epoch ep(ctx);
      if (g.owner(0) == ctx.rank()) (*relax)(ctx, 0);
    });
    const obs::stats_snapshot d = sc.finish();
    std::vector<std::uint64_t> bits(n);
    for (vertex_id v = 0; v < n; ++v)
      bits[v] = std::bit_cast<std::uint64_t>(dist_map[v]);
    return std::tuple{bits, relax->plan().batch_kernel, d};
  };
  const auto [on_bits, on_plan, on_d] = run_toggle(compile_options::toggle::on);
  const auto [off_bits, off_plan, off_d] = run_toggle(compile_options::toggle::off);
  EXPECT_TRUE(on_plan);
  EXPECT_FALSE(off_plan);
  EXPECT_EQ(on_bits, off_bits);
  EXPECT_GT(on_d.core.batch_records, 0u);
  EXPECT_LE(on_d.core.batch_records, on_d.core.handler_invocations);
  EXPECT_LE(on_d.core.batch_kernels_run, on_d.core.batch_records);
  EXPECT_EQ(off_d.core.batch_records, 0u);
  EXPECT_EQ(off_d.core.batch_kernels_run, 0u);
}

TEST(BatchKernel, PerInstanceSimdLevelOverridesGlobal) {
  // compile_options::simd_level pins one instantiation to a tier without
  // touching the process-wide selection — the serving layer relies on this
  // for mixed-tier concurrent sessions.
  const vertex_id n = 64;
  const auto edges = graph::erdos_renyi(n, 420, 23);
  auto run_pinned = [&](int lvl) {
    distributed_graph g(n, edges, distribution::cyclic(n, 2));
    pmap::vertex_property_map<double> dist_map(g, kInf);
    pmap::edge_property_map<double> weight_map(g, [](const edge_handle& e) {
      return graph::edge_weight(e.src, e.dst, 19, 4.0);
    });
    pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
    ampp::transport tp(ampp::transport_config{.n_ranks = 2, .coalescing_size = 5});
    property dist(dist_map);
    property weight(weight_map);
    auto relax = instantiate(
        tp, g, locks,
        make_action("relax", out_edges_gen{},
                    when(dist(trg(e_)) > dist(v_) + weight(e_),
                         assign(dist(trg(e_)), dist(v_) + weight(e_)))),
        compile_options{.fast_path = compile_options::toggle::on,
                        .batch_kernel = compile_options::toggle::on,
                        .simd_level = lvl});
    relax->work(
        [&](ampp::transport_context& ctx, vertex_id dep) { (*relax)(ctx, dep); });
    dist_map[0] = 0.0;
    tp.run([&](ampp::transport_context& ctx) {
      ampp::epoch ep(ctx);
      if (g.owner(0) == ctx.rank()) (*relax)(ctx, 0);
    });
    std::vector<std::uint64_t> bits(n);
    for (vertex_id v = 0; v < n; ++v)
      bits[v] = std::bit_cast<std::uint64_t>(dist_map[v]);
    return bits;
  };
  const auto scalar_bits = run_pinned(0);
  for (simd::level l : simd::available_levels()) {
    SCOPED_TRACE(std::string("pinned=") + simd::name(l));
    EXPECT_EQ(run_pinned(static_cast<int>(l)), scalar_bits);
  }
  // And -1 (follow the global) agrees too.
  EXPECT_EQ(run_pinned(-1), scalar_bits);
}

}  // namespace
}  // namespace dpg::pattern
